package trustedcvs_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"trustedcvs"
)

func TestClusterQuickstart(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolII, Users: 3, SyncEvery: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	alice := cluster.Repo(0, "alice")
	bob := cluster.Repo(1, "bob")

	if _, err := alice.Commit(map[string][]byte{"README": []byte("hello\n")}, "import", nil); err != nil {
		t.Fatal(err)
	}
	files, err := bob.Checkout("README")
	if err != nil {
		t.Fatal(err)
	}
	if string(files["README"]) != "hello\n" {
		t.Fatalf("checkout: %q", files["README"])
	}
	// Cross enough ops for a sync; everything must stay clean.
	for i := 0; i < 10; i++ {
		if _, err := cluster.Repo(i%3, "dev").Commit(map[string][]byte{"f": []byte(fmt.Sprintf("%d\n", i))}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := cluster.WaitIdle(i, 5*time.Second); err != nil {
			t.Fatalf("user %d: %v", i, err)
		}
	}
}

func TestClusterAllProtocolsHonest(t *testing.T) {
	for _, p := range []trustedcvs.Protocol{trustedcvs.ProtocolI, trustedcvs.ProtocolII, trustedcvs.ProtocolIII} {
		cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{Protocol: p, Users: 2, SyncEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 6; i++ {
			if _, err := cluster.Repo(i%2, "dev").Commit(map[string][]byte{"x": []byte(fmt.Sprintf("%d\n", i))}, "", nil); err != nil {
				t.Fatalf("%v: %v", p, err)
			}
		}
		if p == trustedcvs.ProtocolIII {
			cluster.AdvanceEpoch()
			if _, err := cluster.Repo(0, "dev").Checkout("x"); err != nil {
				t.Fatalf("%v after epoch: %v", p, err)
			}
		}
		cluster.Close()
	}
}

func TestClusterMaliceDetected(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolII, Users: 2, SyncEvery: 3,
		Malice: trustedcvs.Malice{Behavior: "fork", TriggerOp: 2, GroupB: []trustedcvs.UserID{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var detection error
	for i := 0; detection == nil && i < 20; i++ {
		for u := 0; u < 2; u++ {
			if _, err := cluster.Repo(u, "dev").Commit(map[string][]byte{"f": []byte(fmt.Sprintf("u%d-%d\n", u, i))}, "", nil); err != nil {
				detection = err
				break
			}
		}
		if detection == nil {
			for u := 0; u < 2; u++ {
				if err := cluster.WaitIdle(u, 5*time.Second); err != nil {
					detection = err
					break
				}
			}
		}
	}
	de, ok := trustedcvs.AsDetection(detection)
	if !ok {
		t.Fatalf("fork not detected: %v", detection)
	}
	if de.Class != trustedcvs.SyncMismatch {
		t.Fatalf("class: %v", de.Class)
	}
}

func TestClusterP3ForkDetectedWithinTwoEpochs(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolIII, Users: 2,
		Malice: trustedcvs.Malice{Behavior: "fork", TriggerOp: 5, GroupB: []trustedcvs.UserID{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var detection error
	detectedEpoch := -1
	for epoch := 0; detection == nil && epoch < 7; epoch++ {
		for u := 0; u < 2 && detection == nil; u++ {
			for j := 0; j < 2; j++ { // the >=2 ops/epoch workload assumption
				_, err := cluster.Repo(u, "dev").Commit(
					map[string][]byte{fmt.Sprintf("u%d.txt", u): []byte(fmt.Sprintf("e%d-%d\n", epoch, j))}, "", nil)
				if err != nil {
					detection = err
					detectedEpoch = epoch
					break
				}
			}
		}
		cluster.AdvanceEpoch()
	}
	de, ok := trustedcvs.AsDetection(detection)
	if !ok {
		t.Fatalf("P3 fork not detected: %v", detection)
	}
	// The fork lands in epoch 1 (ops 5+); Theorem 4.3 bounds detection
	// by epoch 3.
	if detectedEpoch > 3 {
		t.Fatalf("detected in epoch %d (class %v), bound is 3", detectedEpoch, de.Class)
	}
}

func TestClusterRawKV(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{Users: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if _, err := cluster.Do(0, &trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: "k", Val: []byte("v")}}}); err != nil {
		t.Fatal(err)
	}
	ans, err := cluster.Do(1, &trustedcvs.ReadOp{Keys: []string{"k"}})
	if err != nil {
		t.Fatal(err)
	}
	ra := ans.(trustedcvs.ReadAnswer)
	if !ra.Results[0].Found || string(ra.Results[0].Val) != "v" {
		t.Fatalf("read: %+v", ra)
	}
}

func TestClusterOverTCP(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolII, Users: 2, SyncEvery: 4, Network: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if cluster.ServerAddr() == "" || cluster.HubAddr() == "" {
		t.Fatal("network cluster must expose addresses")
	}
	for i := 0; i < 10; i++ {
		if _, err := cluster.Repo(i%2, "dev").Commit(map[string][]byte{"net": []byte(fmt.Sprintf("%d\n", i))}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
	for u := 0; u < 2; u++ {
		if err := cluster.WaitIdle(u, 10*time.Second); err != nil {
			t.Fatal(err)
		}
	}
	log, err := cluster.Repo(0, "dev").Log("net")
	if err != nil || len(log) != 10 {
		t.Fatalf("log: %d entries, %v", len(log), err)
	}
}

func TestClusterConflictIsNotDetection(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{Users: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	a, b := cluster.Repo(0, "a"), cluster.Repo(1, "b")
	if _, err := a.Commit(map[string][]byte{"f": []byte("1\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(map[string][]byte{"f": []byte("2\n")}, "", map[string]uint64{"f": 1}); err != nil {
		t.Fatal(err)
	}
	_, err = b.Commit(map[string][]byte{"f": []byte("3\n")}, "", map[string]uint64{"f": 1})
	if !errors.Is(err, trustedcvs.ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	if _, ok := trustedcvs.AsDetection(err); ok {
		t.Fatal("a CVS conflict is not a server deviation")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{}); err == nil {
		t.Fatal("zero users must be rejected")
	}
	if _, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Users: 1, Malice: trustedcvs.Malice{Behavior: "nonsense"},
	}); err == nil {
		t.Fatal("unknown behavior must be rejected")
	}
}
