package trustedcvs_test

// Testable godoc examples for the public API. They run as part of the
// test suite, so the documentation can never drift from the code.

import (
	"fmt"
	"log"

	"trustedcvs"
)

// Example shows the core loop: verified commits and checkouts against
// an untrusted server.
func Example() {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol:  trustedcvs.ProtocolII,
		Users:     2,
		SyncEvery: 16,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	alice := cluster.Repo(0, "alice")
	bob := cluster.Repo(1, "bob")

	if _, err := alice.Commit(map[string][]byte{"README": []byte("hello\n")}, "import", nil); err != nil {
		log.Fatal(err)
	}
	files, err := bob.Checkout("README")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s", files["README"])
	// Output: hello
}

// ExampleAsDetection shows how a proven server deviation surfaces: the
// server forges an answer and the very next verification fails with a
// DetectionError naming the check that caught it.
func ExampleAsDetection() {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Users:  1,
		Malice: trustedcvs.Malice{Behavior: "tamper-answer", TriggerOp: 2},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	repo := cluster.Repo(0, "alice")
	if _, err := repo.Commit(map[string][]byte{"f": []byte("x\n")}, "", nil); err != nil {
		log.Fatal(err)
	}
	_, err = repo.Checkout("f") // op 2: the server lies
	if de, ok := trustedcvs.AsDetection(err); ok {
		fmt.Println("deviation class:", de.Class)
	}
	// Output: deviation class: answer-mismatch
}

// ExampleCluster_Do shows the raw key-value interface — the paper's
// outsourced-database model.
func ExampleCluster_Do() {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{Users: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	if _, err := cluster.Do(0, &trustedcvs.WriteOp{
		Puts: []trustedcvs.KV{{Key: "stock/widgets", Val: []byte("42")}},
	}); err != nil {
		log.Fatal(err)
	}
	ans, err := cluster.Do(1, &trustedcvs.ReadOp{Keys: []string{"stock/widgets"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s", ans.(trustedcvs.ReadAnswer).Results[0].Val)
	// Output: 42
}

// ExampleCASOp shows a verified distributed lock on the untrusted
// server: the compare-and-swap's conditional is replayed by the
// verifier, so the vendor cannot lie about who holds the lock.
func ExampleCASOp() {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{Users: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	acquire := func(user int, who string) bool {
		ans, err := cluster.Do(user, &trustedcvs.CASOp{Key: "leader-lock", New: []byte(who)})
		if err != nil {
			log.Fatal(err)
		}
		return ans.(trustedcvs.CASAnswer).Swapped
	}
	fmt.Println("alice acquires:", acquire(0, "alice"))
	fmt.Println("bob acquires:", acquire(1, "bob"))
	// Output:
	// alice acquires: true
	// bob acquires: false
}

// ExampleRepo_Annotate shows verified per-line blame.
func ExampleRepo_Annotate() {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{Users: 2})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	alice := cluster.Repo(0, "alice")
	bob := cluster.Repo(1, "bob")
	if _, err := alice.Commit(map[string][]byte{"f": []byte("one\ntwo\n")}, "", nil); err != nil {
		log.Fatal(err)
	}
	if _, err := bob.Commit(map[string][]byte{"f": []byte("one\nTWO\n")}, "", nil); err != nil {
		log.Fatal(err)
	}
	origins, err := alice.Annotate("f")
	if err != nil {
		log.Fatal(err)
	}
	for _, o := range origins {
		fmt.Printf("rev %d (%s): %s", o.Rev, o.Author, o.Line)
	}
	// Output:
	// rev 1 (alice): one
	// rev 2 (bob): TWO
}

// ExampleRepo_Diff shows a verified diff between two revisions.
func ExampleRepo_Diff() {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{Users: 1})
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	repo := cluster.Repo(0, "alice")
	if _, err := repo.Commit(map[string][]byte{"f": []byte("a\nb\n")}, "", nil); err != nil {
		log.Fatal(err)
	}
	if _, err := repo.Commit(map[string][]byte{"f": []byte("a\nc\n")}, "", nil); err != nil {
		log.Fatal(err)
	}
	patch, err := repo.Diff("f", 1, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(patch.String())
	// Output:
	// =a
	// -b
	// +c
}
