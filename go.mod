module trustedcvs

go 1.22
