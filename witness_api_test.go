package trustedcvs_test

import (
	"fmt"
	"testing"
	"time"

	"trustedcvs"
)

// TestClusterWitnessHonest: an honest witnessed cluster completes its
// sync rounds with zero false alarms — the witness cross-check that
// runs before each round is acknowledged never fires, no evidence
// accumulates, and no check is skipped for lack of quorum.
func TestClusterWitnessHonest(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolII, Users: 2, SyncEvery: 4,
		Witnesses: 3, CommitEvery: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	for i := 0; i < 10; i++ {
		for u := 0; u < 2; u++ {
			if _, err := cluster.Repo(u, "dev").Commit(map[string][]byte{"f": []byte(fmt.Sprintf("u%d-%d\n", u, i))}, "", nil); err != nil {
				t.Fatalf("honest witnessed commit failed (false alarm?): %v", err)
			}
		}
		for u := 0; u < 2; u++ {
			if err := cluster.WaitIdle(u, 5*time.Second); err != nil {
				t.Fatalf("sync under witnessing failed: %v", err)
			}
		}
	}
	if err := cluster.GossipWitnesses(); err != nil {
		t.Fatalf("gossip: %v", err)
	}
	if evs := cluster.WitnessEvidence(); len(evs) != 0 {
		t.Fatalf("honest run accumulated evidence: %v", evs)
	}
}

// TestClusterWitnessDivergenceP3: under Protocol III a fork would
// normally stay hidden until the epoch-end backup check; the witness
// cross-check catches it at commitment cadence instead. The forked
// user's verified roots contradict the signed commitments the
// witnesses hold for the main branch, and the check converts that
// into a WitnessDivergence detection — while the main-branch user's
// check stays clean.
func TestClusterWitnessDivergenceP3(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolIII, Users: 2, JournalCap: 128,
		Witnesses: 3, CommitEvery: 1,
		Malice: trustedcvs.Malice{Behavior: "fork", TriggerOp: 3, GroupB: []trustedcvs.UserID{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	for i := 0; i < 4; i++ {
		for u := 0; u < 2; u++ {
			if _, err := cluster.Repo(u, "dev").Commit(map[string][]byte{"f": []byte(fmt.Sprintf("u%d-%d\n", u, i))}, "", nil); err != nil {
				t.Fatalf("user %d op %d: %v", u, i, err)
			}
		}
	}
	cluster.CommitHead()

	if err := cluster.VerifyWitnesses(0); err != nil {
		t.Fatalf("main-branch user false-alarmed: %v", err)
	}
	err = cluster.VerifyWitnesses(1)
	det, ok := trustedcvs.AsDetection(err)
	if !ok {
		t.Fatalf("forked user's witness check passed: %v", err)
	}
	if det.Class != trustedcvs.WitnessDivergence {
		t.Fatalf("detection class = %v, want witness-divergence", det.Class)
	}
	if cluster.Err(1) == nil {
		t.Fatal("detection not pinned on the client")
	}

	// The journals recorded under Protocol III localize the fault just
	// as they do under I/II (the fork snapshot excludes the TriggerOp).
	rep := cluster.Forensics()
	if rep == nil || !rep.Located {
		t.Fatalf("P3 forensics failed to localize: %+v", rep)
	}
	if len(rep.Branches) != 2 {
		t.Fatalf("branch split wrong: %s", rep)
	}
}

// TestClusterForensicsP3Honest: Protocol III journals on an honest
// run stay consistent — Locate reports no fork.
func TestClusterForensicsP3Honest(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolIII, Users: 2, JournalCap: 64,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	for i := 0; i < 5; i++ {
		for u := 0; u < 2; u++ {
			if _, err := cluster.Repo(u, "dev").Commit(map[string][]byte{"f": []byte(fmt.Sprintf("h%d-%d\n", u, i))}, "", nil); err != nil {
				t.Fatal(err)
			}
		}
	}
	rep := cluster.Forensics()
	if rep == nil {
		t.Fatal("journals enabled but no report")
	}
	if rep.Located {
		t.Fatalf("honest P3 run located a fork: %s", rep)
	}
}
