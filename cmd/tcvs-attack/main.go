// Command tcvs-attack runs the full attack matrix in the deterministic
// simulator: every malicious-server behavior from the paper against
// every applicable protocol, reporting which check detected it and how
// many operations after the deviation.
//
// Usage:
//
//	tcvs-attack
//	tcvs-attack -k 8 -users 6
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/sim"
	"trustedcvs/internal/workload"
)

func main() {
	var (
		k     = flag.Uint64("k", 8, "sync period for protocols I and II")
		users = flag.Int("users", 4, "user population")
		seed  = flag.Int64("seed", 1, "workload seed")
	)
	flag.Parse()

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "PROTOCOL\tATTACK\tDETECTED\tBY CHECK\tDETECTOR\tDELAY global/per-user")

	groupB := map[sig.UserID]bool{}
	for u := *users / 2; u < *users; u++ {
		groupB[sig.UserID(u)] = true
	}

	type attack struct {
		name string
		cfg  adversary.Config
	}
	attacks := []attack{
		{"fork (Fig. 1 partition)", adversary.Config{Kind: adversary.Fork, TriggerOp: 10, GroupB: groupB}},
		{"replay stale state", adversary.Config{Kind: adversary.ReplayStale, TriggerOp: 12, Target: 1}},
		{"drop an update", adversary.Config{Kind: adversary.DropUpdate, TriggerOp: 11}},
		{"tamper with an answer", adversary.Config{Kind: adversary.TamperAnswer, TriggerOp: 13}},
		{"silently rewrite data", adversary.Config{Kind: adversary.TamperState, TriggerOp: 9, Key: "planted", Value: []byte("evil")}},
		{"repeat a counter", adversary.Config{Kind: adversary.CounterReplay, TriggerOp: 14}},
	}

	for _, p := range []server.Protocol{server.P1, server.P2} {
		for _, a := range attacks {
			trace := workload.Generate(workload.Config{
				Users: *users, Files: 12, Ops: 200, WriteRatio: 0.5, FilesPerOp: 1, Seed: *seed,
			})
			cfg := a.cfg
			res := sim.Run(sim.Config{Protocol: p, Users: *users, K: *k, Trace: trace, Adversary: &cfg})
			report(w, p.String(), a.name, res)
		}
	}

	// Protocol III with its epoch workload.
	p3attacks := []attack{
		{"fork (Fig. 1 partition)", adversary.Config{Kind: adversary.Fork, TriggerOp: uint64(2**users + 2), GroupB: groupB}},
		{"stall epochs", adversary.Config{Kind: adversary.StallEpochs}},
		{"withhold an epoch backup", adversary.Config{Kind: adversary.WithholdBackup, Target: 1}},
		{"tamper with an answer", adversary.Config{Kind: adversary.TamperAnswer, TriggerOp: 13}},
	}
	epochLen := 4 * *users
	for _, a := range p3attacks {
		trace := workload.EveryUserTwicePerEpoch(*users, 8, epochLen, *seed)
		cfg := a.cfg
		res := sim.Run(sim.Config{
			Protocol: server.P3, Users: *users, EpochLen: epochLen, LocalClocks: true,
			Trace: trace, Adversary: &cfg,
		})
		report(w, server.P3.String(), a.name, res)
	}
	w.Flush()
	fmt.Println("\nAll attacks above must be detected; run with different -seed to vary the workload.")

	// Fault localization (the paper's future-work item 1): rerun the
	// partition attack with transition journals enabled and pinpoint
	// the forged operation.
	trace, info := workload.Partitionable(*users/2, *users-*users/2, int(*k), *seed)
	res := sim.Run(sim.Config{
		Protocol: server.P2, Users: *users, K: *k, JournalCap: 1024,
		Trace: trace,
		Adversary: &adversary.Config{
			Kind: adversary.Fork, TriggerOp: info.T1Op, GroupB: info.GroupB,
		},
	})
	if res.Forensics != nil {
		fmt.Println("\nPost-detection forensics for the partition attack (journals of capacity 1024):")
		fmt.Println("  " + res.Forensics.String())
		fmt.Printf("  ground truth: the fork forged operation slot %d\n", info.T1Op)
	}
}

func report(w *tabwriter.Writer, proto, attack string, res *sim.Result) {
	if res.Err != nil {
		fmt.Fprintf(w, "%s\t%s\tERROR: %v\t\t\t\n", proto, attack, res.Err)
		return
	}
	if !res.Detected {
		fmt.Fprintf(w, "%s\t%s\tNO (!)\t-\t-\t>%d\n", proto, attack, res.TotalOps)
		return
	}
	fmt.Fprintf(w, "%s\t%s\tyes\t%s\t%v\t%d/%d\n",
		proto, attack, res.Detection.Class, res.Detection.User,
		res.OpsAfterDeviation, res.MaxUserOpsAfterDeviation)
}
