// Command tcvs-server runs the (untrusted) Trusted CVS server: the
// authenticated database, the content store, and — for demonstration —
// any of the paper's malicious behaviors.
//
// It can also host the users' broadcast hub (-hub). In a real
// deployment the hub belongs to the users, not the server; hosting it
// here is a convenience for demos and changes nothing about the
// security argument, because hub traffic is only ever *verified* by
// users against each other's reports.
//
// Usage:
//
//	tcvs-server -addr :7070 -hub :7071 -proto 2
//	tcvs-server -addr :7070 -proto 2 -behavior fork -trigger 5 -group-b 1,2
//
// Witness replication: -witnesses makes the primary publish signed
// epoch root commitments to remote witness nodes; -witness runs this
// process as one of those witnesses instead:
//
//	tcvs-server -witness -addr :7072 -peers :7073,:7074
//	tcvs-server -addr :7070 -witnesses :7072,:7073,:7074 -commit-every 8
package main

import (
	"errors"
	"expvar"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto1"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/driver"
	"trustedcvs/internal/fault"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/witness"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7070", "server listen address")
		hubAddr  = flag.String("hub", "", "also host a broadcast hub on this address (demo convenience)")
		proto    = flag.String("proto", "2", "protocol: 1, 2 or 3")
		order    = flag.Int("order", 0, "Merkle branching factor (0 = default)")
		shards   = flag.Int("shards", 1, "split the authenticated DB into this many Merkle shards under a signed root-of-roots (protocol 2 only)")
		users    = flag.Int("users", 8, "user population (key ring size, protocol 1 only)")
		seed     = flag.Int64("seed", 1, "deterministic key seed shared with clients (protocol 1 only)")
		epoch    = flag.Duration("epoch", 30*time.Second, "epoch length (protocol 3 only)")
		behavior = flag.String("behavior", "honest", "malicious behavior: honest, fork, replay-stale, drop-update, tamper-answer, tamper-state, counter-replay, stall-epochs, withhold-backup, torn-commit")
		trigger  = flag.Uint64("trigger", 0, "operation index at which the behavior activates")
		groupB   = flag.String("group-b", "", "comma-separated user IDs served from the fork")
		target   = flag.Uint("target", 0, "victim user for replay-stale / withhold-backup")
		dataFile = flag.String("data", "", "persistence file (protocol 2 only): loaded at start, saved periodically")
		saveIvl  = flag.Duration("save-interval", 30*time.Second, "how often to persist -data")

		witnessMode = flag.Bool("witness", false, "run as a witness node instead of the primary")
		witnessName = flag.String("witness-name", "", "witness node name (default derived from -addr)")
		peers       = flag.String("peers", "", "comma-separated peer witness addresses to gossip with (-witness mode)")
		gossipIvl   = flag.Duration("gossip-interval", 2*time.Second, "gossip round cadence (-witness mode)")
		witnesses   = flag.String("witnesses", "", "comma-separated witness addresses the primary publishes signed root commitments to")
		commitEvery = flag.Uint64("commit-every", 0, "commitment cadence in operations (0 = default)")

		auditMode = flag.String("audit", "sync", "client audit mode this deployment is provisioned for: sync (per-op barrier) or epoch (async epoch-batched audit)")
		epochLen  = flag.Uint64("epoch-len", 0, "epoch length in global operations (-audit epoch; clients must use the same value)")
		auditWAL  = flag.String("audit-wal", "", "durable op journal directory (protocol 2, honest only): applied ops and accepted content pushes are journaled with epoch-batched fsync and replayed over the -data snapshot on start")

		overload       = flag.Bool("overload", false, "arm overload protection: bounded priority admission queue, adaptive (AIMD) concurrency limit, typed sheds, deadline-aware dispatch")
		overloadTarget = flag.Duration("overload-target", 0, "per-request latency target the adaptive limit steers toward (0 = package default)")
		overloadQueue  = flag.Int("overload-queue", 0, "admission queue depth across all priority classes (0 = package default)")
		statsAddr      = flag.String("stats-addr", "", "serve the operator debug endpoint (GET /debug/tcvs, expvar at /debug/vars) on this address")
	)
	flag.Parse()

	if *witnessMode {
		runWitness(*addr, *witnessName, *peers, *gossipIvl)
		return
	}

	p, err := server.ParseProtocol(*proto)
	if err != nil {
		log.Fatal(err)
	}
	if *shards < 1 || *shards > vdb.MaxShards {
		log.Fatalf("-shards %d outside [1, %d]", *shards, vdb.MaxShards)
	}
	if *shards > 1 && p != server.P2 {
		log.Fatalf("-shards needs -proto 2 (forest mode is a Protocol II feature)")
	}
	// Epoch-audit mode is a client-side choice (see internal/audit);
	// the server's share of it is pinning the witness commitment
	// cadence to the epoch grid so every closure check can compare
	// against a commitment from its own window.
	epochAudit := false
	switch *auditMode {
	case "sync":
	case "epoch":
		if p != server.P2 {
			log.Fatal("-audit epoch needs -proto 2")
		}
		if *epochLen == 0 {
			log.Fatal("-audit epoch needs -epoch-len")
		}
		epochAudit = true
		log.Printf("provisioned for epoch-batched audit: N=%d (detection within one epoch)", *epochLen)
	default:
		log.Fatalf("-audit %q: want sync or epoch", *auditMode)
	}
	if *auditWAL != "" {
		if p != server.P2 {
			log.Fatal("-audit-wal needs -proto 2")
		}
		if *behavior != "honest" {
			log.Fatal("-audit-wal needs -behavior honest (a fork's history is not ours to preserve)")
		}
	}
	db := vdb.New(*order)
	if *shards > 1 {
		db = vdb.NewSharded(*order, *shards)
		log.Printf("Merkle forest: %d shards under one signed root-of-roots", *shards)
	}
	// The session table gives reconnecting clients exactly-once retry
	// semantics; it is checkpointed and restored alongside the database
	// so retries from before a crash still replay instead of re-applying.
	sessions := transport.NewSessionTable(0)
	var honest server.Server
	var loadedStore *cvs.Store
	switch p {
	case server.P1:
		signers, _, err := sig.DeterministicSigners(*users, *seed)
		if err != nil {
			log.Fatal(err)
		}
		honest = server.NewP1(db, proto1.Initialize(signers[0], db.Root()))
	case server.P2:
		if *dataFile != "" {
			snap, from, err := server.LoadP2Auto(*dataFile)
			switch {
			case err == nil:
				honest, loadedStore, err = server.RestoreP2(snap)
				if err != nil {
					log.Fatalf("restore %s: %v", from, err)
				}
				if snap.Sessions != nil {
					sessions.RestoreSessions(snap.Sessions)
				}
				log.Printf("restored state from %s: %d ops, root %s",
					from, honest.DB().Ctr(), honest.DB().Root().Short())
			case errors.Is(err, server.ErrNoSnapshot):
				// First boot: start from the empty repository.
			default:
				log.Fatalf("load %s: %v", *dataFile, err)
			}
		}
		if honest == nil {
			honest = server.NewP2(db)
		}
	case server.P3:
		honest = server.NewP3(db)
	}

	store := loadedStore
	if store == nil {
		store = cvs.NewStore()
	}

	// The op journal replays its tail over the restored snapshot BEFORE
	// any decoration and before the transport serves: recovery re-applies
	// exactly the acked operations (and re-pushes the content blobs) the
	// periodic checkpoint missed.
	var journal *server.OpJournal
	if *auditWAL != "" {
		applied, pushed, err := server.ReplayOpJournal(*auditWAL, honest, store)
		if err != nil {
			log.Fatalf("replay op journal %s: %v", *auditWAL, err)
		}
		if applied > 0 || pushed > 0 {
			log.Printf("op journal: replayed %d acked op(s) and %d content push(es) past the snapshot; head now %d, root %s",
				applied, pushed, honest.DB().Ctr(), honest.DB().Root().Short())
		}
		journal, err = server.OpenOpJournal(*auditWAL, fault.OS, *epochLen)
		if err != nil {
			log.Fatal(err)
		}
		honest = server.WithOpJournal(honest, journal)
		batch := *epochLen
		if batch == 0 {
			batch = server.DefaultJournalEpoch
		}
		log.Printf("op journal at %s (fsync batched every %d ops)", *auditWAL, batch)
	}

	srv := honest
	if *behavior != "honest" {
		cfg, err := parseBehavior(*behavior, *trigger, *groupB, sig.UserID(*target))
		if err != nil {
			log.Fatal(err)
		}
		srv = adversary.Wrap(honest, cfg)
		log.Printf("WARNING: running MALICIOUSLY: %s (trigger op %d)", *behavior, *trigger)
	}

	var pub *witness.Publisher
	if *witnesses != "" {
		wid, err := witness.NewIdentity("primary")
		if err != nil {
			log.Fatal(err)
		}
		every := *commitEvery
		if epochAudit && every == 0 {
			every = *epochLen
		}
		pub = witness.NewPublisher(wid, every)
		if epochAudit {
			pub.Align()
		}
		count := 0
		for _, w := range strings.Split(*witnesses, ",") {
			w = strings.TrimSpace(w)
			if w == "" {
				continue
			}
			wa := w
			pub.AddWitness(wa, func() (transport.Caller, error) { return transport.Dial(wa) })
			count++
		}
		if count == 0 {
			log.Fatal("-witnesses given but no usable address")
		}
		srv = server.WithOpHook(srv, pub.OpApplied)
		log.Printf("publishing root commitments to %d witnesses", count)
	}

	if p == server.P3 {
		go func() {
			for range time.Tick(*epoch) {
				srv.AdvanceEpoch()
				log.Printf("epoch advanced to %d", srv.Epoch())
			}
		}()
	}

	handler := driver.NewHandler(srv, store)
	if journal != nil {
		// Content pushes bypass the protocol server, so the decorator on
		// srv never sees them; journal them at the handler instead.
		inner := handler
		handler = func(req any) (any, error) {
			resp, err := inner(req)
			if err == nil {
				if p, ok := req.(*core.PushContentRequest); ok {
					journal.RecordPush(p, srv.DB().Ctr())
				}
			}
			return resp, err
		}
	}
	// The saver runs beside live traffic: SaveP2 checkpoints the
	// protocol state through its own ordered section (an O(1) fork of
	// the copy-on-write database) and the content store snapshots under
	// its own lock, so persistence never stalls the pipelined hot path.
	persisting := *dataFile != "" && p == server.P2 && *behavior == "honest"
	if persisting {
		go func() {
			for range time.Tick(*saveIvl) {
				ctr, err := saveState(*dataFile, srv, store, sessions)
				if err != nil {
					log.Printf("persist: %v", err)
					continue
				}
				// Journal epochs fully covered by the durable checkpoint
				// are dead weight; drop them.
				if journal != nil {
					if err := journal.TruncateThrough(ctr); err != nil {
						log.Printf("journal truncate: %v", err)
					}
				}
			}
		}()
	}
	topts := transport.Options{Sessions: sessions}
	if *overload {
		topts.Admission = transport.NewAdmission(transport.AdmissionOptions{
			Target: *overloadTarget, QueueDepth: *overloadQueue,
		})
		topts.Classify = driver.Classify
		// WrapDeadline sits atop the fully decorated handler chain
		// (journal recorder included), so an expired request is refused
		// before any layer of it runs.
		topts.HandlerDeadline = driver.WrapDeadline(handler)
		armed := topts.Admission.Options()
		log.Printf("overload protection armed (target %v, queue %d, limit %d..%d)",
			armed.Target, armed.QueueDepth, armed.MinLimit, armed.MaxLimit)
	}
	ts, err := transport.ListenOpts(*addr, handler, topts)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("tcvs-server (%v) listening on %s", p, ts.Addr())

	var hub *broadcast.HubServer
	if *hubAddr != "" {
		hub, err = broadcast.ListenHub(*hubAddr)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("broadcast hub on %s", hub.Addr())
	}

	if *statsAddr != "" {
		src := statsSources{EpochLen: *epochLen}
		if topts.Admission != nil {
			adm := topts.Admission
			src.Admission = adm.Stats
		}
		if hub != nil {
			src.Hub = func() (int, int, uint64, uint64) {
				st := hub.Stats()
				return st.Conns, st.LogLen, st.SlowFlips, st.Evictions
			}
		}
		if pub != nil {
			src.Lanes = pub.LaneStates
			src.Fanout = pub.FanoutStats
		}
		src.WALMode = func() string {
			switch {
			case journal == nil:
				return "none"
			case journal.Err() != nil:
				return "degraded"
			default:
				return "epoch-batched"
			}
		}
		mux := newStatsMux(src)
		// expvar publication happens exactly once, here: the same
		// snapshot document rides the standard /debug/vars page.
		expvar.Publish("tcvs", expvar.Func(func() any { return src.snapshot() }))
		mux.Handle("/debug/vars", expvar.Handler())
		go func() {
			log.Printf("stats endpoint on http://%s/debug/tcvs", *statsAddr)
			if err := (&http.Server{Addr: *statsAddr, Handler: mux}).ListenAndServe(); err != nil {
				log.Printf("stats endpoint: %v", err)
			}
		}()
	}

	// Graceful shutdown, in dependency order:
	//
	//  1. Sever the transport (drain in-flight handlers, accept nothing
	//     new) so no op is acknowledged past the cut.
	//  2. Epoch mode: flush the audit pipeline's server half — every
	//     pending witness commitment must be delivered before the
	//     checkpoint, or a clean shutdown would leave the final epochs'
	//     closure checks without a commitment to quorum against (the
	//     unaudited tail the PR4-era drain→checkpoint path left behind).
	//  3. Checkpoint, then truncate and close the op journal: the
	//     snapshot now covers everything the journal holds, and Close
	//     fsyncs whatever tail batching deferred.
	//
	// Any other order lets an acked or commitment-pending tail slip past
	// the durable cut; on restart clients would — correctly, but
	// needlessly — raise rollback or closure alarms.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	s := <-sigc
	log.Printf("%v: draining transport", s)
	if err := ts.Shutdown(5 * time.Second); err != nil {
		log.Printf("shutdown: %v", err)
	}
	if epochAudit && pub != nil {
		pub.Flush()
		log.Printf("witness commitments flushed")
	}
	if persisting {
		ctr, err := saveState(*dataFile, srv, store, sessions)
		if err != nil {
			log.Fatalf("final checkpoint: %v", err)
		}
		log.Printf("state saved to %s (%d ops)", *dataFile, ctr)
		if journal != nil {
			if err := journal.TruncateThrough(ctr); err != nil {
				log.Printf("journal truncate: %v", err)
			}
		}
	}
	if journal != nil {
		if err := journal.Close(); err != nil {
			log.Printf("journal close: %v", err)
		}
		if err := journal.Err(); err != nil {
			log.Printf("journal had degraded: %v", err)
		}
	}
}

// runWitness serves the witness wire protocol: it records the
// primary's signed commitments, gossips with its peers so forks split
// across disjoint witness subsets surface within one round, and holds
// the newest validated checkpoint for promotion.
func runWitness(addr, name, peers string, gossipIvl time.Duration) {
	if name == "" {
		name = "witness@" + addr
	}
	n := witness.NewNode(name, 0)
	for _, p := range strings.Split(peers, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		pa := p
		n.AddPeer(pa, func() (transport.Caller, error) { return transport.Dial(pa) })
	}
	ts, err := transport.Listen(addr, n.Handler())
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("tcvs-server witness %q listening on %s", name, ts.Addr())
	if peers != "" {
		go func() {
			for range time.Tick(gossipIvl) {
				if err := n.GossipOnce(); err != nil {
					log.Printf("gossip: %v", err)
				}
				if evs := n.Evidence(); len(evs) > 0 {
					log.Printf("ALARM: holding %d evidence bundle(s) of primary equivocation", len(evs))
				}
			}
		}()
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	<-sigc
	ts.Close()
}

// saveState persists the Protocol II server + store + session cache as
// one crash-safe generation and returns the checkpointed op counter
// (the op-journal truncation horizon). The session freeze quiesces
// dispatch for only as long as the O(1) state capture takes; encoding
// and disk I/O run after traffic has resumed.
func saveState(path string, srv server.Server, store *cvs.Store, sessions *transport.SessionTable) (uint64, error) {
	var snap *server.P2Snapshot
	var ctr uint64
	var cerr error
	sessions.Freeze(func(ss *transport.SessionsSnapshot) {
		snap, cerr = server.CheckpointP2(srv, store)
		if cerr == nil {
			snap.Sessions = ss
			ctr = srv.DB().Ctr() // quiesced: this IS the snapshot's counter
		}
	})
	if cerr != nil {
		return 0, cerr
	}
	return ctr, server.WriteSnapshotFile(fault.OS, path, func(w io.Writer) error {
		return server.EncodeP2Snapshot(w, snap)
	})
}

func parseBehavior(name string, trigger uint64, groupB string, target sig.UserID) (adversary.Config, error) {
	cfg := adversary.Config{TriggerOp: trigger, Target: target}
	switch name {
	case "fork":
		cfg.Kind = adversary.Fork
	case "replay-stale":
		cfg.Kind = adversary.ReplayStale
	case "drop-update":
		cfg.Kind = adversary.DropUpdate
	case "tamper-answer":
		cfg.Kind = adversary.TamperAnswer
	case "tamper-state":
		cfg.Kind = adversary.TamperState
		cfg.Key, cfg.Value = "planted-by-server", []byte("evil")
	case "counter-replay":
		cfg.Kind = adversary.CounterReplay
	case "stall-epochs":
		cfg.Kind = adversary.StallEpochs
	case "withhold-backup":
		cfg.Kind = adversary.WithholdBackup
	case "torn-commit":
		cfg.Kind = adversary.TornCommit
	default:
		return cfg, fmt.Errorf("unknown behavior %q", name)
	}
	if cfg.Kind == adversary.Fork {
		cfg.GroupB = map[sig.UserID]bool{}
		for _, part := range strings.Split(groupB, ",") {
			part = strings.TrimSpace(part)
			if part == "" {
				continue
			}
			id, err := strconv.ParseUint(part, 10, 32)
			if err != nil {
				return cfg, fmt.Errorf("bad -group-b entry %q: %v", part, err)
			}
			cfg.GroupB[sig.UserID(id)] = true
		}
		if len(cfg.GroupB) == 0 {
			fmt.Fprintln(os.Stderr, "fork behavior needs -group-b")
			os.Exit(2)
		}
	}
	return cfg, nil
}
