package main

import (
	"encoding/json"
	"net/http"

	"trustedcvs/internal/transport"
)

// statsSources bundles the live components the -stats-addr debug
// endpoint snapshots. Every field is optional: a nil func (or zero
// value) reports that subsystem as absent rather than failing, so the
// endpoint works identically for a bare server and a fully decorated
// deployment (admission control, hub, witness publisher, op journal).
type statsSources struct {
	// Admission snapshots the transport's admission controller
	// (nil = overload protection not armed).
	Admission func() transport.AdmissionStats
	// Hub snapshots the hosted broadcast hub (nil = no -hub).
	Hub func() (conns, logLen int, slowFlips, evictions uint64)
	// Lanes snapshots the witness publisher's per-lane delivery
	// breaker states (nil = no -witnesses).
	Lanes func() map[string]string
	// Fanout reports the publisher's delivered/skipped/tripped
	// counters (nil = no -witnesses).
	Fanout func() (delivered, skipped, tripped uint64)
	// EpochLen is the provisioned epoch length in global operations
	// (0 = sync-mode deployment).
	EpochLen uint64
	// WALMode reports the op journal's durability mode: "none" (no
	// journal), "epoch-batched" (healthy), or "degraded" (a write or
	// fsync failed; clients have narrowed to per-op durability).
	WALMode func() string
}

// snapshot assembles the stats document. Shed and expired counts are
// keyed by priority class name so the shedding order is readable off
// the wire without the Priority enum in hand.
func (s statsSources) snapshot() map[string]any {
	doc := map[string]any{
		"epoch_len": s.EpochLen,
	}
	if s.WALMode != nil {
		doc["wal_mode"] = s.WALMode()
	} else {
		doc["wal_mode"] = "none"
	}
	adm := map[string]any{"enabled": s.Admission != nil}
	if s.Admission != nil {
		st := s.Admission()
		shed := map[string]uint64{}
		expired := map[string]uint64{}
		for c := transport.Priority(0); c < transport.NumPriorities; c++ {
			shed[c.String()] = st.Shed[c]
			expired[c.String()] = st.Expired[c]
		}
		adm["limit"] = st.Limit
		adm["inflight"] = st.Inflight
		adm["queue_depth"] = st.Depth
		adm["queue_high_water"] = st.HighWater
		adm["admitted"] = st.Admitted
		adm["shed"] = shed
		adm["expired"] = expired
		adm["latency_ewma_us"] = st.LatencyEWMA.Microseconds()
	}
	doc["admission"] = adm
	if s.Hub != nil {
		conns, logLen, flips, evictions := s.Hub()
		doc["hub"] = map[string]any{
			"conns":      conns,
			"log_len":    logLen,
			"slow_flips": flips,
			"evictions":  evictions,
		}
	}
	if s.Lanes != nil {
		doc["breakers"] = s.Lanes()
	}
	if s.Fanout != nil {
		delivered, skipped, tripped := s.Fanout()
		doc["fanout"] = map[string]uint64{
			"delivered": delivered,
			"skipped":   skipped,
			"tripped":   tripped,
		}
	}
	return doc
}

// newStatsMux builds the -stats-addr handler: GET /debug/tcvs returns
// the snapshot as indented JSON. expvar publication is main's job —
// package-level expvar.Publish would panic on re-registration, which
// tests building several muxes must not trip.
func newStatsMux(src statsSources) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/tcvs", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(src.snapshot()); err != nil {
			// A mid-stream encode failure means the peer hung up; the
			// connection is gone, there is nowhere left to report it.
			return
		}
	})
	return mux
}
