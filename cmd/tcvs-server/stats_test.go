package main

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"trustedcvs/internal/transport"
)

// TestStatsEndpointShape pins the /debug/tcvs document: a fully
// decorated deployment (admission + hub + publisher lanes + journal)
// must expose every subsystem with the agreed keys, and the shed map
// must carry all four priority classes by name.
func TestStatsEndpointShape(t *testing.T) {
	adm := transport.NewAdmission(transport.AdmissionOptions{})
	if err := adm.Acquire(transport.PriorityUser, time.Time{}); err != nil {
		t.Fatalf("acquire: %v", err)
	}
	adm.Release(time.Millisecond)
	src := statsSources{
		Admission: adm.Stats,
		Hub:       func() (int, int, uint64, uint64) { return 2, 17, 1, 3 },
		Lanes:     func() map[string]string { return map[string]string{"w0": "ok", "w1": "open"} },
		Fanout:    func() (uint64, uint64, uint64) { return 10, 4, 1 },
		EpochLen:  64,
		WALMode:   func() string { return "epoch-batched" },
	}
	ts := httptest.NewServer(newStatsMux(src))
	defer ts.Close()

	resp, err := http.Get(ts.URL + "/debug/tcvs")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q, want application/json", ct)
	}
	var doc struct {
		EpochLen  uint64 `json:"epoch_len"`
		WALMode   string `json:"wal_mode"`
		Admission struct {
			Enabled        bool              `json:"enabled"`
			Limit          int               `json:"limit"`
			Inflight       int               `json:"inflight"`
			QueueDepth     int               `json:"queue_depth"`
			QueueHighWater int               `json:"queue_high_water"`
			Admitted       uint64            `json:"admitted"`
			Shed           map[string]uint64 `json:"shed"`
			Expired        map[string]uint64 `json:"expired"`
			LatencyEWMAUs  int64             `json:"latency_ewma_us"`
		} `json:"admission"`
		Hub struct {
			Conns     int    `json:"conns"`
			LogLen    int    `json:"log_len"`
			SlowFlips uint64 `json:"slow_flips"`
			Evictions uint64 `json:"evictions"`
		} `json:"hub"`
		Breakers map[string]string `json:"breakers"`
		Fanout   map[string]uint64 `json:"fanout"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if doc.EpochLen != 64 || doc.WALMode != "epoch-batched" {
		t.Errorf("epoch_len/wal_mode = %d/%q, want 64/epoch-batched", doc.EpochLen, doc.WALMode)
	}
	if !doc.Admission.Enabled || doc.Admission.Admitted != 1 || doc.Admission.Limit < 2 {
		t.Errorf("admission = %+v, want enabled with 1 admitted", doc.Admission)
	}
	if doc.Admission.LatencyEWMAUs < 500 || doc.Admission.LatencyEWMAUs > 2000 {
		t.Errorf("latency_ewma_us = %d, want ~1000 (one 1ms sample)", doc.Admission.LatencyEWMAUs)
	}
	for _, class := range []string{"user", "audit", "gossip", "background"} {
		if _, ok := doc.Admission.Shed[class]; !ok {
			t.Errorf("shed map missing class %q", class)
		}
		if _, ok := doc.Admission.Expired[class]; !ok {
			t.Errorf("expired map missing class %q", class)
		}
	}
	if doc.Hub.Conns != 2 || doc.Hub.LogLen != 17 || doc.Hub.SlowFlips != 1 || doc.Hub.Evictions != 3 {
		t.Errorf("hub = %+v, want {2 17 1 3}", doc.Hub)
	}
	if doc.Breakers["w1"] != "open" || doc.Breakers["w0"] != "ok" {
		t.Errorf("breakers = %v, want w0 ok / w1 open", doc.Breakers)
	}
	if doc.Fanout["delivered"] != 10 || doc.Fanout["skipped"] != 4 || doc.Fanout["tripped"] != 1 {
		t.Errorf("fanout = %v, want delivered 10 / skipped 4 / tripped 1", doc.Fanout)
	}
}

// TestStatsEndpointBare pins the degenerate document: a bare server
// (no admission, hub, publisher, or journal) still serves valid JSON
// with admission.enabled=false and wal_mode "none".
func TestStatsEndpointBare(t *testing.T) {
	ts := httptest.NewServer(newStatsMux(statsSources{}))
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/debug/tcvs")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode: %v", err)
	}
	adm, ok := doc["admission"].(map[string]any)
	if !ok || adm["enabled"] != false {
		t.Errorf("admission = %v, want enabled=false", doc["admission"])
	}
	if doc["wal_mode"] != "none" {
		t.Errorf("wal_mode = %v, want none", doc["wal_mode"])
	}
	for _, absent := range []string{"hub", "breakers", "fanout"} {
		if _, ok := doc[absent]; ok {
			t.Errorf("bare document unexpectedly carries %q", absent)
		}
	}
}
