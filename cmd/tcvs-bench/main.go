// Command tcvs-bench regenerates the experiment tables E1–E8 (see
// DESIGN.md §2 for the mapping to the paper's figures, theorems and
// design claims, and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	tcvs-bench            # run everything
//	tcvs-bench -e E2      # one experiment
package main

import (
	"flag"
	"fmt"
	"os"

	"trustedcvs/internal/bench"
)

func main() {
	var e = flag.String("e", "all", "experiment to run: E1..E8 or all")
	flag.Parse()

	if *e == "all" {
		for _, t := range bench.All() {
			t.Render(os.Stdout)
		}
		return
	}
	run, ok := bench.ByID(*e)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E8 or all)\n", *e)
		os.Exit(2)
	}
	run().Render(os.Stdout)
}
