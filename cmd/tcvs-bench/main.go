// Command tcvs-bench regenerates the experiment tables E1–E13 (see
// DESIGN.md §2 for the mapping to the paper's figures, theorems and
// design claims, and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	tcvs-bench            # run everything
//	tcvs-bench -e E2      # one experiment
//	tcvs-bench -e E13     # concurrency benchmark; also writes BENCH_E13.json
package main

import (
	"flag"
	"fmt"
	"os"

	"trustedcvs/internal/bench"
)

func main() {
	var e = flag.String("e", "all", "experiment to run: E1..E13 or all")
	var out = flag.String("o", "BENCH_E13.json", "output path for E13's JSON record")
	flag.Parse()

	if *e == "all" {
		for _, t := range bench.All() {
			t.Render(os.Stdout)
		}
		return
	}
	if *e == "E13" {
		// E13 runs through RunE13 so the raw data can be recorded
		// alongside the rendered table.
		d, err := bench.RunE13(bench.DefaultE13Config())
		if err != nil {
			fmt.Fprintf(os.Stderr, "E13: %v\n", err)
			os.Exit(1)
		}
		d.Table().Render(os.Stdout)
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "E13: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := d.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "E13: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", *out)
		return
	}
	run, ok := bench.ByID(*e)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E13 or all)\n", *e)
		os.Exit(2)
	}
	run().Render(os.Stdout)
}
