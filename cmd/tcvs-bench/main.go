// Command tcvs-bench regenerates the experiment tables E1–E15 (see
// DESIGN.md §2 for the mapping to the paper's figures, theorems and
// design claims, and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	tcvs-bench            # run everything
//	tcvs-bench -e E2      # one experiment
//	tcvs-bench -e E13     # concurrency benchmark; also writes BENCH_E13.json
//	tcvs-bench -e E14     # fault/recovery experiment; writes BENCH_E14.json
//	tcvs-bench -e E15     # witness replication/failover; writes BENCH_E15.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"trustedcvs/internal/bench"
)

func main() {
	var e = flag.String("e", "all", "experiment to run: E1..E15 or all")
	var out = flag.String("o", "", "output path for E13/E14/E15's JSON record (default BENCH_<ID>.json)")
	flag.Parse()

	if *e == "all" {
		for _, t := range bench.All() {
			t.Render(os.Stdout)
		}
		return
	}
	// E13–E15 run through their Run functions so the raw data can be
	// recorded alongside the rendered table.
	if *e == "E13" || *e == "E14" || *e == "E15" {
		var d interface {
			Table() *bench.Table
			WriteJSON(w io.Writer) error
		}
		var err error
		switch *e {
		case "E13":
			d, err = bench.RunE13(bench.DefaultE13Config())
		case "E14":
			d, err = bench.RunE14(bench.DefaultE14Config())
		default:
			d, err = bench.RunE15(bench.DefaultE15Config())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *e, err)
			os.Exit(1)
		}
		d.Table().Render(os.Stdout)
		path := *out
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", *e)
		}
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *e, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := d.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *e, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", path)
		return
	}
	run, ok := bench.ByID(*e)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E15 or all)\n", *e)
		os.Exit(2)
	}
	run().Render(os.Stdout)
}
