// Command tcvs-bench regenerates the experiment tables E1–E18 (see
// DESIGN.md §2 for the mapping to the paper's figures, theorems and
// design claims, and EXPERIMENTS.md for recorded results).
//
// Usage:
//
//	tcvs-bench            # run everything
//	tcvs-bench -e E2      # one experiment
//	tcvs-bench -e E13     # concurrency benchmark; also writes BENCH_E13.json
//	tcvs-bench -e E14     # fault/recovery experiment; writes BENCH_E14.json
//	tcvs-bench -e E15     # witness replication/failover; writes BENCH_E15.json
//	tcvs-bench -e E16     # Merkle forest scaling sweep; writes BENCH_E16.json
//	tcvs-bench -e E17     # epoch-batched async audit; writes BENCH_E17.json
//	tcvs-bench -e E18     # crash-durable audit matrix; writes BENCH_E18.json
//	tcvs-bench -e E21     # overload protection sweep; writes BENCH_E21.json
//
// Experiments that record a BENCH_<ID>.json refuse to overwrite an
// existing record unless -force is given: checked-in records are the
// repo's evidence, and clobbering one by accident destroys the number
// a PR was accepted on.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"trustedcvs/internal/bench"
)

func main() {
	var e = flag.String("e", "all", "experiment to run: E1..E18, E21 or all")
	var out = flag.String("o", "", "output path for E13–E21's JSON record (default BENCH_<ID>.json)")
	var force = flag.Bool("force", false, "overwrite an existing BENCH_<ID>.json record")
	flag.Parse()

	if *e == "all" {
		for _, t := range bench.All() {
			t.Render(os.Stdout)
		}
		return
	}
	// E13–E18 run through their Run functions so the raw data can be
	// recorded alongside the rendered table.
	if *e == "E13" || *e == "E14" || *e == "E15" || *e == "E16" || *e == "E17" || *e == "E18" || *e == "E21" {
		path := *out
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", *e)
		}
		// Refuse to clobber an existing record before burning minutes on
		// the measurement.
		if !*force {
			if _, err := os.Stat(path); err == nil {
				fmt.Fprintf(os.Stderr, "%s exists; re-run with -force to overwrite it\n", path)
				os.Exit(1)
			}
		}
		var d interface {
			Table() *bench.Table
			WriteJSON(w io.Writer) error
		}
		var err error
		switch *e {
		case "E13":
			d, err = bench.RunE13(bench.DefaultE13Config())
		case "E14":
			d, err = bench.RunE14(bench.DefaultE14Config())
		case "E15":
			d, err = bench.RunE15(bench.DefaultE15Config())
		case "E16":
			d, err = bench.RunE16(bench.DefaultE16Config())
		case "E17":
			d, err = bench.RunE17(bench.DefaultE17Config())
		case "E21":
			d, err = bench.RunE21(bench.DefaultE21Config())
		default:
			d, err = bench.RunE18(bench.DefaultE18Config())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *e, err)
			os.Exit(1)
		}
		d.Table().Render(os.Stdout)
		f, err := os.Create(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *e, err)
			os.Exit(1)
		}
		defer f.Close()
		if err := d.WriteJSON(f); err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", *e, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", path)
		return
	}
	run, ok := bench.ByID(*e)
	if !ok {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (want E1..E18, E21 or all)\n", *e)
		os.Exit(2)
	}
	run().Render(os.Stdout)
}
