// Command tcvs-lint is the repo's invariant analyzer: a stdlib-only
// static checker for the conventions the protocol security argument
// depends on but the compiler cannot see. See internal/lint for the
// pass catalogue and DESIGN.md "Static analysis & enforced invariants"
// for the rationale behind each invariant.
//
// Usage:
//
//	tcvs-lint [-json] [-passes p1,p2] [-slow name,name] [pattern ...]
//
// Patterns are package directories relative to the working directory;
// "./..." (the default) analyzes the whole module. Exit status: 0 when
// clean, 1 when findings were reported, 2 on load or usage errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"trustedcvs/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	passNames := flag.String("passes", "", "comma-separated subset of passes to run (default: all)")
	slow := flag.String("slow", "", "extra lockscope slow-call names (go/types FullName form), comma-separated")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tcvs-lint [flags] [pattern ...]\n\npasses:\n")
		for _, p := range lint.Passes() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", p.Name, p.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	passes := lint.Passes()
	if *passNames != "" {
		passes = passes[:0:0]
		for _, name := range strings.Split(*passNames, ",") {
			p := lint.PassByName(strings.TrimSpace(name))
			if p == nil {
				fmt.Fprintf(os.Stderr, "tcvs-lint: unknown pass %q\n", name)
				return 2
			}
			passes = append(passes, p)
		}
	}

	m, err := lint.LoadModule(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcvs-lint: %v\n", err)
		return 2
	}
	if *slow != "" {
		for _, name := range strings.Split(*slow, ",") {
			if name = strings.TrimSpace(name); name != "" {
				m.SlowCalls[name] = true
			}
		}
	}

	diags := lint.Run(m, passes)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diag{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "tcvs-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "tcvs-lint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
