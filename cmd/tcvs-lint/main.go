// Command tcvs-lint is the repo's invariant analyzer: a stdlib-only
// static checker for the conventions the protocol security argument
// depends on but the compiler cannot see. See internal/lint for the
// pass catalogue and DESIGN.md "Static analysis & enforced invariants"
// for the rationale behind each invariant.
//
// Usage:
//
//	tcvs-lint [-json] [-passes p1,p2] [-slow name,name] [-time] [-graph call|lock] [pattern ...]
//
// Patterns are package directories relative to the working directory;
// "./..." (the default) analyzes the whole module. Exit status: 0 when
// clean, 1 when findings were reported, 2 on load or usage errors.
//
// -graph dumps the interprocedural engine's view (the type-resolved
// call graph or the lock-order graph) as Graphviz DOT on stdout and
// exits — the triage companion to a verifyflow/lockorder finding.
// -time prints per-pass wall-clock timings to stderr.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"trustedcvs/internal/lint"
)

func main() {
	os.Exit(run())
}

func run() int {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of file:line text")
	passNames := flag.String("passes", "", "comma-separated subset of passes to run (default: all)")
	slow := flag.String("slow", "", "extra lockscope slow-call names (go/types FullName form), comma-separated")
	graph := flag.String("graph", "", "dump a graph as Graphviz DOT and exit: \"call\" (call graph) or \"lock\" (lock-order graph)")
	timings := flag.Bool("time", false, "print per-pass wall-clock timings to stderr")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: tcvs-lint [flags] [pattern ...]\n\npasses:\n")
		for _, p := range lint.Passes() {
			fmt.Fprintf(os.Stderr, "  %-16s %s\n", p.Name, p.Doc)
		}
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	passes := lint.Passes()
	if *passNames != "" {
		passes = passes[:0:0]
		for _, name := range strings.Split(*passNames, ",") {
			p := lint.PassByName(strings.TrimSpace(name))
			if p == nil {
				fmt.Fprintf(os.Stderr, "tcvs-lint: unknown pass %q\n", name)
				return 2
			}
			passes = append(passes, p)
		}
	}

	m, err := lint.LoadModule(".", patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tcvs-lint: %v\n", err)
		return 2
	}
	if *slow != "" {
		for _, name := range strings.Split(*slow, ",") {
			if name = strings.TrimSpace(name); name != "" {
				m.SlowCalls[name] = true
			}
		}
	}

	switch *graph {
	case "":
	case "call":
		fmt.Print(lint.CallGraphDOT(m))
		return 0
	case "lock":
		fmt.Print(lint.LockGraphDOT(m))
		return 0
	default:
		fmt.Fprintf(os.Stderr, "tcvs-lint: -graph wants \"call\" or \"lock\", got %q\n", *graph)
		return 2
	}

	diags, passTimes := lint.RunTimed(m, passes)
	if *timings {
		for _, t := range passTimes {
			fmt.Fprintf(os.Stderr, "tcvs-lint: %-16s %8.1fms\n", t.Name, float64(t.Elapsed.Microseconds())/1000)
		}
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diag{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintf(os.Stderr, "tcvs-lint: %v\n", err)
			return 2
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "tcvs-lint: %d finding(s)\n", len(diags))
		}
		return 1
	}
	return 0
}
