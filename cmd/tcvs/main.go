// Command tcvs is the verified CVS command-line client (Protocol II).
// Every command runs as one or more fully verified operations against
// an untrusted tcvs-server; protocol state (the σ/last registers) is
// persisted between invocations in the state file, and synchronization
// rounds run over the users' broadcast hub.
//
// Usage:
//
//	tcvs -server HOST:PORT -hub HOST:PORT -user 0 -state u0.state [flags] COMMAND ...
//
//	tcvs ... commit -m "message" file1 file2 ...
//	tcvs ... checkout file1 file2 ...
//	tcvs ... checkout -r 3 file
//	tcvs ... log file
//	tcvs ... list
//	tcvs ... status file1 ...
//	tcvs ... tag -t RELEASE_1 file1 ...
//	tcvs ... sync            # participate in one synchronization round
//	tcvs ... watch -d 1m     # stay online, serve sync rounds
//
// All users must agree on -users (population size) and -k (sync
// period). A sync round completes only while every user is online
// (running any command, or `watch`).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"trustedcvs/internal/backoff"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto1"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/driver"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/workspace"
)

func main() {
	if err := run(); err != nil {
		if de, ok := core.AsDetection(err); ok {
			fmt.Fprintf(os.Stderr, "\n*** SERVER DEVIATION DETECTED ***\n%v\n", de)
			fmt.Fprintln(os.Stderr, "stop using this server and alert the other users.")
			os.Exit(3)
		}
		fmt.Fprintln(os.Stderr, "tcvs:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		serverAddr = flag.String("server", "127.0.0.1:7070", "tcvs-server address")
		hubAddr    = flag.String("hub", "127.0.0.1:7071", "broadcast hub address")
		proto      = flag.String("proto", "2", "protocol: 1 (signed states, needs -seed) or 2 (XOR registers)")
		user       = flag.Uint("user", 0, "this user's ID")
		users      = flag.Int("users", 2, "total user population")
		k          = flag.Uint64("k", 16, "sync period (operations)")
		shards     = flag.Int("shards", 1, "shard count of the server's Merkle forest (must match tcvs-server -shards; protocol 2 only)")
		seed       = flag.Int64("seed", 1, "deterministic key seed shared with the server (protocol 1 only)")
		stateFile  = flag.String("state", "", "protocol state file (default tcvs-user<ID>.state)")
		author     = flag.String("author", "", "author name for commits (default user<ID>)")
	)
	flag.Parse()
	if flag.NArg() == 0 {
		return fmt.Errorf("no command; see package docs (commit, checkout, log, list, status, tag, sync, watch)")
	}
	if *stateFile == "" {
		*stateFile = fmt.Sprintf("tcvs-user%d.state", *user)
	}
	if *author == "" {
		*author = fmt.Sprintf("user%d", *user)
	}

	// Resilient endpoints: the server connection reconnects and retries
	// with exactly-once semantics (session table on the server side),
	// and the hub channel resumes the broadcast log after a drop — a
	// flaky network costs latency, never a false alarm.
	conn := transport.DialResilient(*serverAddr, transport.RetryPolicy{})
	bc := broadcast.DialHubResume(*hubAddr)

	var client *driver.Client
	var save func() error
	switch *proto {
	case "2":
		u, err := loadUser2(*stateFile, sig.UserID(*user), *k, *shards)
		if err != nil {
			return err
		}
		client = driver.NewP2(u, conn, bc, *users)
		save = func() error { return saveUser(*stateFile, u.MarshalState) }
	case "1":
		signers, ring, err := sig.DeterministicSigners(*users, *seed)
		if err != nil {
			return err
		}
		if int(*user) >= len(signers) {
			return fmt.Errorf("user %d out of range (population %d)", *user, *users)
		}
		u, err := loadUser1(*stateFile, signers[*user], ring, *k)
		if err != nil {
			return err
		}
		client = driver.NewP1(u, conn, bc, *users)
		save = func() error { return saveUser(*stateFile, u.MarshalState) }
	default:
		return fmt.Errorf("unsupported -proto %q (protocol 3 runs have no CLI; see examples/epochs)", *proto)
	}
	defer client.Close()
	repo := cvs.NewClient(client, client, *author, nil)

	cmdErr := dispatch(repo, client, flag.Args())

	// Always persist the protocol state — even after a failed op the
	// local state is what this user has verified so far. After a
	// *detection* the state file is left alone; the user is expected
	// to stop.
	if _, ok := core.AsDetection(cmdErr); !ok {
		if err := save(); err != nil {
			return err
		}
	}
	return cmdErr
}

func dispatch(repo *cvs.Client, client *driver.Client, args []string) error {
	cmd, rest := args[0], args[1:]
	switch cmd {
	case "commit":
		fs := flag.NewFlagSet("commit", flag.ExitOnError)
		msg := fs.String("m", "", "log message")
		_ = fs.Parse(rest)
		if fs.NArg() == 0 {
			return fmt.Errorf("commit: no files")
		}
		files := map[string][]byte{}
		for _, path := range fs.Args() {
			content, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			files[path] = content
		}
		results, err := repo.Commit(files, *msg, nil)
		if err != nil {
			return err
		}
		for _, r := range results {
			fmt.Printf("committed %s -> revision %d\n", r.Path, r.Rev)
		}
		return client.WaitIdle(time.Minute)

	case "checkout":
		fs := flag.NewFlagSet("checkout", flag.ExitOnError)
		rev := fs.Uint64("r", 0, "revision (0 = head)")
		tag := fs.String("t", "", "tag")
		_ = fs.Parse(rest)
		if fs.NArg() == 0 {
			return fmt.Errorf("checkout: no files")
		}
		var got map[string][]byte
		var err error
		switch {
		case *tag != "":
			got, err = repo.CheckoutTag(*tag, fs.Args()...)
		case *rev != 0:
			got, err = repo.CheckoutRev(*rev, fs.Args()...)
		default:
			got, err = repo.Checkout(fs.Args()...)
		}
		if err != nil {
			return err
		}
		for path, content := range got {
			if err := os.WriteFile(path, content, 0o644); err != nil {
				return err
			}
			fmt.Printf("checked out %s (%d bytes, verified)\n", path, len(content))
		}
		return client.WaitIdle(time.Minute)

	case "log":
		if len(rest) != 1 {
			return fmt.Errorf("log: exactly one file")
		}
		revs, err := repo.Log(rest[0])
		if err != nil {
			return err
		}
		for _, r := range revs {
			fmt.Printf("revision %d  %s  %s  hash %s\n  %s\n",
				r.Rev, time.Unix(r.TimeUnix, 0).UTC().Format(time.RFC3339), r.Author,
				shortHash(r.Hash), r.Log)
		}
		return client.WaitIdle(time.Minute)

	case "list":
		fs := flag.NewFlagSet("list", flag.ExitOnError)
		prefix := fs.String("p", "", "restrict to paths under this prefix")
		_ = fs.Parse(rest)
		var files []cvs.FileStatus
		var err error
		if *prefix != "" {
			files, err = repo.ListPrefix(*prefix)
		} else {
			files, err = repo.List()
		}
		if err != nil {
			return err
		}
		for _, f := range files {
			fmt.Printf("%-40s rev %-4d %s\n", f.Path, f.Rev, shortHash(f.Hash))
		}
		return client.WaitIdle(time.Minute)

	case "status":
		if len(rest) == 0 {
			return fmt.Errorf("status: no files")
		}
		st, err := repo.Status(rest...)
		if err != nil {
			return err
		}
		for _, f := range st {
			if f.Found {
				fmt.Printf("%-40s rev %-4d %s\n", f.Path, f.Rev, shortHash(f.Hash))
			} else {
				fmt.Printf("%-40s (absent)\n", f.Path)
			}
		}
		return client.WaitIdle(time.Minute)

	case "update":
		fs := flag.NewFlagSet("update", flag.ExitOnError)
		base := fs.Uint64("r", 0, "revision the local edit is based on (required)")
		_ = fs.Parse(rest)
		if fs.NArg() != 1 || *base == 0 {
			return fmt.Errorf("update: need -r BASEREV and exactly one file")
		}
		path := fs.Arg(0)
		local, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		up, err := repo.Update(path, local, *base)
		if err != nil {
			return err
		}
		if up.UpToDate {
			fmt.Printf("%s is already at head (rev %d)\n", path, up.HeadRev)
			return client.WaitIdle(time.Minute)
		}
		if err := os.WriteFile(path, up.Merged, 0o644); err != nil {
			return err
		}
		if up.Conflicts > 0 {
			fmt.Printf("merged head rev %d into %s with %d CONFLICT(S) — resolve the markers, then commit\n",
				up.HeadRev, path, up.Conflicts)
		} else {
			fmt.Printf("merged head rev %d into %s cleanly — commit when ready\n", up.HeadRev, path)
		}
		return client.WaitIdle(time.Minute)

	case "annotate":
		if len(rest) != 1 {
			return fmt.Errorf("annotate: exactly one file")
		}
		origins, err := repo.Annotate(rest[0])
		if err != nil {
			return err
		}
		for i, o := range origins {
			line := o.Line
			if n := len(line); n > 0 && line[n-1] == '\n' {
				line = line[:n-1]
			}
			fmt.Printf("%4d  rev %-4d %-12s %s\n", i+1, o.Rev, o.Author, line)
		}
		return client.WaitIdle(time.Minute)

	case "remove":
		fs := flag.NewFlagSet("remove", flag.ExitOnError)
		msg := fs.String("m", "", "log message")
		_ = fs.Parse(rest)
		if fs.NArg() == 0 {
			return fmt.Errorf("remove: no files")
		}
		results, err := repo.Remove(*msg, fs.Args()...)
		if err != nil {
			return err
		}
		for _, r := range results {
			if r.Rev == 0 {
				fmt.Printf("%s was not in the repository\n", r.Path)
			} else {
				fmt.Printf("removed %s at revision %d (history retained)\n", r.Path, r.Rev)
			}
		}
		return client.WaitIdle(time.Minute)

	case "diff":
		fs := flag.NewFlagSet("diff", flag.ExitOnError)
		r1 := fs.Uint64("r1", 0, "left revision (required)")
		r2 := fs.Uint64("r2", 0, "right revision (0 = head)")
		_ = fs.Parse(rest)
		if fs.NArg() != 1 || *r1 == 0 {
			return fmt.Errorf("diff: need -r1 N and exactly one file")
		}
		patch, err := repo.Diff(fs.Arg(0), *r1, *r2)
		if err != nil {
			return err
		}
		if patch.IsIdentity() {
			fmt.Println("(no differences)")
		} else {
			right := fmt.Sprintf("%s@%d", fs.Arg(0), *r2)
			if *r2 == 0 {
				right = fs.Arg(0) + "@head"
			}
			fmt.Print(patch.Unified(fmt.Sprintf("%s@%d", fs.Arg(0), *r1), right, 3))
		}
		return client.WaitIdle(time.Minute)

	case "tag":
		fs := flag.NewFlagSet("tag", flag.ExitOnError)
		name := fs.String("t", "", "tag name")
		_ = fs.Parse(rest)
		if *name == "" || fs.NArg() == 0 {
			return fmt.Errorf("tag: need -t NAME and files")
		}
		tagged, err := repo.Tag(*name, fs.Args()...)
		if err != nil {
			return err
		}
		for _, f := range tagged {
			fmt.Printf("tagged %s rev %d as %s\n", f.Path, f.Rev, *name)
		}
		return client.WaitIdle(time.Minute)

	case "ws-checkout", "ws-status", "ws-update", "ws-commit", "ws-add":
		return wsCommand(repo, client, cmd, rest)

	case "sync":
		// Participate in (or wait out) one synchronization window.
		fmt.Println("participating in synchronization (10s window)...")
		if err := client.WaitIdle(10 * time.Second); err != nil {
			return err
		}
		time.Sleep(10 * time.Second)
		return client.Err()

	case "watch":
		fs := flag.NewFlagSet("watch", flag.ExitOnError)
		d := fs.Duration("d", time.Minute, "how long to stay online")
		_ = fs.Parse(rest)
		fmt.Printf("online for %v, serving sync rounds...\n", *d)
		deadline := time.Now().Add(*d)
		poll := backoff.Poll(200 * time.Millisecond)
		for time.Now().Before(deadline) {
			if err := client.Err(); err != nil {
				return err
			}
			poll.Sleep()
		}
		return client.Err()

	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// wsCommand dispatches the working-copy commands: a verified sandbox
// directory with tracked base revisions (see internal/workspace).
func wsCommand(repo *cvs.Client, client *driver.Client, cmd string, rest []string) error {
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	dir := fs.String("dir", ".", "workspace directory")
	msg := fs.String("m", "", "log message (ws-commit)")
	prefix := fs.String("p", "", "path prefix (ws-checkout)")
	_ = fs.Parse(rest)

	ws, err := workspace.Open(*dir, repo)
	if err != nil {
		return err
	}
	switch cmd {
	case "ws-checkout":
		if fs.NArg() > 0 {
			err = ws.Checkout(fs.Args()...)
		} else {
			err = ws.CheckoutAll(*prefix)
		}
		if err != nil {
			return err
		}
		fmt.Printf("workspace %s tracks %d file(s)\n", *dir, len(ws.Tracked()))

	case "ws-add":
		if fs.NArg() == 0 {
			return fmt.Errorf("ws-add: no files")
		}
		for _, p := range fs.Args() {
			if err := ws.Add(p); err != nil {
				return err
			}
			fmt.Printf("added %s\n", p)
		}

	case "ws-status":
		states, err := ws.Status()
		if err != nil {
			return err
		}
		for _, st := range states {
			flagStr := "clean"
			switch {
			case st.Missing:
				flagStr = "MISSING"
			case st.Modified && st.OutOfDate:
				flagStr = "modified, needs update"
			case st.Modified:
				flagStr = "modified"
			case st.OutOfDate:
				flagStr = "needs update"
			}
			fmt.Printf("%-40s base %-4d head %-4d %s\n", st.Path, st.BaseRev, st.HeadRev, flagStr)
		}

	case "ws-update":
		reports, err := ws.Update()
		if err != nil {
			return err
		}
		for _, r := range reports {
			switch r.Action {
			case "conflict":
				fmt.Printf("%-40s MERGED WITH %d CONFLICT(S) — resolve before committing\n", r.Path, r.Conflicts)
			default:
				fmt.Printf("%-40s %s (base now %d)\n", r.Path, r.Action, r.NewBase)
			}
		}

	case "ws-commit":
		results, err := ws.Commit(*msg)
		if err != nil {
			return err
		}
		if results == nil {
			fmt.Println("nothing modified")
		}
		for _, r := range results {
			if r.Conflict {
				fmt.Printf("%s: up-to-date check failed — run ws-update first\n", r.Path)
			} else {
				fmt.Printf("committed %s -> revision %d\n", r.Path, r.Rev)
			}
		}
	}
	return client.WaitIdle(time.Minute)
}

func loadUser2(path string, id sig.UserID, k uint64, shards int) (*proto2.User, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		// Fresh user on a fresh repository: genesis state. A forest
		// server starts every shard at the empty tree, so the user's
		// per-shard genesis roots are N copies of the empty root.
		fmt.Fprintf(os.Stderr, "tcvs: no state file %s; starting from the empty repository state\n", path)
		if shards > 1 {
			roots := make([]digest.Digest, shards)
			for i := range roots {
				roots[i] = digest.Empty()
			}
			return proto2.NewForestUser(id, roots, k), nil
		}
		return proto2.NewUser(id, digest.Empty(), k), nil
	}
	if err != nil {
		return nil, err
	}
	return proto2.RestoreUser(data)
}

func loadUser1(path string, signer *sig.Signer, ring *sig.Ring, k uint64) (*proto1.User, error) {
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		fmt.Fprintf(os.Stderr, "tcvs: no state file %s; starting fresh\n", path)
		return proto1.NewUser(signer, ring, k), nil
	}
	if err != nil {
		return nil, err
	}
	return proto1.RestoreUser(signer, ring, data)
}

func saveUser(path string, marshal func() ([]byte, error)) error {
	data, err := marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o600)
}

func shortHash(d digest.Digest) string { return d.Short() }
