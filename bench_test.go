package trustedcvs_test

// One testing.B benchmark per experiment (E1–E8, see DESIGN.md §2 and
// EXPERIMENTS.md) plus component micro-benchmarks for the hot paths.
// `go test -bench=. -benchmem` regenerates every number; the ExN
// benches report experiment-specific metrics via b.ReportMetric.

import (
	"fmt"
	"testing"
	"time"

	"trustedcvs"
	"trustedcvs/internal/adversary"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/merkle"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/sim"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/wire"
	"trustedcvs/internal/workload"
)

// --- Experiment benches (one per table/figure) ----------------------

// BenchmarkE1PartitionAttack runs the Figure 1 attack end to end under
// Protocol II and reports the per-user detection delay.
func BenchmarkE1PartitionAttack(b *testing.B) {
	var delay int
	for i := 0; i < b.N; i++ {
		trace, info := workload.Partitionable(2, 2, 8, int64(i))
		res := sim.Run(sim.Config{
			Protocol: server.P2, Users: 4, K: 8, Trace: trace,
			Adversary: &adversary.Config{Kind: adversary.Fork, TriggerOp: info.T1Op, GroupB: info.GroupB},
		})
		if !res.Detected {
			b.Fatal("partition not detected")
		}
		delay = res.MaxUserOpsAfterDeviation
	}
	b.ReportMetric(float64(delay), "user-ops-to-detect")
}

// BenchmarkE2VOVerify measures single-update VO verification on a 100k
// record tree and reports the VO's digest count.
func BenchmarkE2VOVerify(b *testing.B) {
	tr := merkle.New(0)
	for i := 0; i < 100_000; i++ {
		tr = tr.Put(fmt.Sprintf("key-%07d", i), []byte("value"))
	}
	oldRoot := tr.RootDigest()
	rec := tr.Record()
	if err := rec.Put("key-0050000", []byte("updated")); err != nil {
		b.Fatal(err)
	}
	vo := rec.VO()
	b.ReportMetric(float64(vo.Stats().PrunedDigests), "vo-digests")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := vo.Replay(oldRoot, func(pt *merkle.Tree) (*merkle.Tree, error) {
			return pt.PutErr("key-0050000", []byte("updated"))
		}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE3ReplayCheck measures the Protocol II sync check itself
// (the XOR-register evaluation that defeats Figure 3).
func BenchmarkE3ReplayCheck(b *testing.B) {
	const users = 32
	// Build realistic reports by running a short honest history.
	db := vdb.New(0)
	srv := proto2.NewServer(db)
	us := make([]*proto2.User, users)
	for i := range us {
		us[i] = proto2.NewUser(sig.UserID(i), db.Root(), 1<<62)
	}
	for i := 0; i < 4*users; i++ {
		u := us[i%users]
		op := &vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("k%d", i%7), Val: []byte("v")}}}
		resp, err := srv.HandleOp(u.Request(op))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := u.HandleResponse(op, resp); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range us {
			if err := u.CompleteSync(collectReports(us)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkE4EpochAudit runs a full honest Protocol III run (6 epochs,
// 8 users) including the rotating epoch audits.
func BenchmarkE4EpochAudit(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := sim.Run(sim.Config{
			Protocol: server.P3, Users: 8, EpochLen: 32, LocalClocks: true,
			Trace: workload.EveryUserTwicePerEpoch(8, 6, 32, int64(i)),
		})
		if res.Err != nil || res.Detected {
			b.Fatalf("honest P3 run failed: %v %v", res.Err, res.Detection)
		}
	}
}

// BenchmarkE5DetectionSweep measures a full detection experiment (drop
// an update, sync period 16) per iteration.
func BenchmarkE5DetectionSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		trace := workload.Generate(workload.Config{Users: 4, Files: 12, Ops: 160, WriteRatio: 0.5, FilesPerOp: 1, Seed: int64(i)})
		res := sim.Run(sim.Config{
			Protocol: server.P2, Users: 4, K: 16, Trace: trace,
			Adversary: &adversary.Config{Kind: adversary.DropUpdate, TriggerOp: 20},
		})
		if !res.Detected || res.MaxUserOpsAfterDeviation > 16 {
			b.Fatalf("k-bound failed: %+v", res.Detection)
		}
	}
}

// BenchmarkE6MessagesPerOp measures a verified Protocol II operation
// through the full live stack (driver + in-proc transport), the 2
// message exchange of Section 4.3.
func BenchmarkE6MessagesPerOp(b *testing.B) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{Users: 2, SyncEvery: 1 << 30})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.Do(i%2, &trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: "k", Val: []byte("v")}}}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE7ProtocolII and friends measure per-op cost against the
// trusted floor at a 10k-record database.
func BenchmarkE7Trusted(b *testing.B) {
	db := seededDB(b, 10_000)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ApplyPlain(kvOp(i)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkE7ProtocolII(b *testing.B) {
	db := seededDB(b, 10_000)
	srv := proto2.NewServer(db)
	u := proto2.NewUser(0, db.Root(), 1<<62)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		op := kvOp(i)
		resp, err := srv.HandleOp(u.Request(op))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := u.HandleResponse(op, resp); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8SyncRound measures a full live synchronization round
// (announce + n reports + n evaluations) with 8 users.
func BenchmarkE8SyncRound(b *testing.B) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{Users: 8, SyncEvery: 1})
	if err != nil {
		b.Fatal(err)
	}
	defer cluster.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// Every op triggers a sync (k=1); WaitIdle spans the round.
		if _, err := cluster.Do(0, &trustedcvs.WriteOp{Puts: []trustedcvs.KV{{Key: "k", Val: []byte("v")}}}); err != nil {
			b.Fatal(err)
		}
		if err := cluster.WaitIdle(0, 10*time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Component micro-benches ----------------------------------------

func BenchmarkMerklePut(b *testing.B) {
	tr := merkle.New(0)
	for i := 0; i < 10_000; i++ {
		tr = tr.Put(fmt.Sprintf("key-%07d", i), []byte("value"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Put(fmt.Sprintf("key-%07d", i%10_000), []byte("new"))
	}
}

func BenchmarkMerkleGet(b *testing.B) {
	tr := merkle.New(0)
	for i := 0; i < 10_000; i++ {
		tr = tr.Put(fmt.Sprintf("key-%07d", i), []byte("value"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(fmt.Sprintf("key-%07d", i%10_000))
	}
}

func BenchmarkMerkleRootDigestAfterPut(b *testing.B) {
	tr := merkle.New(0)
	for i := 0; i < 10_000; i++ {
		tr = tr.Put(fmt.Sprintf("key-%07d", i), []byte("value"))
	}
	tr.RootDigest() // warm the digest cache; per-op cost is then O(log n)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		nt := tr.Put("key-0005000", []byte{byte(i)})
		_ = nt.RootDigest()
	}
}

func BenchmarkStateHash(b *testing.B) {
	root := digest.OfBytes(digest.DomainState, []byte("root"))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = core.StateHash(root, uint64(i))
	}
}

func BenchmarkWireRoundTripVO(b *testing.B) {
	db := vdb.New(0)
	for i := 0; i < 1000; i++ {
		if err := db.Preload(&vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("k%04d", i), Val: []byte("v")}}}); err != nil {
			b.Fatal(err)
		}
	}
	_, vo, err := db.Apply(&vdb.WriteOp{Puts: []vdb.KV{{Key: "k0500", Val: []byte("x")}}})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := wire.Size(vo)
		if err != nil {
			b.Fatal(err)
		}
		_ = n
	}
}

// --- helpers ---------------------------------------------------------

func collectReports(us []*proto2.User) []core.SyncReportII {
	out := make([]core.SyncReportII, len(us))
	for i, u := range us {
		out[i] = u.SyncReport()
	}
	return out
}

func seededDB(b *testing.B, n int) *vdb.DB {
	b.Helper()
	db := vdb.New(0)
	for i := 0; i < n; i += 500 {
		op := &vdb.WriteOp{}
		for j := i; j < i+500 && j < n; j++ {
			op.Puts = append(op.Puts, vdb.KV{Key: fmt.Sprintf("key-%08d", j), Val: []byte("seed")})
		}
		if err := db.Preload(op); err != nil {
			b.Fatal(err)
		}
	}
	return db
}

func kvOp(i int) vdb.Op {
	return &vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("key-%08d", (i*7919)%10_000), Val: []byte("upd")}}}
}
