package trustedcvs_test

import (
	"os"
	"path/filepath"
	"testing"

	"trustedcvs"
)

// TestWorkspaceCollaboration runs two users with real working
// directories through the complete sandbox workflow on one untrusted
// server: checkout, concurrent edits, update-with-merge, commit.
func TestWorkspaceCollaboration(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{Users: 2, SyncEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	alice := cluster.Repo(0, "alice")
	bob := cluster.Repo(1, "bob")

	// Alice seeds the repository from her workspace.
	wsA, err := alice.Workspace(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(wsA.Dir(), "notes.txt"), []byte("alpha\nbeta\ngamma\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := wsA.Add("notes.txt"); err != nil {
		t.Fatal(err)
	}
	if _, err := wsA.Commit("import"); err != nil {
		t.Fatal(err)
	}

	// Bob checks out into his own workspace and edits the last line.
	wsB, err := bob.Workspace(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if err := wsB.CheckoutAll(""); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(wsB.Dir(), "notes.txt"), []byte("alpha\nbeta\nGAMMA-bob\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Meanwhile alice edits the first line and commits first.
	if err := os.WriteFile(filepath.Join(wsA.Dir(), "notes.txt"), []byte("ALPHA-alice\nbeta\ngamma\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := wsA.Commit("alice edit"); err != nil {
		t.Fatal(err)
	}

	// Bob's update merges cleanly; his commit lands on top.
	reports, err := wsB.Update()
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Action != "merged" {
		t.Fatalf("bob update: %+v", reports)
	}
	results, err := wsB.Commit("bob edit")
	if err != nil || len(results) != 1 || results[0].Rev != 3 {
		t.Fatalf("bob commit: %+v %v", results, err)
	}

	// Alice refreshes and sees the combined file.
	if _, err := wsA.Update(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(wsA.Dir(), "notes.txt"))
	if err != nil || string(got) != "ALPHA-alice\nbeta\nGAMMA-bob\n" {
		t.Fatalf("alice's refreshed copy: %q %v", got, err)
	}

	// History and blame agree with the story — verified end to end.
	origins, err := alice.Annotate("notes.txt")
	if err != nil {
		t.Fatal(err)
	}
	if origins[0].Author != "alice" || origins[2].Author != "bob" || origins[1].Rev != 1 {
		t.Fatalf("blame: %+v", origins)
	}
}
