package trustedcvs_test

import (
	"fmt"
	"testing"
	"time"

	"trustedcvs"
)

// TestClusterForensics exercises the public fault-localization path:
// a forked cluster with journals enabled detects at sync, and
// Forensics pinpoints the forged slot and the branch membership.
func TestClusterForensics(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{
		Protocol: trustedcvs.ProtocolII, Users: 2, SyncEvery: 3, JournalCap: 128,
		Malice: trustedcvs.Malice{Behavior: "fork", TriggerOp: 2, GroupB: []trustedcvs.UserID{1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	var detection error
	for i := 0; detection == nil && i < 20; i++ {
		for u := 0; u < 2; u++ {
			if _, err := cluster.Repo(u, "dev").Commit(map[string][]byte{"f": []byte(fmt.Sprintf("u%d-%d\n", u, i))}, "", nil); err != nil {
				detection = err
				break
			}
		}
		if detection == nil {
			for u := 0; u < 2; u++ {
				if err := cluster.WaitIdle(u, 5*time.Second); err != nil {
					detection = err
					break
				}
			}
		}
	}
	if _, ok := trustedcvs.AsDetection(detection); !ok {
		t.Fatalf("fork not detected: %v", detection)
	}
	rep := cluster.Forensics()
	if rep == nil || !rep.Located {
		t.Fatalf("fault not localized: %+v", rep)
	}
	if rep.ForkCtr != 2 {
		t.Fatalf("fork located at ctr %d, want 2 (%s)", rep.ForkCtr, rep)
	}
	if len(rep.Branches) != 2 {
		t.Fatalf("branches: %s", rep)
	}
}

// TestClusterForensicsDisabled: without journals, Forensics returns
// nil rather than a bogus report.
func TestClusterForensicsDisabled(t *testing.T) {
	cluster, err := trustedcvs.NewLocalCluster(trustedcvs.ClusterConfig{Users: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()
	if rep := cluster.Forensics(); rep != nil {
		t.Fatalf("forensics without journals: %+v", rep)
	}
}
