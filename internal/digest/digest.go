// Package digest provides the cryptographic digest type used throughout
// Trusted CVS: a 32-byte SHA-256 value with domain-separated hashing
// helpers and the XOR algebra that Protocols II and III build their
// state registers on.
//
// The paper assumes "a collision intractable hash function, for example
// as described in [2]"; we instantiate it with SHA-256. Every hash in
// this codebase is domain separated by a one-byte tag so that digests
// of different kinds of objects (tree leaves, tree internal nodes,
// protocol states, ...) can never collide structurally.
package digest

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"hash"
	"sync"
)

// Size is the byte length of a Digest.
const Size = sha256.Size

// Digest is a SHA-256 hash value. The zero Digest is used as "no
// digest" and never collides with a real hash output in practice.
type Digest [Size]byte

// Domain tags. Each distinct object kind hashed anywhere in the system
// gets its own tag, which is hashed as the first byte of the input.
const (
	// DomainLeaf and DomainInternal separate Merkle B+-tree node kinds.
	DomainLeaf     byte = 0x00
	DomainInternal byte = 0x01
	// DomainEmpty is the digest of an empty tree.
	DomainEmpty byte = 0x02
	// DomainState is h(M(D) || ctr): the untagged database state used
	// by Protocol I.
	DomainState byte = 0x03
	// DomainTaggedState is h(M(D) || ctr || user): the user-tagged
	// state used by Protocols II and III.
	DomainTaggedState byte = 0x04
	// DomainBlob is the content hash of a revision blob in the rcs
	// store.
	DomainBlob byte = 0x05
	// DomainEpoch binds an epoch summary for Protocol III signatures.
	DomainEpoch byte = 0x06
	// DomainRecord binds a database record (key/value pair) inside a
	// Merkle leaf.
	DomainRecord byte = 0x07
	// DomainSnapshot is the integrity footer over a serialized server
	// checkpoint: it detects torn writes and bit rot on load, so a
	// recovering server never silently starts from garbage.
	DomainSnapshot byte = 0x08
	// DomainCommitment binds a signed epoch root commitment the primary
	// publishes to its witnesses; two valid signatures under this domain
	// over conflicting (ctr, root) pairs are court-ready fork evidence.
	DomainCommitment byte = 0x09
	// DomainForest folds the per-shard (root, ctr) heads of a Merkle
	// forest into the single root-of-roots the commitment, witness, and
	// checkpoint machinery consumes. A one-shard forest does NOT use this
	// domain: its root-of-roots is the shard root itself, so N=1 stays
	// bit-compatible with the unsharded seed.
	DomainForest byte = 0x0a
	// DomainCrossTx binds the legs of a cross-shard transaction into one
	// transaction digest. Every leg's tagged shard state absorbs this
	// digest, so a server that commits one leg and drops another can
	// never produce a closing register chain.
	DomainCrossTx byte = 0x0b
	// DomainShardState is h(shard ‖ root_s ‖ ctr_s ‖ user ‖ txd): the
	// per-shard tagged state of the forest variant of Protocol II. It is
	// deliberately distinct from DomainTaggedState so single-tree and
	// forest chains can never be confused for one another.
	DomainShardState byte = 0x0c
	// DomainWALFrame is the per-frame integrity footer of the audit
	// write-ahead log (internal/wal): h(epoch ‖ payload). A torn or
	// rotted frame fails its footer on replay instead of resurrecting a
	// corrupt verification obligation.
	DomainWALFrame byte = 0x0d
	// DomainWALCursor is the integrity footer over a WAL cursor file —
	// the durable (completed epoch, user state) pair recovery resumes
	// from. Distinct from DomainWALFrame so a frame can never be passed
	// off as a cursor or vice versa.
	DomainWALCursor byte = 0x0e
)

// Zero is the all-zero digest.
var Zero Digest

// IsZero reports whether d is the zero digest.
func (d Digest) IsZero() bool { return d == Zero }

// GobEncode encodes the digest as one opaque byte string. Without it,
// gob walks the [32]byte element by element through reflection — ~32
// reflect calls per digest on both encode and decode — which dominated
// the wire codec's CPU profile (digests are the bulk of every VO).
func (d Digest) GobEncode() ([]byte, error) { return d[:], nil }

// GobDecode decodes a digest encoded by GobEncode.
func (d *Digest) GobDecode(b []byte) error {
	if len(b) != Size {
		return fmt.Errorf("digest: decode: %d bytes, want %d", len(b), Size)
	}
	copy(d[:], b)
	return nil
}

// Xor returns d ⊕ o. XOR of digests is the commutative group operation
// underlying the σ registers of Protocols II and III: states seen an
// even number of times cancel out.
func (d Digest) Xor(o Digest) Digest {
	var r Digest
	for i := range d {
		r[i] = d[i] ^ o[i]
	}
	return r
}

// String returns the full hex encoding of d.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short returns an 8-hex-digit prefix, for logs and error messages.
func (d Digest) Short() string { return hex.EncodeToString(d[:4]) }

// Parse decodes a digest from its hex encoding.
func Parse(s string) (Digest, error) {
	var d Digest
	b, err := hex.DecodeString(s)
	if err != nil {
		return Zero, fmt.Errorf("digest: parse %q: %w", s, err)
	}
	if len(b) != Size {
		return Zero, fmt.Errorf("digest: parse %q: got %d bytes, want %d", s, len(b), Size)
	}
	copy(d[:], b)
	return d, nil
}

// A Hasher incrementally builds a domain-separated digest. It
// length-prefixes every variable-length field so concatenation
// ambiguities cannot produce collisions.
//
// Hashers are recycled through an internal pool: Sum returns the
// Hasher to the pool, so a Hasher must not be used after Sum. Every
// write goes through the scratch buffer because a stack array passed
// to the hash.Hash interface escapes to the heap — with digests
// computed on every copy-on-write tree update, those per-write
// allocations dominated the server's allocation profile.
type Hasher struct {
	inner   hash.Hash
	scratch [64]byte
}

var hasherPool = sync.Pool{
	New: func() any { return &Hasher{inner: sha256.New()} },
}

// NewHasher returns a Hasher whose first hashed byte is the domain tag.
func NewHasher(domain byte) *Hasher {
	h := hasherPool.Get().(*Hasher)
	h.inner.Reset()
	h.scratch[0] = domain
	h.inner.Write(h.scratch[:1])
	return h
}

// Bytes hashes a length-prefixed byte string.
func (h *Hasher) Bytes(b []byte) *Hasher {
	binary.BigEndian.PutUint64(h.scratch[:8], uint64(len(b)))
	h.inner.Write(h.scratch[:8])
	h.inner.Write(b)
	return h
}

// String hashes a length-prefixed string without converting it to a
// []byte (which would allocate); it is chunked through the scratch
// buffer instead.
func (h *Hasher) String(s string) *Hasher {
	binary.BigEndian.PutUint64(h.scratch[:8], uint64(len(s)))
	h.inner.Write(h.scratch[:8])
	for len(s) > 0 {
		n := copy(h.scratch[:], s)
		h.inner.Write(h.scratch[:n])
		s = s[n:]
	}
	return h
}

// Uint64 hashes a fixed-width big-endian uint64.
func (h *Hasher) Uint64(v uint64) *Hasher {
	binary.BigEndian.PutUint64(h.scratch[:8], v)
	h.inner.Write(h.scratch[:8])
	return h
}

// Digest hashes another digest (fixed width, no length prefix needed).
func (h *Hasher) Digest(d Digest) *Hasher {
	copy(h.scratch[:Size], d[:])
	h.inner.Write(h.scratch[:Size])
	return h
}

// Sum finalizes and returns the digest. It recycles the Hasher, which
// must not be used afterwards.
func (h *Hasher) Sum() Digest {
	var d Digest
	copy(d[:], h.inner.Sum(h.scratch[:0]))
	hasherPool.Put(h)
	return d
}

// OfBytes is a convenience for hashing a single byte string under a
// domain.
func OfBytes(domain byte, b []byte) Digest {
	return NewHasher(domain).Bytes(b).Sum()
}

// Empty is the digest of an empty Merkle tree.
func Empty() Digest {
	return NewHasher(DomainEmpty).Sum()
}
