package digest

import (
	"testing"
	"testing/quick"
)

func TestZero(t *testing.T) {
	var d Digest
	if !d.IsZero() {
		t.Fatal("zero digest should report IsZero")
	}
	if OfBytes(DomainLeaf, nil).IsZero() {
		t.Fatal("hash of empty input should not be the zero digest")
	}
}

func TestDomainSeparation(t *testing.T) {
	a := OfBytes(DomainLeaf, []byte("x"))
	b := OfBytes(DomainInternal, []byte("x"))
	if a == b {
		t.Fatal("same input under different domains must hash differently")
	}
}

func TestLengthPrefixing(t *testing.T) {
	// Without length prefixes these two would collide:
	// ("ab","c") vs ("a","bc").
	a := NewHasher(DomainLeaf).String("ab").String("c").Sum()
	b := NewHasher(DomainLeaf).String("a").String("bc").Sum()
	if a == b {
		t.Fatal("length prefixing failed: concatenation collision")
	}
}

func TestHasherDeterminism(t *testing.T) {
	mk := func() Digest {
		return NewHasher(DomainState).String("k").Uint64(42).Digest(OfBytes(DomainLeaf, []byte("v"))).Sum()
	}
	if mk() != mk() {
		t.Fatal("hasher is not deterministic")
	}
}

func TestXorAlgebra(t *testing.T) {
	// XOR must form an abelian group with Zero as identity and every
	// element self-inverse — the property Protocol II's registers rely
	// on.
	id := func(a Digest) bool { return a.Xor(Zero) == a }
	inv := func(a Digest) bool { return a.Xor(a) == Zero }
	comm := func(a, b Digest) bool { return a.Xor(b) == b.Xor(a) }
	assoc := func(a, b, c Digest) bool { return a.Xor(b).Xor(c) == a.Xor(b.Xor(c)) }
	for name, f := range map[string]any{"identity": id, "selfInverse": inv, "commutative": comm, "associative": assoc} {
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestParseRoundTrip(t *testing.T) {
	d := OfBytes(DomainBlob, []byte("hello"))
	got, err := Parse(d.String())
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got != d {
		t.Fatalf("round trip mismatch: %s != %s", got, d)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := Parse("zz"); err == nil {
		t.Error("want error for non-hex input")
	}
	if _, err := Parse("abcd"); err == nil {
		t.Error("want error for short input")
	}
}

func TestShort(t *testing.T) {
	d := OfBytes(DomainBlob, []byte("hello"))
	if len(d.Short()) != 8 {
		t.Fatalf("Short() = %q, want 8 hex chars", d.Short())
	}
	if d.String()[:8] != d.Short() {
		t.Fatal("Short() is not a prefix of String()")
	}
}

func TestEmptyStable(t *testing.T) {
	if Empty() != Empty() {
		t.Fatal("Empty() must be a constant")
	}
	if Empty().IsZero() {
		t.Fatal("Empty() must not be the zero digest")
	}
}
