// Package backoff is the repo's one retry-pacing primitive: bounded
// exponential backoff with seeded, decorrelated jitter, plus fixed
// polling intervals, both cancelable. Every retry loop outside
// internal/fault must pace itself through this package — the tcvs-lint
// sleepretry pass bans bare time.Sleep loops precisely so that no
// future loop reinvents an unjittered schedule. The jitter matters
// operationally: clients that are restarted together (or that all lose
// the same server at the same instant) would otherwise share one
// deterministic backoff sequence and hit the recovering endpoint as a
// synchronized stampede, re-creating the overload that killed it.
package backoff

import (
	crand "crypto/rand"
	"encoding/binary"
	"sync"
	"time"
)

// Policy bounds one backoff schedule. The zero value is unusable; use
// the defaults noted per field via withDefaults (applied by New).
type Policy struct {
	// Min is the first delay (default 10ms).
	Min time.Duration
	// Max caps the exponential growth (default 2s).
	Max time.Duration
	// Jitter is the fraction of each delay that is randomized: the
	// returned delay is uniform in [d*(1-Jitter), d]. 0 selects the
	// default 0.5; negative disables jitter (deterministic schedules
	// for tests).
	Jitter float64
}

func (p Policy) withDefaults() Policy {
	if p.Min <= 0 {
		p.Min = 10 * time.Millisecond
	}
	if p.Max <= 0 {
		p.Max = 2 * time.Second
	}
	if p.Max < p.Min {
		p.Max = p.Min
	}
	if p.Jitter == 0 {
		p.Jitter = 0.5
	}
	if p.Jitter < 0 {
		p.Jitter = 0
	}
	if p.Jitter > 1 {
		p.Jitter = 1
	}
	return p
}

// Source is a concurrency-safe splitmix64 stream feeding jitter
// decisions. Deliberately not math/rand: the stream must be cheap,
// seedable for reproducible tests, and stable across Go releases.
type Source struct {
	mu sync.Mutex
	s  uint64
}

// NewSource returns a Source seeded from crypto/rand, so independently
// started processes draw decorrelated jitter.
func NewSource() *Source {
	var b [8]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Entropy exhaustion is unrecoverable; fall back to a fixed
		// seed rather than panic — jitter is a liveness optimization,
		// not a security boundary.
		return NewSeededSource(0x9e3779b97f4a7c15)
	}
	return NewSeededSource(binary.BigEndian.Uint64(b[:]))
}

// NewSeededSource returns a deterministic Source for tests and
// recorded schedules.
func NewSeededSource(seed uint64) *Source { return &Source{s: seed} }

// Uint64 draws the next value.
func (s *Source) Uint64() uint64 {
	s.mu.Lock()
	s.s += 0x9e3779b97f4a7c15
	z := s.s
	s.mu.Unlock()
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Backoff produces one schedule of delays. Not safe for concurrent
// use; each retry loop owns its Backoff (the Source may be shared).
type Backoff struct {
	pol Policy
	src *Source
	cur time.Duration
}

// New builds a Backoff over pol. src may be nil, which disables jitter
// (equivalent to Jitter < 0).
func New(pol Policy, src *Source) *Backoff {
	return &Backoff{pol: pol.withDefaults(), src: src}
}

// Poll builds a fixed-interval schedule: every delay is exactly d.
// For wait-until-condition loops where exponential growth would only
// add latency.
func Poll(d time.Duration) *Backoff {
	return New(Policy{Min: d, Max: d, Jitter: -1}, nil)
}

// Next returns the next delay: the exponential base doubles from Min
// to Max, and jitter subtracts up to Jitter of it.
func (b *Backoff) Next() time.Duration {
	if b.cur == 0 {
		b.cur = b.pol.Min
	} else if b.cur < b.pol.Max {
		if b.cur *= 2; b.cur > b.pol.Max {
			b.cur = b.pol.Max
		}
	}
	d := b.cur
	if b.src != nil && b.pol.Jitter > 0 && d > 0 {
		span := time.Duration(float64(d) * b.pol.Jitter)
		if span > 0 {
			d -= time.Duration(b.src.Uint64() % uint64(span))
		}
	}
	return d
}

// Reset restarts the schedule from Min (call after a success).
func (b *Backoff) Reset() { b.cur = 0 }

// Sleep blocks for the next delay.
func (b *Backoff) Sleep() { time.Sleep(b.Next()) }

// SleepCh blocks for the next delay or until done fires, reporting
// whether the full delay elapsed (false = canceled).
func (b *Backoff) SleepCh(done <-chan struct{}) bool {
	t := time.NewTimer(b.Next())
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-done:
		return false
	}
}
