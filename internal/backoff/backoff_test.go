package backoff

import (
	"testing"
	"time"
)

func TestExponentialBounds(t *testing.T) {
	b := New(Policy{Min: 10 * time.Millisecond, Max: 80 * time.Millisecond, Jitter: -1}, nil)
	want := []time.Duration{10, 20, 40, 80, 80, 80}
	for i, w := range want {
		if got := b.Next(); got != w*time.Millisecond {
			t.Errorf("Next #%d = %v, want %v", i, got, w*time.Millisecond)
		}
	}
	b.Reset()
	if got := b.Next(); got != 10*time.Millisecond {
		t.Errorf("after Reset, Next = %v, want 10ms", got)
	}
}

func TestJitterStaysInWindow(t *testing.T) {
	src := NewSeededSource(7)
	b := New(Policy{Min: 100 * time.Millisecond, Max: 100 * time.Millisecond, Jitter: 0.5}, src)
	for i := 0; i < 100; i++ {
		d := b.Next()
		if d < 50*time.Millisecond || d > 100*time.Millisecond {
			t.Fatalf("jittered delay %v outside [50ms, 100ms]", d)
		}
	}
}

// TestSeedsDecorrelate is the reconnect-stampede regression: two
// schedules with distinct seeds must not produce identical delay
// sequences, or every client restarted together would redial a
// recovering server in lockstep.
func TestSeedsDecorrelate(t *testing.T) {
	a := New(Policy{Min: time.Second, Max: 32 * time.Second}, NewSeededSource(1))
	b := New(Policy{Min: time.Second, Max: 32 * time.Second}, NewSeededSource(2))
	same := true
	for i := 0; i < 8; i++ {
		if a.Next() != b.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("two differently-seeded schedules produced identical delays")
	}
}

func TestPoll(t *testing.T) {
	b := Poll(3 * time.Millisecond)
	for i := 0; i < 5; i++ {
		if got := b.Next(); got != 3*time.Millisecond {
			t.Fatalf("Poll Next #%d = %v, want 3ms", i, got)
		}
	}
}

func TestSleepChCancel(t *testing.T) {
	b := New(Policy{Min: time.Minute, Max: time.Minute, Jitter: -1}, nil)
	done := make(chan struct{})
	close(done)
	start := time.Now()
	if b.SleepCh(done) {
		t.Fatal("SleepCh reported a full elapse on a closed done channel")
	}
	if time.Since(start) > time.Second {
		t.Fatal("SleepCh did not return promptly on cancellation")
	}
}

func TestDefaultSourceIsRandom(t *testing.T) {
	if NewSource().Uint64() == NewSource().Uint64() &&
		NewSource().Uint64() == NewSource().Uint64() {
		t.Fatal("independently created sources keep agreeing; seeding looks broken")
	}
}
