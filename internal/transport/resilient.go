package transport

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"trustedcvs/internal/wire"
)

// RetryPolicy bounds the self-healing behavior of a ResilientClient.
// The zero value selects the defaults noted per field.
type RetryPolicy struct {
	// CallTimeout is the per-attempt deadline covering dial, write and
	// read of one request (default 10s).
	CallTimeout time.Duration
	// MaxAttempts is the total tries per Call, first attempt included
	// (default 8).
	MaxAttempts int
	// BackoffMin/BackoffMax bound the exponential backoff between
	// attempts (defaults 10ms and 2s).
	BackoffMin time.Duration
	BackoffMax time.Duration
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.CallTimeout <= 0 {
		p.CallTimeout = 10 * time.Second
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BackoffMin <= 0 {
		p.BackoffMin = 10 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	return p
}

// ResilientClient is a Caller that survives connection loss: each Call
// is wrapped in a wire.SessionRequest and retried across automatic
// reconnects with bounded exponential backoff until the server
// *delivers* an answer. Delivery, not success: an application-level
// error (wire.ErrRemote) is returned immediately — the server applied
// or rejected the request, retrying would double-apply it. Only
// transport failures (reset, timeout, truncation, dial refusal) are
// retried, and the server's session table makes those retries
// exactly-once.
//
// The peer must be a session-aware transport.Server (ServerOpts with a
// SessionTable, the post-recovery default).
type ResilientClient struct {
	dial func() (net.Conn, error)
	pol  RetryPolicy

	mu     sync.Mutex
	conn   net.Conn
	wc     *wire.Conn
	gen    uint64 // bumped per (re)connect so stale failures don't kill a fresh conn
	sid    uint64
	seq    uint64
	closed bool

	reconnects uint64
}

// DialResilient returns a resilient client for addr with policy pol
// (zero value = defaults).
func DialResilient(addr string, pol RetryPolicy) *ResilientClient {
	return DialResilientFunc(func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, pol.withDefaults().CallTimeout)
	}, pol)
}

// DialResilientFunc is DialResilient over a custom dialer — how the
// fault harness interposes flaky connections.
func DialResilientFunc(dial func() (net.Conn, error), pol RetryPolicy) *ResilientClient {
	return &ResilientClient{dial: dial, pol: pol.withDefaults(), sid: newSID()}
}

// newSID draws a random nonzero session id.
func newSID() uint64 {
	var b [8]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			//lint:ignore panicfree entropy exhaustion is unrecoverable and not attacker-triggerable; no request bytes are parsed here
			panic(fmt.Sprintf("transport: session id entropy: %v", err))
		}
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

// Reconnects reports how many times the client has had to redial.
func (c *ResilientClient) Reconnects() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// ensure returns a live connection and its generation, dialing if
// needed. The dial happens under mu; that is acceptable because no
// request I/O is in flight on this client while it has no connection.
func (c *ResilientClient) ensure() (net.Conn, *wire.Conn, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, nil, 0, errors.New("transport: client closed")
	}
	if c.conn != nil {
		return c.conn, c.wc, c.gen, nil
	}
	conn, err := c.dial()
	if err != nil {
		return nil, nil, 0, err
	}
	c.conn, c.wc = conn, wire.NewConn(conn)
	c.gen++
	if c.gen > 1 {
		c.reconnects++
	}
	return c.conn, c.wc, c.gen, nil
}

// drop discards the connection of generation gen, if it is still the
// current one (a concurrent Call may already have replaced it).
func (c *ResilientClient) drop(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen == gen && c.conn != nil {
		c.conn.Close()
		c.conn, c.wc = nil, nil
	}
}

// Call implements Caller with at-most-once application semantics: the
// same (SID, Seq) is presented on every retry, so the server either
// applies the request once and replays the cached response, or reports
// a transport failure that provably did not reach application.
func (c *ResilientClient) Call(req any) (any, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("transport: client closed")
	}
	c.seq++
	sreq := &wire.SessionRequest{SID: c.sid, Seq: c.seq, Req: req}
	c.mu.Unlock()

	backoff := c.pol.BackoffMin
	var lastErr error
	for attempt := 0; attempt < c.pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(backoff)
			if backoff *= 2; backoff > c.pol.BackoffMax {
				backoff = c.pol.BackoffMax
			}
		}
		conn, wc, gen, err := c.ensure()
		if err != nil {
			lastErr = err
			continue
		}
		// The per-call deadline covers the whole round trip; network I/O
		// runs outside mu so concurrent Calls pipeline on one connection.
		_ = conn.SetDeadline(time.Now().Add(c.pol.CallTimeout))
		resp, err := wc.Call(sreq)
		if err == nil {
			_ = conn.SetDeadline(time.Time{})
			return resp, nil
		}
		if errors.Is(err, wire.ErrRemote) {
			// Delivered: the handler's verdict came back. Not a fault.
			_ = conn.SetDeadline(time.Time{})
			return nil, err
		}
		lastErr = err
		c.drop(gen)
	}
	return nil, fmt.Errorf("transport: call failed after %d attempts: %w", c.pol.MaxAttempts, lastErr)
}

// Close implements Caller.
func (c *ResilientClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn, c.wc = nil, nil
		return err
	}
	return nil
}
