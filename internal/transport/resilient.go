package transport

import (
	crand "crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"trustedcvs/internal/backoff"
	"trustedcvs/internal/wire"
)

// RetryPolicy bounds the self-healing behavior of a ResilientClient.
// The zero value selects the defaults noted per field.
type RetryPolicy struct {
	// CallTimeout is the per-attempt deadline covering dial, write and
	// read of one request (default 10s).
	CallTimeout time.Duration
	// MaxAttempts is the total tries per Call, first attempt included
	// (default 8).
	MaxAttempts int
	// BackoffMin/BackoffMax bound the exponential backoff between
	// attempts (defaults 10ms and 2s). Each delay carries seeded jitter
	// so clients that lose a server together do not redial it in
	// lockstep.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// JitterSeed seeds the jitter stream; 0 draws a random seed. Tests
	// pass fixed distinct seeds for reproducible, decorrelated
	// schedules.
	JitterSeed uint64
	// Budget, when positive, is the total end-to-end deadline for each
	// Call, propagated to the server in every attempt's frame header
	// (shrinking attempt by attempt — the hop decrement). When it
	// expires the Call returns wire.ErrDeadlineExceeded instead of
	// retrying: the caller has given up, so the client stops spending
	// server capacity on it. 0 disables deadline propagation.
	Budget time.Duration
	// Breaker, when non-nil, arms a per-endpoint circuit breaker
	// (closed/open/half-open with seeded probe jitter): endpoints that
	// keep failing — or keep shedding with wire.ErrOverloaded — are
	// skipped for a jittered cooldown instead of hammered, and exactly
	// one probe tests recovery.
	Breaker *BreakerPolicy
}

func (p RetryPolicy) withDefaults() RetryPolicy {
	if p.CallTimeout <= 0 {
		p.CallTimeout = 10 * time.Second
	}
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 8
	}
	if p.BackoffMin <= 0 {
		p.BackoffMin = 10 * time.Millisecond
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = 2 * time.Second
	}
	return p
}

// Endpoint is one dialable server address a ResilientClient may use.
type Endpoint struct {
	// Name identifies the endpoint for health reporting and
	// quarantining ("primary", "witness-2", ...).
	Name string
	// Dial opens a connection to the endpoint.
	Dial func() (net.Conn, error)
}

// healthCap bounds an endpoint's integer health score so one long good
// (or bad) streak cannot take arbitrarily many failures (successes) to
// forget.
const healthCap = 8

// endpointState is the client's per-endpoint bookkeeping.
type endpointState struct {
	ep          Endpoint
	health      int
	quarantined bool
	brk         *breaker // nil when RetryPolicy.Breaker is nil
}

// ResilientClient is a Caller that survives connection loss and, when
// given several endpoints, primary loss: each Call is wrapped in a
// wire.SessionRequest and retried across automatic reconnects —
// failing over to the healthiest non-quarantined endpoint — with
// bounded, jittered exponential backoff until the server *delivers*
// an answer. Delivery, not success: an application-level error
// (wire.ErrRemote) is returned immediately — the server applied or
// rejected the request, retrying would double-apply it. Only
// transport failures (reset, timeout, truncation, dial refusal) are
// retried.
//
// The session id is one per client, not per endpoint: after a
// failover, retries present the same (SID, Seq) to the new endpoint,
// so a promoted witness that restored the primary's session table
// replays cached outcomes instead of double-applying — the
// exactly-once cut E15 measures.
//
// The peer must be a session-aware transport.Server (ServerOpts with a
// SessionTable, the post-recovery default).
type ResilientClient struct {
	pol RetryPolicy
	src *backoff.Source

	mu        sync.Mutex
	endpoints []*endpointState
	epIdx     int // endpoint the current (or last) conn belongs to
	conn      net.Conn
	wc        *wire.Conn
	gen       uint64 // bumped per (re)connect so stale failures don't kill a fresh conn
	sid       uint64
	seq       uint64
	closed    bool

	reconnects uint64
	failovers  uint64
	overloads  uint64
}

// DialResilient returns a resilient client for addr with policy pol
// (zero value = defaults).
func DialResilient(addr string, pol RetryPolicy) *ResilientClient {
	return DialResilientEndpoints([]Endpoint{{
		Name: addr,
		Dial: func() (net.Conn, error) {
			return net.DialTimeout("tcp", addr, pol.withDefaults().CallTimeout)
		},
	}}, pol)
}

// DialResilientFunc is DialResilient over a custom dialer — how the
// fault harness interposes flaky connections.
func DialResilientFunc(dial func() (net.Conn, error), pol RetryPolicy) *ResilientClient {
	return DialResilientEndpoints([]Endpoint{{Name: "endpoint", Dial: dial}}, pol)
}

// DialResilientEndpoints returns a resilient client over several
// endpoints. Order expresses preference: ties in health score go to
// the earliest endpoint, so list the primary first.
func DialResilientEndpoints(eps []Endpoint, pol RetryPolicy) *ResilientClient {
	if len(eps) == 0 {
		//lint:ignore panicfree constructor misuse by the caller's own code, not reachable from request bytes
		panic("transport: resilient client needs at least one endpoint")
	}
	pol = pol.withDefaults()
	var src *backoff.Source
	if pol.JitterSeed != 0 {
		src = backoff.NewSeededSource(pol.JitterSeed)
	} else {
		src = backoff.NewSource()
	}
	states := make([]*endpointState, len(eps))
	for i, ep := range eps {
		states[i] = &endpointState{ep: ep}
		if pol.Breaker != nil {
			states[i].brk = newBreaker(*pol.Breaker)
		}
	}
	return &ResilientClient{pol: pol, src: src, endpoints: states, sid: newSID()}
}

// newSID draws a random nonzero session id.
func newSID() uint64 {
	var b [8]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			//lint:ignore panicfree entropy exhaustion is unrecoverable and not attacker-triggerable; no request bytes are parsed here
			panic(fmt.Sprintf("transport: session id entropy: %v", err))
		}
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

// Reconnects reports how many times the client has had to redial.
func (c *ResilientClient) Reconnects() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// Failovers reports how many reconnects landed on a different endpoint
// than the previous connection.
func (c *ResilientClient) Failovers() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.failovers
}

// EndpointName returns the name of the endpoint the current (or most
// recent) connection uses.
func (c *ResilientClient) EndpointName() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.endpoints[c.epIdx].ep.Name
}

// Health returns a snapshot of the per-endpoint health scores
// (quarantined endpoints are omitted).
func (c *ResilientClient) Health() map[string]int {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := make(map[string]int, len(c.endpoints))
	for _, s := range c.endpoints {
		if !s.quarantined {
			m[s.ep.Name] = s.health
		}
	}
	return m
}

// ErrAllQuarantined is returned when every endpoint has been
// quarantined — the client refuses to talk to servers whose
// commitments diverged, because "failing over" to a forked server is
// how a partition attack wins.
var ErrAllQuarantined = errors.New("transport: every endpoint is quarantined")

// Quarantine permanently bars an endpoint, severing its connection if
// it is the current one. Called by the driver when the witness
// cross-check convicts the endpoint of divergence.
func (c *ResilientClient) Quarantine(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for i, s := range c.endpoints {
		if s.ep.Name != name {
			continue
		}
		s.quarantined = true
		if i == c.epIdx && c.conn != nil {
			c.conn.Close()
			c.conn, c.wc = nil, nil
		}
	}
}

// ErrAllBreakersOpen is returned (and retried with backoff) when every
// non-quarantined endpoint's circuit breaker is holding traffic off —
// the paced version of "everything is down right now".
var ErrAllBreakersOpen = errors.New("transport: every endpoint's breaker is open")

// pickLocked selects the healthiest non-quarantined endpoint with a
// closed (or absent) breaker, earliest index winning ties. When every
// candidate is breaker-blocked, it claims at most one half-open probe
// slot — the mechanism that bounds probe storms: however many callers
// race the pick, only the claimant reaches the recovering endpoint.
func (c *ResilientClient) pickLocked() (int, error) {
	now := time.Now()
	best, probe, blocked := -1, -1, false
	for i, s := range c.endpoints {
		if s.quarantined {
			continue
		}
		if s.brk != nil && s.brk.state != BreakerClosed {
			blocked = true
			if probe < 0 && s.brk.probeReadyLocked(now) {
				probe = i
			}
			continue
		}
		if best < 0 || s.health > c.endpoints[best].health {
			best = i
		}
	}
	if best >= 0 {
		return best, nil
	}
	if probe >= 0 {
		c.endpoints[probe].brk.claimProbeLocked()
		return probe, nil
	}
	if blocked {
		return 0, ErrAllBreakersOpen
	}
	return 0, ErrAllQuarantined
}

// noteLocked adjusts an endpoint's health score within ±healthCap.
func (s *endpointState) noteLocked(delta int) {
	s.health += delta
	if s.health > healthCap {
		s.health = healthCap
	}
	if s.health < -healthCap {
		s.health = -healthCap
	}
}

// ensure returns a live connection and its generation, dialing the
// preferred endpoint if needed. The dial happens under mu; that is
// acceptable because no request I/O is in flight on this client while
// it has no connection.
func (c *ResilientClient) ensure() (net.Conn, *wire.Conn, uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, nil, 0, errors.New("transport: client closed")
	}
	if c.conn != nil {
		return c.conn, c.wc, c.gen, nil
	}
	idx, err := c.pickLocked()
	if err != nil {
		return nil, nil, 0, err
	}
	conn, err := c.endpoints[idx].ep.Dial()
	if err != nil {
		c.endpoints[idx].noteLocked(-1)
		if b := c.endpoints[idx].brk; b != nil {
			b.failureLocked(time.Now(), c.src)
		}
		return nil, nil, 0, err
	}
	if c.gen > 0 && idx != c.epIdx {
		c.failovers++
	}
	c.epIdx = idx
	c.conn, c.wc = conn, wire.NewConn(conn)
	c.gen++
	if c.gen > 1 {
		c.reconnects++
	}
	return c.conn, c.wc, c.gen, nil
}

// drop discards the connection of generation gen, if it is still the
// current one (a concurrent Call may already have replaced it), and
// scores the failure against its endpoint.
func (c *ResilientClient) drop(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen == gen {
		c.endpoints[c.epIdx].noteLocked(-1)
		if b := c.endpoints[c.epIdx].brk; b != nil {
			b.failureLocked(time.Now(), c.src)
		}
		if c.conn != nil {
			c.conn.Close()
			c.conn, c.wc = nil, nil
		}
	}
}

// credit scores a delivered response for the endpoint of generation
// gen.
func (c *ResilientClient) credit(gen uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen == gen {
		c.endpoints[c.epIdx].noteLocked(1)
		if b := c.endpoints[c.epIdx].brk; b != nil {
			b.successLocked()
		}
	}
}

// noteOverload scores a typed overload shed against the endpoint of
// generation gen: health down, breaker failure (sustained shedding
// opens the breaker and shifts traffic), and — when another endpoint
// is available to fail over to — the shedding endpoint's connection is
// released so the next attempt lands elsewhere. Reports whether a
// failover target exists; if not, the caller surfaces the overload
// instead of hammering the only server it has.
func (c *ResilientClient) noteOverload(gen uint64) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.gen != gen {
		return true // a concurrent call already rotated the conn
	}
	c.overloads++
	c.endpoints[c.epIdx].noteLocked(-1)
	if b := c.endpoints[c.epIdx].brk; b != nil {
		b.failureLocked(time.Now(), c.src)
	}
	now := time.Now()
	for i, s := range c.endpoints {
		if i == c.epIdx || s.quarantined {
			continue
		}
		if s.brk != nil && s.brk.state != BreakerClosed && !s.brk.probeReadyLocked(now) {
			continue
		}
		// Failover target found: release the shedding endpoint's conn.
		if c.conn != nil {
			c.conn.Close()
			c.conn, c.wc = nil, nil
		}
		return true
	}
	return false
}

// Overloads reports how many typed overload sheds this client has
// absorbed.
func (c *ResilientClient) Overloads() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.overloads
}

// BreakerStates snapshots each endpoint's breaker state (all "closed"
// when the breaker is disabled).
func (c *ResilientClient) BreakerStates() map[string]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := make(map[string]string, len(c.endpoints))
	for _, s := range c.endpoints {
		st := BreakerClosed
		if s.brk != nil {
			st = s.brk.state
		}
		m[s.ep.Name] = st.String()
	}
	return m
}

// Call implements Caller with at-most-once application semantics: the
// same (SID, Seq) is presented on every retry — across reconnects AND
// failovers — so whichever server holds the session state either
// applies the request once and replays the cached response, or reports
// a transport failure that provably did not reach application.
func (c *ResilientClient) Call(req any) (any, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("transport: client closed")
	}
	c.seq++
	sreq := &wire.SessionRequest{SID: c.sid, Seq: c.seq, Req: req}
	c.mu.Unlock()

	var deadline time.Time
	if c.pol.Budget > 0 {
		deadline = time.Now().Add(c.pol.Budget)
	}
	bo := backoff.New(backoff.Policy{Min: c.pol.BackoffMin, Max: c.pol.BackoffMax}, c.src)
	var lastErr error
	for attempt := 0; attempt < c.pol.MaxAttempts; attempt++ {
		if attempt > 0 {
			bo.Sleep()
		}
		budget := time.Duration(0)
		if !deadline.IsZero() {
			if budget = time.Until(deadline); budget <= 0 {
				// The caller's budget ran out between attempts: stop
				// here rather than burn server capacity on an answer
				// nobody will read.
				return nil, fmt.Errorf("transport: call budget exhausted after %d attempts (last: %v)%w", attempt, lastErr, clientErr{wire.ErrDeadlineExceeded})
			}
		}
		conn, wc, gen, err := c.ensure()
		if err != nil {
			if errors.Is(err, ErrAllQuarantined) {
				return nil, err
			}
			lastErr = err
			continue
		}
		// The per-attempt deadline covers the whole round trip (capped
		// by what remains of the call budget); network I/O runs outside
		// mu so concurrent Calls pipeline on one connection.
		timeout := c.pol.CallTimeout
		if budget > 0 && budget < timeout {
			timeout = budget
		}
		_ = conn.SetDeadline(time.Now().Add(timeout))
		resp, err := wc.CallBudget(sreq, budget)
		if err == nil {
			_ = conn.SetDeadline(time.Time{})
			c.credit(gen)
			return resp, nil
		}
		if errors.Is(err, wire.ErrOverloaded) {
			// Typed shed: delivered, but refused before any state was
			// touched, so re-presenting the same (SID, Seq) elsewhere
			// is safe. Fail over when another endpoint is available;
			// surface the overload when this was the only one — never
			// hammer the server that just shed us.
			_ = conn.SetDeadline(time.Time{})
			if !c.noteOverload(gen) {
				return nil, err
			}
			lastErr = err
			continue
		}
		if errors.Is(err, wire.ErrRemote) {
			// Delivered: the handler's verdict came back. Not a fault.
			// (Includes a server-side ErrDeadlineExceeded: the server
			// refused expired work; retrying an expired request is by
			// definition pointless.)
			_ = conn.SetDeadline(time.Time{})
			c.credit(gen)
			return nil, err
		}
		lastErr = err
		c.drop(gen)
	}
	return nil, fmt.Errorf("transport: call failed after %d attempts: %w", c.pol.MaxAttempts, lastErr)
}

// clientErr splices a typed sentinel into a client-side error without
// altering its message (the client-side analogue of wire's marker).
type clientErr struct{ is error }

func (clientErr) Error() string          { return "" }
func (m clientErr) Is(target error) bool { return target == m.is }

// CallHedged is Call with a hedged second attempt for idempotent
// requests: if the primary path has not answered within hedge, one
// duplicate is fired at the best *other* endpoint over a one-shot
// connection, and the first answer wins. The duplicate is sent plain
// (no session envelope) — hedging is only safe for idempotent reads,
// where a double execution is harmless by definition; non-idempotent
// ops must use Call, whose session envelope serializes them through
// one server's dedupe table.
func (c *ResilientClient) CallHedged(req any, hedge time.Duration) (any, error) {
	type outcome struct {
		resp any
		err  error
	}
	ch := make(chan outcome, 2)
	go func() {
		resp, err := c.Call(req)
		ch <- outcome{resp, err}
	}()
	t := time.NewTimer(hedge)
	defer t.Stop()
	select {
	case o := <-ch:
		return o.resp, o.err
	case <-t.C:
	}
	idx, ok := c.hedgeTarget()
	if !ok {
		// Nowhere to hedge to; wait out the primary.
		o := <-ch
		return o.resp, o.err
	}
	go func() {
		resp, err := c.hedgeOnce(idx, req)
		ch <- outcome{resp, err}
	}()
	// Two attempts racing: first success wins; a failed hedge falls
	// back to waiting on the primary (and vice versa).
	var firstErr error
	for i := 0; i < 2; i++ {
		o := <-ch
		if o.err == nil || errors.Is(o.err, wire.ErrRemote) {
			return o.resp, o.err
		}
		firstErr = o.err
	}
	return nil, firstErr
}

// hedgeTarget picks the healthiest non-quarantined, breaker-closed
// endpoint other than the one the primary path is using.
func (c *ResilientClient) hedgeTarget() (int, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	best := -1
	for i, s := range c.endpoints {
		if i == c.epIdx || s.quarantined {
			continue
		}
		if s.brk != nil && s.brk.state != BreakerClosed {
			continue
		}
		if best < 0 || s.health > c.endpoints[best].health {
			best = i
		}
	}
	return best, best >= 0
}

// hedgeOnce runs one single-attempt call against endpoint idx over a
// throwaway connection, scoring the endpoint's health and breaker.
func (c *ResilientClient) hedgeOnce(idx int, req any) (any, error) {
	c.mu.Lock()
	ep := c.endpoints[idx]
	c.mu.Unlock()
	conn, err := ep.ep.Dial()
	if err != nil {
		c.noteHedge(idx, false)
		return nil, err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(c.pol.CallTimeout))
	resp, err := wire.NewConn(conn).Call(req)
	if err != nil && !errors.Is(err, wire.ErrRemote) {
		c.noteHedge(idx, false)
		return nil, err
	}
	c.noteHedge(idx, true)
	return resp, err
}

// noteHedge scores a hedge attempt's outcome for endpoint idx.
func (c *ResilientClient) noteHedge(idx int, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.endpoints[idx]
	if ok {
		s.noteLocked(1)
		if s.brk != nil {
			s.brk.successLocked()
		}
		return
	}
	s.noteLocked(-1)
	if s.brk != nil {
		s.brk.failureLocked(time.Now(), c.src)
	}
}

// Close implements Caller.
func (c *ResilientClient) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	if c.conn != nil {
		err := c.conn.Close()
		c.conn, c.wc = nil, nil
		return err
	}
	return nil
}
