package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"trustedcvs/internal/core"
)

func echoHandler(req any) (any, error) {
	if r, ok := req.(*core.SyncRequest); ok {
		return &core.SyncRequest{From: r.From, Round: r.Round * 2}, nil
	}
	return nil, fmt.Errorf("unexpected %T", req)
}

func TestInproc(t *testing.T) {
	c := NewInproc(echoHandler)
	resp, err := c.Call(&core.SyncRequest{Round: 21})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*core.SyncRequest).Round != 42 {
		t.Fatalf("resp: %+v", resp)
	}
	c.Close()
	if _, err := c.Call(&core.SyncRequest{}); err == nil {
		t.Fatal("closed caller must error")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := uint64(1); i <= 10; i++ {
		resp, err := c.Call(&core.SyncRequest{Round: i})
		if err != nil {
			t.Fatal(err)
		}
		if resp.(*core.SyncRequest).Round != 2*i {
			t.Fatalf("round %d: %+v", i, resp)
		}
	}
}

func TestSerialModeSerializesHandler(t *testing.T) {
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	srv, err := ListenOpts("127.0.0.1:0", func(req any) (any, error) {
		mu.Lock()
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		mu.Unlock()
		defer func() {
			mu.Lock()
			inFlight--
			mu.Unlock()
		}()
		return echoHandler(req)
	}, Options{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				if _, err := c.Call(&core.SyncRequest{Round: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if maxInFlight != 1 {
		t.Fatalf("handler ran %d-way concurrent; Serial mode must serialize", maxInFlight)
	}
}

// TestPipelinedHandlerOverlaps proves the default server really does
// invoke the handler from multiple connections at once: two calls
// rendezvous inside the handler, which is impossible under a global
// handler lock (the seed behavior, now Options.Serial).
func TestPipelinedHandlerOverlaps(t *testing.T) {
	arrived := make(chan struct{}, 2)
	proceed := make(chan struct{})
	srv, err := Listen("127.0.0.1:0", func(req any) (any, error) {
		arrived <- struct{}{}
		select {
		case <-proceed:
		case <-time.After(5 * time.Second):
			return nil, fmt.Errorf("no overlapping call arrived")
		}
		return echoHandler(req)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	errs := make(chan error, 2)
	for g := 0; g < 2; g++ {
		go func() {
			c, err := Dial(srv.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			_, err = c.Call(&core.SyncRequest{Round: 1})
			errs <- err
		}()
	}
	for i := 0; i < 2; i++ {
		select {
		case <-arrived:
		case <-time.After(5 * time.Second):
			t.Fatal("second call never entered the handler: transport serializes")
		}
	}
	close(proceed)
	for i := 0; i < 2; i++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
}

// TestMaxConcurrentBounds proves the worker bound: with
// MaxConcurrent=1 two in-flight calls never overlap even though the
// server is otherwise pipelined.
func TestMaxConcurrentBounds(t *testing.T) {
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	srv, err := ListenOpts("127.0.0.1:0", func(req any) (any, error) {
		mu.Lock()
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		mu.Lock()
		inFlight--
		mu.Unlock()
		return echoHandler(req)
	}, Options{MaxConcurrent: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 10; i++ {
				if _, err := c.Call(&core.SyncRequest{Round: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if maxInFlight != 1 {
		t.Fatalf("MaxConcurrent=1 allowed %d in flight", maxInFlight)
	}
}

func TestCompatCodecRoundTrip(t *testing.T) {
	srv, err := ListenOpts("127.0.0.1:0", echoHandler, Options{Serial: true, CompatCodec: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := DialCompat(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := uint64(1); i <= 5; i++ {
		resp, err := c.Call(&core.SyncRequest{Round: i})
		if err != nil {
			t.Fatal(err)
		}
		if resp.(*core.SyncRequest).Round != 2*i {
			t.Fatalf("round %d: %+v", i, resp)
		}
	}
}

// TestCloseDrains: Close must sever live client connections and wait
// for serving goroutines, so callers can rely on no handler running
// after Close returns.
func TestCloseDrains(t *testing.T) {
	started := make(chan struct{})
	srv, err := Listen("127.0.0.1:0", func(req any) (any, error) {
		close(started)
		time.Sleep(50 * time.Millisecond)
		return echoHandler(req)
	})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	go c.Call(&core.SyncRequest{Round: 1})
	<-started
	done := make(chan struct{})
	go func() {
		srv.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not return")
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", func(any) (any, error) {
		return nil, fmt.Errorf("refused")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(&core.OKResponse{}); err == nil {
		t.Fatal("want server error")
	}
}
