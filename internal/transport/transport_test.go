package transport

import (
	"fmt"
	"sync"
	"testing"

	"trustedcvs/internal/core"
)

func echoHandler(req any) (any, error) {
	if r, ok := req.(*core.SyncRequest); ok {
		return &core.SyncRequest{From: r.From, Round: r.Round * 2}, nil
	}
	return nil, fmt.Errorf("unexpected %T", req)
}

func TestInproc(t *testing.T) {
	c := NewInproc(echoHandler)
	resp, err := c.Call(&core.SyncRequest{Round: 21})
	if err != nil {
		t.Fatal(err)
	}
	if resp.(*core.SyncRequest).Round != 42 {
		t.Fatalf("resp: %+v", resp)
	}
	c.Close()
	if _, err := c.Call(&core.SyncRequest{}); err == nil {
		t.Fatal("closed caller must error")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", echoHandler)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := uint64(1); i <= 10; i++ {
		resp, err := c.Call(&core.SyncRequest{Round: i})
		if err != nil {
			t.Fatal(err)
		}
		if resp.(*core.SyncRequest).Round != 2*i {
			t.Fatalf("round %d: %+v", i, resp)
		}
	}
}

func TestTCPServerSerializesHandler(t *testing.T) {
	var mu sync.Mutex
	inFlight, maxInFlight := 0, 0
	srv, err := Listen("127.0.0.1:0", func(req any) (any, error) {
		mu.Lock()
		inFlight++
		if inFlight > maxInFlight {
			maxInFlight = inFlight
		}
		mu.Unlock()
		defer func() {
			mu.Lock()
			inFlight--
			mu.Unlock()
		}()
		return echoHandler(req)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := Dial(srv.Addr())
			if err != nil {
				t.Error(err)
				return
			}
			defer c.Close()
			for i := 0; i < 50; i++ {
				if _, err := c.Call(&core.SyncRequest{Round: 1}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if maxInFlight != 1 {
		t.Fatalf("handler ran %d-way concurrent; transports must serialize", maxInFlight)
	}
}

func TestServerErrorsPropagate(t *testing.T) {
	srv, err := Listen("127.0.0.1:0", func(any) (any, error) {
		return nil, fmt.Errorf("refused")
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(&core.OKResponse{}); err == nil {
		t.Fatal("want server error")
	}
}
