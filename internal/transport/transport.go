// Package transport provides the client/server plumbing: a pipelined
// TCP server feeding requests into a protocol handler, a TCP dialer,
// and an in-process transport with the same interface for tests,
// examples and benchmarks.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"trustedcvs/internal/wire"
)

// Caller is a synchronous request/response client.
type Caller interface {
	Call(req any) (any, error)
	Close() error
}

// Handler processes one request. Transports invoke handlers
// concurrently (one goroutine per connection, bounded by
// Options.MaxConcurrent); the protocol servers synchronize internally
// around their ordered sections, so the transport imposes no global
// lock of its own. Options.Serial restores the seed's one-big-lock
// behavior for baseline measurements.
type Handler func(req any) (any, error)

// Options tunes a Server. The zero value is the production
// configuration: pipelined handler, streaming codec, default
// concurrency bound.
type Options struct {
	// Serial wraps every handler invocation in one global mutex,
	// reproducing the seed transport's fully serialized hot path. Used
	// by E13 as its baseline and by tests that need determinism.
	Serial bool
	// CompatCodec serves the seed's self-contained per-message codec
	// instead of the streaming codec. Clients must dial with
	// DialCompat. Used by E13's seed-compat baseline.
	CompatCodec bool
	// MaxConcurrent bounds in-flight handler invocations across all
	// connections (0 = DefaultMaxConcurrent). Decode and encode happen
	// on the connection goroutines outside this bound; the bound keeps
	// a flood of connections from piling up in the protocol servers'
	// ordered sections.
	MaxConcurrent int
}

// DefaultMaxConcurrent is the handler concurrency bound when
// Options.MaxConcurrent is zero.
const DefaultMaxConcurrent = 64

// Inproc is an in-process Caller invoking a handler directly.
type Inproc struct {
	mu      sync.Mutex
	handler Handler
	closed  bool
}

// NewInproc wraps a handler.
func NewInproc(h Handler) *Inproc { return &Inproc{handler: h} }

// Call implements Caller. Calls run concurrently, like the TCP
// transport; only the closed check is locked.
func (c *Inproc) Call(req any) (any, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, errors.New("transport: closed")
	}
	return c.handler(req)
}

// Close implements Caller.
func (c *Inproc) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// Server accepts TCP connections and feeds requests through the
// handler, one serving goroutine per connection with a bounded number
// of concurrent handler invocations.
type Server struct {
	lis     net.Listener
	handler Handler
	opts    Options
	sem     chan struct{} // bounds in-flight handler calls

	serialMu sync.Mutex // only taken when opts.Serial

	mu     sync.Mutex // guards conns
	conns  map[net.Conn]struct{}
	wg     sync.WaitGroup
	closed chan struct{}
}

// Listen starts a server on addr ("127.0.0.1:0" picks a free port)
// with default Options.
func Listen(addr string, h Handler) (*Server, error) {
	return ListenOpts(addr, h, Options{})
}

// ListenOpts starts a server with explicit Options.
func ListenOpts(addr string, h Handler, opts Options) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	max := opts.MaxConcurrent
	if max <= 0 {
		max = DefaultMaxConcurrent
	}
	s := &Server{
		lis:     lis,
		handler: h,
		opts:    opts,
		sem:     make(chan struct{}, max),
		conns:   make(map[net.Conn]struct{}),
		closed:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	// Transient Accept errors (EMFILE, ECONNABORTED) back off
	// exponentially instead of busy-spinning the accept loop; any
	// successful accept resets the delay.
	const minDelay, maxDelay = 5 * time.Millisecond, 1 * time.Second
	delay := time.Duration(0)
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if delay == 0 {
				delay = minDelay
			} else if delay *= 2; delay > maxDelay {
				delay = maxDelay
			}
			timer := time.NewTimer(delay)
			select {
			case <-s.closed:
				timer.Stop()
				return
			case <-timer.C:
			}
			continue
		}
		delay = 0
		if !s.track(conn) {
			conn.Close() // lost the race with Close
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			serve := wire.Serve
			if s.opts.CompatCodec {
				serve = wire.ServeLegacy
			}
			_ = serve(conn, s.dispatch)
		}()
	}
}

// dispatch runs one request through the handler under the concurrency
// bound (and, in Serial mode, the global baseline lock).
func (s *Server) dispatch(req any) (any, error) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	if s.opts.Serial {
		s.serialMu.Lock()
		defer s.serialMu.Unlock()
	}
	return s.handler(req)
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Close stops accepting, severs open client connections, and waits for
// the serving goroutines (including any in-flight handler call) to
// drain before returning.
func (s *Server) Close() error {
	s.mu.Lock()
	select {
	case <-s.closed:
		s.mu.Unlock()
		return nil
	default:
	}
	close(s.closed)
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

// Dial connects to a transport server using the streaming codec (the
// server default).
func Dial(addr string) (Caller, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return wire.NewConn(conn), nil
}

// DialCompat connects using the seed's self-contained per-message
// codec, for servers started with Options.CompatCodec.
func DialCompat(addr string) (Caller, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return wire.NewLegacyConn(conn), nil
}
