// Package transport provides the client/server plumbing: a pipelined
// TCP server feeding requests into a protocol handler, a TCP dialer,
// and an in-process transport with the same interface for tests,
// examples and benchmarks.
package transport

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"trustedcvs/internal/wire"
)

// Caller is a synchronous request/response client.
type Caller interface {
	Call(req any) (any, error)
	Close() error
}

// Handler processes one request. Transports invoke handlers
// concurrently (one goroutine per connection, bounded by
// Options.MaxConcurrent); the protocol servers synchronize internally
// around their ordered sections, so the transport imposes no global
// lock of its own. Options.Serial restores the seed's one-big-lock
// behavior for baseline measurements.
type Handler func(req any) (any, error)

// Options tunes a Server. The zero value is the production
// configuration: pipelined handler, streaming codec, default
// concurrency bound.
type Options struct {
	// Serial wraps every handler invocation in one global mutex,
	// reproducing the seed transport's fully serialized hot path. Used
	// by E13 as its baseline and by tests that need determinism.
	Serial bool
	// CompatCodec serves the seed's self-contained per-message codec
	// instead of the streaming codec. Clients must dial with
	// DialCompat. Used by E13's seed-compat baseline.
	CompatCodec bool
	// MaxConcurrent bounds in-flight handler invocations across all
	// connections (0 = DefaultMaxConcurrent). Decode and encode happen
	// on the connection goroutines outside this bound; the bound keeps
	// a flood of connections from piling up in the protocol servers'
	// ordered sections.
	MaxConcurrent int
	// IdleTimeout severs a connection whose next request does not
	// arrive in time, so a stalled client cannot pin a serving
	// goroutine forever (0 = DefaultIdleTimeout, negative = disabled).
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write (0 = DefaultWriteTimeout,
	// negative = disabled).
	WriteTimeout time.Duration
	// Sessions, when set, deduplicates wire.SessionRequest envelopes
	// through the table before the handler — the server half of the
	// resilient client's exactly-once retry contract. Plain requests
	// bypass the table untouched.
	Sessions *SessionTable
	// Admission, when set, replaces the MaxConcurrent semaphore as the
	// concurrency governor: a bounded priority queue with an adaptive
	// (AIMD) limit that sheds excess load with typed wire.ErrOverloaded
	// *before* the handler or session cache is touched. See Admission.
	Admission *Admission
	// Classify maps an (unwrapped) request payload to its admission
	// priority class. nil classifies everything as PriorityUser. Only
	// consulted when Admission is set.
	Classify func(req any) Priority
	// HandlerDeadline, when set, is invoked instead of the plain
	// handler and receives the request's propagated deadline (zero
	// when the frame carried no budget), so protocol handlers can
	// abort expensive work whose client already gave up.
	HandlerDeadline func(req any, deadline time.Time) (any, error)
}

// DefaultMaxConcurrent is the handler concurrency bound when
// Options.MaxConcurrent is zero.
const DefaultMaxConcurrent = 64

// DefaultIdleTimeout and DefaultWriteTimeout apply when the
// corresponding Options field is zero.
const (
	DefaultIdleTimeout  = 5 * time.Minute
	DefaultWriteTimeout = 1 * time.Minute
)

// Inproc is an in-process Caller invoking a handler directly.
type Inproc struct {
	mu      sync.Mutex
	handler Handler
	closed  bool
}

// NewInproc wraps a handler.
func NewInproc(h Handler) *Inproc { return &Inproc{handler: h} }

// Call implements Caller. Calls run concurrently, like the TCP
// transport; only the closed check is locked.
func (c *Inproc) Call(req any) (any, error) {
	c.mu.Lock()
	closed := c.closed
	c.mu.Unlock()
	if closed {
		return nil, errors.New("transport: closed")
	}
	return c.handler(req)
}

// Close implements Caller.
func (c *Inproc) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// Server accepts TCP connections and feeds requests through the
// handler, one serving goroutine per connection with a bounded number
// of concurrent handler invocations.
type Server struct {
	lis     net.Listener
	handler Handler
	opts    Options
	sem     chan struct{} // bounds in-flight handler calls

	serialMu sync.Mutex // only taken when opts.Serial

	mu       sync.Mutex // guards conns, draining, inflight
	conns    map[net.Conn]struct{}
	draining bool
	inflight int
	drained  chan struct{} // closed when draining && inflight == 0
	wg       sync.WaitGroup
	closed   chan struct{}
}

// Listen starts a server on addr ("127.0.0.1:0" picks a free port)
// with default Options.
func Listen(addr string, h Handler) (*Server, error) {
	return ListenOpts(addr, h, Options{})
}

// ListenOpts starts a server with explicit Options.
func ListenOpts(addr string, h Handler, opts Options) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return ServeListener(lis, h, opts), nil
}

// ServeListener starts a server over an existing listener — how the
// fault harness interposes a fault.Listener, and how a recovering
// process rebinds its old address before restoring state.
func ServeListener(lis net.Listener, h Handler, opts Options) *Server {
	max := opts.MaxConcurrent
	if max <= 0 {
		max = DefaultMaxConcurrent
	}
	s := &Server{
		lis:     lis,
		handler: h,
		opts:    opts,
		//lint:ignore boundedqueue capacity is Options.MaxConcurrent (default DefaultMaxConcurrent), a fixed concurrency bound, not request-scaled
		sem:     make(chan struct{}, max),
		conns:   make(map[net.Conn]struct{}),
		drained: make(chan struct{}),
		closed:  make(chan struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Sessions returns the server's session table (nil if not configured).
func (s *Server) Sessions() *SessionTable { return s.opts.Sessions }

// AdmissionStats snapshots the admission controller, or returns zero
// stats when admission control is not configured.
func (s *Server) AdmissionStats() AdmissionStats {
	if s.opts.Admission == nil {
		return AdmissionStats{}
	}
	return s.opts.Admission.Stats()
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	// Transient Accept errors (EMFILE, ECONNABORTED) back off
	// exponentially instead of busy-spinning the accept loop; any
	// successful accept resets the delay.
	const minDelay, maxDelay = 5 * time.Millisecond, 1 * time.Second
	delay := time.Duration(0)
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
			}
			if delay == 0 {
				delay = minDelay
			} else if delay *= 2; delay > maxDelay {
				delay = maxDelay
			}
			timer := time.NewTimer(delay)
			select {
			case <-s.closed:
				timer.Stop()
				return
			case <-timer.C:
			}
			continue
		}
		delay = 0
		if !s.track(conn) {
			conn.Close() // lost the race with Close
			continue
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer s.untrack(conn)
			rw := s.withDeadlines(conn)
			if s.opts.CompatCodec {
				// The seed codec has no budget header; requests arrive
				// deadline-free, exactly as before.
				_ = wire.ServeLegacy(rw, s.dispatch)
				return
			}
			_ = wire.ServeBudget(rw, s.dispatchBudget)
		}()
	}
}

// withDeadlines wraps conn so every blocking Read carries the idle
// timeout and every Write the write timeout. Stalled or vanished
// clients then cost one timeout, not a goroutine forever.
func (s *Server) withDeadlines(conn net.Conn) io.ReadWriter {
	idle := s.opts.IdleTimeout
	if idle == 0 {
		idle = DefaultIdleTimeout
	}
	write := s.opts.WriteTimeout
	if write == 0 {
		write = DefaultWriteTimeout
	}
	return &deadlineConn{conn: conn, idle: idle, write: write}
}

// deadlineConn arms a fresh deadline before each I/O so timeouts are
// per-operation (idle gap, single write), not per-connection-lifetime.
type deadlineConn struct {
	conn  net.Conn
	idle  time.Duration
	write time.Duration
}

func (d *deadlineConn) Read(p []byte) (int, error) {
	if d.idle > 0 {
		if err := d.conn.SetReadDeadline(time.Now().Add(d.idle)); err != nil {
			return 0, err
		}
	}
	return d.conn.Read(p)
}

func (d *deadlineConn) Write(p []byte) (int, error) {
	if d.write > 0 {
		if err := d.conn.SetWriteDeadline(time.Now().Add(d.write)); err != nil {
			return 0, err
		}
	}
	return d.conn.Write(p)
}

// dispatch runs one request through the handler under the concurrency
// bound (and, in Serial mode, the global baseline lock). Session
// envelopes route through the dedupe table when configured. During a
// graceful shutdown's drain window new requests are refused while
// in-flight ones complete.
func (s *Server) dispatch(req any) (any, error) {
	return s.dispatchBudget(req, 0)
}

// dispatchBudget is dispatch with the request's propagated deadline
// budget (0 = none), anchored at decode time. Ordering is the whole
// point here: the session cache is consulted *before* admission (a
// retry of an already-applied op must replay its cached response, not
// risk a shed that would falsely report "refused" for applied work),
// and admission runs *before* the handler (a shed op never touches
// protocol state). Typed refusals are never cached (see
// SessionTable.Dispatch), so the combination keeps refusals atomic.
func (s *Server) dispatchBudget(req any, budget time.Duration) (any, error) {
	if err := s.beginReq(); err != nil {
		return nil, err
	}
	defer s.endReq()
	var deadline time.Time
	if budget > 0 {
		deadline = time.Now().Add(budget)
	}
	if s.opts.Admission == nil {
		// Legacy concurrency governor. With Admission configured the
		// priority queue takes over — parking excess load in the
		// semaphore instead would admit in arrival order and blind the
		// shed policy to priorities.
		s.sem <- struct{}{}
		defer func() { <-s.sem }()
	}
	inner := func(r any) (any, error) { return s.admitAndHandle(r, deadline) }
	if sr, ok := req.(*wire.SessionRequest); ok && s.opts.Sessions != nil {
		return s.opts.Sessions.Dispatch(sr, inner)
	}
	if sr, ok := req.(*wire.SessionRequest); ok {
		// No table: honor the envelope without dedupe so a resilient
		// client still works against a plain server (retries then rely
		// on the protocol's own detection, as documented in DESIGN.md).
		return inner(sr.Req)
	}
	return inner(req)
}

// admitAndHandle sheds expired or excess requests with typed errors
// before any protocol state is touched, then runs the handler.
func (s *Server) admitAndHandle(req any, deadline time.Time) (any, error) {
	if !deadline.IsZero() && time.Now().After(deadline) {
		return nil, fmt.Errorf("transport: deadline expired before dispatch%w", admErr{wire.ErrDeadlineExceeded})
	}
	if adm := s.opts.Admission; adm != nil {
		class := PriorityUser
		if s.opts.Classify != nil {
			class = s.opts.Classify(req)
		}
		if err := adm.Acquire(class, deadline); err != nil {
			return nil, err
		}
		start := time.Now()
		defer func() { adm.Release(time.Since(start)) }()
		if !deadline.IsZero() && time.Now().After(deadline) {
			// The wait in the admission queue consumed the budget:
			// the client is gone, so don't burn the slot on work
			// nobody will read.
			return nil, fmt.Errorf("transport: deadline expired in admission queue%w", admErr{wire.ErrDeadlineExceeded})
		}
	}
	return s.handleOne(req, deadline)
}

func (s *Server) handleOne(req any, deadline time.Time) (any, error) {
	if s.opts.Serial {
		s.serialMu.Lock()
		defer s.serialMu.Unlock()
	}
	if s.opts.HandlerDeadline != nil {
		return s.opts.HandlerDeadline(req, deadline)
	}
	return s.handler(req)
}

func (s *Server) beginReq() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return errors.New("transport: server shutting down")
	}
	s.inflight++
	return nil
}

func (s *Server) endReq() {
	s.mu.Lock()
	s.inflight--
	if s.draining && s.inflight == 0 {
		select {
		case <-s.drained:
		default:
			close(s.drained)
		}
	}
	s.mu.Unlock()
}

func (s *Server) track(conn net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.conns[conn] = struct{}{}
	return true
}

func (s *Server) untrack(conn net.Conn) {
	conn.Close()
	s.mu.Lock()
	delete(s.conns, conn)
	s.mu.Unlock()
}

// Shutdown is the graceful variant of Close: it stops admitting new
// requests, waits up to drain for in-flight handler calls to complete
// (so their responses reach the clients), then severs everything via
// Close. A zero or negative drain degrades to an immediate Close.
func (s *Server) Shutdown(drain time.Duration) error {
	s.mu.Lock()
	s.draining = true
	if s.inflight == 0 {
		select {
		case <-s.drained:
		default:
			close(s.drained)
		}
	}
	s.mu.Unlock()
	if drain > 0 {
		timer := time.NewTimer(drain)
		select {
		case <-s.drained:
		case <-timer.C:
		}
		timer.Stop()
	}
	return s.Close()
}

// Close stops accepting, severs open client connections, and waits for
// the serving goroutines (including any in-flight handler call) to
// drain before returning.
func (s *Server) Close() error {
	s.mu.Lock()
	select {
	case <-s.closed:
		s.mu.Unlock()
		return nil
	default:
	}
	close(s.closed)
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.lis.Close()
	s.wg.Wait()
	return err
}

// Dial connects to a transport server using the streaming codec (the
// server default).
func Dial(addr string) (Caller, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return wire.NewConn(conn), nil
}

// DialCompat connects using the seed's self-contained per-message
// codec, for servers started with Options.CompatCodec.
func DialCompat(addr string) (Caller, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return wire.NewLegacyConn(conn), nil
}
