// Package transport provides the client/server plumbing: a TCP server
// that serializes requests into a protocol handler, a TCP dialer, and
// an in-process transport with the same interface for tests, examples
// and benchmarks.
package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"trustedcvs/internal/wire"
)

// Caller is a synchronous request/response client.
type Caller interface {
	Call(req any) (any, error)
	Close() error
}

// Handler processes one request. Handlers are invoked serially by
// every transport in this package (the protocol state machines are
// sequential objects, matching the paper's serial server).
type Handler func(req any) (any, error)

// Inproc is an in-process Caller invoking a handler directly.
type Inproc struct {
	mu      sync.Mutex
	handler Handler
	closed  bool
}

// NewInproc wraps a handler.
func NewInproc(h Handler) *Inproc { return &Inproc{handler: h} }

// Call implements Caller.
func (c *Inproc) Call(req any) (any, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, errors.New("transport: closed")
	}
	return c.handler(req)
}

// Close implements Caller.
func (c *Inproc) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}

// Server accepts TCP connections and feeds every request through one
// serialized handler.
type Server struct {
	lis     net.Listener
	handler Handler

	mu     sync.Mutex // serializes handler invocations across conns
	wg     sync.WaitGroup
	closed chan struct{}
}

// Listen starts a server on addr ("127.0.0.1:0" picks a free port).
func Listen(addr string, h Handler) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	s := &Server{lis: lis, handler: h, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.lis.Addr().String() }

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.lis.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				// Accept errors on a live listener are rare and
				// transient; a closed listener exits above.
				continue
			}
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer conn.Close()
			_ = wire.Serve(conn, func(req any) (any, error) {
				s.mu.Lock()
				defer s.mu.Unlock()
				return s.handler(req)
			})
		}()
	}
}

// Close stops accepting and waits for in-flight connections to finish
// their current request. Open client connections are severed.
func (s *Server) Close() error {
	close(s.closed)
	err := s.lis.Close()
	return err
}

// Dial connects to a transport server.
func Dial(addr string) (Caller, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	return wire.NewConn(conn), nil
}
