package transport

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trustedcvs/internal/wire"
)

// waitDepth polls until the admission queue holds exactly n waiters.
func waitDepth(t *testing.T, adm *Admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for adm.Stats().Depth != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue depth = %d, want %d", adm.Stats().Depth, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionShedOrder pins the shedding ladder on a full queue: a
// higher-priority arrival evicts the newest lowest-priority waiter
// (typed wire.ErrOverloaded), an arrival at the bottom class self-sheds
// immediately, and freed capacity grants waiters highest-class first
// regardless of queue age.
func TestAdmissionShedOrder(t *testing.T) {
	adm := NewAdmission(AdmissionOptions{MinLimit: 1, MaxLimit: 1, QueueDepth: 2})
	if err := adm.Acquire(PriorityUser, time.Time{}); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	// Two background waiters fill the queue.
	bg := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() { bg <- adm.Acquire(PriorityBackground, time.Time{}) }()
	}
	waitDepth(t, adm, 2)
	// A user arrival on the full queue evicts the newest background
	// waiter and parks in its place.
	userCh := make(chan error, 1)
	go func() { userCh <- adm.Acquire(PriorityUser, time.Time{}) }()
	evicted := <-bg
	if !errors.Is(evicted, wire.ErrOverloaded) {
		t.Fatalf("evicted waiter got %v, want typed wire.ErrOverloaded", evicted)
	}
	waitDepth(t, adm, 2)
	// A background arrival on the full queue is the lowest priority in
	// sight: it self-sheds without displacing anyone.
	if err := adm.Acquire(PriorityBackground, time.Time{}); !errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("background on full queue got %v, want typed wire.ErrOverloaded", err)
	} else if errors.Is(err, wire.ErrDeadlineExceeded) {
		t.Fatalf("shed mistyped as deadline: %v", err)
	}
	// Freed capacity goes to the parked user before the older
	// background waiter.
	adm.Release(time.Millisecond)
	if err := <-userCh; err != nil {
		t.Fatalf("user waiter not granted first: %v", err)
	}
	if st := adm.Stats(); st.Depth != 1 {
		t.Fatalf("depth after user grant = %d, want the background waiter alone", st.Depth)
	}
	adm.Release(time.Millisecond)
	if err := <-bg; err != nil {
		t.Fatalf("background waiter finally granted: %v", err)
	}
	adm.Release(time.Millisecond)
	st := adm.Stats()
	if st.Inflight != 0 || st.Depth != 0 {
		t.Fatalf("inflight/depth = %d/%d after full drain, want 0/0", st.Inflight, st.Depth)
	}
	if st.Shed[PriorityBackground] != 2 || st.Shed[PriorityUser] != 0 {
		t.Fatalf("shed = %v, want exactly 2 background refusals", st.Shed)
	}
	if st.Admitted != 3 {
		t.Fatalf("admitted = %d, want 3", st.Admitted)
	}
}

// TestAdmissionOverloadDeadline pins the deadline interactions: a
// request whose propagated deadline lapsed before arrival is refused
// with typed wire.ErrDeadlineExceeded (never counted as a shed), and a
// waiter whose deadline lapses while parked leaves the queue with the
// same typed refusal.
func TestAdmissionOverloadDeadline(t *testing.T) {
	adm := NewAdmission(AdmissionOptions{MinLimit: 1, MaxLimit: 1, QueueDepth: 4})
	err := adm.Acquire(PriorityUser, time.Now().Add(-time.Second))
	if !errors.Is(err, wire.ErrDeadlineExceeded) || errors.Is(err, wire.ErrOverloaded) {
		t.Fatalf("pre-expired acquire got %v, want typed wire.ErrDeadlineExceeded", err)
	}
	if err := adm.Acquire(PriorityUser, time.Time{}); err != nil {
		t.Fatalf("fill slot: %v", err)
	}
	start := time.Now()
	err = adm.Acquire(PriorityAudit, time.Now().Add(30*time.Millisecond))
	if !errors.Is(err, wire.ErrDeadlineExceeded) {
		t.Fatalf("parked waiter got %v, want typed wire.ErrDeadlineExceeded", err)
	}
	if waited := time.Since(start); waited < 20*time.Millisecond {
		t.Fatalf("waiter refused after %v, before its deadline", waited)
	}
	st := adm.Stats()
	if st.Expired[PriorityUser] != 1 || st.Expired[PriorityAudit] != 1 {
		t.Fatalf("expired = %v, want one user + one audit", st.Expired)
	}
	if st.Depth != 0 {
		t.Fatalf("expired waiter still queued (depth %d)", st.Depth)
	}
	// The slot is intact: release and re-acquire.
	adm.Release(time.Millisecond)
	if err := adm.Acquire(PriorityUser, time.Time{}); err != nil {
		t.Fatalf("re-acquire after expiry bookkeeping: %v", err)
	}
	adm.Release(time.Millisecond)
}

// TestAdmissionOverloadAIMD pins the adaptive limit: sustained latency
// above Target backs the limit off multiplicatively; latency back
// under Target regrows it additively to MaxLimit.
func TestAdmissionOverloadAIMD(t *testing.T) {
	adm := NewAdmission(AdmissionOptions{Target: 10 * time.Millisecond, MinLimit: 2, MaxLimit: 8, QueueDepth: 4})
	if got := adm.Stats().Limit; got != 8 {
		t.Fatalf("initial limit = %d, want MaxLimit 8", got)
	}
	turn := func(observed time.Duration, n int) {
		for i := 0; i < n; i++ {
			if err := adm.Acquire(PriorityUser, time.Time{}); err != nil {
				t.Fatalf("acquire: %v", err)
			}
			adm.Release(observed)
		}
	}
	turn(100*time.Millisecond, 2*adjustEvery)
	if got := adm.Stats().Limit; got >= 8 {
		t.Fatalf("limit = %d after sustained overshoot, want backed off below 8", got)
	}
	turn(time.Millisecond, 8*adjustEvery)
	if got := adm.Stats().Limit; got != 8 {
		t.Fatalf("limit = %d after sustained headroom, want regrown to 8", got)
	}
	// The floor holds no matter how bad latency gets.
	turn(time.Second, 30*adjustEvery)
	if got := adm.Stats().Limit; got != 2 {
		t.Fatalf("limit = %d under hopeless latency, want MinLimit 2", got)
	}
}

// TestAdmissionShedStress storms the controller from 64 goroutines
// across every class with mixed deadlines (run under -race by CI) and
// then audits the books: no slot leaks, no waiter leaks, and every
// request accounted for as admitted, shed, or expired.
func TestAdmissionShedStress(t *testing.T) {
	adm := NewAdmission(AdmissionOptions{Target: time.Millisecond, MinLimit: 2, MaxLimit: 4, QueueDepth: 8})
	const (
		workers = 64
		perW    = 50
	)
	var granted atomic.Uint64
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perW; j++ {
				class := Priority(j % int(NumPriorities))
				var deadline time.Time
				if j%3 == 0 {
					deadline = time.Now().Add(time.Duration(j%5) * time.Millisecond)
				}
				if err := adm.Acquire(class, deadline); err != nil {
					if !errors.Is(err, wire.ErrOverloaded) && !errors.Is(err, wire.ErrDeadlineExceeded) {
						t.Errorf("untyped refusal: %v", err)
					}
					continue
				}
				granted.Add(1)
				time.Sleep(time.Duration(j%3) * 100 * time.Microsecond)
				adm.Release(time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
	st := adm.Stats()
	if st.Inflight != 0 || st.Depth != 0 {
		t.Fatalf("leaked state after storm: inflight %d, depth %d", st.Inflight, st.Depth)
	}
	var refused uint64
	for c := Priority(0); c < NumPriorities; c++ {
		refused += st.Shed[c] + st.Expired[c]
	}
	if st.Admitted != granted.Load() {
		t.Fatalf("admitted %d but callers saw %d grants", st.Admitted, granted.Load())
	}
	if st.Admitted+refused != workers*perW {
		t.Fatalf("books do not balance: %d admitted + %d refused != %d requests",
			st.Admitted, refused, workers*perW)
	}
}
