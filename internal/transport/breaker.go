package transport

import (
	"time"

	"trustedcvs/internal/backoff"
)

// BreakerPolicy configures the per-endpoint circuit breaker of a
// ResilientClient. A nil policy on RetryPolicy.Breaker disables the
// breaker (the pre-breaker behavior); the zero value of this struct
// selects the defaults noted per field.
type BreakerPolicy struct {
	// Threshold is how many consecutive failures (dial errors, dropped
	// connections, overload sheds) open the breaker (default 4).
	Threshold int
	// Cooldown is how long an open breaker holds traffic off the
	// endpoint before allowing one half-open probe. Each cooldown is
	// jittered ±50% from the client's seeded backoff source so a fleet
	// of clients that opened together does not probe in lockstep
	// (default 500ms).
	Cooldown time.Duration
}

func (p BreakerPolicy) withDefaults() BreakerPolicy {
	if p.Threshold <= 0 {
		p.Threshold = 4
	}
	if p.Cooldown <= 0 {
		p.Cooldown = 500 * time.Millisecond
	}
	return p
}

// BreakerState is the classic three-state circuit breaker state.
type BreakerState int

const (
	// BreakerClosed: traffic flows, failures are counted.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the endpoint is skipped until the (jittered)
	// cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: exactly one probe call is in flight; its
	// outcome closes or re-opens the breaker. Every other caller
	// still treats the endpoint as unavailable — this is what bounds
	// probe storms when many callers race the same recovery.
	BreakerHalfOpen
)

func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// breaker is one endpoint's circuit breaker. All methods are called
// with the owning client's mutex held.
type breaker struct {
	pol     BreakerPolicy
	state   BreakerState
	fails   int
	probeAt time.Time // earliest instant a half-open probe may launch
	probing bool      // a probe call is in flight
	opens   uint64
}

func newBreaker(pol BreakerPolicy) *breaker {
	return &breaker{pol: pol.withDefaults()}
}

// probeReadyLocked reports whether the breaker is open with an elapsed
// cooldown — i.e. a half-open probe could be claimed. No side effects,
// so a picker can inspect several endpoints without leaking probe
// slots it does not use.
func (b *breaker) probeReadyLocked(now time.Time) bool {
	return b.state == BreakerOpen && !now.Before(b.probeAt)
}

// claimProbeLocked transitions open → half-open and claims the single
// probe slot. The caller must route exactly one call to the endpoint
// and report its outcome via successLocked/failureLocked.
func (b *breaker) claimProbeLocked() {
	b.state = BreakerHalfOpen
	b.probing = true
}

// successLocked records a delivered response: the breaker closes and
// the failure streak resets.
func (b *breaker) successLocked() {
	b.state = BreakerClosed
	b.fails = 0
	b.probing = false
}

// failureLocked records one failure, opening the breaker when the
// streak reaches the threshold (immediately, for a failed half-open
// probe) with a cooldown jittered from src.
func (b *breaker) failureLocked(now time.Time, src *backoff.Source) {
	b.fails++
	wasProbe := b.state == BreakerHalfOpen
	b.probing = false
	if wasProbe || b.fails >= b.pol.Threshold {
		if b.state != BreakerOpen {
			b.opens++
		}
		b.state = BreakerOpen
		// Jitter the cooldown into [0.5c, 1.5c).
		c := b.pol.Cooldown
		j := time.Duration(src.Uint64() % uint64(c))
		b.probeAt = now.Add(c/2 + j)
	}
}
