package transport

import (
	"fmt"
	"sync"

	"trustedcvs/internal/wire"
)

// SessionTable gives a server exactly-once request application in the
// face of client retries. A resilient client wraps every request in a
// wire.SessionRequest{SID, Seq}; the table caches, per session, the
// outcome of every applied sequence inside a sliding window. A retry
// of an applied sequence returns the cache without touching the
// handler — which is what makes reconnect-and-retry safe for
// non-idempotent protocol operations: without it, a retried op whose
// original was applied would advance the server's register a second
// time and the client's next sync barrier would raise a *false*
// deviation alarm.
//
// Sequences may arrive out of order (concurrent callers on one session
// race their retries), so the cache is keyed by sequence, not a single
// high-water mark: any sequence not yet applied and not yet pruned is
// applied on arrival. Below the prune horizon the response is gone and
// the request is refused loudly rather than re-applied.
//
// The table is also part of the durable state: Freeze quiesces
// dispatch and hands a consistent snapshot of all sessions to the
// checkpoint writer, so a restored server still recognizes in-flight
// retries from before the crash. A checkpoint that captured the
// database but not the session cache would tear the two apart and
// manufacture false alarms on recovery.
type SessionTable struct {
	// qmu is the quiesce lock: Dispatch holds it shared for the whole
	// handler call, Freeze holds it exclusive. This is the only way to
	// capture (db, sessions) as a consistent cut without a
	// stop-the-world flag in every protocol server.
	qmu sync.RWMutex

	mu   sync.Mutex // guards m and tick
	m    map[uint64]*session
	tick uint64

	max int
}

// DefaultMaxSessions bounds the table; beyond it the least recently
// used session is evicted (its client, if still alive, fails with a
// horizon error and must start a new session).
const DefaultMaxSessions = 4096

// sessionWindow is how many recent outcomes each session retains. A
// retry delayed past this many newer calls on the same session finds
// its response pruned; since one wire connection serializes round
// trips, real retries sit within a handful of sequences of the max.
const sessionWindow = 256

type outcome struct {
	resp   any
	errMsg string
	isErr  bool
}

type session struct {
	mu    sync.Mutex
	done  map[uint64]outcome
	high  uint64 // highest applied sequence
	floor uint64 // outcomes with seq <= floor are pruned
	used  uint64
}

// NewSessionTable builds an empty table. max <= 0 selects
// DefaultMaxSessions.
func NewSessionTable(max int) *SessionTable {
	if max <= 0 {
		max = DefaultMaxSessions
	}
	return &SessionTable{m: make(map[uint64]*session), max: max}
}

// get returns the session for sid, creating (and LRU-evicting) as
// needed, and stamps its recency.
func (t *SessionTable) get(sid uint64) *session {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tick++
	s, ok := t.m[sid]
	if !ok {
		if len(t.m) >= t.max {
			var vid uint64
			var victim *session
			for id, c := range t.m {
				if victim == nil || c.used < victim.used {
					vid, victim = id, c
				}
			}
			delete(t.m, vid)
		}
		s = &session{done: make(map[uint64]outcome)}
		t.m[sid] = s
	}
	s.used = t.tick
	return s
}

// Dispatch applies r exactly once:
//
//   - Seq already applied: the original response (or the original
//     application error) is replayed from cache; the handler is not
//     called.
//   - Seq at or below the prune horizon and not cached: the response
//     is gone — refuse loudly rather than re-apply.
//   - Otherwise: the handler runs and its outcome is cached.
//
// The quiesce lock is held shared across the handler call so Freeze
// observes either "not applied, not cached" or "applied and cached" —
// never the torn middle. The per-session lock additionally serializes
// one session's applications, matching the serialization its single
// wire connection imposes anyway.
func (t *SessionTable) Dispatch(r *wire.SessionRequest, handler Handler) (any, error) {
	if r.SID == 0 {
		return nil, fmt.Errorf("transport: session id must be nonzero")
	}
	if r.Seq == 0 {
		return nil, fmt.Errorf("transport: session seq must be nonzero")
	}
	t.qmu.RLock()
	defer t.qmu.RUnlock()

	s := t.get(r.SID)
	s.mu.Lock()
	defer s.mu.Unlock()
	if o, ok := s.done[r.Seq]; ok {
		if o.isErr {
			return nil, fmt.Errorf("%s", o.errMsg)
		}
		return o.resp, nil
	}
	if r.Seq <= s.floor {
		return nil, fmt.Errorf("transport: request seq %d below session horizon %d: response no longer cached", r.Seq, s.floor)
	}
	resp, err := handler(r.Req)
	if err != nil && wire.ErrCode(err) != 0 {
		// Typed refusals (overload shed, expired deadline) happen
		// before the handler touches protocol state — the refusal is
		// atomic by contract. Caching one would make a retry of this
		// sequence replay "overloaded" forever after capacity
		// returned, so refusals pass through uncached and a retry is
		// a fresh admission attempt.
		return nil, err
	}
	o := outcome{resp: resp}
	if err != nil {
		o = outcome{isErr: true, errMsg: err.Error()}
	}
	s.done[r.Seq] = o
	if r.Seq > s.high {
		s.high = r.Seq
	}
	if s.high > sessionWindow && s.floor < s.high-sessionWindow {
		s.floor = s.high - sessionWindow
		for seq := range s.done {
			if seq <= s.floor {
				delete(s.done, seq)
			}
		}
	}
	return resp, err
}

// OpOutcome is one cached (sequence, outcome) pair in a checkpoint.
type OpOutcome struct {
	Seq    uint64
	Resp   any
	ErrMsg string
	IsErr  bool
}

// SessionState is one session's durable core: enough to replay cached
// responses and refuse pruned retries after a restart.
type SessionState struct {
	SID   uint64
	High  uint64
	Floor uint64
	Ops   []OpOutcome
}

// SessionsSnapshot is the gob-encodable capture of a SessionTable,
// embedded in server checkpoints.
type SessionsSnapshot struct {
	Sessions []SessionState
}

// Freeze blocks until every in-flight Dispatch has completed, holds
// new ones out, and runs f with a consistent snapshot of the table.
// The caller's f typically also captures the protocol server's state:
// because nothing is mid-application while f runs, the pair is a
// consistent cut.
func (t *SessionTable) Freeze(f func(*SessionsSnapshot)) {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	snap := &SessionsSnapshot{}
	t.mu.Lock()
	for sid, s := range t.m {
		if s.high == 0 {
			continue
		}
		st := SessionState{SID: sid, High: s.high, Floor: s.floor}
		for seq, o := range s.done {
			st.Ops = append(st.Ops, OpOutcome{Seq: seq, Resp: o.resp, ErrMsg: o.errMsg, IsErr: o.isErr})
		}
		snap.Sessions = append(snap.Sessions, st)
	}
	t.mu.Unlock()
	f(snap)
}

// RestoreSessions loads a checkpointed snapshot into the table,
// replacing any current contents. Called during recovery before the
// transport starts accepting.
func (t *SessionTable) RestoreSessions(snap *SessionsSnapshot) {
	t.qmu.Lock()
	defer t.qmu.Unlock()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.m = make(map[uint64]*session, len(snap.Sessions))
	for _, st := range snap.Sessions {
		t.tick++
		s := &session{done: make(map[uint64]outcome, len(st.Ops)), high: st.High, floor: st.Floor, used: t.tick}
		for _, o := range st.Ops {
			s.done[o.Seq] = outcome{resp: o.Resp, errMsg: o.ErrMsg, isErr: o.IsErr}
		}
		t.m[st.SID] = s
	}
}
