package transport

import (
	"fmt"
	"sync"
	"time"

	"trustedcvs/internal/wire"
)

// Priority classes for server admission control, highest first. Under
// overload the server sheds from the bottom of this ladder up: a
// background scrub is refused long before a user op, and user ops are
// the last class standing. The ordering encodes the trust argument,
// not just a latency preference — user ops and audit reports are what
// detection is *made of*, while gossip redials and scrubs both have
// retry loops that tolerate refusal.
type Priority int

const (
	// PriorityUser: interactive protocol operations (reads, writes,
	// syncs, content push/fetch on behalf of a user). Shed last.
	PriorityUser Priority = iota
	// PriorityAudit: audit-protocol traffic — epoch report fetches,
	// backup retrieval for verification.
	PriorityAudit
	// PriorityGossip: witness commitment fan-out and gossip. Witnesses
	// catch up from peers, so a refused delivery costs latency, not
	// evidence.
	PriorityGossip
	// PriorityBackground: scrubbing, prefetching, anything with no
	// caller waiting. Shed first.
	PriorityBackground

	// NumPriorities sizes per-class stats arrays.
	NumPriorities
)

func (p Priority) String() string {
	switch p {
	case PriorityUser:
		return "user"
	case PriorityAudit:
		return "audit"
	case PriorityGossip:
		return "gossip"
	case PriorityBackground:
		return "background"
	}
	return fmt.Sprintf("priority(%d)", int(p))
}

// AdmissionOptions configures an Admission controller. The zero value
// selects the defaults noted on each field.
type AdmissionOptions struct {
	// Target is the per-request latency the adaptive limit steers
	// toward: while observed latency (EWMA) stays under Target the
	// concurrency limit creeps up additively; when it overshoots, the
	// limit backs off multiplicatively (AIMD). Default 25ms.
	Target time.Duration
	// MinLimit floors the adaptive concurrency limit so admission can
	// always make progress. Default 2.
	MinLimit int
	// MaxLimit caps the adaptive concurrency limit. Default 64 (the
	// transport's historical MaxConcurrent).
	MaxLimit int
	// QueueDepth bounds the total number of waiters queued across all
	// priority classes; beyond it requests are shed, lowest priority
	// first. Default 128.
	QueueDepth int
}

func (o AdmissionOptions) withDefaults() AdmissionOptions {
	if o.Target <= 0 {
		o.Target = 25 * time.Millisecond
	}
	if o.MinLimit <= 0 {
		o.MinLimit = 2
	}
	if o.MaxLimit <= 0 {
		o.MaxLimit = 64
	}
	if o.MaxLimit < o.MinLimit {
		o.MaxLimit = o.MinLimit
	}
	if o.QueueDepth <= 0 {
		o.QueueDepth = 128
	}
	return o
}

// AdmissionStats is a point-in-time snapshot of an Admission
// controller, exported by the -stats-addr debug endpoint.
type AdmissionStats struct {
	Limit     int // current adaptive concurrency limit
	Inflight  int // requests currently admitted and running
	Depth     int // waiters currently queued
	HighWater int // max queue depth ever observed
	Admitted  uint64
	// Shed counts ErrOverloaded refusals per class; Expired counts
	// requests whose propagated deadline lapsed before admission.
	Shed    [NumPriorities]uint64
	Expired [NumPriorities]uint64
	// LatencyEWMA is the smoothed observed handler latency the AIMD
	// loop compares against Target.
	LatencyEWMA time.Duration
}

// admWaiter is one parked Acquire call.
type admWaiter struct {
	ch       chan error // buffered 1: grant (nil) or refusal
	class    Priority
	deadline time.Time
}

// Admission is a bounded, priority-aware admission controller with an
// adaptive (AIMD) concurrency limit: the transport's answer to "queues
// grow without bound above capacity". Requests are admitted up to the
// current limit, queued (bounded, per-priority FIFO) while the server
// is busy, and shed with a typed wire.ErrOverloaded — lowest priority
// first — when the queue is full. Shedding happens before any protocol
// state is touched, so a shed op is atomically refused: never
// half-applied, never cached, never an audit obligation.
type Admission struct {
	mu       sync.Mutex
	opt      AdmissionOptions
	limit    float64
	inflight int
	// queues holds parked waiters per class, FIFO within a class.
	// Bounded by opt.QueueDepth across all classes (enforced in
	// Acquire; overflow sheds the lowest-priority waiter).
	queues [NumPriorities][]*admWaiter
	depth  int

	ewma    float64 // seconds
	nobs    int     // completions since the last limit adjustment
	samples int     // total completions (first sample seeds the EWMA)

	highWater uint64
	admitted  uint64
	shed      [NumPriorities]uint64
	expired   [NumPriorities]uint64
}

// adjustEvery is how many completed requests the AIMD loop waits
// between limit adjustments — long enough to see the effect of the
// last move, short enough to track a load swing within tens of
// requests.
const adjustEvery = 16

// ewmaAlpha is the smoothing factor for observed latency.
const ewmaAlpha = 0.2

// NewAdmission builds a controller; the initial limit starts at
// MaxLimit and adapts down under latency pressure (starting high means
// an idle server never queues its first burst).
func NewAdmission(opt AdmissionOptions) *Admission {
	opt = opt.withDefaults()
	return &Admission{opt: opt, limit: float64(opt.MaxLimit)}
}

// Options returns the controller's configuration with defaults
// resolved — what the controller actually runs with, not what the
// caller passed.
func (a *Admission) Options() AdmissionOptions { return a.opt }

// Acquire admits the calling request, parks it in the bounded priority
// queue, or refuses it with a typed error: wire.ErrOverloaded when the
// queue is full and this request is the lowest priority in sight (a
// higher-priority arrival instead evicts the newest lowest-priority
// waiter), wire.ErrDeadlineExceeded when deadline (zero = none) lapses
// before a slot frees up. A nil return means the caller must Release
// exactly once when its handler finishes.
func (a *Admission) Acquire(class Priority, deadline time.Time) error {
	if class < 0 || class >= NumPriorities {
		class = PriorityBackground
	}
	now := time.Now()
	if !deadline.IsZero() && now.After(deadline) {
		a.mu.Lock()
		a.expired[class]++
		a.mu.Unlock()
		return fmt.Errorf("transport: expired before admission%w", admErr{wire.ErrDeadlineExceeded})
	}
	a.mu.Lock()
	if a.inflight < a.limitLocked() {
		a.inflight++
		a.admitted++
		a.mu.Unlock()
		return nil
	}
	if a.depth >= a.opt.QueueDepth {
		// Queue full: shed the lowest-priority request in sight. If
		// the incoming class is at (or below) the lowest queued class,
		// the incoming request is the victim; otherwise evict the
		// newest waiter of the lowest class to make room.
		victim := a.lowestQueuedLocked()
		if victim <= class {
			a.shed[class]++
			a.mu.Unlock()
			return fmt.Errorf("transport: admission queue full (%s shed)%w", class, admErr{wire.ErrOverloaded})
		}
		q := a.queues[victim]
		w := q[len(q)-1]
		a.queues[victim] = q[:len(q)-1]
		a.depth--
		a.shed[victim]++
		w.ch <- fmt.Errorf("transport: admission queue full (%s evicted for %s)%w", victim, class, admErr{wire.ErrOverloaded})
	}
	w := &admWaiter{ch: make(chan error, 1), class: class, deadline: deadline}
	a.queues[class] = append(a.queues[class], w)
	a.depth++
	if uint64(a.depth) > a.highWater {
		a.highWater = uint64(a.depth)
	}
	a.mu.Unlock()

	if deadline.IsZero() {
		return <-w.ch
	}
	t := time.NewTimer(time.Until(deadline))
	defer t.Stop()
	select {
	case err := <-w.ch:
		return err
	case <-t.C:
		// Deadline lapsed while queued. Remove ourselves — unless a
		// grant raced the timer, in which case the grant wins and the
		// (already sent) outcome is on the channel.
		a.mu.Lock()
		if a.removeLocked(w) {
			a.expired[class]++
			a.mu.Unlock()
			return fmt.Errorf("transport: deadline lapsed in admission queue%w", admErr{wire.ErrDeadlineExceeded})
		}
		a.mu.Unlock()
		return <-w.ch
	}
}

// Release records one completed request's observed latency, runs the
// AIMD adjustment, and grants queued waiters freed capacity, highest
// priority first.
func (a *Admission) Release(observed time.Duration) {
	a.mu.Lock()
	a.inflight--
	s := observed.Seconds()
	if a.samples == 0 {
		a.ewma = s
	} else {
		a.ewma = (1-ewmaAlpha)*a.ewma + ewmaAlpha*s
	}
	a.samples++
	a.nobs++
	if a.nobs >= adjustEvery {
		a.nobs = 0
		if a.ewma > a.opt.Target.Seconds() {
			a.limit *= 0.85
			if a.limit < float64(a.opt.MinLimit) {
				a.limit = float64(a.opt.MinLimit)
			}
		} else {
			a.limit++
			if a.limit > float64(a.opt.MaxLimit) {
				a.limit = float64(a.opt.MaxLimit)
			}
		}
	}
	a.grantLocked()
	a.mu.Unlock()
}

// limitLocked is the integer concurrency limit in force.
func (a *Admission) limitLocked() int {
	l := int(a.limit)
	if l < a.opt.MinLimit {
		l = a.opt.MinLimit
	}
	return l
}

// grantLocked admits parked waiters while capacity remains, highest
// priority first, dropping waiters whose deadline lapsed in the queue.
func (a *Admission) grantLocked() {
	now := time.Now()
	for a.inflight < a.limitLocked() && a.depth > 0 {
		var w *admWaiter
		for c := Priority(0); c < NumPriorities; c++ {
			if len(a.queues[c]) > 0 {
				w = a.queues[c][0]
				a.queues[c] = a.queues[c][1:]
				break
			}
		}
		a.depth--
		if !w.deadline.IsZero() && now.After(w.deadline) {
			a.expired[w.class]++
			w.ch <- fmt.Errorf("transport: deadline lapsed in admission queue%w", admErr{wire.ErrDeadlineExceeded})
			continue
		}
		a.inflight++
		a.admitted++
		w.ch <- nil
	}
}

// lowestQueuedLocked returns the lowest-priority class with a queued
// waiter (PriorityUser if, impossibly, none are queued).
func (a *Admission) lowestQueuedLocked() Priority {
	for c := NumPriorities - 1; c >= 0; c-- {
		if len(a.queues[c]) > 0 {
			return c
		}
	}
	return PriorityUser
}

// removeLocked unlinks w from its class queue, reporting whether it
// was still queued.
func (a *Admission) removeLocked(w *admWaiter) bool {
	q := a.queues[w.class]
	for i, x := range q {
		if x == w {
			a.queues[w.class] = append(q[:i], q[i+1:]...)
			a.depth--
			return true
		}
	}
	return false
}

// Stats snapshots the controller.
func (a *Admission) Stats() AdmissionStats {
	a.mu.Lock()
	defer a.mu.Unlock()
	return AdmissionStats{
		Limit:       a.limitLocked(),
		Inflight:    a.inflight,
		Depth:       a.depth,
		HighWater:   int(a.highWater),
		Admitted:    a.admitted,
		Shed:        a.shed,
		Expired:     a.expired,
		LatencyEWMA: time.Duration(a.ewma * float64(time.Second)),
	}
}

// admErr splices a typed refusal sentinel into a formatted error
// without altering its message text (mirrors wire's errMarker, but for
// errors originating server-side before any reply exists).
type admErr struct{ is error }

func (admErr) Error() string          { return "" }
func (m admErr) Is(target error) bool { return target == m.is }
