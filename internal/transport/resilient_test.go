package transport

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trustedcvs/internal/backoff"
	"trustedcvs/internal/fault"
	"trustedcvs/internal/wire"
)

func TestSessionTableExactlyOnce(t *testing.T) {
	tbl := NewSessionTable(0)
	var applied atomic.Int64
	h := func(req any) (any, error) {
		applied.Add(1)
		return fmt.Sprintf("resp:%v", req), nil
	}
	r := &wire.SessionRequest{SID: 7, Seq: 1, Req: "a"}
	got1, err := tbl.Dispatch(r, h)
	if err != nil {
		t.Fatal(err)
	}
	// Retry of the same sequence replays the cache, no re-application.
	got2, err := tbl.Dispatch(r, h)
	if err != nil {
		t.Fatal(err)
	}
	if got1 != got2 || applied.Load() != 1 {
		t.Fatalf("retry re-applied: applied=%d resp1=%v resp2=%v", applied.Load(), got1, got2)
	}
	// Next sequence applies.
	if _, err := tbl.Dispatch(&wire.SessionRequest{SID: 7, Seq: 2, Req: "b"}, h); err != nil {
		t.Fatal(err)
	}
	if applied.Load() != 2 {
		t.Fatalf("applied=%d, want 2", applied.Load())
	}
	// Older cached sequences still replay (retries can arrive after
	// newer calls from a concurrent caller).
	if got, err := tbl.Dispatch(&wire.SessionRequest{SID: 7, Seq: 1, Req: "a"}, h); err != nil || got != got1 {
		t.Fatalf("old cached seq must replay: got=%v err=%v", got, err)
	}
	if applied.Load() != 2 {
		t.Fatalf("cached replay touched the handler: applied=%d", applied.Load())
	}
	// Out-of-order arrival of a new sequence applies on arrival.
	if _, err := tbl.Dispatch(&wire.SessionRequest{SID: 7, Seq: 9, Req: "z"}, h); err != nil {
		t.Fatalf("out-of-order new seq must apply: %v", err)
	}
	if applied.Load() != 3 {
		t.Fatalf("applied=%d, want 3", applied.Load())
	}
}

func TestSessionTablePruneHorizon(t *testing.T) {
	tbl := NewSessionTable(0)
	var applied atomic.Int64
	h := func(req any) (any, error) { applied.Add(1); return req, nil }
	// Push far past the retention window.
	last := uint64(sessionWindow + 50)
	for seq := uint64(1); seq <= last; seq++ {
		if _, err := tbl.Dispatch(&wire.SessionRequest{SID: 2, Seq: seq, Req: seq}, h); err != nil {
			t.Fatal(err)
		}
	}
	// A retry from below the horizon must be refused, never re-applied.
	before := applied.Load()
	if _, err := tbl.Dispatch(&wire.SessionRequest{SID: 2, Seq: 1, Req: uint64(1)}, h); err == nil {
		t.Fatal("pruned seq must be refused")
	}
	if applied.Load() != before {
		t.Fatal("pruned seq reached the handler")
	}
	// A recent one still replays from cache.
	if got, err := tbl.Dispatch(&wire.SessionRequest{SID: 2, Seq: last, Req: last}, h); err != nil || got != last {
		t.Fatalf("recent seq must replay: got=%v err=%v", got, err)
	}
	if applied.Load() != before {
		t.Fatal("cached replay reached the handler")
	}
}

func TestSessionTableCachesErrors(t *testing.T) {
	tbl := NewSessionTable(0)
	var applied atomic.Int64
	h := func(req any) (any, error) {
		applied.Add(1)
		return nil, errors.New("op rejected: ack is still pending")
	}
	r := &wire.SessionRequest{SID: 3, Seq: 1, Req: "x"}
	_, err1 := tbl.Dispatch(r, h)
	_, err2 := tbl.Dispatch(r, h)
	if err1 == nil || err2 == nil || err1.Error() != err2.Error() {
		t.Fatalf("cached error mismatch: %v vs %v", err1, err2)
	}
	if applied.Load() != 1 {
		t.Fatalf("error retry re-applied: %d", applied.Load())
	}
}

func TestSessionTableFreezeRestore(t *testing.T) {
	tbl := NewSessionTable(0)
	h := func(req any) (any, error) { return req, nil }
	if _, err := tbl.Dispatch(&wire.SessionRequest{SID: 5, Seq: 1, Req: "v"}, h); err != nil {
		t.Fatal(err)
	}
	var snap *SessionsSnapshot
	tbl.Freeze(func(s *SessionsSnapshot) { snap = s })
	if len(snap.Sessions) != 1 || snap.Sessions[0].SID != 5 || snap.Sessions[0].High != 1 {
		t.Fatalf("bad snapshot: %+v", snap)
	}
	// A fresh table restored from the snapshot replays the cached
	// response without re-applying — the crash/recovery contract.
	tbl2 := NewSessionTable(0)
	tbl2.RestoreSessions(snap)
	var applied atomic.Int64
	h2 := func(req any) (any, error) { applied.Add(1); return nil, errors.New("must not run") }
	got, err := tbl2.Dispatch(&wire.SessionRequest{SID: 5, Seq: 1, Req: "v"}, h2)
	if err != nil || got != "v" || applied.Load() != 0 {
		t.Fatalf("restored table failed to replay: got=%v err=%v applied=%d", got, err, applied.Load())
	}
}

func TestSessionTableFreezeQuiesces(t *testing.T) {
	tbl := NewSessionTable(0)
	inHandler := make(chan struct{})
	release := make(chan struct{})
	go func() {
		_, _ = tbl.Dispatch(&wire.SessionRequest{SID: 1, Seq: 1, Req: "slow"}, func(any) (any, error) {
			close(inHandler)
			<-release
			return "done", nil
		})
	}()
	<-inHandler
	froze := make(chan *SessionsSnapshot, 1)
	go tbl.Freeze(func(s *SessionsSnapshot) { froze <- s })
	// Freeze must not complete while the dispatch is mid-application.
	select {
	case <-froze:
		t.Fatal("Freeze completed during in-flight dispatch: torn cut")
	case <-time.After(50 * time.Millisecond):
	}
	close(release)
	snap := <-froze
	if len(snap.Sessions) != 1 || snap.Sessions[0].High != 1 {
		t.Fatalf("post-quiesce snapshot must include the completed op: %+v", snap)
	}
}

// startSessionServer runs a counting server with a session table and
// returns it plus the applied-op counter.
func startSessionServer(t *testing.T) (*Server, *atomic.Int64) {
	t.Helper()
	var applied atomic.Int64
	h := func(req any) (any, error) {
		applied.Add(1)
		if s, ok := req.(string); ok && strings.HasPrefix(s, "err:") {
			return nil, errors.New(strings.TrimPrefix(s, "err:"))
		}
		return req, nil
	}
	srv, err := ListenOpts("127.0.0.1:0", h, Options{Sessions: NewSessionTable(0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, &applied
}

func TestResilientClientRetriesThroughFaults(t *testing.T) {
	srv, applied := startSessionServer(t)
	// Script resets early in the conversation; the client must retry
	// through them with no double application.
	inj := fault.NewInjector(fault.Config{Script: []fault.Event{
		{At: 2, Kind: fault.Reset},
		{At: 5, Kind: fault.Truncate},
	}})
	c := DialResilientFunc(fault.Dialer(srv.Addr(), inj), RetryPolicy{
		CallTimeout: 2 * time.Second, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond,
	})
	defer c.Close()
	const n = 10
	for i := 0; i < n; i++ {
		got, err := c.Call(fmt.Sprintf("op%d", i))
		if err != nil {
			t.Fatalf("op%d: %v", i, err)
		}
		if got != fmt.Sprintf("op%d", i) {
			t.Fatalf("op%d: got %v", i, got)
		}
	}
	if applied.Load() != n {
		t.Fatalf("server applied %d ops, want exactly %d (faults injected: %d)", applied.Load(), n, inj.Injected())
	}
	if inj.Injected() == 0 {
		t.Fatal("schedule injected nothing; test proved nothing")
	}
	if c.Reconnects() == 0 {
		t.Fatal("client never reconnected despite severed connections")
	}
}

func TestResilientClientDoesNotRetryRemoteErrors(t *testing.T) {
	srv, applied := startSessionServer(t)
	c := DialResilientFunc(func() (net.Conn, error) {
		return net.Dial("tcp", srv.Addr())
	}, RetryPolicy{})
	defer c.Close()
	_, err := c.Call("err:ack is still pending")
	if err == nil {
		t.Fatal("want remote error")
	}
	if !errors.Is(err, wire.ErrRemote) {
		t.Fatalf("remote errors must carry wire.ErrRemote: %v", err)
	}
	if !strings.Contains(err.Error(), "ack is still pending") {
		t.Fatalf("server message text must survive: %v", err)
	}
	if applied.Load() != 1 {
		t.Fatalf("remote error was retried: applied=%d", applied.Load())
	}
}

func TestResilientClientSurvivesServerRestart(t *testing.T) {
	var applied atomic.Int64
	h := func(req any) (any, error) { applied.Add(1); return req, nil }
	tbl := NewSessionTable(0)
	srv, err := ListenOpts("127.0.0.1:0", h, Options{Sessions: tbl})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	c := DialResilientFunc(func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, time.Second)
	}, RetryPolicy{CallTimeout: time.Second, MaxAttempts: 20, BackoffMin: 5 * time.Millisecond, BackoffMax: 50 * time.Millisecond})
	defer c.Close()
	if _, err := c.Call("before"); err != nil {
		t.Fatal(err)
	}

	// Kill: checkpoint the session table, sever everything.
	var snap *SessionsSnapshot
	tbl.Freeze(func(s *SessionsSnapshot) { snap = s })
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Client calls during the outage retry in the background.
	var wg sync.WaitGroup
	results := make([]error, 5)
	wg.Add(len(results))
	for i := range results {
		go func(i int) {
			defer wg.Done()
			_, results[i] = c.Call(fmt.Sprintf("during%d", i))
		}(i)
	}

	time.Sleep(100 * time.Millisecond)
	// Restart on the same address with the restored session table.
	tbl2 := NewSessionTable(0)
	tbl2.RestoreSessions(snap)
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := ServeListener(lis, h, Options{Sessions: tbl2})
	defer srv2.Close()

	wg.Wait()
	for i, err := range results {
		if err != nil {
			t.Fatalf("during%d failed across restart: %v", i, err)
		}
	}
	if _, err := c.Call("after"); err != nil {
		t.Fatal(err)
	}
	// 1 before + 5 during + 1 after, each applied exactly once.
	if applied.Load() != 7 {
		t.Fatalf("applied=%d, want 7", applied.Load())
	}
}

func TestServerIdleTimeoutFreesConnection(t *testing.T) {
	srv, err := ListenOpts("127.0.0.1:0", func(req any) (any, error) { return req, nil },
		Options{IdleTimeout: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	conn, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Send nothing: the server must sever the idle connection.
	conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("server kept an idle connection past the idle timeout")
	}
}

func TestServerShutdownDrains(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	srv, err := ListenOpts("127.0.0.1:0", func(req any) (any, error) {
		close(entered)
		<-release
		return "done", nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	c, err := Dial(srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	got := make(chan error, 1)
	go func() {
		resp, err := c.Call("slow")
		if err == nil && resp != "done" {
			err = fmt.Errorf("bad resp %v", resp)
		}
		got <- err
	}()
	<-entered
	go func() {
		time.Sleep(50 * time.Millisecond)
		close(release)
	}()
	if err := srv.Shutdown(2 * time.Second); err != nil {
		t.Fatal(err)
	}
	if err := <-got; err != nil {
		t.Fatalf("in-flight call must complete through graceful shutdown: %v", err)
	}
}

func TestResilientClientFailsOverAcrossEndpoints(t *testing.T) {
	// Two session-aware servers sharing one session table lineage: the
	// backup restores the primary's frozen sessions, as a promoted
	// witness would.
	var applied atomic.Int64
	h := func(req any) (any, error) { applied.Add(1); return req, nil }
	tbl := NewSessionTable(0)
	primary, err := ListenOpts("127.0.0.1:0", h, Options{Sessions: tbl})
	if err != nil {
		t.Fatal(err)
	}

	c := DialResilientEndpoints([]Endpoint{
		{Name: "primary", Dial: func() (net.Conn, error) { return net.DialTimeout("tcp", primary.Addr(), time.Second) }},
	}, RetryPolicy{CallTimeout: time.Second, MaxAttempts: 20, BackoffMin: time.Millisecond, BackoffMax: 20 * time.Millisecond})
	defer c.Close()
	if _, err := c.Call("before"); err != nil {
		t.Fatal(err)
	}

	// Promote: freeze sessions, kill the primary, start the backup with
	// the restored table, and register it as a second endpoint.
	var snap *SessionsSnapshot
	tbl.Freeze(func(s *SessionsSnapshot) { snap = s })
	if err := primary.Close(); err != nil {
		t.Fatal(err)
	}
	tbl2 := NewSessionTable(0)
	tbl2.RestoreSessions(snap)
	backup, err := ListenOpts("127.0.0.1:0", h, Options{Sessions: tbl2})
	if err != nil {
		t.Fatal(err)
	}
	defer backup.Close()
	c.mu.Lock()
	c.endpoints = append(c.endpoints, &endpointState{ep: Endpoint{
		Name: "backup",
		Dial: func() (net.Conn, error) { return net.DialTimeout("tcp", backup.Addr(), time.Second) },
	}})
	c.mu.Unlock()

	// Calls against the dead primary must fail over to the backup with
	// the same session identity.
	for i := 0; i < 5; i++ {
		if _, err := c.Call(fmt.Sprintf("after%d", i)); err != nil {
			t.Fatalf("after%d: %v", i, err)
		}
	}
	if applied.Load() != 6 {
		t.Fatalf("applied=%d, want 6 (exactly-once across failover)", applied.Load())
	}
	if c.Failovers() == 0 {
		t.Fatal("client reports no failover despite primary death")
	}
	if got := c.EndpointName(); got != "backup" {
		t.Fatalf("current endpoint = %q, want backup", got)
	}
	if h := c.Health(); h["backup"] <= h["primary"] {
		t.Fatalf("health scoring did not demote the dead primary: %v", h)
	}
}

func TestResilientClientQuarantine(t *testing.T) {
	var applied atomic.Int64
	h := func(req any) (any, error) { applied.Add(1); return req, nil }
	a, err := ListenOpts("127.0.0.1:0", h, Options{Sessions: NewSessionTable(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := ListenOpts("127.0.0.1:0", h, Options{Sessions: NewSessionTable(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	dialTo := func(addr string) func() (net.Conn, error) {
		return func() (net.Conn, error) { return net.DialTimeout("tcp", addr, time.Second) }
	}
	c := DialResilientEndpoints([]Endpoint{
		{Name: "a", Dial: dialTo(a.Addr())},
		{Name: "b", Dial: dialTo(b.Addr())},
	}, RetryPolicy{CallTimeout: time.Second, BackoffMin: time.Millisecond, BackoffMax: 10 * time.Millisecond})
	defer c.Close()
	if _, err := c.Call("x"); err != nil {
		t.Fatal(err)
	}
	if got := c.EndpointName(); got != "a" {
		t.Fatalf("preference order broken: on %q", got)
	}
	// Quarantining the live endpoint severs it and routes to b.
	c.Quarantine("a")
	if _, err := c.Call("y"); err != nil {
		t.Fatal(err)
	}
	if got := c.EndpointName(); got != "b" {
		t.Fatalf("quarantined endpoint still used: on %q", got)
	}
	if _, ok := c.Health()["a"]; ok {
		t.Fatal("quarantined endpoint still reported healthy")
	}
	// Quarantining everything fails fast, no blind retries.
	c.Quarantine("b")
	start := time.Now()
	if _, err := c.Call("z"); !errors.Is(err, ErrAllQuarantined) {
		t.Fatalf("want ErrAllQuarantined, got %v", err)
	}
	if time.Since(start) > time.Second {
		t.Fatal("all-quarantined call burned the retry budget instead of failing fast")
	}
}

// TestResilientBackoffJitterDecorrelates is the reconnect-stampede
// regression (satellite fix): two clients with distinct seeds facing
// the same dead endpoint must not sleep identical schedules.
func TestResilientBackoffJitterDecorrelates(t *testing.T) {
	down := func() (net.Conn, error) { return nil, errors.New("refused") }
	// Pull the jittered delays straight from each client's backoff
	// stream (exactly what Call draws from) instead of timing sleeps.
	schedule := func(seed uint64) []time.Duration {
		c := DialResilientFunc(down, RetryPolicy{
			CallTimeout: time.Second, MaxAttempts: 6,
			BackoffMin: 2 * time.Millisecond, BackoffMax: 50 * time.Millisecond,
			JitterSeed: seed,
		})
		defer c.Close()
		bo := backoff.New(backoff.Policy{Min: c.pol.BackoffMin, Max: c.pol.BackoffMax}, c.src)
		var ds []time.Duration
		for i := 0; i < 8; i++ {
			ds = append(ds, bo.Next())
		}
		return ds
	}
	a, b := schedule(1), schedule(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
		}
	}
	if same {
		t.Fatal("two differently-seeded clients produced identical backoff schedules")
	}
}
