package transport

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trustedcvs/internal/backoff"
	"trustedcvs/internal/wire"
)

// TestBreakerStateMachine walks the closed → open → half-open cycle
// directly: failures below threshold leave the breaker closed, the
// threshold opens it with a jittered cooldown in [c/2, 3c/2), a failed
// probe re-opens immediately, and a successful probe closes it and
// resets the failure streak.
func TestBreakerStateMachine(t *testing.T) {
	src := backoff.NewSeededSource(42)
	const cooldown = 100 * time.Millisecond
	b := newBreaker(BreakerPolicy{Threshold: 3, Cooldown: cooldown})
	now := time.Unix(1000, 0)

	b.failureLocked(now, src)
	b.failureLocked(now, src)
	if b.state != BreakerClosed {
		t.Fatalf("state = %v after 2/3 failures, want closed", b.state)
	}
	b.failureLocked(now, src)
	if b.state != BreakerOpen || b.opens != 1 {
		t.Fatalf("state/opens = %v/%d after threshold, want open/1", b.state, b.opens)
	}
	if d := b.probeAt.Sub(now); d < cooldown/2 || d >= 3*cooldown/2 {
		t.Fatalf("cooldown jitter %v outside [%v, %v)", d, cooldown/2, 3*cooldown/2)
	}
	if b.probeReadyLocked(now) {
		t.Fatal("probe ready immediately after opening")
	}
	later := now.Add(3 * cooldown / 2)
	if !b.probeReadyLocked(later) {
		t.Fatal("probe not ready after the max jittered cooldown")
	}
	b.claimProbeLocked()
	if b.state != BreakerHalfOpen || !b.probing {
		t.Fatalf("state = %v after claim, want half-open with the probe slot taken", b.state)
	}
	// A failed probe re-opens at once — one failure, not a new streak.
	b.failureLocked(later, src)
	if b.state != BreakerOpen || b.opens != 2 || b.probing {
		t.Fatalf("state/opens/probing = %v/%d/%v after failed probe, want open/2/false", b.state, b.opens, b.probing)
	}
	later = later.Add(3 * cooldown / 2)
	if !b.probeReadyLocked(later) {
		t.Fatal("second probe never became ready")
	}
	b.claimProbeLocked()
	b.successLocked()
	if b.state != BreakerClosed || b.fails != 0 || b.probing {
		t.Fatalf("state/fails/probing = %v/%d/%v after successful probe, want closed/0/false", b.state, b.fails, b.probing)
	}
}

// sheddingServer is a session-aware server whose handler refuses every
// request with the typed overload sentinel, counting deliveries.
func sheddingServer(t *testing.T) (*Server, *atomic.Int64) {
	t.Helper()
	var seen atomic.Int64
	srv, err := ListenOpts("127.0.0.1:0", func(req any) (any, error) {
		seen.Add(1)
		return nil, fmt.Errorf("test: synthetic shed%w", admErr{wire.ErrOverloaded})
	}, Options{Sessions: NewSessionTable(0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, &seen
}

// okServer is a session-aware server that answers every request with
// tag:req, counting deliveries.
func okServer(t *testing.T, tag string) (*Server, *atomic.Int64) {
	t.Helper()
	var seen atomic.Int64
	srv, err := ListenOpts("127.0.0.1:0", func(req any) (any, error) {
		seen.Add(1)
		return fmt.Sprintf("%s:%v", tag, req), nil
	}, Options{Sessions: NewSessionTable(0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, &seen
}

// TestBreakerSurfacesOverloadOnSoleEndpoint: with nowhere to fail over
// to, a typed shed is surfaced to the caller immediately — one server
// round trip per Call, no retry hammering the server that just shed us.
func TestBreakerSurfacesOverloadOnSoleEndpoint(t *testing.T) {
	srv, seen := sheddingServer(t)
	c := DialResilient(srv.Addr(), RetryPolicy{
		MaxAttempts: 8, BackoffMin: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		Breaker: &BreakerPolicy{Threshold: 2, Cooldown: 50 * time.Millisecond},
	})
	defer c.Close()
	const n = 4
	for i := 0; i < n; i++ {
		_, err := c.Call(fmt.Sprintf("op%d", i))
		if !errors.Is(err, wire.ErrOverloaded) {
			t.Fatalf("op%d got %v, want typed wire.ErrOverloaded surfaced", i, err)
		}
	}
	if got := seen.Load(); got != n {
		t.Fatalf("server saw %d requests for %d calls — overload was retried against the sole endpoint", got, n)
	}
	if got := c.Overloads(); got != n {
		t.Fatalf("client absorbed %d overloads, want %d", got, n)
	}
}

// TestBreakerFailsOverOnOverload: a shed from the preferred endpoint
// with a healthy alternative available rotates the call there instead
// of surfacing the refusal.
func TestBreakerFailsOverOnOverload(t *testing.T) {
	shedSrv, shedSeen := sheddingServer(t)
	okSrv, okSeen := okServer(t, "B")
	dial := func(addr string) func() (net.Conn, error) {
		return func() (net.Conn, error) { return net.DialTimeout("tcp", addr, time.Second) }
	}
	c := DialResilientEndpoints([]Endpoint{
		{Name: "A", Dial: dial(shedSrv.Addr())},
		{Name: "B", Dial: dial(okSrv.Addr())},
	}, RetryPolicy{
		MaxAttempts: 8, BackoffMin: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		Breaker: &BreakerPolicy{Threshold: 2, Cooldown: time.Minute},
	})
	defer c.Close()
	resp, err := c.Call("op")
	if err != nil {
		t.Fatalf("call across failover: %v", err)
	}
	if resp != "B:op" {
		t.Fatalf("resp = %v, want the healthy endpoint's answer", resp)
	}
	if shedSeen.Load() != 1 || okSeen.Load() != 1 {
		t.Fatalf("A/B saw %d/%d requests, want 1/1 (one shed, one failover delivery)",
			shedSeen.Load(), okSeen.Load())
	}
	if c.EndpointName() != "B" {
		t.Fatalf("client still pinned to %s after the shed", c.EndpointName())
	}
}

// TestBreakerProbeStormBounded is the half-open guarantee under
// concurrency (run with -race by CI): 64 callers hammer one endpoint
// through an outage; once the breaker opens, redials are paced by the
// cooldown and — at recovery — exactly one claimed probe reconnects,
// with every caller then riding the probe's connection. The dial count
// stays far below the caller count; without the breaker each caller
// would redial on every backoff tick.
func TestBreakerProbeStormBounded(t *testing.T) {
	var applied atomic.Int64
	tbl := NewSessionTable(0)
	h := func(req any) (any, error) { applied.Add(1); return req, nil }
	srv, err := ListenOpts("127.0.0.1:0", h, Options{Sessions: tbl})
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()

	var down atomic.Bool
	var dials atomic.Int64
	c := DialResilientFunc(func() (net.Conn, error) {
		dials.Add(1)
		if down.Load() {
			return nil, errors.New("test: endpoint down")
		}
		return net.DialTimeout("tcp", addr, time.Second)
	}, RetryPolicy{
		CallTimeout: 2 * time.Second, MaxAttempts: 100,
		BackoffMin: time.Millisecond, BackoffMax: 5 * time.Millisecond,
		JitterSeed: 7,
		Breaker:    &BreakerPolicy{Threshold: 1, Cooldown: 40 * time.Millisecond},
	})
	defer c.Close()

	down.Store(true)
	const callers = 64
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.Call(fmt.Sprintf("op%d", i))
		}(i)
	}
	time.Sleep(150 * time.Millisecond)
	dialsDuringOutage := dials.Load()
	down.Store(false)
	wg.Wait()
	srv.Close()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("caller %d failed across the outage: %v", i, err)
		}
	}
	if applied.Load() != callers {
		t.Fatalf("applied = %d, want exactly %d", applied.Load(), callers)
	}
	// 150ms outage / >=20ms jittered cooldown: at most ~8 paced probes
	// plus the initial pre-open dial. 16 leaves slack for scheduling;
	// an unbounded storm would be hundreds (64 callers x backoff ticks).
	if dialsDuringOutage > 16 {
		t.Fatalf("outage produced %d dials from %d callers — probe pacing failed", dialsDuringOutage, callers)
	}
	if total := dials.Load(); total > dialsDuringOutage+4 {
		t.Fatalf("recovery produced %d extra dials, want a single claimed probe (plus slack)", total-dialsDuringOutage)
	}
	if st := c.BreakerStates(); st["endpoint"] != "closed" {
		t.Fatalf("breaker = %q after recovery, want closed", st["endpoint"])
	}
}

// TestResilientOverloadBudgetExhaustion: the end-to-end budget cuts
// retries off with the typed deadline error instead of burning the full
// attempt schedule against a dead endpoint.
func TestResilientOverloadBudgetExhaustion(t *testing.T) {
	c := DialResilientFunc(func() (net.Conn, error) {
		return nil, errors.New("test: endpoint never comes up")
	}, RetryPolicy{
		CallTimeout: time.Second, MaxAttempts: 1000,
		BackoffMin: 5 * time.Millisecond, BackoffMax: 20 * time.Millisecond,
		Budget: 80 * time.Millisecond,
	})
	defer c.Close()
	start := time.Now()
	_, err := c.Call("op")
	elapsed := time.Since(start)
	if !errors.Is(err, wire.ErrDeadlineExceeded) {
		t.Fatalf("got %v, want typed wire.ErrDeadlineExceeded from budget exhaustion", err)
	}
	if elapsed < 60*time.Millisecond || elapsed > time.Second {
		t.Fatalf("budget of 80ms cut off after %v", elapsed)
	}
}

// TestResilientHedgedReadBypassesOverloadedPrimary: a slow primary
// path is hedged to the best other endpoint after the hedge delay, and
// the faster answer wins well before the primary finishes.
func TestResilientHedgedReadBypassesOverloadedPrimary(t *testing.T) {
	var slowSeen atomic.Int64
	slowSrv, err := ListenOpts("127.0.0.1:0", func(req any) (any, error) {
		slowSeen.Add(1)
		time.Sleep(500 * time.Millisecond)
		return fmt.Sprintf("A:%v", req), nil
	}, Options{Sessions: NewSessionTable(0)})
	if err != nil {
		t.Fatal(err)
	}
	defer slowSrv.Close()
	fastSrv, fastSeen := okServer(t, "B")

	dial := func(addr string) func() (net.Conn, error) {
		return func() (net.Conn, error) { return net.DialTimeout("tcp", addr, time.Second) }
	}
	c := DialResilientEndpoints([]Endpoint{
		{Name: "A", Dial: dial(slowSrv.Addr())},
		{Name: "B", Dial: dial(fastSrv.Addr())},
	}, RetryPolicy{CallTimeout: 2 * time.Second, Breaker: &BreakerPolicy{}})
	defer c.Close()

	start := time.Now()
	resp, err := c.CallHedged("read", 30*time.Millisecond)
	elapsed := time.Since(start)
	if err != nil {
		t.Fatalf("hedged call: %v", err)
	}
	if resp != "B:read" {
		t.Fatalf("resp = %v, want the hedge target's answer", resp)
	}
	if elapsed >= 400*time.Millisecond {
		t.Fatalf("hedged read took %v — it waited out the slow primary", elapsed)
	}
	if fastSeen.Load() != 1 {
		t.Fatalf("hedge target saw %d requests, want 1", fastSeen.Load())
	}
}
