// Evidence bundles: the court-ready artifact of witness replication.
//
// The journals in this package localize a fault from the *users'* side
// — unsigned, trusted only because the users trust themselves. Witness
// replication (internal/witness) adds a second, stronger artifact: the
// primary signs every epoch root commitment it publishes, so when two
// commitments conflict — two different roots claimed for the same
// operation counter, or two different payloads under the same sequence
// number — the pair is self-authenticating proof of equivocation.
// Anyone holding the primary's public key can verify an Evidence
// bundle offline, with no access to the database, the witnesses, or
// the users: exactly the "present it to a judge" property the paper's
// introduction asks of deviation detection.
package forensics

import (
	"bytes"
	"crypto/ed25519"
	"errors"
	"fmt"
	"sort"
	"strings"

	"trustedcvs/internal/digest"
)

// Commitment is one signed epoch root commitment published by the
// primary server: "at operation counter Ctr my database root was Root".
// Commitments form a chain — Seq increments per publication and Prev
// names the previously committed root — so witnesses can audit the
// stream's continuity, not just individual entries.
type Commitment struct {
	// Server names the publishing identity (stable across restarts).
	Server string
	// Seq is the commitment's position in the server's publication
	// stream (1-based, increments per commitment).
	Seq uint64
	// Ctr is the database operation counter at the committed cut.
	Ctr uint64
	// Root is the Merkle root M(D) at Ctr.
	Root digest.Digest
	// Prev is the root committed at Seq-1 (zero for the first).
	Prev digest.Digest
	// Sig is the server's Ed25519 signature over CommitmentHash.
	Sig []byte
}

// CommitmentHash is the domain-separated digest a commitment signature
// covers. Every field is bound, so no two distinct commitments share a
// hash.
func CommitmentHash(server string, seq, ctr uint64, root, prev digest.Digest) digest.Digest {
	return digest.NewHasher(digest.DomainCommitment).
		String(server).Uint64(seq).Uint64(ctr).
		Digest(root).Digest(prev).Sum()
}

// Verify checks the commitment's signature under the server's public
// key.
func (c *Commitment) Verify(pub ed25519.PublicKey) error {
	h := CommitmentHash(c.Server, c.Seq, c.Ctr, c.Root, c.Prev)
	if !ed25519.Verify(pub, h[:], c.Sig) {
		return fmt.Errorf("forensics: commitment seq %d (ctr %d, root %s): %w",
			c.Seq, c.Ctr, c.Root.Short(), errInvalidCommitmentSig)
	}
	return nil
}

var errInvalidCommitmentSig = errors.New("invalid commitment signature")

// Same reports whether two commitments are byte-identical (a benign
// re-submission, not a conflict).
func (c *Commitment) Same(o *Commitment) bool {
	return c.Server == o.Server && c.Seq == o.Seq && c.Ctr == o.Ctr &&
		c.Root == o.Root && c.Prev == o.Prev && bytes.Equal(c.Sig, o.Sig)
}

// Conflicts classifies the contradiction between two commitments from
// the same server, empty if they are compatible. Honest streams have
// at most one commitment per Seq and one root per Ctr; either
// multiplicity proves the server ran (at least) two histories.
func (c *Commitment) Conflicts(o *Commitment) string {
	if c.Server != o.Server || c.Same(o) {
		return ""
	}
	if c.Ctr == o.Ctr && c.Root != o.Root {
		return fmt.Sprintf("two roots committed for ctr %d: %s vs %s", c.Ctr, c.Root.Short(), o.Root.Short())
	}
	if c.Seq == o.Seq {
		return fmt.Sprintf("two distinct commitments published under seq %d", c.Seq)
	}
	// Chain break: a commitment's Prev must repeat the root committed at
	// the preceding seq. A mismatch proves the two entries belong to
	// different histories even when neither ctr nor seq collide.
	if c.Seq == o.Seq+1 && c.Prev != o.Root {
		return fmt.Sprintf("seq %d commits prev root %s but seq %d committed %s", c.Seq, c.Prev.Short(), o.Seq, o.Root.Short())
	}
	if o.Seq == c.Seq+1 && o.Prev != c.Root {
		return fmt.Sprintf("seq %d commits prev root %s but seq %d committed %s", o.Seq, o.Prev.Short(), c.Seq, c.Root.Short())
	}
	return ""
}

// Evidence is a self-contained, verifiable proof that the named server
// equivocated: two validly signed commitments that cannot both belong
// to one linear history. Unlike a journal Report it requires no trust
// in the witnesses that assembled it — the signatures carry the whole
// argument.
type Evidence struct {
	// Server is the accused identity.
	Server string
	// Pub is the server's Ed25519 public key, included so the bundle
	// verifies offline. (A verifier who obtained the key out of band
	// should compare.)
	Pub []byte
	// A and B are the conflicting signed commitments.
	A, B Commitment
	// Witnesses names the witness nodes that observed each side (for
	// the narrative; not part of the proof).
	Witnesses []string
}

// Verify checks the bundle end to end: both signatures valid under
// Pub, both commitments from Server, and the pair genuinely
// conflicting. A bundle that fails Verify proves nothing and must not
// be acted on — a lying witness can fabricate unsigned conflicts but
// never signed ones.
func (e *Evidence) Verify() error {
	if e.A.Server != e.Server || e.B.Server != e.Server {
		return fmt.Errorf("forensics: evidence names server %q but commitments claim %q and %q",
			e.Server, e.A.Server, e.B.Server)
	}
	pub := ed25519.PublicKey(e.Pub)
	if len(pub) != ed25519.PublicKeySize {
		return fmt.Errorf("forensics: evidence carries a %d-byte public key, want %d", len(pub), ed25519.PublicKeySize)
	}
	if err := e.A.Verify(pub); err != nil {
		return fmt.Errorf("forensics: evidence side A: %w", err)
	}
	if err := e.B.Verify(pub); err != nil {
		return fmt.Errorf("forensics: evidence side B: %w", err)
	}
	if e.A.Conflicts(&e.B) == "" {
		return errors.New("forensics: commitments do not conflict; no deviation is proven")
	}
	return nil
}

// Key is a stable identity for deduplicating evidence about the same
// conflicting pair (the order of A and B does not matter).
func (e *Evidence) Key() string {
	a := CommitmentHash(e.A.Server, e.A.Seq, e.A.Ctr, e.A.Root, e.A.Prev)
	b := CommitmentHash(e.B.Server, e.B.Seq, e.B.Ctr, e.B.Root, e.B.Prev)
	if b.String() < a.String() {
		a, b = b, a
	}
	return a.String() + "|" + b.String()
}

// String renders the bundle for logs and the CLI.
func (e *Evidence) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "signed fork evidence against %q: %s", e.Server, e.A.Conflicts(&e.B))
	fmt.Fprintf(&sb, "\n  A: seq %d ctr %d root %s (prev %s)", e.A.Seq, e.A.Ctr, e.A.Root.Short(), e.A.Prev.Short())
	fmt.Fprintf(&sb, "\n  B: seq %d ctr %d root %s (prev %s)", e.B.Seq, e.B.Ctr, e.B.Root.Short(), e.B.Prev.Short())
	if len(e.Witnesses) > 0 {
		ws := append([]string(nil), e.Witnesses...)
		sort.Strings(ws)
		fmt.Fprintf(&sb, "\n  observed by: %s", strings.Join(ws, ", "))
	}
	return sb.String()
}

// MergeEvidence appends the bundles from src not already present in
// dst (by Key), returning the extended slice.
func MergeEvidence(dst []*Evidence, src ...*Evidence) []*Evidence {
	seen := make(map[string]bool, len(dst))
	for _, e := range dst {
		seen[e.Key()] = true
	}
	for _, e := range src {
		if e == nil || seen[e.Key()] {
			continue
		}
		seen[e.Key()] = true
		dst = append(dst, e)
	}
	return dst
}
