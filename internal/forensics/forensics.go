// Package forensics implements the first item of the paper's future
// work (Section 6): "extend these protocols to detect exactly WHEN the
// fault occurred". Detection (Protocols I–III) tells the users *that*
// the server deviated; localization tells them *where* in the
// operation history — which bounds the rollback the paper's
// introduction worries about ("to limit the amount of rollback that
// might be necessary").
//
// Each user optionally keeps a bounded journal of the transitions it
// verified: (ctr, oldState, newState, user). Journals are bounded ring
// buffers — a deliberate, configurable relaxation of desideratum 5
// (constant state): capacity c buys localization of any fault within
// the last c transitions each user witnessed.
//
// After a detection, the users pool their journals (over the broadcast
// channel, or out of band like the detection itself) and run Locate,
// which reconstructs the transition graph the synchronization check
// rejected and reports:
//
//   - the earliest counter at which two *different* states claim the
//     same slot — the fork point;
//   - which users observed which branch;
//   - counters that were skipped entirely (dropped slots).
package forensics

import (
	"fmt"
	"sort"
	"strings"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/sig"
)

// Transition is one verified state transition as witnessed by a user:
// the server moved the database from Old to New, New carrying counter
// Ctr.
type Transition struct {
	Witness sig.UserID
	Ctr     uint64
	Old     digest.Digest
	New     digest.Digest
}

// Journal is a bounded ring buffer of the most recent transitions a
// user verified. The zero value is unusable; call NewJournal.
type Journal struct {
	user sig.UserID
	cap  int
	buf  []Transition
	next int
	full bool
}

// NewJournal creates a journal holding the most recent cap
// transitions. cap <= 0 disables journaling (Record is a no-op and
// Entries is empty).
func NewJournal(user sig.UserID, cap int) *Journal {
	j := &Journal{user: user, cap: cap}
	if cap > 0 {
		j.buf = make([]Transition, cap)
	}
	return j
}

// User returns the journal owner.
func (j *Journal) User() sig.UserID { return j.user }

// Cap returns the journal capacity.
func (j *Journal) Cap() int { return j.cap }

// Record appends a witnessed transition, evicting the oldest when
// full.
func (j *Journal) Record(ctr uint64, old, new digest.Digest) {
	if j.cap <= 0 {
		return
	}
	j.buf[j.next] = Transition{Witness: j.user, Ctr: ctr, Old: old, New: new}
	j.next = (j.next + 1) % j.cap
	if j.next == 0 {
		j.full = true
	}
}

// Entries returns the recorded transitions, oldest first.
func (j *Journal) Entries() []Transition {
	if j.cap <= 0 {
		return nil
	}
	var out []Transition
	if j.full {
		out = append(out, j.buf[j.next:]...)
	}
	out = append(out, j.buf[:j.next]...)
	return out
}

// Branch is one maximal chain of states observed after the fork point,
// together with the users whose operations ran on it.
type Branch struct {
	Users []sig.UserID
	// Head is the earliest state of this branch at the fork counter.
	Head digest.Digest
	// Length is the number of journaled transitions on the branch.
	Length int
}

// Report is the outcome of fault localization.
type Report struct {
	// Located is false when the journals do not cover the fault (it
	// was evicted from every ring buffer); ForkCtr is then a lower
	// bound: the fault happened at or before the earliest journaled
	// counter.
	Located bool
	// ForkCtr is the earliest counter at which the journals contain
	// two or more distinct states — the first provably-forged slot.
	ForkCtr uint64
	// EarliestJournaled is the smallest counter any journal still
	// holds (the localization horizon).
	EarliestJournaled uint64
	// Branches describes the diverged chains from ForkCtr on.
	Branches []Branch
	// MissingCtrs are counters between the fork and the journals' end
	// for which no transition was witnessed at all (dropped slots).
	MissingCtrs []uint64
}

// String renders the report for logs and the CLI.
func (r *Report) String() string {
	var b strings.Builder
	if !r.Located {
		fmt.Fprintf(&b, "fault not covered by journals: it occurred at or before ctr %d (journal horizon)", r.EarliestJournaled)
		return b.String()
	}
	fmt.Fprintf(&b, "fault localized: first conflicting operation at ctr %d", r.ForkCtr)
	for i, br := range r.Branches {
		fmt.Fprintf(&b, "\n  branch %d (state %s..., %d journaled ops): users %v", i, br.Head.Short(), br.Length, br.Users)
	}
	if len(r.MissingCtrs) > 0 {
		fmt.Fprintf(&b, "\n  unwitnessed counters: %v", r.MissingCtrs)
	}
	return b.String()
}

// Locate pools the users' journals and finds the fork point: the
// earliest counter claimed by two or more distinct states. Honest
// histories have exactly one state per counter (that is precisely what
// the synchronization checks enforce), so any multiplicity is proof of
// where the server's histories diverged.
func Locate(journals []*Journal) *Report {
	byCtr := map[uint64]map[digest.Digest][]Transition{}
	var minCtr, maxCtr uint64
	first := true
	for _, j := range journals {
		for _, tr := range j.Entries() {
			m := byCtr[tr.Ctr]
			if m == nil {
				m = map[digest.Digest][]Transition{}
				byCtr[tr.Ctr] = m
			}
			m[tr.New] = append(m[tr.New], tr)
			if first || tr.Ctr < minCtr {
				minCtr = tr.Ctr
			}
			if first || tr.Ctr > maxCtr {
				maxCtr = tr.Ctr
			}
			first = false
		}
	}
	rep := &Report{EarliestJournaled: minCtr}
	if len(byCtr) == 0 {
		return rep
	}

	// Find the earliest counter with two or more distinct new-states.
	ctrs := make([]uint64, 0, len(byCtr))
	for c := range byCtr {
		ctrs = append(ctrs, c)
	}
	sort.Slice(ctrs, func(i, k int) bool { return ctrs[i] < ctrs[k] })

	forkIdx := -1
	for i, c := range ctrs {
		if len(byCtr[c]) > 1 {
			forkIdx = i
			break
		}
	}
	if forkIdx == -1 {
		// No conflicting slot in the journals: either the fault
		// predates the horizon, or it is a dropped slot (a gap).
		for i := 1; i < len(ctrs); i++ {
			for missing := ctrs[i-1] + 1; missing < ctrs[i]; missing++ {
				rep.MissingCtrs = append(rep.MissingCtrs, missing)
			}
		}
		return rep
	}
	forkCtr := ctrs[forkIdx]
	rep.Located = true
	rep.ForkCtr = forkCtr

	// Assign every post-fork transition to a branch by following the
	// old→new chain links from each conflicting head state.
	heads := make([]digest.Digest, 0, len(byCtr[forkCtr]))
	for st := range byCtr[forkCtr] {
		heads = append(heads, st)
	}
	sort.Slice(heads, func(i, k int) bool { return heads[i].String() < heads[k].String() })

	for _, head := range heads {
		br := Branch{Head: head}
		users := map[sig.UserID]bool{}
		frontier := map[digest.Digest]bool{head: true}
		for _, c := range ctrs[forkIdx:] {
			for st, trs := range byCtr[c] {
				for _, tr := range trs {
					if frontier[tr.Old] || (c == forkCtr && st == head) {
						users[tr.Witness] = true
						br.Length++
						frontier[tr.New] = true
					}
				}
			}
		}
		for u := range users {
			br.Users = append(br.Users, u)
		}
		sort.Slice(br.Users, func(i, k int) bool { return br.Users[i] < br.Users[k] })
		rep.Branches = append(rep.Branches, br)
	}

	// Gaps after the fork are also evidence (dropped slots).
	for i := forkIdx + 1; i < len(ctrs); i++ {
		for missing := ctrs[i-1] + 1; missing < ctrs[i]; missing++ {
			rep.MissingCtrs = append(rep.MissingCtrs, missing)
		}
	}
	return rep
}
