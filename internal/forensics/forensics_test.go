package forensics

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/sig"
)

func st(name string) digest.Digest {
	return digest.OfBytes(digest.DomainTaggedState, []byte(name))
}

func TestJournalRingBuffer(t *testing.T) {
	j := NewJournal(1, 3)
	if j.Cap() != 3 || j.User() != 1 {
		t.Fatal("journal metadata")
	}
	for i := 1; i <= 5; i++ {
		j.Record(uint64(i), st(fmt.Sprint(i-1)), st(fmt.Sprint(i)))
	}
	es := j.Entries()
	if len(es) != 3 {
		t.Fatalf("entries: %d", len(es))
	}
	// Oldest two evicted; remaining are ctrs 3,4,5 oldest first.
	for i, want := range []uint64{3, 4, 5} {
		if es[i].Ctr != want {
			t.Fatalf("entry %d ctr %d, want %d", i, es[i].Ctr, want)
		}
	}
}

func TestJournalDisabled(t *testing.T) {
	j := NewJournal(1, 0)
	j.Record(1, st("a"), st("b"))
	if len(j.Entries()) != 0 {
		t.Fatal("disabled journal must record nothing")
	}
}

// linearJournals builds journals for an honest linear history of n ops
// over k users.
func linearJournals(users, ops, cap int, seed int64) []*Journal {
	rng := rand.New(rand.NewSource(seed))
	js := make([]*Journal, users)
	for i := range js {
		js[i] = NewJournal(sig.UserID(i), cap)
	}
	prev := st("genesis")
	for c := 1; c <= ops; c++ {
		u := rng.Intn(users)
		next := st(fmt.Sprintf("s%d", c))
		js[u].Record(uint64(c), prev, next)
		prev = next
	}
	return js
}

func TestLocateHonestHistory(t *testing.T) {
	js := linearJournals(3, 40, 100, 1)
	rep := Locate(js)
	if rep.Located {
		t.Fatalf("honest history must not localize a fault: %s", rep)
	}
	if len(rep.MissingCtrs) != 0 {
		t.Fatalf("honest history has no gaps: %v", rep.MissingCtrs)
	}
}

func TestLocateFork(t *testing.T) {
	// Users 0,1 on branch A; users 2,3 on branch B, forked at ctr 11.
	js := make([]*Journal, 4)
	for i := range js {
		js[i] = NewJournal(sig.UserID(i), 100)
	}
	prev := st("genesis")
	for c := 1; c <= 10; c++ {
		next := st(fmt.Sprintf("s%d", c))
		js[c%4].Record(uint64(c), prev, next)
		prev = next
	}
	forkPoint := prev
	pa, pb := forkPoint, forkPoint
	for c := 11; c <= 16; c++ {
		na := st(fmt.Sprintf("a%d", c))
		js[c%2].Record(uint64(c), pa, na) // users 0,1
		pa = na
		nb := st(fmt.Sprintf("b%d", c))
		js[2+c%2].Record(uint64(c), pb, nb) // users 2,3
		pb = nb
	}
	rep := Locate(js)
	if !rep.Located {
		t.Fatalf("fork not located: %s", rep)
	}
	if rep.ForkCtr != 11 {
		t.Fatalf("fork ctr %d, want 11", rep.ForkCtr)
	}
	if len(rep.Branches) != 2 {
		t.Fatalf("branches: %+v", rep.Branches)
	}
	seen := map[string]bool{}
	for _, br := range rep.Branches {
		key := ""
		for _, u := range br.Users {
			key += fmt.Sprintf("%d,", uint32(u))
		}
		seen[key] = true
		if br.Length != 6 {
			t.Fatalf("branch length %d, want 6", br.Length)
		}
	}
	if !seen["0,1,"] || !seen["2,3,"] {
		t.Fatalf("branch membership wrong: %+v", rep.Branches)
	}
	if rep.String() == "" {
		t.Fatal("report should render")
	}
}

func TestLocateFaultBeyondHorizon(t *testing.T) {
	// Tiny journals: the fork at ctr 3 is evicted before analysis.
	js := make([]*Journal, 2)
	for i := range js {
		js[i] = NewJournal(sig.UserID(i), 2)
	}
	prev := st("genesis")
	for c := 1; c <= 2; c++ {
		next := st(fmt.Sprintf("s%d", c))
		js[0].Record(uint64(c), prev, next)
		prev = next
	}
	// Fork at 3, then both branches keep going long enough to evict
	// the fork from both journals.
	pa, pb := prev, prev
	for c := 3; c <= 8; c++ {
		na := st(fmt.Sprintf("a%d", c))
		js[0].Record(uint64(c), pa, na)
		pa = na
		nb := st(fmt.Sprintf("b%d", c))
		js[1].Record(uint64(c), pb, nb)
		pb = nb
	}
	rep := Locate(js)
	// With capacity 2 each journal holds ctrs 7,8 — still conflicting!
	// Both journals hold states for 7 and 8 on different branches, so
	// localization still succeeds, at the earliest *covered* conflict.
	if !rep.Located || rep.ForkCtr != 7 {
		t.Fatalf("expected conflict at journal horizon: %s", rep)
	}
	if rep.EarliestJournaled != 7 {
		t.Fatalf("horizon: %d", rep.EarliestJournaled)
	}
}

func TestLocateDroppedSlot(t *testing.T) {
	// A counter nobody witnessed (the server skipped a slot).
	js := []*Journal{NewJournal(0, 100)}
	js[0].Record(1, st("g"), st("s1"))
	js[0].Record(2, st("s1"), st("s2"))
	js[0].Record(5, st("s4"), st("s5")) // 3,4 missing
	rep := Locate(js)
	if rep.Located {
		t.Fatal("no conflicting slot here")
	}
	if len(rep.MissingCtrs) != 2 || rep.MissingCtrs[0] != 3 || rep.MissingCtrs[1] != 4 {
		t.Fatalf("missing: %v", rep.MissingCtrs)
	}
}

func TestLocateEmpty(t *testing.T) {
	rep := Locate(nil)
	if rep.Located {
		t.Fatal("empty journals locate nothing")
	}
	rep = Locate([]*Journal{NewJournal(0, 10)})
	if rep.Located || len(rep.MissingCtrs) != 0 {
		t.Fatal("empty journal locates nothing")
	}
}

// TestQuickLocateRandomForks: random fork points, group splits and
// journal capacities; whenever both branches are covered by journals,
// the reported fork counter is never later than the true one, and with
// full-history journals it is exact.
func TestQuickLocateRandomForks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		users := 2 + rng.Intn(4)
		prefix := 1 + rng.Intn(20)
		postLen := 1 + rng.Intn(15)
		split := 1 + rng.Intn(users-1)

		js := make([]*Journal, users)
		for i := range js {
			js[i] = NewJournal(sig.UserID(i), 1000) // full history
		}
		prev := st("genesis")
		for c := 1; c <= prefix; c++ {
			next := st(fmt.Sprintf("s%d-%d", c, seed))
			js[rng.Intn(users)].Record(uint64(c), prev, next)
			prev = next
		}
		forkCtr := uint64(prefix + 1)
		pa, pb := prev, prev
		for c := prefix + 1; c <= prefix+postLen; c++ {
			na := st(fmt.Sprintf("a%d-%d", c, seed))
			js[rng.Intn(split)].Record(uint64(c), pa, na)
			pa = na
			nb := st(fmt.Sprintf("b%d-%d", c, seed))
			js[split+rng.Intn(users-split)].Record(uint64(c), pb, nb)
			pb = nb
		}
		rep := Locate(js)
		return rep.Located && rep.ForkCtr == forkCtr && len(rep.Branches) == 2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
