package driver

import (
	"fmt"
	"time"

	"trustedcvs/internal/core"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/server"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/wire"
)

// NewHandler builds the server-side request router: protocol messages
// go to the protocol server (honest or adversarial — anything
// implementing server.Server), content messages to the content store.
// The handler is invoked concurrently by the pipelined transport; it
// needs no locking of its own because both targets synchronize
// internally (the protocol servers around their ordered sections, the
// content store around its archive).
func NewHandler(srv server.Server, store *cvs.Store) transport.Handler {
	return func(req any) (any, error) {
		switch r := req.(type) {
		case *core.OpRequest:
			return srv.HandleOp(r)
		case *core.AckRequest:
			if err := srv.HandleAck(r); err != nil {
				return nil, err
			}
			return &core.OKResponse{}, nil
		case *core.GetBackupsRequest:
			return srv.HandleGetBackups(r)
		case *core.PushContentRequest:
			if err := store.Push(r.Path, r.Rev, r.Content); err != nil {
				return nil, err
			}
			return &core.OKResponse{}, nil
		case *core.FetchContentRequest:
			content, err := store.Fetch(r.Path, r.Rev, r.Hash)
			if err != nil {
				return nil, err
			}
			return &core.ContentResponse{Content: content}, nil
		default:
			return nil, fmt.Errorf("driver: unknown request %T", req)
		}
	}
}

// NewDeadlineHandler wraps NewHandler with the propagated-deadline
// check: a request whose wire budget has expired by the time it is
// dispatched (it sat out the admission queue, or the hop chain ate the
// budget) is refused with the typed wire.ErrDeadlineExceeded before
// any protocol state is touched. The caller has already given up, so
// doing the work would burn server capacity on an answer nobody reads
// — and, worse, advance registers the client will never ack.
func NewDeadlineHandler(srv server.Server, store *cvs.Store) func(req any, deadline time.Time) (any, error) {
	return WrapDeadline(NewHandler(srv, store))
}

// WrapDeadline adds the propagated-deadline refusal in front of an
// arbitrary handler — the decorated form deployments use when the
// handler chain carries extra layers (op journaling, adversary
// wrappers) that NewDeadlineHandler's fixed composition would bypass.
func WrapDeadline(h transport.Handler) func(req any, deadline time.Time) (any, error) {
	return func(req any, deadline time.Time) (any, error) {
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			return nil, fmt.Errorf("driver: %T abandoned: %w", req, wire.ErrDeadlineExceeded)
		}
		return h(req)
	}
}

// Classify maps protocol requests onto the transport's admission
// priority classes: interactive user operations first, the auditor's
// backup fetches next, anything unrecognized last. Gossip and scrub
// traffic never reaches this handler (witnesses run their own server),
// but harnesses that inject synthetic background load get the bottom
// class by default — exactly the shedding order the brownout design
// wants.
func Classify(req any) transport.Priority {
	switch req.(type) {
	case *core.OpRequest, *core.AckRequest, *core.PushContentRequest, *core.FetchContentRequest:
		return transport.PriorityUser
	case *core.GetBackupsRequest:
		return transport.PriorityAudit
	default:
		return transport.PriorityBackground
	}
}
