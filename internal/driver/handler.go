package driver

import (
	"fmt"

	"trustedcvs/internal/core"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/server"
	"trustedcvs/internal/transport"
)

// NewHandler builds the server-side request router: protocol messages
// go to the protocol server (honest or adversarial — anything
// implementing server.Server), content messages to the content store.
// The handler is invoked concurrently by the pipelined transport; it
// needs no locking of its own because both targets synchronize
// internally (the protocol servers around their ordered sections, the
// content store around its archive).
func NewHandler(srv server.Server, store *cvs.Store) transport.Handler {
	return func(req any) (any, error) {
		switch r := req.(type) {
		case *core.OpRequest:
			return srv.HandleOp(r)
		case *core.AckRequest:
			if err := srv.HandleAck(r); err != nil {
				return nil, err
			}
			return &core.OKResponse{}, nil
		case *core.GetBackupsRequest:
			return srv.HandleGetBackups(r)
		case *core.PushContentRequest:
			if err := store.Push(r.Path, r.Rev, r.Content); err != nil {
				return nil, err
			}
			return &core.OKResponse{}, nil
		case *core.FetchContentRequest:
			content, err := store.Fetch(r.Path, r.Rev, r.Hash)
			if err != nil {
				return nil, err
			}
			return &core.ContentResponse{Content: content}, nil
		default:
			return nil, fmt.Errorf("driver: unknown request %T", req)
		}
	}
}
