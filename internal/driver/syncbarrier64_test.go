package driver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
)

// TestSyncBarrier64TCPHub drives a full 64-client Protocol II sync
// barrier over the real TCP transport and TCP broadcast hub — the
// deployment shape E17's sync baseline measures. One barrier cycle at
// this population is 64 rounds x 65 messages fanned out to 64
// subscribers; the run only completes if the hub's delivery stays
// gapless under that burst and the per-connection streaming codec
// keeps the fan-out affordable. This regression pins both: the stall
// mode was clients parked forever at 60-63/64 reports.
func TestSyncBarrier64TCPHub(t *testing.T) {
	if testing.Short() {
		t.Skip("64-client barrier cycle is seconds of work; skip in -short")
	}
	const n, k = 64, 16
	const ops = k + 1 // cross the sync threshold once per client
	db := vdb.New(0)
	// No idle timeout: clients legitimately park their server
	// connection for the whole barrier wait.
	srv, err := transport.ListenOpts("127.0.0.1:0", NewHandler(server.NewP2(db), cvs.NewStore()), transport.Options{IdleTimeout: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	hub, err := broadcast.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	clients := make([]*Client, n)
	for i := 0; i < n; i++ {
		conn, err := transport.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		clients[i] = NewP2(proto2.NewUser(sig.UserID(i), db.Root(), k), conn, broadcast.DialHubResume(hub.Addr()), n)
	}
	defer func() {
		for _, c := range clients {
			c.Close()
		}
	}()

	var wg sync.WaitGroup
	errs := make([]error, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < ops; j++ {
				op := &vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("k-%d-%d", id, j), Val: []byte("v")}}}
				if _, err := clients[id].Do(op); err != nil {
					errs[id] = fmt.Errorf("client %d op %d: %w", id, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	t.Logf("64-client barrier cycle completed in %s", time.Since(start))
}
