package driver

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto1"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/core/proto3"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
)

// cluster is a live test fixture: a server (optionally adversarial), a
// broadcast hub, and n connected clients with cvs on top.
type cluster struct {
	t       *testing.T
	srv     *transport.Server
	hub     *broadcast.Hub
	clients []*Client
	cvs     []*cvs.Client
}

func newCluster(t *testing.T, proto server.Protocol, n int, k uint64, adv *adversary.Config) *cluster {
	t.Helper()
	db := vdb.New(0)
	signers, ring, err := sig.DeterministicSigners(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	var hs server.Server
	switch proto {
	case server.P1:
		hs = server.NewP1(db, proto1.Initialize(signers[0], db.Root()))
	case server.P2:
		hs = server.NewP2(db)
	case server.P3:
		hs = server.NewP3(db)
	}
	if adv != nil {
		hs = adversary.Wrap(hs, *adv)
	}
	store := cvs.NewStore()
	srv, err := transport.Listen("127.0.0.1:0", NewHandler(hs, store))
	if err != nil {
		t.Fatal(err)
	}
	cl := &cluster{t: t, srv: srv, hub: broadcast.NewHub()}
	for i := 0; i < n; i++ {
		conn, err := transport.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		var c *Client
		switch proto {
		case server.P1:
			c = NewP1(proto1.NewUser(signers[i], ring, k), conn, cl.hub.Join(), n)
		case server.P2:
			c = NewP2(proto2.NewUser(sig.UserID(i), db.Root(), k), conn, cl.hub.Join(), n)
		case server.P3:
			c = NewP3(proto3.NewUser(signers[i], ring, db.Root()), conn)
		}
		cl.clients = append(cl.clients, c)
		cl.cvs = append(cl.cvs, cvs.NewClient(c, c, fmt.Sprintf("user%d", i), func() time.Time {
			return time.Unix(1144065600, 0)
		}))
	}
	t.Cleanup(func() {
		for _, c := range cl.clients {
			c.Close()
		}
		cl.hub.Close()
		cl.srv.Close()
	})
	return cl
}

func (c *cluster) waitAllIdle() error {
	for _, cl := range c.clients {
		if err := cl.WaitIdle(5 * time.Second); err != nil {
			return err
		}
	}
	return nil
}

func TestLiveP2CommitCheckout(t *testing.T) {
	cl := newCluster(t, server.P2, 3, 4, nil)
	if _, err := cl.cvs[0].Commit(map[string][]byte{"main.c": []byte("int main(){}\n")}, "init", nil); err != nil {
		t.Fatal(err)
	}
	got, err := cl.cvs[1].Checkout("main.c")
	if err != nil {
		t.Fatal(err)
	}
	if string(got["main.c"]) != "int main(){}\n" {
		t.Fatalf("checkout: %q", got["main.c"])
	}
	// Enough ops to force at least one sync round; must stay clean.
	for i := 0; i < 10; i++ {
		if _, err := cl.cvs[i%3].Commit(map[string][]byte{"main.c": []byte(fmt.Sprintf("v%d\n", i))}, "edit", nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.waitAllIdle(); err != nil {
		t.Fatalf("sync on honest server failed: %v", err)
	}
}

func TestLiveP1WithSyncs(t *testing.T) {
	cl := newCluster(t, server.P1, 2, 3, nil)
	for i := 0; i < 9; i++ {
		u := i % 2
		if _, err := cl.cvs[u].Commit(map[string][]byte{"f": []byte(fmt.Sprintf("v%d\n", i))}, "", nil); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := cl.waitAllIdle(); err != nil {
		t.Fatalf("P1 sync: %v", err)
	}
}

func TestLiveP3Epochs(t *testing.T) {
	cl := newCluster(t, server.P3, 2, 0, nil)
	// The server's epoch is advanced out of band (in production a
	// timer; here directly through the handler's server — we reach it
	// via a tiny trick: a dedicated Caller is not needed because the
	// protocol server is shared; instead we drive epochs by dialing
	// the raw object). Simplest: re-listen is overkill — use the sim
	// for timing experiments; here just exercise ops + backups without
	// epoch advancement.
	for i := 0; i < 6; i++ {
		if _, err := cl.cvs[i%2].Commit(map[string][]byte{"f": []byte(fmt.Sprintf("v%d\n", i))}, "", nil); err != nil {
			t.Fatal(err)
		}
	}
}

func TestLiveConcurrentClients(t *testing.T) {
	cl := newCluster(t, server.P2, 4, 8, nil)
	var wg sync.WaitGroup
	errs := make(chan error, 4)
	for u := 0; u < 4; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				_, err := cl.cvs[u].Commit(map[string][]byte{
					fmt.Sprintf("dir%d/f.c", u): []byte(fmt.Sprintf("u%d i%d\n", u, i)),
				}, "concurrent", nil)
				if err != nil {
					errs <- fmt.Errorf("user %d op %d: %w", u, i, err)
					return
				}
			}
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := cl.waitAllIdle(); err != nil {
		t.Fatalf("final sync state: %v", err)
	}
	// All clients agree on the repository.
	files, err := cl.cvs[0].List()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 4 {
		t.Fatalf("files: %+v", files)
	}
	for _, f := range files {
		if f.Rev != 12 {
			t.Fatalf("file %s at rev %d, want 12", f.Path, f.Rev)
		}
	}
}

func TestLiveForkDetectedAtSync(t *testing.T) {
	for _, proto := range []server.Protocol{server.P1, server.P2} {
		cl := newCluster(t, proto, 2, 3, &adversary.Config{
			Kind:      adversary.Fork,
			TriggerOp: 3,
			GroupB:    map[sig.UserID]bool{1: true},
		})
		var detected error
		for i := 0; i < 10 && detected == nil; i++ {
			for u := 0; u < 2 && detected == nil; u++ {
				_, err := cl.cvs[u].Commit(map[string][]byte{"f": []byte(fmt.Sprintf("u%d-%d\n", u, i))}, "", nil)
				if err != nil {
					detected = err
				}
			}
			if detected == nil {
				if err := cl.waitAllIdle(); err != nil {
					detected = err
				}
			}
		}
		de, ok := core.AsDetection(detected)
		if !ok {
			t.Fatalf("%v: fork not detected: %v", proto, detected)
		}
		if de.Class != core.SyncMismatch {
			t.Fatalf("%v: class %v", proto, de.Class)
		}
	}
}

func TestLiveTamperedAnswerDetected(t *testing.T) {
	cl := newCluster(t, server.P2, 2, 100, &adversary.Config{
		Kind: adversary.TamperAnswer, TriggerOp: 2,
	})
	if _, err := cl.cvs[0].Commit(map[string][]byte{"f": []byte("ok\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	_, err := cl.cvs[1].Checkout("f")
	de, ok := core.AsDetection(err)
	if !ok || de.Class != core.BadAnswer {
		t.Fatalf("want BadAnswer, got %v", err)
	}
	// Detection is terminal: subsequent operations fail fast.
	if _, err := cl.clients[1].Do(&vdb.NopOp{}); err == nil {
		t.Fatal("client must refuse to continue after detection")
	}
}

func TestLiveContentTamperDetected(t *testing.T) {
	cl := newCluster(t, server.P2, 2, 100, nil)
	if _, err := cl.cvs[0].Commit(map[string][]byte{"f": []byte("genuine\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	// Overwrite the blob server-side by pushing different content for
	// the same (path, rev): fetch by hash still returns the genuine
	// bytes, proving content addressing defeats this tamper.
	if err := cl.clients[1].Push("f", 1, []byte("evil\n")); err == nil {
		// Push succeeded (the store keeps both); checkout must still
		// verify.
		got, err := cl.cvs[1].Checkout("f")
		if err != nil || string(got["f"]) != "genuine\n" {
			t.Fatalf("checkout after hostile push: %q %v", got["f"], err)
		}
	}
}
