package driver

import (
	"encoding/gob"
	"errors"
	"fmt"
	"time"

	"trustedcvs/internal/audit"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/fault"
	"trustedcvs/internal/server"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
)

// epochReportMsg carries one client's epoch-audit register snapshot
// (or seal) over the broadcast channel. It rides the same FIFO hub as
// the sync-mode traffic but never touches the client's round state:
// the receive loop hands it straight to the auditor.
type epochReportMsg struct {
	Report audit.Report
}

func init() {
	gob.Register(&epochReportMsg{})
}

// NewP2Epoch builds a Protocol II client in epoch-audit mode: Do
// returns as soon as the server answers, and every verification
// obligation — VO replay, register fold, the closure check, the
// witness quorum check — runs on a background auditor that closes one
// epoch of epochLen global operations at a time. Detection weakens
// from "before the next operation" to "within one epoch"; see the
// audit package for the exact bound. queue is the audit queue capacity
// (0 = audit.DefaultQueue); when it fills, Do degrades to the audit
// rate rather than dropping obligations.
func NewP2Epoch(user *proto2.User, conn transport.Caller, bc broadcast.Channel, nUsers int, epochLen uint64, queue int) (*Client, error) {
	return NewP2EpochWAL(user, conn, bc, nUsers, epochLen, queue, "", nil)
}

// NewP2EpochWAL is NewP2Epoch with a crash-durable audit journal: when
// walDir is non-empty, every obligation is fsynced there before Do
// releases its optimistic answer, and a restart resumes from the
// journal's cursor — the user's protocol state is restored to the last
// durably closed epoch's boundary cut and every journaled obligation
// past it is re-verified, so the client re-demands audit closure
// instead of trusting pre-crash optimistic answers. The passed user
// supplies the identity on first start and is replaced by the restored
// state on resume, so callers construct it identically either way.
// Resume needs the TCP broadcast hub (its full-history replay
// re-delivers peer epoch reports); the in-process Hub keeps no
// history. fs overrides the journal's filesystem (nil = the real one).
func NewP2EpochWAL(user *proto2.User, conn transport.Caller, bc broadcast.Channel, nUsers int, epochLen uint64, queue int, walDir string, fs fault.FS) (*Client, error) {
	if walDir != "" {
		cur, err := audit.LoadCursor(walDir)
		if err != nil {
			return nil, err
		}
		if cur != nil {
			restored, err := proto2.RestoreUser(cur.State)
			if err != nil {
				return nil, fmt.Errorf("driver: restore audit cursor state: %w", err)
			}
			if restored.ID() != user.ID() {
				return nil, fmt.Errorf("driver: audit journal %s belongs to user %d, not %d",
					walDir, restored.ID(), user.ID())
			}
			user = restored
		}
	}
	c := newClient(server.P2, conn, bc, nUsers)
	c.u2 = user
	c.id = user.ID()
	aud, err := audit.New(audit.Config{
		User:  user,
		Epoch: epochLen,
		Users: nUsers,
		Queue: queue,
		Publish: func(r audit.Report) error {
			return bc.Publish(broadcast.Message{From: c.id, Payload: &epochReportMsg{Report: r}})
		},
		// The replay chain only pays off on single-tree deployments;
		// forest verification keeps per-shard state instead.
		Chain:  !user.Forest(),
		WALDir: walDir,
		WALFS:  fs,
	})
	if err != nil {
		return nil, err
	}
	c.aud = aud
	c.start()
	return c, nil
}

// Audit returns the client's background auditor (nil in synchronous
// mode) for stats and fine-grained waits.
func (c *Client) Audit() *audit.Auditor { return c.aud }

// doEpochLocked is the epoch-mode hot path: issue the op, decode the
// answer optimistically, and queue the verification obligation.
// Everything slow — VO replay, hashing, the closure check — happens on
// the auditor.
func (c *Client) doEpochLocked(op vdb.Op) (any, error) {
	raw, err := c.conn.Call(c.u2.Request(op))
	if err != nil {
		return nil, err
	}
	var (
		rec audit.Record
		ans any
		g   uint64
	)
	var decErr error
	if cross, ok := op.(*vdb.CrossOp); ok {
		fresp, ok := raw.(*core.OpResponseForest)
		if !ok {
			// lctr 0: the user's op count is auditor-owned state in
			// epoch mode and must not be read from the hot path.
			err := core.Detect(core.ProtocolViolation, c.id, 0, fmt.Errorf("bad response type %T", raw))
			c.recordFailure(err)
			return nil, err
		}
		rec = audit.Record{Cross: cross, CrossResp: fresp}
		g = fresp.GCtr
		ans, decErr = decodeForestAnswer(fresp)
	} else {
		resp, ok := raw.(*core.OpResponseII)
		if !ok {
			err := core.Detect(core.ProtocolViolation, c.id, 0, fmt.Errorf("bad response type %T", raw))
			c.recordFailure(err)
			return nil, err
		}
		rec = audit.Record{Op: op, Resp: resp}
		if c.u2.Forest() {
			g = resp.GCtr
		} else {
			g = resp.Ctr + 1
		}
		ans, decErr = vdb.DecodeAnswer(resp.Answer)
	}
	if err := c.aud.Submit(rec); err != nil {
		if !errors.Is(err, audit.ErrClosed) {
			c.recordFailure(err)
		}
		return nil, err
	}
	c.aud.NoteEpoch(g)
	if decErr != nil {
		// The answer bytes are garbage. The obligation is already
		// queued — the audit will convict the server over the same
		// bytes — so surface a plain error without advancing anything.
		return nil, fmt.Errorf("driver: optimistic answer decode: %w", decErr)
	}
	return ans, nil
}

// decodeForestAnswer optimistically decodes a cross-shard response's
// per-leg answers, mirroring the shape HandleResponseForest returns.
func decodeForestAnswer(fresp *core.OpResponseForest) (any, error) {
	answers := make([]any, len(fresp.Legs))
	for i := range fresp.Legs {
		a, err := vdb.DecodeAnswer(fresp.Legs[i].Answer)
		if err != nil {
			return nil, fmt.Errorf("leg %d: %w", i, err)
		}
		answers[i] = a
	}
	return vdb.CrossAnswer{Answers: answers}, nil
}

// Seal publishes this client's final registers to every peer; once all
// clients seal, the auditor closes the tail window with one final
// closure check. A client that stops operating MUST seal: epoch
// closure needs every user's boundary report, so a silent departure
// stalls peers at admission within one epoch — the same liveness rule
// a quiet user imposes on a sync-barrier round. No-op in synchronous
// mode (every sync round is already a full barrier).
func (c *Client) Seal() {
	if c.aud != nil {
		c.aud.Seal()
	}
}

// WaitAudited blocks until every queued obligation has been verified
// (epoch-audit mode; synchronous mode is trivially audited). It does
// not wait for epoch closure — see WaitSealed.
func (c *Client) WaitAudited(timeout time.Duration) error {
	if c.aud == nil {
		return c.Err()
	}
	if err := c.aud.WaitDrained(timeout); err != nil {
		c.mirrorAuditFailure(err)
		return err
	}
	return c.Err()
}

// WaitSealed blocks until the all-sealed final closure check has
// passed (call Seal on every client first) or a failure surfaces.
func (c *Client) WaitSealed(timeout time.Duration) error {
	if c.aud == nil {
		return c.Err()
	}
	if err := c.aud.WaitSealed(timeout); err != nil {
		c.mirrorAuditFailure(err)
		return err
	}
	return c.Err()
}

// mirrorAuditFailure pins an asynchronous audit failure into the
// client's own failure slot so Err and the next Do observe it.
func (c *Client) mirrorAuditFailure(err error) {
	if errors.Is(err, audit.ErrClosed) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.recordFailure(err)
}
