package driver

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/audit"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
)

func put(k, v string) vdb.Op { return &vdb.WriteOp{Puts: []vdb.KV{{Key: k, Val: []byte(v)}}} }

// swapSrv is a server.Server whose inner implementation can be
// replaced at runtime — the test stand-in for a server process that
// crashes and restarts from a checkpoint behind a stable endpoint.
type swapSrv struct {
	mu    sync.Mutex
	inner server.Server
}

func (s *swapSrv) get() server.Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inner
}
func (s *swapSrv) swap(in server.Server) {
	s.mu.Lock()
	s.inner = in
	s.mu.Unlock()
}
func (s *swapSrv) Protocol() server.Protocol               { return s.get().Protocol() }
func (s *swapSrv) HandleOp(r *core.OpRequest) (any, error) { return s.get().HandleOp(r) }
func (s *swapSrv) HandleAck(a *core.AckRequest) error      { return s.get().HandleAck(a) }
func (s *swapSrv) HandleGetBackups(r *core.GetBackupsRequest) (*core.BackupsResponse, error) {
	return s.get().HandleGetBackups(r)
}
func (s *swapSrv) AdvanceEpoch()       { s.get().AdvanceEpoch() }
func (s *swapSrv) Epoch() uint64       { return s.get().Epoch() }
func (s *swapSrv) DB() *vdb.DB         { return s.get().DB() }
func (s *swapSrv) Fork() server.Server { return s.get().Fork() }

// epochCluster is the epoch-audit-mode twin of cluster: a Protocol II
// server behind TCP, a broadcast hub, and n NewP2Epoch clients.
type epochCluster struct {
	t       *testing.T
	srv     *transport.Server
	store   *cvs.Store
	hub     *broadcast.Hub
	clients []*Client
}

func newEpochCluster(t *testing.T, hs server.Server, n int, epochLen uint64) *epochCluster {
	t.Helper()
	root := hs.DB().Root()
	store := cvs.NewStore()
	srv, err := transport.Listen("127.0.0.1:0", NewHandler(hs, store))
	if err != nil {
		t.Fatal(err)
	}
	cl := &epochCluster{t: t, srv: srv, store: store, hub: broadcast.NewHub()}
	for i := 0; i < n; i++ {
		conn, err := transport.Dial(srv.Addr())
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewP2Epoch(proto2.NewUser(sig.UserID(i), root, 1<<62), conn, cl.hub.Join(), n, epochLen, 0)
		if err != nil {
			t.Fatal(err)
		}
		cl.clients = append(cl.clients, c)
	}
	t.Cleanup(func() {
		for _, c := range cl.clients {
			c.Close()
		}
		cl.hub.Close()
		cl.srv.Close()
	})
	return cl
}

// sealAll seals every client and waits for the final closure check,
// returning the first failure.
func (cl *epochCluster) sealAll(timeout time.Duration) error {
	for _, c := range cl.clients {
		c.Seal()
	}
	for _, c := range cl.clients {
		if err := c.WaitSealed(timeout); err != nil {
			return err
		}
	}
	return nil
}

func TestEpochAuditHonestRun(t *testing.T) {
	hs := server.NewP2(vdb.New(0))
	cl := newEpochCluster(t, hs, 3, 8)
	for i := 0; i < 30; i++ {
		c := cl.clients[i%3]
		if _, err := c.Do(put(fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	// Answers were optimistic; now demand the full guarantee.
	if err := cl.sealAll(10 * time.Second); err != nil {
		t.Fatalf("honest epoch run failed audit: %v", err)
	}
	// 30 ops at epoch length 8: the tail op lands in epoch 3, all of
	// which must be closed after the seal.
	for i, c := range cl.clients {
		if got := c.Audit().Completed(); got != 4 {
			t.Fatalf("client %d completed %d epochs, want 4", i, got)
		}
		if err := c.Err(); err != nil {
			t.Fatalf("client %d: %v", i, err)
		}
	}
}

func TestEpochAuditReadsVerify(t *testing.T) {
	hs := server.NewP2(vdb.New(0))
	cl := newEpochCluster(t, hs, 2, 4)
	if _, err := cl.clients[0].Do(put("a", "1")); err != nil {
		t.Fatal(err)
	}
	ans, err := cl.clients[1].Do(&vdb.ReadOp{Keys: []string{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	ra, ok := ans.(vdb.ReadAnswer)
	if !ok || !ra.Results[0].Found || string(ra.Results[0].Val) != "1" {
		t.Fatalf("optimistic read answer: %#v", ans)
	}
	if err := cl.sealAll(10 * time.Second); err != nil {
		t.Fatal(err)
	}
}

// TestEpochAuditTamperedAnswerDetectedAsync is the headline deviation
// scenario of epoch mode: the server lies about an answer, the client
// has already consumed the lie optimistically, and the background
// audit must convict — with a typed EpochAuditFailure naming the bad
// counter — before the epoch closes.
func TestEpochAuditTamperedAnswerDetectedAsync(t *testing.T) {
	hs := adversary.Wrap(server.NewP2(vdb.New(0)), adversary.Config{
		Kind: adversary.TamperAnswer, TriggerOp: 3,
	})
	cl := newEpochCluster(t, hs, 2, 4)
	for i := 0; i < 4; i++ {
		// Answers return optimistically; a decode error on the tampered
		// bytes is possible and fine — the obligation is queued either way.
		cl.clients[i%2].Do(put(fmt.Sprintf("k%d", i), "v")) //nolint:errcheck
	}
	var failure error
	for _, c := range cl.clients {
		if err := c.WaitAudited(10 * time.Second); err != nil {
			failure = err
		}
	}
	if failure == nil {
		t.Fatal("tampered answer not detected by the audit")
	}
	var ef *audit.EpochAuditFailure
	if !errors.As(failure, &ef) {
		t.Fatalf("failure is %T (%v), want *audit.EpochAuditFailure", failure, failure)
	}
	if ef.Ctr != 3 {
		t.Fatalf("failure names counter %d, want the tampered op at 3", ef.Ctr)
	}
	de, ok := core.AsDetection(failure)
	if !ok {
		t.Fatalf("detection class lost: %v", failure)
	}
	if de.Class != core.BadAnswer && de.Class != core.BadVO {
		t.Fatalf("class %v, want BadAnswer or BadVO", de.Class)
	}
	// Detection is terminal on the convicted client: the next Do on it
	// must fail fast with the same typed failure.
	for _, c := range cl.clients {
		if c.Err() == nil {
			continue
		}
		if _, err := c.Do(&vdb.NopOp{}); err == nil {
			t.Fatal("client continued past a recorded audit failure")
		}
	}
}

// TestEpochAuditForkDetectedAtClosure forks the user population onto
// two histories; per-record verification stays green on both branches,
// so conviction must come from the epoch closure check.
func TestEpochAuditForkDetectedAtClosure(t *testing.T) {
	hs := adversary.Wrap(server.NewP2(vdb.New(0)), adversary.Config{
		Kind: adversary.Fork, TriggerOp: 5,
		GroupB: map[sig.UserID]bool{1: true},
	})
	cl := newEpochCluster(t, hs, 2, 4)
	for i := 0; i < 12; i++ {
		if _, err := cl.clients[i%2].Do(put(fmt.Sprintf("k%d", i), "v")); err != nil {
			break // admission gate may surface the failure mid-run
		}
	}
	err := cl.sealAll(10 * time.Second)
	if err == nil {
		t.Fatal("fork not detected")
	}
	var ef *audit.EpochAuditFailure
	if !errors.As(err, &ef) {
		t.Fatalf("failure is %T (%v), want *audit.EpochAuditFailure", err, err)
	}
	de, ok := core.AsDetection(err)
	if !ok || de.Class != core.SyncMismatch {
		t.Fatalf("want SyncMismatch at epoch closure, got %v", err)
	}
}

// TestEpochAuditCheckpointRestore restarts the server from a
// checkpoint twice — once cut exactly on an epoch boundary, once cut
// mid-epoch with the audit window still open — and the audit must stay
// clean across both: the counters and heads a checkpoint preserves are
// exactly what the epoch cut is defined over.
func TestEpochAuditCheckpointRestore(t *testing.T) {
	sw := &swapSrv{inner: server.NewP2(vdb.New(0))}
	cl := newEpochCluster(t, sw, 2, 4)

	restart := func() {
		snap, err := server.CheckpointP2(sw.get(), cl.store)
		if err != nil {
			t.Fatal(err)
		}
		restored, _, err := server.RestoreP2(snap)
		if err != nil {
			t.Fatal(err)
		}
		sw.swap(restored)
	}
	do := func(i int) {
		t.Helper()
		if _, err := cl.clients[i%2].Do(put(fmt.Sprintf("k%d", i), "v")); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}

	for i := 0; i < 4; i++ { // ops 1..4: epoch 0 exactly full
		do(i)
	}
	for _, c := range cl.clients { // drain so the checkpoint head is audited
		if err := c.WaitAudited(10 * time.Second); err != nil {
			t.Fatal(err)
		}
	}
	restart() // boundary-aligned restart

	for i := 4; i < 6; i++ { // ops 5..6: epoch 1 half-open
		do(i)
	}
	restart() // mid-epoch restart, unaudited window crosses it

	for i := 6; i < 10; i++ {
		do(i)
	}
	if err := cl.sealAll(10 * time.Second); err != nil {
		t.Fatalf("audit across checkpoint/restore: %v", err)
	}
}

// TestEpochAuditStress64Clients races 64 clients against the shared
// auditor pipeline; run under -race this is the concurrency soak for
// the whole submit/verify/assemble/seal machinery.
func TestEpochAuditStress64Clients(t *testing.T) {
	const (
		clients  = 64
		opsPer   = 8
		epochLen = 64
	)
	hs := server.NewP2(vdb.New(0))
	cl := newEpochCluster(t, hs, clients, epochLen)
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for u := 0; u < clients; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				if _, err := cl.clients[u].Do(put(fmt.Sprintf("u%d-k%d", u, i), "v")); err != nil {
					errs <- fmt.Errorf("user %d op %d: %w", u, i, err)
					return
				}
			}
			// A client that stops operating must seal, or peers that
			// have raced ahead stall at admission waiting for its epoch
			// boundary reports — the epoch-mode mirror of the sync
			// barrier's liveness rule. Seal is idempotent, so sealAll
			// below is still fine.
			cl.clients[u].Seal()
		}(u)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if err := cl.sealAll(60 * time.Second); err != nil {
		t.Fatalf("stress run failed audit: %v", err)
	}
	// Per-client Completed() varies: after the all-seals closure an
	// auditor's completed jumps to the highest epoch IT observed, and a
	// client whose last op landed in an early epoch observed fewer. The
	// client that performed the final global op saw them all.
	maxDone := uint64(0)
	for i, c := range cl.clients {
		st := c.Audit().Stats()
		if st.Audited != st.Submitted {
			t.Fatalf("client %d drained %d of %d records", i, st.Audited, st.Submitted)
		}
		if got := c.Audit().Completed(); got > maxDone {
			maxDone = got
		}
	}
	if want := uint64(clients * opsPer / epochLen); maxDone != want {
		t.Fatalf("frontier client completed %d epochs, want %d", maxDone, want)
	}
}
