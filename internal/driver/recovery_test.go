package driver

import (
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"trustedcvs/internal/audit"
	"trustedcvs/internal/backoff"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/fault"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
)

// recoveryEnv is a Protocol II deployment whose server and TCP hub
// outlive the clients, so a test can kill and restart the client side
// against live server state — the crash scenario the audit WAL exists
// for.
type recoveryEnv struct {
	t    *testing.T
	ts   *transport.Server
	hub  *broadcast.HubServer
	root string // WAL root; user i journals under user-<i>
	db   *vdb.DB
}

func newRecoveryEnv(t *testing.T) *recoveryEnv {
	t.Helper()
	db := vdb.New(0)
	handler := NewHandler(server.NewP2(db), cvs.NewStore())
	ts, err := transport.ListenOpts("127.0.0.1:0", handler, transport.Options{IdleTimeout: -1})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	hub, err := broadcast.ListenHub("127.0.0.1:0")
	if err != nil {
		ts.Close()
		t.Fatalf("hub: %v", err)
	}
	env := &recoveryEnv{t: t, ts: ts, hub: hub, root: t.TempDir(), db: db}
	t.Cleanup(func() { hub.Close(); ts.Close() })
	return env
}

// client starts (or restarts) user id with a durable audit journal.
// fs overrides the journal filesystem (nil = real).
func (e *recoveryEnv) client(id, users int, epochLen uint64, fs fault.FS) *Client {
	e.t.Helper()
	conn, err := transport.Dial(e.ts.Addr())
	if err != nil {
		e.t.Fatalf("dial: %v", err)
	}
	// The identity template: replaced by the journal cursor's restored
	// state on resume. Sync scheduling is the auditor's job (k
	// effectively infinite).
	u := proto2.NewUser(sig.UserID(id), e.db.Root(), 1<<62)
	dc, err := NewP2EpochWAL(u, conn, broadcast.DialHubResume(e.hub.Addr()),
		users, epochLen, 0, filepath.Join(e.root, fmt.Sprintf("user-%d", id)), fs)
	if err != nil {
		e.t.Fatalf("client %d: %v", id, err)
	}
	return dc
}

// awaitEpochs polls until the client's auditor has closed at least n
// epochs.
func awaitEpochs(t *testing.T, dc *Client, n uint64, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	poll := backoff.Poll(time.Millisecond)
	for dc.Audit().Completed() < n {
		if err := dc.Err(); err != nil {
			t.Fatalf("false alarm while waiting for %d epochs: %v", n, err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("timeout: %d/%d epochs closed", dc.Audit().Completed(), n)
		}
		poll.Sleep()
	}
}

// TestEpochAuditRecoveryReplay kills both clients of an epoch-audit
// deployment mid-epoch — closed epochs checkpointed, the tail epoch's
// obligations only in the journal — and restarts them against the
// live server. The restarted auditors must replay and re-verify the
// tail, rejoin the epoch protocol through the hub's history replay,
// and close every epoch with zero false alarms.
func TestEpochAuditRecoveryReplay(t *testing.T) {
	const (
		users    = 2
		epochLen = 4
	)
	env := newRecoveryEnv(t)

	cs := make([]*Client, users)
	for i := range cs {
		cs[i] = env.client(i, users, epochLen, nil)
	}
	// 8 global ops close epochs 0 and 1; two more land in epoch 2 and
	// stay unclosed — the optimistic tail a crash would normally lose.
	for i := 0; i < 10; i++ {
		if _, err := cs[i%users].Do(&vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}}); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	for _, dc := range cs {
		awaitEpochs(t, dc, 2, 10*time.Second)
		if err := dc.WaitAudited(10 * time.Second); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	// Kill: no Seal, no drain of the open epoch. Closed epochs are
	// durably checkpointed; epoch 2's records exist only as journal
	// frames.
	for _, dc := range cs {
		dc.Close()
	}

	// Restart. Recovery must restore each user to its cursor cut,
	// re-verify the journaled tail, and re-arm the epoch protocol.
	for i := range cs {
		cs[i] = env.client(i, users, epochLen, nil)
	}
	defer func() {
		for _, dc := range cs {
			dc.Close()
		}
	}()
	replayed := uint64(0)
	for _, dc := range cs {
		replayed += dc.Audit().Stats().Replayed
	}
	if replayed == 0 {
		t.Fatal("no journaled obligations were replayed on restart")
	}
	// The restarted clients keep operating and the protocol closes the
	// pre-crash epoch along with the new ones.
	for i := 0; i < 6; i++ {
		if _, err := cs[i%users].Do(&vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("post%d", i), Val: []byte("v")}}}); err != nil {
			t.Fatalf("post-restart op %d: %v", i, err)
		}
	}
	for _, dc := range cs {
		dc.Seal()
	}
	for i, dc := range cs {
		if err := dc.WaitSealed(30 * time.Second); err != nil {
			t.Fatalf("client %d failed post-recovery closure: %v", i, err)
		}
		st := dc.Audit().Stats()
		if st.Durability != audit.DurabilityWAL {
			t.Fatalf("client %d durability = %v, want wal", i, st.Durability)
		}
	}
}

// TestEpochAuditRecoveryConvictsPreCrashTamper: the server tampers
// with an answer, the client dies before its auditor verifies the
// record, and the tampered bytes survive only in the journal. The
// restarted auditor must convict from replay alone — the exposure
// window closes across the crash.
func TestEpochAuditRecoveryConvictsPreCrashTamper(t *testing.T) {
	const epochLen = 8
	env := newRecoveryEnv(t)
	dc := env.client(0, 1, epochLen, nil)

	for i := 0; i < 3; i++ {
		if _, err := dc.Do(&vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}}); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := dc.WaitAudited(10 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	// Forge an obligation the auditor never gets to verify: a response
	// whose claimed root is garbage, journaled exactly as Submit would
	// journal it, then "crash" before the worker runs. Submitting
	// through the live auditor would verify it immediately; writing the
	// frame behind its back models the lost race between answer
	// release and audit.
	op := &vdb.WriteOp{Puts: []vdb.KV{{Key: "evil", Val: []byte("v")}}}
	raw, err := transportCall(t, env, dc, op)
	if err != nil {
		t.Fatalf("call: %v", err)
	}
	// Forge the answer: VO replay over the honest op can never produce
	// these bytes, so re-verification convicts.
	forged, err := vdb.EncodeAnswer(vdb.ReadAnswer{
		Results: []vdb.ReadResult{{Key: "forged", Found: true, Val: []byte("evil")}},
	})
	if err != nil {
		t.Fatalf("encode forged answer: %v", err)
	}
	raw.Answer = forged
	if err := appendForged(t, env, op, raw, epochLen); err != nil {
		t.Fatalf("forge: %v", err)
	}
	dc.Close()

	dc2 := env.client(0, 1, epochLen, nil)
	defer dc2.Close()
	deadline := time.Now().Add(20 * time.Second)
	poll := backoff.Poll(time.Millisecond)
	for dc2.Audit().Err() == nil {
		if time.Now().After(deadline) {
			t.Fatal("tampered pre-crash record not convicted after recovery")
		}
		poll.Sleep()
	}
}

// transportCall issues one raw server call on a fresh connection so
// the test can capture (and corrupt) the response before any auditor
// sees it.
func transportCall(t *testing.T, env *recoveryEnv, dc *Client, op vdb.Op) (*core.OpResponseII, error) {
	t.Helper()
	conn, err := transport.Dial(env.ts.Addr())
	if err != nil {
		return nil, err
	}
	raw, err := conn.Call(dc.u2.Request(op))
	if err != nil {
		return nil, err
	}
	resp, ok := raw.(*core.OpResponseII)
	if !ok {
		return nil, fmt.Errorf("bad response type %T", raw)
	}
	return resp, nil
}

// appendForged writes one obligation frame to user 0's journal the
// way Submit would, bypassing the (already stopped) auditor.
func appendForged(t *testing.T, env *recoveryEnv, op vdb.Op, resp *core.OpResponseII, epochLen uint64) error {
	t.Helper()
	// Frame epoch as Submit would derive it: g = Ctr+1, epoch = (g-1)/len.
	return audit.AppendRaw(filepath.Join(env.root, "user-0"),
		audit.Record{Op: op, Resp: resp}, resp.Ctr/epochLen)
}

// TestEpochAuditDegradeToSyncWAL: mid-run the journal's disk dies.
// The auditor must flip to degrade-to-sync — every later Submit
// blocks until its record is verified — finish the workload with zero
// loss, and expose the state via Stats.
func TestEpochAuditDegradeToSyncWAL(t *testing.T) {
	const epochLen = 4
	env := newRecoveryEnv(t)
	// The journal dies on its 4th fsync: first appends succeed, then
	// the device vanishes mid-workload.
	ffs := &fault.FaultyFS{CrashAtSync: 4}
	dc := env.client(0, 1, epochLen, ffs)
	defer dc.Close()

	for i := 0; i < 12; i++ {
		if _, err := dc.Do(&vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}}); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	st := dc.Audit().Stats()
	if st.Durability != audit.DurabilityDegradedSync {
		t.Fatalf("durability = %v, want degraded-sync", st.Durability)
	}
	// Degraded submits hold the answer until verified: nothing may be
	// outstanding between operations.
	if st.Audited != st.Submitted {
		t.Fatalf("degraded mode left %d records unverified", st.Submitted-st.Audited)
	}
	dc.Seal()
	if err := dc.WaitSealed(20 * time.Second); err != nil {
		t.Fatalf("degraded run failed closure: %v", err)
	}
}
