// Package driver binds the pure protocol state machines to live
// transports: a Client wraps one user's state machine, a connection to
// the (untrusted) server, and — for Protocols I and II — a broadcast
// channel on which it participates in synchronization rounds.
//
// Client implements cvs.Doer and cvs.ContentTransfer, so a cvs.Client
// on top of it is a fully verified CVS client over the network.
//
// Protocol II clients run in one of two audit modes:
//
// In the default synchronous mode, synchronization runs as a barrier:
// from the moment a client learns of a sync round until it has
// evaluated all n reports, it starts no new operations. Combined with
// the broadcast hub's FIFO total order, this realizes the paper's
// "users do not start a new transaction between the sync-up message
// and the broadcast", which is what makes the collected register
// vector a consistent cut of the history, and it detects a deviation
// before the next operation starts.
//
// In epoch-audit mode (NewP2Epoch), Do returns as soon as the server
// answers and all verification moves onto a background auditor that
// closes one epoch of N global operations at a time — the consistent
// cut comes from counter prefixes instead of a barrier, and detection
// is guaranteed within one epoch. See the audit package for the bound
// and its derivation.
package driver

import (
	"encoding/gob"
	"errors"
	"fmt"
	"sync"
	"time"

	"trustedcvs/internal/audit"
	"trustedcvs/internal/backoff"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto1"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/core/proto3"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/forensics"
	"trustedcvs/internal/rcs"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/witness"
)

// reportMsg carries one user's sync report for one round over the
// broadcast channel.
type reportMsg struct {
	Initiator sig.UserID
	Round     uint64
	ReportI   *core.SyncReportI
	ReportII  *core.SyncReportII
}

func init() {
	gob.Register(&reportMsg{})
}

type roundKey struct {
	initiator sig.UserID
	round     uint64
}

type roundState struct {
	reportsI  map[sig.UserID]core.SyncReportI
	reportsII map[sig.UserID]core.SyncReportII
	reported  bool // this client has published its own report
}

// Client is one user's live protocol endpoint.
type Client struct {
	proto  server.Protocol
	conn   transport.Caller
	bc     broadcast.Channel
	nUsers int

	mu     sync.Mutex
	cond   *sync.Cond
	u1     *proto1.User
	u2     *proto2.User
	u3     *proto3.User
	id     sig.UserID
	rounds map[roundKey]*roundState
	done   map[sig.UserID]uint64 // last completed round per initiator
	seq    uint64
	failed error
	closed bool

	check    *witness.Check // nil: no witness cross-check
	noQuorum uint64         // witness checks skipped for lack of quorum

	aud *audit.Auditor // non-nil: epoch-audit mode (NewP2Epoch)

	wg sync.WaitGroup
}

// NewP1 builds a Protocol I client. bc must be joined to the same hub
// as every other user; nUsers is the total user population.
func NewP1(user *proto1.User, conn transport.Caller, bc broadcast.Channel, nUsers int) *Client {
	c := newClient(server.P1, conn, bc, nUsers)
	c.u1 = user
	c.id = user.ID()
	c.start()
	return c
}

// NewP2 builds a Protocol II client.
func NewP2(user *proto2.User, conn transport.Caller, bc broadcast.Channel, nUsers int) *Client {
	c := newClient(server.P2, conn, bc, nUsers)
	c.u2 = user
	c.id = user.ID()
	c.start()
	return c
}

// NewP3 builds a Protocol III client. No broadcast channel: epoch
// duties run over the server connection.
func NewP3(user *proto3.User, conn transport.Caller) *Client {
	c := newClient(server.P3, conn, nil, 0)
	c.u3 = user
	c.id = user.ID()
	return c
}

func newClient(p server.Protocol, conn transport.Caller, bc broadcast.Channel, nUsers int) *Client {
	c := &Client{
		proto:  p,
		conn:   conn,
		bc:     bc,
		nUsers: nUsers,
		rounds: make(map[roundKey]*roundState),
		done:   make(map[sig.UserID]uint64),
	}
	c.cond = sync.NewCond(&c.mu)
	return c
}

func (c *Client) start() {
	c.wg.Add(1)
	go c.recvLoop()
}

// ID returns the client's user identity.
func (c *Client) ID() sig.UserID { return c.id }

// SetWitnessCheck arms the witness cross-check: after every verified
// operation the client records the root it derived, and before a sync
// round is acknowledged it compares those roots against the witness
// quorum's signed commitments. A divergence is a detection
// (core.WitnessDivergence) and, when the server connection is a
// multi-endpoint ResilientClient, the convicted endpoint is
// quarantined so retries cannot fail over back onto the fork. Set
// before issuing operations.
func (c *Client) SetWitnessCheck(chk *witness.Check) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.check = chk
	if c.aud != nil {
		// Epoch-audit mode: the quorum check runs on the auditor, once
		// per completed epoch, with the same quarantine-on-conviction
		// behavior the sync barrier has.
		c.aud.SetCheck(chk)
		conn := c.conn
		c.aud.SetQuarantine(func() {
			if rc, ok := conn.(*transport.ResilientClient); ok {
				rc.Quarantine(rc.EndpointName())
			}
		})
	}
}

// NoQuorumSkips reports how many witness checks were skipped because
// too few witnesses answered. Availability loss, not detection — E15
// asserts this stays separate from the false-alarm count.
func (c *Client) NoQuorumSkips() uint64 {
	if c.aud != nil {
		return c.aud.NoQuorumSkips()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.noQuorum
}

// Err returns the recorded detection error, if any. In epoch-audit
// mode a failure the background auditor found is surfaced here too,
// even before the next Do would trip over it.
func (c *Client) Err() error {
	c.mu.Lock()
	failed := c.failed
	c.mu.Unlock()
	if failed == nil && c.aud != nil {
		return c.aud.Err()
	}
	return failed
}

// Journal returns the underlying user's transition journal (nil unless
// enabled on the user before the client was built). Pool journals from
// all users with forensics.Locate after a detection.
func (c *Client) Journal() *forensics.Journal {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case c.u1 != nil:
		return c.u1.Journal()
	case c.u2 != nil:
		return c.u2.Journal()
	case c.u3 != nil:
		return c.u3.Journal()
	}
	return nil
}

// Close shuts the client down (the broadcast channel and server
// connection are closed).
func (c *Client) Close() error {
	// Stop the auditor before taking mu: its shutdown releases any Do
	// blocked in admission or backpressure, which may hold mu.
	if c.aud != nil {
		c.aud.Stop()
	}
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
	if c.bc != nil {
		c.bc.Close()
	}
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

// Do implements cvs.Doer. In synchronous mode it executes one fully
// verified operation, blocking while a synchronization round is in
// flight. In epoch-audit mode it returns the optimistically decoded
// answer as soon as the server replies, blocking only on the
// admission gate (one epoch of pipelining, the detection bound) and
// on audit-queue backpressure.
func (c *Client) Do(op vdb.Op) (any, error) {
	if c.aud != nil {
		// Admission first, without mu: the gate is released by the
		// auditor, never by this client's own lock holders.
		if err := c.aud.WaitAdmissible(); err != nil {
			if !errors.Is(err, audit.ErrClosed) {
				c.mirrorAuditFailure(err)
			}
			return nil, err
		}
		c.mu.Lock()
		defer c.mu.Unlock()
		if c.failed != nil {
			return nil, c.failed
		}
		if c.closed {
			return nil, errors.New("driver: client closed")
		}
		return c.doEpochLocked(op)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.rounds) > 0 && c.failed == nil && !c.closed {
		c.cond.Wait()
	}
	if c.failed != nil {
		return nil, c.failed
	}
	if c.closed {
		return nil, errors.New("driver: client closed")
	}

	ans, err := c.doOpLocked(op)
	if err != nil {
		// Only detection is terminal. A transport failure (retries
		// exhausted, server restarting) is the caller's to handle: the
		// local state machine has not advanced, so the client remains
		// usable once the network heals. Pinning transport errors here
		// would turn every outage into a spurious permanent failure.
		if _, ok := core.AsDetection(err); ok {
			c.recordFailure(err)
		}
		return nil, err
	}
	c.observeLocked()
	if c.needsSyncLocked() {
		c.seq++
		key := roundKey{c.id, c.seq}
		msg := broadcast.Message{From: c.id, Payload: &core.SyncRequest{From: c.id, Round: c.seq}}
		if err := c.bc.Publish(msg); err != nil {
			return ans, fmt.Errorf("driver: announce sync: %w", err)
		}
		// Register the round and contribute our own report right here,
		// synchronously: the paper's initiator "does not start a new
		// transaction between the sync-up message and the broadcast",
		// and the next Do must block on the open round.
		c.publishOwnReportLocked(key)
	}
	return ans, nil
}

// doOpLocked performs the protocol exchange for one operation.
func (c *Client) doOpLocked(op vdb.Op) (any, error) {
	switch c.proto {
	case server.P1:
		raw, err := c.conn.Call(c.u1.Request(op))
		if err != nil {
			return nil, err
		}
		resp, ok := raw.(*core.OpResponseI)
		if !ok {
			return nil, core.Detect(core.ProtocolViolation, c.id, c.u1.LCtr(), fmt.Errorf("bad response type %T", raw))
		}
		ack, ans, err := c.u1.HandleResponse(op, resp)
		if err != nil {
			return nil, err
		}
		if _, err := c.conn.Call(ack); err != nil {
			return nil, err
		}
		return ans, nil

	case server.P2:
		raw, err := c.conn.Call(c.u2.Request(op))
		if err != nil {
			return nil, err
		}
		// A cross-shard transaction on a forest is answered with a
		// multi-leg response; everything else must be a plain response.
		// The response type is the server's claim — the user state
		// machine re-checks it against the op it routed itself.
		if cross, ok := op.(*vdb.CrossOp); ok {
			if fresp, ok := raw.(*core.OpResponseForest); ok {
				return c.u2.HandleResponseForest(cross, fresp)
			}
		}
		resp, ok := raw.(*core.OpResponseII)
		if !ok {
			return nil, core.Detect(core.ProtocolViolation, c.id, c.u2.LCtr(), fmt.Errorf("bad response type %T", raw))
		}
		return c.u2.HandleResponse(op, resp)

	case server.P3:
		raw, err := c.conn.Call(c.u3.Request(op))
		if err != nil {
			return nil, err
		}
		resp, ok := raw.(*core.OpResponseII)
		if !ok {
			return nil, core.Detect(core.ProtocolViolation, c.id, c.u3.LCtr(), fmt.Errorf("bad response type %T", raw))
		}
		out, err := c.u3.HandleResponse(op, resp)
		if err != nil {
			return nil, err
		}
		if out.CheckEpoch != nil {
			if err := c.runEpochCheckLocked(*out.CheckEpoch); err != nil {
				return nil, err
			}
		}
		return out.Answer, nil
	}
	return nil, fmt.Errorf("driver: unknown protocol %v", c.proto)
}

func (c *Client) runEpochCheckLocked(e uint64) error {
	var prev *core.BackupsResponse
	if e > 0 {
		raw, err := c.conn.Call(c.u3.BackupsRequest(e - 1))
		if err != nil {
			return err
		}
		r, ok := raw.(*core.BackupsResponse)
		if !ok {
			return core.Detect(core.ProtocolViolation, c.id, c.u3.LCtr(), fmt.Errorf("bad backups response %T", raw))
		}
		prev = r
	}
	raw, err := c.conn.Call(c.u3.BackupsRequest(e))
	if err != nil {
		return err
	}
	cur, ok := raw.(*core.BackupsResponse)
	if !ok {
		return core.Detect(core.ProtocolViolation, c.id, c.u3.LCtr(), fmt.Errorf("bad backups response %T", raw))
	}
	return c.u3.CompleteEpochCheck(e, prev, cur)
}

// observeLocked records the root the local state machine just
// verified, so the next witness check can compare it against what the
// witnesses hold for the same counter.
func (c *Client) observeLocked() {
	if c.check == nil {
		return
	}
	switch c.proto {
	case server.P1:
		c.check.Observe(c.u1.VerifiedRoot())
	case server.P2:
		c.check.Observe(c.u2.VerifiedRoot())
	case server.P3:
		c.check.Observe(c.u3.VerifiedRoot())
	}
}

func (c *Client) lctrLocked() uint64 {
	switch c.proto {
	case server.P1:
		return c.u1.LCtr()
	case server.P2:
		return c.u2.LCtr()
	case server.P3:
		return c.u3.LCtr()
	}
	return 0
}

// verifyWitnessLocked cross-checks the roots this client verified
// against the witness quorum's signed commitments. It runs with mu
// held, *before* the sync round is acknowledged, so no new operation
// ever starts on top of a root the witnesses contradict.
func (c *Client) verifyWitnessLocked() error {
	if c.check == nil {
		return nil
	}
	err := c.check.Verify()
	switch {
	case err == nil:
		return nil
	case errors.Is(err, witness.ErrNoQuorum):
		// Too few witnesses answered. That is availability loss, never
		// detection — conflating the two is exactly how benign failover
		// turns into false alarms. Skip, count, proceed.
		c.noQuorum++
		return nil
	default:
		// Divergence, with verified evidence in c.check.Evidence().
		// Quarantine the convicted endpoint first so retries cannot
		// fail back over onto the fork, then terminate.
		if rc, ok := c.conn.(*transport.ResilientClient); ok {
			rc.Quarantine(rc.EndpointName())
		}
		return core.Detect(core.WitnessDivergence, c.id, c.lctrLocked(), err)
	}
}

// VerifyWitnesses runs the witness cross-check immediately. Protocol
// III clients have no sync rounds to piggyback on, so callers invoke
// this at the cadence they want (per batch, per epoch). Divergence is
// recorded as a terminal detection like any other.
func (c *Client) VerifyWitnesses() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failed != nil {
		return c.failed
	}
	if err := c.verifyWitnessLocked(); err != nil {
		c.recordFailure(err)
		return err
	}
	return nil
}

func (c *Client) needsSyncLocked() bool {
	switch c.proto {
	case server.P1:
		return c.u1.NeedsSync()
	case server.P2:
		return c.u2.NeedsSync()
	}
	return false
}

// recvLoop processes broadcast traffic: sync announcements and
// reports.
func (c *Client) recvLoop() {
	defer c.wg.Done()
	for msg := range c.bc.Recv() {
		switch p := msg.Payload.(type) {
		case *core.SyncRequest:
			c.onSyncRequest(roundKey{p.From, p.Round})
		case *reportMsg:
			c.onReport(p)
		case *epochReportMsg:
			// Straight to the auditor, never touching c.mu: epoch
			// assembly must make progress while a Do holds the client
			// lock across a server call.
			if c.aud != nil {
				//lint:ignore verifyflow the hub is the paper's assumed user-only reliable channel (Theorem 3.1 external communication; broadcast package doc) — the untrusted server never sees it, and the auditor's closure check is itself the verifier these reports feed
				c.aud.SubmitReport(p.Report)
			}
		}
	}
	// Channel closed: wake any waiter so Close can finish.
	c.mu.Lock()
	c.closed = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

func (c *Client) onSyncRequest(key roundKey) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.roundDoneLocked(key) {
		return
	}
	c.publishOwnReportLocked(key)
}

// roundDoneLocked reports whether key names a round this client has
// already completed. Reconnecting broadcast members can observe stale
// sync traffic (a replayed announcement, a straggler report from a
// slow peer); reopening a finished round would publish a *fresh*
// register snapshot into it and manufacture a false mismatch.
func (c *Client) roundDoneLocked(key roundKey) bool {
	return key.round <= c.done[key.initiator]
}

// publishOwnReportLocked snapshots this user's registers for the round
// and broadcasts them (once).
func (c *Client) publishOwnReportLocked(key roundKey) {
	rs := c.roundLocked(key)
	if rs.reported {
		return
	}
	rs.reported = true
	m := &reportMsg{Initiator: key.initiator, Round: key.round}
	switch c.proto {
	case server.P1:
		r := c.u1.SyncReport()
		m.ReportI = &r
	case server.P2:
		r := c.u2.SyncReport()
		m.ReportII = &r
	}
	// Publish outside the lock is unnecessary: the hub never blocks
	// (deep buffers) and ordering benefits from staying inside.
	if err := c.bc.Publish(broadcast.Message{From: c.id, Payload: m}); err != nil {
		c.recordFailure(fmt.Errorf("driver: publish sync report: %w", err))
	}
}

func (c *Client) roundLocked(key roundKey) *roundState {
	rs, ok := c.rounds[key]
	if !ok {
		rs = &roundState{
			reportsI:  make(map[sig.UserID]core.SyncReportI),
			reportsII: make(map[sig.UserID]core.SyncReportII),
		}
		c.rounds[key] = rs
	}
	return rs
}

func (c *Client) onReport(m *reportMsg) {
	c.mu.Lock()
	defer c.mu.Unlock()
	key := roundKey{m.Initiator, m.Round}
	if c.roundDoneLocked(key) {
		return
	}
	rs := c.roundLocked(key)
	// Defensive: if a report for an unseen round arrives first (cannot
	// happen with a FIFO hub), contribute our own as well.
	c.publishOwnReportLocked(key)

	switch {
	case m.ReportI != nil:
		rs.reportsI[m.ReportI.User] = *m.ReportI
	case m.ReportII != nil:
		rs.reportsII[m.ReportII.User] = *m.ReportII
	}
	if len(rs.reportsI) < c.nUsers && len(rs.reportsII) < c.nUsers {
		return
	}
	// Round complete: evaluate and release waiters.
	var err error
	switch c.proto {
	case server.P1:
		reports := make([]core.SyncReportI, 0, c.nUsers)
		for _, r := range rs.reportsI {
			reports = append(reports, r)
		}
		err = c.u1.CompleteSync(reports)
	case server.P2:
		reports := make([]core.SyncReportII, 0, c.nUsers)
		for _, r := range rs.reportsII {
			reports = append(reports, r)
		}
		err = c.u2.CompleteSync(reports)
	}
	if err == nil {
		// The registers agreed; now make sure the roots we verified
		// along the way are the ones the witnesses co-signed. Only then
		// is the round acknowledged and the barrier released.
		err = c.verifyWitnessLocked()
	}
	delete(c.rounds, key)
	if key.round > c.done[key.initiator] {
		c.done[key.initiator] = key.round
	}
	if err != nil {
		c.recordFailure(err)
	}
	c.cond.Broadcast()
}

// recordFailure pins the first failure; detection is terminal (the
// paper's users "terminate and report an error").
func (c *Client) recordFailure(err error) {
	if c.failed == nil {
		c.failed = err
		c.cond.Broadcast()
	}
}

// WaitIdle blocks until no synchronization round is in flight (or a
// failure is recorded). Tests and examples use it to observe sync
// outcomes deterministically. In epoch-audit mode there are no rounds;
// idle means the audit queue has drained.
func (c *Client) WaitIdle(timeout time.Duration) error {
	if c.aud != nil {
		return c.WaitAudited(timeout)
	}
	deadline := time.Now().Add(timeout)
	poll := backoff.Poll(5 * time.Millisecond)
	c.mu.Lock()
	defer c.mu.Unlock()
	for len(c.rounds) > 0 && c.failed == nil && !c.closed {
		if time.Now().After(deadline) {
			return errors.New("driver: WaitIdle timeout")
		}
		// Poor man's timed wait: poll with the cond.
		c.mu.Unlock()
		poll.Sleep()
		c.mu.Lock()
	}
	return c.failed
}

// Push implements cvs.ContentTransfer over the server connection.
func (c *Client) Push(path string, rev uint64, content []byte) error {
	resp, err := c.conn.Call(&core.PushContentRequest{Path: path, Rev: rev, Content: content})
	if err != nil {
		return err
	}
	if _, ok := resp.(*core.OKResponse); !ok {
		return fmt.Errorf("driver: push returned %T", resp)
	}
	return nil
}

// Fetch implements cvs.ContentTransfer over the server connection.
func (c *Client) Fetch(path string, rev uint64, hash digest.Digest) ([]byte, error) {
	resp, err := c.conn.Call(&core.FetchContentRequest{Path: path, Rev: rev, Hash: hash})
	if err != nil {
		return nil, err
	}
	cr, ok := resp.(*core.ContentResponse)
	if !ok {
		return nil, fmt.Errorf("driver: fetch returned %T", resp)
	}
	// The blob bytes are the server's word alone until they hash to the
	// authenticated revision hash; verify before handing them up (the
	// cvs layer re-checks, but this transfer must not be the one path
	// that delivers unverified bytes).
	if err := rcs.CheckContent(cr.Content, hash); err != nil {
		return nil, err
	}
	return cr.Content, nil
}
