package driver

import (
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"trustedcvs/internal/audit"
	"trustedcvs/internal/broadcast"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/fault"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/wire"
)

// TestOverloadShedNotJournaled pins the server half of "a refusal is
// atomic": an op whose propagated deadline expires before dispatch is
// refused with the typed error BEFORE the protocol server or its op
// journal see it. The journal replay after the run must contain
// exactly the delivered ops — a phantom entry for a refused op would
// resurrect state no client was ever answered for.
func TestOverloadShedNotJournaled(t *testing.T) {
	dir := t.TempDir()
	j, err := server.OpenOpJournal(dir, nil, 4)
	if err != nil {
		t.Fatalf("open journal: %v", err)
	}
	db := vdb.New(0)
	hs := server.WithOpJournal(server.NewP2(db), j)
	inner := NewHandler(hs, cvs.NewStore())
	// SyncRequests park on the release gate, so one of them can pin the
	// single admission slot for as long as the test needs.
	release := make(chan struct{})
	handler := func(req any) (any, error) {
		if _, ok := req.(*core.SyncRequest); ok {
			<-release
		}
		return inner(req)
	}
	adm := transport.NewAdmission(transport.AdmissionOptions{MinLimit: 1, MaxLimit: 1, QueueDepth: 4})
	ts, err := transport.ListenOpts("127.0.0.1:0", handler, transport.Options{
		IdleTimeout: -1, MaxConcurrent: 1,
		Admission: adm,
		Classify:  Classify,
		// The decorated chain: deadline refusal in front of the
		// journal-recording handler, as tcvs-server arms it.
		HandlerDeadline: WrapDeadline(handler),
	})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ts.Close()
	dial := func() *wire.Conn {
		nc, err := net.Dial("tcp", ts.Addr())
		if err != nil {
			t.Fatalf("dial: %v", err)
		}
		t.Cleanup(func() { nc.Close() })
		return wire.NewConn(nc)
	}
	wc := dial()

	// Pin the slot with a gated background request on its own conn.
	blocker := dial()
	bdone := make(chan struct{})
	go func() {
		defer close(bdone)
		blocker.Call(&core.SyncRequest{From: sig.UserID(99)})
	}()
	for adm.Stats().Inflight != 1 {
		time.Sleep(time.Millisecond)
	}

	op := func(i int) *core.OpRequest {
		return &core.OpRequest{User: 0, Op: &vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}}}
	}
	// With the slot pinned, a short-budget op parks in the admission
	// queue until its propagated deadline lapses: the typed refusal must
	// come back with nothing applied and nothing journaled.
	_, err = wc.CallBudget(op(0), 5*time.Millisecond)
	if !errors.Is(err, wire.ErrDeadlineExceeded) {
		t.Fatalf("expired op got %v, want typed wire.ErrDeadlineExceeded", err)
	}
	if got := db.Ctr(); got != 0 {
		t.Fatalf("refused op advanced the counter to %d — not atomic", got)
	}
	_, err = wc.CallBudget(op(2), 5*time.Millisecond)
	if !errors.Is(err, wire.ErrDeadlineExceeded) {
		t.Fatalf("second expired op got %v", err)
	}
	close(release)
	<-bdone
	// A live op applies and journals normally alongside the refusals.
	if _, err := wc.CallBudget(op(1), 5*time.Second); err != nil {
		t.Fatalf("live op: %v", err)
	}
	if got := db.Ctr(); got != 1 {
		t.Fatalf("counter = %d, want exactly the one delivered op", got)
	}
	if err := j.Err(); err != nil {
		t.Fatalf("journal degraded during refusals: %v", err)
	}
	if err := j.Close(); err != nil {
		t.Fatalf("close journal: %v", err)
	}
	// Replay over a fresh server: exactly one op comes back.
	db2 := vdb.New(0)
	applied, pushes, err := server.ReplayOpJournal(dir, server.NewP2(db2), cvs.NewStore())
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if applied != 1 || pushes != 0 || db2.Ctr() != 1 {
		t.Fatalf("replay applied %d ops / %d pushes (ctr %d), want exactly the 1 delivered op",
			applied, pushes, db2.Ctr())
	}
}

// refusingCaller wraps a transport.Caller, refusing chosen OpRequests
// with the server's typed deadline error — the client-side view of a
// server that shed the op before touching state.
type refusingCaller struct {
	transport.Caller
	refuse func(*core.OpRequest) bool
}

// errRemoteDeadline mimics the wire client's decoding of a server-side
// typed refusal: it is both ErrRemote (delivered verdict) and
// ErrDeadlineExceeded (the typed cause).
type errRemoteDeadline struct{}

func (errRemoteDeadline) Error() string { return "wire: remote error: op abandoned: deadline exceeded" }
func (errRemoteDeadline) Is(target error) bool {
	return target == wire.ErrRemote || target == wire.ErrDeadlineExceeded
}

func (c *refusingCaller) Call(req any) (any, error) {
	if r, ok := req.(*core.OpRequest); ok && c.refuse(r) {
		return nil, errRemoteDeadline{}
	}
	return c.Caller.Call(req)
}

// TestOverloadShedCreatesNoObligations pins the client half of the
// atomic-refusal contract: an op the server refuses with the typed
// deadline error produces NO audit obligation — the epoch auditor's
// Submitted count does not move, the user's register state is
// untouched (the next op reuses the slot), and the final closure check
// passes as if the refused op had never been issued.
func TestOverloadShedCreatesNoObligations(t *testing.T) {
	const epochLen = 4
	db := vdb.New(0)
	ts, err := transport.ListenOpts("127.0.0.1:0", NewHandler(server.NewP2(db), cvs.NewStore()),
		transport.Options{IdleTimeout: -1})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ts.Close()
	hub, err := broadcast.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatalf("hub: %v", err)
	}
	defer hub.Close()
	conn, err := transport.Dial(ts.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	var refused atomic.Int64
	rc := &refusingCaller{Caller: conn, refuse: func(r *core.OpRequest) bool {
		// Refuse every third op at the caller, before it reaches the
		// server — the same cut a pre-state shed makes.
		return refused.Load() < 3 && time.Now().UnixNano()%3 == 0
	}}
	u := proto2.NewUser(sig.UserID(0), db.Root(), 1<<62)
	dc, err := NewP2Epoch(u, rc, broadcast.DialHubResume(hub.Addr()), 1, epochLen, 0)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer dc.Close()

	delivered := 0
	for i := 0; delivered < 3*epochLen; i++ {
		_, err := dc.Do(&vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}})
		if err == nil {
			delivered++
			continue
		}
		if !errors.Is(err, wire.ErrDeadlineExceeded) {
			t.Fatalf("op %d: %v", i, err)
		}
		refused.Add(1)
		// A refused op must leave the client reusable: Submitted may
		// not have moved for it.
		if st := dc.Audit().Stats(); st.Submitted != uint64(delivered) {
			t.Fatalf("refused op left an obligation: submitted %d after %d deliveries", st.Submitted, delivered)
		}
	}
	if refused.Load() == 0 {
		t.Fatal("no op was refused; the test proved nothing")
	}
	dc.Seal()
	if err := dc.WaitSealed(30 * time.Second); err != nil {
		t.Fatalf("closure failed after refusals: %v", err)
	}
	st := dc.Audit().Stats()
	// Obligations: one per delivered op plus the seal; every refused op
	// absent; all drained.
	if st.Submitted != uint64(delivered)+1 {
		t.Fatalf("submitted = %d, want %d delivered + 1 seal", st.Submitted, delivered)
	}
	if st.Audited != st.Submitted {
		t.Fatalf("dangling obligations: %d/%d audited", st.Audited, st.Submitted)
	}
	if got := db.Ctr(); got != uint64(delivered) {
		t.Fatalf("server counter = %d, want %d delivered ops", got, delivered)
	}
}

// TestShedDegradeToSyncSticky runs the two degradations together: a
// client whose audit journal disk died (sticky degrade-to-sync, every
// submit verified inline) keeps operating — and stays degraded — while
// the server is actively shedding a background flood around it. User
// ops outrank the flood, the degraded auditor's inline verification
// never blocks on shed traffic, and the final closure is clean.
func TestShedDegradeToSyncSticky(t *testing.T) {
	const epochLen = 4
	db := vdb.New(0)
	inner := NewHandler(server.NewP2(db), cvs.NewStore())
	// A couple of milliseconds of synthetic service per request makes
	// the flood actually contend for the single admission slot.
	handler := func(req any) (any, error) {
		resp, err := inner(req)
		time.Sleep(2 * time.Millisecond)
		return resp, err
	}
	adm := transport.NewAdmission(transport.AdmissionOptions{MinLimit: 1, MaxLimit: 1, QueueDepth: 4})
	ts, err := transport.ListenOpts("127.0.0.1:0", handler, transport.Options{
		IdleTimeout: -1, MaxConcurrent: 1,
		Admission: adm, Classify: Classify, HandlerDeadline: WrapDeadline(handler),
	})
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ts.Close()
	hub, err := broadcast.ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatalf("hub: %v", err)
	}
	defer hub.Close()

	// Background flood: 8 connections hammering the bottom class with
	// short budgets, far more arrivals than one 2ms slot serves.
	stop := make(chan struct{})
	var fwg sync.WaitGroup
	for i := 0; i < 8; i++ {
		fwg.Add(1)
		go func(i int) {
			defer fwg.Done()
			nc, err := net.Dial("tcp", ts.Addr())
			if err != nil {
				return
			}
			defer nc.Close()
			wc := wire.NewConn(nc)
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, err := wc.CallBudget(&core.SyncRequest{From: sig.UserID(100 + i)}, 50*time.Millisecond)
				if err != nil && !errors.Is(err, wire.ErrRemote) &&
					!errors.Is(err, wire.ErrOverloaded) && !errors.Is(err, wire.ErrDeadlineExceeded) {
					return // transport fault (shutdown)
				}
			}
		}(i)
	}
	defer func() { close(stop); fwg.Wait() }()

	// The verified client's journal dies on its 2nd fsync: sticky
	// degrade-to-sync mid-workload, with the flood already raging.
	conn, err := transport.Dial(ts.Addr())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	ffs := &fault.FaultyFS{CrashAtSync: 2}
	u := proto2.NewUser(sig.UserID(0), db.Root(), 1<<62)
	dc, err := NewP2EpochWAL(u, conn, broadcast.DialHubResume(hub.Addr()), 1, epochLen, 0, t.TempDir(), ffs)
	if err != nil {
		t.Fatalf("client: %v", err)
	}
	defer dc.Close()

	for i := 0; i < 4*epochLen; i++ {
		if _, err := dc.Do(&vdb.WriteOp{Puts: []vdb.KV{{Key: fmt.Sprintf("k%d", i), Val: []byte("v")}}}); err != nil {
			t.Fatalf("op %d under flood: %v", i, err)
		}
	}
	st := dc.Audit().Stats()
	if st.Durability != audit.DurabilityDegradedSync {
		t.Fatalf("durability = %v, want sticky degraded-sync", st.Durability)
	}
	if st.Audited != st.Submitted {
		t.Fatalf("degraded mode left %d records unverified under shedding", st.Submitted-st.Audited)
	}
	dc.Seal()
	if err := dc.WaitSealed(30 * time.Second); err != nil {
		t.Fatalf("degraded closure under shedding: %v", err)
	}
	// Still degraded after the drain — the state is sticky, not
	// load-dependent.
	if st := dc.Audit().Stats(); st.Durability != audit.DurabilityDegradedSync {
		t.Fatalf("durability flipped back to %v under load", st.Durability)
	}
	ast := adm.Stats()
	var refusals uint64
	for c := transport.Priority(0); c < transport.NumPriorities; c++ {
		refusals += ast.Shed[c] + ast.Expired[c]
	}
	if refusals == 0 {
		t.Fatal("the flood was never shed; the test proved nothing about concurrent shedding")
	}
	if ast.Shed[transport.PriorityUser]+ast.Expired[transport.PriorityUser] != 0 {
		t.Fatalf("user-class ops were refused (%d shed, %d expired) despite priority",
			ast.Shed[transport.PriorityUser], ast.Expired[transport.PriorityUser])
	}
}
