package merkle

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

// TestQuickAgainstMap drives random operation sequences against a
// reference map and checks full agreement plus structural invariants —
// the core property test for the B+-tree.
func TestQuickAgainstMap(t *testing.T) {
	f := func(seed int64, orderPick uint8, nOps uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		order := []int{3, 4, 5, 8, 16}[int(orderPick)%5]
		tr := New(order)
		ref := map[string]string{}
		ops := int(nOps)%400 + 1
		for i := 0; i < ops; i++ {
			k := fmt.Sprintf("k%03d", rng.Intn(120))
			switch rng.Intn(3) {
			case 0, 1:
				v := fmt.Sprintf("v%d", rng.Int())
				tr = tr.Put(k, []byte(v))
				ref[k] = v
			case 2:
				var found bool
				tr, found = tr.Delete(k)
				_, want := ref[k]
				if found != want {
					t.Logf("delete(%s): found=%v want=%v", k, found, want)
					return false
				}
				delete(ref, k)
			}
		}
		if tr.Len() != len(ref) {
			t.Logf("Len %d != ref %d", tr.Len(), len(ref))
			return false
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Log(err)
			return false
		}
		for k, v := range ref {
			got, ok := tr.Get(k)
			if !ok || string(got) != v {
				t.Logf("Get(%s) = %q,%v want %q", k, got, ok, v)
				return false
			}
		}
		var keys []string
		for k := range ref {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		got := tr.Keys()
		if len(got) != len(keys) {
			t.Logf("Keys len %d != %d", len(got), len(keys))
			return false
		}
		for i := range keys {
			if got[i] != keys[i] {
				t.Logf("Keys[%d] = %s want %s", i, got[i], keys[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickVOReplay checks, for random trees and random single-op
// batches, that VO replay reconstructs the server's post-state root —
// the soundness property every protocol relies on.
func TestQuickVOReplay(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		order := []int{3, 4, 8}[rng.Intn(3)]
		tr := New(order)
		for i, n := 0, rng.Intn(250); i < n; i++ {
			tr = tr.Put(fmt.Sprintf("k%03d", rng.Intn(300)), []byte{byte(i)})
		}
		oldRoot := tr.RootDigest()
		k := fmt.Sprintf("k%03d", rng.Intn(300))
		del := rng.Intn(2) == 0

		rec := tr.Record()
		if del {
			if _, err := rec.Delete(k); err != nil {
				t.Log(err)
				return false
			}
		} else if err := rec.Put(k, []byte("new")); err != nil {
			t.Log(err)
			return false
		}
		want := rec.Tree().RootDigest()
		got, err := rec.VO().Replay(oldRoot, func(pt *Tree) (*Tree, error) {
			if del {
				pt, _, err := pt.DeleteErr(k)
				return pt, err
			}
			return pt.PutErr(k, []byte("new"))
		})
		if err != nil {
			t.Log(err)
			return false
		}
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDigestBindsContent: two trees built from different reference
// contents must (overwhelmingly) have different root digests, and equal
// contents built by the same op sequence must agree.
func TestQuickDigestBindsContent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func(extra bool) *Tree {
			tr := New(4)
			for i := 0; i < 40; i++ {
				tr = tr.Put(fmt.Sprintf("k%02d", i), []byte{byte(i)})
			}
			if extra {
				tr = tr.Put(fmt.Sprintf("k%02d", rng.Intn(40)), []byte("flip"))
			}
			return tr
		}
		return build(false).RootDigest() == build(false).RootDigest() &&
			build(false).RootDigest() != build(true).RootDigest()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
