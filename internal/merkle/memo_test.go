package merkle

import (
	"fmt"
	"sync"
	"testing"
)

// TestDigestMemoizedAcrossOps pins the memoization property the
// pipelined server relies on: after one full root computation, a
// single-key update only rehashes the root-to-leaf path it rewrote —
// every unchanged subtree serves its digest from the cache.
func TestDigestMemoizedAcrossOps(t *testing.T) {
	tr := New(0)
	const n = 4096
	for i := 0; i < n; i++ {
		tr = tr.Put(fmt.Sprintf("key-%06d", i), []byte("v"))
	}
	tr.RootDigest() // warm every node's cache
	warm := hashCount.Load()

	for i := 0; i < 10; i++ {
		tr = tr.Put(fmt.Sprintf("key-%06d", i*37), []byte("new"))
		tr.RootDigest()
	}
	rehashed := hashCount.Load() - warm

	// Each update rewrites one root-to-leaf path: depth is ~log_m(n)
	// (4 levels here, order 8); allow slack for splits. 4096 records
	// span >500 nodes, so memoization failure would blow way past this.
	const maxPerOp = 12
	if rehashed > 10*maxPerOp {
		t.Fatalf("10 single-key updates rehashed %d nodes; memoization across ops is broken", rehashed)
	}

	// Cached digests must also be safe to read concurrently while
	// sibling goroutines force computation on shared cold nodes (the
	// post-lock VO build does exactly this). Run with -race.
	cold := tr
	for i := 0; i < 32; i++ {
		cold = cold.Put(fmt.Sprintf("key-%06d", i*101), []byte("cold"))
	}
	var wg sync.WaitGroup
	got := make([]string, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			got[g] = cold.RootDigest().Short() // races to fill the cold caches
		}(g)
	}
	wg.Wait()
	for g := 1; g < 8; g++ {
		if got[g] != got[0] {
			t.Fatalf("concurrent root digest mismatch: %s vs %s", got[g], got[0])
		}
	}
}
