package merkle

import "fmt"

// Delete returns a new tree without key, and whether the key was
// present. The receiver is unchanged.
func (t *Tree) Delete(key string) (*Tree, bool) {
	nt, found, err := t.DeleteErr(key)
	if err != nil {
		panic("merkle: Delete on partial tree; use DeleteErr: " + err.Error())
	}
	return nt, found
}

// DeleteErr is Delete for trees that may contain pruned nodes.
func (t *Tree) DeleteErr(key string) (*Tree, bool, error) {
	c := &ctx{order: t.order}
	return t.deleteCtx(c, key)
}

func (t *Tree) deleteCtx(c *ctx, key string) (*Tree, bool, error) {
	if t.root == nil {
		return t, false, nil
	}
	nr, found, err := c.del(t.root, key)
	if err != nil {
		return nil, false, err
	}
	if !found {
		return t, false, nil
	}
	// Collapse a root that lost all its keys.
	if !nr.leaf && len(nr.keys) == 0 {
		nr = nr.kids[0]
	}
	if nr.leaf && len(nr.keys) == 0 {
		nr = nil
	}
	return &Tree{order: t.order, root: nr, size: t.size - 1}, true, nil
}

// del removes key from the subtree rooted at n. The returned node may
// underflow (fewer than minKeys keys); the caller rebalances.
func (c *ctx) del(n *node, key string) (nn *node, found bool, err error) {
	c.visit(n)
	if n.pruned {
		return nil, false, fmt.Errorf("%w (delete %q)", ErrPruned, key)
	}
	if n.leaf {
		i := searchKeys(n.keys, key)
		if i >= len(n.keys) || n.keys[i] != key {
			return n, false, nil
		}
		nn = n.clone()
		nn.keys = append(nn.keys[:i], nn.keys[i+1:]...)
		nn.vals = append(nn.vals[:i], nn.vals[i+1:]...)
		return nn, true, nil
	}
	idx := childIndex(n, key)
	nk, found, err := c.del(n.kids[idx], key)
	if err != nil {
		return nil, false, err
	}
	if !found {
		return n, false, nil
	}
	nn = n.clone()
	nn.kids[idx] = nk
	if len(nk.keys) < c.order/2 {
		if err := c.rebalance(nn, idx); err != nil {
			return nil, false, err
		}
	}
	return nn, true, nil
}

// rebalance restores the minimum-occupancy invariant for nn.kids[idx].
// The policy is fixed and deterministic — borrow from the left sibling,
// else borrow from the right, else merge with the left, else merge with
// the right — so that a verifier replaying the operation on a pruned
// tree touches exactly the nodes the server's recorder saw.
func (c *ctx) rebalance(nn *node, idx int) error {
	child := nn.kids[idx]
	min := c.order / 2

	var left, right *node
	if idx > 0 {
		left = nn.kids[idx-1]
		c.visit(left)
		if left.pruned {
			return fmt.Errorf("%w (rebalance: left sibling)", ErrPruned)
		}
	}
	if idx < len(nn.kids)-1 {
		right = nn.kids[idx+1]
		c.visit(right)
		if right.pruned {
			return fmt.Errorf("%w (rebalance: right sibling)", ErrPruned)
		}
	}

	switch {
	case left != nil && len(left.keys) > min:
		c.borrowLeft(nn, idx, left, child)
	case right != nil && len(right.keys) > min:
		c.borrowRight(nn, idx, child, right)
	case left != nil:
		c.merge(nn, idx-1, left, child)
	case right != nil:
		c.merge(nn, idx, child, right)
	default:
		// A non-root internal node always has at least one sibling.
		panic("merkle: rebalance with no siblings")
	}
	return nil
}

// borrowLeft moves the left sibling's last entry into child.
func (c *ctx) borrowLeft(parent *node, idx int, left, child *node) {
	nl := left.clone()
	nc := child.clone()
	if child.leaf {
		last := len(nl.keys) - 1
		nc.keys = insertString(nc.keys, 0, nl.keys[last])
		nc.vals = insertBytes(nc.vals, 0, nl.vals[last])
		nl.keys = nl.keys[:last]
		nl.vals = nl.vals[:last]
		parent.keys[idx-1] = nc.keys[0]
	} else {
		// Rotate through the parent separator.
		last := len(nl.keys) - 1
		nc.keys = insertString(nc.keys, 0, parent.keys[idx-1])
		nc.kids = insertNode(nc.kids, 0, nl.kids[last+1])
		parent.keys[idx-1] = nl.keys[last]
		nl.keys = nl.keys[:last]
		nl.kids = nl.kids[:last+1]
	}
	parent.kids[idx-1] = nl
	parent.kids[idx] = nc
}

// borrowRight moves the right sibling's first entry into child.
func (c *ctx) borrowRight(parent *node, idx int, child, right *node) {
	nr := right.clone()
	nc := child.clone()
	if child.leaf {
		nc.keys = append(nc.keys, nr.keys[0])
		nc.vals = append(nc.vals, nr.vals[0])
		nr.keys = nr.keys[1:]
		nr.vals = nr.vals[1:]
		parent.keys[idx] = nr.keys[0]
	} else {
		nc.keys = append(nc.keys, parent.keys[idx])
		nc.kids = append(nc.kids, nr.kids[0])
		parent.keys[idx] = nr.keys[0]
		nr.keys = nr.keys[1:]
		nr.kids = nr.kids[1:]
	}
	parent.kids[idx] = nc
	parent.kids[idx+1] = nr
}

// merge combines parent.kids[sepIdx] and parent.kids[sepIdx+1] into one
// node, removing the separator parent.keys[sepIdx].
func (c *ctx) merge(parent *node, sepIdx int, a, b *node) {
	var m *node
	if a.leaf {
		m = &node{
			leaf: true,
			keys: append(append([]string(nil), a.keys...), b.keys...),
			vals: append(append([][]byte(nil), a.vals...), b.vals...),
		}
	} else {
		keys := append([]string(nil), a.keys...)
		keys = append(keys, parent.keys[sepIdx])
		keys = append(keys, b.keys...)
		m = &node{
			keys: keys,
			kids: append(append([]*node(nil), a.kids...), b.kids...),
		}
	}
	parent.keys = append(parent.keys[:sepIdx], parent.keys[sepIdx+1:]...)
	parent.kids = append(parent.kids[:sepIdx], parent.kids[sepIdx+1:]...)
	parent.kids[sepIdx] = m
}
