package merkle

import (
	"fmt"
	"math/rand"
	"testing"
)

func key(i int) string { return fmt.Sprintf("key-%06d", i) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%d", i)) }

func TestEmptyTree(t *testing.T) {
	tr := New(0)
	if tr.Order() != DefaultOrder {
		t.Fatalf("Order() = %d, want %d", tr.Order(), DefaultOrder)
	}
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get("x"); ok {
		t.Fatal("Get on empty tree returned ok")
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	nt, found := tr.Delete("x")
	if found || nt.Len() != 0 {
		t.Fatal("Delete on empty tree should be a no-op")
	}
}

func TestNewPanicsOnTinyOrder(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(2) should panic")
		}
	}()
	New(2)
}

func TestPutGet(t *testing.T) {
	tr := New(4)
	const n = 100
	for i := 0; i < n; i++ {
		tr = tr.Put(key(i), val(i))
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after put %d: %v", i, err)
		}
	}
	if tr.Len() != n {
		t.Fatalf("Len() = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		v, ok := tr.Get(key(i))
		if !ok || string(v) != string(val(i)) {
			t.Fatalf("Get(%s) = %q, %v", key(i), v, ok)
		}
	}
	if _, ok := tr.Get("missing"); ok {
		t.Fatal("Get(missing) returned ok")
	}
}

func TestOverwrite(t *testing.T) {
	tr := New(4).Put("a", []byte("1"))
	tr2 := tr.Put("a", []byte("2"))
	if tr2.Len() != 1 {
		t.Fatalf("overwrite changed Len to %d", tr2.Len())
	}
	if v, _ := tr2.Get("a"); string(v) != "2" {
		t.Fatalf("overwrite not applied: %q", v)
	}
	if tr.RootDigest() == tr2.RootDigest() {
		t.Fatal("overwrite must change the root digest")
	}
}

func TestPersistence(t *testing.T) {
	tr := New(4)
	for i := 0; i < 50; i++ {
		tr = tr.Put(key(i), val(i))
	}
	before := tr.RootDigest()
	tr2 := tr.Put(key(7), []byte("changed"))
	tr3, found := tr.Delete(key(3))
	if !found {
		t.Fatal("Delete(key 3) not found")
	}
	// The original version must be completely unaffected.
	if tr.RootDigest() != before {
		t.Fatal("mutation through Put leaked into the old version")
	}
	if v, _ := tr.Get(key(7)); string(v) != string(val(7)) {
		t.Fatal("old version sees new value")
	}
	if _, ok := tr.Get(key(3)); !ok {
		t.Fatal("old version lost a deleted key")
	}
	if v, _ := tr2.Get(key(7)); string(v) != "changed" {
		t.Fatal("new version missing its own write")
	}
	if _, ok := tr3.Get(key(3)); ok {
		t.Fatal("deleted key still visible in new version")
	}
}

func TestDeleteAll(t *testing.T) {
	tr := New(3)
	const n = 200
	for i := 0; i < n; i++ {
		tr = tr.Put(key(i), val(i))
	}
	// Delete in a mixed order to exercise borrows and merges on both
	// sides.
	order := rand.New(rand.NewSource(42)).Perm(n)
	for step, i := range order {
		var found bool
		tr, found = tr.Delete(key(i))
		if !found {
			t.Fatalf("Delete(%s) not found", key(i))
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("after delete step %d: %v", step, err)
		}
	}
	if tr.Len() != 0 {
		t.Fatalf("Len() = %d after deleting all", tr.Len())
	}
	if tr.RootDigest() != New(3).RootDigest() {
		t.Fatal("emptied tree must hash like a fresh empty tree")
	}
}

func TestDeleteMissing(t *testing.T) {
	tr := New(4).Put("a", []byte("1"))
	nt, found := tr.Delete("zz")
	if found {
		t.Fatal("Delete of missing key reported found")
	}
	if nt.RootDigest() != tr.RootDigest() {
		t.Fatal("Delete of missing key changed the tree")
	}
}

func TestRange(t *testing.T) {
	tr := New(4)
	for i := 0; i < 100; i++ {
		tr = tr.Put(key(i), val(i))
	}
	var got []string
	err := tr.Range(key(10), key(20), func(k string, v []byte) bool {
		got = append(got, k)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 10 {
		t.Fatalf("range [10,20) returned %d keys: %v", len(got), got)
	}
	for i, k := range got {
		if k != key(10+i) {
			t.Fatalf("range out of order at %d: %s", i, k)
		}
	}
	// Unbounded scan.
	count := 0
	if err := tr.Range("", "", func(string, []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 100 {
		t.Fatalf("full scan saw %d keys", count)
	}
	// Early termination.
	count = 0
	if err := tr.Range("", "", func(string, []byte) bool { count++; return count < 5 }); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Fatalf("early-terminated scan saw %d keys", count)
	}
}

func TestKeysSorted(t *testing.T) {
	tr := New(5)
	perm := rand.New(rand.NewSource(1)).Perm(64)
	for _, i := range perm {
		tr = tr.Put(key(i), val(i))
	}
	ks := tr.Keys()
	if len(ks) != 64 {
		t.Fatalf("Keys() returned %d keys", len(ks))
	}
	for i := 1; i < len(ks); i++ {
		if ks[i] <= ks[i-1] {
			t.Fatalf("Keys() not strictly sorted at %d", i)
		}
	}
}

func TestDigestDeterminism(t *testing.T) {
	build := func() *Tree {
		tr := New(4)
		for i := 0; i < 60; i++ {
			tr = tr.Put(key(i), val(i))
		}
		return tr
	}
	if build().RootDigest() != build().RootDigest() {
		t.Fatal("same operation sequence must produce the same root digest")
	}
}

func TestDigestChangesOnAnyMutation(t *testing.T) {
	tr := New(4)
	for i := 0; i < 30; i++ {
		tr = tr.Put(key(i), val(i))
	}
	seen := map[string]bool{tr.RootDigest().String(): true}
	for i := 0; i < 30; i++ {
		nt := tr.Put(key(i), []byte("mutated"))
		d := nt.RootDigest().String()
		if seen[d] {
			t.Fatalf("mutating key %d did not change the root digest", i)
		}
		seen[d] = true
	}
}

func TestHeightLogarithmic(t *testing.T) {
	tr := New(8)
	for i := 0; i < 10000; i++ {
		tr = tr.Put(key(i), val(i))
	}
	// With order 8, 10k records fit comfortably within height 6.
	if h := tr.Height(); h < 3 || h > 7 {
		t.Fatalf("Height() = %d for 10k records at order 8", h)
	}
}

func TestSequentialAndReverseInsert(t *testing.T) {
	for name, gen := range map[string]func(i int) int{
		"ascending":  func(i int) int { return i },
		"descending": func(i int) int { return 999 - i },
	} {
		tr := New(3)
		for i := 0; i < 1000; i++ {
			tr = tr.Put(key(gen(i)), val(gen(i)))
			if i%97 == 0 {
				if err := tr.CheckInvariants(); err != nil {
					t.Fatalf("%s at %d: %v", name, i, err)
				}
			}
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Len() != 1000 {
			t.Fatalf("%s: Len() = %d", name, tr.Len())
		}
	}
}
