package merkle

import "fmt"

// Put returns a new tree in which key maps to val, leaving the receiver
// unchanged. The value slice is stored as-is; callers must not mutate
// it afterwards (internal/vdb copies values at its boundary).
func (t *Tree) Put(key string, val []byte) *Tree {
	nt, err := t.PutErr(key, val)
	if err != nil {
		panic("merkle: Put on partial tree; use PutErr: " + err.Error())
	}
	return nt
}

// PutErr is Put for trees that may contain pruned nodes.
func (t *Tree) PutErr(key string, val []byte) (*Tree, error) {
	c := &ctx{order: t.order}
	return t.putCtx(c, key, val)
}

func (t *Tree) putCtx(c *ctx, key string, val []byte) (*Tree, error) {
	if t.root == nil {
		root := &node{leaf: true, keys: []string{key}, vals: [][]byte{val}}
		return &Tree{order: t.order, root: root, size: 1}, nil
	}
	nr, added, err := c.put(t.root, key, val)
	if err != nil {
		return nil, err
	}
	if len(nr.keys) > t.order {
		left, sep, right := split(nr)
		nr = &node{keys: []string{sep}, kids: []*node{left, right}}
	}
	size := t.size
	if added {
		size++
	}
	return &Tree{order: t.order, root: nr, size: size}, nil
}

// put inserts into the subtree rooted at n, returning a new node that
// may be overfull (up to order+1 keys); the caller splits it.
func (c *ctx) put(n *node, key string, val []byte) (nn *node, added bool, err error) {
	c.visit(n)
	if n.pruned {
		return nil, false, fmt.Errorf("%w (put %q)", ErrPruned, key)
	}
	if n.leaf {
		i := searchKeys(n.keys, key)
		nn = n.clone()
		if i < len(nn.keys) && nn.keys[i] == key {
			nn.vals[i] = val
			return nn, false, nil
		}
		nn.keys = insertString(nn.keys, i, key)
		nn.vals = insertBytes(nn.vals, i, val)
		return nn, true, nil
	}
	idx := childIndex(n, key)
	nk, added, err := c.put(n.kids[idx], key, val)
	if err != nil {
		return nil, false, err
	}
	nn = n.clone()
	nn.kids[idx] = nk
	if len(nk.keys) > c.order {
		left, sep, right := split(nk)
		nn.keys = insertString(nn.keys, idx, sep)
		nn.kids[idx] = left
		nn.kids = insertNode(nn.kids, idx+1, right)
	}
	return nn, added, nil
}

// split divides an overfull node into two nodes and the separator key
// to push into the parent. For a leaf the separator is a copy of the
// right node's first key (B+-tree style: all records stay in leaves);
// for an internal node the middle key moves up.
func split(n *node) (left *node, sep string, right *node) {
	mid := len(n.keys) / 2
	if n.leaf {
		left = &node{leaf: true, keys: n.keys[:mid:mid], vals: n.vals[:mid:mid]}
		right = &node{leaf: true, keys: n.keys[mid:], vals: n.vals[mid:]}
		return left, right.keys[0], right
	}
	left = &node{keys: n.keys[:mid:mid], kids: n.kids[: mid+1 : mid+1]}
	right = &node{keys: n.keys[mid+1:], kids: n.kids[mid+1:]}
	return left, n.keys[mid], right
}

func searchKeys(keys []string, key string) int {
	lo, hi := 0, len(keys)
	for lo < hi {
		m := (lo + hi) / 2
		if keys[m] < key {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

func insertString(s []string, i int, v string) []string {
	s = append(s, "")
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertBytes(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertNode(s []*node, i int, v *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}
