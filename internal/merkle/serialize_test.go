package merkle

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSnapshotRoundTrip(t *testing.T) {
	tr := New(4)
	for i := 0; i < 500; i++ {
		tr = tr.Put(key(i), val(i))
	}
	for i := 0; i < 100; i += 3 {
		tr, _ = tr.Delete(key(i))
	}
	want := tr.RootDigest()

	var buf bytes.Buffer
	n, err := tr.Snapshot().WriteTo(&buf)
	if err != nil || n != int64(buf.Len()) {
		t.Fatalf("WriteTo: n=%d err=%v", n, err)
	}
	snap, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	if got.RootDigest() != want {
		t.Fatal("restored root digest differs — restarted servers would break every client")
	}
	if got.Len() != tr.Len() {
		t.Fatalf("Len %d != %d", got.Len(), tr.Len())
	}
	if err := got.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// The restored tree must be fully functional.
	nt := got.Put("new-key", []byte("v"))
	if _, ok := nt.Get("new-key"); !ok {
		t.Fatal("restored tree not writable")
	}
}

func TestSnapshotEmptyTree(t *testing.T) {
	tr := New(0)
	got, err := Restore(tr.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	if got.RootDigest() != tr.RootDigest() || got.Len() != 0 {
		t.Fatal("empty snapshot round trip")
	}
}

func TestSnapshotIndependence(t *testing.T) {
	tr := New(4).Put("k", []byte("original"))
	snap := tr.Snapshot()
	// Mutating the snapshot must not affect a restore taken before.
	restored, err := Restore(snap)
	if err != nil {
		t.Fatal(err)
	}
	snap.Root.Vals[0][0] = 'X'
	if v, _ := restored.Get("k"); string(v) != "original" {
		t.Fatal("restore shares memory with the snapshot")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	cases := map[string]*Snapshot{
		"nil":        nil,
		"bad order":  {Order: 1},
		"bad size":   {Order: 4, Size: 5, Root: &SnapshotNode{Leaf: true, Keys: []string{"a"}, Vals: [][]byte{nil}}},
		"bad shape":  {Order: 4, Size: 0, Root: &SnapshotNode{Keys: []string{"a"}}},
		"nil child":  {Order: 4, Size: 0, Root: &SnapshotNode{Keys: []string{"a"}, Kids: []*SnapshotNode{nil, nil}}},
		"underfull":  {Order: 8, Size: 1, Root: &SnapshotNode{Keys: []string{"b"}, Kids: []*SnapshotNode{{Leaf: true}, {Leaf: true, Keys: []string{"b"}, Vals: [][]byte{nil}}}}},
		"unsorted":   {Order: 4, Size: 2, Root: &SnapshotNode{Leaf: true, Keys: []string{"b", "a"}, Vals: [][]byte{nil, nil}}},
		"duplicates": {Order: 4, Size: 2, Root: &SnapshotNode{Leaf: true, Keys: []string{"a", "a"}, Vals: [][]byte{nil, nil}}},
	}
	for name, s := range cases {
		if _, err := Restore(s); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestSnapshotPanicsOnPartialTree(t *testing.T) {
	tr := New(4)
	for i := 0; i < 50; i++ {
		tr = tr.Put(key(i), val(i))
	}
	rec := tr.Record()
	_, _, _ = rec.Get(key(1))
	pt, err := rec.VO().Tree()
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("snapshot of a partial tree must panic")
		}
	}()
	pt.Snapshot()
}

func TestQuickSnapshotPreservesDigest(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tr := New([]int{3, 4, 8, 16}[rng.Intn(4)])
		for i, n := 0, rng.Intn(300); i < n; i++ {
			k := key(rng.Intn(200))
			if rng.Intn(4) == 0 {
				tr, _ = tr.Delete(k)
			} else {
				tr = tr.Put(k, val(rng.Int()))
			}
		}
		restored, err := Restore(tr.Snapshot())
		if err != nil {
			t.Log(err)
			return false
		}
		return restored.RootDigest() == tr.RootDigest() && restored.Len() == tr.Len()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
