package merkle

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"testing"
)

// FuzzVOVerify decodes arbitrary bytes as a verification object — the
// one structure an honest client materializes straight off the
// untrusted wire — and exercises the whole verifier surface: Tree()
// structural validation, digest computation, lookups, ranges, and
// Replay. Properties: no panic on any input, and soundness — a VO
// whose materialized root digest equals the honest root can only
// answer lookups with the honest values.
func FuzzVOVerify(f *testing.F) {
	tr := New(4)
	rec := tr.Record()
	for i := 0; i < 64; i++ {
		if err := rec.Put(fmt.Sprintf("key-%03d", i), []byte{byte(i)}); err != nil {
			f.Fatal(err)
		}
	}
	full := rec.Tree()
	root := full.RootDigest()
	rec2 := full.Record()
	if _, _, err := rec2.Get("key-007"); err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(rec2.VO()); err != nil {
		f.Fatal(err)
	}
	seed := buf.Bytes()
	f.Add(append([]byte(nil), seed...))
	f.Add(append([]byte(nil), seed[:len(seed)/2]...))
	mut := append([]byte(nil), seed...)
	mut[len(mut)/2] ^= 0x20
	f.Add(mut)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, b []byte) {
		var v VO
		if err := gob.NewDecoder(bytes.NewReader(b)).Decode(&v); err != nil {
			return
		}
		tree, err := v.Tree()
		if err != nil {
			return
		}
		if tree.RootDigest() == root {
			val, ok, gerr := tree.GetErr("key-007")
			if gerr == nil && ok && !bytes.Equal(val, []byte{7}) {
				t.Fatalf("forged VO verified against the honest root with value %x", val)
			}
		}
		_, _, _ = tree.GetErr("key-031")
		_ = tree.Range("key-000", "key-063", func(string, []byte) bool { return true })
		_, _ = v.Replay(root, func(cur *Tree) (*Tree, error) { return cur, nil })
	})
}
