package merkle

import (
	"errors"
	"fmt"
	"sort"

	"trustedcvs/internal/digest"
)

// ErrRootMismatch is returned when a verification object's pre-state
// does not hash to the root digest the verifier knows. In protocol
// terms: the server answered from a database state other than the one
// the users last certified.
var ErrRootMismatch = errors.New("merkle: VO pre-state root digest mismatch")

// ErrMalformedVO is returned when a verification object received from
// the (untrusted) server is structurally invalid.
var ErrMalformedVO = errors.New("merkle: malformed verification object")

// A Recording wraps a tree and records every pre-state node touched by
// the operations performed through it. When the batch is done, VO()
// returns the pruned pre-state that lets a verifier replay the batch —
// the paper's verification object v(Q, D), generalized from single
// updates to operation batches.
type Recording struct {
	base *Tree
	cur  *Tree
	c    *ctx
}

// Record starts a recording session on t.
func (t *Tree) Record() *Recording {
	return &Recording{
		base: t,
		cur:  t,
		c:    &ctx{order: t.order, rec: make(map[*node]struct{})},
	}
}

// Get reads through the recording.
func (r *Recording) Get(key string) ([]byte, bool, error) {
	return r.c.get(r.cur.root, key)
}

// Range scans through the recording.
func (r *Recording) Range(lo, hi string, fn func(string, []byte) bool) error {
	_, err := r.c.rng(r.cur.root, lo, hi, fn)
	return err
}

// Put writes through the recording.
func (r *Recording) Put(key string, val []byte) error {
	nt, err := r.cur.putCtx(r.c, key, val)
	if err != nil {
		return err
	}
	r.cur = nt
	return nil
}

// Delete removes through the recording.
func (r *Recording) Delete(key string) (bool, error) {
	nt, found, err := r.cur.deleteCtx(r.c, key)
	if err != nil {
		return false, err
	}
	r.cur = nt
	return found, nil
}

// Tree returns the post-state after all recorded operations.
func (r *Recording) Tree() *Tree { return r.cur }

// VO returns the verification object for the recorded batch: the
// pre-state tree pruned down to the nodes the batch touched. Nodes
// created during the batch are never part of the pre-state and are
// reconstructed by the verifier's replay.
func (r *Recording) VO() *VO {
	return &VO{Order: r.base.order, Root: pruneNode(r.base.root, r.c.rec)}
}

func pruneNode(n *node, keep map[*node]struct{}) *VONode {
	if n == nil {
		return nil
	}
	if _, ok := keep[n]; !ok {
		return &VONode{Pruned: true, Digest: n.digest()}
	}
	// Tree nodes are copy-on-write: once published they are never
	// mutated, so the VO can alias their keys/vals slices directly. The
	// VO is encoded to the wire and discarded, never written through.
	vn := &VONode{Leaf: n.leaf, Keys: n.keys}
	if n.leaf {
		vn.Vals = n.vals
		return vn
	}
	vn.Kids = make([]*VONode, len(n.kids))
	for i, k := range n.kids {
		vn.Kids[i] = pruneNode(k, keep)
	}
	return vn
}

// VO is a wire-encodable verification object: a pruned copy of the
// server's pre-state tree. The paper's v(Q, D).
type VO struct {
	Order int
	Root  *VONode
}

// VONode is one node of a pruned tree. Exactly one of the two forms is
// populated: a pruned placeholder (Pruned + Digest) or an expanded node
// (Leaf/Keys/Vals/Kids).
type VONode struct {
	Pruned bool
	Digest digest.Digest
	Leaf   bool
	Keys   []string
	Vals   [][]byte
	Kids   []*VONode
}

// Tree materializes the VO into a partial tree. It validates structure
// (the VO comes from an untrusted server) so that replaying operations
// on the result can never panic: malformed shapes are rejected here.
func (v *VO) Tree() (*Tree, error) {
	if v.Order < MinOrder {
		return nil, fmt.Errorf("%w: order %d", ErrMalformedVO, v.Order)
	}
	root, err := buildNode(v.Root, v.Order)
	if err != nil {
		return nil, err
	}
	return &Tree{order: v.Order, root: root, size: -1}, nil
}

func buildNode(vn *VONode, order int) (*node, error) {
	if vn == nil {
		return nil, nil
	}
	if vn.Pruned {
		if vn.Digest.IsZero() {
			return nil, fmt.Errorf("%w: pruned node without digest", ErrMalformedVO)
		}
		if len(vn.Keys) > 0 || len(vn.Vals) > 0 || len(vn.Kids) > 0 {
			return nil, fmt.Errorf("%w: pruned node with content", ErrMalformedVO)
		}
		return withDigest(&node{pruned: true}, vn.Digest), nil
	}
	if !sort.StringsAreSorted(vn.Keys) {
		return nil, fmt.Errorf("%w: unsorted keys", ErrMalformedVO)
	}
	for i := 1; i < len(vn.Keys); i++ {
		if vn.Keys[i] == vn.Keys[i-1] {
			return nil, fmt.Errorf("%w: duplicate key %q", ErrMalformedVO, vn.Keys[i])
		}
	}
	if vn.Leaf {
		if len(vn.Vals) != len(vn.Keys) || len(vn.Kids) != 0 {
			return nil, fmt.Errorf("%w: bad leaf shape (%d keys, %d vals, %d kids)",
				ErrMalformedVO, len(vn.Keys), len(vn.Vals), len(vn.Kids))
		}
		if len(vn.Keys) > order {
			return nil, fmt.Errorf("%w: leaf with %d keys exceeds order %d", ErrMalformedVO, len(vn.Keys), order)
		}
		return &node{leaf: true, keys: vn.Keys, vals: vn.Vals}, nil
	}
	if len(vn.Kids) != len(vn.Keys)+1 || len(vn.Vals) != 0 {
		return nil, fmt.Errorf("%w: bad internal shape (%d keys, %d kids)",
			ErrMalformedVO, len(vn.Keys), len(vn.Kids))
	}
	if len(vn.Keys) > order {
		return nil, fmt.Errorf("%w: internal node with %d keys exceeds order %d", ErrMalformedVO, len(vn.Keys), order)
	}
	n := &node{keys: vn.Keys, kids: make([]*node, len(vn.Kids))}
	for i, kvn := range vn.Kids {
		if kvn == nil {
			return nil, fmt.Errorf("%w: nil child", ErrMalformedVO)
		}
		k, err := buildNode(kvn, order)
		if err != nil {
			return nil, err
		}
		n.kids[i] = k
	}
	return n, nil
}

// Replay is the verifier's side of Section 4.1: it materializes the VO,
// checks that the pre-state hashes to oldRoot (the root digest the
// verifier already trusts), replays the operation batch fn on the
// partial tree, and returns the post-state root digest. Any attempt by
// fn to read beyond what the VO covers fails with ErrPruned, which
// means the VO — and hence the server — is bad.
func (v *VO) Replay(oldRoot digest.Digest, fn func(*Tree) (*Tree, error)) (digest.Digest, error) {
	t, err := v.Tree()
	if err != nil {
		return digest.Zero, err
	}
	if got := t.RootDigest(); got != oldRoot {
		return digest.Zero, fmt.Errorf("%w: VO root %s, trusted root %s",
			ErrRootMismatch, got.Short(), oldRoot.Short())
	}
	nt, err := fn(t)
	if err != nil {
		return digest.Zero, err
	}
	return nt.RootDigest(), nil
}

// VOStats summarizes a verification object's size, the quantity the
// paper bounds by O(log n) per updated key.
type VOStats struct {
	ExpandedNodes int // nodes shipped in full
	PrunedDigests int // sibling digests shipped (the "O(log n) digests")
	Records       int // key/value records shipped
	ApproxBytes   int // structural size estimate (keys + values + digests)
}

// Stats computes size statistics for the VO.
func (v *VO) Stats() VOStats {
	var s VOStats
	var walk func(*VONode)
	walk = func(n *VONode) {
		if n == nil {
			return
		}
		if n.Pruned {
			s.PrunedDigests++
			s.ApproxBytes += digest.Size
			return
		}
		s.ExpandedNodes++
		for _, k := range n.Keys {
			s.ApproxBytes += len(k)
		}
		if n.Leaf {
			s.Records += len(n.Keys)
			for _, val := range n.Vals {
				s.ApproxBytes += len(val)
			}
			return
		}
		for _, k := range n.Kids {
			walk(k)
		}
	}
	walk(v.Root)
	return s
}
