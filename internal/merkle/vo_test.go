package merkle

import (
	"errors"
	"math/rand"
	"testing"

	"trustedcvs/internal/digest"
)

func buildTree(t *testing.T, order, n int) *Tree {
	t.Helper()
	tr := New(order)
	for i := 0; i < n; i++ {
		tr = tr.Put(key(i), val(i))
	}
	return tr
}

func TestVOReadReplay(t *testing.T) {
	tr := buildTree(t, 4, 200)
	oldRoot := tr.RootDigest()

	rec := tr.Record()
	v, ok, err := rec.Get(key(17))
	if err != nil || !ok || string(v) != string(val(17)) {
		t.Fatalf("recorded Get: %q %v %v", v, ok, err)
	}
	vo := rec.VO()

	// The verifier replays the read on the pruned tree.
	newRoot, err := vo.Replay(oldRoot, func(pt *Tree) (*Tree, error) {
		got, ok, err := pt.GetErr(key(17))
		if err != nil {
			return nil, err
		}
		if !ok || string(got) != string(val(17)) {
			t.Fatalf("replayed Get disagreed: %q %v", got, ok)
		}
		return pt, nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if newRoot != oldRoot {
		t.Fatal("read-only replay changed the root")
	}
}

func TestVONonMembershipProof(t *testing.T) {
	tr := buildTree(t, 4, 100)
	rec := tr.Record()
	_, ok, err := rec.Get("absent-key")
	if err != nil || ok {
		t.Fatalf("Get(absent): %v %v", ok, err)
	}
	vo := rec.VO()
	_, err = vo.Replay(tr.RootDigest(), func(pt *Tree) (*Tree, error) {
		_, ok, err := pt.GetErr("absent-key")
		if err != nil {
			return nil, err
		}
		if ok {
			t.Fatal("replay found an absent key")
		}
		return pt, nil
	})
	if err != nil {
		t.Fatalf("non-membership replay: %v", err)
	}
}

func TestVOUpdateReplay(t *testing.T) {
	tr := buildTree(t, 4, 300)
	oldRoot := tr.RootDigest()

	rec := tr.Record()
	if err := rec.Put(key(50), []byte("updated")); err != nil {
		t.Fatal(err)
	}
	if err := rec.Put("brand-new", []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Delete(key(120)); err != nil {
		t.Fatal(err)
	}
	serverNewRoot := rec.Tree().RootDigest()
	vo := rec.VO()

	clientNewRoot, err := vo.Replay(oldRoot, func(pt *Tree) (*Tree, error) {
		pt, err := pt.PutErr(key(50), []byte("updated"))
		if err != nil {
			return nil, err
		}
		pt, err = pt.PutErr("brand-new", []byte("fresh"))
		if err != nil {
			return nil, err
		}
		pt, _, err = pt.DeleteErr(key(120))
		return pt, err
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	if clientNewRoot != serverNewRoot {
		t.Fatalf("replayed root %s != server root %s", clientNewRoot.Short(), serverNewRoot.Short())
	}
}

func TestVOSplitAndMergeReplay(t *testing.T) {
	// Force structural changes: tiny order, inserts that split up to
	// the root and deletes that merge back down.
	tr := New(3)
	for i := 0; i < 40; i++ {
		tr = tr.Put(key(i), val(i))
	}
	oldRoot := tr.RootDigest()

	rec := tr.Record()
	for i := 40; i < 60; i++ {
		if err := rec.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := rec.Delete(key(i)); err != nil {
			t.Fatal(err)
		}
	}
	want := rec.Tree().RootDigest()
	got, err := rec.VO().Replay(oldRoot, func(pt *Tree) (*Tree, error) {
		var err error
		for i := 40; i < 60; i++ {
			if pt, err = pt.PutErr(key(i), val(i)); err != nil {
				return nil, err
			}
		}
		for i := 0; i < 20; i++ {
			if pt, _, err = pt.DeleteErr(key(i)); err != nil {
				return nil, err
			}
		}
		return pt, nil
	})
	if err != nil {
		t.Fatalf("Replay with splits/merges: %v", err)
	}
	if got != want {
		t.Fatalf("replayed root %s != server root %s", got.Short(), want.Short())
	}
}

func TestVORejectsWrongOldRoot(t *testing.T) {
	tr := buildTree(t, 4, 50)
	rec := tr.Record()
	_, _, _ = rec.Get(key(1))
	vo := rec.VO()
	bogus := digest.OfBytes(digest.DomainState, []byte("bogus"))
	if _, err := vo.Replay(bogus, func(pt *Tree) (*Tree, error) { return pt, nil }); !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("want ErrRootMismatch, got %v", err)
	}
}

func TestVORejectsTamperedValue(t *testing.T) {
	// A server that tampers with a value inside the VO must be caught
	// by the old-root check.
	tr := buildTree(t, 4, 50)
	// Pin the published root before tampering: the VO aliases the live
	// tree's slices (it is normally serialized to the wire untouched),
	// so an in-place tamper below would otherwise leak into a root
	// digest computed afterwards.
	want := tr.RootDigest()
	rec := tr.Record()
	_, _, _ = rec.Get(key(1))
	vo := rec.VO()

	var tamper func(n *VONode) bool
	tamper = func(n *VONode) bool {
		if n == nil || n.Pruned {
			return false
		}
		if n.Leaf {
			if len(n.Vals) > 0 {
				n.Vals[0] = []byte("evil")
				return true
			}
			return false
		}
		for _, k := range n.Kids {
			if tamper(k) {
				return true
			}
		}
		return false
	}
	if !tamper(vo.Root) {
		t.Fatal("test bug: found nothing to tamper with")
	}
	if _, err := vo.Replay(want, func(pt *Tree) (*Tree, error) { return pt, nil }); !errors.Is(err, ErrRootMismatch) {
		t.Fatalf("want ErrRootMismatch after tamper, got %v", err)
	}
}

func TestVOInsufficientCoverage(t *testing.T) {
	// A VO recorded for one key cannot support replaying an operation
	// on a different key: the replay must hit a pruned node.
	tr := buildTree(t, 4, 500)
	rec := tr.Record()
	_, _, _ = rec.Get(key(1))
	vo := rec.VO()
	_, err := vo.Replay(tr.RootDigest(), func(pt *Tree) (*Tree, error) {
		return pt.PutErr(key(450), []byte("x"))
	})
	if !errors.Is(err, ErrPruned) {
		t.Fatalf("want ErrPruned, got %v", err)
	}
}

func TestVOMalformed(t *testing.T) {
	cases := map[string]*VO{
		"bad order":         {Order: 1, Root: nil},
		"pruned no digest":  {Order: 4, Root: &VONode{Pruned: true}},
		"pruned w/ content": {Order: 4, Root: &VONode{Pruned: true, Digest: digest.OfBytes(0, nil), Keys: []string{"k"}}},
		"leaf shape":        {Order: 4, Root: &VONode{Leaf: true, Keys: []string{"k"}}},
		"internal shape":    {Order: 4, Root: &VONode{Keys: []string{"k"}, Kids: []*VONode{{Pruned: true, Digest: digest.OfBytes(0, nil)}}}},
		"unsorted keys":     {Order: 4, Root: &VONode{Leaf: true, Keys: []string{"b", "a"}, Vals: [][]byte{nil, nil}}},
		"duplicate keys":    {Order: 4, Root: &VONode{Leaf: true, Keys: []string{"a", "a"}, Vals: [][]byte{nil, nil}}},
		"overfull leaf":     {Order: 4, Root: &VONode{Leaf: true, Keys: []string{"a", "b", "c", "d", "e"}, Vals: make([][]byte, 5)}},
		"nil child": {Order: 4, Root: &VONode{Keys: []string{"k"}, Kids: []*VONode{
			{Pruned: true, Digest: digest.OfBytes(0, nil)}, nil,
		}}},
	}
	for name, vo := range cases {
		if _, err := vo.Tree(); !errors.Is(err, ErrMalformedVO) {
			t.Errorf("%s: want ErrMalformedVO, got %v", name, err)
		}
	}
}

func TestVOEmptyTree(t *testing.T) {
	tr := New(4)
	rec := tr.Record()
	if err := rec.Put("first", []byte("v")); err != nil {
		t.Fatal(err)
	}
	want := rec.Tree().RootDigest()
	got, err := rec.VO().Replay(digest.Empty(), func(pt *Tree) (*Tree, error) {
		return pt.PutErr("first", []byte("v"))
	})
	if err != nil {
		t.Fatalf("Replay from empty: %v", err)
	}
	if got != want {
		t.Fatal("replay from empty tree diverged")
	}
}

func TestVOStatsLogGrowth(t *testing.T) {
	// The number of digests in a single-key VO must grow like log n,
	// not like n (Figure 2 / Section 4.1).
	sizes := []int{100, 1000, 10000}
	var digests []int
	for _, n := range sizes {
		tr := buildTree(t, 8, n)
		rec := tr.Record()
		if err := rec.Put(key(n/2), []byte("x")); err != nil {
			t.Fatal(err)
		}
		s := rec.VO().Stats()
		digests = append(digests, s.PrunedDigests)
	}
	for i, d := range digests {
		if d == 0 || d > 80 {
			t.Fatalf("n=%d: %d pruned digests, want small O(log n) count", sizes[i], d)
		}
	}
	// 100x more records must cost far less than 100x more digests.
	if digests[2] > digests[0]*10 {
		t.Fatalf("digest growth not logarithmic: %v", digests)
	}
}

func TestRecordingRangeAndCoverage(t *testing.T) {
	tr := buildTree(t, 4, 100)
	rec := tr.Record()
	count := 0
	if err := rec.Range(key(10), key(30), func(string, []byte) bool { count++; return true }); err != nil {
		t.Fatal(err)
	}
	if count != 20 {
		t.Fatalf("recorded range saw %d keys", count)
	}
	_, err := rec.VO().Replay(tr.RootDigest(), func(pt *Tree) (*Tree, error) {
		n := 0
		if err := pt.Range(key(10), key(30), func(string, []byte) bool { n++; return true }); err != nil {
			return nil, err
		}
		if n != count {
			t.Fatalf("replayed range saw %d keys, want %d", n, count)
		}
		return pt, nil
	})
	if err != nil {
		t.Fatalf("range replay: %v", err)
	}
}

func TestVORandomizedBatchReplay(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		order := []int{3, 4, 8}[rng.Intn(3)]
		tr := New(order)
		n := 20 + rng.Intn(200)
		for i := 0; i < n; i++ {
			tr = tr.Put(key(rng.Intn(300)), val(i))
		}
		oldRoot := tr.RootDigest()

		type op struct {
			del bool
			k   string
			v   []byte
		}
		var ops []op
		rec := tr.Record()
		for j := 0; j < 1+rng.Intn(10); j++ {
			o := op{del: rng.Intn(3) == 0, k: key(rng.Intn(300)), v: val(rng.Int())}
			ops = append(ops, o)
			if o.del {
				if _, err := rec.Delete(o.k); err != nil {
					t.Fatal(err)
				}
			} else if err := rec.Put(o.k, o.v); err != nil {
				t.Fatal(err)
			}
		}
		want := rec.Tree().RootDigest()
		got, err := rec.VO().Replay(oldRoot, func(pt *Tree) (*Tree, error) {
			var err error
			for _, o := range ops {
				if o.del {
					pt, _, err = pt.DeleteErr(o.k)
				} else {
					pt, err = pt.PutErr(o.k, o.v)
				}
				if err != nil {
					return nil, err
				}
			}
			return pt, nil
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got != want {
			t.Fatalf("trial %d: replayed root mismatch", trial)
		}
		if err := rec.Tree().CheckInvariants(); err != nil {
			t.Fatalf("trial %d: post-state invariants: %v", trial, err)
		}
	}
}
