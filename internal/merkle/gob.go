package merkle

import "encoding/gob"

// VOs usually travel as concrete-typed fields of protocol responses,
// but the bench harness also measures them as standalone payloads, so
// the types are registered for interface transport too.
func init() {
	gob.Register(&VO{})
	gob.Register(&VONode{})
}
