package merkle

import (
	"encoding/gob"
	"fmt"
	"io"
)

// Snapshot is the wire/disk form of a complete tree. Unlike a plain
// key-value dump, it preserves the exact node structure: B+-tree shape
// depends on insertion history, so only a structural snapshot restores
// the same root digest — which is what keeps restarted servers
// consistent with their clients' verified roots.
type Snapshot struct {
	Order int
	Size  int
	Root  *SnapshotNode
}

// SnapshotNode is one fully expanded node.
type SnapshotNode struct {
	Leaf bool
	Keys []string
	Vals [][]byte
	Kids []*SnapshotNode
}

// Snapshot captures the tree. The result shares no mutable state with
// the tree (values are copied).
func (t *Tree) Snapshot() *Snapshot {
	return &Snapshot{Order: t.order, Size: t.size, Root: snapNode(t.root)}
}

func snapNode(n *node) *SnapshotNode {
	if n == nil {
		return nil
	}
	if n.pruned {
		// Partial trees are verification artifacts that exist only on
		// the client side; the server's persistent tree is always
		// complete, so no remote input can steer a checkpoint here.
		//lint:ignore panicfree server trees are never partial; pruned nodes only come from VO materialization on verifiers
		panic("merkle: cannot snapshot a partial tree")
	}
	sn := &SnapshotNode{Leaf: n.leaf, Keys: append([]string(nil), n.keys...)}
	if n.leaf {
		sn.Vals = make([][]byte, len(n.vals))
		for i, v := range n.vals {
			sn.Vals[i] = append([]byte(nil), v...)
		}
		return sn
	}
	sn.Kids = make([]*SnapshotNode, len(n.kids))
	for i, k := range n.kids {
		sn.Kids[i] = snapNode(k)
	}
	return sn
}

// Restore rebuilds a tree from a snapshot, validating structure the
// same way VO materialization does (snapshots may come from disk or
// the network). The restored tree's root digest equals the original's.
func Restore(s *Snapshot) (*Tree, error) {
	if s == nil {
		return nil, fmt.Errorf("%w: nil snapshot", ErrMalformedVO)
	}
	if s.Order < MinOrder {
		return nil, fmt.Errorf("%w: order %d", ErrMalformedVO, s.Order)
	}
	root, count, err := restoreNode(s.Root, s.Order)
	if err != nil {
		return nil, err
	}
	if count != s.Size {
		return nil, fmt.Errorf("%w: snapshot claims %d records, contains %d", ErrMalformedVO, s.Size, count)
	}
	t := &Tree{order: s.Order, root: root, size: count}
	if err := t.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("merkle: restored tree invalid: %w", err)
	}
	return t, nil
}

func restoreNode(sn *SnapshotNode, order int) (*node, int, error) {
	if sn == nil {
		return nil, 0, nil
	}
	vn := &VONode{Leaf: sn.Leaf, Keys: sn.Keys, Vals: sn.Vals}
	if !sn.Leaf {
		// Validate shape through the same path as VOs, then recurse
		// ourselves (children here are always expanded).
		if len(sn.Kids) != len(sn.Keys)+1 {
			return nil, 0, fmt.Errorf("%w: bad internal shape", ErrMalformedVO)
		}
		n := &node{keys: append([]string(nil), sn.Keys...), kids: make([]*node, len(sn.Kids))}
		total := 0
		for i, kid := range sn.Kids {
			k, c, err := restoreNode(kid, order)
			if err != nil {
				return nil, 0, err
			}
			if k == nil {
				return nil, 0, fmt.Errorf("%w: nil child", ErrMalformedVO)
			}
			n.kids[i] = k
			total += c
		}
		if len(n.keys) > order {
			return nil, 0, fmt.Errorf("%w: overfull node", ErrMalformedVO)
		}
		return n, total, nil
	}
	// Copy leaf content: the snapshot may be an in-memory object the
	// caller still holds (buildNode takes slices as-is, which is fine
	// for freshly decoded VOs but would alias here).
	vn.Keys = append([]string(nil), sn.Keys...)
	vn.Vals = make([][]byte, len(sn.Vals))
	for i, v := range sn.Vals {
		vn.Vals[i] = append([]byte(nil), v...)
	}
	built, err := buildNode(vn, order)
	if err != nil {
		return nil, 0, err
	}
	return built, len(built.keys), nil
}

// WriteTo serializes the snapshot with gob.
func (s *Snapshot) WriteTo(w io.Writer) (int64, error) {
	cw := &countWriter{w: w}
	if err := gob.NewEncoder(cw).Encode(s); err != nil {
		return cw.n, fmt.Errorf("merkle: encode snapshot: %w", err)
	}
	return cw.n, nil
}

// ReadSnapshot deserializes a snapshot written by WriteTo.
func ReadSnapshot(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	if err := gob.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("merkle: decode snapshot: %w", err)
	}
	return &s, nil
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}
