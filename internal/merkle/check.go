package merkle

import (
	"fmt"
	"sort"
)

// CheckInvariants verifies the structural invariants of a fully
// materialized tree. It is exported for the package's property-based
// tests and for debugging; it is never needed in production paths.
//
// Checked: uniform leaf depth; per-node key-count bounds; sorted,
// duplicate-free keys globally; separator consistency (every key in
// child i lies in [keys[i-1], keys[i])); size bookkeeping.
func (t *Tree) CheckInvariants() error {
	if t.root == nil {
		if t.size != 0 {
			return fmt.Errorf("merkle: empty tree with size %d", t.size)
		}
		return nil
	}
	depth := -1
	count := 0
	var prev string
	first := true
	var walk func(n *node, d int, lo, hi string, isRoot bool) error
	walk = func(n *node, d int, lo, hi string, isRoot bool) error {
		if n == nil {
			return fmt.Errorf("merkle: nil node at depth %d", d)
		}
		if n.pruned {
			return fmt.Errorf("merkle: pruned node in materialized tree at depth %d", d)
		}
		if !sort.StringsAreSorted(n.keys) {
			return fmt.Errorf("merkle: unsorted keys at depth %d: %v", d, n.keys)
		}
		if !isRoot && len(n.keys) < t.minKeys() {
			return fmt.Errorf("merkle: underfull node at depth %d: %d keys < min %d", d, len(n.keys), t.minKeys())
		}
		if len(n.keys) > t.order {
			return fmt.Errorf("merkle: overfull node at depth %d: %d keys > order %d", d, len(n.keys), t.order)
		}
		if n.leaf {
			if len(n.vals) != len(n.keys) {
				return fmt.Errorf("merkle: leaf with %d keys, %d vals", len(n.keys), len(n.vals))
			}
			if depth == -1 {
				depth = d
			} else if depth != d {
				return fmt.Errorf("merkle: leaves at depths %d and %d", depth, d)
			}
			for _, k := range n.keys {
				if k < lo || (hi != "" && k >= hi) {
					return fmt.Errorf("merkle: key %q outside separator range [%q,%q)", k, lo, hi)
				}
				if !first && k <= prev {
					return fmt.Errorf("merkle: key order violation: %q after %q", k, prev)
				}
				prev, first = k, false
				count++
			}
			return nil
		}
		if len(n.kids) != len(n.keys)+1 {
			return fmt.Errorf("merkle: internal node with %d keys, %d kids", len(n.keys), len(n.kids))
		}
		for i, kid := range n.kids {
			clo, chi := lo, hi
			if i > 0 {
				clo = n.keys[i-1]
			}
			if i < len(n.keys) {
				chi = n.keys[i]
			}
			if err := walk(kid, d+1, clo, chi, false); err != nil {
				return err
			}
		}
		return nil
	}
	if err := walk(t.root, 0, "", "", true); err != nil {
		return err
	}
	if t.size >= 0 && count != t.size {
		return fmt.Errorf("merkle: size bookkeeping: counted %d, size field %d", count, t.size)
	}
	return nil
}

// Height returns the number of levels in the tree (0 for empty).
func (t *Tree) Height() int {
	h := 0
	for n := t.root; n != nil; {
		h++
		if n.leaf {
			break
		}
		n = n.kids[0]
	}
	return h
}
