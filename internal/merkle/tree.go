// Package merkle implements the authenticated dictionary of Section 4.1
// of the Trusted CVS paper: a B+-tree in which every node carries a
// digest — leaf digests bind the records stored in the leaf, internal
// digests bind the separator keys and the children's digests — so the
// digest of the root ("root hash", M(D) in the paper) commits to the
// entire database contents.
//
// The tree is persistent (copy on write): mutating operations return a
// new *Tree and leave the receiver untouched. Persistence is what makes
// verification objects cheap to build (the pre-state stays alive while
// the operation runs, so the recorder can prune it afterwards) and
// gives the adversary package O(1) forks of the database, which the
// partition attack of Figure 1 needs.
//
// Verification objects (see vo.go) are pruned copies of the pre-state
// tree. A tree may therefore contain pruned nodes — placeholders that
// carry only a digest. Any operation that would need to look inside a
// pruned node fails with ErrPruned; on a fully materialized tree no
// operation ever returns an error.
package merkle

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"trustedcvs/internal/digest"
)

// DefaultOrder is the branching factor used when 0 is passed to New: a
// node holds at most DefaultOrder keys and DefaultOrder+1 children,
// matching the paper's "up to m keys and m+1 pointers".
const DefaultOrder = 8

// MinOrder is the smallest supported branching factor.
const MinOrder = 3

// ErrPruned is returned when an operation needs the contents of a node
// that a verification object pruned away. During VO verification this
// means the VO does not cover the operation being replayed — i.e. the
// server's proof is invalid.
var ErrPruned = errors.New("merkle: operation reached a pruned node")

// Tree is an immutable authenticated B+-tree mapping string keys to
// byte-slice values. The zero value is not usable; call New.
type Tree struct {
	order int
	root  *node
	size  int
}

type node struct {
	pruned bool
	leaf   bool
	dig    atomic.Pointer[digest.Digest] // memoized digest; nil means "not yet computed"
	keys   []string
	vals   [][]byte // leaf nodes: vals[i] is the value for keys[i]
	kids   []*node  // internal nodes: len(kids) == len(keys)+1
}

// withDigest builds a node whose digest is already known (pruned VO
// placeholders).
func withDigest(n *node, d digest.Digest) *node {
	n.dig.Store(&d)
	return n
}

// hashCount counts node digest computations, for tests that pin the
// memoization property (unchanged subtrees are never rehashed across
// operations).
var hashCount atomic.Uint64

// New returns an empty tree with the given branching factor (maximum
// keys per node). order == 0 selects DefaultOrder. New panics on an
// order below MinOrder: the branching factor is a static configuration
// choice, not runtime input.
func New(order int) *Tree {
	if order == 0 {
		order = DefaultOrder
	}
	if order < MinOrder {
		panic(fmt.Sprintf("merkle: order %d below minimum %d", order, MinOrder))
	}
	return &Tree{order: order}
}

// Order returns the tree's branching factor.
func (t *Tree) Order() int { return t.order }

// Len returns the number of records in the tree. Len is unreliable on
// trees rebuilt from verification objects (pruned subtrees hide their
// record counts); it reports -1 there.
func (t *Tree) Len() int { return t.size }

// minKeys is the underflow threshold: non-root nodes must hold at least
// this many keys.
func (t *Tree) minKeys() int { return t.order / 2 }

// RootDigest returns M(D), the root hash committing to the entire tree
// contents. The empty tree has the fixed digest digest.Empty().
func (t *Tree) RootDigest() digest.Digest { return t.root.digest() }

// digest computes (and memoizes) a node's digest. Immutability makes
// the lazy cache sound: a node's digest never changes after the node is
// linked into a tree, so unchanged subtrees are never rehashed across
// operations. The cache is an atomic pointer because digests are
// computed outside the server's ordered section (the pipelined VO build
// runs concurrently on structurally shared persistent trees): racing
// computations are idempotent — both store the same value — and the
// atomic store keeps the publication race-free.
func (n *node) digest() digest.Digest {
	if n == nil {
		return digest.Empty()
	}
	if d := n.dig.Load(); d != nil {
		return *d
	}
	hashCount.Add(1)
	var h *digest.Hasher
	if n.leaf {
		h = digest.NewHasher(digest.DomainLeaf)
		h.Uint64(uint64(len(n.keys)))
		for i, k := range n.keys {
			h.String(k)
			h.Bytes(n.vals[i])
		}
	} else {
		h = digest.NewHasher(digest.DomainInternal)
		h.Uint64(uint64(len(n.keys)))
		for _, k := range n.keys {
			h.String(k)
		}
		for _, c := range n.kids {
			h.Digest(c.digest())
		}
	}
	d := h.Sum()
	n.dig.Store(&d)
	return d
}

// ctx carries per-operation state: the branching factor and, when a
// verification object is being built, the recorder collecting every
// pre-state node the operation touches.
type ctx struct {
	order int
	rec   map[*node]struct{}
}

func (c *ctx) visit(n *node) {
	if c.rec != nil && n != nil {
		c.rec[n] = struct{}{}
	}
}

// childIndex returns the index of the child responsible for key:
// the first separator greater than key.
func childIndex(n *node, key string) int {
	return sort.Search(len(n.keys), func(i int) bool { return n.keys[i] > key })
}

// Get returns the value stored for key.
func (t *Tree) Get(key string) ([]byte, bool) {
	v, ok, err := t.GetErr(key)
	if err != nil {
		// Only possible on trees containing pruned nodes.
		panic("merkle: Get on partial tree; use GetErr: " + err.Error())
	}
	return v, ok
}

// GetErr is Get for trees that may contain pruned nodes (trees rebuilt
// from verification objects).
func (t *Tree) GetErr(key string) ([]byte, bool, error) {
	c := &ctx{order: t.order}
	return c.get(t.root, key)
}

func (c *ctx) get(n *node, key string) ([]byte, bool, error) {
	if n == nil {
		return nil, false, nil
	}
	c.visit(n)
	if n.pruned {
		return nil, false, fmt.Errorf("%w (get %q)", ErrPruned, key)
	}
	if n.leaf {
		i := sort.SearchStrings(n.keys, key)
		if i < len(n.keys) && n.keys[i] == key {
			return n.vals[i], true, nil
		}
		return nil, false, nil
	}
	return c.get(n.kids[childIndex(n, key)], key)
}

// Range calls fn for every record with lo <= key < hi, in key order,
// until fn returns false. An empty hi means "no upper bound". Range
// returns ErrPruned if the scan would need a pruned subtree.
func (t *Tree) Range(lo, hi string, fn func(key string, val []byte) bool) error {
	c := &ctx{order: t.order}
	_, err := c.rng(t.root, lo, hi, fn)
	return err
}

func (c *ctx) rng(n *node, lo, hi string, fn func(string, []byte) bool) (bool, error) {
	if n == nil {
		return true, nil
	}
	c.visit(n)
	if n.pruned {
		return false, fmt.Errorf("%w (range [%q,%q))", ErrPruned, lo, hi)
	}
	if n.leaf {
		for i, k := range n.keys {
			if k < lo {
				continue
			}
			if hi != "" && k >= hi {
				return false, nil
			}
			if !fn(k, n.vals[i]) {
				return false, nil
			}
		}
		return true, nil
	}
	start := childIndex(n, lo)
	// Descend from the child that may contain lo; separators tell us
	// when the upper bound cuts off the scan.
	for i := start; i < len(n.kids); i++ {
		if i > start && hi != "" && n.keys[i-1] >= hi {
			return false, nil
		}
		cont, err := c.rng(n.kids[i], lo, hi, fn)
		if err != nil || !cont {
			return cont, err
		}
	}
	return true, nil
}

// Keys returns all keys in order. Intended for tests and small trees.
func (t *Tree) Keys() []string {
	var ks []string
	_ = t.Range("", "", func(k string, _ []byte) bool {
		ks = append(ks, k)
		return true
	})
	return ks
}

// clone returns a mutable shallow copy of n with an invalidated digest.
func (n *node) clone() *node {
	nn := &node{leaf: n.leaf}
	nn.keys = append([]string(nil), n.keys...)
	if n.leaf {
		nn.vals = append([][]byte(nil), n.vals...)
	} else {
		nn.kids = append([]*node(nil), n.kids...)
	}
	return nn
}
