// Package broadcast implements the reliable broadcast channel among
// users that Protocols I and II assume for their synchronization step
// — the "external communication" Theorem 3.1 proves necessary. Two
// implementations share one interface: an in-process hub (tests,
// examples, benchmarks) and a TCP hub (the tcvs binaries).
//
// The channel is between USERS only; the untrusted server never sees
// it. Reliability and in-order delivery are assumed by the paper's
// model (failures are out of scope).
package broadcast

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"

	"trustedcvs/internal/sig"
	"trustedcvs/internal/wire"
)

func init() {
	gob.Register(&Message{})
}

// Message is one broadcast datum. Payload types must be gob-registered
// (the core package registers all protocol messages).
type Message struct {
	From    sig.UserID
	Payload any
}

// Channel is one participant's endpoint: publish to all, receive all
// (including one's own publications, which simplifies sync rounds —
// every participant processes the same message sequence).
type Channel interface {
	Publish(msg Message) error
	Recv() <-chan Message
	Close() error
}

// ErrClosed is returned when publishing on a closed channel.
var ErrClosed = errors.New("broadcast: closed")

// chanBuf is the per-subscriber buffer. Sync rounds are tiny (n+1
// messages); a deep buffer means publishers never block in practice.
const chanBuf = 1024

// Hub is the in-process broadcast medium.
type Hub struct {
	mu     sync.Mutex
	subs   map[*hubChannel]struct{}
	closed bool
}

// NewHub creates an empty hub.
func NewHub() *Hub { return &Hub{subs: make(map[*hubChannel]struct{})} }

// Join adds a participant.
func (h *Hub) Join() Channel {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := &hubChannel{hub: h, ch: make(chan Message, chanBuf)}
	h.subs[c] = struct{}{}
	return c
}

func (h *Hub) publish(msg Message) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrClosed
	}
	for s := range h.subs {
		select {
		case s.ch <- msg:
		default:
			// A subscriber this far behind has left the model's
			// bounded-delivery world; fail loudly rather than drop
			// silently.
			return fmt.Errorf("broadcast: subscriber buffer overflow")
		}
	}
	return nil
}

// Close shuts the hub down; all subscriber channels are closed.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
	}
	h.subs = map[*hubChannel]struct{}{}
}

type hubChannel struct {
	hub    *Hub
	ch     chan Message
	closed bool
	mu     sync.Mutex
}

func (c *hubChannel) Publish(msg Message) error { return c.hub.publish(msg) }

func (c *hubChannel) Recv() <-chan Message { return c.ch }

func (c *hubChannel) Close() error {
	c.hub.mu.Lock()
	defer c.hub.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		if _, ok := c.hub.subs[c]; ok {
			delete(c.hub.subs, c)
			close(c.ch)
		}
	}
	return nil
}

// HubServer is the TCP broadcast hub: every connected client receives
// every published message (including its own).
type HubServer struct {
	lis    net.Listener
	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// ListenHub starts a TCP hub on addr.
func ListenHub(addr string) (*HubServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broadcast: listen %s: %w", addr, err)
	}
	h := &HubServer{lis: lis, conns: make(map[net.Conn]struct{})}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's bound address.
func (h *HubServer) Addr() string { return h.lis.Addr().String() }

func (h *HubServer) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.lis.Accept()
		if err != nil {
			return
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			conn.Close()
			return
		}
		h.conns[conn] = struct{}{}
		h.mu.Unlock()

		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			defer h.drop(conn)
			for {
				msg, err := wire.Read(conn)
				if err != nil {
					return
				}
				h.fanout(msg)
			}
		}()
	}
}

func (h *HubServer) fanout(msg any) {
	h.mu.Lock()
	defer h.mu.Unlock()
	for c := range h.conns {
		// A write error just drops that subscriber at its next read.
		_ = wire.Write(c, msg)
	}
}

func (h *HubServer) drop(conn net.Conn) {
	h.mu.Lock()
	delete(h.conns, conn)
	h.mu.Unlock()
	conn.Close()
}

// Close shuts the hub down.
func (h *HubServer) Close() error {
	h.mu.Lock()
	h.closed = true
	for c := range h.conns {
		c.Close()
	}
	h.conns = map[net.Conn]struct{}{}
	h.mu.Unlock()
	return h.lis.Close()
}

// DialHub joins a TCP hub as a participant.
func DialHub(addr string) (Channel, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broadcast: dial %s: %w", addr, err)
	}
	c := &tcpChannel{conn: conn, ch: make(chan Message, chanBuf)}
	go c.readLoop()
	return c, nil
}

type tcpChannel struct {
	conn net.Conn
	ch   chan Message

	mu     sync.Mutex // guards writes and close
	closed bool
}

func (c *tcpChannel) readLoop() {
	defer close(c.ch)
	for {
		msg, err := wire.Read(c.conn)
		if err != nil {
			return
		}
		m, ok := msg.(*Message)
		if !ok {
			continue
		}
		select {
		case c.ch <- *m:
		default:
			return // hopelessly behind; sever
		}
	}
}

func (c *tcpChannel) Publish(msg Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return wire.Write(c.conn, &msg)
}

func (c *tcpChannel) Recv() <-chan Message { return c.ch }

func (c *tcpChannel) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
