// Package broadcast implements the reliable broadcast channel among
// users that Protocols I and II assume for their synchronization step
// — the "external communication" Theorem 3.1 proves necessary. Two
// implementations share one interface: an in-process hub (tests,
// examples, benchmarks) and a TCP hub (the tcvs binaries).
//
// The channel is between USERS only; the untrusted server never sees
// it. Reliability and in-order delivery are assumed by the paper's
// model (failures are out of scope). The TCP hub no longer leans on
// that assumption: it keeps an indexed log of everything published, so
// a participant that loses its connection redials and resumes from its
// last-delivered index (DialHubResume) — same FIFO total order, no
// gaps, no duplicates. The sync-barrier proof needs exactly that
// order, which is why resumption replays the hub's log instead of
// trusting the network.
package broadcast

import (
	"encoding/gob"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"trustedcvs/internal/sig"
	"trustedcvs/internal/wire"
)

func init() {
	gob.Register(&Message{})
	gob.Register(&hubHello{})
	gob.Register(&hubPub{})
	gob.Register(&hubSeq{})
	gob.Register(&hubAck{})
}

// hubHello upgrades a connection to resumable delivery: the hub
// replays every logged entry with index > Last, then streams new ones.
type hubHello struct {
	SID  uint64 // client session nonce, nonzero
	Last uint64 // last log index the client has fully delivered
}

// hubPub is a resumable client's publication. PubSeq increments per
// publish within the session; the hub logs each (SID, PubSeq) at most
// once, so the resend-after-reconnect a client cannot avoid (it can't
// know whether the first copy arrived) is deduplicated here instead of
// fanning out twice — a duplicate sync-request would re-open a
// completed round and tear the registers' consistent cut.
type hubPub struct {
	SID    uint64
	PubSeq uint64
	Msg    Message
}

// hubSeq is one log entry as delivered to resumable clients: the
// message plus its position in the hub's total order and the publisher
// coordinates the client needs to ack its own publications.
type hubSeq struct {
	Idx    uint64
	SID    uint64
	PubSeq uint64
	Msg    Message
}

// hubAck tells a resumable publisher how far its publications are
// durably in the log (every PubSeq <= LastPub), sent on hello and on
// every received publication. Without it a publisher behind on log
// delivery would have to read its whole backlog before learning that
// its resends are redundant — on a flaky link the resend traffic then
// starves the very reads that would quiet it.
type hubAck struct {
	LastPub uint64
}

// Message is one broadcast datum. Payload types must be gob-registered
// (the core package registers all protocol messages).
type Message struct {
	From    sig.UserID
	Payload any
}

// Channel is one participant's endpoint: publish to all, receive all
// (including one's own publications, which simplifies sync rounds —
// every participant processes the same message sequence).
type Channel interface {
	Publish(msg Message) error
	Recv() <-chan Message
	Close() error
}

// ErrClosed is returned when publishing on a closed channel.
var ErrClosed = errors.New("broadcast: closed")

// chanBuf is the per-subscriber buffer. Sync rounds are tiny (n+1
// messages); a deep buffer means publishers never block in practice.
const chanBuf = 1024

// Hub is the in-process broadcast medium.
type Hub struct {
	mu     sync.Mutex
	subs   map[*hubChannel]struct{}
	closed bool
}

// NewHub creates an empty hub.
func NewHub() *Hub { return &Hub{subs: make(map[*hubChannel]struct{})} }

// Join adds a participant.
func (h *Hub) Join() Channel {
	h.mu.Lock()
	defer h.mu.Unlock()
	c := &hubChannel{hub: h, ch: make(chan Message, chanBuf)}
	h.subs[c] = struct{}{}
	return c
}

func (h *Hub) publish(msg Message) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return ErrClosed
	}
	for s := range h.subs {
		select {
		case s.ch <- msg:
		default:
			// A subscriber this far behind has left the model's
			// bounded-delivery world; fail loudly rather than drop
			// silently.
			return fmt.Errorf("broadcast: subscriber buffer overflow")
		}
	}
	return nil
}

// Close shuts the hub down; all subscriber channels are closed.
func (h *Hub) Close() {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for s := range h.subs {
		close(s.ch)
	}
	h.subs = map[*hubChannel]struct{}{}
}

type hubChannel struct {
	hub    *Hub
	ch     chan Message
	closed bool
	mu     sync.Mutex
}

func (c *hubChannel) Publish(msg Message) error { return c.hub.publish(msg) }

func (c *hubChannel) Recv() <-chan Message { return c.ch }

func (c *hubChannel) Close() error {
	c.hub.mu.Lock()
	defer c.hub.mu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.closed {
		c.closed = true
		if _, ok := c.hub.subs[c]; ok {
			delete(c.hub.subs, c)
			close(c.ch)
		}
	}
	return nil
}

// HubServer is the TCP broadcast hub: every connected client receives
// every published message (including its own) in one total order. The
// hub keeps an indexed log of that order so resumable clients
// (DialHubResume) can reconnect and catch up from their last-delivered
// index; legacy clients (DialHub) get plain fan-out as before.
type HubServer struct {
	lis net.Listener

	mu      sync.Mutex
	log     []*hubSeq         // the total order; Idx is 1-based
	lastPub map[uint64]uint64 // highest PubSeq logged per resumable SID
	conns   map[*hubConn]struct{}
	closed  bool
	wg      sync.WaitGroup

	queueDepth int           // out-queue capacity for conns accepted after a SetLimits
	writeT     time.Duration // per-frame write deadline; 0 disables
	flips      uint64        // overflow -> replay-mode flips (slow resumable conns)
	evictions  uint64        // severed conns: legacy overflow or write timeout
}

// DefaultHubWriteTimeout is the per-frame write deadline on hub
// connections. A subscriber that stops reading fills its TCP buffers;
// without a deadline its writer goroutine blocks in Encode forever and
// the connection is never reclaimed. Ten seconds is far above any
// healthy round trip, so only a genuinely frozen (or gray-failed)
// consumer trips it — and a resumable one redials and catches up from
// the log, losing nothing.
const DefaultHubWriteTimeout = 10 * time.Second

// SetLimits tunes the hub's slow-consumer guard: queue is the
// per-connection outbound queue depth for connections accepted after
// the call, writeTimeout the per-frame write deadline for all
// connections. Zero keeps the current value for either. Primarily a
// test hook; production hubs run the defaults.
func (h *HubServer) SetLimits(queue int, writeTimeout time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if queue > 0 {
		h.queueDepth = queue
	}
	if writeTimeout > 0 {
		h.writeT = writeTimeout
	}
}

// HubStats is a snapshot of the hub's slow-consumer accounting.
type HubStats struct {
	Conns     int    // currently connected subscribers
	LogLen    int    // total publications logged
	SlowFlips uint64 // resumable conns flipped to replay mode on queue overflow
	Evictions uint64 // conns severed (legacy overflow or write timeout)
}

// Stats reports the hub's slow-consumer counters.
func (h *HubServer) Stats() HubStats {
	h.mu.Lock()
	defer h.mu.Unlock()
	return HubStats{Conns: len(h.conns), LogLen: len(h.log), SlowFlips: h.flips, Evictions: h.evictions}
}

// hubConnBuf is the per-connection outbound queue for LIVE fan-out. A
// resumable client this far behind the live stream is flipped into
// replay mode (its writer streams the backlog from the log, paced by
// its own TCP connection); a legacy client is severed — it has no log
// index to resume from, so its stream was lost either way. Replay
// never flows through this queue, so a catch-up of any size is
// flow-controlled by TCP instead of racing a fixed buffer.
const hubConnBuf = 4096

// hubConn is one connected participant. The writer goroutine drains
// out so a slow or faulty connection never blocks the hub's fan-out.
//
// A connection is in one of two delivery modes, tracked under
// HubServer.mu. Live (the default): log entries are enqueued on out as
// they are published. Replaying (entered at hubHello, or when a
// resumable conn's live queue overflows): the conn is excluded from
// live fan-out and the writer streams log entries from cursor, at the
// pace the client's TCP connection accepts them; when the cursor
// catches the log tail the conn atomically rejoins live fan-out. Enqueue-side replay (the old design) raced the writer for
// queue slots while holding the hub lock, so a client whose backlog
// exceeded the queue was severed before its writer ever ran — a
// zero-progress reconnect storm under fan-out bursts.
type hubConn struct {
	conn      net.Conn
	out       chan any
	kick      chan struct{} // wakes the writer when replay is scheduled
	resumable bool          // upgraded by hubHello; set under HubServer.mu
	replaying bool          // excluded from live fan-out; writer owns catch-up
	cursor    uint64        // next log Idx the writer replays (1-based)
}

// ListenHub starts a TCP hub on addr.
func ListenHub(addr string) (*HubServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broadcast: listen %s: %w", addr, err)
	}
	h := &HubServer{
		lis:        lis,
		lastPub:    make(map[uint64]uint64),
		conns:      make(map[*hubConn]struct{}),
		queueDepth: hubConnBuf,
		writeT:     DefaultHubWriteTimeout,
	}
	h.wg.Add(1)
	go h.acceptLoop()
	return h, nil
}

// Addr returns the hub's bound address.
func (h *HubServer) Addr() string { return h.lis.Addr().String() }

func (h *HubServer) acceptLoop() {
	defer h.wg.Done()
	for {
		conn, err := h.lis.Accept()
		if err != nil {
			return
		}
		h.mu.Lock()
		if h.closed {
			h.mu.Unlock()
			conn.Close()
			return
		}
		//lint:ignore boundedqueue depth is SetLimits-bounded, default hubConnBuf
		hc := &hubConn{conn: conn, out: make(chan any, h.queueDepth), kick: make(chan struct{}, 1)}
		h.conns[hc] = struct{}{}
		h.mu.Unlock()

		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			// One persistent gob stream per direction: type descriptors
			// cross the wire once per connection and every later message
			// is a cheap value walk. With self-contained frames the
			// receivers paid a full decoder-engine compilation per
			// message — multiplied by fan-out width, that codec cost
			// (not the network) was the sync barrier's bottleneck at
			// large populations.
			enc := wire.NewEncoder(hc.conn)
			for {
				// Replay backlog first: stream log entries directly, one
				// write at a time, so catch-up is paced by the client's
				// TCP connection rather than the bounded live queue.
				for {
					h.mu.Lock()
					if !hc.replaying {
						h.mu.Unlock()
						break
					}
					// Frames already queued on out precede the cursor in
					// the total order (live entries enqueued before the
					// overflow flip, plus unordered acks) — drain them
					// before touching the log or the client would see the
					// replay jump ahead of its own backlog: a gap, which a
					// resumable client treats as a broken connection.
					select {
					case msg, ok := <-hc.out:
						h.mu.Unlock()
						if !ok {
							hc.conn.Close()
							return
						}
						if err := h.write(hc, enc, msg); err != nil {
							h.drop(hc)
							return
						}
						continue
					default:
					}
					if hc.cursor > uint64(len(h.log)) {
						// Caught up. Flip to live while still holding mu so
						// no publication can slip between the check and the
						// handoff — delivery stays gapless and ordered.
						hc.replaying = false
						h.mu.Unlock()
						break
					}
					e := h.log[hc.cursor-1]
					hc.cursor++
					h.mu.Unlock()
					if err := h.write(hc, enc, e); err != nil {
						h.drop(hc)
						return
					}
				}
				select {
				case msg, ok := <-hc.out:
					if !ok {
						hc.conn.Close()
						return
					}
					if err := h.write(hc, enc, msg); err != nil {
						h.drop(hc)
						// Drain nothing further: enqueues check conns
						// membership under mu, so a dropped conn stops
						// receiving frames and out is left to the GC.
						return
					}
				case <-hc.kick:
					// A hello or an overflow flip scheduled a replay; loop
					// back to stream it.
				}
			}
		}()

		h.wg.Add(1)
		go func() {
			defer h.wg.Done()
			defer h.drop(hc)
			dec := wire.NewDecoder(conn)
			for {
				msg, err := dec.Decode()
				if err != nil {
					return
				}
				switch m := msg.(type) {
				case *hubHello:
					h.upgrade(hc, m)
				case *hubPub:
					h.publishFrom(hc, m)
				case *Message:
					h.publishWire(0, 0, *m) // legacy publish: no dedupe possible
				}
			}
		}()
	}
}

// upgrade marks hc resumable, acks the session's publication watermark
// and schedules a replay of the log past the client's last-delivered
// index. The replay itself is streamed by the connection's writer
// goroutine (see acceptLoop): queueing it here, under mu, raced the
// writer for bounded queue slots and severed any client whose backlog
// exceeded the queue — before a single replayed byte reached it.
func (h *HubServer) upgrade(hc *hubConn, hello *hubHello) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.conns[hc]; !ok {
		return
	}
	hc.resumable = true
	if hello.SID != 0 {
		if !h.enqueueFrameLocked(hc, &hubAck{LastPub: h.lastPub[hello.SID]}) {
			return
		}
	}
	hc.replaying = true
	hc.cursor = hello.Last + 1
	select {
	case hc.kick <- struct{}{}:
	default:
	}
}

// publishFrom handles a resumable client's publication and acks the
// session's watermark back on the same connection, whether the
// publication was logged, a duplicate, or an out-of-order straggler.
func (h *HubServer) publishFrom(hc *hubConn, p *hubPub) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.publishLocked(p.SID, p.PubSeq, p.Msg)
	if p.SID != 0 {
		if _, ok := h.conns[hc]; ok {
			h.enqueueFrameLocked(hc, &hubAck{LastPub: h.lastPub[p.SID]})
		}
	}
}

// publishWire appends one publication to the log (deduplicating
// resumable resends) and fans it out. sid == 0 marks a legacy
// publisher with no session, logged unconditionally.
func (h *HubServer) publishWire(sid, pubSeq uint64, msg Message) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.publishLocked(sid, pubSeq, msg)
}

func (h *HubServer) publishLocked(sid, pubSeq uint64, msg Message) {
	if sid != 0 {
		// Log exactly the next sequence per session. Anything lower is a
		// resend of an already-logged publication; anything higher is an
		// out-of-order straggler from a connection that overlapped a
		// reconnect (the old conn's in-flight frame can be processed
		// after the new conn's resends) — dropping it is safe because
		// the client resends every unacked publication in order. A
		// high-water dedupe here would instead mark the skipped-over
		// sequences as "seen" and lose them forever.
		if pubSeq != h.lastPub[sid]+1 {
			return
		}
		h.lastPub[sid] = pubSeq
	}
	e := &hubSeq{Idx: uint64(len(h.log)) + 1, SID: sid, PubSeq: pubSeq, Msg: msg}
	//lint:ignore boundedqueue the log IS the resume contract: reconnecting clients replay the full history from their cursor, so retention is deliberate (memory scales with session traffic, not overload)
	h.log = append(h.log, e)
	for hc := range h.conns {
		if hc.replaying {
			// The conn's writer is streaming the log and will reach this
			// entry through its cursor; enqueueing it too would deliver
			// it out of order ahead of the backlog.
			continue
		}
		h.enqueueLocked(hc, e)
	}
}

// enqueueLocked queues e for hc in the connection's wire format:
// resumable clients get the indexed entry, legacy clients the bare
// message. Reports whether the connection survived.
func (h *HubServer) enqueueLocked(hc *hubConn, e *hubSeq) bool {
	var frame any = e
	if !hc.resumable {
		frame = &e.Msg
	}
	return h.enqueueFrameLocked(hc, frame)
}

// write sends one frame on hc's persistent gob stream under the hub's
// per-frame write deadline. A consumer that stops reading fills its
// TCP buffers; the deadline turns the otherwise-eternal blocked Encode
// into an ordinary connection error, and the caller drops the conn — a
// resumable client redials and catches up from the log.
func (h *HubServer) write(hc *hubConn, enc *wire.Encoder, msg any) error {
	h.mu.Lock()
	t := h.writeT
	h.mu.Unlock()
	if t > 0 {
		_ = hc.conn.SetWriteDeadline(time.Now().Add(t))
	}
	err := enc.Encode(msg)
	if err != nil {
		var ne net.Error
		if errors.As(err, &ne) && ne.Timeout() {
			h.mu.Lock()
			h.evictions++
			h.mu.Unlock()
		}
	}
	return err
}

// enqueueFrameLocked queues one raw frame, reporting whether the
// connection survived. A full queue flips a resumable connection into
// replay mode — it stops receiving live fan-out and its writer streams
// the backlog straight from the log, rejoining live delivery when the
// cursor catches the tail. Only a legacy connection (no log index to
// resume from) is severed outright. Callers looping over multiple
// frames must stop on severance: the outbound channel is closed and
// another send would panic.
func (h *HubServer) enqueueFrameLocked(hc *hubConn, frame any) bool {
	if _, ok := h.conns[hc]; !ok {
		return false
	}
	select {
	case hc.out <- frame:
		return true
	default:
	}
	if e, ok := frame.(*hubSeq); ok && hc.resumable {
		// The overflowed entry becomes the replay cursor: everything
		// before it is already queued on out (the writer drains that
		// first), so delivery stays gapless. No memory is pinned beyond
		// the log the hub keeps anyway.
		hc.replaying = true
		hc.cursor = e.Idx
		h.flips++
		select {
		case hc.kick <- struct{}{}:
		default:
		}
		return true
	}
	if _, ok := frame.(*hubAck); ok && hc.resumable {
		// Dropping an ack is safe: it is a watermark, not a log entry.
		// The client keeps resending its unacked publications and the
		// hub deduplicates; a later ack (or seeing its own publication
		// replayed) prunes the backlog.
		return true
	}
	h.evictions++
	delete(h.conns, hc)
	close(hc.out)
	hc.conn.Close()
	return false
}

func (h *HubServer) drop(hc *hubConn) {
	h.mu.Lock()
	if _, ok := h.conns[hc]; ok {
		delete(h.conns, hc)
		close(hc.out)
	}
	h.mu.Unlock()
	hc.conn.Close()
}

// Close shuts the hub down.
func (h *HubServer) Close() error {
	h.mu.Lock()
	h.closed = true
	for hc := range h.conns {
		close(hc.out)
		hc.conn.Close()
	}
	h.conns = map[*hubConn]struct{}{}
	h.mu.Unlock()
	return h.lis.Close()
}

// DialHub joins a TCP hub as a participant.
func DialHub(addr string) (Channel, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("broadcast: dial %s: %w", addr, err)
	}
	c := &tcpChannel{conn: conn, enc: wire.NewEncoder(conn), ch: make(chan Message, chanBuf)}
	go c.readLoop()
	return c, nil
}

type tcpChannel struct {
	conn net.Conn
	ch   chan Message

	mu     sync.Mutex // guards writes and close
	enc    *wire.Encoder
	closed bool
}

func (c *tcpChannel) readLoop() {
	defer close(c.ch)
	dec := wire.NewDecoder(c.conn)
	for {
		msg, err := dec.Decode()
		if err != nil {
			return
		}
		m, ok := msg.(*Message)
		if !ok {
			continue
		}
		select {
		case c.ch <- *m:
		default:
			return // hopelessly behind; sever
		}
	}
}

func (c *tcpChannel) Publish(msg Message) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return ErrClosed
	}
	return c.enc.Encode(&msg)
}

func (c *tcpChannel) Recv() <-chan Message { return c.ch }

func (c *tcpChannel) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	return c.conn.Close()
}
