package broadcast

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// TestHubResumeFanoutStress drives enough concurrent publishers at a
// TCP hub that per-connection outbound queues overflow and the hub
// severs subscribers mid-run. Resumable members must still observe
// every message exactly once: severance is supposed to cost a replay,
// never a gap.
func TestHubResumeFanoutStress(t *testing.T) {
	const members = 64
	const perMember = 40

	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	chans := make([]Channel, members)
	for i := range chans {
		chans[i] = DialHubResume(hub.Addr())
		defer chans[i].Close()
	}

	var wg sync.WaitGroup
	got := make([]map[string]bool, members)
	for i := range chans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = make(map[string]bool, members*perMember)
			deadline := time.After(60 * time.Second)
			for len(got[i]) < members*perMember {
				select {
				case m, ok := <-chans[i].Recv():
					if !ok {
						t.Errorf("member %d: channel closed after %d msgs", i, len(got[i]))
						return
					}
					s := m.Payload.(string)
					if got[i][s] {
						t.Errorf("member %d: duplicate %q", i, s)
						return
					}
					got[i][s] = true
					// A slow consumer backs up its connection until the
					// hub severs it — the path under test.
					if i%4 == 0 && len(got[i])%64 == 0 {
						time.Sleep(2 * time.Millisecond)
					}
				case <-deadline:
					t.Errorf("member %d: stalled at %d/%d msgs", i, len(got[i]), members*perMember)
					return
				}
			}
		}(i)
	}
	for i := range chans {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < perMember; j++ {
				if err := chans[i].Publish(Message{From: 1, Payload: fmt.Sprintf("m-%d-%d", i, j)}); err != nil {
					t.Errorf("member %d publish %d: %v", i, j, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	var rc uint64
	for _, c := range chans {
		rc += c.(*resumeChannel).Reconnects()
	}
	t.Logf("total reconnects across %d members: %d", members, rc)
}
