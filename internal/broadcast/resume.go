package broadcast

import (
	crand "crypto/rand"
	"encoding/binary"
	"fmt"
	"net"
	"sync"
	"time"

	"trustedcvs/internal/backoff"
	"trustedcvs/internal/wire"
)

// HandshakeTimeout bounds the hello exchange on each (re)connect: the
// hello write and the wait for the hub's first frame both carry this
// deadline. Without it, a hub that accepts the TCP connection but
// never answers (half-up process, black-holing middlebox) parks the
// member in a blocking read forever — the connection looks "up", so
// the redial loop never runs and the member silently stops receiving
// broadcasts. A timeout here is an ordinary retryable connection
// failure: tear down, back off, redial.
var HandshakeTimeout = 5 * time.Second

// DialHubResume joins a TCP hub with resumable delivery: if the
// connection drops, the channel redials with bounded backoff, tells
// the hub the last log index it delivered, and the hub replays
// everything after it. Consumers observe the hub's FIFO total order
// with no gaps and no duplicates across any number of reconnects —
// the delivery contract the sync barrier assumes. Publications made
// while disconnected are buffered and resent until the hub's log
// acknowledges them (the publisher sees its own message come back).
func DialHubResume(addr string) Channel {
	return DialHubResumeFunc(func() (net.Conn, error) {
		return net.DialTimeout("tcp", addr, 5*time.Second)
	})
}

// DialHubResumeFunc is DialHubResume over a custom dialer — how the
// fault harness interposes flaky connections.
func DialHubResumeFunc(dial func() (net.Conn, error)) Channel {
	c := &resumeChannel{
		dial: dial,
		ch:   make(chan Message, chanBuf),
		done: make(chan struct{}),
		kick: make(chan struct{}, 1),
		sid:  newHubSID(),
	}
	go c.run()
	return c
}

func newHubSID() uint64 {
	var b [8]byte
	for {
		if _, err := crand.Read(b[:]); err != nil {
			panic(fmt.Sprintf("broadcast: session id entropy: %v", err))
		}
		if id := binary.BigEndian.Uint64(b[:]); id != 0 {
			return id
		}
	}
}

type resumeChannel struct {
	dial func() (net.Conn, error)
	ch   chan Message
	done chan struct{}
	kick chan struct{} // wakes the publish pump
	sid  uint64

	// wmu serializes whole frames onto the live connection: Publish and
	// the reconnect loop's hello/resend would otherwise interleave
	// bytes and corrupt the stream.
	wmu sync.Mutex

	mu         sync.Mutex
	conn       net.Conn      // current connection, nil while down
	ackReady   chan struct{} // closed when this conn's first ack arrives
	closed     bool
	pubSeq     uint64
	pending    []*hubPub // published, not yet seen back in the log
	lastIdx    uint64    // last log index delivered to ch
	reconnects uint64
}

// send writes one frame onto the connection's persistent gob stream
// under the write lock.
func (c *resumeChannel) send(enc *wire.Encoder, msg any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	return enc.Encode(msg)
}

// Reconnects reports how many times the channel has had to redial.
func (c *resumeChannel) Reconnects() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reconnects
}

// run is the connection lifecycle: dial, hello, resend unacked
// publications, pump the log into ch; on any error, tear down and
// redial until Close.
func (c *resumeChannel) run() {
	defer close(c.ch)
	bo := backoff.New(backoff.Policy{Min: 10 * time.Millisecond, Max: 2 * time.Second}, backoff.NewSource())
	first := true
	for {
		conn, err := c.dial()
		if err != nil {
			if !bo.SleepCh(c.done) {
				return
			}
			continue
		}
		// Install the connection first: a Publish that lands before the
		// hello is fine (the hub handles publications from any
		// connection state); what must not happen is two writers
		// interleaving frames, which send() prevents.
		c.mu.Lock()
		if c.closed {
			c.mu.Unlock()
			conn.Close()
			return
		}
		c.conn = conn
		if !first {
			c.reconnects++
		}
		first = false
		last := c.lastIdx
		c.mu.Unlock()

		// One persistent gob stream per direction (the hub mirrors
		// this): descriptors cross once, later frames are cheap.
		enc := wire.NewEncoder(conn)

		// The hello exchange runs under the handshake deadline on both
		// directions; a hub that accepted but never engages costs one
		// timeout, not a goroutine forever.
		_ = conn.SetWriteDeadline(time.Now().Add(HandshakeTimeout))
		err = c.send(enc, &hubHello{SID: c.sid, Last: last})
		if err == nil {
			err = conn.SetWriteDeadline(time.Time{})
		}
		if err == nil {
			// Armed until the first frame arrives; readLoop disarms it.
			err = conn.SetReadDeadline(time.Now().Add(HandshakeTimeout))
		}
		if err != nil {
			c.mu.Lock()
			c.conn = nil
			c.mu.Unlock()
			conn.Close()
			if !bo.SleepCh(c.done) {
				return
			}
			continue
		}
		bo.Reset()

		// The pump resends unacked publications and carries new ones,
		// concurrently with the read loop — so acks coming back prune
		// the backlog even while resending, and a connection that dies
		// mid-resend has still made durable progress. It holds its first
		// send until the hub's hello-ack reports the watermark: blasting
		// the whole backlog blind would spend the connection's life
		// re-sending publications the hub already has.
		ackReady := make(chan struct{})
		c.mu.Lock()
		c.ackReady = ackReady
		c.mu.Unlock()
		go c.pump(conn, enc, ackReady)
		err = c.readLoop(conn)
		c.mu.Lock()
		c.conn = nil
		closed := c.closed
		c.mu.Unlock()
		conn.Close()
		c.kickPump() // unblock the pump so it notices the dead conn
		if closed || err == errChannelClosed {
			return
		}
	}
}

func (c *resumeChannel) kickPump() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// pump is the sole writer of publications on one connection: it sends
// every pending (unacked) publication in pubSeq order, then waits for
// more, preserving per-publisher FIFO. It exits when the connection is
// replaced or the channel closes. Re-sending an already-logged
// publication is harmless (the hub deduplicates on PubSeq).
func (c *resumeChannel) pump(conn net.Conn, enc *wire.Encoder, ackReady chan struct{}) {
	// Wait for the hub's hello-ack (which prunes already-logged
	// publications) before the first send.
	for waiting := true; waiting; {
		select {
		case <-ackReady:
			waiting = false
		case <-c.done:
			return
		case <-c.kick:
			c.mu.Lock()
			closed, cur := c.closed, c.conn == conn
			c.mu.Unlock()
			if closed {
				return
			}
			if !cur {
				c.kickPump() // forward to the replacement conn's pump
				return
			}
		}
	}
	var lastSent uint64
	for {
		c.mu.Lock()
		if c.closed || c.conn != conn {
			stale := !c.closed
			c.mu.Unlock()
			if stale {
				// Forward any wakeup we may have swallowed to the pump
				// of the replacement connection.
				c.kickPump()
			}
			return
		}
		var p *hubPub
		for _, q := range c.pending {
			if q.PubSeq > lastSent {
				p = q
				break
			}
		}
		c.mu.Unlock()
		if p == nil {
			select {
			case <-c.kick:
			case <-c.done:
				return
			}
			continue
		}
		if err := c.send(enc, p); err != nil {
			return
		}
		lastSent = p.PubSeq
	}
}

// errChannelClosed distinguishes "consumer went away" from "network
// failed" inside readLoop.
var errChannelClosed = fmt.Errorf("broadcast: channel closed")

// readLoop pumps hub log entries into ch until the connection or the
// channel dies. Delivery blocks — a resumable channel never drops a
// message; backpressure is the consumer's problem, exactly as with the
// in-process hub's deep buffer.
func (c *resumeChannel) readLoop(conn net.Conn) error {
	dec := wire.NewDecoder(conn)
	handshake := true
	for {
		msg, err := dec.Decode()
		if err != nil {
			return err
		}
		if handshake {
			// First frame: the hub is engaged; drop back to unbounded
			// reads (silence on an idle hub is normal from here on).
			handshake = false
			_ = conn.SetReadDeadline(time.Time{})
		}
		var e *hubSeq
		switch m := msg.(type) {
		case *hubSeq:
			e = m
		case *hubAck:
			// The hub has durably logged every publication up to
			// LastPub: stop resending them. This is what breaks the
			// flaky-link livelock where resend traffic starves the
			// reads that would otherwise ack via log delivery.
			c.pruneAcked(m.LastPub)
			c.mu.Lock()
			if c.ackReady != nil {
				close(c.ackReady)
				c.ackReady = nil
			}
			c.mu.Unlock()
			continue
		default:
			// A frame from the pre-upgrade window (the hub fanned it out
			// before processing our hello). The replay that follows the
			// hello is authoritative; delivering this copy too would
			// duplicate it.
			continue
		}
		c.mu.Lock()
		if e.Idx <= c.lastIdx {
			c.mu.Unlock()
			continue // replayed entry we already delivered
		}
		if e.Idx != c.lastIdx+1 {
			// The hub's log is gapless and per-connection delivery is
			// ordered, so a skip means this connection is broken (or the
			// hub reordered — either way, frames are missing). Accepting
			// it would advance lastIdx past entries we never saw and the
			// dedupe above would then drop them forever when they do
			// arrive. Tear the connection down instead: the redial's
			// hello carries lastIdx and the hub replays the gap.
			c.mu.Unlock()
			return fmt.Errorf("broadcast: hub log gap: got idx %d, want %d", e.Idx, c.lastIdx+1)
		}
		c.lastIdx = e.Idx
		c.mu.Unlock()
		if e.SID == c.sid {
			// Our own publication came back: it is in the log.
			c.pruneAcked(e.PubSeq)
		}
		select {
		case c.ch <- e.Msg:
		case <-c.done:
			return errChannelClosed
		}
	}
}

// pruneAcked drops pending publications with PubSeq <= acked.
func (c *resumeChannel) pruneAcked(acked uint64) {
	c.mu.Lock()
	keep := c.pending[:0]
	for _, p := range c.pending {
		if p.PubSeq > acked {
			keep = append(keep, p)
		}
	}
	c.pending = keep
	c.mu.Unlock()
}

// Publish queues msg durably (until the hub logs it) and sends it on
// the live connection if there is one; if not, the next reconnect
// resends it. The hub deduplicates on (SID, PubSeq), so resending a
// publication whose first copy did arrive is harmless.
func (c *resumeChannel) Publish(msg Message) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return ErrClosed
	}
	c.pubSeq++
	p := &hubPub{SID: c.sid, PubSeq: c.pubSeq, Msg: msg}
	//lint:ignore boundedqueue pruned by hub acks (pruneAcked); grows only across a disconnect window, bounded by this one client's publish rate over the outage
	c.pending = append(c.pending, p)
	c.mu.Unlock()
	c.kickPump()
	return nil
}

func (c *resumeChannel) Recv() <-chan Message { return c.ch }

func (c *resumeChannel) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conn := c.conn
	c.mu.Unlock()
	close(c.done)
	if conn != nil {
		conn.Close()
	}
	return nil
}
