package broadcast

import (
	"testing"
	"time"

	"trustedcvs/internal/core"
)

func recvOne(t *testing.T, ch Channel) Message {
	t.Helper()
	select {
	case m, ok := <-ch.Recv():
		if !ok {
			t.Fatal("channel closed")
		}
		return m
	case <-time.After(2 * time.Second):
		t.Fatal("timed out waiting for broadcast")
		return Message{}
	}
}

func TestHubEveryoneReceivesIncludingSender(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	a, b, c := hub.Join(), hub.Join(), hub.Join()

	msg := Message{From: 1, Payload: &core.SyncRequest{From: 1, Round: 7}}
	if err := a.Publish(msg); err != nil {
		t.Fatal(err)
	}
	for _, ch := range []Channel{a, b, c} {
		got := recvOne(t, ch)
		if got.From != 1 || got.Payload.(*core.SyncRequest).Round != 7 {
			t.Fatalf("got %+v", got)
		}
	}
}

func TestHubOrderPreserved(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	a, b := hub.Join(), hub.Join()
	for i := uint64(0); i < 20; i++ {
		if err := a.Publish(Message{From: 0, Payload: &core.SyncRequest{Round: i}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 20; i++ {
		got := recvOne(t, b)
		if got.Payload.(*core.SyncRequest).Round != i {
			t.Fatalf("out of order at %d: %+v", i, got)
		}
	}
}

func TestHubLeave(t *testing.T) {
	hub := NewHub()
	defer hub.Close()
	a, b := hub.Join(), hub.Join()
	b.Close()
	if err := a.Publish(Message{From: 0, Payload: &core.OKResponse{}}); err != nil {
		t.Fatal(err)
	}
	recvOne(t, a)
	if _, ok := <-b.Recv(); ok {
		t.Fatal("closed channel should not deliver")
	}
}

func TestHubClosePublishErrors(t *testing.T) {
	hub := NewHub()
	a := hub.Join()
	hub.Close()
	if err := a.Publish(Message{}); err == nil {
		t.Fatal("publish on closed hub must error")
	}
}

func TestTCPHub(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	a, err := DialHub(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := DialHub(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	// Give the hub a moment to register both connections.
	time.Sleep(50 * time.Millisecond)

	if err := a.Publish(Message{From: 2, Payload: core.SyncReportI{User: 2, LCtr: 3, GCtr: 4}}); err != nil {
		t.Fatal(err)
	}
	for _, ch := range []Channel{a, b} {
		got := recvOne(t, ch)
		if got.From != 2 {
			t.Fatalf("got %+v", got)
		}
		rep, ok := got.Payload.(core.SyncReportI)
		if !ok || rep.LCtr != 3 {
			t.Fatalf("payload: %#v", got.Payload)
		}
	}
}

func TestTCPHubManyMessages(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a, err := DialHub(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := DialHub(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	time.Sleep(50 * time.Millisecond)

	const n = 100
	for i := uint64(0); i < n; i++ {
		if err := a.Publish(Message{From: 0, Payload: &core.SyncRequest{Round: i}}); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < n; i++ {
		got := recvOne(t, b)
		if got.Payload.(*core.SyncRequest).Round != i {
			t.Fatalf("out of order at %d", i)
		}
	}
}
