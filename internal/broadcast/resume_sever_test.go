package broadcast

import (
	"fmt"
	"testing"
	"time"
)

// TestHubResumeSeverReplay forces the hub to sever a slow subscriber
// (outbound queue overflow) and checks that replay on reconnect
// restores every message exactly once, in order.
func TestHubResumeSeverReplay(t *testing.T) {
	const total = 20000

	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	slow := DialHubResume(hub.Addr()).(*resumeChannel)
	defer slow.Close()
	pub := DialHubResume(hub.Addr()).(*resumeChannel)
	defer pub.Close()

	// The publisher is a hub member too: drain its own deliveries so
	// its read loop never wedges on an undrained channel.
	go func() {
		for range pub.Recv() {
		}
	}()

	go func() {
		for j := 0; j < total; j++ {
			if err := pub.Publish(Message{From: 1, Payload: fmt.Sprintf("m-%d", j)}); err != nil {
				t.Errorf("publish %d: %v", j, err)
				return
			}
		}
	}()

	next := 0
	deadline := time.After(120 * time.Second)
	for next < total {
		select {
		case m, ok := <-slow.Recv():
			if !ok {
				t.Fatalf("slow channel closed at %d", next)
			}
			want := fmt.Sprintf("m-%d", next)
			if got := m.Payload.(string); got != want {
				t.Fatalf("at %d: got %q, want %q (reconnects=%d)", next, got, want, slow.Reconnects())
			}
			next++
			if next < 8000 {
				// Crawl through the early burst so the hub's outbound
				// queue for this connection overflows and severs us.
				time.Sleep(200 * time.Microsecond)
			}
		case <-deadline:
			t.Fatalf("stalled at %d/%d (reconnects=%d)", next, total, slow.Reconnects())
		}
	}
	t.Logf("received all %d in order; reconnects=%d", total, slow.Reconnects())
}
