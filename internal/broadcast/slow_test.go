package broadcast

import (
	"encoding/gob"
	"net"
	"testing"
	"time"

	"trustedcvs/internal/wire"
)

// blobPayload is a bulky publication: big enough that a frozen
// subscriber's TCP buffers fill after a handful of messages, which is
// what forces the hub's writer into a blocked Encode.
type blobPayload struct {
	Seq  int
	Data []byte
}

func init() { gob.Register(&blobPayload{}) }

// dialRawResume opens a raw resumable hub connection the test fully
// controls: hello is sent, but nothing is read until the test decides
// to — the deliberately frozen subscriber.
func dialRawResume(t *testing.T, addr string, sid uint64) net.Conn {
	t.Helper()
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := wire.NewEncoder(conn).Encode(&hubHello{SID: sid, Last: 0}); err != nil {
		t.Fatalf("hello: %v", err)
	}
	return conn
}

// TestHubFrozenSubscriberEvicted freezes one subscriber (connects,
// says hello, never reads) while a healthy one keeps consuming. The
// hub must deliver everything to the healthy subscriber promptly,
// evict the frozen connection within the write deadline, and let a
// redial catch up from the log with nothing lost.
func TestHubFrozenSubscriberEvicted(t *testing.T) {
	h, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	h.SetLimits(0, 300*time.Millisecond)

	healthy := DialHubResume(h.Addr())
	defer healthy.Close()

	frozen := dialRawResume(t, h.Addr(), 77)
	defer frozen.Close()

	// Wait until the hub has registered both connections so the frozen
	// one is actually in the fan-out set before publishing starts.
	waitFor(t, "both conns registered", func() bool { return h.Stats().Conns == 2 })

	const n = 200
	blob := make([]byte, 64<<10)
	for i := 1; i <= n; i++ {
		if err := healthy.Publish(Message{From: 1, Payload: &blobPayload{Seq: i, Data: blob}}); err != nil {
			t.Fatalf("publish %d: %v", i, err)
		}
	}

	// The healthy subscriber sees every message in order, regardless of
	// the frozen peer: a slow consumer must not stall the hub.
	deadline := time.After(20 * time.Second)
	for i := 1; i <= n; i++ {
		select {
		case m := <-healthy.Recv():
			if got := m.Payload.(*blobPayload).Seq; got != i {
				t.Fatalf("healthy: got seq %d, want %d", got, i)
			}
		case <-deadline:
			t.Fatalf("healthy subscriber stalled at message %d", i)
		}
	}

	// The frozen connection is evicted within the write deadline (plus
	// scheduling slack) — not parked forever in a blocked Encode.
	waitFor(t, "frozen conn evicted", func() bool { return h.Stats().Conns == 1 })
	if st := h.Stats(); st.Evictions == 0 {
		t.Fatalf("expected at least one eviction, stats %+v", st)
	}

	// A redial catches up from the hub's log: same order, nothing lost.
	resumed := DialHubResume(h.Addr())
	defer resumed.Close()
	for i := 1; i <= n; i++ {
		select {
		case m := <-resumed.Recv():
			if got := m.Payload.(*blobPayload).Seq; got != i {
				t.Fatalf("resumed: got seq %d, want %d", got, i)
			}
		case <-time.After(20 * time.Second):
			t.Fatalf("resumed subscriber stalled at message %d", i)
		}
	}
}

// TestHubOverflowFlipsToReplay drives a resumable connection's live
// queue past its depth and asserts the hub flips it into replay mode
// instead of severing it: the same connection survives, receives the
// whole log gaplessly (queued frames first, then replay), and rejoins
// live fan-out once caught up.
func TestHubOverflowFlipsToReplay(t *testing.T) {
	h, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	// Tiny queue so overflow is reachable; generous write deadline so
	// the briefly-unread connection is not evicted before it resumes.
	h.SetLimits(4, 30*time.Second)

	pub := DialHubResume(h.Addr())
	defer pub.Close()
	slow := dialRawResume(t, h.Addr(), 88)
	defer slow.Close()
	waitFor(t, "both conns registered", func() bool { return h.Stats().Conns == 2 })

	// Publish until the slow conn's queue overflows and flips (its TCP
	// buffers plus a 4-deep queue absorb only so many 128KiB frames),
	// with a hard cap so a pathological environment fails loudly.
	// Publish is asynchronous on a resumable channel, so wait for each
	// publication to reach the hub's log before judging the flip state.
	blob := make([]byte, 128<<10)
	published := 0
	for h.Stats().SlowFlips == 0 {
		if published >= 512 {
			t.Fatalf("no overflow flip after %d publications; stats %+v", published, h.Stats())
		}
		published++
		if err := pub.Publish(Message{From: 1, Payload: &blobPayload{Seq: published, Data: blob}}); err != nil {
			t.Fatalf("publish %d: %v", published, err)
		}
		want := published
		waitFor(t, "publication logged", func() bool { return h.Stats().LogLen >= want })
	}
	if st := h.Stats(); st.Evictions != 0 {
		t.Fatalf("conn was severed, want replay flip; stats %+v", st)
	}

	// The slow consumer wakes up and reads everything: entry indices
	// must be exactly 1..LogLen with no gaps and no duplicates — the
	// queued backlog drains before the replay stream.
	total := h.Stats().LogLen
	dec := wire.NewDecoder(slow)
	next := uint64(1)
	readUpTo := func(limit uint64) {
		for next <= limit {
			slow.SetReadDeadline(time.Now().Add(20 * time.Second))
			msg, err := dec.Decode()
			if err != nil {
				t.Fatalf("slow conn read at idx %d: %v", next, err)
			}
			e, ok := msg.(*hubSeq)
			if !ok {
				continue // hello ack
			}
			if e.Idx != next {
				t.Fatalf("gap or duplicate: got idx %d, want %d", e.Idx, next)
			}
			next++
		}
	}
	readUpTo(uint64(total))

	// Once caught up the conn rejoins live fan-out: one more
	// publication arrives as the next index on the same connection.
	if err := pub.Publish(Message{From: 1, Payload: &blobPayload{Seq: published + 1}}); err != nil {
		t.Fatal(err)
	}
	readUpTo(uint64(total) + 1)
	if st := h.Stats(); st.Conns != 2 || st.Evictions != 0 {
		t.Fatalf("slow conn should have survived: stats %+v", st)
	}
}

// waitFor polls cond until it holds or a generous deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
