package broadcast

import (
	"net"
	"testing"
	"time"

	"trustedcvs/internal/fault"
	"trustedcvs/internal/sig"
)

// collect drains n messages from ch with a deadline.
func collect(t *testing.T, ch Channel, n int) []Message {
	t.Helper()
	out := make([]Message, 0, n)
	timeout := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case m, ok := <-ch.Recv():
			if !ok {
				t.Fatalf("channel closed after %d/%d messages", len(out), n)
			}
			out = append(out, m)
		case <-timeout:
			t.Fatalf("timed out after %d/%d messages", len(out), n)
		}
	}
	return out
}

func payloads(ms []Message) []int {
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = m.Payload.(int)
	}
	return out
}

func TestResumeBasicFIFO(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a := DialHubResume(hub.Addr())
	defer a.Close()
	b := DialHubResume(hub.Addr())
	defer b.Close()
	// Let both hellos land so b doesn't rely on replay for the whole run.
	time.Sleep(50 * time.Millisecond)
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Publish(Message{From: 1, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ch := range []Channel{a, b} {
		got := payloads(collect(t, ch, n))
		for i, v := range got {
			if v != i {
				t.Fatalf("order violated: got %v", got)
			}
		}
	}
}

func TestResumeAcrossFaultyNetwork(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	// Publisher on a clean connection, subscriber through a flaky one:
	// resets every few I/Os force repeated resume cycles.
	pub := DialHubResume(hub.Addr())
	defer pub.Close()
	inj := fault.NewInjector(fault.Config{Seed: 7, After: 4, ResetProb: 0.05, TruncateProb: 0.02})
	sub := DialHubResumeFunc(fault.Dialer(hub.Addr(), inj))
	defer sub.Close()

	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			_ = pub.Publish(Message{From: 2, Payload: i})
			if i%20 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	got := payloads(collect(t, sub, n))
	for i, v := range got {
		if v != i {
			t.Fatalf("gap or duplicate through faulty network at %d: got %d (injected %d faults)", i, v, inj.Injected())
		}
	}
	if inj.Injected() == 0 {
		t.Fatal("no faults injected; test proved nothing")
	}
}

func TestResumePublisherThroughFaults(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	inj := fault.NewInjector(fault.Config{Seed: 11, After: 4, ResetProb: 0.08})
	pub := DialHubResumeFunc(fault.Dialer(hub.Addr(), inj))
	defer pub.Close()
	sub := DialHubResume(hub.Addr())
	defer sub.Close()
	time.Sleep(50 * time.Millisecond)

	const n = 100
	for i := 0; i < n; i++ {
		if err := pub.Publish(Message{From: 3, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	// The clean subscriber must see every publication exactly once, in
	// order — resends after the publisher's reconnects are deduplicated
	// by the hub, lost first copies are resent.
	got := payloads(collect(t, sub, n))
	for i, v := range got {
		if v != i {
			t.Fatalf("hub-side dedupe failed at %d: got %d", i, v)
		}
	}
	// No extra duplicates trailing behind.
	select {
	case m := <-sub.Recv():
		t.Fatalf("duplicate delivery after the expected %d: %v", n, m.Payload)
	case <-time.After(200 * time.Millisecond):
	}
	if inj.Injected() == 0 {
		t.Fatal("no faults injected; test proved nothing")
	}
}

func TestResumeAndLegacyInterop(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	legacy, err := DialHub(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	res := DialHubResume(hub.Addr())
	defer res.Close()
	time.Sleep(50 * time.Millisecond)

	// Publish one at a time: the hub's total order is its arrival
	// order, so concurrent publishes from different connections may
	// legitimately swap.
	if err := legacy.Publish(Message{From: sig.UserID(1), Payload: 100}); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]Channel{"legacy": legacy, "resume": res} {
		if got := payloads(collect(t, ch, 1)); got[0] != 100 {
			t.Fatalf("%s subscriber saw %v, want [100]", name, got)
		}
	}
	if err := res.Publish(Message{From: sig.UserID(2), Payload: 200}); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]Channel{"legacy": legacy, "resume": res} {
		if got := payloads(collect(t, ch, 1)); got[0] != 200 {
			t.Fatalf("%s subscriber saw %v, want [200]", name, got)
		}
	}
}

func TestResumeReconnectCountAndHardOutage(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	addr := hub.Addr()

	// A dialer that fails entirely during the outage window.
	var outage chan struct{}
	outage = make(chan struct{})
	dial := func() (net.Conn, error) {
		select {
		case <-outage:
			return net.DialTimeout("tcp", addr, time.Second)
		default:
			return nil, net.ErrClosed
		}
	}
	sub := DialHubResumeFunc(dial)
	defer sub.Close()

	pubc := DialHubResume(addr)
	defer pubc.Close()
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 10; i++ {
		if err := pubc.Publish(Message{From: 1, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	// End the outage: the subscriber's first successful connection
	// replays the whole log.
	time.Sleep(100 * time.Millisecond)
	close(outage)
	got := payloads(collect(t, sub, 10))
	for i, v := range got {
		if v != i {
			t.Fatalf("replay after outage broken: got %v", got)
		}
	}
}
