package broadcast

import (
	"net"
	"sync"
	"testing"
	"time"

	"trustedcvs/internal/fault"
	"trustedcvs/internal/sig"
)

// collect drains n messages from ch with a deadline.
func collect(t *testing.T, ch Channel, n int) []Message {
	t.Helper()
	out := make([]Message, 0, n)
	timeout := time.After(10 * time.Second)
	for len(out) < n {
		select {
		case m, ok := <-ch.Recv():
			if !ok {
				t.Fatalf("channel closed after %d/%d messages", len(out), n)
			}
			out = append(out, m)
		case <-timeout:
			t.Fatalf("timed out after %d/%d messages", len(out), n)
		}
	}
	return out
}

func payloads(ms []Message) []int {
	out := make([]int, len(ms))
	for i, m := range ms {
		out[i] = m.Payload.(int)
	}
	return out
}

func TestResumeBasicFIFO(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	a := DialHubResume(hub.Addr())
	defer a.Close()
	b := DialHubResume(hub.Addr())
	defer b.Close()
	// Let both hellos land so b doesn't rely on replay for the whole run.
	time.Sleep(50 * time.Millisecond)
	const n = 50
	for i := 0; i < n; i++ {
		if err := a.Publish(Message{From: 1, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	for _, ch := range []Channel{a, b} {
		got := payloads(collect(t, ch, n))
		for i, v := range got {
			if v != i {
				t.Fatalf("order violated: got %v", got)
			}
		}
	}
}

func TestResumeAcrossFaultyNetwork(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	// Publisher on a clean connection, subscriber through a flaky one:
	// resets every few I/Os force repeated resume cycles.
	pub := DialHubResume(hub.Addr())
	defer pub.Close()
	inj := fault.NewInjector(fault.Config{Seed: 7, After: 4, ResetProb: 0.05, TruncateProb: 0.02})
	sub := DialHubResumeFunc(fault.Dialer(hub.Addr(), inj))
	defer sub.Close()

	const n = 200
	go func() {
		for i := 0; i < n; i++ {
			_ = pub.Publish(Message{From: 2, Payload: i})
			if i%20 == 0 {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	got := payloads(collect(t, sub, n))
	for i, v := range got {
		if v != i {
			t.Fatalf("gap or duplicate through faulty network at %d: got %d (injected %d faults)", i, v, inj.Injected())
		}
	}
	if inj.Injected() == 0 {
		t.Fatal("no faults injected; test proved nothing")
	}
}

func TestResumePublisherThroughFaults(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	inj := fault.NewInjector(fault.Config{Seed: 11, After: 4, ResetProb: 0.08})
	pub := DialHubResumeFunc(fault.Dialer(hub.Addr(), inj))
	defer pub.Close()
	sub := DialHubResume(hub.Addr())
	defer sub.Close()
	time.Sleep(50 * time.Millisecond)

	const n = 100
	for i := 0; i < n; i++ {
		if err := pub.Publish(Message{From: 3, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	// The clean subscriber must see every publication exactly once, in
	// order — resends after the publisher's reconnects are deduplicated
	// by the hub, lost first copies are resent.
	got := payloads(collect(t, sub, n))
	for i, v := range got {
		if v != i {
			t.Fatalf("hub-side dedupe failed at %d: got %d", i, v)
		}
	}
	// No extra duplicates trailing behind.
	select {
	case m := <-sub.Recv():
		t.Fatalf("duplicate delivery after the expected %d: %v", n, m.Payload)
	case <-time.After(200 * time.Millisecond):
	}
	if inj.Injected() == 0 {
		t.Fatal("no faults injected; test proved nothing")
	}
}

func TestResumeAndLegacyInterop(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	legacy, err := DialHub(hub.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	res := DialHubResume(hub.Addr())
	defer res.Close()
	time.Sleep(50 * time.Millisecond)

	// Publish one at a time: the hub's total order is its arrival
	// order, so concurrent publishes from different connections may
	// legitimately swap.
	if err := legacy.Publish(Message{From: sig.UserID(1), Payload: 100}); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]Channel{"legacy": legacy, "resume": res} {
		if got := payloads(collect(t, ch, 1)); got[0] != 100 {
			t.Fatalf("%s subscriber saw %v, want [100]", name, got)
		}
	}
	if err := res.Publish(Message{From: sig.UserID(2), Payload: 200}); err != nil {
		t.Fatal(err)
	}
	for name, ch := range map[string]Channel{"legacy": legacy, "resume": res} {
		if got := payloads(collect(t, ch, 1)); got[0] != 200 {
			t.Fatalf("%s subscriber saw %v, want [200]", name, got)
		}
	}
}

func TestResumeReconnectCountAndHardOutage(t *testing.T) {
	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	addr := hub.Addr()

	// A dialer that fails entirely during the outage window.
	var outage chan struct{}
	outage = make(chan struct{})
	dial := func() (net.Conn, error) {
		select {
		case <-outage:
			return net.DialTimeout("tcp", addr, time.Second)
		default:
			return nil, net.ErrClosed
		}
	}
	sub := DialHubResumeFunc(dial)
	defer sub.Close()

	pubc := DialHubResume(addr)
	defer pubc.Close()
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 10; i++ {
		if err := pubc.Publish(Message{From: 1, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}
	// End the outage: the subscriber's first successful connection
	// replays the whole log.
	time.Sleep(100 * time.Millisecond)
	close(outage)
	got := payloads(collect(t, sub, 10))
	for i, v := range got {
		if v != i {
			t.Fatalf("replay after outage broken: got %v", got)
		}
	}
}

// TestResumeHandshakeTimeoutOnMuteHub is the regression test for the
// unbounded-handshake bug: a hub that accepts the TCP connection but
// never answers the hello used to park the member in a blocking read
// forever — the connection looked "up", so the redial loop never ran.
// With HandshakeTimeout the mute connection costs one bounded timeout
// and the member redials; once a real hub answers, delivery resumes.
func TestResumeHandshakeTimeoutOnMuteHub(t *testing.T) {
	saved := HandshakeTimeout
	HandshakeTimeout = 50 * time.Millisecond
	defer func() { HandshakeTimeout = saved }()

	// A listener that accepts and then goes mute: never reads, never
	// writes, holds the connection open.
	mute, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer mute.Close()
	muteDone := make(chan struct{})
	go func() {
		defer close(muteDone)
		var held []net.Conn
		defer func() {
			for _, c := range held {
				c.Close()
			}
		}()
		for {
			conn, err := mute.Accept()
			if err != nil {
				return
			}
			held = append(held, conn)
		}
	}()

	hub, err := ListenHub("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	// The first two dials land on the mute listener; later ones reach
	// the real hub. Without the handshake deadline the very first dial
	// hangs the member permanently and the test times out.
	var dials int
	var dialMu sync.Mutex
	dial := func() (net.Conn, error) {
		dialMu.Lock()
		dials++
		n := dials
		dialMu.Unlock()
		if n <= 2 {
			return net.DialTimeout("tcp", mute.Addr().String(), time.Second)
		}
		return net.DialTimeout("tcp", hub.Addr(), time.Second)
	}

	sub := DialHubResumeFunc(dial)
	defer sub.Close()

	pubc := DialHubResume(hub.Addr())
	defer pubc.Close()
	for i := 0; i < 5; i++ {
		if err := pubc.Publish(Message{From: 1, Payload: i}); err != nil {
			t.Fatal(err)
		}
	}

	got := payloads(collect(t, sub, 5))
	for i, v := range got {
		if v != i {
			t.Fatalf("delivery after mute-hub recovery broken: got %v", got)
		}
	}

	rc, ok := sub.(*resumeChannel)
	if !ok {
		t.Fatalf("DialHubResumeFunc returned %T", sub)
	}
	if n := rc.Reconnects(); n < 2 {
		t.Fatalf("expected at least 2 redials past the mute hub, got %d", n)
	}
	dialMu.Lock()
	n := dials
	dialMu.Unlock()
	if n < 3 {
		t.Fatalf("member never dialed past the mute listener: %d dials", n)
	}
}
