// Package proto1 implements Protocol I of the Trusted CVS paper
// (Section 4.2): every database state h(M(D)‖ctr) is signed by the
// user that produced it; the server must present the latest signed
// state with every answer, and the user counter-signs the successor
// state. Every k operations the users synchronize over the broadcast
// channel and check that some user's gctr equals Σ lctrₖ, which pins
// all operations onto one linear history (Theorem 4.1).
//
// Message flow per operation (three messages — the extra user→server
// signature message is the blocking step Protocol II removes):
//
//	user → server: OpRequest{op}
//	server → user: OpResponseI{answer, VO, ctr, j, sig_j(h(M(D)‖ctr))}
//	user → server: AckRequest{sig_i(h(M(D′)‖ctr+1))}
//
// Server and User are pure state machines: they perform no I/O and are
// driven by internal/sim (deterministic experiments) or the live
// transport driver.
package proto1

import (
	"errors"
	"fmt"
	"sync"

	"trustedcvs/internal/core"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/forensics"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// ErrAckPending is returned by an honest server when an operation
// arrives before the previous operation's signature ack. (A malicious
// server is free to violate this; users detect the consequences.)
var ErrAckPending = errors.New("proto1: previous operation's ack is still pending")

// ErrNoAckDue is returned when an ack arrives with no operation
// outstanding.
var ErrNoAckDue = errors.New("proto1: no ack is due")

// InitState is the elected user's signature over the initial database
// state, h(M(D₀)‖0), installed on the server before the protocol
// starts ("some user j is elected to sign h(M(D₀)‖0) and send it to
// the server").
type InitState struct {
	Signer sig.UserID
	Sig    sig.Signature
}

// Initialize produces the initial signed state for a database root.
func Initialize(s *sig.Signer, initialRoot digest.Digest) InitState {
	return InitState{Signer: s.ID(), Sig: s.Sign(core.StateHash(initialRoot, 0))}
}

// Server is the (honest) Protocol I server state machine.
//
// Server is safe for concurrent use. The ordered section under mu is
// minimal — the ack-pending gate, the database transition, and the
// capture of the presented signed state; VO pruning and answer
// encoding run after the lock is released. Protocol I remains
// logically blocking regardless (no new operation is admitted until
// the previous operation's ack lands), so concurrency here buys
// pipelining of the crypto, not operation overlap — that is Protocol
// II's contribution.
type Server struct {
	mu       sync.Mutex
	db       *vdb.DB
	lastUser sig.UserID
	lastSig  sig.Signature
	ackDue   bool
}

// NewServer wraps db with Protocol I bookkeeping. init must be the
// elected user's signature over the db's current (initial) state.
func NewServer(db *vdb.DB, init InitState) *Server {
	return &Server{db: db, lastUser: init.Signer, lastSig: init.Sig}
}

// DB exposes the underlying database (used by adversaries that wrap an
// honest core, and by the content store glue).
func (s *Server) DB() *vdb.DB { return s.db }

// Fork returns an independent copy of the server sharing history up to
// now — the primitive behind the Figure 1 partition attack. Honest
// servers never call this; internal/adversary does.
func (s *Server) Fork() *Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Server{db: s.db.Fork(), lastUser: s.lastUser, lastSig: s.lastSig, ackDue: s.ackDue}
}

// HandleOp applies the user's operation and returns the Protocol I
// response. The server then blocks (refuses further ops) until
// HandleAck delivers the user's signature over the new state.
func (s *Server) HandleOp(req *core.OpRequest) (*core.OpResponseI, error) {
	// Ordered section: the ack gate, the transition, and the signed
	// pre-state capture must be one atomic step — the presented
	// (Signer, Sig) pair certifies exactly this operation's pre-state.
	s.mu.Lock()
	if s.ackDue {
		s.mu.Unlock()
		return nil, ErrAckPending
	}
	st, err := s.db.Begin(req.Op)
	if err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("proto1: apply: %w", err)
	}
	s.ackDue = true
	signer, lastSig := s.lastUser, s.lastSig
	s.mu.Unlock()

	ans, vo, err := st.Finish()
	if err != nil {
		return nil, fmt.Errorf("proto1: encode: %w", err)
	}
	return &core.OpResponseI{
		Answer: ans,
		VO:     vo,
		Ctr:    st.PreCtr(),
		Signer: signer,
		Sig:    lastSig,
	}, nil
}

// HandleAck stores the user's signature over the new state; the next
// operation's response will present it.
func (s *Server) HandleAck(ack *core.AckRequest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !s.ackDue {
		return ErrNoAckDue
	}
	s.lastUser = ack.User
	s.lastSig = ack.Sig
	s.ackDue = false
	return nil
}

// User is the Protocol I user state machine. Its persistent state is
// the pair (lctrᵢ, gctrᵢ) plus the signing key — constant size, per
// desideratum 5. An optional bounded journal (EnableJournal) supports
// post-detection fault localization via internal/forensics.
type User struct {
	signer    *sig.Signer
	ring      *sig.Ring
	k         uint64
	lctr      uint64
	gctr      uint64
	sinceSync uint64
	journal   *forensics.Journal
	lastRoot  digest.Digest
}

// EnableJournal attaches a bounded transition journal of the given
// capacity for fault localization (the paper's future work item 1).
func (u *User) EnableJournal(cap int) {
	u.journal = forensics.NewJournal(u.ID(), cap)
}

// Journal returns the user's transition journal (nil if not enabled).
func (u *User) Journal() *forensics.Journal { return u.journal }

// NewUser creates the user state machine. k is the synchronization
// period: the first user to complete k operations since the last sync
// announces a sync-up.
func NewUser(signer *sig.Signer, ring *sig.Ring, k uint64) *User {
	if k == 0 {
		panic("proto1: sync period k must be positive")
	}
	return &User{signer: signer, ring: ring, k: k}
}

// ID returns the user's identity.
func (u *User) ID() sig.UserID { return u.signer.ID() }

// LCtr returns lctrᵢ, the user's completed-operation count.
func (u *User) LCtr() uint64 { return u.lctr }

// VerifiedRoot returns the (ctr, root) pair this user most recently
// verified through a VO, for cross-checking against witness
// commitments. Zero (0, Zero) before any operation.
func (u *User) VerifiedRoot() (uint64, digest.Digest) {
	return u.gctr, u.lastRoot
}

// Request builds the operation request for op.
func (u *User) Request(op vdb.Op) *core.OpRequest {
	return &core.OpRequest{User: u.ID(), Op: op}
}

// HandleResponse verifies the server's reply to op. On success it
// returns the decoded answer and the ack the driver must send to the
// server; on deviation it returns a *core.DetectionError.
func (u *User) HandleResponse(op vdb.Op, resp *core.OpResponseI) (*core.AckRequest, any, error) {
	if resp == nil || resp.VO == nil {
		return nil, nil, core.Detect(core.ProtocolViolation, u.ID(), u.lctr, errors.New("missing response or VO"))
	}
	oldRoot, newRoot, err := vdb.VerifyDerive(op, resp.Answer, resp.VO)
	if err != nil {
		return nil, nil, core.Detect(classify(err), u.ID(), u.lctr, err)
	}
	// Step 4: verify that sig is legitimate — the named user's
	// signature over h(M(D)‖ctr) for the VO-derived M(D).
	if err := u.ring.Verify(resp.Signer, core.StateHash(oldRoot, resp.Ctr), resp.Sig); err != nil {
		return nil, nil, core.Detect(core.BadSignature, u.ID(), u.lctr, err)
	}
	u.lctr++
	u.gctr = resp.Ctr + 1
	u.sinceSync++
	u.lastRoot = newRoot
	if u.journal != nil {
		u.journal.Record(resp.Ctr+1, core.StateHash(oldRoot, resp.Ctr), core.StateHash(newRoot, resp.Ctr+1))
	}
	ack := &core.AckRequest{
		User: u.ID(),
		Sig:  u.signer.Sign(core.StateHash(newRoot, resp.Ctr+1)),
	}
	ans, err := vdb.DecodeAnswer(resp.Answer)
	if err != nil {
		return nil, nil, core.Detect(core.ProtocolViolation, u.ID(), u.lctr, err)
	}
	return ack, ans, nil
}

// NeedsSync reports whether this user has completed k operations since
// the last synchronization and must announce a sync-up.
func (u *User) NeedsSync() bool { return u.sinceSync >= u.k }

// SyncReport is the user's broadcast contribution to a sync round.
func (u *User) SyncReport() core.SyncReportI {
	return core.SyncReportI{User: u.ID(), LCtr: u.lctr, GCtr: u.gctr}
}

// CompleteSync evaluates a full set of sync reports (one per user).
// It fails with a SyncMismatch detection if no user's gctr matches the
// total operation count.
func (u *User) CompleteSync(reports []core.SyncReportI) error {
	if core.CheckSyncI(reports) < 0 {
		return core.Detect(core.SyncMismatch, u.ID(), u.lctr,
			fmt.Errorf("no gctr matches the %d total operations", totalLCtr(reports)))
	}
	u.sinceSync = 0
	return nil
}

func totalLCtr(reports []core.SyncReportI) uint64 {
	var t uint64
	for _, r := range reports {
		t += r.LCtr
	}
	return t
}

// classify maps verification failures to detection classes.
func classify(err error) core.DetectionClass {
	if errors.Is(err, vdb.ErrAnswerMismatch) {
		return core.BadAnswer
	}
	return core.BadVO
}
