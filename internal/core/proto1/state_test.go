package proto1

import (
	"testing"

	"trustedcvs/internal/sig"
)

func TestP1StateRoundTripContinuesRun(t *testing.T) {
	h := newHarness(t, 2, 1000)
	for i := 0; i < 6; i++ {
		h.do(i%2, put("k", "v"))
	}
	data, err := h.users[1].MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	// "New process": rebuild keys from the same source, restore.
	signers, ring, err := sig.DeterministicSigners(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreUser(signers[1], ring, data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.LCtr() != h.users[1].LCtr() {
		t.Fatalf("restored lctr %d != %d", restored.LCtr(), h.users[1].LCtr())
	}
	h.users[1] = restored
	for i := 0; i < 4; i++ {
		h.do(1, put("k2", "w"))
	}
	if err := h.sync(); err != nil {
		t.Fatalf("sync after restore: %v", err)
	}
}

func TestP1StateRestoreValidation(t *testing.T) {
	signers, ring, err := sig.DeterministicSigners(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreUser(signers[0], ring, []byte("junk")); err == nil {
		t.Fatal("garbage must be rejected")
	}
	u := NewUser(signers[0], ring, 4)
	data, err := u.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	// Restoring with the WRONG signer must be refused: the counters
	// belong to user 0.
	if _, err := RestoreUser(signers[1], ring, data); err == nil {
		t.Fatal("identity mismatch must be rejected")
	}
	if _, err := RestoreUser(signers[0], ring, data); err != nil {
		t.Fatalf("valid restore failed: %v", err)
	}
}
