package proto1

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"trustedcvs/internal/sig"
)

// State is the serializable protocol state of a Protocol I user: the
// counters of desideratum 5. Keys are NOT part of it — the caller owns
// key material and supplies the signer and ring again on restore.
type State struct {
	ID        sig.UserID
	K         uint64
	LCtr      uint64
	GCtr      uint64
	SinceSync uint64
}

// MarshalState serializes the user's counters.
func (u *User) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	st := State{ID: u.ID(), K: u.k, LCtr: u.lctr, GCtr: u.gctr, SinceSync: u.sinceSync}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("proto1: marshal state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreUser reconstructs a user from persisted counters plus the
// caller-held key material. The signer's identity must match the
// persisted state.
func RestoreUser(signer *sig.Signer, ring *sig.Ring, data []byte) (*User, error) {
	var st State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("proto1: restore state: %w", err)
	}
	if st.ID != signer.ID() {
		return nil, fmt.Errorf("proto1: state belongs to %v, signer is %v", st.ID, signer.ID())
	}
	if st.K == 0 {
		return nil, fmt.Errorf("proto1: restore state: zero sync period")
	}
	u := NewUser(signer, ring, st.K)
	u.lctr, u.gctr, u.sinceSync = st.LCtr, st.GCtr, st.SinceSync
	return u, nil
}
