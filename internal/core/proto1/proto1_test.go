package proto1

import (
	"errors"
	"fmt"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// harness wires n users to one honest Protocol I server, in process.
type harness struct {
	t      *testing.T
	server *Server
	users  []*User
}

func newHarness(t *testing.T, n int, k uint64) *harness {
	t.Helper()
	signers, ring, err := sig.DeterministicSigners(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	db := vdb.New(0)
	srv := NewServer(db, Initialize(signers[0], db.Root()))
	users := make([]*User, n)
	for i := range users {
		users[i] = NewUser(signers[i], ring, k)
	}
	return &harness{t: t, server: srv, users: users}
}

// do runs one full verified operation by user u, returning the decoded
// answer (fails the test on any error).
func (h *harness) do(u int, op vdb.Op) any {
	h.t.Helper()
	ans, err := h.tryDo(u, op)
	if err != nil {
		h.t.Fatalf("user %d op: %v", u, err)
	}
	return ans
}

func (h *harness) tryDo(u int, op vdb.Op) (any, error) {
	user := h.users[u]
	resp, err := h.server.HandleOp(user.Request(op))
	if err != nil {
		return nil, err
	}
	ack, ans, err := user.HandleResponse(op, resp)
	if err != nil {
		return nil, err
	}
	if err := h.server.HandleAck(ack); err != nil {
		return nil, err
	}
	return ans, nil
}

// sync runs a full synchronization round; every user evaluates.
func (h *harness) sync() error {
	reports := make([]core.SyncReportI, len(h.users))
	for i, u := range h.users {
		reports[i] = u.SyncReport()
	}
	for _, u := range h.users {
		if err := u.CompleteSync(reports); err != nil {
			return err
		}
	}
	return nil
}

func put(k, v string) vdb.Op { return &vdb.WriteOp{Puts: []vdb.KV{{Key: k, Val: []byte(v)}}} }
func get(k string) vdb.Op    { return &vdb.ReadOp{Keys: []string{k}} }

func TestHonestRun(t *testing.T) {
	h := newHarness(t, 3, 4)
	h.do(0, put("a", "1"))
	h.do(1, put("b", "2"))
	ans := h.do(2, get("a"))
	ra := ans.(vdb.ReadAnswer)
	if !ra.Results[0].Found || string(ra.Results[0].Val) != "1" {
		t.Fatalf("read: %+v", ra)
	}
	if err := h.sync(); err != nil {
		t.Fatalf("sync on honest run: %v", err)
	}
}

func TestHonestManyOpsManySyncs(t *testing.T) {
	h := newHarness(t, 4, 3)
	for round := 0; round < 5; round++ {
		for u := range h.users {
			for j := 0; j < 3; j++ {
				h.do(u, put(fmt.Sprintf("k%d", j), fmt.Sprintf("r%d-u%d", round, u)))
				if h.users[u].NeedsSync() {
					if err := h.sync(); err != nil {
						t.Fatalf("sync: %v", err)
					}
				}
			}
		}
	}
}

func TestNeedsSyncTrigger(t *testing.T) {
	h := newHarness(t, 2, 3)
	for i := 0; i < 2; i++ {
		h.do(0, put("x", "v"))
		if h.users[0].NeedsSync() {
			t.Fatalf("sync wanted after only %d ops", i+1)
		}
	}
	h.do(0, put("x", "v"))
	if !h.users[0].NeedsSync() {
		t.Fatal("sync not wanted after k ops")
	}
	if err := h.sync(); err != nil {
		t.Fatal(err)
	}
	if h.users[0].NeedsSync() {
		t.Fatal("sync flag not cleared")
	}
}

func TestAckFlowEnforced(t *testing.T) {
	h := newHarness(t, 2, 10)
	op := put("a", "1")
	resp, err := h.server.HandleOp(h.users[0].Request(op))
	if err != nil {
		t.Fatal(err)
	}
	// Second op before ack must be refused by the honest server.
	if _, err := h.server.HandleOp(h.users[1].Request(op)); !errors.Is(err, ErrAckPending) {
		t.Fatalf("want ErrAckPending, got %v", err)
	}
	ack, _, err := h.users[0].HandleResponse(op, resp)
	if err != nil {
		t.Fatal(err)
	}
	if err := h.server.HandleAck(ack); err != nil {
		t.Fatal(err)
	}
	// Ack with nothing due must be refused.
	if err := h.server.HandleAck(ack); !errors.Is(err, ErrNoAckDue) {
		t.Fatalf("want ErrNoAckDue, got %v", err)
	}
}

func TestDetectsTamperedAnswer(t *testing.T) {
	h := newHarness(t, 2, 10)
	h.do(0, put("a", "true"))
	op := get("a")
	resp, err := h.server.HandleOp(h.users[1].Request(op))
	if err != nil {
		t.Fatal(err)
	}
	forged, err := vdb.EncodeAnswer(vdb.ReadAnswer{Results: []vdb.ReadResult{{Key: "a", Found: true, Val: []byte("lie")}}})
	if err != nil {
		t.Fatal(err)
	}
	resp.Answer = forged
	_, _, err = h.users[1].HandleResponse(op, resp)
	de, ok := core.AsDetection(err)
	if !ok || de.Class != core.BadAnswer {
		t.Fatalf("want BadAnswer detection, got %v", err)
	}
}

func TestDetectsForgedSignature(t *testing.T) {
	h := newHarness(t, 2, 10)
	op := put("a", "1")
	resp, err := h.server.HandleOp(h.users[0].Request(op))
	if err != nil {
		t.Fatal(err)
	}
	resp.Sig = append(sig.Signature(nil), resp.Sig...)
	resp.Sig[0] ^= 0xFF
	_, _, err = h.users[0].HandleResponse(op, resp)
	de, ok := core.AsDetection(err)
	if !ok || de.Class != core.BadSignature {
		t.Fatalf("want BadSignature detection, got %v", err)
	}
}

func TestDetectsWrongSigner(t *testing.T) {
	h := newHarness(t, 3, 10)
	op := put("a", "1")
	resp, err := h.server.HandleOp(h.users[0].Request(op))
	if err != nil {
		t.Fatal(err)
	}
	resp.Signer = 2 // server lies about who signed
	_, _, err = h.users[0].HandleResponse(op, resp)
	de, ok := core.AsDetection(err)
	if !ok || de.Class != core.BadSignature {
		t.Fatalf("want BadSignature detection, got %v", err)
	}
}

func TestMissingVO(t *testing.T) {
	h := newHarness(t, 1, 10)
	op := put("a", "1")
	resp, err := h.server.HandleOp(h.users[0].Request(op))
	if err != nil {
		t.Fatal(err)
	}
	resp.VO = nil
	_, _, err = h.users[0].HandleResponse(op, resp)
	de, ok := core.AsDetection(err)
	if !ok || de.Class != core.ProtocolViolation {
		t.Fatalf("want ProtocolViolation, got %v", err)
	}
}

// TestPartitionAttackDetectedAtSync mounts the Figure 1 fork: users
// {0} and {1} are served from diverged copies. Per-operation
// verification passes on both branches (that is the point of the
// attack); the synchronization check catches it.
func TestPartitionAttackDetectedAtSync(t *testing.T) {
	h := newHarness(t, 2, 100)
	h.do(0, put("Common.h", "#define X 1"))
	h.do(1, get("Common.h"))

	// Server forks: user 0 continues on branch A, user 1 on branch B.
	branchB := h.server.Fork()

	doOn := func(srv *Server, u int, op vdb.Op) {
		t.Helper()
		user := h.users[u]
		resp, err := srv.HandleOp(user.Request(op))
		if err != nil {
			t.Fatal(err)
		}
		ack, _, err := user.HandleResponse(op, resp)
		if err != nil {
			t.Fatalf("per-op verification must pass on a fork (that is the attack): %v", err)
		}
		if err := srv.HandleAck(ack); err != nil {
			t.Fatal(err)
		}
	}
	doOn(h.server, 0, put("a.c", "branch A"))
	doOn(branchB, 1, put("b.c", "branch B"))
	doOn(h.server, 0, put("a2.c", "more A"))
	doOn(branchB, 1, put("b2.c", "more B"))

	err := h.sync()
	de, ok := core.AsDetection(err)
	if !ok || de.Class != core.SyncMismatch {
		t.Fatalf("want SyncMismatch detection, got %v", err)
	}
}

// TestStaleStateReplayDetectedAtSync: the server completes a user's
// update, then serves the next user from the pre-update state (a
// replay of an old signed root, Section 4.2's partition observation).
func TestStaleStateReplayDetectedAtSync(t *testing.T) {
	h := newHarness(t, 2, 100)
	h.do(0, put("f", "v1"))
	stale := h.server.Fork() // snapshot before v2

	h.do(0, put("f", "v2"))

	// User 1 is now served from the stale snapshot; its per-op check
	// passes because the old signed state is legitimate.
	op := get("f")
	resp, err := stale.HandleOp(h.users[1].Request(op))
	if err != nil {
		t.Fatal(err)
	}
	ack, ans, err := h.users[1].HandleResponse(op, resp)
	if err != nil {
		t.Fatalf("replay must pass per-op verification: %v", err)
	}
	if err := stale.HandleAck(ack); err != nil {
		t.Fatal(err)
	}
	if ra := ans.(vdb.ReadAnswer); string(ra.Results[0].Val) != "v1" {
		t.Fatalf("stale read should see v1, got %q", ra.Results[0].Val)
	}

	err = h.sync()
	if de, ok := core.AsDetection(err); !ok || de.Class != core.SyncMismatch {
		t.Fatalf("want SyncMismatch detection, got %v", err)
	}
}

func TestInitializeSignsInitialState(t *testing.T) {
	signers, ring, err := sig.DeterministicSigners(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	db := vdb.New(0)
	init := Initialize(signers[0], db.Root())
	if err := ring.Verify(init.Signer, core.StateHash(db.Root(), 0), init.Sig); err != nil {
		t.Fatalf("init signature invalid: %v", err)
	}
}
