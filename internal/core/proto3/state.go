package proto3

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"trustedcvs/internal/core"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/sig"
)

// UserState is the serializable protocol state of a Protocol III user:
// registers, epoch bookkeeping, and the pending (not yet uploaded)
// epoch backup. Key material stays with the caller, as in proto1.
type UserState struct {
	ID           sig.UserID
	Registers    core.Registers
	InitialState digest.Digest
	Epoch        uint64
	EpochKnown   bool
	Pending      *core.EpochBackup
	CheckedUpTo  uint64
}

// MarshalState serializes the user's protocol state.
func (u *User) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	st := UserState{
		ID:           u.ID(),
		Registers:    u.regs,
		InitialState: u.initialState,
		Epoch:        u.epoch,
		EpochKnown:   u.epochKnown,
		Pending:      u.pending,
		CheckedUpTo:  u.checkedUpTo,
	}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("proto3: marshal state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreUser reconstructs a user from persisted state plus the
// caller-held key material.
func RestoreUser(signer *sig.Signer, ring *sig.Ring, data []byte) (*User, error) {
	var st UserState
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("proto3: restore state: %w", err)
	}
	if st.ID != signer.ID() {
		return nil, fmt.Errorf("proto3: state belongs to %v, signer is %v", st.ID, signer.ID())
	}
	u := &User{
		signer:       signer,
		ring:         ring,
		users:        ring.Users(),
		regs:         st.Registers,
		initialState: st.InitialState,
		epoch:        st.Epoch,
		epochKnown:   st.EpochKnown,
		pending:      st.Pending,
		checkedUpTo:  st.CheckedUpTo,
	}
	return u, nil
}
