package proto3

import (
	"sort"

	"trustedcvs/internal/core"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// ServerState is the Protocol III server's persistent protocol state
// beside the database: the last-user marker, the epoch counter, and
// the stored (signed, hence tamper-evident) epoch backups.
type ServerState struct {
	LastUser sig.UserID
	Epoch    uint64
	Backups  []*core.EpochBackup
}

// State captures the server's protocol state for persistence. It is
// atomic with respect to concurrent operations.
func (s *Server) State() ServerState {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stateLocked()
}

// Checkpoint atomically captures the database (as an O(1) fork of the
// persistent tree) together with the protocol state, so a live server
// can persist a consistent image without stalling its pipeline: the
// expensive snapshot walk happens on the fork, outside the lock.
func (s *Server) Checkpoint() (*vdb.DB, ServerState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Fork(), s.stateLocked()
}

func (s *Server) stateLocked() ServerState {
	st := ServerState{LastUser: s.lastUser, Epoch: s.epoch}
	epochs := make([]uint64, 0, len(s.backups))
	for e := range s.backups {
		epochs = append(epochs, e)
	}
	sort.Slice(epochs, func(i, j int) bool { return epochs[i] < epochs[j] })
	for _, e := range epochs {
		users := make([]sig.UserID, 0, len(s.backups[e]))
		for u := range s.backups[e] {
			users = append(users, u)
		}
		sort.Slice(users, func(i, j int) bool { return users[i] < users[j] })
		for _, u := range users {
			st.Backups = append(st.Backups, s.backups[e][u])
		}
	}
	return st
}

// NewServerFromState resumes a Protocol III server over a restored
// database.
func NewServerFromState(db *vdb.DB, st ServerState) *Server {
	s := NewServer(db)
	s.lastUser = st.LastUser
	s.epoch = st.Epoch
	for _, b := range st.Backups {
		s.storeBackup(b)
	}
	return s
}
