package proto3

import (
	"fmt"
	"strings"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

type harness struct {
	t      *testing.T
	server *Server
	users  []*User
}

func newHarness(t *testing.T, n int) *harness {
	t.Helper()
	signers, ring, err := sig.DeterministicSigners(n, 1)
	if err != nil {
		t.Fatal(err)
	}
	db := vdb.New(0)
	srv := NewServer(db)
	users := make([]*User, n)
	for i := range users {
		users[i] = NewUser(signers[i], ring, db.Root())
	}
	return &harness{t: t, server: srv, users: users}
}

// doOn performs one op by user u against srv, running any checker duty
// against dutySrv (usually the same server). Returns the first error.
func (h *harness) doOn(srv, dutySrv *Server, u int, op vdb.Op) (any, error) {
	user := h.users[u]
	resp, err := srv.HandleOp(user.Request(op))
	if err != nil {
		return nil, err
	}
	out, err := user.HandleResponse(op, resp)
	if err != nil {
		return nil, err
	}
	if out.CheckEpoch != nil {
		e := *out.CheckEpoch
		var prev *core.BackupsResponse
		if e > 0 {
			prev = dutySrv.HandleGetBackups(user.BackupsRequest(e - 1))
		}
		cur := dutySrv.HandleGetBackups(user.BackupsRequest(e))
		if err := user.CompleteEpochCheck(e, prev, cur); err != nil {
			return out.Answer, err
		}
	}
	return out.Answer, nil
}

func (h *harness) do(u int, op vdb.Op) any {
	h.t.Helper()
	ans, err := h.doOn(h.server, h.server, u, op)
	if err != nil {
		h.t.Fatalf("user %d: %v", u, err)
	}
	return ans
}

// epochRound has every user perform two ops (the workload assumption),
// then advances the epoch.
func (h *harness) epochRound(tag string) error {
	for u := range h.users {
		for j := 0; j < 2; j++ {
			op := put(fmt.Sprintf("u%d-%s-%d", u, tag, j), tag)
			if _, err := h.doOn(h.server, h.server, u, op); err != nil {
				return err
			}
		}
	}
	h.server.AdvanceEpoch()
	return nil
}

func put(k, v string) vdb.Op { return &vdb.WriteOp{Puts: []vdb.KV{{Key: k, Val: []byte(v)}}} }
func get(k string) vdb.Op    { return &vdb.ReadOp{Keys: []string{k}} }

func TestHonestEpochs(t *testing.T) {
	h := newHarness(t, 3)
	for e := 0; e < 8; e++ {
		if err := h.epochRound(fmt.Sprintf("e%d", e)); err != nil {
			t.Fatalf("epoch %d: %v", e, err)
		}
	}
	// By now epochs 0..5 have been audited by rotating checkers with
	// no detection — and reads still verify.
	ans := h.do(0, get("u0-e0-0"))
	if ra := ans.(vdb.ReadAnswer); !ra.Results[0].Found {
		t.Fatal("read lost data")
	}
}

func TestBackupsStoredAndServed(t *testing.T) {
	h := newHarness(t, 2)
	if err := h.epochRound("e0"); err != nil {
		t.Fatal(err)
	}
	if err := h.epochRound("e1"); err != nil {
		t.Fatal(err)
	}
	// During epoch 1 both users uploaded their epoch-0 backups.
	resp := h.server.HandleGetBackups(&core.GetBackupsRequest{Epoch: 0})
	if len(resp.Backups) != 2 {
		t.Fatalf("stored %d backups for epoch 0, want 2", len(resp.Backups))
	}
	for _, b := range resp.Backups {
		if b.Epoch != 0 {
			t.Fatalf("backup epoch %d", b.Epoch)
		}
		if b.LastCtr == 0 {
			t.Fatalf("backup claims no operations: %+v", b)
		}
	}
}

// TestPartitionDetectedWithinTwoEpochs forks the server in epoch f and
// verifies a checker detects by the end of epoch f+2 — Theorem 4.3.
func TestPartitionDetectedWithinTwoEpochs(t *testing.T) {
	h := newHarness(t, 4)
	// Honest epoch 0.
	if err := h.epochRound("e0"); err != nil {
		t.Fatal(err)
	}
	// Fork at the start of epoch 1: users 0,1 on A; users 2,3 on B.
	branchB := h.server.Fork()
	servers := func(u int) *Server {
		if u < 2 {
			return h.server
		}
		return branchB
	}
	var detected error
	for e := 1; e <= 3 && detected == nil; e++ {
		for u := 0; u < 4 && detected == nil; u++ {
			for j := 0; j < 2; j++ {
				srv := servers(u)
				// Checker duty runs against the user's own branch.
				if _, err := h.doOn(srv, srv, u, put(fmt.Sprintf("u%d-e%d-%d", u, e, j), "x")); err != nil {
					detected = err
					break
				}
			}
		}
		h.server.AdvanceEpoch()
		branchB.AdvanceEpoch()
	}
	de, ok := core.AsDetection(detected)
	if !ok {
		t.Fatalf("partition not detected within two epochs: %v", detected)
	}
	if de.Class != core.SyncMismatch && de.Class != core.EpochViolation {
		t.Fatalf("unexpected detection class: %v", de)
	}
}

// TestWithheldBackupDetected: the server refuses to return one user's
// backup; the checker flags it.
func TestWithheldBackupDetected(t *testing.T) {
	h := newHarness(t, 3)
	for e := 0; e < 2; e++ {
		if err := h.epochRound(fmt.Sprintf("e%d", e)); err != nil {
			t.Fatal(err)
		}
	}
	// Epoch 2: the checker for epoch 0 (user 0) asks for backups; the
	// server withholds user 1's.
	user := h.users[0]
	op := put("probe", "x")
	resp, err := h.server.HandleOp(user.Request(op))
	if err != nil {
		t.Fatal(err)
	}
	out, err := user.HandleResponse(op, resp)
	if err != nil {
		t.Fatal(err)
	}
	if out.CheckEpoch == nil || *out.CheckEpoch != 0 {
		t.Fatalf("user 0 should be the epoch-0 checker, got %+v", out.CheckEpoch)
	}
	cur := h.server.HandleGetBackups(user.BackupsRequest(0))
	var withheld []*core.EpochBackup
	for _, b := range cur.Backups {
		if b.User != 1 {
			withheld = append(withheld, b)
		}
	}
	cur.Backups = withheld
	err = user.CompleteEpochCheck(0, nil, cur)
	de, ok := core.AsDetection(err)
	if !ok || de.Class != core.EpochViolation {
		t.Fatalf("want EpochViolation for withheld backup, got %v", err)
	}
	if !strings.Contains(err.Error(), "missing") {
		t.Fatalf("error should say missing: %v", err)
	}
}

// TestForgedBackupDetected: the server substitutes a fabricated backup;
// the signature check catches it.
func TestForgedBackupDetected(t *testing.T) {
	h := newHarness(t, 2)
	for e := 0; e < 2; e++ {
		if err := h.epochRound(fmt.Sprintf("e%d", e)); err != nil {
			t.Fatal(err)
		}
	}
	user := h.users[0]
	op := put("probe", "x")
	resp, err := h.server.HandleOp(user.Request(op))
	if err != nil {
		t.Fatal(err)
	}
	out, err := user.HandleResponse(op, resp)
	if err != nil {
		t.Fatal(err)
	}
	if out.CheckEpoch == nil {
		t.Fatal("expected checker duty")
	}
	cur := h.server.HandleGetBackups(user.BackupsRequest(0))
	forged := *cur.Backups[1]
	forged.Sigma = core.GenesisState(vdb.New(0).Root()) // garbage
	cur.Backups[1] = &forged
	err = user.CompleteEpochCheck(0, nil, cur)
	if de, ok := core.AsDetection(err); !ok || de.Class != core.EpochViolation {
		t.Fatalf("want EpochViolation for forged backup, got %v", err)
	}
}

func TestEpochRegressionDetected(t *testing.T) {
	h := newHarness(t, 1)
	if err := h.epochRound("e0"); err != nil {
		t.Fatal(err)
	}
	// One op in epoch 1 so the user learns of it.
	h.do(0, put("x", "1"))
	// Server now claims epoch 0 again.
	lying := h.server.Fork()
	lying.epoch = 0
	_, err := h.doOn(lying, lying, 0, put("y", "2"))
	if de, ok := core.AsDetection(err); !ok || de.Class != core.EpochViolation {
		t.Fatalf("want EpochViolation, got %v", err)
	}
}

func TestLocalClockDriftDetected(t *testing.T) {
	h := newHarness(t, 1)
	// The user's local clock says we should be around epoch 5, but the
	// server never advances: a stalling attack on detection latency.
	h.users[0].LocalEpoch = func() uint64 { return 5 }
	_, err := h.doOn(h.server, h.server, 0, put("x", "1"))
	if de, ok := core.AsDetection(err); !ok || de.Class != core.EpochViolation {
		t.Fatalf("want EpochViolation for stalled epochs, got %v", err)
	}
}

func TestCounterReplayDetected(t *testing.T) {
	h := newHarness(t, 1)
	snapshot := h.server.Fork()
	h.do(0, put("a", "1"))
	op := put("a", "2")
	resp, err := snapshot.HandleOp(h.users[0].Request(op))
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.users[0].HandleResponse(op, resp)
	if de, ok := core.AsDetection(err); !ok || de.Class != core.CounterReplay {
		t.Fatalf("want CounterReplay, got %v", err)
	}
}

func TestCheckerRotation(t *testing.T) {
	h := newHarness(t, 3)
	if h.users[0].checkerFor(0) != 0 || h.users[0].checkerFor(1) != 1 ||
		h.users[0].checkerFor(2) != 2 || h.users[0].checkerFor(3) != 0 {
		t.Fatal("checker rotation broken")
	}
}
