package proto3

import (
	"fmt"
	"testing"

	"trustedcvs/internal/sig"
)

// TestP3StateRoundTripContinuesRun: a user is persisted mid-epoch
// (with a pending backup waiting for upload), restored in a "new
// process", and the run continues — including the eventual epoch audit
// passing on the combined history.
func TestP3StateRoundTripContinuesRun(t *testing.T) {
	h := newHarness(t, 2)
	// Epoch 0 fully; then one op of epoch 1 so user 0 holds a pending
	// epoch-0 backup that has NOT been uploaded yet.
	if err := h.epochRound("e0"); err != nil {
		t.Fatal(err)
	}
	if _, err := h.doOn(h.server, h.server, 0, put("early-e1", "x")); err != nil {
		t.Fatal(err)
	}

	data, err := h.users[0].MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	signers, ring, err := sig.DeterministicSigners(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreUser(signers[0], ring, data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Epoch() != 1 || restored.pending == nil {
		t.Fatalf("restored epoch %d pending %v", restored.Epoch(), restored.pending)
	}
	h.users[0] = restored

	// Finish epoch 1 honoring the workload assumption (two ops per
	// user: user 0 already did one; user 1 needs both — its second op
	// uploads its epoch-0 backup). Then epoch 2's audit of epoch 0
	// must pass.
	if _, err := h.doOn(h.server, h.server, 0, put("late-e1-0", "y")); err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		if _, err := h.doOn(h.server, h.server, 1, put(fmt.Sprintf("late-e1-1-%d", j), "y")); err != nil {
			t.Fatal(err)
		}
	}
	h.server.AdvanceEpoch()
	if err := h.epochRound("e2"); err != nil {
		t.Fatalf("epoch 2 after restore: %v", err)
	}
}

func TestP3StateValidation(t *testing.T) {
	signers, ring, err := sig.DeterministicSigners(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreUser(signers[0], ring, []byte("junk")); err == nil {
		t.Fatal("garbage must be rejected")
	}
	db := newHarness(t, 2)
	data, err := db.users[0].MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreUser(signers[1], ring, data); err == nil {
		t.Fatal("identity mismatch must be rejected")
	}
}
