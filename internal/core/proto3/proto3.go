// Package proto3 implements Protocol III of the Trusted CVS paper
// (Section 4.4): bounded-time deviation detection with NO external
// communication, for workloads where every user performs at least two
// operations per epoch (t time units).
//
// Users keep the Protocol II registers, reset σ at each epoch
// boundary, and use the server itself as the broadcast medium: with
// the second operation of each new epoch a user uploads a *signed*
// summary of its previous-epoch registers. In epoch e+2 a designated
// user downloads everyone's epoch-e summaries (unforgeable, so the
// server can only withhold them — which is itself detected) and runs
// the Protocol II synchronization check for epoch e. A deviation in
// epoch e is therefore detected by the end of epoch e+2 — within two
// epochs of the end of e (Theorem 4.3).
package proto3

import (
	"errors"
	"fmt"
	"sync"

	"trustedcvs/internal/core"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/forensics"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// Server is the (honest) Protocol III server state machine: Protocol
// II's, plus the epoch counter and the stored epoch backups.
//
// Server is safe for concurrent use: the ordered section under mu
// covers backup storage, the database transition, and the
// (last-user, epoch) capture; VO pruning and answer encoding run
// outside it. The epoch ticker (AdvanceEpoch runs from a timer
// goroutine in the live server) shares the same mutex, which is what
// makes an operation observe one consistent epoch.
type Server struct {
	mu       sync.Mutex
	db       *vdb.DB
	lastUser sig.UserID
	epoch    uint64
	backups  map[uint64]map[sig.UserID]*core.EpochBackup
}

// NewServer wraps db with Protocol III bookkeeping. Epochs start at 0.
func NewServer(db *vdb.DB) *Server {
	return &Server{
		db:       db,
		lastUser: sig.GenesisID,
		backups:  make(map[uint64]map[sig.UserID]*core.EpochBackup),
	}
}

// DB exposes the underlying database.
func (s *Server) DB() *vdb.DB { return s.db }

// Fork returns an independent copy of the server sharing history up to
// now — the primitive behind the Figure 1 partition attack. Stored
// backups are shared by copy (they are immutable once stored).
func (s *Server) Fork() *Server {
	s.mu.Lock()
	defer s.mu.Unlock()
	f := &Server{
		db:       s.db.Fork(),
		lastUser: s.lastUser,
		epoch:    s.epoch,
		backups:  make(map[uint64]map[sig.UserID]*core.EpochBackup, len(s.backups)),
	}
	for e, m := range s.backups {
		nm := make(map[sig.UserID]*core.EpochBackup, len(m))
		for id, b := range m {
			nm[id] = b
		}
		f.backups[e] = nm
	}
	return f
}

// Epoch returns the server's current epoch.
func (s *Server) Epoch() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// AdvanceEpoch moves the server into the next epoch. The driver calls
// it every t time units (sim: every epochLen rounds; live: a timer).
func (s *Server) AdvanceEpoch() {
	s.mu.Lock()
	s.epoch++
	s.mu.Unlock()
}

// HandleOp applies the operation, stores any piggybacked epoch backup,
// and returns (answer, VO, ctr, j, epoch).
func (s *Server) HandleOp(req *core.OpRequest) (*core.OpResponseII, error) {
	// Ordered section: backup storage rides on the operation's position
	// in the order (the paper's "second operation of a new epoch"
	// upload), and (last, epoch) must be captured atomically with the
	// transition.
	s.mu.Lock()
	if req.Backup != nil {
		s.storeBackup(req.Backup)
	}
	st, err := s.db.Begin(req.Op)
	if err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("proto3: apply: %w", err)
	}
	last, epoch := s.lastUser, s.epoch
	s.lastUser = req.User
	s.mu.Unlock()

	ans, vo, err := st.Finish()
	if err != nil {
		return nil, fmt.Errorf("proto3: encode: %w", err)
	}
	return &core.OpResponseII{
		Answer: ans,
		VO:     vo,
		Ctr:    st.PreCtr(),
		Last:   last,
		Epoch:  epoch,
	}, nil
}

func (s *Server) storeBackup(b *core.EpochBackup) {
	m := s.backups[b.Epoch]
	if m == nil {
		m = make(map[sig.UserID]*core.EpochBackup)
		s.backups[b.Epoch] = m
	}
	m[b.User] = b
}

// HandleGetBackups returns the stored backups for one epoch, in user
// order. Stored backups are immutable, so sharing the pointers with
// the response is safe.
func (s *Server) HandleGetBackups(req *core.GetBackupsRequest) *core.BackupsResponse {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := s.backups[req.Epoch]
	resp := &core.BackupsResponse{Epoch: req.Epoch}
	ids := make([]sig.UserID, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	for i := 0; i < len(ids); i++ {
		for j := i + 1; j < len(ids); j++ {
			if ids[j] < ids[i] {
				ids[i], ids[j] = ids[j], ids[i]
			}
		}
	}
	for _, id := range ids {
		resp.Backups = append(resp.Backups, m[id])
	}
	return resp
}

// Outcome is what a verified Protocol III response yields: the decoded
// answer, plus — when this user just learned of a new epoch and is the
// designated checker — the epoch whose stored summaries it must now
// verify (fetch backups for CheckEpoch and CheckEpoch−1 and call
// CompleteEpochCheck).
type Outcome struct {
	Answer     any
	CheckEpoch *uint64
}

// User is the Protocol III user state machine.
type User struct {
	signer       *sig.Signer
	ring         *sig.Ring
	users        []sig.UserID // full membership, for backup completeness and checker rotation
	regs         core.Registers
	initialState digest.Digest
	epoch        uint64
	epochKnown   bool // has the user seen any epoch announcement yet
	pending      *core.EpochBackup
	checkedUpTo  uint64 // epochs below this have been checked (by this user when designated)
	// LocalEpoch, when set, is the user's own clock estimate of the
	// current epoch (from its partially synchronous local clock). A
	// server whose epoch announcements drift more than one epoch from
	// it is detected. Nil disables the check.
	LocalEpoch func() uint64
	journal    *forensics.Journal
	lastCtr    uint64
	lastRoot   digest.Digest
}

// EnableJournal attaches a bounded transition journal of the given
// capacity for fault localization, exactly as in Protocol II — the
// register algebra the journal replays is shared, so forensic reports
// work unchanged under the epoch protocol.
func (u *User) EnableJournal(cap int) {
	u.journal = forensics.NewJournal(u.ID(), cap)
}

// Journal returns the user's transition journal (nil if not enabled).
func (u *User) Journal() *forensics.Journal { return u.journal }

// VerifiedRoot returns the (ctr, root) pair this user most recently
// verified through a VO, for cross-checking against witness
// commitments. Zero (0, Zero) before any operation.
func (u *User) VerifiedRoot() (uint64, digest.Digest) {
	return u.lastCtr, u.lastRoot
}

// NewUser creates the user state machine. initialRoot is M(D₀); users
// is the full (sorted) membership.
func NewUser(signer *sig.Signer, ring *sig.Ring, initialRoot digest.Digest) *User {
	g := core.GenesisState(initialRoot)
	u := &User{
		signer:       signer,
		ring:         ring,
		users:        ring.Users(),
		initialState: g,
	}
	u.regs.Last = g
	return u
}

// ID returns the user's identity.
func (u *User) ID() sig.UserID { return u.signer.ID() }

// LCtr returns lctrᵢ.
func (u *User) LCtr() uint64 { return u.regs.Ops }

// Epoch returns the user's current epoch.
func (u *User) Epoch() uint64 { return u.epoch }

// Request builds the operation request for op, piggybacking the
// previous epoch's signed backup if one is waiting (this is the
// "second operation in a new epoch" upload of the paper).
func (u *User) Request(op vdb.Op) *core.OpRequest {
	req := &core.OpRequest{User: u.ID(), Op: op}
	if u.pending != nil {
		req.Backup = u.pending
		u.pending = nil
	}
	return req
}

// BackupsRequest builds the fetch request a designated checker sends.
func (u *User) BackupsRequest(epoch uint64) *core.GetBackupsRequest {
	return &core.GetBackupsRequest{User: u.ID(), Epoch: epoch}
}

// checkerFor reports which user is designated to check epoch e.
func (u *User) checkerFor(e uint64) sig.UserID {
	return u.users[int(e%uint64(len(u.users)))]
}

// HandleResponse verifies the server's reply to op (exactly as in
// Protocol II), manages epoch transitions, and reports checker duty.
func (u *User) HandleResponse(op vdb.Op, resp *core.OpResponseII) (Outcome, error) {
	var out Outcome
	if resp == nil || resp.VO == nil {
		return out, core.Detect(core.ProtocolViolation, u.ID(), u.regs.Ops, errors.New("missing response or VO"))
	}
	if resp.Ctr < u.regs.GCtr {
		return out, core.Detect(core.CounterReplay, u.ID(), u.regs.Ops,
			fmt.Errorf("server presented ctr %d after gctr %d", resp.Ctr, u.regs.GCtr))
	}
	// Epoch sanity: announcements must be monotone and, when the user
	// has a local clock, within one epoch of its own estimate (the
	// p-partial-synchrony assumption makes larger drift impossible for
	// an honest server).
	if u.epochKnown && resp.Epoch < u.epoch {
		return out, core.Detect(core.EpochViolation, u.ID(), u.regs.Ops,
			fmt.Errorf("server epoch went backwards: %d after %d", resp.Epoch, u.epoch))
	}
	if u.LocalEpoch != nil {
		local := u.LocalEpoch()
		if delta(resp.Epoch, local) > 1 {
			return out, core.Detect(core.EpochViolation, u.ID(), u.regs.Ops,
				fmt.Errorf("server epoch %d vs local estimate %d", resp.Epoch, local))
		}
	}
	oldRoot, newRoot, err := vdb.VerifyDerive(op, resp.Answer, resp.VO)
	if err != nil {
		return out, core.Detect(classify(err), u.ID(), u.regs.Ops, err)
	}

	if !u.epochKnown {
		u.epochKnown = true
		u.epoch = resp.Epoch
		u.checkedUpTo = initialCheckedUpTo(resp.Epoch)
	} else if resp.Epoch > u.epoch {
		// First operation of a new epoch: snapshot and sign the
		// finished epoch's registers (uploaded with the next request),
		// then reset σ for the new epoch.
		b := &core.EpochBackup{
			User:    u.ID(),
			Epoch:   u.epoch,
			Sigma:   u.regs.Sigma,
			Last:    u.regs.Last,
			LastCtr: u.regs.LastCtr,
		}
		b.Sig = u.signer.Sign(core.EpochSummaryHash(b.User, b.Epoch, b.Sigma, b.Last, b.LastCtr))
		u.pending = b
		u.regs.ResetEpoch()
		u.epoch = resp.Epoch
	}

	// Checker duty: on entering epoch e+2, the designated user audits
	// epoch e.
	if u.epoch >= 2 {
		e := u.epoch - 2
		if e >= u.checkedUpTo && u.checkerFor(e) == u.ID() {
			out.CheckEpoch = &e
		}
	}

	oldState := core.TaggedStateHash(oldRoot, resp.Ctr, resp.Last)
	newState := core.TaggedStateHash(newRoot, resp.Ctr+1, u.ID())
	u.regs.Absorb(oldState, newState, resp.Ctr+1)
	if u.journal != nil {
		u.journal.Record(resp.Ctr+1, oldState, newState)
	}
	u.lastCtr, u.lastRoot = resp.Ctr+1, newRoot

	out.Answer, err = vdb.DecodeAnswer(resp.Answer)
	if err != nil {
		return Outcome{}, core.Detect(core.ProtocolViolation, u.ID(), u.regs.Ops, err)
	}
	return out, nil
}

// initialCheckedUpTo: a user that joins at epoch E cannot audit epochs
// that ended before it saw any state; it takes over duties from E on.
func initialCheckedUpTo(epoch uint64) uint64 {
	if epoch >= 2 {
		return epoch - 1
	}
	return 0
}

// CompleteEpochCheck runs the designated user's audit of epoch e.
// prev is the server's response for epoch e−1 (nil when e == 0); cur
// for epoch e. It validates completeness (every user's backup must be
// present — the workload guarantees every user was active) and the
// signatures, derives epoch e's initial state, and runs the Protocol
// II synchronization check over the epoch-e summaries.
func (u *User) CompleteEpochCheck(e uint64, prev, cur *core.BackupsResponse) error {
	fail := func(class core.DetectionClass, err error) error {
		return core.Detect(class, u.ID(), u.regs.Ops, err)
	}
	curBackups, err := u.validateBackups(e, cur)
	if err != nil {
		return fail(core.EpochViolation, err)
	}
	var initial digest.Digest
	if e == 0 {
		initial = u.initialState
	} else {
		prevBackups, err := u.validateBackups(e-1, prev)
		if err != nil {
			return fail(core.EpochViolation, err)
		}
		initial = finalState(prevBackups, u.initialState)
	}
	reports := make([]core.SyncReportII, 0, len(curBackups))
	for _, b := range curBackups {
		reports = append(reports, core.SyncReportII{User: b.User, Sigma: b.Sigma, Last: b.Last})
	}
	if core.CheckSyncII(initial, reports) < 0 {
		return fail(core.SyncMismatch, fmt.Errorf("epoch %d summaries do not form a single chain", e))
	}
	if e >= u.checkedUpTo {
		u.checkedUpTo = e + 1
	}
	return nil
}

// validateBackups checks one epoch's backup set: right epoch, every
// user present exactly once, every signature valid.
func (u *User) validateBackups(e uint64, resp *core.BackupsResponse) ([]*core.EpochBackup, error) {
	if resp == nil {
		return nil, fmt.Errorf("no backups response for epoch %d", e)
	}
	seen := make(map[sig.UserID]bool, len(resp.Backups))
	for _, b := range resp.Backups {
		if b == nil {
			return nil, fmt.Errorf("nil backup in epoch %d", e)
		}
		if b.Epoch != e {
			return nil, fmt.Errorf("backup for epoch %d in epoch %d response", b.Epoch, e)
		}
		if seen[b.User] {
			return nil, fmt.Errorf("duplicate backup from %v for epoch %d", b.User, e)
		}
		if err := b.Verify(u.ring); err != nil {
			return nil, fmt.Errorf("epoch %d backup from %v: %w", e, b.User, err)
		}
		seen[b.User] = true
	}
	for _, id := range u.users {
		if !seen[id] {
			return nil, fmt.Errorf("epoch %d backup from %v missing (withheld or never performed)", e, id)
		}
	}
	return resp.Backups, nil
}

// finalState picks the chain-final state of an epoch from its backup
// set: the last register with the highest counter. With no operations
// at all it falls back to the genesis state.
func finalState(backups []*core.EpochBackup, genesis digest.Digest) digest.Digest {
	final := genesis
	var best uint64
	for _, b := range backups {
		if b.LastCtr >= best && b.LastCtr > 0 {
			best = b.LastCtr
			final = b.Last
		}
	}
	return final
}

func delta(a, b uint64) uint64 {
	if a > b {
		return a - b
	}
	return b - a
}

func classify(err error) core.DetectionClass {
	if errors.Is(err, vdb.ErrAnswerMismatch) {
		return core.BadAnswer
	}
	return core.BadVO
}
