package core

import (
	"errors"
	"fmt"

	"trustedcvs/internal/sig"
)

// DetectionClass identifies which protocol check caught the server
// deviating. Experiments assert on the class to verify that the
// *intended* mechanism fired, not just that something errored.
type DetectionClass int

const (
	// BadVO: the verification object was malformed, did not match the
	// trusted root, or did not cover the replayed operation.
	BadVO DetectionClass = iota + 1
	// BadAnswer: the server's claimed answer differs from the verified
	// replay — a direct integrity violation.
	BadAnswer
	// BadSignature: a state signature presented by the server was not
	// a legitimate signature by the named user (Protocol I step 4).
	BadSignature
	// CounterReplay: the server presented a counter below the one this
	// user has already seen (Protocol II step 4; see DESIGN.md errata
	// on the strict inequality).
	CounterReplay
	// SyncMismatch: the synchronization check failed — no user's
	// registers close the state chain (Protocols I and II).
	SyncMismatch
	// EpochViolation: Protocol III epoch bookkeeping failed — a backup
	// is missing, carries a bad signature, or the server's epoch
	// announcements contradict the user's local clock.
	EpochViolation
	// ProtocolViolation: the server broke the message protocol itself
	// (wrong response type, missing fields, out-of-order flow).
	ProtocolViolation
	// WitnessDivergence: the root a client verified locally contradicts
	// the signed commitment the witness quorum holds for the same
	// operation counter — the server showed different histories to the
	// client and to its witnesses.
	WitnessDivergence
	// TornTransaction: the server committed some legs of a cross-shard
	// transaction and dropped others — a published head vector excludes
	// (or contradicts) a leg this user verified as committed. Distinct
	// from single-shard tamper classes: the per-leg VOs were all valid;
	// it is the atomicity of the transaction that was violated.
	TornTransaction
)

func (c DetectionClass) String() string {
	switch c {
	case BadVO:
		return "bad-verification-object"
	case BadAnswer:
		return "answer-mismatch"
	case BadSignature:
		return "bad-signature"
	case CounterReplay:
		return "counter-replay"
	case SyncMismatch:
		return "sync-mismatch"
	case EpochViolation:
		return "epoch-violation"
	case ProtocolViolation:
		return "protocol-violation"
	case WitnessDivergence:
		return "witness-divergence"
	case TornTransaction:
		return "torn-transaction"
	default:
		return fmt.Sprintf("detection-class(%d)", int(c))
	}
}

// DetectionError reports that a user detected server deviation. Per
// Section 2.2.1 the detecting user "terminates and reports an error";
// drivers treat a DetectionError as terminal for the whole run.
type DetectionError struct {
	Class DetectionClass
	User  sig.UserID // the detecting user
	LCtr  uint64     // the user's local operation count at detection
	Cause error      // underlying failure, if any
}

// Error implements error.
func (e *DetectionError) Error() string {
	msg := fmt.Sprintf("deviation detected by %v after %d local ops: %s", e.User, e.LCtr, e.Class)
	if e.Cause != nil {
		msg += ": " + e.Cause.Error()
	}
	return msg
}

// Unwrap exposes the cause.
func (e *DetectionError) Unwrap() error { return e.Cause }

// Detect constructs a DetectionError.
func Detect(class DetectionClass, user sig.UserID, lctr uint64, cause error) *DetectionError {
	return &DetectionError{Class: class, User: user, LCtr: lctr, Cause: cause}
}

// AsDetection extracts a DetectionError from an error chain.
func AsDetection(err error) (*DetectionError, bool) {
	var de *DetectionError
	if errors.As(err, &de) {
		return de, true
	}
	return nil, false
}
