package core

import (
	"encoding/gob"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/merkle"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

func init() {
	gob.Register(&OpRequest{})
	gob.Register(&AckRequest{})
	gob.Register(&OpResponseI{})
	gob.Register(&OpResponseII{})
	gob.Register(&OpResponseForest{})
	gob.Register(&SyncRequest{})
	gob.Register(SyncReportI{})
	gob.Register(SyncReportII{})
	gob.Register(Registers{})
	gob.Register(&EpochBackup{})
	gob.Register(&GetBackupsRequest{})
	gob.Register(&BackupsResponse{})
	gob.Register(&PushContentRequest{})
	gob.Register(&FetchContentRequest{})
	gob.Register(&ContentResponse{})
	gob.Register(&OKResponse{})
}

// OpRequest asks the server to perform one operation on behalf of a
// user. Under Protocol III the request may piggyback the user's signed
// epoch backup (sent with the second operation of a new epoch).
type OpRequest struct {
	User   sig.UserID
	Op     vdb.Op
	Backup *EpochBackup // Protocol III only
}

// OpResponseI is the server's reply under Protocol I:
// (Q(D), v(Q,D), ctr, j, sig) with sig = sig_j(h(M(D)‖ctr)).
type OpResponseI struct {
	Answer []byte
	VO     *merkle.VO
	Ctr    uint64
	Signer sig.UserID
	Sig    sig.Signature
}

// AckRequest is Protocol I's third message: the user returns its
// signature over the new state h(M(D′)‖ctr+1). The server may not
// serve another operation until it arrives — the blocking step
// Protocol II eliminates.
type AckRequest struct {
	User sig.UserID
	Sig  sig.Signature
}

// OpResponseII is the server's reply under Protocols II and III:
// (Q(D), v(Q,D), ctr, j) — no signature. Epoch is used by Protocol III
// only (0 under Protocol II).
//
// On a Merkle forest (N > 1 shards) the response additionally names
// the shard the operation ran on, the last cross-transaction digest of
// that shard, the global counter, and the published per-shard head
// vector. All four are zero/nil on a single-shard database, keeping
// N=1 responses gob-identical to pre-forest ones.
type OpResponseII struct {
	Answer []byte
	VO     *merkle.VO
	Ctr    uint64
	Last   sig.UserID
	Epoch  uint64

	Shard  uint32          // shard the op ran on (forest only)
	LastTx digest.Digest   // cross-tx digest of the shard's previous op (Zero if none)
	GCtr   uint64          // global counter after this op (forest only)
	Heads  []vdb.ShardHead // published head vector after this op (forest only)
}

// OpLegII is one leg of a cross-shard transaction response: the
// (answer, VO, ctr, j) tuple of that leg's shard, plus the shard index
// and the shard's previous cross-transaction digest.
type OpLegII struct {
	Shard  uint32
	Answer []byte
	VO     *merkle.VO
	Ctr    uint64
	Last   sig.UserID
	LastTx digest.Digest
}

// OpResponseForest is the server's reply to a cross-shard transaction
// (vdb.CrossOp) on a forest: one verified leg per shard touched, all
// published under the single gctr window [GCtr-len(Legs), GCtr), plus
// the head vector as of the transaction's publication. The client
// binds the legs together with the transaction digest
// (CrossTxDigest); see proto2.HandleResponseForest.
type OpResponseForest struct {
	Legs  []OpLegII
	GCtr  uint64
	Heads []vdb.ShardHead
}

// SyncRequest announces a synchronization round on the broadcast
// channel ("the first user to complete k operations announces a
// sync-up message").
type SyncRequest struct {
	From  sig.UserID
	Round uint64
}

// EpochBackup is a user's signed summary of one epoch's registers,
// stored on the server under Protocol III. Sig covers
// EpochSummaryHash(User, Epoch, Sigma, Last, LastCtr).
type EpochBackup struct {
	User    sig.UserID
	Epoch   uint64
	Sigma   digest.Digest
	Last    digest.Digest
	LastCtr uint64
	Sig     sig.Signature
}

// Verify checks the backup's signature against the ring.
func (b *EpochBackup) Verify(ring *sig.Ring) error {
	return ring.Verify(b.User, EpochSummaryHash(b.User, b.Epoch, b.Sigma, b.Last, b.LastCtr), b.Sig)
}

// GetBackupsRequest fetches every user's stored backup for an epoch
// (sent by the designated checker in epoch e+2 for epoch e).
type GetBackupsRequest struct {
	User  sig.UserID
	Epoch uint64
}

// BackupsResponse returns the stored backups for one epoch.
type BackupsResponse struct {
	Epoch   uint64
	Backups []*EpochBackup
}

// PushContentRequest uploads revision content to the server's
// unauthenticated content store.
type PushContentRequest struct {
	Path    string
	Rev     uint64
	Content []byte
}

// FetchContentRequest downloads revision content. Hash is the
// authenticated content hash the client expects; it lets the store
// resolve the right blob even across diverged histories.
type FetchContentRequest struct {
	Path string
	Rev  uint64
	Hash digest.Digest
}

// ContentResponse returns fetched content.
type ContentResponse struct {
	Content []byte
}

// OKResponse is the generic empty success reply.
type OKResponse struct{}
