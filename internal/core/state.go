// Package core implements the protocol framework shared by Protocols
// I, II and III of the Trusted CVS paper: database-state hashing, the
// XOR state registers (σᵢ, lastᵢ) of Section 4.3, typed detection
// errors, and the wire message types the protocols exchange.
//
// The protocol implementations themselves live in the subpackages
// proto1, proto2 and proto3; they are pure state machines, driven
// either by the deterministic round simulator (internal/sim) or by the
// live transport driver.
package core

import (
	"trustedcvs/internal/digest"
	"trustedcvs/internal/sig"
)

// StateHash computes h(M(D) ‖ ctr): the untagged database state bound
// by Protocol I's signatures.
func StateHash(root digest.Digest, ctr uint64) digest.Digest {
	return digest.NewHasher(digest.DomainState).Digest(root).Uint64(ctr).Sum()
}

// TaggedStateHash computes h(M(D) ‖ ctr ‖ user): the user-tagged state
// of Protocols II and III. Tagging each state with the user that
// performed the transition into it is what forces in-degree ≤ 1 in the
// state graph (Lemma 4.1, property P2) and defeats the replay of
// Figure 3.
func TaggedStateHash(root digest.Digest, ctr uint64, user sig.UserID) digest.Digest {
	return digest.NewHasher(digest.DomainTaggedState).Digest(root).Uint64(ctr).Uint64(uint64(user)).Sum()
}

// GenesisState is the distinguished initial node of the state graph:
// the state (D₀, ctr=0) tagged with the reserved genesis ID. The paper
// writes the constant as h(M(D₀)‖1); see DESIGN.md ("Errata") for why
// we pin counter 0 with a genesis tag instead — any agreed-upon
// constant works, and this one is consistent with Figure 3's (D₀, 0).
func GenesisState(initialRoot digest.Digest) digest.Digest {
	return TaggedStateHash(initialRoot, 0, sig.GenesisID)
}

// EpochSummaryHash binds a Protocol III epoch backup for signing:
// (user, epoch, σ, last, lastCtr).
func EpochSummaryHash(user sig.UserID, epoch uint64, sigma, last digest.Digest, lastCtr uint64) digest.Digest {
	return digest.NewHasher(digest.DomainEpoch).
		Uint64(uint64(user)).
		Uint64(epoch).
		Digest(sigma).
		Digest(last).
		Uint64(lastCtr).
		Sum()
}
