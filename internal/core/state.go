// Package core implements the protocol framework shared by Protocols
// I, II and III of the Trusted CVS paper: database-state hashing, the
// XOR state registers (σᵢ, lastᵢ) of Section 4.3, typed detection
// errors, and the wire message types the protocols exchange.
//
// The protocol implementations themselves live in the subpackages
// proto1, proto2 and proto3; they are pure state machines, driven
// either by the deterministic round simulator (internal/sim) or by the
// live transport driver.
package core

import (
	"trustedcvs/internal/digest"
	"trustedcvs/internal/sig"
)

// StateHash computes h(M(D) ‖ ctr): the untagged database state bound
// by Protocol I's signatures.
func StateHash(root digest.Digest, ctr uint64) digest.Digest {
	return digest.NewHasher(digest.DomainState).Digest(root).Uint64(ctr).Sum()
}

// TaggedStateHash computes h(M(D) ‖ ctr ‖ user): the user-tagged state
// of Protocols II and III. Tagging each state with the user that
// performed the transition into it is what forces in-degree ≤ 1 in the
// state graph (Lemma 4.1, property P2) and defeats the replay of
// Figure 3.
func TaggedStateHash(root digest.Digest, ctr uint64, user sig.UserID) digest.Digest {
	return digest.NewHasher(digest.DomainTaggedState).Digest(root).Uint64(ctr).Uint64(uint64(user)).Sum()
}

// GenesisState is the distinguished initial node of the state graph:
// the state (D₀, ctr=0) tagged with the reserved genesis ID. The paper
// writes the constant as h(M(D₀)‖1); see DESIGN.md ("Errata") for why
// we pin counter 0 with a genesis tag instead — any agreed-upon
// constant works, and this one is consistent with Figure 3's (D₀, 0).
func GenesisState(initialRoot digest.Digest) digest.Digest {
	return TaggedStateHash(initialRoot, 0, sig.GenesisID)
}

// ShardStateHash computes h(shard ‖ root_s ‖ ctr_s ‖ user ‖ txd): the
// per-shard tagged state of the forest variant of Protocol II. Each
// shard of a Merkle forest is its own verification domain with its own
// register chain; the shard index in the hash keeps chains of
// different shards disjoint, and txd — the cross-transaction digest,
// Zero for single-shard operations — welds the legs of a cross-shard
// transaction into every leg's chain (see CrossTxDigest).
func ShardStateHash(shard uint32, root digest.Digest, ctr uint64, user sig.UserID, txd digest.Digest) digest.Digest {
	return digest.NewHasher(digest.DomainShardState).
		Uint64(uint64(shard)).
		Digest(root).
		Uint64(ctr).
		Uint64(uint64(user)).
		Digest(txd).
		Sum()
}

// ShardGenesisState is the distinguished initial node of one shard's
// state graph: (root₀_s, ctr=0) tagged with the genesis ID and no
// transaction digest.
func ShardGenesisState(shard uint32, initialRoot digest.Digest) digest.Digest {
	return ShardStateHash(shard, initialRoot, 0, sig.GenesisID, digest.Zero)
}

// CrossLeg identifies one leg of a cross-shard transaction for digest
// purposes: the shard and that shard's counter *before* the leg.
type CrossLeg struct {
	Shard uint32
	Ctr   uint64
}

// CrossTxDigest binds the legs of a cross-shard transaction into one
// transaction digest: h(user ‖ preGctr ‖ L ‖ (shard_i ‖ preCtr_i)...).
// Both sides compute it from the same response fields, so the server
// has no freedom in it. Every leg's new tagged state absorbs this
// digest; a server that commits one leg and drops another therefore
// leaves a state in some shard's chain whose digest names counters the
// surviving history contradicts — no register closure can exist, and
// the dropped leg's committer detects the tear typed (TornTransaction)
// as soon as any later head vector excludes it.
func CrossTxDigest(user sig.UserID, preGctr uint64, legs []CrossLeg) digest.Digest {
	h := digest.NewHasher(digest.DomainCrossTx).
		Uint64(uint64(user)).
		Uint64(preGctr).
		Uint64(uint64(len(legs)))
	for _, l := range legs {
		h.Uint64(uint64(l.Shard))
		h.Uint64(l.Ctr)
	}
	return h.Sum()
}

// EpochSummaryHash binds a Protocol III epoch backup for signing:
// (user, epoch, σ, last, lastCtr).
func EpochSummaryHash(user sig.UserID, epoch uint64, sigma, last digest.Digest, lastCtr uint64) digest.Digest {
	return digest.NewHasher(digest.DomainEpoch).
		Uint64(uint64(user)).
		Uint64(epoch).
		Digest(sigma).
		Digest(last).
		Uint64(lastCtr).
		Sum()
}
