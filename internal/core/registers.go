package core

import (
	"fmt"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/sig"
)

// Registers is the constant-size per-user protocol state of Protocols
// II and III (desideratum 5: bounded local state). σ accumulates the
// XOR of every state the user has seen; Last is the most recent state
// the user itself produced; GCtr is the highest counter seen; Ops is
// lctrᵢ.
type Registers struct {
	Sigma   digest.Digest
	Last    digest.Digest
	LastCtr uint64
	GCtr    uint64
	Ops     uint64
}

// Absorb folds one verified transition (oldState → newState) into the
// registers: σᵢ ⊕= old ⊕ new, lastᵢ = new (Protocol II, step 6).
func (r *Registers) Absorb(oldState, newState digest.Digest, newCtr uint64) {
	r.Sigma = r.Sigma.Xor(oldState).Xor(newState)
	r.Last = newState
	r.LastCtr = newCtr
	r.GCtr = newCtr
	r.Ops++
}

// ResetEpoch clears the per-epoch accumulator while keeping Last /
// LastCtr (the chain continues across the epoch boundary) — Protocol
// III's per-epoch bookkeeping.
func (r *Registers) ResetEpoch() {
	r.Sigma = digest.Zero
}

// SyncReportII is what each user contributes to a Protocol II
// synchronization: its σ and last registers. (Protocol I's reports are
// just counters; see SyncReportI.) On a Merkle forest every shard is
// its own verification domain with its own register pair, reported in
// Shards; Shards is nil on a single-shard database, keeping N=1
// reports gob-identical to pre-forest ones.
type SyncReportII struct {
	User  sig.UserID
	Sigma digest.Digest
	Last  digest.Digest
	// Shards carries the per-shard register pairs of a forest user
	// (one entry per shard, indexed by shard). Nil in single-tree mode.
	Shards []ShardRegs
}

// ShardRegs is one shard's (σ, last) register pair of a forest user.
type ShardRegs struct {
	Sigma digest.Digest
	Last  digest.Digest
}

// CheckSyncII runs the Protocol II synchronization check: the XOR of
// all σₖ must equal initialState ⊕ lastᵢ for some user i. By Lemma 4.1
// this holds iff the tagged states the users saw form a single
// directed path out of the initial state — i.e. the server ran one
// linear history with no forks, replays, or fabricated states.
//
// It returns the index into reports of the user whose lastᵢ closes the
// chain, or -1 if the check fails.
func CheckSyncII(initialState digest.Digest, reports []SyncReportII) int {
	var acc digest.Digest
	for _, r := range reports {
		acc = acc.Xor(r.Sigma)
	}
	want := initialState.Xor(acc) // lastᵢ must equal initial ⊕ ⊕σₖ
	for i, r := range reports {
		if r.Last == want {
			return i
		}
	}
	return -1
}

// CheckSyncForest runs the Protocol II synchronization check once per
// shard of a Merkle forest: shard s closes iff the XOR of all users'
// σ_s equals genesis_s ⊕ last_s for some user. Lemma 4.1 applies to
// each shard separately — each is a totally ordered, authenticated
// history of its own — and cross-shard transactions contribute one
// verified transition to *every* leg shard's chain, so a torn commit
// leaves at least one shard that cannot close.
//
// It returns (-1, nil) when every shard closes, (s, nil) with the
// first shard whose chain does not close, or an error when a report is
// structurally malformed (wrong shard count — a protocol violation,
// not a sync failure).
func CheckSyncForest(geneses []digest.Digest, reports []SyncReportII) (int, error) {
	for _, r := range reports {
		if len(r.Shards) != len(geneses) {
			return 0, fmt.Errorf("core: sync report of user %v has %d shards, want %d", r.User, len(r.Shards), len(geneses))
		}
	}
	sub := make([]SyncReportII, len(reports))
	for s, g := range geneses {
		for i, r := range reports {
			sub[i] = SyncReportII{User: r.User, Sigma: r.Shards[s].Sigma, Last: r.Shards[s].Last}
		}
		if CheckSyncII(g, sub) < 0 {
			return s, nil
		}
	}
	return -1, nil
}

// SyncReportI is a user's contribution to a Protocol I
// synchronization: its local operation count (and gctr, which the
// check compares against the total).
type SyncReportI struct {
	User sig.UserID
	LCtr uint64
	GCtr uint64
}

// CheckSyncI runs the Protocol I synchronization check: some user's
// gctrᵢ must equal Σₖ lctrₖ. Every state signature binds the counter,
// so each legitimate ctr increment is matched by exactly one lctr
// increment on a single linear history; a fork or replay makes every
// chain shorter than the total. It returns the index of a satisfying
// user or -1.
func CheckSyncI(reports []SyncReportI) int {
	var total uint64
	for _, r := range reports {
		total += r.LCtr
	}
	for i, r := range reports {
		if r.GCtr == total {
			return i
		}
	}
	return -1
}
