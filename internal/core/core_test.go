package core

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/sig"
)

func d(s string) digest.Digest { return digest.OfBytes(digest.DomainState, []byte(s)) }

func TestStateHashBindsAllInputs(t *testing.T) {
	r1, r2 := d("root1"), d("root2")
	base := StateHash(r1, 5)
	if base == StateHash(r2, 5) {
		t.Error("state hash must bind the root")
	}
	if base == StateHash(r1, 6) {
		t.Error("state hash must bind the counter")
	}
	if base == TaggedStateHash(r1, 5, 0) {
		t.Error("tagged and untagged states must differ")
	}
	tagged := TaggedStateHash(r1, 5, 1)
	if tagged == TaggedStateHash(r1, 5, 2) {
		t.Error("tagged state must bind the user")
	}
}

func TestGenesisState(t *testing.T) {
	g := GenesisState(digest.Empty())
	if g != TaggedStateHash(digest.Empty(), 0, sig.GenesisID) {
		t.Error("genesis must be the tagged (D0, 0, genesis) state")
	}
	if g == GenesisState(d("other")) {
		t.Error("genesis must bind the initial root")
	}
}

// linearHistory simulates n ops by randomly chosen users over an
// honest linear state chain, returning per-user registers.
func linearHistory(rng *rand.Rand, users int, ops int, initial digest.Digest) []Registers {
	regs := make([]Registers, users)
	for i := range regs {
		regs[i].Last = initial
	}
	state := initial
	for c := uint64(1); c <= uint64(ops); c++ {
		u := rng.Intn(users)
		next := TaggedStateHash(d(fmt.Sprintf("root-%d", c)), c, sig.UserID(u))
		regs[u].Absorb(state, next, c)
		state = next
	}
	return regs
}

func reportsII(regs []Registers) []SyncReportII {
	out := make([]SyncReportII, len(regs))
	for i, r := range regs {
		out[i] = SyncReportII{User: sig.UserID(i), Sigma: r.Sigma, Last: r.Last}
	}
	return out
}

func TestCheckSyncIIHonest(t *testing.T) {
	f := func(seed int64, nu, nop uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		users := int(nu)%8 + 1
		ops := int(nop) % 100
		initial := GenesisState(digest.Empty())
		regs := linearHistory(rng, users, ops, initial)
		return CheckSyncII(initial, reportsII(regs)) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSyncIIDetectsFork(t *testing.T) {
	// Partition attack at the register level: two groups continue from
	// a common prefix on diverged chains. The combined registers must
	// fail the check (the state graph is a tree with two leaves, not a
	// path).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		initial := GenesisState(digest.Empty())
		// Group A = users 0,1; group B = users 2,3.
		regs := make([]Registers, 4)
		for i := range regs {
			regs[i].Last = initial
		}
		state := initial
		c := uint64(0)
		// Common prefix touched by everyone.
		for i := 0; i < 3+rng.Intn(5); i++ {
			c++
			u := rng.Intn(4)
			next := TaggedStateHash(d(fmt.Sprintf("pre-%d", c)), c, sig.UserID(u))
			regs[u].Absorb(state, next, c)
			state = next
		}
		forkPoint := state
		forkCtr := c
		// Branch A.
		sa, ca := forkPoint, forkCtr
		for i := 0; i < 1+rng.Intn(5); i++ {
			ca++
			u := rng.Intn(2)
			next := TaggedStateHash(d(fmt.Sprintf("a-%d", ca)), ca, sig.UserID(u))
			regs[u].Absorb(sa, next, ca)
			sa = next
		}
		// Branch B (the server replays the fork point to group B).
		sb, cb := forkPoint, forkCtr
		for i := 0; i < 1+rng.Intn(5); i++ {
			cb++
			u := 2 + rng.Intn(2)
			next := TaggedStateHash(d(fmt.Sprintf("b-%d", cb)), cb, sig.UserID(u))
			regs[u].Absorb(sb, next, cb)
			sb = next
		}
		return CheckSyncII(initial, reportsII(regs)) < 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCheckSyncIIFigure3Replay(t *testing.T) {
	// Figure 3's attack: the server replays the state (D1, 1) to three
	// users, producing divergent level-2 states (D2, D2′, D2′′), then
	// reconverges all three into the same (D3, 3). Every intermediate
	// node of the untagged state graph then has even total degree, so
	// the naive XOR check ("a first attempt", Section 4.3) cancels
	// everything but (D0,0) and (D4,4) and wrongly accepts. Tagging
	// each state with the user that performed the transition splits
	// (D3,3) into three distinct nodes and the check fails.
	initial := d("D0-0") // stands for h(M(D0)||0)
	untagged := func(name string, _ sig.UserID) digest.Digest { return d(name) }
	tagged := func(name string, u sig.UserID) digest.Digest {
		return digest.NewHasher(digest.DomainTaggedState).Digest(d(name)).Uint64(uint64(u)).Sum()
	}

	run := func(state func(string, sig.UserID) digest.Digest) int {
		regs := make([]Registers, 5)
		for i := range regs {
			regs[i].Last = initial
		}
		absorb := func(u sig.UserID, from, to digest.Digest, c uint64) {
			regs[u].Absorb(from, to, c)
		}
		d1 := state("D1", 1)
		d2 := state("D2", 2)
		d2p := state("D2'", 3)
		d2pp := state("D2''", 4)
		d3u2 := state("D3", 2)
		d3u3 := state("D3", 3)
		d3u4 := state("D3", 4)
		d4 := state("D4", 1)

		absorb(1, initial, d1, 1) // (D0,0) -1-> (D1,1)
		absorb(2, d1, d2, 2)      // (D1,1) -2-> (D2,2)
		absorb(3, d1, d2p, 2)     // replay of (D1,1) to user 3
		absorb(4, d1, d2pp, 2)    // replay of (D1,1) to user 4
		absorb(2, d2, d3u2, 3)    // all three branches reconverge ...
		absorb(3, d2p, d3u3, 3)   // ... into (D3,3)
		absorb(4, d2pp, d3u4, 3)
		absorb(1, d3u2, d4, 4) // (D3,3) -1-> (D4,4); server claims j=2 for the old state
		return CheckSyncII(initial, reportsII(regs))
	}

	if run(untagged) < 0 {
		t.Error("untagged XOR should (wrongly) accept the Figure 3 replay — that is the paper's point")
	}
	if run(tagged) >= 0 {
		t.Error("tagged states must reject the Figure 3 replay")
	}
}

func TestCheckSyncIIZeroOps(t *testing.T) {
	initial := GenesisState(digest.Empty())
	regs := make([]Registers, 3)
	for i := range regs {
		regs[i].Last = initial
	}
	if CheckSyncII(initial, reportsII(regs)) < 0 {
		t.Error("zero-op history must pass the sync check")
	}
}

func TestCheckSyncIHonestAndForked(t *testing.T) {
	// Honest: gctr of the last user equals the total op count.
	honest := []SyncReportI{
		{User: 0, LCtr: 3, GCtr: 5},
		{User: 1, LCtr: 4, GCtr: 7},
	}
	if CheckSyncI(honest) != 1 {
		t.Error("honest Protocol I sync must pass via the last user")
	}
	// Forked: 7 total ops but both chains are shorter than 7.
	forked := []SyncReportI{
		{User: 0, LCtr: 4, GCtr: 4}, // chain A has 4 ops
		{User: 1, LCtr: 3, GCtr: 3}, // chain B has 3 ops
	}
	if CheckSyncI(forked) >= 0 {
		t.Error("forked Protocol I sync must fail")
	}
}

func TestAbsorbTelescopes(t *testing.T) {
	// After any linear history, each user's σ XORed together equals
	// initial ⊕ final — the algebra behind Theorem 4.2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		initial := GenesisState(digest.Empty())
		regs := linearHistory(rng, 5, 50, initial)
		var acc digest.Digest
		var last digest.Digest
		var lastCtr uint64
		for _, r := range regs {
			acc = acc.Xor(r.Sigma)
			if r.LastCtr >= lastCtr && r.Ops > 0 {
				lastCtr, last = r.LastCtr, r.Last
			}
		}
		return initial.Xor(acc) == last
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestEpochBackupSignature(t *testing.T) {
	signers, ring, err := sig.DeterministicSigners(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	b := &EpochBackup{User: 0, Epoch: 3, Sigma: d("s"), Last: d("l"), LastCtr: 9}
	b.Sig = signers[0].Sign(EpochSummaryHash(b.User, b.Epoch, b.Sigma, b.Last, b.LastCtr))
	if err := b.Verify(ring); err != nil {
		t.Fatalf("valid backup rejected: %v", err)
	}
	// Any field change must invalidate the signature.
	mutations := []func(*EpochBackup){
		func(b *EpochBackup) { b.Epoch++ },
		func(b *EpochBackup) { b.Sigma = d("x") },
		func(b *EpochBackup) { b.Last = d("x") },
		func(b *EpochBackup) { b.LastCtr++ },
		func(b *EpochBackup) { b.User = 1 },
	}
	for i, m := range mutations {
		c := *b
		m(&c)
		if err := c.Verify(ring); err == nil {
			t.Errorf("mutation %d not caught", i)
		}
	}
}

func TestDetectionError(t *testing.T) {
	cause := fmt.Errorf("root mismatch")
	err := Detect(BadVO, 3, 17, cause)
	if de, ok := AsDetection(err); !ok || de.Class != BadVO || de.User != 3 || de.LCtr != 17 {
		t.Fatalf("AsDetection: %+v %v", de, ok)
	}
	wrapped := fmt.Errorf("driver: %w", err)
	if de, ok := AsDetection(wrapped); !ok || de.Class != BadVO {
		t.Fatal("AsDetection must see through wrapping")
	}
	if _, ok := AsDetection(fmt.Errorf("plain")); ok {
		t.Fatal("plain errors are not detections")
	}
	for c := BadVO; c <= ProtocolViolation; c++ {
		if c.String() == "" || c.String()[0] == 'd' && c != DetectionClass(99) {
			continue
		}
	}
	if DetectionClass(99).String() != "detection-class(99)" {
		t.Fatal("unknown class string")
	}
}
