// Forest mode: Protocol II over a sharded Merkle forest (vdb N > 1).
//
// Every shard is its own verification domain — its own register chain
// (σ_s, last_s) rooted at ShardGenesisState(s, root₀_s), its own
// last-user tag on the server, and its own ordered section — so
// operations on different shards never serialize against each other.
// Lemma 4.1 applies per shard: each shard's tagged states must form a
// single directed path, and the sync barrier checks closure of every
// shard's chain (core.CheckSyncForest).
//
// Cross-shard transactions are the new failure surface. The server
// commits all legs inside one gctr window (vdb.BeginCross); both sides
// derive the transaction digest txd = CrossTxDigest(user, preGctr,
// legs) from response fields alone, and every leg's new tagged state
// absorbs txd (core.ShardStateHash). The committing client additionally
// records a pending (ctr, root) expectation per leg shard; any later
// response whose published head vector excludes or contradicts a
// pending leg is a typed TornTransaction detection — distinct from
// single-shard tamper, raised before the next sync barrier.
package proto2

import (
	"errors"
	"fmt"

	"trustedcvs/internal/core"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// shardMeta is one shard's slice of the server's Protocol II
// bookkeeping: the last user to operate on the shard and the
// transaction digest of that operation (Zero for single-shard ops).
// It has no mutex of its own: a shard's meta is read and swapped
// inside that shard's vdb ordered section (BeginShardIn/BeginCrossIn
// hooks), so the shard lock IS the meta lock. That keeps the forest
// hot path at one lock hand-off per shard and keeps the shard's
// contention counters honest — a second mutex in front would absorb
// all the queueing the counters exist to measure.
type shardMeta struct {
	lastUser sig.UserID
	lastTx   digest.Digest
}

// MetaState is the persistent image of one shard's bookkeeping,
// captured by CheckpointForest and restored by NewForestServerAt.
type MetaState struct {
	LastUser sig.UserID
	LastTx   digest.Digest
}

func newMetas(n int) []shardMeta {
	metas := make([]shardMeta, n)
	for i := range metas {
		metas[i].lastUser = sig.GenesisID
	}
	return metas
}

// Forest reports whether this server runs in forest mode.
func (s *Server) Forest() bool { return s.metas != nil }

// handleShardOp is HandleOp's forest path: the ordered section narrows
// to the one shard the operation routes to, and the shard's last tag
// swaps inside that same section.
func (s *Server) handleShardOp(req *core.OpRequest) (*core.OpResponseII, error) {
	sid, err := s.db.ShardFor(req.Op)
	if err != nil {
		return nil, fmt.Errorf("proto2: route: %w", err)
	}
	var last sig.UserID
	var lastTx digest.Digest
	st, err := s.db.BeginShardIn(sid, req.Op, func(*vdb.Staged) {
		m := &s.metas[sid]
		last, lastTx = m.lastUser, m.lastTx
		m.lastUser, m.lastTx = req.User, digest.Zero
	})
	if err != nil {
		return nil, fmt.Errorf("proto2: apply: %w", err)
	}

	ans, vo, err := st.Finish()
	if err != nil {
		return nil, fmt.Errorf("proto2: encode: %w", err)
	}
	return &core.OpResponseII{
		Answer: ans,
		VO:     vo,
		Ctr:    st.PreCtr(),
		Last:   last,
		Shard:  uint32(sid),
		LastTx: lastTx,
		GCtr:   st.PostGctr(),
		Heads:  st.Heads(),
	}, nil
}

// HandleCross serves a cross-shard transaction: all legs prepared and
// committed inside one gctr window, every touched shard's last tag
// swapped to (user, txd) at the same linearization point.
func (s *Server) HandleCross(req *core.OpRequest) (*core.OpResponseForest, error) {
	if s.metas == nil {
		return nil, errors.New("proto2: cross-shard transaction on a single-tree server")
	}
	cross, ok := req.Op.(*vdb.CrossOp)
	if !ok {
		return nil, fmt.Errorf("proto2: HandleCross wants a *vdb.CrossOp, got %T", req.Op)
	}
	// BeginCrossIn routes the legs, rejects shard collisions, locks the
	// leg shards in ascending order, and runs the hook at the commit's
	// linearization point — where every touched shard's last tag swaps
	// to (user, txd) atomically with the counter bumps. The transaction
	// digest folds only counters already in hand, so the work added to
	// the held sections is a single short hash.
	legRefs := make([]core.OpLegII, 0, len(cross.Legs))
	var txd digest.Digest
	cst, err := s.db.BeginCrossIn(cross, func(cst *vdb.CrossStaged) {
		legs := cst.Legs()
		ref := make([]core.CrossLeg, len(legs))
		for i, leg := range legs {
			ref[i] = core.CrossLeg{Shard: uint32(leg.Shard()), Ctr: leg.PreCtr()}
		}
		txd = core.CrossTxDigest(req.User, cst.PreGctr(), ref)
		for _, leg := range legs {
			m := &s.metas[leg.Shard()]
			legRefs = append(legRefs, core.OpLegII{
				Shard:  uint32(leg.Shard()),
				Ctr:    leg.PreCtr(),
				Last:   m.lastUser,
				LastTx: m.lastTx,
			})
			m.lastUser, m.lastTx = req.User, txd
		}
	})
	if err != nil {
		return nil, fmt.Errorf("proto2: apply: %w", err)
	}
	resp := &core.OpResponseForest{
		Legs:  legRefs,
		GCtr:  cst.PostGctr(),
		Heads: cst.Heads(),
	}

	// VO pruning and answer encoding per leg, outside every lock.
	for i, leg := range cst.Legs() {
		ans, vo, err := leg.Finish()
		if err != nil {
			return nil, fmt.Errorf("proto2: encode leg %d: %w", i, err)
		}
		resp.Legs[i].Answer, resp.Legs[i].VO = ans, vo
	}
	return resp, nil
}

// forkForest is Fork for forest servers: a consistent (db, metas) cut
// taken with every shard's ordered section held.
func (s *Server) forkForest() *Server {
	var f *Server
	s.db.LockAll(func() {
		f = &Server{db: s.db.Fork(), lastUser: s.lastUser, metas: newMetas(len(s.metas))}
		copy(f.metas, s.metas)
	})
	return f
}

// CheckpointForest atomically captures a forest server's persistent
// state: an O(1) fork of the database plus every shard's meta, taken
// with all ordered sections held so the pair is one cut of the
// operation order. Errors on a single-tree server (use Checkpoint).
func (s *Server) CheckpointForest() (*vdb.DB, []MetaState, error) {
	if s.metas == nil {
		return nil, nil, errors.New("proto2: CheckpointForest on a single-tree server")
	}
	var db *vdb.DB
	metas := make([]MetaState, len(s.metas))
	s.db.LockAll(func() {
		db = s.db.Fork()
		for i := range s.metas {
			metas[i] = MetaState{LastUser: s.metas[i].lastUser, LastTx: s.metas[i].lastTx}
		}
	})
	return db, metas, nil
}

// NewForestServerAt wraps a restored forest database, resuming from
// the given per-shard metas.
func NewForestServerAt(db *vdb.DB, metas []MetaState) (*Server, error) {
	if db.Shards() != len(metas) {
		return nil, fmt.Errorf("proto2: restored db has %d shards but %d metas", db.Shards(), len(metas))
	}
	s := &Server{db: db, lastUser: sig.GenesisID, metas: newMetas(len(metas))}
	for i, m := range metas {
		s.metas[i].lastUser = m.LastUser
		s.metas[i].lastTx = m.LastTx
	}
	return s, nil
}

// forestShard is one shard's slice of a forest user's state: the
// register chain plus at most one pending cross-transaction leg — the
// (ctr, root) this user verified as committed on the shard, awaiting
// confirmation by a later published head vector.
type forestShard struct {
	regs    core.Registers
	pending *pendingLeg
}

// pendingLeg is the post-state of a committed cross-transaction leg:
// the shard counter after the leg and the shard root it produced.
type pendingLeg struct {
	ctr  uint64
	root digest.Digest
}

// NewForestUser creates a user state machine tracking an N-shard
// forest: one register chain per shard, each rooted at that shard's
// genesis state. shardRoots are the initial per-shard roots M(D₀_s)
// (common knowledge, like initialRoot in NewUser); k is the sync
// period.
func NewForestUser(id sig.UserID, shardRoots []digest.Digest, k uint64) *User {
	if k == 0 {
		panic("proto2: sync period k must be positive")
	}
	if len(shardRoots) < 2 {
		panic("proto2: forest user wants at least 2 shards (use NewUser)")
	}
	u := &User{id: id, k: k}
	u.geneses = make([]digest.Digest, len(shardRoots))
	u.fshards = make([]forestShard, len(shardRoots))
	u.headCtrs = make([]uint64, len(shardRoots))
	for s, root := range shardRoots {
		g := core.ShardGenesisState(uint32(s), root)
		u.geneses[s] = g
		u.fshards[s].regs.Last = g
	}
	return u
}

// checkHeads vets a published head vector against this user's pending
// cross-transaction legs and monotone per-shard counter floors. It
// runs BEFORE the global counter checks on every forest response: a
// torn commit typically also moves gctr, and the typed class must name
// the actual crime.
func (u *User) checkHeads(heads []vdb.ShardHead) error {
	for s := range heads {
		h := heads[s]
		fs := &u.fshards[s]
		if p := fs.pending; p != nil {
			switch {
			case h.Ctr < p.ctr:
				return core.Detect(core.TornTransaction, u.id, u.regs.Ops,
					fmt.Errorf("shard %d head counter %d excludes this user's committed cross-transaction leg at counter %d", s, h.Ctr, p.ctr))
			case h.Ctr == p.ctr && h.Root != p.root:
				return core.Detect(core.TornTransaction, u.id, u.regs.Ops,
					fmt.Errorf("shard %d head at counter %d contradicts this user's committed cross-transaction leg", s, h.Ctr))
			default:
				// The head is at or past the leg with a matching root at
				// the leg's counter: the leg is in the published history.
				// (A head past the leg whose history nevertheless dropped
				// it cannot close any shard chain at the sync barrier.)
				fs.pending = nil
			}
		}
		if h.Ctr < u.headCtrs[s] {
			return core.Detect(core.CounterReplay, u.id, u.regs.Ops,
				fmt.Errorf("shard %d head counter regressed from %d to %d", s, u.headCtrs[s], h.Ctr))
		}
		u.headCtrs[s] = h.Ctr
	}
	return nil
}

// verifyForestResponse is VerifyResponse's forest path: the VO replay
// and register fold of Protocol II, scoped to the shard the client
// itself routes the operation to, plus head-vector consistency checks
// that bind the response into the global order. The answer is judged
// (against the replay) but not decoded; HandleResponse decodes on top.
func (u *User) verifyForestResponse(op vdb.Op, resp *core.OpResponseII) error {
	if resp == nil || resp.VO == nil {
		return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops, errors.New("missing response or VO"))
	}
	n := len(u.fshards)
	if len(resp.Heads) != n {
		return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops,
			fmt.Errorf("head vector has %d shards, want %d", len(resp.Heads), n))
	}
	// The client routes the op itself — the server has no say in which
	// verification domain an operation belongs to.
	sid, err := vdb.RouteOp(op, n)
	if err != nil || sid != int(resp.Shard) {
		return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops,
			fmt.Errorf("server ran op on shard %d, client routes it to shard %d (%v)", resp.Shard, sid, err))
	}
	// Pending-leg and head-floor checks first (see checkHeads).
	if err := u.checkHeads(resp.Heads); err != nil {
		return err
	}
	var sum uint64
	for _, h := range resp.Heads {
		sum += h.Ctr
	}
	if sum != resp.GCtr {
		return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops,
			fmt.Errorf("global counter %d is not the sum %d of the head counters", resp.GCtr, sum))
	}
	if resp.GCtr <= u.regs.GCtr {
		return core.Detect(core.CounterReplay, u.id, u.regs.Ops,
			fmt.Errorf("server presented gctr %d after gctr %d", resp.GCtr, u.regs.GCtr))
	}
	fs := &u.fshards[sid]
	if resp.Ctr < fs.regs.LastCtr {
		return core.Detect(core.CounterReplay, u.id, u.regs.Ops,
			fmt.Errorf("server presented shard %d ctr %d after ctr %d", sid, resp.Ctr, fs.regs.LastCtr))
	}
	oldRoot, newRoot, err := vdb.VerifyDerive(op, resp.Answer, resp.VO)
	if err != nil {
		return core.Detect(classify(err), u.id, u.regs.Ops, err)
	}
	// The response's own operation must be the shard's published head.
	if h := resp.Heads[sid]; h.Ctr != resp.Ctr+1 || h.Root != newRoot {
		return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops,
			fmt.Errorf("shard %d head (ctr %d) contradicts the operation it ships with (ctr %d)", sid, h.Ctr, resp.Ctr+1))
	}
	oldState := core.ShardStateHash(resp.Shard, oldRoot, resp.Ctr, resp.Last, resp.LastTx)
	newState := core.ShardStateHash(resp.Shard, newRoot, resp.Ctr+1, u.id, digest.Zero)
	fs.regs.Absorb(oldState, newState, resp.Ctr+1)
	u.regs.GCtr = resp.GCtr
	u.regs.Ops++
	u.lastCtr, u.lastRoot = resp.GCtr, vdb.FoldHeads(resp.Heads)
	u.sinceSync++
	return nil
}

// HandleResponseForest verifies the server's reply to a cross-shard
// transaction: every leg's VO replays against its own shard, all legs
// are welded together by the transaction digest absorbed into each
// leg's new tagged state, and each leg is recorded as pending until a
// later head vector confirms it. Returns the decoded vdb.CrossAnswer.
func (u *User) HandleResponseForest(op *vdb.CrossOp, resp *core.OpResponseForest) (any, error) {
	if err := u.VerifyResponseForest(op, resp); err != nil {
		return nil, err
	}
	answers := make([]any, len(resp.Legs))
	for i, leg := range resp.Legs {
		ans, err := u.decodeAnswer(leg.Answer)
		if err != nil {
			return nil, err
		}
		answers[i] = ans
	}
	return vdb.CrossAnswer{Answers: answers}, nil
}

// VerifyResponseForest is HandleResponseForest without decoding the
// leg answers — the epoch auditor's cross-transaction path, mirroring
// VerifyResponse.
func (u *User) VerifyResponseForest(op *vdb.CrossOp, resp *core.OpResponseForest) error {
	if u.fshards == nil {
		return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops,
			errors.New("cross-shard response in single-tree mode"))
	}
	if resp == nil || len(resp.Legs) == 0 {
		return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops, errors.New("missing response or legs"))
	}
	n := len(u.fshards)
	if len(resp.Heads) != n {
		return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops,
			fmt.Errorf("head vector has %d shards, want %d", len(resp.Heads), n))
	}
	if len(resp.Legs) != len(op.Legs) {
		return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops,
			fmt.Errorf("response has %d legs, transaction has %d", len(resp.Legs), len(op.Legs)))
	}
	// The client routes every leg itself; the server's claimed shards
	// must match, with no duplicates.
	seen := make(map[int]bool, len(op.Legs))
	for i, legOp := range op.Legs {
		sid, err := vdb.RouteOp(legOp, n)
		if err != nil || sid != int(resp.Legs[i].Shard) {
			return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops,
				fmt.Errorf("server ran leg %d on shard %d, client routes it to shard %d (%v)", i, resp.Legs[i].Shard, sid, err))
		}
		if seen[sid] {
			return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops,
				fmt.Errorf("cross legs share shard %d", sid))
		}
		seen[sid] = true
		if resp.Legs[i].VO == nil {
			return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops,
				fmt.Errorf("leg %d has no VO", i))
		}
	}
	// Pending-leg and head-floor checks against prior transactions
	// first, then the global counter checks.
	if err := u.checkHeads(resp.Heads); err != nil {
		return err
	}
	var sum uint64
	for _, h := range resp.Heads {
		sum += h.Ctr
	}
	if sum != resp.GCtr {
		return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops,
			fmt.Errorf("global counter %d is not the sum %d of the head counters", resp.GCtr, sum))
	}
	if resp.GCtr < uint64(len(resp.Legs)) || resp.GCtr-uint64(len(resp.Legs)) < u.regs.GCtr {
		return core.Detect(core.CounterReplay, u.id, u.regs.Ops,
			fmt.Errorf("server presented gctr %d (%d legs) after gctr %d", resp.GCtr, len(resp.Legs), u.regs.GCtr))
	}
	// Both sides derive the transaction digest from the response alone.
	ref := make([]core.CrossLeg, len(resp.Legs))
	for i, leg := range resp.Legs {
		ref[i] = core.CrossLeg{Shard: leg.Shard, Ctr: leg.Ctr}
	}
	txd := core.CrossTxDigest(u.id, resp.GCtr-uint64(len(resp.Legs)), ref)

	for i, leg := range resp.Legs {
		fs := &u.fshards[leg.Shard]
		if leg.Ctr < fs.regs.LastCtr {
			return core.Detect(core.CounterReplay, u.id, u.regs.Ops,
				fmt.Errorf("server presented shard %d ctr %d after ctr %d", leg.Shard, leg.Ctr, fs.regs.LastCtr))
		}
		oldRoot, newRoot, err := vdb.VerifyDerive(op.Legs[i], leg.Answer, leg.VO)
		if err != nil {
			return core.Detect(classify(err), u.id, u.regs.Ops, fmt.Errorf("leg %d: %w", i, err))
		}
		// The transaction's own head vector must include this leg — a
		// head that omits a leg of the very transaction it ships with is
		// the tear, caught immediately.
		if h := resp.Heads[leg.Shard]; h.Ctr != leg.Ctr+1 || h.Root != newRoot {
			return core.Detect(core.TornTransaction, u.id, u.regs.Ops,
				fmt.Errorf("shard %d head excludes leg %d of the transaction it ships with", leg.Shard, i))
		}
		oldState := core.ShardStateHash(leg.Shard, oldRoot, leg.Ctr, leg.Last, leg.LastTx)
		newState := core.ShardStateHash(leg.Shard, newRoot, leg.Ctr+1, u.id, txd)
		fs.regs.Absorb(oldState, newState, leg.Ctr+1)
		fs.pending = &pendingLeg{ctr: leg.Ctr + 1, root: newRoot}
	}
	u.regs.GCtr = resp.GCtr
	u.regs.Ops++
	u.lastCtr, u.lastRoot = resp.GCtr, vdb.FoldHeads(resp.Heads)
	u.sinceSync++
	return nil
}

// completeForestSync is CompleteSync's forest path: every shard's
// register chain must close (core.CheckSyncForest). A torn cross
// transaction that escaped the typed pending check — because the
// victim saw no later response — still surfaces here: the dropped
// leg's absorbed transition gives its old state in-degree 2 in that
// shard's graph, so the chain cannot close.
func (u *User) completeForestSync(reports []core.SyncReportII) error {
	s, err := core.CheckSyncForest(u.geneses, reports)
	if err != nil {
		return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops, err)
	}
	if s >= 0 {
		return core.Detect(core.SyncMismatch, u.id, u.regs.Ops,
			fmt.Errorf("no last register closes the state chain of shard %d", s))
	}
	// Closure authenticates the whole history, pending legs included.
	for i := range u.fshards {
		u.fshards[i].pending = nil
	}
	u.sinceSync = 0
	return nil
}
