package proto2

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"trustedcvs/internal/core"
	"trustedcvs/internal/merkle"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// TestQuickByzantineResponseMutations is the soundness fuzzer: an
// otherwise honest run has ONE response field mutated to a random
// different value (counter, last-user tag, answer bytes, or a digest
// inside the VO). Every such lie must be caught — either immediately
// by the per-operation checks or at the closing synchronization.
func TestQuickByzantineResponseMutations(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3)
		h := newHarness(t, n, 1_000_000) // manual sync at the end
		ops := 5 + rng.Intn(25)
		victimOp := 1 + rng.Intn(ops)
		mutation := rng.Intn(4)

		var detected error
		for i := 1; i <= ops && detected == nil; i++ {
			u := rng.Intn(n)
			op := put(fmt.Sprintf("k%d", rng.Intn(8)), fmt.Sprintf("v%d", i))
			resp, err := h.server.HandleOp(h.users[u].Request(op))
			if err != nil {
				t.Log(err)
				return false
			}
			applied := true
			if i == victimOp {
				applied = mutate(rng, resp, mutation)
			}
			if i == victimOp && !applied {
				// The lie had nothing to bite on (e.g. an empty-tree VO
				// has no digests to corrupt): vacuous trial.
				return true
			}
			if _, err := h.users[u].HandleResponse(op, resp); err != nil {
				detected = err
			}
		}
		if detected == nil {
			detected = h.sync()
		}
		de, ok := core.AsDetection(detected)
		if !ok {
			t.Logf("mutation %d at op %d/%d undetected", mutation, victimOp, ops)
			return false
		}
		_ = de
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// mutate applies one lie to the response, reporting whether anything
// actually changed.
func mutate(rng *rand.Rand, resp *core.OpResponseII, kind int) bool {
	switch kind {
	case 0: // counter lie (any different value)
		resp.Ctr += uint64(1 + rng.Intn(10))
	case 1: // attribution lie: blame a different user
		resp.Last += sig.UserID(1 + rng.Intn(5))
	case 2: // answer lie: substitute a well-formed different answer
		forged, err := vdb.EncodeAnswer(vdb.ReadAnswer{Results: []vdb.ReadResult{{
			Key: "forged", Found: true, Val: []byte{byte(rng.Int())},
		}}})
		if err != nil {
			panic(err)
		}
		resp.Answer = forged
	case 3: // VO lie: corrupt one pruned digest inside the proof
		return flipOneDigest(rng, resp.VO.Root)
	}
	return true
}

// flipOneDigest flips a byte in some pruned digest of the VO (there is
// always at least one on a non-trivial tree; if not, the root content
// itself is mutated via a key rename).
func flipOneDigest(rng *rand.Rand, n *merkle.VONode) bool {
	if n == nil {
		return false
	}
	if n.Pruned {
		n.Digest[rng.Intn(len(n.Digest))] ^= 0xFF
		return true
	}
	for _, k := range n.Kids {
		if flipOneDigest(rng, k) {
			return true
		}
	}
	if len(n.Keys) > 0 {
		n.Keys[0] += "-tampered"
		return true
	}
	return false
}

// TestByzantineCtrLieCaughtSameUser: a counter jump is caught no later
// than the same user's next operation (monotonicity is per-user; the
// jump itself may pass, but the chain breaks at sync regardless).
func TestByzantineCtrLieCaughtAtSync(t *testing.T) {
	h := newHarness(t, 2, 1_000_000)
	op := put("a", "1")
	resp, err := h.server.HandleOp(h.users[0].Request(op))
	if err != nil {
		t.Fatal(err)
	}
	resp.Ctr += 7
	if _, err := h.users[0].HandleResponse(op, resp); err != nil {
		t.Fatalf("a pure forward ctr jump passes per-op checks: %v", err)
	}
	err = h.sync()
	if de, ok := core.AsDetection(err); !ok || de.Class != core.SyncMismatch {
		t.Fatalf("ctr lie must break the chain at sync: %v", err)
	}
}
