// Package proto2 implements Protocol II of the Trusted CVS paper
// (Section 4.3): no per-operation signatures, no PKI, and no blocking
// third message. Each user keeps two constant-size registers — σᵢ, the
// XOR of every user-tagged state h(M(D)‖ctr‖j) it has seen, and lastᵢ,
// the tagged state of its own most recent operation. Every k
// operations the users broadcast their registers and check that
//
//	h(M(D₀)‖0‖genesis) ⊕ lastᵢ = ⊕ₖ σₖ   for some user i,
//
// which by Lemma 4.1 holds iff the states the server produced form a
// single directed path — one linear history, no forks, no replays
// (Theorem 4.2).
//
// Message flow per operation (two messages):
//
//	user → server: OpRequest{op}
//	server → user: OpResponseII{answer, VO, ctr, j}
package proto2

import (
	"errors"
	"fmt"
	"sync"

	"trustedcvs/internal/core"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/forensics"
	"trustedcvs/internal/merkle"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// Server is the (honest) Protocol II server state machine: the
// database plus the identity of the last user to operate on it.
//
// Server is safe for concurrent use. HandleOp is a three-stage
// pipeline: request decoding happens upstream (per connection, no
// lock); the ordered section under mu applies the operation, bumps
// ctr, and swaps the last-user tag — the linearization point every
// detection argument refers to; VO pruning and answer encoding then
// run outside the lock on the captured immutable snapshot. See
// DESIGN.md "Concurrency model".
type Server struct {
	mu       sync.Mutex
	db       *vdb.DB
	lastUser sig.UserID

	// metas is the forest mode's per-shard bookkeeping (one entry per
	// shard, nil on a single-tree database): each shard has its own
	// last-user tag and its own ordered section, so operations on
	// different shards never serialize against each other. See
	// forest.go.
	metas []shardMeta
}

// NewServer wraps db with Protocol II bookkeeping. The initial state
// is tagged with the reserved genesis ID. A database with more than
// one shard gets per-shard bookkeeping (forest mode).
func NewServer(db *vdb.DB) *Server {
	s := &Server{db: db, lastUser: sig.GenesisID}
	if db.Shards() > 1 {
		s.metas = newMetas(db.Shards())
	}
	return s
}

// DB exposes the underlying database.
func (s *Server) DB() *vdb.DB { return s.db }

// Fork returns an independent copy of the server sharing history up to
// now — the primitive behind the Figure 1 partition attack. Honest
// servers never call this; internal/adversary does.
func (s *Server) Fork() *Server {
	if s.metas != nil {
		return s.forkForest()
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Server{db: s.db.Fork(), lastUser: s.lastUser}
}

// LastUser returns j, the user whose operation produced the current
// state (persisted across server restarts).
func (s *Server) LastUser() sig.UserID {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastUser
}

// Checkpoint atomically captures the server's persistent state: an
// O(1) fork of the database (persistent tree) plus the last-user tag,
// taken at one point of the operation order. The snapshot walk itself
// can then run outside the lock, so a live server checkpoints without
// stalling its pipeline.
func (s *Server) Checkpoint() (*vdb.DB, sig.UserID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.db.Fork(), s.lastUser
}

// NewServerAt wraps a restored database, resuming from the given last
// user.
func NewServerAt(db *vdb.DB, lastUser sig.UserID) *Server {
	return &Server{db: db, lastUser: lastUser}
}

// HandleOp applies the operation and returns (answer, VO, ctr, j).
// Unlike Protocol I there is nothing to wait for afterwards. In forest
// mode the ordered section is per shard (see forest.go); cross-shard
// transactions go through HandleCross.
func (s *Server) HandleOp(req *core.OpRequest) (*core.OpResponseII, error) {
	if s.metas != nil {
		return s.handleShardOp(req)
	}
	// Ordered section: apply + ctr bump + last-user swap. The captured
	// (staged, last) pair fully determines the response.
	s.mu.Lock()
	st, err := s.db.Begin(req.Op)
	if err != nil {
		s.mu.Unlock()
		return nil, fmt.Errorf("proto2: apply: %w", err)
	}
	last := s.lastUser
	s.lastUser = req.User
	s.mu.Unlock()

	// Post-processing on the immutable snapshot: VO pruning and answer
	// encoding run concurrently with subsequent operations.
	ans, vo, err := st.Finish()
	if err != nil {
		return nil, fmt.Errorf("proto2: encode: %w", err)
	}
	return &core.OpResponseII{
		Answer: ans,
		VO:     vo,
		Ctr:    st.PreCtr(),
		Last:   last,
	}, nil
}

// User is the Protocol II user state machine: the registers (σᵢ,
// lastᵢ, gctrᵢ, lctrᵢ) — constant size regardless of history length.
// An optional bounded journal (EnableJournal) supports post-detection
// fault localization via internal/forensics.
type User struct {
	id           sig.UserID
	k            uint64
	sinceSync    uint64
	regs         core.Registers
	initialState digest.Digest
	journal      *forensics.Journal
	lastCtr      uint64
	lastRoot     digest.Digest

	// Forest mode (nil/empty when tracking a single tree): one
	// register chain, genesis, and pending-leg slot per shard, plus a
	// monotone floor of observed head counters. See forest.go.
	geneses  []digest.Digest
	fshards  []forestShard
	headCtrs []uint64

	// chain is the audit batcher's shared-path cache (nil unless
	// EnableReplayChain was called). See replayChain.
	chain *replayChain
}

// replayChain caches the post-state tree of this user's most recently
// verified operation. When the next response claims to extend exactly
// that state (same counter, this user as the last tag), the operation
// is replayed directly on the cached tree instead of unpacking and
// re-hashing a fresh VO — the audit batch's shared path recomputation.
// The cached tree is pruned to the coverage of the VO that produced
// it, so a replay that reaches outside falls back to the full VO path
// (a miss, never an error). Detection is unweakened either way: the
// chained transition is derived from the user's own verified state,
// and any server lie about adjacency surfaces at the epoch closure
// check exactly as a forged VO would.
type replayChain struct {
	tree   *merkle.Tree
	hits   uint64
	misses uint64
}

// EnableReplayChain arms the shared-path replay cache (single-tree
// users only; a forest user's cache would be per shard and the win is
// negligible under interleaved shard traffic — it falls back to full
// VO verification). Call before the first response is handled.
func (u *User) EnableReplayChain() {
	if u.fshards == nil {
		u.chain = &replayChain{}
	}
}

// ChainStats reports how many responses were verified on the chained
// fast path vs how many fell back to full VO verification. Both zero
// unless EnableReplayChain was called.
func (u *User) ChainStats() (hits, misses uint64) {
	if u.chain == nil {
		return 0, 0
	}
	return u.chain.hits, u.chain.misses
}

// EnableJournal attaches a bounded transition journal of the given
// capacity for fault localization (the paper's future work item 1).
// Capacity trades memory (a relaxation of desideratum 5) for how far
// back a fault can be pinpointed after detection.
func (u *User) EnableJournal(cap int) {
	u.journal = forensics.NewJournal(u.id, cap)
}

// Journal returns the user's transition journal (nil if not enabled).
func (u *User) Journal() *forensics.Journal { return u.journal }

// NewUser creates the user state machine. initialRoot is M(D₀), which
// the paper assumes is common knowledge; k is the synchronization
// period.
func NewUser(id sig.UserID, initialRoot digest.Digest, k uint64) *User {
	if k == 0 {
		panic("proto2: sync period k must be positive")
	}
	g := core.GenesisState(initialRoot)
	u := &User{id: id, k: k, initialState: g}
	u.regs.Last = g
	return u
}

// ID returns the user's identity.
func (u *User) ID() sig.UserID { return u.id }

// LCtr returns lctrᵢ.
func (u *User) LCtr() uint64 { return u.regs.Ops }

// Registers returns a copy of the user's registers (for experiments
// measuring state size and for Protocol III, which embeds this type).
func (u *User) Registers() core.Registers { return u.regs }

// VerifiedRoot returns the (ctr, root) pair this user most recently
// verified through a VO — the local truth a witness commitment for the
// same ctr must agree with. Zero (0, Zero) before any operation.
func (u *User) VerifiedRoot() (uint64, digest.Digest) {
	return u.lastCtr, u.lastRoot
}

// Request builds the operation request for op.
func (u *User) Request(op vdb.Op) *core.OpRequest {
	return &core.OpRequest{User: u.id, Op: op}
}

// HandleResponse verifies the server's reply to op, folds the verified
// transition into the registers, and returns the decoded answer. On
// deviation it returns a *core.DetectionError.
func (u *User) HandleResponse(op vdb.Op, resp *core.OpResponseII) (any, error) {
	if err := u.VerifyResponse(op, resp); err != nil {
		return nil, err
	}
	return u.decodeAnswer(resp.Answer)
}

// VerifyResponse is HandleResponse without the answer decode: it
// verifies the reply and folds the transition into the registers, but
// never materializes the answer value. The epoch auditor uses it —
// the answer was already decoded optimistically on the hot path, so
// re-decoding it at audit time would be pure waste.
func (u *User) VerifyResponse(op vdb.Op, resp *core.OpResponseII) error {
	if u.fshards != nil {
		return u.verifyForestResponse(op, resp)
	}
	if resp == nil || resp.VO == nil {
		return core.Detect(core.ProtocolViolation, u.id, u.regs.Ops, errors.New("missing response or VO"))
	}
	// Step 4 (with the strict inequality; see DESIGN.md errata): the
	// server may never show this user a counter below one it has
	// already seen — that is a replay.
	if resp.Ctr < u.regs.GCtr {
		return core.Detect(core.CounterReplay, u.id, u.regs.Ops,
			fmt.Errorf("server presented ctr %d after gctr %d", resp.Ctr, u.regs.GCtr))
	}
	var (
		oldRoot, newRoot digest.Digest
		post             *merkle.Tree
		chained          bool
	)
	// Shared-path fast path: the response claims to extend this user's
	// own last verified state (same counter, this user as the last
	// tag), so the pre-state is already in hand — replay on it and skip
	// the VO entirely. Any replay failure (pruned path, answer
	// mismatch) falls back to the full VO so the error class is always
	// the one the full check assigns.
	if c := u.chain; c != nil && c.tree != nil && resp.Ctr == u.lastCtr && resp.Last == u.id {
		if nr, nt, err := vdb.ReplayOn(c.tree, op, resp.Answer); err == nil {
			oldRoot, newRoot, post, chained = u.lastRoot, nr, nt, true
			c.hits++
		} else {
			c.misses++
		}
	}
	if !chained {
		var err error
		if u.chain != nil {
			oldRoot, newRoot, post, err = vdb.VerifyDeriveTree(op, resp.Answer, resp.VO)
		} else {
			oldRoot, newRoot, err = vdb.VerifyDerive(op, resp.Answer, resp.VO)
		}
		if err != nil {
			return core.Detect(classify(err), u.id, u.regs.Ops, err)
		}
	}
	oldState := core.TaggedStateHash(oldRoot, resp.Ctr, resp.Last)
	newState := core.TaggedStateHash(newRoot, resp.Ctr+1, u.id)
	u.regs.Absorb(oldState, newState, resp.Ctr+1)
	u.lastCtr, u.lastRoot = resp.Ctr+1, newRoot
	if u.chain != nil {
		u.chain.tree = post
	}
	if u.journal != nil {
		u.journal.Record(resp.Ctr+1, oldState, newState)
	}
	u.sinceSync++
	return nil
}

// decodeAnswer decodes claimed answer bytes, wrapping failures as
// protocol violations.
func (u *User) decodeAnswer(b []byte) (any, error) {
	ans, err := vdb.DecodeAnswer(b)
	if err != nil {
		return nil, core.Detect(core.ProtocolViolation, u.id, u.regs.Ops, err)
	}
	return ans, nil
}

// NeedsSync reports whether this user must announce a sync-up.
func (u *User) NeedsSync() bool { return u.sinceSync >= u.k }

// InitialState returns the genesis tagged state h(M(D₀)‖0‖genesis) the
// user's chain is rooted at (single-tree mode; Zero for forest users —
// use Geneses). The epoch auditor evaluates closure checks against it
// directly from register snapshots.
func (u *User) InitialState() digest.Digest { return u.initialState }

// Geneses returns a copy of the per-shard genesis states of a forest
// user (nil for single-tree users — use InitialState).
func (u *User) Geneses() []digest.Digest {
	return append([]digest.Digest(nil), u.geneses...)
}

// Forest reports whether this user tracks a sharded forest.
func (u *User) Forest() bool { return u.fshards != nil }

// SyncReport is the user's broadcast contribution to a sync round. A
// forest user reports one register pair per shard.
func (u *User) SyncReport() core.SyncReportII {
	if u.fshards != nil {
		r := core.SyncReportII{User: u.id, Shards: make([]core.ShardRegs, len(u.fshards))}
		for s := range u.fshards {
			r.Shards[s] = core.ShardRegs{Sigma: u.fshards[s].regs.Sigma, Last: u.fshards[s].regs.Last}
		}
		return r
	}
	return core.SyncReportII{User: u.id, Sigma: u.regs.Sigma, Last: u.regs.Last}
}

// CompleteSync evaluates a full set of sync reports. A forest user
// runs the closure check once per shard (every shard must close).
func (u *User) CompleteSync(reports []core.SyncReportII) error {
	if u.fshards != nil {
		return u.completeForestSync(reports)
	}
	if core.CheckSyncII(u.initialState, reports) < 0 {
		return core.Detect(core.SyncMismatch, u.id, u.regs.Ops,
			errors.New("no last register closes the state chain"))
	}
	u.sinceSync = 0
	return nil
}

func classify(err error) core.DetectionClass {
	if errors.Is(err, vdb.ErrAnswerMismatch) {
		return core.BadAnswer
	}
	return core.BadVO
}
