package proto2

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"trustedcvs/internal/core"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

type harness struct {
	t      *testing.T
	server *Server
	users  []*User
}

func newHarness(t *testing.T, n int, k uint64) *harness {
	t.Helper()
	db := vdb.New(0)
	srv := NewServer(db)
	users := make([]*User, n)
	for i := range users {
		users[i] = NewUser(sig.UserID(i), db.Root(), k)
	}
	return &harness{t: t, server: srv, users: users}
}

func (h *harness) do(u int, op vdb.Op) any {
	h.t.Helper()
	ans, err := h.doOn(h.server, u, op)
	if err != nil {
		h.t.Fatalf("user %d: %v", u, err)
	}
	return ans
}

func (h *harness) doOn(srv *Server, u int, op vdb.Op) (any, error) {
	resp, err := srv.HandleOp(h.users[u].Request(op))
	if err != nil {
		return nil, err
	}
	return h.users[u].HandleResponse(op, resp)
}

func (h *harness) sync() error {
	reports := make([]core.SyncReportII, len(h.users))
	for i, u := range h.users {
		reports[i] = u.SyncReport()
	}
	for _, u := range h.users {
		if err := u.CompleteSync(reports); err != nil {
			return err
		}
	}
	return nil
}

func put(k, v string) vdb.Op { return &vdb.WriteOp{Puts: []vdb.KV{{Key: k, Val: []byte(v)}}} }
func get(k string) vdb.Op    { return &vdb.ReadOp{Keys: []string{k}} }

func TestHonestRun(t *testing.T) {
	h := newHarness(t, 3, 4)
	h.do(0, put("a", "1"))
	h.do(1, put("b", "2"))
	ans := h.do(2, get("a"))
	if ra := ans.(vdb.ReadAnswer); !ra.Results[0].Found || string(ra.Results[0].Val) != "1" {
		t.Fatalf("read: %+v", ra)
	}
	if err := h.sync(); err != nil {
		t.Fatalf("sync on honest run: %v", err)
	}
}

func TestSyncWithIdleUsers(t *testing.T) {
	// Users who performed no operations still participate in sync with
	// zeroed σ and genesis last; the check must pass.
	h := newHarness(t, 5, 100)
	h.do(0, put("a", "1"))
	h.do(0, put("a", "2"))
	if err := h.sync(); err != nil {
		t.Fatalf("sync with idle users: %v", err)
	}
}

func TestSyncZeroOps(t *testing.T) {
	h := newHarness(t, 3, 100)
	if err := h.sync(); err != nil {
		t.Fatalf("sync with zero ops: %v", err)
	}
}

func TestRepeatedSyncsAccumulate(t *testing.T) {
	// σ accumulates across syncs (the check is global from genesis);
	// multiple rounds over a growing history must keep passing.
	h := newHarness(t, 3, 2)
	for round := 0; round < 6; round++ {
		for u := range h.users {
			h.do(u, put(fmt.Sprintf("k%d", u), fmt.Sprintf("r%d", round)))
		}
		if err := h.sync(); err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
	}
}

func TestCounterReplayDetected(t *testing.T) {
	h := newHarness(t, 2, 100)
	h.do(0, put("a", "1"))

	// Replay: serve user 0 from a snapshot taken before its op, so the
	// counter it sees is one it has already seen.
	fresh := NewServer(vdb.New(0))
	op := get("a")
	resp, err := fresh.HandleOp(h.users[0].Request(op))
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.users[0].HandleResponse(op, resp)
	de, ok := core.AsDetection(err)
	if !ok || de.Class != core.CounterReplay {
		t.Fatalf("want CounterReplay, got %v", err)
	}
}

func TestSameCounterTwiceToSameUserDetected(t *testing.T) {
	// The precise condition behind Lemma 4.1's P2: a user must never
	// see the same ctr twice.
	h := newHarness(t, 1, 100)
	snapshot := h.server.Fork()
	h.do(0, put("a", "1"))
	op := put("a", "other")
	resp, err := snapshot.HandleOp(h.users[0].Request(op))
	if err != nil {
		t.Fatal(err)
	}
	_, err = h.users[0].HandleResponse(op, resp)
	if de, ok := core.AsDetection(err); !ok || de.Class != core.CounterReplay {
		t.Fatalf("want CounterReplay, got %v", err)
	}
}

func TestTamperedAnswerDetected(t *testing.T) {
	h := newHarness(t, 2, 100)
	h.do(0, put("a", "true"))
	op := get("a")
	resp, err := h.server.HandleOp(h.users[1].Request(op))
	if err != nil {
		t.Fatal(err)
	}
	forged, _ := vdb.EncodeAnswer(vdb.ReadAnswer{Results: []vdb.ReadResult{{Key: "a", Found: true, Val: []byte("lie")}}})
	resp.Answer = forged
	_, err = h.users[1].HandleResponse(op, resp)
	if de, ok := core.AsDetection(err); !ok || de.Class != core.BadAnswer {
		t.Fatalf("want BadAnswer, got %v", err)
	}
}

// TestPartitionAttackDetectedAtSync mounts Figure 1 under Protocol II.
func TestPartitionAttackDetectedAtSync(t *testing.T) {
	h := newHarness(t, 4, 100)
	h.do(0, put("Common.h", "#define X 1"))
	h.do(2, get("Common.h"))

	branchB := h.server.Fork()
	// Group A = users 0,1 on the main server; group B = users 2,3 on
	// the fork.
	ops := []struct {
		srv *Server
		u   int
		op  vdb.Op
	}{
		{h.server, 0, put("a.c", "A")},
		{branchB, 2, put("b.c", "B")},
		{h.server, 1, get("a.c")},
		{branchB, 3, get("b.c")},
		{h.server, 0, put("a.c", "A2")},
		{branchB, 2, put("b.c", "B2")},
	}
	for i, o := range ops {
		if _, err := h.doOn(o.srv, o.u, o.op); err != nil {
			t.Fatalf("op %d: per-op verification must pass on a fork: %v", i, err)
		}
	}
	err := h.sync()
	if de, ok := core.AsDetection(err); !ok || de.Class != core.SyncMismatch {
		t.Fatalf("want SyncMismatch, got %v", err)
	}
}

// TestStaleReplayToOtherUserDetectedAtSync: replaying an old state to
// a *different* user passes the per-op counter check (their gctr is
// lower) but breaks the chain at sync.
func TestStaleReplayToOtherUserDetectedAtSync(t *testing.T) {
	h := newHarness(t, 2, 100)
	h.do(0, put("f", "v1"))
	stale := h.server.Fork()
	h.do(0, put("f", "v2"))

	if _, err := h.doOn(stale, 1, get("f")); err != nil {
		t.Fatalf("stale replay to fresh user must pass per-op checks: %v", err)
	}
	err := h.sync()
	if de, ok := core.AsDetection(err); !ok || de.Class != core.SyncMismatch {
		t.Fatalf("want SyncMismatch, got %v", err)
	}
}

// TestWrongLastUserDetectedAtSync: the server lies about which user
// performed the previous operation; the tagged states no longer chain.
func TestWrongLastUserDetectedAtSync(t *testing.T) {
	h := newHarness(t, 3, 100)
	h.do(0, put("a", "1"))
	op := put("b", "2")
	resp, err := h.server.HandleOp(h.users[1].Request(op))
	if err != nil {
		t.Fatal(err)
	}
	resp.Last = 2 // actually user 0
	if _, err := h.users[1].HandleResponse(op, resp); err != nil {
		t.Fatalf("lie about j passes per-op checks: %v", err)
	}
	err = h.sync()
	if de, ok := core.AsDetection(err); !ok || de.Class != core.SyncMismatch {
		t.Fatalf("want SyncMismatch, got %v", err)
	}
}

func TestConstantUserState(t *testing.T) {
	// Desideratum 5: the registers must not grow with history length.
	h := newHarness(t, 2, 1_000_000)
	for i := 0; i < 200; i++ {
		h.do(i%2, put(fmt.Sprintf("k%d", i%7), fmt.Sprintf("v%d", i)))
	}
	r := h.users[0].Registers()
	// Registers is a fixed-size struct; just confirm the counters moved
	// and the digests are live (i.e., the state is real, not growing).
	if r.Ops != 100 || r.Sigma.IsZero() {
		t.Fatalf("registers: %+v", r)
	}
}

// TestQuickHonestRunsAlwaysPass drives random honest schedules through
// the full protocol and checks that sync never false-positives.
func TestQuickHonestRunsAlwaysPass(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		h := newHarness(t, n, 100)
		for i, ops := 0, rng.Intn(60); i < ops; i++ {
			u := rng.Intn(n)
			var op vdb.Op
			if rng.Intn(2) == 0 {
				op = put(fmt.Sprintf("k%d", rng.Intn(10)), fmt.Sprintf("v%d", i))
			} else {
				op = get(fmt.Sprintf("k%d", rng.Intn(10)))
			}
			if _, err := h.doOn(h.server, u, op); err != nil {
				t.Log(err)
				return false
			}
			if rng.Intn(10) == 0 {
				if err := h.sync(); err != nil {
					t.Log(err)
					return false
				}
			}
		}
		return h.sync() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickForksAlwaysDetected drives random forked schedules and
// checks that sync always detects, provided both branches performed at
// least one post-fork operation.
func TestQuickForksAlwaysDetected(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(4)
		h := newHarness(t, n, 1000)
		groupA := 1 + rng.Intn(n-1) // users [0,groupA) on A, rest on B
		// Common prefix.
		for i, ops := 0, rng.Intn(10); i < ops; i++ {
			if _, err := h.doOn(h.server, rng.Intn(n), put(fmt.Sprintf("k%d", i), "x")); err != nil {
				t.Log(err)
				return false
			}
		}
		branchB := h.server.Fork()
		// At least one op on each branch.
		for i, ops := 0, 1+rng.Intn(8); i < ops; i++ {
			if _, err := h.doOn(h.server, rng.Intn(groupA), put(fmt.Sprintf("a%d", i), "A")); err != nil {
				t.Log(err)
				return false
			}
		}
		for i, ops := 0, 1+rng.Intn(8); i < ops; i++ {
			if _, err := h.doOn(branchB, groupA+rng.Intn(n-groupA), put(fmt.Sprintf("b%d", i), "B")); err != nil {
				t.Log(err)
				return false
			}
		}
		err := h.sync()
		de, ok := core.AsDetection(err)
		return ok && de.Class == core.SyncMismatch
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestNewUserPanicsOnZeroK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 must panic")
		}
	}()
	NewUser(0, digest.Empty(), 0)
}
