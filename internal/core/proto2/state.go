package proto2

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"trustedcvs/internal/core"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/sig"
)

// State is the serializable form of a User — the constant-size local
// state of desideratum 5, persisted by the CLI between invocations.
type State struct {
	ID           sig.UserID
	K            uint64
	SinceSync    uint64
	Registers    core.Registers
	InitialState digest.Digest
}

// MarshalState serializes the user's protocol state.
func (u *User) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	st := State{
		ID:           u.id,
		K:            u.k,
		SinceSync:    u.sinceSync,
		Registers:    u.regs,
		InitialState: u.initialState,
	}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("proto2: marshal state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreUser reconstructs a user from persisted state.
func RestoreUser(data []byte) (*User, error) {
	var st State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("proto2: restore state: %w", err)
	}
	if st.K == 0 {
		return nil, fmt.Errorf("proto2: restore state: zero sync period")
	}
	return &User{
		id:           st.ID,
		k:            st.K,
		sinceSync:    st.SinceSync,
		regs:         st.Registers,
		initialState: st.InitialState,
	}, nil
}
