package proto2

import (
	"bytes"
	"encoding/gob"
	"fmt"

	"trustedcvs/internal/core"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/sig"
)

// State is the serializable form of a User — the constant-size local
// state of desideratum 5, persisted by the CLI between invocations.
type State struct {
	ID           sig.UserID
	K            uint64
	SinceSync    uint64
	Registers    core.Registers
	InitialState digest.Digest
	// Shards is the forest user's per-shard state (O(N), still
	// workload-independent). Nil for a single-tree user, which keeps
	// the gob encoding byte-identical to the pre-forest format.
	Shards []ShardState
}

// ShardState is one shard's slice of a persisted forest user: the
// shard's register chain, genesis state, monotone head-counter floor,
// and the at-most-one cross-transaction leg awaiting confirmation.
type ShardState struct {
	Genesis     digest.Digest
	Regs        core.Registers
	HeadCtr     uint64
	HasPending  bool
	PendingCtr  uint64
	PendingRoot digest.Digest
}

// MarshalState serializes the user's protocol state.
func (u *User) MarshalState() ([]byte, error) {
	var buf bytes.Buffer
	st := State{
		ID:           u.id,
		K:            u.k,
		SinceSync:    u.sinceSync,
		Registers:    u.regs,
		InitialState: u.initialState,
	}
	for s := range u.fshards {
		fs := &u.fshards[s]
		ss := ShardState{Genesis: u.geneses[s], Regs: fs.regs, HeadCtr: u.headCtrs[s]}
		if p := fs.pending; p != nil {
			ss.HasPending, ss.PendingCtr, ss.PendingRoot = true, p.ctr, p.root
		}
		st.Shards = append(st.Shards, ss)
	}
	if err := gob.NewEncoder(&buf).Encode(st); err != nil {
		return nil, fmt.Errorf("proto2: marshal state: %w", err)
	}
	return buf.Bytes(), nil
}

// RestoreUser reconstructs a user from persisted state.
func RestoreUser(data []byte) (*User, error) {
	var st State
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&st); err != nil {
		return nil, fmt.Errorf("proto2: restore state: %w", err)
	}
	if st.K == 0 {
		return nil, fmt.Errorf("proto2: restore state: zero sync period")
	}
	if len(st.Shards) == 1 {
		return nil, fmt.Errorf("proto2: restore state: a 1-shard forest is not a valid state (single-tree users carry no shard list)")
	}
	u := &User{
		id:           st.ID,
		k:            st.K,
		sinceSync:    st.SinceSync,
		regs:         st.Registers,
		initialState: st.InitialState,
	}
	if len(st.Shards) > 1 {
		u.geneses = make([]digest.Digest, len(st.Shards))
		u.fshards = make([]forestShard, len(st.Shards))
		u.headCtrs = make([]uint64, len(st.Shards))
		for s, ss := range st.Shards {
			u.geneses[s] = ss.Genesis
			u.fshards[s].regs = ss.Regs
			u.headCtrs[s] = ss.HeadCtr
			if ss.HasPending {
				u.fshards[s].pending = &pendingLeg{ctr: ss.PendingCtr, root: ss.PendingRoot}
			}
		}
	}
	return u, nil
}
