package proto2

import (
	"sort"
	"sync"
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

type forestHarness struct {
	t      *testing.T
	db     *vdb.DB
	server *Server
	users  []*User
}

func newForestHarness(t *testing.T, users, shards int, k uint64) *forestHarness {
	t.Helper()
	db := vdb.NewSharded(0, shards)
	srv := NewServer(db)
	if !srv.Forest() {
		t.Fatalf("server over %d shards is not in forest mode", shards)
	}
	us := make([]*User, users)
	for i := range us {
		us[i] = NewForestUser(sig.UserID(i), db.ShardRoots(), k)
	}
	return &forestHarness{t: t, db: db, server: srv, users: us}
}

func (h *forestHarness) do(u int, op vdb.Op) any {
	h.t.Helper()
	ans, err := h.doOn(h.server, u, op)
	if err != nil {
		h.t.Fatalf("user %d: %v", u, err)
	}
	return ans
}

func (h *forestHarness) doOn(srv *Server, u int, op vdb.Op) (any, error) {
	if cross, ok := op.(*vdb.CrossOp); ok {
		resp, err := srv.HandleCross(h.users[u].Request(op))
		if err != nil {
			return nil, err
		}
		return h.users[u].HandleResponseForest(cross, resp)
	}
	resp, err := srv.HandleOp(h.users[u].Request(op))
	if err != nil {
		return nil, err
	}
	return h.users[u].HandleResponse(op, resp)
}

func (h *forestHarness) sync() error {
	reports := make([]core.SyncReportII, len(h.users))
	for i, u := range h.users {
		reports[i] = u.SyncReport()
	}
	for _, u := range h.users {
		if err := u.CompleteSync(reports); err != nil {
			return err
		}
	}
	return nil
}

// crossKeys returns two keys routing to different shards of an n-shard
// forest.
func crossKeys(t *testing.T, n int) (string, string) {
	t.Helper()
	keys := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}
	for _, a := range keys {
		for _, b := range keys {
			if vdb.RouteKey(a, n) != vdb.RouteKey(b, n) {
				return a, b
			}
		}
	}
	t.Fatalf("no key pair splits across %d shards", n)
	return "", ""
}

func TestForestHonestRun(t *testing.T) {
	h := newForestHarness(t, 3, 4, 64)
	h.do(0, put("a", "1"))
	h.do(1, put("b", "2"))
	h.do(2, put("c", "3"))
	ans := h.do(1, get("a"))
	if ra := ans.(vdb.ReadAnswer); !ra.Results[0].Found || string(ra.Results[0].Val) != "1" {
		t.Fatalf("read: %+v", ra)
	}
	if err := h.sync(); err != nil {
		t.Fatalf("sync on honest forest run: %v", err)
	}
	// The last-operating user's verified root is the fold of the head
	// vector the server currently publishes — the single root-of-roots
	// the witness machinery consumes.
	gctr, root := h.db.Head()
	if c, r := h.users[1].VerifiedRoot(); c != gctr || r != root {
		t.Fatalf("user 1 verified (%d, %s), server head (%d, %s)", c, r.Short(), gctr, root.Short())
	}
}

func TestForestCrossShardCommit(t *testing.T) {
	h := newForestHarness(t, 2, 4, 64)
	ka, kb := crossKeys(t, 4)
	h.do(0, put(ka, "left"))
	ans := h.do(0, &vdb.CrossOp{Legs: []vdb.Op{put(ka, "l2"), put(kb, "r2")}})
	ca, ok := ans.(vdb.CrossAnswer)
	if !ok || len(ca.Answers) != 2 {
		t.Fatalf("cross answer: %#v", ans)
	}
	// Both legs landed, and later single-shard reads (from another
	// user) see them.
	for _, kv := range [][2]string{{ka, "l2"}, {kb, "r2"}} {
		ra := h.do(1, get(kv[0])).(vdb.ReadAnswer)
		if !ra.Results[0].Found || string(ra.Results[0].Val) != kv[1] {
			t.Fatalf("read %s: %+v", kv[0], ra)
		}
	}
	if err := h.sync(); err != nil {
		t.Fatalf("sync after cross-shard commit: %v", err)
	}
}

// TestForestTornCommitTyped is the atomicity attack: the server proves
// a two-leg cross-shard transaction in full on a throwaway fork but
// commits only one leg for real. The committing user must raise the
// typed TornTransaction detection — not a generic replay or VO failure
// — on its next response, before any sync barrier.
func TestForestTornCommitTyped(t *testing.T) {
	h := newForestHarness(t, 2, 4, 64)
	ka, kb := crossKeys(t, 4)
	h.do(0, put(ka, "seed-a"))
	h.do(1, put(kb, "seed-b"))

	cross := &vdb.CrossOp{Legs: []vdb.Op{put(ka, "tx-a"), put(kb, "tx-b")}}
	req := h.users[0].Request(cross)
	fork := h.server.Fork()
	resp, err := fork.HandleCross(req)
	if err != nil {
		t.Fatalf("fork cross: %v", err)
	}
	// The real history gets only the first leg.
	if _, err := h.server.HandleOp(h.users[0].Request(cross.Legs[0])); err != nil {
		t.Fatalf("torn main leg: %v", err)
	}
	// The forged proof itself verifies — the tear is not yet visible.
	if _, err := h.users[0].HandleResponseForest(cross, resp); err != nil {
		t.Fatalf("victim rejected a fully valid (forked) cross proof: %v", err)
	}
	// The victim's very next operation is served from the real history,
	// whose head vector excludes the second leg.
	_, err = h.doOn(h.server, 0, get(ka))
	de, ok := core.AsDetection(err)
	if !ok {
		t.Fatalf("torn commit went undetected: %v", err)
	}
	if de.Class != core.TornTransaction {
		t.Fatalf("detected class %v, want %v", de.Class, core.TornTransaction)
	}
}

// TestForestTornCommitAtSyncBarrier: if the victim issues no further
// operation, the tear still cannot survive a sync barrier once any
// user has observed the real history of the dropped leg's shard.
func TestForestTornCommitAtSyncBarrier(t *testing.T) {
	h := newForestHarness(t, 2, 4, 64)
	ka, kb := crossKeys(t, 4)
	h.do(0, put(ka, "seed-a"))
	h.do(1, put(kb, "seed-b"))

	cross := &vdb.CrossOp{Legs: []vdb.Op{put(ka, "tx-a"), put(kb, "tx-b")}}
	fork := h.server.Fork()
	resp, err := fork.HandleCross(h.users[0].Request(cross))
	if err != nil {
		t.Fatalf("fork cross: %v", err)
	}
	if _, err := h.server.HandleOp(h.users[0].Request(cross.Legs[0])); err != nil {
		t.Fatalf("torn main leg: %v", err)
	}
	if _, err := h.users[0].HandleResponseForest(cross, resp); err != nil {
		t.Fatalf("victim rejected a fully valid (forked) cross proof: %v", err)
	}
	// Another user touches the dropped leg's shard on the real history,
	// consuming the same pre-state the victim's leg consumed.
	h.do(1, put(kb, "post"))

	err = h.sync()
	de, ok := core.AsDetection(err)
	if !ok {
		t.Fatalf("torn commit survived the sync barrier: %v", err)
	}
	if de.Class != core.SyncMismatch {
		t.Fatalf("barrier detected class %v, want %v", de.Class, core.SyncMismatch)
	}
}

// TestForestStressRace is the -race stress test: 64 concurrent clients
// hammering an 8-shard forest with single- and cross-shard writes.
// Afterwards the observed counters must form gap-free permutations —
// per shard and globally — and fold to exactly the root-of-roots the
// server publishes.
func TestForestStressRace(t *testing.T) {
	const (
		nUsers    = 64
		nShards   = 8
		opsPerUsr = 25
	)
	h := newForestHarness(t, nUsers, nShards, 1<<20)
	ka, kb := crossKeys(t, nShards)

	type obs struct {
		shard uint32
		ctr   uint64
	}
	perUser := make([][]obs, nUsers)
	var wg sync.WaitGroup
	for u := 0; u < nUsers; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := h.users[u]
			key := []string{"alpha", "bravo", "charlie", "delta", "echo", "foxtrot", "golf", "hotel"}[u%8]
			for i := 0; i < opsPerUsr; i++ {
				if i%5 == 4 {
					// Every fifth op is a cross-shard transaction.
					cross := &vdb.CrossOp{Legs: []vdb.Op{put(ka, "x"), put(kb, "y")}}
					resp, err := h.server.HandleCross(user.Request(cross))
					if err != nil {
						t.Errorf("user %d cross: %v", u, err)
						return
					}
					if _, err := user.HandleResponseForest(cross, resp); err != nil {
						t.Errorf("user %d cross verify: %v", u, err)
						return
					}
					for _, leg := range resp.Legs {
						perUser[u] = append(perUser[u], obs{leg.Shard, leg.Ctr})
					}
					continue
				}
				op := put(key, "v")
				resp, err := h.server.HandleOp(user.Request(op))
				if err != nil {
					t.Errorf("user %d op: %v", u, err)
					return
				}
				if _, err := user.HandleResponse(op, resp); err != nil {
					t.Errorf("user %d verify: %v", u, err)
					return
				}
				perUser[u] = append(perUser[u], obs{resp.Shard, resp.Ctr})
			}
		}(u)
	}
	wg.Wait()
	if t.Failed() {
		return
	}

	// Gap-free per-shard permutations: the multiset of observed
	// pre-counters of every shard must be exactly {0, ..., ctr_s-1}.
	byShard := make([][]uint64, nShards)
	for _, obss := range perUser {
		for _, o := range obss {
			byShard[o.shard] = append(byShard[o.shard], o.ctr)
		}
	}
	var total uint64
	heads := h.db.Heads()
	for s, ctrs := range byShard {
		sort.Slice(ctrs, func(i, j int) bool { return ctrs[i] < ctrs[j] })
		for i, c := range ctrs {
			if c != uint64(i) {
				t.Fatalf("shard %d counter sequence has a gap at %d (got %d)", s, i, c)
			}
		}
		if heads[s].Ctr != uint64(len(ctrs)) {
			t.Fatalf("shard %d head ctr %d, observed %d ops", s, heads[s].Ctr, len(ctrs))
		}
		total += uint64(len(ctrs))
	}

	// The per-shard counters fold through the root-of-roots: the global
	// counter is their sum and the published head is their fold.
	gctr, root := h.db.Head()
	if gctr != total {
		t.Fatalf("global counter %d != sum of shard counters %d", gctr, total)
	}
	if f := vdb.FoldHeads(heads); f != root {
		t.Fatalf("fold of shard heads %s != published root %s", f.Short(), root.Short())
	}

	// Narrow serial sections really were exercised per shard.
	var statOps uint64
	for _, st := range h.db.Stats() {
		statOps += st.Ops
	}
	if statOps != total {
		t.Fatalf("contention counters saw %d lock sections, want %d", statOps, total)
	}

	if err := h.sync(); err != nil {
		t.Fatalf("sync after stress: %v", err)
	}
}

// TestForestCheckpointRestore: a forest checkpoint restores to a
// server whose published heads and metas continue the same history.
func TestForestCheckpointRestore(t *testing.T) {
	h := newForestHarness(t, 2, 4, 64)
	ka, kb := crossKeys(t, 4)
	h.do(0, put(ka, "1"))
	h.do(1, put(kb, "2"))
	h.do(0, &vdb.CrossOp{Legs: []vdb.Op{put(ka, "3"), put(kb, "4")}})

	db, metas, err := h.server.CheckpointForest()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	restored, err := NewForestServerAt(db, metas)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	// The same clients keep operating against the restored server.
	h.server = restored
	h.do(1, put(ka, "5"))
	h.do(0, &vdb.CrossOp{Legs: []vdb.Op{put(ka, "6"), put(kb, "7")}})
	if err := h.sync(); err != nil {
		t.Fatalf("sync across restore: %v", err)
	}
}
