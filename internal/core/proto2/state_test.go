package proto2

import (
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/vdb"
)

// TestStateRoundTripContinuesRun is the CLI scenario: a user runs some
// verified operations, persists its registers, is reconstructed in a
// "new process", continues operating, and still passes the
// synchronization check — i.e. the restored registers really are the
// same protocol state.
func TestStateRoundTripContinuesRun(t *testing.T) {
	h := newHarness(t, 2, 1000)
	for i := 0; i < 7; i++ {
		h.do(i%2, put("k", "v"))
	}
	data, err := h.users[0].MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreUser(data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID() != h.users[0].ID() || restored.LCtr() != h.users[0].LCtr() {
		t.Fatalf("restored identity/counters differ: %v %d", restored.ID(), restored.LCtr())
	}
	// The restored user replaces the original and keeps operating.
	h.users[0] = restored
	for i := 0; i < 5; i++ {
		h.do(0, put("k2", "w"))
	}
	if err := h.sync(); err != nil {
		t.Fatalf("sync after state restore: %v", err)
	}
}

// TestStateRestoreDetectsReplayAfterRestore: the restored gctr still
// protects against counter replays that span the "restart".
func TestStateRestoreDetectsReplayAfterRestore(t *testing.T) {
	h := newHarness(t, 1, 1000)
	snapshot := h.server.Fork()
	h.do(0, put("a", "1"))

	data, err := h.users[0].MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreUser(data)
	if err != nil {
		t.Fatal(err)
	}
	op := put("a", "2")
	resp, err := snapshot.HandleOp(restored.Request(op))
	if err != nil {
		t.Fatal(err)
	}
	_, err = restored.HandleResponse(op, resp)
	if de, ok := core.AsDetection(err); !ok || de.Class != core.CounterReplay {
		t.Fatalf("replay across restore not caught: %v", err)
	}
}

func TestStateRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreUser([]byte("junk")); err == nil {
		t.Fatal("garbage state must be rejected")
	}
	// Zero sync period (e.g. an empty struct) is invalid.
	u := NewUser(1, vdb.New(0).Root(), 5)
	data, err := u.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreUser(data); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
}
