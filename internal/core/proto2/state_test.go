package proto2

import (
	"testing"

	"trustedcvs/internal/core"
	"trustedcvs/internal/vdb"
)

// TestStateRoundTripContinuesRun is the CLI scenario: a user runs some
// verified operations, persists its registers, is reconstructed in a
// "new process", continues operating, and still passes the
// synchronization check — i.e. the restored registers really are the
// same protocol state.
func TestStateRoundTripContinuesRun(t *testing.T) {
	h := newHarness(t, 2, 1000)
	for i := 0; i < 7; i++ {
		h.do(i%2, put("k", "v"))
	}
	data, err := h.users[0].MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreUser(data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID() != h.users[0].ID() || restored.LCtr() != h.users[0].LCtr() {
		t.Fatalf("restored identity/counters differ: %v %d", restored.ID(), restored.LCtr())
	}
	// The restored user replaces the original and keeps operating.
	h.users[0] = restored
	for i := 0; i < 5; i++ {
		h.do(0, put("k2", "w"))
	}
	if err := h.sync(); err != nil {
		t.Fatalf("sync after state restore: %v", err)
	}
}

// TestStateRestoreDetectsReplayAfterRestore: the restored gctr still
// protects against counter replays that span the "restart".
func TestStateRestoreDetectsReplayAfterRestore(t *testing.T) {
	h := newHarness(t, 1, 1000)
	snapshot := h.server.Fork()
	h.do(0, put("a", "1"))

	data, err := h.users[0].MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreUser(data)
	if err != nil {
		t.Fatal(err)
	}
	op := put("a", "2")
	resp, err := snapshot.HandleOp(restored.Request(op))
	if err != nil {
		t.Fatal(err)
	}
	_, err = restored.HandleResponse(op, resp)
	if de, ok := core.AsDetection(err); !ok || de.Class != core.CounterReplay {
		t.Fatalf("replay across restore not caught: %v", err)
	}
}

// TestForestStateRoundTrip is the CLI scenario over a forest: a user
// runs single-shard and cross-shard verified operations, persists its
// per-shard register chains, is reconstructed, keeps operating on both
// paths, and still closes the sync barrier.
func TestForestStateRoundTrip(t *testing.T) {
	h := newForestHarness(t, 2, 4, 1000)
	a, b := crossKeys(t, 4)
	h.do(0, put(a, "1"))
	h.do(1, put(b, "2"))
	h.do(0, &vdb.CrossOp{Legs: []vdb.Op{put(a, "3"), put(b, "4")}})

	data, err := h.users[0].MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := RestoreUser(data)
	if err != nil {
		t.Fatal(err)
	}
	if restored.ID() != h.users[0].ID() || restored.LCtr() != h.users[0].LCtr() {
		t.Fatalf("restored identity/counters differ: %v %d", restored.ID(), restored.LCtr())
	}
	h.users[0] = restored
	h.do(0, put(b, "5"))
	h.do(0, &vdb.CrossOp{Legs: []vdb.Op{put(a, "6"), put(b, "7")}})
	if err := h.sync(); err != nil {
		t.Fatalf("sync after forest state restore: %v", err)
	}
}

func TestStateRestoreRejectsGarbage(t *testing.T) {
	if _, err := RestoreUser([]byte("junk")); err == nil {
		t.Fatal("garbage state must be rejected")
	}
	// Zero sync period (e.g. an empty struct) is invalid.
	u := NewUser(1, vdb.New(0).Root(), 5)
	data, err := u.MarshalState()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RestoreUser(data); err != nil {
		t.Fatalf("valid state rejected: %v", err)
	}
}
