package sim

import (
	"math/rand"
	"testing"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/core"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/workload"
)

// TestStressRandomizedAdversaries fuzzes the whole stack: random
// populations, sync periods, workloads and adversary configurations,
// across Protocols I and II, with the ground-truth oracle enabled.
// Invariants checked on every run:
//
//  1. soundness   — honest servers are never flagged;
//  2. completeness — any attack that deviates is detected before the
//     busiest user completes k post-deviation operations;
//  3. oracle      — whenever an answer-level deviation exists, the
//     protocol detected (the converse need not hold, see oracle.go);
//  4. no harness errors.
func TestStressRandomizedAdversaries(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	kinds := []adversary.Kind{
		adversary.Honest,
		adversary.Fork,
		adversary.ReplayStale,
		adversary.DropUpdate,
		adversary.TamperAnswer,
		adversary.TamperState,
		adversary.CounterReplay,
	}
	const runs = 120
	for i := 0; i < runs; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		users := 2 + rng.Intn(5)
		k := uint64(1 + rng.Intn(12))
		proto := []server.Protocol{server.P1, server.P2}[rng.Intn(2)]
		kind := kinds[rng.Intn(len(kinds))]
		trigger := uint64(5 + rng.Intn(30))
		// Enough post-trigger activity that every user passes several
		// sync windows.
		ops := int(trigger) + users*int(k)*3 + 40

		trace := workload.Generate(workload.Config{
			Users: users, Files: 8 + rng.Intn(10), Ops: ops,
			WriteRatio: 0.3 + rng.Float64()*0.5,
			FilesPerOp: 1 + rng.Intn(3),
			ZipfS:      1.2,
			Seed:       int64(i * 7),
		})

		var adv *adversary.Config
		if kind != adversary.Honest {
			adv = &adversary.Config{Kind: kind, TriggerOp: trigger, Target: sig.UserID(rng.Intn(users))}
			if kind == adversary.Fork {
				adv.GroupB = map[sig.UserID]bool{}
				for u := 0; u < users; u++ {
					if rng.Intn(2) == 0 {
						adv.GroupB[sig.UserID(u)] = true
					}
				}
				if len(adv.GroupB) == 0 || len(adv.GroupB) == users {
					adv.GroupB = map[sig.UserID]bool{0: true}
				}
			}
			if kind == adversary.TamperState {
				adv.Key, adv.Value = "planted", []byte("evil")
			}
		}

		res := Run(Config{
			Protocol: proto, Users: users, K: k,
			Trace: trace, Adversary: adv, Oracle: true,
		})
		ctx := func() string {
			return t.Name() + ": " + proto.String() + "/" + kind.String()
		}
		if res.Err != nil {
			t.Fatalf("%s run %d: harness error: %v", ctx(), i, res.Err)
		}
		if kind == adversary.Honest {
			if res.Detected {
				t.Fatalf("%s run %d: FALSE POSITIVE: %v", ctx(), i, res.Detection)
			}
			if res.GroundTruthDeviationOp != 0 {
				t.Fatalf("%s run %d: oracle flagged honest run", ctx(), i)
			}
			continue
		}
		// Completeness: every configured attack here eventually forces
		// either an immediate check failure or a sync mismatch within
		// the k-bound.
		if res.DeviatedAtOp > 0 {
			if !res.Detected {
				t.Fatalf("%s run %d: deviation at op %d never detected (oracle %d, ops %d)",
					ctx(), i, res.DeviatedAtOp, res.GroundTruthDeviationOp, res.TotalOps)
			}
			if res.MaxUserOpsAfterDeviation > int(k) {
				t.Fatalf("%s run %d: k-bound violated: %d > %d (class %v)",
					ctx(), i, res.MaxUserOpsAfterDeviation, k, res.Detection.Class)
			}
		}
		// Oracle direction: answer-level deviation implies detection.
		if res.GroundTruthDeviationOp > 0 && !res.Detected {
			t.Fatalf("%s run %d: oracle deviation at %d but no detection", ctx(), i, res.GroundTruthDeviationOp)
		}
	}
}

// TestStressP3 fuzzes Protocol III with fork adversaries at random
// epochs and asserts the two-epoch bound.
func TestStressP3(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	for i := 0; i < 40; i++ {
		rng := rand.New(rand.NewSource(int64(i + 1000)))
		users := 2 + rng.Intn(5)
		epochLen := 4*users + rng.Intn(8)
		faultEpoch := rng.Intn(3)
		epochs := faultEpoch + 5

		trace := workload.EveryUserTwicePerEpoch(users, epochs, epochLen, int64(i))
		groupB := map[sig.UserID]bool{sig.UserID(rng.Intn(users)): true}
		trigger := uint64(2*users*faultEpoch + 1 + rng.Intn(users))

		res := Run(Config{
			Protocol: server.P3, Users: users, EpochLen: epochLen, LocalClocks: true,
			Trace:     trace,
			Adversary: &adversary.Config{Kind: adversary.Fork, TriggerOp: trigger, GroupB: groupB},
		})
		if res.Err != nil {
			t.Fatalf("run %d: %v", i, res.Err)
		}
		if res.DeviatedAtOp == 0 {
			continue // the single group-B user never hit the fork window
		}
		if !res.Detected {
			t.Fatalf("run %d: fork in epoch %d undetected (users %d)", i, faultEpoch, users)
		}
		detEpoch := (res.Rounds - 1) / epochLen
		if detEpoch > faultEpoch+2 {
			t.Fatalf("run %d: detected in epoch %d, fault in %d (bound +2)", i, detEpoch, faultEpoch)
		}
		if c := res.Detection.Class; c != core.SyncMismatch && c != core.EpochViolation && c != core.CounterReplay && c != core.BadVO {
			t.Fatalf("run %d: unexpected class %v", i, c)
		}
	}
}
