package sim

import (
	"bytes"

	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
)

// exchange is one recorded request/response pair: the operation a user
// issued and the answer bytes the server returned for it (before any
// client-side verification).
type exchange struct {
	user sig.UserID
	op   vdb.Op
	ans  []byte
}

// oracle computes the ground-truth deviation point per Definition 2.1:
// it replays every recorded operation, in arrival order, on a trusted
// database, and reports the 1-based index of the first response that
// differs from the trusted system's. 0 means the observed responses
// are consistent with a trusted execution.
//
// The oracle exists to validate the adversary's self-reported
// DeviatedAtOp and the protocols' detection claims against the formal
// definition, independent of both.
//
// Two deliberate limitations make the oracle conservative:
//
//   - It checks the arrival-order serialization only, not every
//     possible trusted serialization, so it reports a lower bound on
//     "no trusted run matches".
//   - It sees only answers, not protocol metadata. The protocols are
//     strictly STRONGER: a server that drops a read-only operation or
//     freezes a user on a still-fresh snapshot reuses counter slots —
//     which Protocols I/II flag at the next sync — possibly before any
//     answer observably contradicts the trusted order. Early detection
//     of a fork that has not yet "bitten" is a feature (it will).
//
// The reverse (oracle flags a deviation, protocol silent beyond its
// k/epoch bound) can never happen; the tests pin both directions.
func oracle(order int, exchanges []exchange) uint64 {
	trusted := vdb.New(order)
	for i, ex := range exchanges {
		want, err := trusted.ApplyPlain(ex.op)
		if err != nil {
			// The trusted system rejects the op outright; a server
			// that answered it at all deviated.
			return uint64(i + 1)
		}
		if !sameAnswer(ex.ans, want) {
			return uint64(i + 1)
		}
	}
	return 0
}

// sameAnswer compares two answer encodings by canonical value (both
// produced in this process, so byte comparison after a decode/encode
// round trip is exact).
func sameAnswer(a, b []byte) bool {
	if bytes.Equal(a, b) {
		return true
	}
	av, errA := vdb.DecodeAnswer(a)
	bv, errB := vdb.DecodeAnswer(b)
	if errA != nil || errB != nil {
		return false
	}
	ae, errA := vdb.EncodeAnswer(av)
	be, errB := vdb.EncodeAnswer(bv)
	return errA == nil && errB == nil && bytes.Equal(ae, be)
}
