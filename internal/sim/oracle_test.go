package sim

import (
	"testing"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/server"
	"trustedcvs/internal/workload"
)

// TestOracleHonestRunIsClean: the ground-truth oracle must see no
// deviation on an honest server, across protocols.
func TestOracleHonestRunIsClean(t *testing.T) {
	for _, p := range []server.Protocol{server.P1, server.P2} {
		res := Run(Config{
			Protocol: p, Users: 3, K: 6, Oracle: true,
			Trace: genericTrace(3, 60, 21),
		})
		if res.Err != nil || res.Detected {
			t.Fatalf("%v: %v %v", p, res.Err, res.Detection)
		}
		if res.GroundTruthDeviationOp != 0 {
			t.Fatalf("%v: oracle flagged an honest run at op %d", p, res.GroundTruthDeviationOp)
		}
	}
}

// TestOracleAgreesWithAdversary: for attacks whose first divergent
// *response* is the adversary's marked deviation, the oracle must
// agree; in general the formal (oracle) deviation never precedes the
// adversary's mark.
func TestOracleAgreesWithAdversary(t *testing.T) {
	trace := genericTrace(3, 80, 22)
	// DropUpdate only causes *data* deviation when the dropped op is a
	// write; pick a commit from the trace (dropping a read is caught
	// too, but by counter accounting alone — see oracle.go).
	dropAt := uint64(0)
	for i, ev := range trace.Events {
		if i >= 10 && ev.Kind == workload.Commit {
			dropAt = uint64(i + 1)
			break
		}
	}
	if dropAt == 0 {
		t.Fatal("trace has no commit after op 10")
	}
	cases := []struct {
		adv adversary.Config
		// answerVisible: the attack must produce an answer-level
		// deviation the oracle can see. Stale replays may be detected
		// (by counter accounting) before any answer contradicts the
		// arrival-order serialization — see oracle.go.
		answerVisible bool
	}{
		{adversary.Config{Kind: adversary.TamperAnswer, TriggerOp: 13}, true},
		{adversary.Config{Kind: adversary.DropUpdate, TriggerOp: dropAt}, true},
		{adversary.Config{Kind: adversary.ReplayStale, TriggerOp: 15, Target: 1}, false},
	}
	for _, c := range cases {
		advCopy := c.adv
		res := Run(Config{
			Protocol: server.P2, Users: 3, K: 6, Oracle: true,
			Trace:     trace,
			Adversary: &advCopy,
		})
		if res.Err != nil {
			t.Fatalf("%v: %v", c.adv.Kind, res.Err)
		}
		if !res.Detected {
			t.Fatalf("%v: not detected", c.adv.Kind)
		}
		if c.answerVisible && res.GroundTruthDeviationOp == 0 {
			t.Fatalf("%v: oracle saw no deviation despite detection", c.adv.Kind)
		}
		if res.GroundTruthDeviationOp != 0 && res.GroundTruthDeviationOp < res.DeviatedAtOp {
			t.Fatalf("%v: oracle (%d) precedes adversary mark (%d)",
				c.adv.Kind, res.GroundTruthDeviationOp, res.DeviatedAtOp)
		}
	}
}

// TestOraclePartitionGroundTruth: in the Figure 1 workload the first
// fork-served response (t2, reading Common.h) is exactly where the
// formal deviation begins.
func TestOraclePartitionGroundTruth(t *testing.T) {
	trace, info := workload.Partitionable(2, 2, 8, 3)
	res := Run(Config{
		Protocol: server.P2, Users: 4, K: 4, Oracle: true,
		Trace: trace,
		Adversary: &adversary.Config{
			Kind: adversary.Fork, TriggerOp: info.T1Op, GroupB: info.GroupB,
		},
	})
	if res.Err != nil || !res.Detected {
		t.Fatalf("%v %v", res.Err, res.Detection)
	}
	if res.GroundTruthDeviationOp != info.T2Op {
		t.Fatalf("oracle at op %d, want t2 = %d", res.GroundTruthDeviationOp, info.T2Op)
	}
	if res.DeviatedAtOp != info.T2Op {
		t.Fatalf("adversary mark %d, want %d", res.DeviatedAtOp, info.T2Op)
	}
}

// TestForensicsLocalizesFork: with journals enabled, a detected fork
// is localized to its first conflicting counter and the branch
// membership matches the partition.
func TestForensicsLocalizesFork(t *testing.T) {
	trace, info := workload.Partitionable(2, 2, 8, 4)
	res := Run(Config{
		Protocol: server.P2, Users: 4, K: 4, JournalCap: 256,
		Trace: trace,
		Adversary: &adversary.Config{
			Kind: adversary.Fork, TriggerOp: info.T1Op, GroupB: info.GroupB,
		},
	})
	if !res.Detected {
		t.Fatalf("not detected: %v", res.Err)
	}
	if res.Forensics == nil || !res.Forensics.Located {
		t.Fatalf("fault not localized: %+v", res.Forensics)
	}
	// The fork splits at counter T1Op: the trusted chain assigns t1
	// the counter equal to its op index, and the fork's first op
	// claims the same slot.
	if res.Forensics.ForkCtr != info.T1Op {
		t.Fatalf("fork located at ctr %d, want %d (%s)", res.Forensics.ForkCtr, info.T1Op, res.Forensics)
	}
	if len(res.Forensics.Branches) != 2 {
		t.Fatalf("branches: %s", res.Forensics)
	}
	// Group B users must all sit on one branch, group A on the other.
	for _, br := range res.Forensics.Branches {
		inB := 0
		for _, u := range br.Users {
			if info.GroupB[u] {
				inB++
			}
		}
		if inB != 0 && inB != len(br.Users) {
			t.Fatalf("mixed branch membership: %s", res.Forensics)
		}
	}
}

// TestForensicsP1 also works for Protocol I's untagged state journal.
func TestForensicsP1(t *testing.T) {
	trace, info := workload.Partitionable(2, 2, 8, 5)
	res := Run(Config{
		Protocol: server.P1, Users: 4, K: 4, JournalCap: 256,
		Trace: trace,
		Adversary: &adversary.Config{
			Kind: adversary.Fork, TriggerOp: info.T1Op, GroupB: info.GroupB,
		},
	})
	if !res.Detected || res.Forensics == nil || !res.Forensics.Located {
		t.Fatalf("P1 forensics failed: detected=%v forensics=%+v", res.Detected, res.Forensics)
	}
	if res.Forensics.ForkCtr != info.T1Op {
		t.Fatalf("P1 fork at %d, want %d", res.Forensics.ForkCtr, info.T1Op)
	}
}

// TestForensicsHonestNoReport: journals on an honest run produce no
// report (no detection, so no localization runs).
func TestForensicsHonestNoReport(t *testing.T) {
	res := Run(Config{
		Protocol: server.P2, Users: 2, K: 5, JournalCap: 64,
		Trace: genericTrace(2, 30, 6),
	})
	if res.Detected || res.Forensics != nil {
		t.Fatalf("honest run produced forensics: %+v", res.Forensics)
	}
}
