// Package sim is the deterministic driver for the formal experiments:
// it executes a workload trace round by round against an honest or
// adversarial protocol server, runs the protocols' synchronization
// and epoch machinery exactly as specified, counts every message, and
// reports when (and by which check) deviation was detected.
//
// It follows the system model of Section 2: a global clock in rounds,
// one query action per round at most, messages delivered within the
// round, b*-bounded transactions (the server answers in the same
// round), and p-partial synchrony (users' local epoch estimates are
// derived from the global round, as an honest clock within drift
// bounds would be).
package sim

import (
	"fmt"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto1"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/core/proto3"
	"trustedcvs/internal/cvs"
	"trustedcvs/internal/forensics"
	"trustedcvs/internal/rcs"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/vdb"
	"trustedcvs/internal/wire"
	"trustedcvs/internal/workload"
)

// Config parameterizes one simulated run.
type Config struct {
	Protocol server.Protocol
	Users    int
	// K is the sync period for Protocols I/II (0 = syncs disabled —
	// used to demonstrate Theorem 3.1's impossibility).
	K uint64
	// EpochLen is rounds per epoch for Protocol III.
	EpochLen int
	// LocalClocks enables Protocol III users' local epoch estimates.
	LocalClocks bool
	Trace       *workload.Trace
	// Adversary configures the malicious server (nil = honest).
	Adversary *adversary.Config
	// Order is the Merkle branching factor (0 = default).
	Order int
	// Oracle enables the ground-truth deviation oracle: every
	// response is recorded and replayed against a trusted database
	// after the run (Definition 2.1, independent of the protocols).
	Oracle bool
	// JournalCap enables per-user transition journals of this capacity
	// (Protocols I/II); on detection the journals are pooled and the
	// fault localized (internal/forensics).
	JournalCap int
	// MeasureBytes additionally accounts wire bytes (gob-framed sizes
	// of every request and response, including the VOs). Costs one
	// encode per message.
	MeasureBytes bool
}

// Bytes counts wire traffic by direction (MeasureBytes only).
type Bytes struct {
	UserToServer int
	ServerToUser int
}

// Messages counts protocol traffic by channel.
type Messages struct {
	UserToServer int
	ServerToUser int
	Broadcast    int
}

// Total returns all messages.
func (m Messages) Total() int { return m.UserToServer + m.ServerToUser + m.Broadcast }

// Result reports one run's outcome.
type Result struct {
	TotalOps    int
	Rounds      int
	Syncs       int
	EpochChecks int
	Messages    Messages
	Bytes       Bytes

	Detected  bool
	Detection *core.DetectionError
	// DeviatedAtOp is the 1-based global op index of the server's
	// first deviation (0 = never deviated).
	DeviatedAtOp uint64
	// DetectedAtOp is the global op count completed when detection
	// fired.
	DetectedAtOp uint64
	// OpsAfterDeviation is the number of operations *completed* after
	// the deviating operation began — the global detection delay. 0
	// means the deviation was caught within the deviating operation
	// itself.
	OpsAfterDeviation int
	// MaxUserOpsAfterDeviation is the busiest single user's completed
	// ops after the deviation — the quantity Theorems 4.1/4.2 bound
	// by k.
	MaxUserOpsAfterDeviation int

	// GroundTruthDeviationOp is the oracle's verdict (Config.Oracle):
	// the 1-based index of the first response inconsistent with a
	// trusted serial execution; 0 = none observed.
	GroundTruthDeviationOp uint64
	// Forensics is the pooled-journal fault localization report,
	// produced on detection when Config.JournalCap > 0.
	Forensics *forensics.Report

	// Err is a non-detection failure (harness or workload bug).
	Err error
}

// Run executes the configured simulation.
func Run(cfg Config) *Result {
	s, err := newSim(cfg)
	if err != nil {
		return &Result{Err: err}
	}
	return s.run()
}

type sim struct {
	cfg   Config
	res   *Result
	srv   server.Server
	adv   *adversary.Server // nil when honest
	round int

	perUserAfterDev map[sig.UserID]int
	exchanges       []exchange

	// protocol users (exactly one slice is non-nil)
	u1 []*proto1.User
	u2 []*proto2.User
	u3 []*proto3.User
}

func newSim(cfg Config) (*sim, error) {
	if cfg.Trace == nil || cfg.Users <= 0 {
		return nil, fmt.Errorf("sim: need a trace and users")
	}
	if cfg.Trace.Users > cfg.Users {
		return nil, fmt.Errorf("sim: trace has %d users, config only %d", cfg.Trace.Users, cfg.Users)
	}
	for _, ev := range cfg.Trace.Events {
		if int(ev.User) >= cfg.Users {
			return nil, fmt.Errorf("sim: event user %v out of range", ev.User)
		}
	}
	if cfg.Protocol == server.P3 && cfg.EpochLen <= 0 {
		return nil, fmt.Errorf("sim: Protocol III needs EpochLen")
	}
	db := vdb.New(cfg.Order)
	signers, ring, err := sig.DeterministicSigners(cfg.Users, 1)
	if err != nil {
		return nil, err
	}

	s := &sim{cfg: cfg, res: &Result{}, perUserAfterDev: make(map[sig.UserID]int)}

	var honest server.Server
	switch cfg.Protocol {
	case server.P1:
		honest = server.NewP1(db, proto1.Initialize(signers[0], db.Root()))
		k := cfg.K
		if k == 0 {
			k = 1 << 62 // syncs disabled
		}
		for _, sg := range signers {
			u := proto1.NewUser(sg, ring, k)
			if cfg.JournalCap > 0 {
				u.EnableJournal(cfg.JournalCap)
			}
			s.u1 = append(s.u1, u)
		}
	case server.P2:
		honest = server.NewP2(db)
		k := cfg.K
		if k == 0 {
			k = 1 << 62
		}
		for i := 0; i < cfg.Users; i++ {
			u := proto2.NewUser(sig.UserID(i), db.Root(), k)
			if cfg.JournalCap > 0 {
				u.EnableJournal(cfg.JournalCap)
			}
			s.u2 = append(s.u2, u)
		}
	case server.P3:
		honest = server.NewP3(db)
		for _, sg := range signers {
			u := proto3.NewUser(sg, ring, db.Root())
			if cfg.LocalClocks {
				u.LocalEpoch = func() uint64 { return uint64(s.round / cfg.EpochLen) }
			}
			s.u3 = append(s.u3, u)
		}
	default:
		return nil, fmt.Errorf("sim: unknown protocol %v", cfg.Protocol)
	}

	if cfg.Adversary != nil {
		s.adv = adversary.Wrap(honest, *cfg.Adversary)
		s.srv = s.adv
	} else {
		s.srv = honest
	}
	return s, nil
}

// toOp converts a trace event into a CVS operation. Content is a
// deterministic function of the event, so runs are reproducible.
func toOp(ev workload.Event, opIndex int) vdb.Op {
	if ev.Kind == workload.Commit {
		op := &cvs.CommitOp{
			Author:   fmt.Sprintf("user%d", ev.User),
			Log:      fmt.Sprintf("op %d", opIndex),
			TimeUnix: int64(ev.Round),
		}
		for _, f := range ev.Files {
			content := fmt.Sprintf("content of %s by user %d at round %d\n", f, ev.User, ev.Round)
			op.Files = append(op.Files, cvs.CommitFile{Path: f, Hash: rcs.HashContent([]byte(content))})
		}
		return op
	}
	return &cvs.CheckoutOp{Paths: ev.Files}
}

func (s *sim) run() *Result {
	for i, ev := range s.cfg.Trace.Events {
		// Advance the global clock to the event's round, crossing
		// epoch boundaries on the way.
		for s.round < ev.Round {
			s.round++
			if s.cfg.Protocol == server.P3 && s.round%s.cfg.EpochLen == 0 {
				s.srv.AdvanceEpoch()
			}
		}
		op := toOp(ev, i)
		if err := s.doOp(ev.User, op); err != nil {
			s.finish(err)
			return s.res
		}
		s.res.TotalOps++
		s.countAfterDeviation(ev.User)

		// Protocols I/II: sync when any user has completed k ops.
		if s.cfg.Protocol != server.P3 && s.needsSync() {
			s.res.Syncs++
			if err := s.runSync(); err != nil {
				s.finish(err)
				return s.res
			}
		}
	}
	s.finish(nil)
	return s.res
}

// recordExchange captures a response for the ground-truth oracle.
func (s *sim) recordExchange(u sig.UserID, op vdb.Op, ans []byte) {
	if s.cfg.Oracle {
		s.exchanges = append(s.exchanges, exchange{user: u, op: op, ans: ans})
	}
}

// countAfterDeviation updates the per-user post-deviation op counts.
func (s *sim) countAfterDeviation(u sig.UserID) {
	if s.adv == nil || s.adv.DeviatedAtOp() == 0 {
		return
	}
	s.perUserAfterDev[u]++
}

// countMsg accounts one message (and, when enabled, its wire bytes).
func (s *sim) countMsg(toServer bool, msg any) {
	if toServer {
		s.res.Messages.UserToServer++
	} else {
		s.res.Messages.ServerToUser++
	}
	if !s.cfg.MeasureBytes {
		return
	}
	n, err := wire.Size(msg)
	if err != nil {
		return
	}
	if toServer {
		s.res.Bytes.UserToServer += n
	} else {
		s.res.Bytes.ServerToUser += n
	}
}

// doOp performs one fully verified operation by user u.
func (s *sim) doOp(u sig.UserID, op vdb.Op) error {
	switch s.cfg.Protocol {
	case server.P1:
		user := s.u1[u]
		req := user.Request(op)
		s.countMsg(true, req)
		raw, err := s.srv.HandleOp(req)
		if err != nil {
			return err
		}
		s.countMsg(false, raw)
		resp, ok := raw.(*core.OpResponseI)
		if !ok {
			return core.Detect(core.ProtocolViolation, u, user.LCtr(), fmt.Errorf("bad response type %T", raw))
		}
		s.recordExchange(u, op, resp.Answer)
		ack, _, err := user.HandleResponse(op, resp)
		if err != nil {
			return err
		}
		s.countMsg(true, ack)
		return s.srv.HandleAck(ack)

	case server.P2:
		user := s.u2[u]
		req := user.Request(op)
		s.countMsg(true, req)
		raw, err := s.srv.HandleOp(req)
		if err != nil {
			return err
		}
		s.countMsg(false, raw)
		resp, ok := raw.(*core.OpResponseII)
		if !ok {
			return core.Detect(core.ProtocolViolation, u, user.LCtr(), fmt.Errorf("bad response type %T", raw))
		}
		s.recordExchange(u, op, resp.Answer)
		_, err = user.HandleResponse(op, resp)
		return err

	case server.P3:
		user := s.u3[u]
		req := user.Request(op)
		s.countMsg(true, req)
		raw, err := s.srv.HandleOp(req)
		if err != nil {
			return err
		}
		s.countMsg(false, raw)
		resp, ok := raw.(*core.OpResponseII)
		if !ok {
			return core.Detect(core.ProtocolViolation, u, user.LCtr(), fmt.Errorf("bad response type %T", raw))
		}
		s.recordExchange(u, op, resp.Answer)
		out, err := user.HandleResponse(op, resp)
		if err != nil {
			return err
		}
		if out.CheckEpoch != nil {
			return s.runEpochCheck(user, *out.CheckEpoch)
		}
		return nil
	}
	return fmt.Errorf("sim: unreachable protocol")
}

// runEpochCheck performs the designated user's audit of epoch e.
func (s *sim) runEpochCheck(user *proto3.User, e uint64) error {
	s.res.EpochChecks++
	var prev *core.BackupsResponse
	if e > 0 {
		req := user.BackupsRequest(e - 1)
		s.countMsg(true, req)
		r, err := s.srv.HandleGetBackups(req)
		if err != nil {
			return err
		}
		s.countMsg(false, r)
		prev = r
	}
	req := user.BackupsRequest(e)
	s.countMsg(true, req)
	cur, err := s.srv.HandleGetBackups(req)
	if err != nil {
		return err
	}
	s.countMsg(false, cur)
	return user.CompleteEpochCheck(e, prev, cur)
}

func (s *sim) needsSync() bool {
	for _, u := range s.u1 {
		if u.NeedsSync() {
			return true
		}
	}
	for _, u := range s.u2 {
		if u.NeedsSync() {
			return true
		}
	}
	return false
}

// runSync performs a full broadcast synchronization round: one
// announcement plus one report per user, then every user evaluates.
func (s *sim) runSync() error {
	s.res.Messages.Broadcast++ // sync-up announcement
	switch s.cfg.Protocol {
	case server.P1:
		reports := make([]core.SyncReportI, len(s.u1))
		for i, u := range s.u1 {
			reports[i] = u.SyncReport()
			s.res.Messages.Broadcast++
		}
		for _, u := range s.u1 {
			if err := u.CompleteSync(reports); err != nil {
				return err
			}
		}
	case server.P2:
		reports := make([]core.SyncReportII, len(s.u2))
		for i, u := range s.u2 {
			reports[i] = u.SyncReport()
			s.res.Messages.Broadcast++
		}
		for _, u := range s.u2 {
			if err := u.CompleteSync(reports); err != nil {
				return err
			}
		}
	}
	return nil
}

// finish finalizes the result, classifying err.
func (s *sim) finish(err error) {
	s.res.Rounds = s.round
	if s.adv != nil {
		s.res.DeviatedAtOp = s.adv.DeviatedAtOp()
	}
	for _, n := range s.perUserAfterDev {
		if n > s.res.MaxUserOpsAfterDeviation {
			s.res.MaxUserOpsAfterDeviation = n
		}
	}
	if s.cfg.Oracle {
		s.res.GroundTruthDeviationOp = oracle(s.cfg.Order, s.exchanges)
	}
	if err == nil {
		return
	}
	if de, ok := core.AsDetection(err); ok {
		s.res.Detected = true
		s.res.Detection = de
		s.res.DetectedAtOp = uint64(s.res.TotalOps)
		if s.res.DeviatedAtOp > 0 {
			s.res.OpsAfterDeviation = int(s.res.DetectedAtOp - (s.res.DeviatedAtOp - 1))
		}
		if s.cfg.JournalCap > 0 {
			var js []*forensics.Journal
			for _, u := range s.u1 {
				js = append(js, u.Journal())
			}
			for _, u := range s.u2 {
				js = append(js, u.Journal())
			}
			if len(js) > 0 {
				s.res.Forensics = forensics.Locate(js)
			}
		}
		return
	}
	s.res.Err = err
}
