package sim

import (
	"testing"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/core"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/workload"
)

func genericTrace(users, ops int, seed int64) *workload.Trace {
	return workload.Generate(workload.Config{
		Users: users, Files: 10, Ops: ops, WriteRatio: 0.4, FilesPerOp: 2, Seed: seed,
	})
}

func TestHonestRunsAllProtocols(t *testing.T) {
	for _, p := range []server.Protocol{server.P1, server.P2} {
		res := Run(Config{
			Protocol: p, Users: 4, K: 5,
			Trace: genericTrace(4, 120, 1),
		})
		if res.Err != nil {
			t.Fatalf("%v: %v", p, res.Err)
		}
		if res.Detected {
			t.Fatalf("%v: false positive: %v", p, res.Detection)
		}
		if res.TotalOps != 120 {
			t.Fatalf("%v: ops %d", p, res.TotalOps)
		}
		if res.Syncs == 0 {
			t.Fatalf("%v: no syncs ran", p)
		}
	}
	// Protocol III with its workload.
	res := Run(Config{
		Protocol: server.P3, Users: 3, EpochLen: 30, LocalClocks: true,
		Trace: workload.EveryUserTwicePerEpoch(3, 6, 30, 1),
	})
	if res.Err != nil {
		t.Fatalf("P3: %v", res.Err)
	}
	if res.Detected {
		t.Fatalf("P3 false positive: %v", res.Detection)
	}
	if res.EpochChecks == 0 {
		t.Fatal("P3: no epoch checks ran")
	}
}

func TestMessageAccounting(t *testing.T) {
	// Protocol I uses 3 messages/op; Protocol II uses 2. With syncs
	// disabled the counts are exact.
	tr := genericTrace(2, 50, 2)
	r1 := Run(Config{Protocol: server.P1, Users: 2, K: 0, Trace: tr})
	r2 := Run(Config{Protocol: server.P2, Users: 2, K: 0, Trace: tr})
	if r1.Err != nil || r2.Err != nil {
		t.Fatalf("%v / %v", r1.Err, r2.Err)
	}
	if got := r1.Messages.UserToServer + r1.Messages.ServerToUser; got != 3*50 {
		t.Fatalf("P1 per-op messages: %d", got)
	}
	if got := r2.Messages.UserToServer + r2.Messages.ServerToUser; got != 2*50 {
		t.Fatalf("P2 per-op messages: %d", got)
	}
	// Sync broadcast accounting: n reports + 1 announcement per sync.
	r := Run(Config{Protocol: server.P2, Users: 4, K: 5, Trace: genericTrace(4, 60, 3)})
	if r.Syncs == 0 || r.Messages.Broadcast != r.Syncs*(4+1) {
		t.Fatalf("broadcast accounting: syncs %d msgs %d", r.Syncs, r.Messages.Broadcast)
	}
}

func TestPartitionAttackDetectedP1P2(t *testing.T) {
	for _, p := range []server.Protocol{server.P1, server.P2} {
		trace, info := workload.Partitionable(2, 2, 8, 1)
		res := Run(Config{
			Protocol: p, Users: 4, K: 4,
			Trace: trace,
			Adversary: &adversary.Config{
				Kind:      adversary.Fork,
				TriggerOp: info.T1Op,
				GroupB:    info.GroupB,
			},
		})
		if res.Err != nil {
			t.Fatalf("%v: %v", p, res.Err)
		}
		if !res.Detected {
			t.Fatalf("%v: partition not detected", p)
		}
		if res.Detection.Class != core.SyncMismatch {
			t.Fatalf("%v: wrong class %v", p, res.Detection.Class)
		}
		// Theorem 4.1/4.2 bound: no user completed more than k ops
		// after the deviation.
		if res.MaxUserOpsAfterDeviation > 4 {
			t.Fatalf("%v: k-bound violated: %d > 4", p, res.MaxUserOpsAfterDeviation)
		}
	}
}

func TestPartitionUndetectedWithoutSync(t *testing.T) {
	// Theorem 3.1's demonstration: with external communication
	// disabled (K=0), the partition attack survives arbitrarily many
	// operations.
	trace, info := workload.Partitionable(2, 2, 64, 1)
	res := Run(Config{
		Protocol: server.P2, Users: 4, K: 0,
		Trace: trace,
		Adversary: &adversary.Config{
			Kind:      adversary.Fork,
			TriggerOp: info.T1Op,
			GroupB:    info.GroupB,
		},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Detected {
		t.Fatalf("partition detected without external communication?! %v", res.Detection)
	}
	if res.MaxUserOpsAfterDeviation < 65 {
		t.Fatalf("trace should have 65 post-deviation ops by one user, got %d", res.MaxUserOpsAfterDeviation)
	}
}

func TestPartitionDetectedP3WithinTwoEpochs(t *testing.T) {
	trace := workload.EveryUserTwicePerEpoch(4, 8, 40, 2)
	res := Run(Config{
		Protocol: server.P3, Users: 4, EpochLen: 40, LocalClocks: true,
		Trace: trace,
		Adversary: &adversary.Config{
			Kind:      adversary.Fork,
			TriggerOp: 12, // early in epoch 1 (8 warm-up ops in epoch 0)
			GroupB:    map[sig.UserID]bool{2: true, 3: true},
		},
	})
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if !res.Detected {
		t.Fatal("P3 did not detect the partition")
	}
	// Theorem 4.3: detection within two epochs of the fault's epoch.
	// The fork lands in epoch 1, so detection must occur by the end of
	// epoch 3 — i.e. before round 4*40.
	if res.Rounds > 4*40 {
		t.Fatalf("detected too late: round %d", res.Rounds)
	}
}

func TestTamperAnswerDetectedImmediately(t *testing.T) {
	for _, p := range []server.Protocol{server.P1, server.P2} {
		res := Run(Config{
			Protocol: p, Users: 3, K: 10,
			Trace:     genericTrace(3, 40, 4),
			Adversary: &adversary.Config{Kind: adversary.TamperAnswer, TriggerOp: 17},
		})
		if !res.Detected || res.Detection.Class != core.BadAnswer {
			t.Fatalf("%v: %+v", p, res.Detection)
		}
		if res.OpsAfterDeviation != 0 {
			t.Fatalf("%v: tampered answer should be caught on the spot, delay %d", p, res.OpsAfterDeviation)
		}
	}
}

func TestTamperStateDetected(t *testing.T) {
	// Silent data rewrite: Protocol I catches it as a signature/root
	// mismatch on the very next op; Protocol II at the next op too
	// (the VO's root no longer chains... it surfaces at sync).
	res := Run(Config{
		Protocol: server.P1, Users: 2, K: 10,
		Trace: genericTrace(2, 30, 5),
		Adversary: &adversary.Config{
			Kind: adversary.TamperState, TriggerOp: 9,
			Key: "planted-by-server", Value: []byte("evil"),
		},
	})
	if !res.Detected {
		t.Fatal("state tamper not detected under P1")
	}
	if res.Detection.Class != core.BadSignature {
		t.Fatalf("P1 should catch tampering via the signature check, got %v", res.Detection.Class)
	}

	res = Run(Config{
		Protocol: server.P2, Users: 2, K: 5,
		Trace: genericTrace(2, 30, 5),
		Adversary: &adversary.Config{
			Kind: adversary.TamperState, TriggerOp: 9,
			Key: "planted-by-server", Value: []byte("evil"),
		},
	})
	if !res.Detected || res.Detection.Class != core.SyncMismatch {
		t.Fatalf("P2 should catch tampering at sync, got %+v", res.Detection)
	}
}

func TestDropUpdateDetected(t *testing.T) {
	for _, p := range []server.Protocol{server.P1, server.P2} {
		res := Run(Config{
			Protocol: p, Users: 3, K: 6,
			Trace:     genericTrace(3, 60, 6),
			Adversary: &adversary.Config{Kind: adversary.DropUpdate, TriggerOp: 11},
		})
		if !res.Detected {
			t.Fatalf("%v: dropped update not detected", p)
		}
		if res.Detection.Class != core.SyncMismatch {
			t.Fatalf("%v: class %v", p, res.Detection.Class)
		}
	}
}

func TestReplayStaleDetected(t *testing.T) {
	res := Run(Config{
		Protocol: server.P2, Users: 3, K: 6,
		Trace:     genericTrace(3, 80, 7),
		Adversary: &adversary.Config{Kind: adversary.ReplayStale, TriggerOp: 15, Target: 1},
	})
	if !res.Detected {
		t.Fatal("stale replay not detected")
	}
}

func TestCounterReplayDetected(t *testing.T) {
	res := Run(Config{
		Protocol: server.P2, Users: 2, K: 10,
		Trace:     genericTrace(2, 60, 8),
		Adversary: &adversary.Config{Kind: adversary.CounterReplay, TriggerOp: 20},
	})
	if !res.Detected {
		t.Fatal("counter replay not detected")
	}
	// Either the victim sees its own counter repeated (CounterReplay)
	// or another user's chain breaks at sync.
	if c := res.Detection.Class; c != core.CounterReplay && c != core.SyncMismatch {
		t.Fatalf("class %v", c)
	}
}

func TestStallEpochsDetected(t *testing.T) {
	res := Run(Config{
		Protocol: server.P3, Users: 2, EpochLen: 20, LocalClocks: true,
		Trace:     workload.EveryUserTwicePerEpoch(2, 5, 20, 9),
		Adversary: &adversary.Config{Kind: adversary.StallEpochs},
	})
	if !res.Detected || res.Detection.Class != core.EpochViolation {
		t.Fatalf("stalled epochs: %+v", res.Detection)
	}
}

func TestWithholdBackupDetected(t *testing.T) {
	res := Run(Config{
		Protocol: server.P3, Users: 3, EpochLen: 30,
		Trace:     workload.EveryUserTwicePerEpoch(3, 6, 30, 10),
		Adversary: &adversary.Config{Kind: adversary.WithholdBackup, Target: 1},
	})
	if !res.Detected || res.Detection.Class != core.EpochViolation {
		t.Fatalf("withheld backup: %+v", res.Detection)
	}
}

func TestConfigValidation(t *testing.T) {
	if res := Run(Config{Protocol: server.P2, Users: 0}); res.Err == nil {
		t.Fatal("want error for zero users")
	}
	if res := Run(Config{Protocol: server.P3, Users: 2, Trace: genericTrace(2, 5, 1)}); res.Err == nil {
		t.Fatal("want error for P3 without EpochLen")
	}
	if res := Run(Config{Protocol: server.P2, Users: 1, Trace: genericTrace(2, 5, 1)}); res.Err == nil {
		t.Fatal("want error for trace/user mismatch")
	}
}
