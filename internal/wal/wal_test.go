package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"trustedcvs/internal/fault"
)

// replayAll collects every replayed record.
func replayAll(t *testing.T, dir string) []Record {
	t.Helper()
	var recs []Record
	if err := Replay(dir, func(r Record) error {
		recs = append(recs, r)
		return nil
	}); err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return recs
}

func TestWALRoundTrip(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := []Record{
		{Epoch: 1, Payload: []byte("alpha")},
		{Epoch: 1, Payload: []byte("beta")},
		{Epoch: 2, Payload: []byte("gamma")},
		{Epoch: 3, Payload: nil},
		{Epoch: 3, Payload: []byte("delta")},
	}
	for _, r := range want {
		if err := w.Append(r.Epoch, r.Payload); err != nil {
			t.Fatalf("Append(%d): %v", r.Epoch, err)
		}
	}
	if got := w.Appended(); got != uint64(len(want)) {
		t.Fatalf("Appended = %d, want %d", got, len(want))
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	got := replayAll(t, dir)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].Epoch != want[i].Epoch || string(got[i].Payload) != string(want[i].Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, got[i], want[i])
		}
	}
}

func TestWALRotationAndTruncation(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for e := uint64(1); e <= 4; e++ {
		for i := 0; i < 3; i++ {
			if err := w.Append(e, []byte(fmt.Sprintf("e%d-%d", e, i))); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
	}
	// Epochs 1..3 have rotated away; epoch 4 is the active segment.
	if got := w.Segments(); got != 3 {
		t.Fatalf("sealed segments = %d, want 3", got)
	}
	if err := w.TruncateThrough(2); err != nil {
		t.Fatalf("TruncateThrough: %v", err)
	}
	if got := w.Segments(); got != 1 {
		t.Fatalf("sealed segments after truncate = %d, want 1", got)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs := replayAll(t, dir)
	if len(recs) != 6 {
		t.Fatalf("replayed %d records, want 6 (epochs 3,4)", len(recs))
	}
	for _, r := range recs {
		if r.Epoch < 3 {
			t.Fatalf("truncated epoch %d resurfaced in replay", r.Epoch)
		}
	}
}

func TestWALTornTailTruncatesCleanly(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 4; i++ {
		if err := w.Append(1, []byte(fmt.Sprintf("rec%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Tear the final frame: chop off its last byte (the digest tail).
	seqs, err := listSegments(dir)
	if err != nil || len(seqs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(seqs))
	}
	last := filepath.Join(dir, segName(seqs[len(seqs)-1]))
	fi, err := os.Stat(last)
	if err != nil {
		t.Fatalf("stat: %v", err)
	}
	if err := os.Truncate(last, fi.Size()-1); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	recs := replayAll(t, dir)
	if len(recs) != 3 {
		t.Fatalf("replayed %d records after torn tail, want 3", len(recs))
	}
	// Reopening repairs the tail and resumes on a fresh segment.
	w2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if err := w2.Append(2, []byte("post-crash")); err != nil {
		t.Fatalf("Append after reopen: %v", err)
	}
	if err := w2.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	recs = replayAll(t, dir)
	if len(recs) != 4 || string(recs[3].Payload) != "post-crash" {
		t.Fatalf("replay after repair = %d records (%+v)", len(recs), recs)
	}
}

func TestWALCorruptMiddleSegmentIsError(t *testing.T) {
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for e := uint64(1); e <= 3; e++ {
		if err := w.Append(e, []byte("x")); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	seqs, _ := listSegments(dir)
	if len(seqs) < 2 {
		t.Fatalf("want >= 2 segments, got %d", len(seqs))
	}
	// Flip a payload byte in the FIRST (non-final) segment.
	first := filepath.Join(dir, segName(seqs[0]))
	data, err := os.ReadFile(first)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[len(segMagic)+16] ^= 0xff
	if err := os.WriteFile(first, data, 0o666); err != nil {
		t.Fatalf("write: %v", err)
	}
	err = Replay(dir, func(Record) error { return nil })
	if err == nil {
		t.Fatal("Replay accepted a corrupt non-final segment")
	}
	if _, err := Open(Options{Dir: dir}); err == nil {
		t.Fatal("Open accepted a corrupt non-final segment")
	}
}

// epochFor/payloadFor define the scripted crash workload: eight
// appends, two per epoch, epochs 1..4.
func epochFor(i int) uint64   { return uint64(i/2) + 1 }
func payloadFor(i int) []byte { return []byte(fmt.Sprintf("op-%02d", i)) }
func workloadAppends() int    { return 8 }

// runCrashWorkload drives the scripted workload against a WAL on ffs,
// returning the indices whose Append reported durable success.
func runCrashWorkload(t *testing.T, dir string, ffs *fault.FaultyFS) (ok []int, openErr error) {
	t.Helper()
	w, err := Open(Options{Dir: dir, FS: ffs})
	if err != nil {
		return nil, err
	}
	defer w.Close()
	for i := 0; i < workloadAppends(); i++ {
		if err := w.Append(epochFor(i), payloadFor(i)); err == nil {
			ok = append(ok, i)
		}
	}
	return ok, nil
}

// checkZeroLoss asserts the reboot invariant: the replayed log is a
// clean prefix of the attempted appends and covers every append that
// reported success — a kill at any scheduled point loses zero records
// whose answers could have been released.
func checkZeroLoss(t *testing.T, dir string, ok []int) {
	t.Helper()
	recs := replayAll(t, dir)
	if len(recs) > workloadAppends() {
		t.Fatalf("replayed %d records, attempted only %d", len(recs), workloadAppends())
	}
	for j, r := range recs {
		if r.Epoch != epochFor(j) || string(r.Payload) != string(payloadFor(j)) {
			t.Fatalf("replayed record %d = (e%d, %q), want (e%d, %q)",
				j, r.Epoch, r.Payload, epochFor(j), payloadFor(j))
		}
	}
	for _, i := range ok {
		if i >= len(recs) {
			t.Fatalf("append %d reported durable but replay has only %d records", i, len(recs))
		}
	}
	// And the repaired log must accept new appends after reboot.
	w, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reboot Open: %v", err)
	}
	if err := w.Append(99, []byte("reborn")); err != nil {
		t.Fatalf("reboot Append: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("reboot Close: %v", err)
	}
}

// TestWALCrashScheduleZeroLoss kills the filesystem at every write,
// sync, and create index the workload reaches and asserts zero loss of
// acknowledged appends after reboot.
func TestWALCrashScheduleZeroLoss(t *testing.T) {
	for _, kind := range []string{"write", "sync", "create"} {
		for n := uint64(1); ; n++ {
			name := fmt.Sprintf("%s-%d", kind, n)
			ffs := &fault.FaultyFS{}
			switch kind {
			case "write":
				ffs.CrashAtWrite = n
			case "sync":
				ffs.CrashAtSync = n
			case "create":
				ffs.CrashAtCreate = n
			}
			crashed := false
			t.Run(name, func(t *testing.T) {
				dir := t.TempDir()
				ok, openErr := runCrashWorkload(t, dir, ffs)
				crashed = ffs.Crashed()
				if openErr != nil && !errors.Is(openErr, fault.ErrCrashed) {
					t.Fatalf("Open failed for a non-crash reason: %v", openErr)
				}
				checkZeroLoss(t, dir, ok)
			})
			if !crashed {
				// The schedule ran past the workload's last operation of
				// this kind: the crash matrix for this kind is exhausted.
				break
			}
		}
	}
}

// TestWALCrashDuringTruncate kills the filesystem at each unlink of a
// truncation and asserts surviving epochs replay intact.
func TestWALCrashDuringTruncate(t *testing.T) {
	for n := uint64(1); ; n++ {
		ffs := &fault.FaultyFS{CrashAtRemove: n}
		crashed := false
		t.Run(fmt.Sprintf("remove-%d", n), func(t *testing.T) {
			dir := t.TempDir()
			w, err := Open(Options{Dir: dir, FS: ffs})
			if err != nil {
				t.Fatalf("Open: %v", err)
			}
			var ok []int
			for i := 0; i < workloadAppends(); i++ {
				if err := w.Append(epochFor(i), payloadFor(i)); err == nil {
					ok = append(ok, i)
				}
			}
			terr := w.TruncateThrough(2) // drops epoch-1 and epoch-2 segments
			crashed = ffs.Crashed()
			if crashed && terr == nil {
				t.Fatal("TruncateThrough swallowed the crash")
			}
			_ = w.Close()

			// Reboot: epochs > 2 must be fully intact; whatever survives
			// of epochs <= 2 must be a contiguous suffix-consistent run.
			recs := replayAll(t, dir)
			var high []Record
			for _, r := range recs {
				if r.Epoch > 2 {
					high = append(high, r)
				}
			}
			if len(high) != 4 {
				t.Fatalf("epochs >2: replayed %d records, want 4", len(high))
			}
			for j, r := range high {
				i := 4 + j // workload indices 4..7 are epochs 3,4
				if r.Epoch != epochFor(i) || string(r.Payload) != string(payloadFor(i)) {
					t.Fatalf("record %d = (e%d, %q), want (e%d, %q)",
						j, r.Epoch, r.Payload, epochFor(i), payloadFor(i))
				}
			}
		})
		if !crashed {
			break
		}
	}
}

// TestWALAppendErrorIsSticky: after an I/O failure every subsequent
// Append fails fast — the signal the auditor uses to degrade to
// synchronous per-op verification.
func TestWALAppendErrorIsSticky(t *testing.T) {
	ffs := &fault.FaultyFS{CrashAtSync: 2}
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, FS: ffs})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	defer w.Close()
	if err := w.Append(1, []byte("a")); err != nil {
		t.Fatalf("first Append: %v", err)
	}
	if err := w.Append(1, []byte("b")); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("crashing Append = %v, want ErrCrashed", err)
	}
	if err := w.Append(1, []byte("c")); err == nil {
		t.Fatal("Append after failure succeeded; sticky error lost")
	}
}

func TestWALSyncOnRotatePolicy(t *testing.T) {
	// Under SyncOnRotate a crash loses at most the active segment's
	// tail, and sealed segments are always durable.
	dir := t.TempDir()
	w, err := Open(Options{Dir: dir, Sync: SyncOnRotate})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for e := uint64(1); e <= 3; e++ {
		for i := 0; i < 2; i++ {
			if err := w.Append(e, []byte(fmt.Sprintf("e%d-%d", e, i))); err != nil {
				t.Fatalf("Append: %v", err)
			}
		}
	}
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := len(replayAll(t, dir)); got != 6 {
		t.Fatalf("replayed %d, want 6", got)
	}
}

func TestCursorRoundTrip(t *testing.T) {
	dir := t.TempDir()
	if _, ok, err := ReadCursor(dir); err != nil || ok {
		t.Fatalf("empty dir cursor: ok=%v err=%v", ok, err)
	}
	for _, payload := range [][]byte{[]byte("first"), []byte("second longer payload")} {
		if err := WriteCursor(fault.OS, dir, payload); err != nil {
			t.Fatalf("WriteCursor: %v", err)
		}
		got, ok, err := ReadCursor(dir)
		if err != nil || !ok || string(got) != string(payload) {
			t.Fatalf("ReadCursor = (%q, %v, %v), want %q", got, ok, err, payload)
		}
	}
}

func TestCursorCrashLeavesOldCursor(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCursor(fault.OS, dir, []byte("v1")); err != nil {
		t.Fatalf("WriteCursor: %v", err)
	}
	// Crash before the rename: the temp file exists, the install never
	// happened — reboot must still read v1.
	ffs := &fault.FaultyFS{CrashAtRename: 1}
	if err := WriteCursor(ffs, dir, []byte("v2")); !errors.Is(err, fault.ErrCrashed) {
		t.Fatalf("WriteCursor = %v, want ErrCrashed", err)
	}
	got, ok, err := ReadCursor(dir)
	if err != nil || !ok || string(got) != "v1" {
		t.Fatalf("ReadCursor after crash = (%q, %v, %v), want v1", got, ok, err)
	}
}

func TestCursorChecksumRejectsRot(t *testing.T) {
	dir := t.TempDir()
	if err := WriteCursor(fault.OS, dir, []byte("payload")); err != nil {
		t.Fatalf("WriteCursor: %v", err)
	}
	path := filepath.Join(dir, cursorFile)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	data[len(cursorMagic)+8] ^= 0x01
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatalf("write: %v", err)
	}
	if _, ok, err := ReadCursor(dir); err == nil || ok {
		t.Fatalf("rotted cursor accepted: ok=%v err=%v", ok, err)
	}
}
