// Package wal implements the segmented, checksummed append-only
// journal underneath the crash-durable audit pipeline: every
// verification obligation the epoch auditor accepts is appended here
// BEFORE the optimistic answer is released, so a crash can lose the
// in-memory audit queue without losing a single obligation — recovery
// replays the log and re-runs verification, provably closing the
// optimistic exposure window across the crash.
//
// # Frame format
//
// A segment file is
//
//	magic "TCVSWAL1\n" | frame*
//
// and each frame is
//
//	8-byte big-endian payload length | 8-byte big-endian epoch |
//	payload | 32-byte digest footer
//
// following the checksummed-framing convention of the server snapshots
// (server/atomic.go): the footer is the domain-separated hash
// (digest.DomainWALFrame) of epoch and payload, so a torn or rotted
// frame is detected before a byte of it is trusted. Replay stops at
// the first frame of the final segment that fails its length or footer
// check — that is the torn tail a crash mid-append leaves — and
// surfaces checksum failures anywhere earlier as corruption.
//
// # Durability contract
//
// Append is durable on return: the frame has been fsynced when Append
// reports nil. Concurrent appenders coalesce into one fsync (group
// commit), so the per-append cost amortizes under load. SyncOnRotate
// relaxes this for journals whose loss window may span a segment:
// frames are synced only at rotation and Close, trading the tail of
// the active segment for hot-path throughput (the server's applied-op
// journal uses this; the audit WAL does not).
//
// # Rotation and truncation
//
// Segments rotate on epoch boundaries: the first Append whose epoch
// exceeds the active segment's rotates first, so every segment covers
// a contiguous, non-overlapping epoch range and truncation after epoch
// closure is a whole-file unlink (TruncateThrough). Rotation seals the
// old segment (sync, close) before creating the new one, and every
// create/unlink is followed by a directory sync — the syncdiscipline
// lint pass machine-checks that ordering.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/fault"
)

// segMagic heads every segment file.
const segMagic = "TCVSWAL1\n"

// frameOverhead is the fixed per-frame framing cost: length, epoch,
// digest footer.
const frameOverhead = 8 + 8 + digest.Size

// maxFrameBytes bounds a declared payload length so a corrupt frame
// header cannot demand an absurd allocation before the footer check
// rejects it (same guard as the snapshot loader's).
const maxFrameBytes = 1 << 30

// ErrClosed is returned by operations on a closed WAL.
var ErrClosed = errors.New("wal: closed")

// SyncPolicy selects when appended frames are made durable.
type SyncPolicy int

const (
	// SyncEachAppend makes every Append durable before it returns
	// (group-committed). The audit WAL requires this: an optimistic
	// answer must never outlive its logged obligation.
	SyncEachAppend SyncPolicy = iota
	// SyncOnRotate syncs only when a segment seals (rotation, Close).
	// A crash loses the unsynced tail of the active segment — replay
	// truncates it cleanly — bounding loss to one epoch of frames.
	SyncOnRotate
)

// Options parameterizes Open.
type Options struct {
	// Dir is the journal directory (required; created if missing).
	Dir string
	// FS is the filesystem the journal writes through (nil = fault.OS).
	// Tests interpose fault.FaultyFS here to crash at exact append,
	// rotate, and truncate points.
	FS fault.FS
	// Sync is the durability policy (default SyncEachAppend).
	Sync SyncPolicy
}

// segment is one sealed (rotated-away) segment's metadata.
type segment struct {
	seq      uint64
	maxEpoch uint64
}

// WAL is one open journal. Appends may be issued concurrently, but
// callers that need replay to preserve their operation order (the
// audit pipeline does) must serialize their own appends — the journal
// preserves arrival order, it does not invent one.
type WAL struct {
	fs     fault.FS
	dir    string
	policy SyncPolicy

	// mu guards the active segment and all metadata below. Writes to
	// the active file happen under it (appends are small and the file
	// is buffered by the OS); syncs do not — see the group-commit path.
	mu       sync.Mutex
	active   fault.File
	seq      uint64 // active segment sequence number
	frames   uint64 // frames written to the active segment
	lastEp   uint64 // epoch of the newest frame in the active segment
	written  uint64 // total frames written since Open
	synced   uint64 // total frames durable
	sealed   []segment
	closed   bool
	appendEr error // sticky first append-path error

	// syncMu serializes group-commit leaders; never nested inside mu.
	syncMu sync.Mutex
}

// segName renders a segment file name; lexical order matches numeric
// order because the sequence is fixed-width.
func segName(seq uint64) string { return fmt.Sprintf("seg-%016d.wal", seq) }

func parseSegName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".wal") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".wal"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// listSegments returns the directory's segment sequence numbers in
// ascending order (plain os: listing is a read, and recovery reads
// with reboot semantics anyway).
func listSegments(dir string) ([]uint64, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("wal: list %s: %w", dir, err)
	}
	var seqs []uint64
	for _, e := range ents {
		if seq, ok := parseSegName(e.Name()); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// Open opens (or initializes) the journal at opts.Dir. Existing
// segments are scanned: a torn tail on the newest segment is truncated
// in place (plain os — the crash is over, this is reboot territory),
// and appending resumes on a fresh segment so sealed files are never
// rewritten. Earlier segments with invalid frames are corruption and
// fail Open.
func Open(opts Options) (*WAL, error) {
	if opts.Dir == "" {
		return nil, errors.New("wal: Options.Dir is required")
	}
	if err := os.MkdirAll(opts.Dir, 0o777); err != nil {
		return nil, fmt.Errorf("wal: mkdir %s: %w", opts.Dir, err)
	}
	fs := opts.FS
	if fs == nil {
		fs = fault.OS
	}
	w := &WAL{fs: fs, dir: opts.Dir, policy: opts.Sync}

	seqs, err := listSegments(opts.Dir)
	if err != nil {
		return nil, err
	}
	for i, seq := range seqs {
		final := i == len(seqs)-1
		info, err := scanSegment(w.segPath(seq), final)
		if err != nil {
			return nil, err
		}
		if final && info.tornAt >= 0 {
			// Drop the torn tail so later replays see a clean file.
			if err := os.Truncate(w.segPath(seq), info.tornAt); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail of %s: %w", segName(seq), err)
			}
		}
		if info.frames == 0 {
			// A rotation that crashed after creating the file (or a
			// fully torn segment): nothing in it, remove rather than
			// carry an empty sealed segment forever.
			if err := os.Remove(w.segPath(seq)); err != nil {
				return nil, fmt.Errorf("wal: remove empty %s: %w", segName(seq), err)
			}
			continue
		}
		w.sealed = append(w.sealed, segment{seq: seq, maxEpoch: info.maxEpoch})
	}
	next := uint64(1)
	if len(seqs) > 0 {
		next = seqs[len(seqs)-1] + 1
	}
	if err := w.createSegmentLocked(next); err != nil {
		return nil, err
	}
	return w, nil
}

func (w *WAL) segPath(seq uint64) string { return filepath.Join(w.dir, segName(seq)) }

// createSegmentLocked creates and installs a fresh active segment.
// The caller holds mu (or is Open, before the WAL escapes).
//
//lint:ignore syncdiscipline the very first segment of a journal has no predecessor to sync; rotation seals the old segment (sync+close) before reaching this helper
func (w *WAL) createSegmentLocked(seq uint64) error {
	f, err := w.fs.Create(w.segPath(seq))
	if err != nil {
		return fmt.Errorf("wal: create segment %d: %w", seq, err)
	}
	if _, err := f.Write([]byte(segMagic)); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write segment magic: %w", err)
	}
	// Make the directory entry durable: a segment whose frames are
	// fsynced but whose name is not survives nothing.
	if err := w.fs.SyncDir(w.dir); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: sync dir: %w", err)
	}
	w.active, w.seq, w.frames, w.lastEp = f, seq, 0, 0
	return nil
}

// encodeFrame renders one frame.
func encodeFrame(epoch uint64, payload []byte) []byte {
	buf := make([]byte, frameOverhead+len(payload))
	binary.BigEndian.PutUint64(buf[0:8], uint64(len(payload)))
	binary.BigEndian.PutUint64(buf[8:16], epoch)
	copy(buf[16:], payload)
	sum := frameDigest(epoch, payload)
	copy(buf[16+len(payload):], sum[:])
	return buf
}

func frameDigest(epoch uint64, payload []byte) digest.Digest {
	return digest.NewHasher(digest.DomainWALFrame).Uint64(epoch).Bytes(payload).Sum()
}

// Append journals one record under the given epoch, rotating first if
// the epoch advanced past the active segment's. Under SyncEachAppend
// the frame is durable when Append returns nil; any error means the
// record may not survive a crash and the caller must degrade (the
// auditor falls back to per-operation synchronous verification).
//
// Epochs must be non-decreasing per caller; that is what makes
// segments cover disjoint epoch ranges.
func (w *WAL) Append(epoch uint64, payload []byte) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.appendEr != nil {
		err := w.appendEr
		w.mu.Unlock()
		return err
	}
	if w.frames > 0 && epoch > w.lastEp {
		if err := w.rotateLocked(); err != nil {
			w.appendEr = err
			w.mu.Unlock()
			return err
		}
	}
	if _, err := w.active.Write(encodeFrame(epoch, payload)); err != nil {
		w.appendEr = fmt.Errorf("wal: append: %w", err)
		err = w.appendEr
		w.mu.Unlock()
		return err
	}
	w.frames++
	w.written++
	if epoch > w.lastEp {
		w.lastEp = epoch
	}
	mine := w.written
	w.mu.Unlock()

	if w.policy == SyncOnRotate {
		return nil
	}
	return w.syncThrough(mine)
}

// syncThrough is the group-commit path: make every frame up to at
// least seq durable. The first caller in becomes the leader and syncs
// for everyone queued behind it; followers find their frame already
// covered and return without touching the disk.
func (w *WAL) syncThrough(seq uint64) error {
	w.syncMu.Lock()
	defer w.syncMu.Unlock()
	w.mu.Lock()
	if w.synced >= seq {
		w.mu.Unlock()
		return nil
	}
	if w.appendEr != nil {
		err := w.appendEr
		w.mu.Unlock()
		return err
	}
	f, high, seg := w.active, w.written, w.seq
	w.mu.Unlock()

	if err := f.Sync(); err != nil {
		w.mu.Lock()
		if w.seq != seg {
			// The segment rotated under us; rotation synced and closed
			// it, which both covers our frame and explains the error.
			w.mu.Unlock()
			return nil
		}
		if w.appendEr == nil {
			w.appendEr = fmt.Errorf("wal: sync: %w", err)
		}
		err = w.appendEr
		w.mu.Unlock()
		return err
	}
	w.mu.Lock()
	if high > w.synced {
		w.synced = high
	}
	w.mu.Unlock()
	return nil
}

// rotateLocked seals the active segment — sync, close, record — and
// opens the next one. Caller holds mu.
func (w *WAL) rotateLocked() error {
	if err := w.active.Sync(); err != nil {
		return fmt.Errorf("wal: rotate sync: %w", err)
	}
	if err := w.active.Close(); err != nil {
		return fmt.Errorf("wal: rotate close: %w", err)
	}
	w.synced = w.written
	w.sealed = append(w.sealed, segment{seq: w.seq, maxEpoch: w.lastEp})
	return w.createSegmentLocked(w.seq + 1)
}

// TruncateThrough unlinks every sealed segment whose newest frame
// belongs to an epoch <= epoch. The active segment is never touched.
// Callers must only truncate epochs whose obligations are covered by a
// durable cursor (WriteCursor) — the syncdiscipline of recovery, not
// of this package.
func (w *WAL) TruncateThrough(epoch uint64) error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	var drop []segment
	for _, s := range w.sealed {
		if s.maxEpoch <= epoch {
			drop = append(drop, s)
		}
	}
	w.mu.Unlock()
	if len(drop) == 0 {
		return nil
	}
	removed := make(map[uint64]bool, len(drop))
	var firstErr error
	for _, s := range drop {
		if err := w.fs.Remove(w.segPath(s.seq)); err != nil {
			firstErr = fmt.Errorf("wal: truncate segment %d: %w", s.seq, err)
			break
		}
		removed[s.seq] = true
	}
	if firstErr == nil {
		if err := w.fs.SyncDir(w.dir); err != nil {
			firstErr = fmt.Errorf("wal: truncate dir sync: %w", err)
		}
	}
	w.mu.Lock()
	var left []segment
	for _, s := range w.sealed {
		if !removed[s.seq] {
			left = append(left, s)
		}
	}
	w.sealed = left
	w.mu.Unlock()
	return firstErr
}

// Segments reports how many sealed segments remain (observability and
// tests; the active segment is excluded).
func (w *WAL) Segments() int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return len(w.sealed)
}

// Appended reports the total frames appended since Open.
func (w *WAL) Appended() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.written
}

// Close seals the active segment (final sync) and closes the journal.
// Idempotent.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	f := w.active
	w.active = nil
	dirty := w.synced < w.written
	w.mu.Unlock()
	if f == nil {
		return nil
	}
	var err error
	if dirty {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// Record is one replayed journal entry.
type Record struct {
	Epoch   uint64
	Payload []byte
}

// segScan is the result of scanning one segment file.
type segScan struct {
	frames   uint64
	maxEpoch uint64
	tornAt   int64 // byte offset of the torn tail; -1 if the file is clean
}

// scanSegment validates one segment with plain os reads. In a final
// segment any invalid suffix (bad magic, short frame, checksum
// mismatch) is a torn tail; in an earlier segment it is corruption.
func scanSegment(path string, final bool) (segScan, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return segScan{}, fmt.Errorf("wal: read %s: %w", filepath.Base(path), err)
	}
	info := segScan{tornAt: -1}
	recs, torn, perr := parseSegment(data)
	if perr != nil && !final {
		return segScan{}, fmt.Errorf("wal: %s: %w", filepath.Base(path), perr)
	}
	info.frames = uint64(len(recs))
	for _, r := range recs {
		if r.Epoch > info.maxEpoch {
			info.maxEpoch = r.Epoch
		}
	}
	if torn >= 0 {
		info.tornAt = torn
	}
	return info, nil
}

// parseSegment decodes every valid frame of one segment image. It
// returns the clean records, the byte offset of the first invalid
// suffix (-1 if none), and a description of that suffix for callers
// that must treat it as corruption rather than a torn tail.
func parseSegment(data []byte) (recs []Record, tornAt int64, tornErr error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != segMagic {
		return nil, 0, errors.New("bad segment magic")
	}
	off := int64(len(segMagic))
	for {
		rest := data[off:]
		if len(rest) == 0 {
			return recs, -1, nil
		}
		if len(rest) < 16 {
			return recs, off, errors.New("torn frame header")
		}
		n := binary.BigEndian.Uint64(rest[0:8])
		if n > maxFrameBytes {
			return recs, off, fmt.Errorf("implausible frame length %d", n)
		}
		epoch := binary.BigEndian.Uint64(rest[8:16])
		if uint64(len(rest)-16) < n+digest.Size {
			return recs, off, errors.New("torn frame body")
		}
		payload := rest[16 : 16+n]
		var footer digest.Digest
		copy(footer[:], rest[16+n:16+n+digest.Size])
		if frameDigest(epoch, payload) != footer {
			return recs, off, errors.New("frame checksum mismatch")
		}
		recs = append(recs, Record{Epoch: epoch, Payload: append([]byte(nil), payload...)})
		off += int64(16 + n + digest.Size)
	}
}

// Replay streams every intact record of the journal at dir, oldest
// first, with reboot semantics (plain os reads). A torn tail on the
// final segment ends the replay cleanly; invalid frames on earlier
// segments are corruption and error out. fn's error aborts the replay.
func Replay(dir string, fn func(rec Record) error) error {
	seqs, err := listSegments(dir)
	if err != nil {
		return err
	}
	for i, seq := range seqs {
		final := i == len(seqs)-1
		data, err := os.ReadFile(filepath.Join(dir, segName(seq)))
		if err != nil {
			return fmt.Errorf("wal: read %s: %w", segName(seq), err)
		}
		recs, _, perr := parseSegment(data)
		if perr != nil && !final {
			return fmt.Errorf("wal: %s: %w", segName(seq), perr)
		}
		for _, r := range recs {
			if err := fn(r); err != nil {
				return err
			}
		}
	}
	return nil
}
