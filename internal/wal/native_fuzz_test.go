package wal

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"

	"trustedcvs/internal/digest"
)

// FuzzWALReplay drives replay and reboot-repair with an arbitrary
// segment image. The journal is read back with no adversary model in
// front of it, so the properties are totality and clean truncation:
//
//   - Replay never panics, and every record it yields carries a payload
//     whose frame checksum verifies — a corrupt frame may end or error
//     the replay, never leak through it;
//   - Open repairs any torn tail in place: after repair the journal
//     accepts appends, and a full replay yields exactly the intact
//     record prefix of the original image plus the new record — repair
//     loses nothing that was whole and resurrects nothing that was torn.
func FuzzWALReplay(f *testing.F) {
	// A genuine two-epoch journal image as the honest seed.
	seedDir := f.TempDir()
	w, err := Open(Options{Dir: seedDir})
	if err != nil {
		f.Fatal(err)
	}
	for i, ep := range []uint64{0, 0, 1} {
		if err := w.Append(ep, bytes.Repeat([]byte{byte('a' + i)}, 9+i)); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		f.Fatal(err)
	}
	honest, err := os.ReadFile(filepath.Join(seedDir, segName(1)))
	if err != nil {
		f.Fatal(err)
	}

	f.Add(append([]byte(nil), honest...))
	f.Add(append([]byte(nil), honest[:len(honest)-1]...))   // torn footer
	f.Add(append([]byte(nil), honest[:len(segMagic)+7]...)) // torn header
	flipped := append([]byte(nil), honest...)
	flipped[len(flipped)/2] ^= 0x20
	f.Add(flipped)
	f.Add([]byte{})
	f.Add([]byte(segMagic))
	// A header promising a giant payload: must be rejected as torn
	// without a giant allocation.
	huge := []byte(segMagic)
	huge = binary.BigEndian.AppendUint64(huge, maxFrameBytes+1)
	huge = binary.BigEndian.AppendUint64(huge, 0)
	f.Add(huge)

	f.Fuzz(func(t *testing.T, b []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), b, 0o666); err != nil {
			t.Fatal(err)
		}
		var before []Record
		if err := Replay(dir, func(r Record) error {
			if frameDigest(r.Epoch, r.Payload) != frameSumOf(b, r) {
				t.Fatalf("replayed record not backed by a checksummed frame: epoch %d, %d bytes", r.Epoch, len(r.Payload))
			}
			before = append(before, r)
			return nil
		}); err != nil {
			return // a single corrupt segment may only fail cleanly
		}

		// Reboot: repair the tail, append past it, and replay the result.
		w, err := Open(Options{Dir: dir})
		if err != nil {
			t.Fatalf("Open failed to repair a single-segment journal: %v", err)
		}
		probe := []byte("probe-after-repair")
		if err := w.Append(1<<40, probe); err != nil {
			t.Fatalf("append after repair: %v", err)
		}
		if err := w.Close(); err != nil {
			t.Fatalf("close after repair: %v", err)
		}
		var after []Record
		if err := Replay(dir, func(r Record) error {
			after = append(after, r)
			return nil
		}); err != nil {
			t.Fatalf("replay after repair must be clean: %v", err)
		}
		if len(after) != len(before)+1 {
			t.Fatalf("repair changed the intact prefix: %d records before, %d after (+1 probe expected)", len(before), len(after))
		}
		for i, r := range before {
			if after[i].Epoch != r.Epoch || !bytes.Equal(after[i].Payload, r.Payload) {
				t.Fatalf("record %d changed across repair", i)
			}
		}
		if last := after[len(after)-1]; last.Epoch != 1<<40 || !bytes.Equal(last.Payload, probe) {
			t.Fatalf("probe record corrupted: epoch %d, %q", last.Epoch, last.Payload)
		}
	})
}

// frameSumOf re-derives, straight from the raw image, the footer of the
// frame that claims r's epoch and payload — an independent check that a
// yielded record is really backed by a checksummed frame and not
// fabricated by a parser bug.
func frameSumOf(img []byte, r Record) digest.Digest {
	needle := encodeFrame(r.Epoch, r.Payload)
	if i := bytes.Index(img, needle); i >= 0 {
		var sum digest.Digest
		copy(sum[:], needle[len(needle)-digest.Size:])
		return sum
	}
	return digest.Digest{} // no such frame: the comparison above fails
}
