package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/fault"
)

// The cursor file records the journal owner's durable resume point —
// for the audit pipeline, the newest closed epoch plus the user state
// at its boundary cut. It is written with the full atomic litany
// (tmp, write, sync, rename, dir sync) so a crash mid-update leaves
// either the old cursor or the new one, never a torn hybrid, and its
// payload carries its own checksum footer so rot is detected on read.

// cursorMagic heads the cursor file.
const cursorMagic = "TCVSCUR1\n"

// cursorFile is the cursor's name inside the journal directory.
const cursorFile = "cursor"

// WriteCursor durably replaces the journal's cursor with payload.
// Safe to call while the WAL is open; the cursor is a separate file
// and never collides with a segment name.
func WriteCursor(fs fault.FS, dir string, payload []byte) error {
	if fs == nil {
		fs = fault.OS
	}
	buf := make([]byte, len(cursorMagic)+8+len(payload)+digest.Size)
	n := copy(buf, cursorMagic)
	binary.BigEndian.PutUint64(buf[n:], uint64(len(payload)))
	n += 8
	n += copy(buf[n:], payload)
	sum := digest.OfBytes(digest.DomainWALCursor, payload)
	copy(buf[n:], sum[:])

	tmp := filepath.Join(dir, cursorFile+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: create cursor tmp: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: write cursor: %w", err)
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		return fmt.Errorf("wal: sync cursor: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("wal: close cursor: %w", err)
	}
	if err := fs.Rename(tmp, filepath.Join(dir, cursorFile)); err != nil {
		return fmt.Errorf("wal: install cursor: %w", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		return fmt.Errorf("wal: sync cursor dir: %w", err)
	}
	return nil
}

// ReadCursor loads the journal's cursor payload. ok is false when no
// cursor has ever been written; a cursor that exists but fails its
// checksum is corruption, not absence.
func ReadCursor(dir string) (payload []byte, ok bool, err error) {
	data, err := os.ReadFile(filepath.Join(dir, cursorFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, false, nil
		}
		return nil, false, fmt.Errorf("wal: read cursor: %w", err)
	}
	if len(data) < len(cursorMagic)+8+digest.Size || string(data[:len(cursorMagic)]) != cursorMagic {
		return nil, false, errors.New("wal: cursor: bad magic or truncated")
	}
	rest := data[len(cursorMagic):]
	n := binary.BigEndian.Uint64(rest[:8])
	if n > maxFrameBytes || uint64(len(rest)-8) != n+digest.Size {
		return nil, false, fmt.Errorf("wal: cursor: bad length %d", n)
	}
	payload = rest[8 : 8+n]
	var footer digest.Digest
	copy(footer[:], rest[8+n:])
	if digest.OfBytes(digest.DomainWALCursor, payload) != footer {
		return nil, false, errors.New("wal: cursor: checksum mismatch")
	}
	return append([]byte(nil), payload...), true, nil
}
