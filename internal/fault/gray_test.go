package fault

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// TestGrayFailureSlowButAlive drives data through a gray-failed
// connection — seeded latency spikes plus a bandwidth throttle — and
// asserts the defining property: every byte arrives intact and in
// order, the connection never dies, but throughput is capped at the
// configured rate.
func TestGrayFailureSlowButAlive(t *testing.T) {
	inj := NewInjector(Config{
		Seed:        7,
		SpikeProb:   0.5,
		SpikeMin:    time.Millisecond,
		SpikeMax:    3 * time.Millisecond,
		BytesPerSec: 256 << 10,
	})
	a, b := net.Pipe()
	gray := WrapConn(a, inj)

	const chunks, chunkLen = 16, 4 << 10
	payload := bytes.Repeat([]byte{0xab}, chunkLen)
	got := make([]byte, 0, chunks*chunkLen)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, chunkLen)
		for len(got) < chunks*chunkLen {
			n, err := b.Read(buf)
			got = append(got, buf[:n]...)
			if err != nil {
				done <- err
				return
			}
		}
		done <- nil
	}()

	start := time.Now()
	for i := 0; i < chunks; i++ {
		if _, err := gray.Write(payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if err := <-done; err != nil {
		t.Fatalf("read: %v", err)
	}
	elapsed := time.Since(start)

	if len(got) != chunks*chunkLen {
		t.Fatalf("got %d bytes, want %d", len(got), chunks*chunkLen)
	}
	for i, c := range got {
		if c != 0xab {
			t.Fatalf("byte %d corrupted: %#x", i, c)
		}
	}
	// 64KiB at 256KiB/s is a 250ms pacing floor; allow scheduler slack
	// below it but not a free pass.
	if elapsed < 200*time.Millisecond {
		t.Fatalf("transfer finished in %v, want >= ~250ms under throttle", elapsed)
	}
	if inj.Counts()[Spike] == 0 {
		t.Fatalf("no latency spikes injected: %v", inj.Counts())
	}
}

// TestGrayDecisionsDeterministic pins the gray-failure decision stream
// to the seed: two injectors with the same (Seed, Config) must agree
// on every spike, including its drawn duration.
func TestGrayDecisionsDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, SpikeProb: 0.3, SpikeMin: time.Millisecond, SpikeMax: 9 * time.Millisecond}
	x, y := NewInjector(cfg), NewInjector(cfg)
	spikes := 0
	for i := 0; i < 500; i++ {
		dx, dy := x.Next(), y.Next()
		if dx != dy {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, dx, dy)
		}
		if dx.Kind == Spike {
			spikes++
			if dx.Delay < cfg.SpikeMin || dx.Delay > cfg.SpikeMax {
				t.Fatalf("spike delay %v outside [%v, %v]", dx.Delay, cfg.SpikeMin, cfg.SpikeMax)
			}
		}
	}
	if spikes == 0 {
		t.Fatal("seeded stream produced no spikes")
	}
}

// TestGrayScriptedSpike fires a spike at an exact I/O index, the way
// experiment scripts pin pathological schedules.
func TestGrayScriptedSpike(t *testing.T) {
	inj := NewInjector(Config{
		SpikeMin: 2 * time.Millisecond,
		Script:   []Event{{At: 3, Kind: Spike}},
	})
	for i := 1; i <= 5; i++ {
		d := inj.Next()
		if (i == 3) != (d.Kind == Spike) {
			t.Fatalf("op %d: decision %+v", i, d)
		}
		if i == 3 && d.Delay != 2*time.Millisecond {
			t.Fatalf("scripted spike delay %v, want 2ms", d.Delay)
		}
	}
}

var _ io.ReadWriter = (*Conn)(nil)
