// Package fault is the deterministic fault-injection layer used to
// prove the endpoints self-heal: benign infrastructure failures —
// connection resets, latency spikes, read/write stalls, mid-frame
// truncation, torn checkpoint writes, a crash between write and rename
// — must cause zero false deviation alarms, while genuine tampering
// injected through the very same faulty channel is still detected.
//
// The paper's model declares these failures out of scope (the
// broadcast channel is assumed reliable and in-order); a production
// deployment cannot. This package makes the out-of-scope failures a
// first-class, *reproducible* test input: every decision comes from a
// seeded splitmix64 PRNG and monotone I/O counters, or from an
// explicit script of (index, kind) events, so a failing schedule can
// be replayed exactly.
//
// Two faces:
//
//   - Conn/Listener wrap net.Conn / net.Listener and inject network
//     faults per I/O operation (see Config).
//   - FS (fs.go) wraps the checkpoint persistence path and injects
//     torn writes, short writes, and crash-before-rename.
//
// Injection hooks are slow by design (they sleep, sever, and count);
// the repo's lockscope lint pass bans them inside mutex critical
// sections exactly like the other blocking calls.
package fault

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// Kind is one category of injected network fault.
type Kind int

const (
	// None performs the I/O untouched.
	None Kind = iota
	// Latency delays the I/O by Config.Latency, then performs it.
	Latency
	// Stall delays the I/O by Config.Stall — long enough to trip a
	// peer's deadline, which is the point.
	Stall
	// Reset severs the connection before the I/O (RST-like: the peer
	// sees an abrupt error, not a clean EOF).
	Reset
	// Truncate writes a strict prefix of the buffer, then severs —
	// a mid-frame truncation as seen after a crashed peer or a
	// middlebox cut. On reads it degrades to Reset.
	Truncate
	// Spike delays the I/O by a seeded duration drawn from
	// [Config.SpikeMin, Config.SpikeMax] — the gray-failure latency
	// profile: the connection never dies, it just intermittently gets
	// much worse. Unlike Latency (fixed delay), no two spikes need be
	// alike, which is what defeats naive timeout tuning.
	Spike
)

func (k Kind) String() string {
	switch k {
	case None:
		return "none"
	case Latency:
		return "latency"
	case Stall:
		return "stall"
	case Reset:
		return "reset"
	case Truncate:
		return "truncate"
	case Spike:
		return "spike"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ErrInjected is the base error for injected connection faults, so
// callers can distinguish scheduled harness faults from real ones in
// test assertions.
var ErrInjected = errors.New("fault: injected")

// Event is one scripted fault: fire Kind at the At-th I/O operation
// (1-based, counted across every connection sharing the Injector).
type Event struct {
	At   uint64
	Kind Kind
}

// Config parameterizes an Injector. Probabilities are per I/O
// operation and evaluated by the seeded PRNG, so a (Seed, Config) pair
// fully determines the fault decision sequence. Script entries fire at
// exact I/O indices and take precedence over probabilities.
type Config struct {
	// Seed feeds the splitmix64 decision stream.
	Seed uint64
	// After suppresses probabilistic faults for the first After I/O
	// operations (connection establishment, handshakes). Scripted
	// events ignore it.
	After uint64

	ResetProb    float64
	TruncateProb float64
	LatencyProb  float64
	StallProb    float64

	// Latency is the delay injected by Latency faults.
	Latency time.Duration
	// Stall is the delay injected by Stall faults.
	Stall time.Duration

	// Gray failure: a slow-but-alive connection. SpikeProb injects,
	// per I/O, a latency spike of seeded duration drawn uniformly from
	// [SpikeMin, SpikeMax]; BytesPerSec throttles the wrapped Conn's
	// effective bandwidth (0 = unthrottled). Neither ever severs the
	// connection — a gray endpoint passes every liveness check while
	// degrading everything that flows through it, which is the failure
	// mode circuit breakers and hedged reads exist for.
	SpikeProb float64
	SpikeMin  time.Duration
	SpikeMax  time.Duration
	// BytesPerSec paces each direction of a wrapped Conn: every I/O of
	// n bytes costs n/BytesPerSec of sleep on that endpoint. Wrap one
	// side only, or the halves compound.
	BytesPerSec int

	// Script fires exact (index, kind) events; indices are 1-based
	// over the injector's shared I/O counter.
	Script []Event
}

// Decision is the injector's verdict for one I/O operation.
type Decision struct {
	Kind  Kind
	Delay time.Duration
}

// Injector produces the deterministic fault decision sequence. One
// Injector is typically shared by every connection of a test or
// experiment, so "the 100th I/O of the run resets" means the same
// thing across runs regardless of which connection performs it.
type Injector struct {
	cfg Config

	mu     sync.Mutex
	rng    uint64
	n      uint64 // I/O operations observed
	counts map[Kind]uint64
}

// NewInjector builds an injector for cfg.
func NewInjector(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: cfg.Seed, counts: make(map[Kind]uint64)}
}

// Disabled is a no-op injector (zero Config injects nothing); useful
// as a default so wrapping code need not branch on nil.
func Disabled() *Injector { return NewInjector(Config{}) }

// Next advances the shared I/O counter and returns the decision for
// this operation. It is the injection hook: it must never be called
// inside a mutex critical section (enforced by the lockscope lint
// pass).
func (i *Injector) Next() Decision {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.n++
	d := i.decideLocked()
	if d.Kind != None {
		i.counts[d.Kind]++
	}
	return d
}

func (i *Injector) decideLocked() Decision {
	for _, e := range i.cfg.Script {
		if e.At == i.n {
			return i.decision(e.Kind)
		}
	}
	if i.n <= i.cfg.After {
		return Decision{}
	}
	// One draw per category keeps the stream stable when probabilities
	// change between experiments.
	switch {
	case i.chance(i.cfg.ResetProb):
		return i.decision(Reset)
	case i.chance(i.cfg.TruncateProb):
		return i.decision(Truncate)
	case i.chance(i.cfg.StallProb):
		return i.decision(Stall)
	case i.chance(i.cfg.LatencyProb):
		return i.decision(Latency)
	case i.chance(i.cfg.SpikeProb):
		return i.decision(Spike)
	}
	return Decision{}
}

func (i *Injector) decision(k Kind) Decision {
	switch k {
	case Latency:
		return Decision{Kind: Latency, Delay: i.cfg.Latency}
	case Stall:
		return Decision{Kind: Stall, Delay: i.cfg.Stall}
	case Spike:
		d := i.cfg.SpikeMin
		if span := i.cfg.SpikeMax - i.cfg.SpikeMin; span > 0 {
			d += time.Duration(i.rand() % uint64(span+1))
		}
		return Decision{Kind: Spike, Delay: d}
	default:
		return Decision{Kind: k}
	}
}

// throttleDelay converts n transferred bytes into the pacing sleep the
// bandwidth throttle demands (zero when unthrottled).
func (i *Injector) throttleDelay(n int) time.Duration {
	if i.cfg.BytesPerSec <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(n) * time.Second / time.Duration(i.cfg.BytesPerSec)
}

// rand is splitmix64: tiny, seedable, and plenty for fault schedules.
// Deliberately not math/rand — the decision stream must be stable
// across Go releases for recorded schedules to replay.
func (i *Injector) rand() uint64 {
	i.rng += 0x9e3779b97f4a7c15
	z := i.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (i *Injector) chance(p float64) bool {
	if p <= 0 {
		return false
	}
	return float64(i.rand()>>11)/(1<<53) < p
}

// Ops returns the number of I/O operations observed so far.
func (i *Injector) Ops() uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.n
}

// Counts returns how many faults of each kind have been injected.
func (i *Injector) Counts() map[Kind]uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	out := make(map[Kind]uint64, len(i.counts))
	for k, v := range i.counts {
		out[k] = v
	}
	return out
}

// Injected returns the total number of injected faults.
func (i *Injector) Injected() uint64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	var t uint64
	for _, v := range i.counts {
		t += v
	}
	return t
}
