package fault_test

import (
	"fmt"

	"trustedcvs/internal/fault"
)

// ExampleInjector shows the scripted face of the injector: exact
// (index, kind) events over the shared I/O counter, so a failing
// fault schedule replays identically run after run. The probabilistic
// face (Config.Seed + per-kind probabilities) is deterministic the
// same way: a (Seed, Config) pair fully determines the decision
// stream.
func ExampleInjector() {
	inj := fault.NewInjector(fault.Config{
		Script: []fault.Event{
			{At: 2, Kind: fault.Reset},
			{At: 4, Kind: fault.Truncate},
		},
	})
	for i := 1; i <= 5; i++ {
		fmt.Printf("io %d: %v\n", i, inj.Next().Kind)
	}
	fmt.Println("injected:", inj.Injected())
	// Output:
	// io 1: none
	// io 2: reset
	// io 3: none
	// io 4: truncate
	// io 5: none
	// injected: 2
}
