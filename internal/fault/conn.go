package fault

import (
	"fmt"
	"net"
	"time"
)

// Conn wraps a net.Conn and injects the Injector's scheduled faults on
// every Read and Write. All other methods (deadlines, addresses,
// Close) pass through, so a Conn drops into any code path expecting a
// net.Conn — including under the transport's per-connection deadline
// wrapper.
type Conn struct {
	net.Conn
	inj *Injector
}

// WrapConn wraps c with fault injection from inj.
func WrapConn(c net.Conn, inj *Injector) *Conn {
	return &Conn{Conn: c, inj: inj}
}

// Read injects the scheduled fault, then reads. Truncate has no
// read-side meaning and degrades to Reset. Under a bandwidth throttle
// the read is additionally paced by the bytes it returned — the
// gray-failure profile where data arrives, just slowly.
func (c *Conn) Read(p []byte) (int, error) {
	switch d := c.inj.Next(); d.Kind {
	case Reset, Truncate:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection reset on read", ErrInjected)
	case Latency, Stall, Spike:
		time.Sleep(d.Delay)
	}
	n, err := c.Conn.Read(p)
	if d := c.inj.throttleDelay(n); d > 0 {
		time.Sleep(d)
	}
	return n, err
}

// Write injects the scheduled fault, then writes. Truncate writes a
// strict prefix of p and severs, so the peer observes a mid-frame cut
// — the hardest benign case for a length-prefixed codec. Under a
// bandwidth throttle the write is paced by its size before it is
// issued, so the peer sees throughput capped at BytesPerSec.
func (c *Conn) Write(p []byte) (int, error) {
	switch d := c.inj.Next(); d.Kind {
	case Reset:
		c.Conn.Close()
		return 0, fmt.Errorf("%w: connection reset on write", ErrInjected)
	case Truncate:
		n := 0
		if len(p) > 1 {
			n, _ = c.Conn.Write(p[:len(p)/2])
		}
		c.Conn.Close()
		return n, fmt.Errorf("%w: write truncated after %d/%d bytes", ErrInjected, n, len(p))
	case Latency, Stall, Spike:
		time.Sleep(d.Delay)
	}
	if d := c.inj.throttleDelay(len(p)); d > 0 {
		time.Sleep(d)
	}
	return c.Conn.Write(p)
}

// Listener wraps a net.Listener so every accepted connection carries
// fault injection. Accept itself is never faulted — binding failures
// are a different failure class than flaky established connections.
type Listener struct {
	net.Listener
	inj *Injector
}

// WrapListener wraps lis with per-connection fault injection.
func WrapListener(lis net.Listener, inj *Injector) *Listener {
	return &Listener{Listener: lis, inj: inj}
}

// Accept accepts and wraps the next connection.
func (l *Listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return WrapConn(c, l.inj), nil
}

// Dialer returns a dial function producing fault-injected connections
// to addr — the shape transport.DialResilientFunc and
// broadcast.DialHubResumeFunc expect.
func Dialer(addr string, inj *Injector) func() (net.Conn, error) {
	return func() (net.Conn, error) {
		c, err := net.DialTimeout("tcp", addr, 5*time.Second)
		if err != nil {
			return nil, err
		}
		return WrapConn(c, inj), nil
	}
}
