package fault

import (
	"bytes"
	"errors"
	"io"
	"net"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"
)

func TestInjectorDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, ResetProb: 0.1, TruncateProb: 0.05, LatencyProb: 0.2, Latency: time.Millisecond}
	a, b := NewInjector(cfg), NewInjector(cfg)
	var sa, sb []Kind
	for i := 0; i < 500; i++ {
		sa = append(sa, a.Next().Kind)
		sb = append(sb, b.Next().Kind)
	}
	if !reflect.DeepEqual(sa, sb) {
		t.Fatal("same (seed, config) must produce the same decision sequence")
	}
	var faults int
	for _, k := range sa {
		if k != None {
			faults++
		}
	}
	if faults == 0 {
		t.Fatal("expected some injected faults over 500 draws")
	}
	if a.Injected() != uint64(faults) {
		t.Fatalf("Injected() = %d, want %d", a.Injected(), faults)
	}
}

func TestInjectorScriptAndWarmup(t *testing.T) {
	i := NewInjector(Config{
		Seed: 1, ResetProb: 1.0, After: 10,
		Script: []Event{{At: 3, Kind: Truncate}},
	})
	for n := 1; n <= 12; n++ {
		d := i.Next()
		switch {
		case n == 3:
			if d.Kind != Truncate {
				t.Fatalf("op 3: want scripted Truncate, got %v", d.Kind)
			}
		case n <= 10:
			if d.Kind != None {
				t.Fatalf("op %d: warm-up must suppress probabilistic faults, got %v", n, d.Kind)
			}
		default:
			if d.Kind != Reset {
				t.Fatalf("op %d: ResetProb=1 past warm-up must reset, got %v", n, d.Kind)
			}
		}
	}
}

// pipeConns builds a connected TCP pair so deadline and reset behavior
// is the real kernel's, not a net.Pipe approximation.
func pipeConns(t *testing.T) (client, server net.Conn) {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer lis.Close()
	done := make(chan net.Conn, 1)
	go func() {
		c, err := lis.Accept()
		if err != nil {
			done <- nil
			return
		}
		done <- c
	}()
	c, err := net.Dial("tcp", lis.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	s := <-done
	if s == nil {
		t.Fatal("accept failed")
	}
	t.Cleanup(func() { c.Close(); s.Close() })
	return c, s
}

func TestConnReset(t *testing.T) {
	c, s := pipeConns(t)
	fc := WrapConn(c, NewInjector(Config{Script: []Event{{At: 1, Kind: Reset}}}))
	if _, err := fc.Write([]byte("hello")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected reset, got %v", err)
	}
	// The underlying connection really is severed: the peer sees EOF
	// or a reset, never a clean payload.
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if n, err := s.Read(buf); err == nil && n > 0 {
		t.Fatalf("peer read %d bytes after reset", n)
	}
}

func TestConnTruncateWritesPrefix(t *testing.T) {
	c, s := pipeConns(t)
	fc := WrapConn(c, NewInjector(Config{Script: []Event{{At: 1, Kind: Truncate}}}))
	payload := []byte("0123456789abcdef")
	if _, err := fc.Write(payload); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected truncation, got %v", err)
	}
	s.SetReadDeadline(time.Now().Add(2 * time.Second))
	got, _ := io.ReadAll(s)
	if len(got) == 0 || len(got) >= len(payload) {
		t.Fatalf("peer saw %d bytes; want a strict non-empty prefix of %d", len(got), len(payload))
	}
	if !bytes.HasPrefix(payload, got) {
		t.Fatalf("peer saw %q, not a prefix of %q", got, payload)
	}
}

func TestConnLatencyDelays(t *testing.T) {
	c, s := pipeConns(t)
	go func() {
		buf := make([]byte, 16)
		for {
			if _, err := s.Read(buf); err != nil {
				return
			}
		}
	}()
	fc := WrapConn(c, NewInjector(Config{
		Latency: 30 * time.Millisecond,
		Script:  []Event{{At: 1, Kind: Latency}},
	}))
	start := time.Now()
	if _, err := fc.Write([]byte("x")); err != nil {
		t.Fatal(err)
	}
	if d := time.Since(start); d < 25*time.Millisecond {
		t.Fatalf("latency fault completed in %v; want >= 25ms", d)
	}
}

func TestListenerWrapsAccepted(t *testing.T) {
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fl := WrapListener(lis, NewInjector(Config{Script: []Event{{At: 1, Kind: Reset}}}))
	defer fl.Close()
	go func() {
		c, err := net.Dial("tcp", fl.Addr().String())
		if err != nil {
			return
		}
		defer c.Close()
		time.Sleep(100 * time.Millisecond)
	}()
	sc, err := fl.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, ok := sc.(*Conn); !ok {
		t.Fatalf("accepted conn is %T, want *fault.Conn", sc)
	}
	if _, err := sc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("want injected fault on first server write, got %v", err)
	}
}

func TestFaultyFSShortWrite(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "snap")
	ffs := &FaultyFS{ShortWriteAt: 1}
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("0123456789abcdef")
	n, err := f.Write(payload)
	if err != nil || n != len(payload) {
		t.Fatalf("short write must lie (report success): n=%d err=%v", n, err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) >= len(payload) {
		t.Fatalf("disk has %d bytes; short write must persist a strict prefix", len(got))
	}
}

func TestFaultyFSCrashBeforeRename(t *testing.T) {
	dir := t.TempDir()
	tmp, final := filepath.Join(dir, "snap.tmp"), filepath.Join(dir, "snap")
	ffs := &FaultyFS{CrashAtRename: 1}
	f, err := ffs.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("payload")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := ffs.Rename(tmp, final); !errors.Is(err, ErrCrashed) {
		t.Fatalf("want crash before rename, got %v", err)
	}
	if !ffs.Crashed() {
		t.Fatal("FS must be dead after the crash point")
	}
	// Reboot view (plain OS): tmp exists, final never appeared.
	if _, err := os.Stat(final); !os.IsNotExist(err) {
		t.Fatalf("final file must not exist after crash-before-rename: %v", err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("temp file should have survived: %v", err)
	}
	// Everything after the crash fails.
	if _, err := ffs.Create(filepath.Join(dir, "other")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash Create must fail with ErrCrashed, got %v", err)
	}
}

func TestOSFSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	f, err := OS.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("data")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := OS.Rename(path, path+".2"); err != nil {
		t.Fatal(err)
	}
	if err := OS.SyncDir(dir); err != nil {
		t.Fatal(err)
	}
	ok, err := OS.Exists(path + ".2")
	if err != nil || !ok {
		t.Fatalf("Exists(%s) = %v, %v", path+".2", ok, err)
	}
	ok, err = OS.Exists(path)
	if err != nil || ok {
		t.Fatalf("Exists(%s) = %v, %v; want false", path, ok, err)
	}
}
