package fault

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// File is the write side of one checkpoint file: what an atomic
// write-sync-rename persistence path actually needs.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS abstracts the handful of filesystem operations the crash-safe
// checkpoint path performs, so tests can interpose torn writes and
// crashes at every step. OS is the real implementation.
type FS interface {
	Create(name string) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	Exists(name string) (bool, error)
	// SyncDir fsyncs the directory itself — without it, a rename can
	// be lost on power failure even though the file data was synced.
	SyncDir(dir string) error
}

// OS is the passthrough FS backed by package os.
var OS FS = osFS{}

type osFS struct{}

func (osFS) Create(name string) (File, error) { return os.Create(name) }
func (osFS) Rename(o, n string) error         { return os.Rename(o, n) }
func (osFS) Remove(name string) error         { return os.Remove(name) }

func (osFS) Exists(name string) (bool, error) {
	_, err := os.Stat(name)
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, err
}

func (osFS) SyncDir(dir string) error {
	if dir == "" {
		dir = "."
	}
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrCrashed is returned by every FaultyFS operation after the
// simulated crash point: the process is "dead", nothing it does from
// then on reaches the disk.
var ErrCrashed = errors.New("fault: filesystem crashed")

// FaultyFS wraps an FS and injects persistence faults at exact
// operation indices (1-based, counted per operation type). The
// dangerous property it simulates: everything before the crash point
// really happened on the inner FS, nothing after it does — so a test
// can "reboot" by reading the directory back with the plain OS FS and
// observing exactly the torn state a power cut would leave.
type FaultyFS struct {
	Inner FS

	// ShortWriteAt makes the Nth Write persist only half its bytes
	// while reporting full success — a lying disk / torn page. The FS
	// stays alive: the bug is silent until load time, which is what
	// the snapshot checksum exists to catch.
	ShortWriteAt uint64
	// CrashAtWrite makes the Nth Write persist half its bytes and then
	// crash the FS.
	CrashAtWrite uint64
	// CrashAtRename crashes the FS before performing the Nth Rename —
	// the classic "temp file written and synced, rename never
	// happened" window.
	CrashAtRename uint64
	// CrashAtSync crashes the FS before the Nth Sync: data may be in
	// the page cache but was never made durable; the inner file is
	// truncated to half to simulate the lost tail.
	CrashAtSync uint64
	// CrashAtCreate crashes the FS before the Nth Create — a WAL
	// segment rotation that sealed the old segment but died before the
	// new one existed.
	CrashAtCreate uint64
	// CrashAtRemove crashes the FS before the Nth Remove — a WAL
	// truncation that died after the cursor was written but before the
	// obsolete segments were unlinked, leaving stale-but-checksummed
	// frames for recovery to skip.
	CrashAtRemove uint64

	mu      sync.Mutex
	writes  uint64
	renames uint64
	syncs   uint64
	creates uint64
	removes uint64
	crashed bool
}

// Crashed reports whether the simulated crash point has been reached.
func (f *FaultyFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

func (f *FaultyFS) dead() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

func (f *FaultyFS) inner() FS {
	if f.Inner != nil {
		return f.Inner
	}
	return OS
}

// Create opens a faulty file handle unless this is the scheduled
// crash point.
func (f *FaultyFS) Create(name string) (File, error) {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return nil, ErrCrashed
	}
	f.creates++
	if f.CrashAtCreate != 0 && f.creates == f.CrashAtCreate {
		f.crashed = true
		f.mu.Unlock()
		return nil, fmt.Errorf("%w: before create %s", ErrCrashed, name)
	}
	f.mu.Unlock()
	inner, err := f.inner().Create(name)
	if err != nil {
		return nil, err
	}
	return &faultyFile{fs: f, inner: inner}, nil
}

// Rename performs the rename unless this is the scheduled crash point.
func (f *FaultyFS) Rename(o, n string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	f.renames++
	if f.CrashAtRename != 0 && f.renames == f.CrashAtRename {
		f.crashed = true
		f.mu.Unlock()
		return fmt.Errorf("%w: before rename %s -> %s", ErrCrashed, o, n)
	}
	f.mu.Unlock()
	return f.inner().Rename(o, n)
}

// Remove removes unless crashed or this is the scheduled crash point.
func (f *FaultyFS) Remove(name string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return ErrCrashed
	}
	f.removes++
	if f.CrashAtRemove != 0 && f.removes == f.CrashAtRemove {
		f.crashed = true
		f.mu.Unlock()
		return fmt.Errorf("%w: before remove %s", ErrCrashed, name)
	}
	f.mu.Unlock()
	return f.inner().Remove(name)
}

// Exists checks existence unless crashed.
func (f *FaultyFS) Exists(name string) (bool, error) {
	if f.dead() {
		return false, ErrCrashed
	}
	return f.inner().Exists(name)
}

// SyncDir syncs the directory unless crashed.
func (f *FaultyFS) SyncDir(dir string) error {
	if f.dead() {
		return ErrCrashed
	}
	return f.inner().SyncDir(dir)
}

type faultyFile struct {
	fs    *FaultyFS
	inner File
}

func (w *faultyFile) Write(p []byte) (int, error) {
	w.fs.mu.Lock()
	if w.fs.crashed {
		w.fs.mu.Unlock()
		return 0, ErrCrashed
	}
	w.fs.writes++
	n := w.fs.writes
	short := w.fs.ShortWriteAt != 0 && n == w.fs.ShortWriteAt
	crash := w.fs.CrashAtWrite != 0 && n == w.fs.CrashAtWrite
	if crash {
		w.fs.crashed = true
	}
	w.fs.mu.Unlock()

	switch {
	case crash:
		_, _ = w.inner.Write(p[:len(p)/2])
		return 0, fmt.Errorf("%w: mid-write", ErrCrashed)
	case short:
		// Persist half, report success: the torn write no checksumless
		// loader can see.
		if _, err := w.inner.Write(p[:len(p)/2]); err != nil {
			return 0, err
		}
		return len(p), nil
	}
	return w.inner.Write(p)
}

func (w *faultyFile) Sync() error {
	w.fs.mu.Lock()
	if w.fs.crashed {
		w.fs.mu.Unlock()
		return ErrCrashed
	}
	w.fs.syncs++
	crash := w.fs.CrashAtSync != 0 && w.fs.syncs == w.fs.CrashAtSync
	if crash {
		w.fs.crashed = true
	}
	w.fs.mu.Unlock()
	if crash {
		return fmt.Errorf("%w: before sync", ErrCrashed)
	}
	return w.inner.Sync()
}

func (w *faultyFile) Close() error {
	// Close always reaches the inner file so tests do not leak
	// descriptors; a crashed FS still reports the crash.
	err := w.inner.Close()
	if w.fs.dead() {
		return ErrCrashed
	}
	return err
}

// Dir returns the directory of path for SyncDir, mirroring
// filepath.Dir so persistence code need not import path/filepath.
func Dir(path string) string { return filepath.Dir(path) }
