package cvs

import (
	"fmt"

	"trustedcvs/internal/diff"
)

// LineOrigin attributes one line of a file's head revision to the
// revision (and author) that introduced it — `cvs annotate`.
type LineOrigin struct {
	Line   string // line content, including its newline if present
	Rev    uint64
	Author string
}

// Annotate computes per-line attribution for path's current head by
// replaying the verified revision history through the diff engine:
// every revision's content is checked out with full verification, so
// the blame output inherits the protocol's integrity guarantees.
//
// Removal revisions (dead) carry no content change and are skipped; a
// resurrected file's unchanged lines keep their original attribution.
func (c *Client) Annotate(path string) ([]LineOrigin, error) {
	history, err := c.Log(path) // newest first
	if err != nil {
		return nil, err
	}
	if len(history) == 0 {
		return nil, fmt.Errorf("%w: %s", ErrNoFile, path)
	}
	if history[0].Dead {
		return nil, fmt.Errorf("%w: %s (removed at revision %d)", ErrNoFile, path, history[0].Rev)
	}
	// Oldest first, skipping dead (removal) revisions.
	revs := make([]RevisionRecord, 0, len(history))
	for i := len(history) - 1; i >= 0; i-- {
		if !history[i].Dead {
			revs = append(revs, history[i])
		}
	}

	var origins []LineOrigin
	var prevLines []string
	for _, rec := range revs {
		got, err := c.CheckoutRev(rec.Rev, path)
		if err != nil {
			return nil, fmt.Errorf("cvs: annotate %s@%d: %w", path, rec.Rev, err)
		}
		lines := diff.SplitLines(string(got[path]))
		if origins == nil && prevLines == nil {
			origins = make([]LineOrigin, len(lines))
			for i, l := range lines {
				origins[i] = LineOrigin{Line: l, Rev: rec.Rev, Author: rec.Author}
			}
			prevLines = lines
			continue
		}
		patch := diff.Lines(prevLines, lines)
		next := make([]LineOrigin, 0, len(lines))
		oldIdx := 0
		for _, e := range patch.Edits {
			switch e.Op {
			case diff.Equal:
				for range e.Lines {
					next = append(next, origins[oldIdx])
					oldIdx++
				}
			case diff.Delete:
				oldIdx += len(e.Lines)
			case diff.Insert:
				for _, l := range e.Lines {
					next = append(next, LineOrigin{Line: l, Rev: rec.Rev, Author: rec.Author})
				}
			}
		}
		origins = next
		prevLines = lines
	}
	return origins, nil
}
