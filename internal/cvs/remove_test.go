package cvs

import (
	"errors"
	"strings"
	"testing"

	"trustedcvs/internal/vdb"
)

func TestRemoveAndResurrect(t *testing.T) {
	c, _, _ := newTestClient(t, "alice")
	if _, err := c.Commit(map[string][]byte{"f": []byte("v1\n")}, "add", nil); err != nil {
		t.Fatal(err)
	}
	res, err := c.Remove("drop f", "f")
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || res[0].Rev != 2 {
		t.Fatalf("remove results: %+v", res)
	}
	// Head checkout now fails like a missing file.
	if _, err := c.Checkout("f"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("checkout of removed file: %v", err)
	}
	// Status shows the tombstone.
	st, err := c.Status("f")
	if err != nil || !st[0].Found || !st[0].Dead || st[0].Rev != 2 {
		t.Fatalf("status: %+v %v", st, err)
	}
	// History — including the pre-removal content — stays verifiable.
	got, err := c.CheckoutRev(1, "f")
	if err != nil || string(got["f"]) != "v1\n" {
		t.Fatalf("historical checkout after removal: %q %v", got["f"], err)
	}
	log, err := c.Log("f")
	if err != nil || len(log) != 2 || !log[0].Dead || log[0].Rev != 2 {
		t.Fatalf("log after removal: %+v %v", log, err)
	}
	// A new commit resurrects the file at revision 3.
	cr, err := c.Commit(map[string][]byte{"f": []byte("reborn\n")}, "resurrect", nil)
	if err != nil || cr[0].Rev != 3 {
		t.Fatalf("resurrection: %+v %v", cr, err)
	}
	got, err = c.Checkout("f")
	if err != nil || string(got["f"]) != "reborn\n" {
		t.Fatalf("checkout after resurrection: %q %v", got["f"], err)
	}
}

func TestRemoveMissingAndDouble(t *testing.T) {
	c, _, _ := newTestClient(t, "alice")
	res, err := c.Remove("", "ghost")
	if err != nil || res[0].Rev != 0 {
		t.Fatalf("remove of missing file: %+v %v", res, err)
	}
	if _, err := c.Commit(map[string][]byte{"f": []byte("x\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Remove("", "f"); err != nil {
		t.Fatal(err)
	}
	// Removing again is a no-op, not a new revision.
	res, err = c.Remove("", "f")
	if err != nil || res[0].Rev != 0 {
		t.Fatalf("double remove: %+v %v", res, err)
	}
	st, _ := c.Status("f")
	if st[0].Rev != 2 {
		t.Fatalf("double remove bumped the revision: %+v", st)
	}
}

func TestRemoveOpValidation(t *testing.T) {
	db := vdb.New(0)
	for name, op := range map[string]vdb.Op{
		"no paths":  &RemoveOp{},
		"dup paths": &RemoveOp{Paths: []string{"a", "a"}},
		"bad path":  &RemoveOp{Paths: []string{""}},
	} {
		if _, _, err := db.Apply(op); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}

func TestDiffBetweenRevisions(t *testing.T) {
	c, _, _ := newTestClient(t, "alice")
	if _, err := c.Commit(map[string][]byte{"f": []byte("a\nb\nc\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(map[string][]byte{"f": []byte("a\nB\nc\nd\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	p, err := c.Diff("f", 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ins, del := p.Stats()
	if ins != 2 || del != 1 {
		t.Fatalf("diff stats: +%d -%d\n%s", ins, del, p)
	}
	if !strings.Contains(p.String(), "+B") || !strings.Contains(p.String(), "-b") {
		t.Fatalf("diff rendering:\n%s", p)
	}
	// Diff against head (revB = 0).
	pHead, err := c.Diff("f", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	if pHead.String() != p.String() {
		t.Fatal("diff to head should equal diff to rev 2")
	}
	// Identity diff.
	same, err := c.Diff("f", 2, 2)
	if err != nil || !same.IsIdentity() {
		t.Fatalf("self-diff: %v %v", same, err)
	}
}

func TestDiffMissingRevision(t *testing.T) {
	c, _, _ := newTestClient(t, "alice")
	if _, err := c.Commit(map[string][]byte{"f": []byte("x\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Diff("f", 5, 0); err == nil {
		t.Fatal("diff against a missing revision must fail")
	}
}
