package cvs

// The CVS ops are multi-key transactions over one interleaved key
// namespace (head/rev/tag records); hashing their individual keys
// across shards would tear a commit's atomicity. They therefore route
// by one constant shard key, colocating the whole CVS item space on a
// single shard of a Merkle forest: multi-file commits stay one
// single-shard operation (one ctr increment, one VO), exactly the
// atomicity argument of the paper's model. Cross-shard traffic is
// exercised by the key-value ops (vdb.CrossOp).

// repoShardKey is the constant routing key for every CVS op.
const repoShardKey = "cvs-store"

// ShardKey implements vdb.ShardKeyer.
func (o *CommitOp) ShardKey() string { return repoShardKey }

// ShardKey implements vdb.ShardKeyer.
func (o *CheckoutOp) ShardKey() string { return repoShardKey }

// ShardKey implements vdb.ShardKeyer.
func (o *LogOp) ShardKey() string { return repoShardKey }

// ShardKey implements vdb.ShardKeyer.
func (o *ListOp) ShardKey() string { return repoShardKey }

// ShardKey implements vdb.ShardKeyer.
func (o *TagOp) ShardKey() string { return repoShardKey }

// ShardKey implements vdb.ShardKeyer.
func (o *RemoveOp) ShardKey() string { return repoShardKey }
