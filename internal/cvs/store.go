package cvs

import (
	"fmt"
	"sync"
	"time"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/rcs"
)

// Store is the server-side unauthenticated content store. It keeps
// two structures: an RCS archive (head text + reverse deltas per
// file, the realistic CVS storage layout) for in-order revision
// chains, and a content-addressed blob store that retains every pushed
// revision — including conflicting (path, rev) pairs a forking server
// accumulates across diverged histories.
//
// Store trusts nothing and is trusted with nothing: clients re-hash
// every fetched revision against the authenticated records.
type Store struct {
	mu      sync.Mutex
	archive *rcs.Archive
	blobs   *rcs.BlobStore
}

// NewStore creates an empty content store.
func NewStore() *Store {
	return &Store{archive: rcs.NewArchive(), blobs: rcs.NewBlobStore()}
}

// Push stores content as revision rev of path. In-order revisions
// extend the delta-compressed RCS chain; out-of-order pushes (which
// only arise when the server itself maintains diverged histories) are
// retained in the blob store alone.
func (s *Store) Push(path string, rev uint64, content []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.blobs.Put(content)
	f, err := s.archive.File(path, true)
	if err != nil {
		return err
	}
	if rev == uint64(f.Revisions()+1) {
		// Metadata here is irrelevant — the authenticated revision
		// records are authoritative — so it is left zero.
		f.Commit(content, "", "", time.Time{})
	}
	return nil
}

// Fetch returns the content of path at rev whose hash matches. The
// blob store resolves it directly; the archive is the fallback for
// blobs pushed by older store versions.
func (s *Store) Fetch(path string, rev uint64, hash digest.Digest) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if b, err := s.blobs.Get(hash); err == nil {
		return b, nil
	}
	f, err := s.archive.File(path, false)
	if err != nil {
		return nil, fmt.Errorf("cvs: no content for %s@%d (%s)", path, rev, hash.Short())
	}
	content, _, err := f.At(int(rev))
	if err != nil {
		return nil, err
	}
	return content, nil
}

// FetchRev returns the archived content of path at rev without a hash
// (used by the CLI's history commands, which verify against the
// authenticated log afterwards).
func (s *Store) FetchRev(path string, rev uint64) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	f, err := s.archive.File(path, false)
	if err != nil {
		return nil, err
	}
	content, _, err := f.At(int(rev))
	return content, err
}

// Fork returns an independent copy for the adversary's partition
// attack: both forks serve the shared history, then diverge.
func (s *Store) Fork() *Store {
	s.mu.Lock()
	defer s.mu.Unlock()
	return &Store{archive: s.archive.Fork(), blobs: s.blobs.Clone()}
}
