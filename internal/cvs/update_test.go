package cvs

import (
	"strings"
	"testing"

	"trustedcvs/internal/diff"
)

// TestUpdateWorkflowCleanMerge plays the full CVS concurrent-edit
// story: both users edit from revision 1 in disjoint regions; the
// loser of the commit race updates, merges cleanly, and commits with
// the up-to-date check satisfied.
func TestUpdateWorkflowCleanMerge(t *testing.T) {
	a, b := twoClients(t)
	base := "top\nmiddle\nbottom\n"
	if _, err := a.Commit(map[string][]byte{"f": []byte(base)}, "r1", nil); err != nil {
		t.Fatal(err)
	}
	// Alice edits the top and wins the race.
	if _, err := a.Commit(map[string][]byte{"f": []byte("TOP\nmiddle\nbottom\n")}, "r2",
		map[string]uint64{"f": 1}); err != nil {
		t.Fatal(err)
	}
	// Bob edited the bottom, also from rev 1; his commit conflicts.
	bobLocal := []byte("top\nmiddle\nBOTTOM\n")
	if _, err := b.Commit(map[string][]byte{"f": bobLocal}, "r2b", map[string]uint64{"f": 1}); err != ErrConflict {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	// Bob updates: the merge is clean and contains both edits.
	up, err := b.Update("f", bobLocal, 1)
	if err != nil {
		t.Fatal(err)
	}
	if up.UpToDate || up.Conflicts != 0 || up.HeadRev != 2 {
		t.Fatalf("update: %+v", up)
	}
	if string(up.Merged) != "TOP\nmiddle\nBOTTOM\n" {
		t.Fatalf("merged: %q", up.Merged)
	}
	// Bob commits the merged result against the head revision.
	res, err := b.Commit(map[string][]byte{"f": up.Merged}, "merge", map[string]uint64{"f": up.HeadRev})
	if err != nil || res[0].Rev != 3 {
		t.Fatalf("merged commit: %+v %v", res, err)
	}
	got, err := a.Checkout("f")
	if err != nil || string(got["f"]) != "TOP\nmiddle\nBOTTOM\n" {
		t.Fatalf("final head: %q %v", got["f"], err)
	}
}

func TestUpdateConflict(t *testing.T) {
	a, b := twoClients(t)
	if _, err := a.Commit(map[string][]byte{"f": []byte("line\n")}, "r1", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(map[string][]byte{"f": []byte("alice\n")}, "r2", nil); err != nil {
		t.Fatal(err)
	}
	up, err := b.Update("f", []byte("bob\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if up.Conflicts != 1 {
		t.Fatalf("want 1 conflict: %+v\n%s", up, up.Merged)
	}
	if !diff.HasConflictMarkers(string(up.Merged)) {
		t.Fatalf("merged output lacks markers:\n%s", up.Merged)
	}
	if !strings.Contains(string(up.Merged), "bob\n") || !strings.Contains(string(up.Merged), "alice\n") {
		t.Fatalf("both sides must appear:\n%s", up.Merged)
	}
}

func TestUpdateUpToDate(t *testing.T) {
	a, _ := twoClients(t)
	if _, err := a.Commit(map[string][]byte{"f": []byte("x\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	up, err := a.Update("f", []byte("local edit\n"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if !up.UpToDate || string(up.Merged) != "local edit\n" {
		t.Fatalf("up-to-date update: %+v", up)
	}
}

func TestUpdateErrors(t *testing.T) {
	a, _ := twoClients(t)
	if _, err := a.Update("ghost", []byte("x"), 1); err == nil {
		t.Fatal("update of missing file must fail")
	}
	if _, err := a.Commit(map[string][]byte{"f": []byte("x\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Update("f", []byte("x"), 0); err == nil {
		t.Fatal("update without base revision must fail")
	}
	if _, err := a.Remove("", "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Update("f", []byte("x"), 1); err == nil {
		t.Fatal("update of removed file must fail")
	}
}
