package cvs

import (
	"fmt"
	"sort"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/rcs"
)

// StoreSnapshot is the persistent form of the content store: the
// unique blobs plus, per path, the ordered revision hashes of its RCS
// chain. Restore re-commits the chains, reproducing the delta
// structure deterministically.
type StoreSnapshot struct {
	Blobs [][]byte
	Files []FileChain
}

// FileChain records one path's in-order revision content hashes.
type FileChain struct {
	Path   string
	Hashes []digest.Digest
}

// Snapshot captures the store.
func (s *Store) Snapshot() (*StoreSnapshot, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := &StoreSnapshot{}
	seen := map[digest.Digest]bool{}
	addBlob := func(content []byte) {
		h := rcs.HashContent(content)
		if !seen[h] {
			seen[h] = true
			snap.Blobs = append(snap.Blobs, append([]byte(nil), content...))
		}
	}
	for _, path := range s.archive.Paths() {
		f, err := s.archive.File(path, false)
		if err != nil {
			return nil, err
		}
		chain := FileChain{Path: path}
		for rev := 1; rev <= f.Revisions(); rev++ {
			content, meta, err := f.At(rev)
			if err != nil {
				return nil, fmt.Errorf("cvs: snapshot %s@%d: %w", path, rev, err)
			}
			addBlob(content)
			chain.Hashes = append(chain.Hashes, meta.Hash)
		}
		snap.Files = append(snap.Files, chain)
	}
	// Include blobs that are not part of any archive chain (pushed out
	// of order under a fork, or superseded).
	extras := s.blobs.Digests()
	sort.Slice(extras, func(i, j int) bool { return extras[i].String() < extras[j].String() })
	for _, h := range extras {
		if !seen[h] {
			content, err := s.blobs.Get(h)
			if err != nil {
				return nil, err
			}
			seen[h] = true
			snap.Blobs = append(snap.Blobs, content)
		}
	}
	return snap, nil
}

// RestoreStore rebuilds a content store from a snapshot.
func RestoreStore(snap *StoreSnapshot) (*Store, error) {
	if snap == nil {
		return nil, fmt.Errorf("cvs: nil store snapshot")
	}
	s := NewStore()
	byHash := make(map[digest.Digest][]byte, len(snap.Blobs))
	for _, b := range snap.Blobs {
		byHash[rcs.HashContent(b)] = b
		s.blobs.Put(b)
	}
	for _, chain := range snap.Files {
		for i, h := range chain.Hashes {
			content, ok := byHash[h]
			if !ok {
				return nil, fmt.Errorf("cvs: restore %s@%d: blob %s missing", chain.Path, i+1, h.Short())
			}
			if err := s.Push(chain.Path, uint64(i+1), content); err != nil {
				return nil, err
			}
		}
	}
	return s, nil
}
