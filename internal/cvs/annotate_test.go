package cvs

import (
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"trustedcvs/internal/vdb"
)

// multiAuthorClient returns per-author clients over one shared session.
func multiAuthorClient(t *testing.T, authors ...string) map[string]*Client {
	t.Helper()
	db := vdb.New(0)
	store := NewStore()
	sess := vdb.NewSession(db)
	out := map[string]*Client{}
	for _, a := range authors {
		out[a] = NewClient(sess, store, a, fixedClock())
	}
	return out
}

func TestAnnotateBasic(t *testing.T) {
	cs := multiAuthorClient(t, "alice", "bob")
	if _, err := cs["alice"].Commit(map[string][]byte{"f": []byte("one\ntwo\nthree\n")}, "r1", nil); err != nil {
		t.Fatal(err)
	}
	// Bob replaces line two and appends a line.
	if _, err := cs["bob"].Commit(map[string][]byte{"f": []byte("one\nTWO\nthree\nfour\n")}, "r2", nil); err != nil {
		t.Fatal(err)
	}
	origins, err := cs["alice"].Annotate("f")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		line   string
		rev    uint64
		author string
	}{
		{"one\n", 1, "alice"},
		{"TWO\n", 2, "bob"},
		{"three\n", 1, "alice"},
		{"four\n", 2, "bob"},
	}
	if len(origins) != len(want) {
		t.Fatalf("origins: %+v", origins)
	}
	for i, w := range want {
		o := origins[i]
		if o.Line != w.line || o.Rev != w.rev || o.Author != w.author {
			t.Fatalf("line %d: %+v, want %+v", i, o, w)
		}
	}
}

func TestAnnotateSurvivesRemoval(t *testing.T) {
	cs := multiAuthorClient(t, "alice", "bob")
	if _, err := cs["alice"].Commit(map[string][]byte{"f": []byte("keep\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := cs["alice"].Remove("gone", "f"); err != nil {
		t.Fatal(err)
	}
	// Annotate of a dead file fails like checkout.
	if _, err := cs["alice"].Annotate("f"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("annotate of removed file: %v", err)
	}
	// Resurrect with the same first line plus one more.
	if _, err := cs["bob"].Commit(map[string][]byte{"f": []byte("keep\nnew\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	origins, err := cs["bob"].Annotate("f")
	if err != nil {
		t.Fatal(err)
	}
	if len(origins) != 2 {
		t.Fatalf("origins: %+v", origins)
	}
	if origins[0].Rev != 1 || origins[0].Author != "alice" {
		t.Fatalf("surviving line lost attribution across removal: %+v", origins[0])
	}
	if origins[1].Rev != 3 || origins[1].Author != "bob" {
		t.Fatalf("resurrection line: %+v", origins[1])
	}
}

func TestAnnotateMissingFile(t *testing.T) {
	cs := multiAuthorClient(t, "alice")
	if _, err := cs["alice"].Annotate("ghost"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("want ErrNoFile, got %v", err)
	}
}

// TestQuickAnnotateInvariants: for random edit histories, (1) the
// annotated lines reassemble exactly the head content, (2) every
// attribution points at a real revision, and (3) a line present since
// revision 1 and never replaced keeps attribution 1.
func TestQuickAnnotateInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		db := vdb.New(0)
		sess := vdb.NewSession(db)
		store := NewStore()
		authors := []string{"a", "b", "c"}
		clients := map[string]*Client{}
		for _, a := range authors {
			clients[a] = NewClient(sess, store, a, func() time.Time { return time.Unix(1, 0) })
		}
		// Sentinel first line never edited below.
		doc := []string{"sentinel\n"}
		for i := 0; i < 3+rng.Intn(5); i++ {
			doc = append(doc, fmt.Sprintf("l%d-%d\n", 0, i))
		}
		commit := func(author string) {
			content := strings.Join(doc, "")
			if _, err := clients[author].Commit(map[string][]byte{"f": []byte(content)}, "", nil); err != nil {
				t.Fatal(err)
			}
		}
		commit("a")
		revs := 1 + rng.Intn(6)
		for r := 2; r <= revs+1; r++ {
			// Random edits that never touch doc[0].
			for e := 0; e < 1+rng.Intn(3); e++ {
				switch {
				case len(doc) < 3 || rng.Intn(2) == 0:
					pos := 1 + rng.Intn(len(doc))
					nl := append([]string(nil), doc[:pos]...)
					nl = append(nl, fmt.Sprintf("l%d-%d\n", r, e))
					doc = append(nl, doc[pos:]...)
				default:
					pos := 1 + rng.Intn(len(doc)-1)
					doc = append(doc[:pos:pos], doc[pos+1:]...)
				}
			}
			commit(authors[rng.Intn(len(authors))])
		}
		origins, err := clients["a"].Annotate("f")
		if err != nil {
			t.Log(err)
			return false
		}
		var sb strings.Builder
		for _, o := range origins {
			sb.WriteString(o.Line)
			if o.Rev < 1 || o.Rev > uint64(revs+1) {
				t.Logf("bad rev %d", o.Rev)
				return false
			}
		}
		if sb.String() != strings.Join(doc, "") {
			t.Log("annotated lines do not reassemble the head")
			return false
		}
		if len(origins) == 0 || origins[0].Rev != 1 {
			t.Logf("sentinel misattributed: %+v", origins[0])
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
