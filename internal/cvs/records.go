// Package cvs implements the CVS semantics of the paper on top of the
// authenticated database: checkout and commit (Section 2.1 models them
// as read and update transactions), plus log, list and tag operations.
//
// Authenticated state (in internal/vdb, covered by the Merkle root and
// hence by every protocol) holds, per file, a head record and one
// record per revision; records carry the *content hash* of the
// revision. Revision content itself lives in the unauthenticated
// server-side store (internal/rcs): clients re-hash fetched content
// against the authenticated record, so content tampering or omission
// is always detectable.
package cvs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"trustedcvs/internal/digest"
)

// Key prefixes inside the authenticated database. The \x00 separator
// cannot appear in paths (Validate rejects it), so the key space is
// unambiguous and prefix ranges enumerate cleanly.
const (
	headPrefix = "f\x00"
	revPrefix  = "r\x00"
	tagPrefix  = "t\x00"
)

// ErrBadPath is returned for invalid repository paths.
var ErrBadPath = errors.New("cvs: invalid path")

// ErrBadRecord is returned when an authenticated record fails to
// decode. Since records are covered by the Merkle root, this can only
// happen if the users themselves committed garbage — or during
// development.
var ErrBadRecord = errors.New("cvs: malformed record")

// ValidatePath checks that a repository path is usable as a key
// component.
func ValidatePath(path string) error {
	if path == "" {
		return fmt.Errorf("%w: empty", ErrBadPath)
	}
	for i := 0; i < len(path); i++ {
		if path[i] == 0 {
			return fmt.Errorf("%w: %q contains NUL", ErrBadPath, path)
		}
	}
	return nil
}

// HeadKey is the authenticated key of a file's head record.
func HeadKey(path string) string { return headPrefix + path }

// RevKey is the authenticated key of one revision's record. Revisions
// are zero-padded so that lexicographic key order equals numeric order.
func RevKey(path string, rev uint64) string {
	return fmt.Sprintf("%s%s\x00%012d", revPrefix, path, rev)
}

// TagKey is the authenticated key pinning a (tag, path) pair to a
// revision.
func TagKey(tag, path string) string { return tagPrefix + tag + "\x00" + path }

// revRangeLo/revRangeHi bound the revision records of one path.
func revRangeLo(path string) string { return revPrefix + path + "\x00" }
func revRangeHi(path string) string { return revPrefix + path + "\x01" }

// headRangeLo/headRangeHi bound all head records.
func headRangeLo() string { return headPrefix }
func headRangeHi() string { return "f\x01" }

// tagRangeLo/tagRangeHi bound the records of one tag.
func tagRangeLo(tag string) string { return tagPrefix + tag + "\x00" }
func tagRangeHi(tag string) string { return tagPrefix + tag + "\x01" }

// HeadRecord is the authenticated head pointer of a file. Dead marks
// a removed file (CVS's "Attic"): its history remains checkable and a
// later commit resurrects it at the next revision number.
type HeadRecord struct {
	Rev  uint64
	Hash digest.Digest
	Dead bool
}

// EncodeHead serializes a head record deterministically.
func EncodeHead(h HeadRecord) []byte {
	b := make([]byte, 8+digest.Size+1)
	binary.BigEndian.PutUint64(b, h.Rev)
	copy(b[8:], h.Hash[:])
	if h.Dead {
		b[8+digest.Size] = 1
	}
	return b
}

// DecodeHead deserializes a head record.
func DecodeHead(b []byte) (HeadRecord, error) {
	if len(b) != 8+digest.Size+1 {
		return HeadRecord{}, fmt.Errorf("%w: head record length %d", ErrBadRecord, len(b))
	}
	var h HeadRecord
	h.Rev = binary.BigEndian.Uint64(b)
	copy(h.Hash[:], b[8:])
	switch b[8+digest.Size] {
	case 0:
	case 1:
		h.Dead = true
	default:
		return HeadRecord{}, fmt.Errorf("%w: head record dead flag %d", ErrBadRecord, b[8+digest.Size])
	}
	return h, nil
}

// RevisionRecord is the authenticated metadata of one committed
// revision. Dead marks the removal revision of a file.
type RevisionRecord struct {
	Rev      uint64
	Hash     digest.Digest
	Author   string
	TimeUnix int64
	Log      string
	Dead     bool
}

// EncodeRevision serializes a revision record deterministically.
func EncodeRevision(r RevisionRecord) []byte {
	b := make([]byte, 0, 8+digest.Size+1+8+8+len(r.Author)+8+len(r.Log))
	b = binary.BigEndian.AppendUint64(b, r.Rev)
	b = append(b, r.Hash[:]...)
	if r.Dead {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.BigEndian.AppendUint64(b, uint64(r.TimeUnix))
	b = binary.BigEndian.AppendUint64(b, uint64(len(r.Author)))
	b = append(b, r.Author...)
	b = binary.BigEndian.AppendUint64(b, uint64(len(r.Log)))
	b = append(b, r.Log...)
	return b
}

// DecodeRevision deserializes a revision record.
func DecodeRevision(b []byte) (RevisionRecord, error) {
	var r RevisionRecord
	errTrunc := fmt.Errorf("%w: truncated revision record", ErrBadRecord)
	if len(b) < 8+digest.Size+1+8+8 {
		return r, errTrunc
	}
	r.Rev = binary.BigEndian.Uint64(b)
	b = b[8:]
	copy(r.Hash[:], b[:digest.Size])
	b = b[digest.Size:]
	switch b[0] {
	case 0:
	case 1:
		r.Dead = true
	default:
		return r, fmt.Errorf("%w: revision record dead flag %d", ErrBadRecord, b[0])
	}
	b = b[1:]
	r.TimeUnix = int64(binary.BigEndian.Uint64(b))
	b = b[8:]
	alen := binary.BigEndian.Uint64(b)
	b = b[8:]
	if alen > uint64(len(b)) {
		return r, errTrunc
	}
	r.Author = string(b[:alen])
	b = b[alen:]
	if len(b) < 8 {
		return r, errTrunc
	}
	llen := binary.BigEndian.Uint64(b)
	b = b[8:]
	if uint64(len(b)) != llen {
		return r, fmt.Errorf("%w: revision record trailing length", ErrBadRecord)
	}
	r.Log = string(b)
	return r, nil
}
