package cvs

import (
	"encoding/gob"
	"fmt"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/vdb"
)

func init() {
	gob.Register(&CommitOp{})
	gob.Register(&CheckoutOp{})
	gob.Register(&LogOp{})
	gob.Register(&ListOp{})
	gob.Register(&TagOp{})
	gob.Register(&RemoveOp{})
	gob.Register(CommitAnswer{})
	gob.Register(CheckoutAnswer{})
	gob.Register(LogAnswer{})
	gob.Register(ListAnswer{})
	gob.Register(TagAnswer{})
	gob.Register(RemoveAnswer{})
}

// CommitFile names one file of a commit: its path, the content hash of
// the new revision, and the revision the committer based its edit on
// (0 = skip the up-to-date check, CVS's unconditional commit).
type CommitFile struct {
	Path    string
	Hash    digest.Digest
	BaseRev uint64
}

// CommitOp atomically commits a set of files: per file it bumps the
// head revision, writes the head record, and appends a revision
// record. Files whose BaseRev is stale are skipped and reported as
// conflicts (CVS's "up-to-date check failed"), leaving the rest of the
// commit intact.
//
// The whole commit is ONE operation of the paper's model — one ctr
// increment, one VO — which is what makes multi-file commits atomic
// under all three protocols.
type CommitOp struct {
	Files    []CommitFile
	Author   string
	Log      string
	TimeUnix int64
}

// CommitResult reports the outcome for one file of a CommitOp.
type CommitResult struct {
	Path     string
	Rev      uint64 // assigned revision; 0 on conflict
	Conflict bool   // BaseRev did not match the head at apply time
}

// CommitAnswer is the answer type of CommitOp.
type CommitAnswer struct {
	Results []CommitResult
}

// Apply implements vdb.Op.
func (o *CommitOp) Apply(tx *vdb.Tx) (any, error) {
	if len(o.Files) == 0 {
		return nil, fmt.Errorf("%w: commit with no files", vdb.ErrBadOp)
	}
	seen := make(map[string]bool, len(o.Files))
	for _, f := range o.Files {
		if err := ValidatePath(f.Path); err != nil {
			return nil, err
		}
		if f.Hash.IsZero() {
			return nil, fmt.Errorf("%w: commit of %q without content hash", vdb.ErrBadOp, f.Path)
		}
		if seen[f.Path] {
			return nil, fmt.Errorf("%w: duplicate path %q in commit", vdb.ErrBadOp, f.Path)
		}
		seen[f.Path] = true
	}
	ans := CommitAnswer{Results: make([]CommitResult, len(o.Files))}
	for i, f := range o.Files {
		raw, found, err := tx.Get(HeadKey(f.Path))
		if err != nil {
			return nil, err
		}
		var prev uint64
		if found {
			h, err := DecodeHead(raw)
			if err != nil {
				return nil, err
			}
			prev = h.Rev
		}
		if f.BaseRev != 0 && f.BaseRev != prev {
			ans.Results[i] = CommitResult{Path: f.Path, Conflict: true}
			continue
		}
		rev := prev + 1
		if err := tx.Put(HeadKey(f.Path), EncodeHead(HeadRecord{Rev: rev, Hash: f.Hash})); err != nil {
			return nil, err
		}
		rec := RevisionRecord{Rev: rev, Hash: f.Hash, Author: o.Author, TimeUnix: o.TimeUnix, Log: o.Log}
		if err := tx.Put(RevKey(f.Path, rev), EncodeRevision(rec)); err != nil {
			return nil, err
		}
		ans.Results[i] = CommitResult{Path: f.Path, Rev: rev}
	}
	return ans, nil
}

func (o *CommitOp) String() string { return fmt.Sprintf("commit(%d files)", len(o.Files)) }

// RemoveOp removes files (CVS `cvs remove` + commit): the head is
// marked dead at a new revision number, history remains fully
// checkable, and a later CommitOp resurrects the file at the next
// revision.
type RemoveOp struct {
	Paths    []string
	Author   string
	Log      string
	TimeUnix int64
}

// RemoveResult reports the outcome for one path of a RemoveOp.
type RemoveResult struct {
	Path string
	// Rev is the removal revision; 0 when the path did not exist (or
	// was already dead).
	Rev uint64
}

// RemoveAnswer is the answer type of RemoveOp.
type RemoveAnswer struct {
	Results []RemoveResult
}

// Apply implements vdb.Op.
func (o *RemoveOp) Apply(tx *vdb.Tx) (any, error) {
	if len(o.Paths) == 0 {
		return nil, fmt.Errorf("%w: remove with no paths", vdb.ErrBadOp)
	}
	seen := make(map[string]bool, len(o.Paths))
	for _, p := range o.Paths {
		if err := ValidatePath(p); err != nil {
			return nil, err
		}
		if seen[p] {
			return nil, fmt.Errorf("%w: duplicate path %q in remove", vdb.ErrBadOp, p)
		}
		seen[p] = true
	}
	ans := RemoveAnswer{Results: make([]RemoveResult, len(o.Paths))}
	for i, p := range o.Paths {
		ans.Results[i] = RemoveResult{Path: p}
		raw, found, err := tx.Get(HeadKey(p))
		if err != nil {
			return nil, err
		}
		if !found {
			continue
		}
		h, err := DecodeHead(raw)
		if err != nil {
			return nil, err
		}
		if h.Dead {
			continue
		}
		rev := h.Rev + 1
		if err := tx.Put(HeadKey(p), EncodeHead(HeadRecord{Rev: rev, Hash: h.Hash, Dead: true})); err != nil {
			return nil, err
		}
		rec := RevisionRecord{Rev: rev, Hash: h.Hash, Author: o.Author, TimeUnix: o.TimeUnix, Log: o.Log, Dead: true}
		if err := tx.Put(RevKey(p, rev), EncodeRevision(rec)); err != nil {
			return nil, err
		}
		ans.Results[i].Rev = rev
	}
	return ans, nil
}

func (o *RemoveOp) String() string { return fmt.Sprintf("remove(%d paths)", len(o.Paths)) }

// CheckoutOp reads the authenticated head (or tagged, or historical)
// records for a set of files. The content itself is fetched separately
// and verified against the returned hashes.
type CheckoutOp struct {
	Paths []string
	Rev   uint64 // >0: that revision for every path (Tag must be empty)
	Tag   string // nonempty: the revisions pinned by this tag
}

// FileStatus is the authenticated answer entry for one file. Dead
// reports a removed file (its history is still in the repository).
type FileStatus struct {
	Path  string
	Found bool
	Rev   uint64
	Hash  digest.Digest
	Dead  bool
}

// CheckoutAnswer is the answer type of CheckoutOp.
type CheckoutAnswer struct {
	Files []FileStatus
}

// Apply implements vdb.Op.
func (o *CheckoutOp) Apply(tx *vdb.Tx) (any, error) {
	if len(o.Paths) == 0 {
		return nil, fmt.Errorf("%w: checkout with no paths", vdb.ErrBadOp)
	}
	if o.Rev != 0 && o.Tag != "" {
		return nil, fmt.Errorf("%w: checkout with both rev and tag", vdb.ErrBadOp)
	}
	ans := CheckoutAnswer{Files: make([]FileStatus, len(o.Paths))}
	for i, p := range o.Paths {
		if err := ValidatePath(p); err != nil {
			return nil, err
		}
		var key string
		switch {
		case o.Tag != "":
			key = TagKey(o.Tag, p)
		case o.Rev != 0:
			key = RevKey(p, o.Rev)
		default:
			key = HeadKey(p)
		}
		raw, found, err := tx.Get(key)
		if err != nil {
			return nil, err
		}
		st := FileStatus{Path: p}
		if found {
			var rev uint64
			var hash digest.Digest
			var dead bool
			if o.Rev != 0 && o.Tag == "" {
				r, err := DecodeRevision(raw)
				if err != nil {
					return nil, err
				}
				rev, hash, dead = r.Rev, r.Hash, r.Dead
			} else {
				h, err := DecodeHead(raw)
				if err != nil {
					return nil, err
				}
				rev, hash, dead = h.Rev, h.Hash, h.Dead
			}
			st = FileStatus{Path: p, Found: true, Rev: rev, Hash: hash, Dead: dead}
		}
		ans.Files[i] = st
	}
	return ans, nil
}

func (o *CheckoutOp) String() string { return fmt.Sprintf("checkout(%d paths)", len(o.Paths)) }

// LogOp reads the full authenticated revision history of one file,
// oldest first.
type LogOp struct {
	Path string
}

// LogAnswer is the answer type of LogOp.
type LogAnswer struct {
	Revisions []RevisionRecord
}

// Apply implements vdb.Op.
func (o *LogOp) Apply(tx *vdb.Tx) (any, error) {
	if err := ValidatePath(o.Path); err != nil {
		return nil, err
	}
	var ans LogAnswer
	var decodeErr error
	err := tx.Range(revRangeLo(o.Path), revRangeHi(o.Path), func(_ string, raw []byte) bool {
		r, err := DecodeRevision(raw)
		if err != nil {
			decodeErr = err
			return false
		}
		ans.Revisions = append(ans.Revisions, r)
		return true
	})
	if err != nil {
		return nil, err
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	return ans, nil
}

func (o *LogOp) String() string { return fmt.Sprintf("log(%s)", o.Path) }

// ListOp enumerates file head records. Prefix, when set, restricts
// the listing to paths under it ("src/" lists one directory subtree).
type ListOp struct {
	Prefix string
}

// ListAnswer is the answer type of ListOp.
type ListAnswer struct {
	Files []FileStatus
}

// Apply implements vdb.Op.
func (o *ListOp) Apply(tx *vdb.Tx) (any, error) {
	lo, hi := headRangeLo(), headRangeHi()
	if o.Prefix != "" {
		if err := ValidatePath(o.Prefix); err != nil {
			return nil, err
		}
		lo = headPrefix + o.Prefix
		if up, ok := upperBound(o.Prefix); ok {
			hi = headPrefix + up
		}
		// An all-0xFF prefix has no finite successor; the global head
		// bound already covers it.
	}
	var ans ListAnswer
	var decodeErr error
	err := tx.Range(lo, hi, func(key string, raw []byte) bool {
		h, err := DecodeHead(raw)
		if err != nil {
			decodeErr = err
			return false
		}
		ans.Files = append(ans.Files, FileStatus{
			Path:  key[len(headPrefix):],
			Found: true,
			Rev:   h.Rev,
			Hash:  h.Hash,
			Dead:  h.Dead,
		})
		return true
	})
	if err != nil {
		return nil, err
	}
	if decodeErr != nil {
		return nil, decodeErr
	}
	return ans, nil
}

func (o *ListOp) String() string {
	if o.Prefix != "" {
		return fmt.Sprintf("list(%s*)", o.Prefix)
	}
	return "list"
}

// upperBound returns the smallest string greater than every string
// with the given prefix (false when no finite bound exists, i.e. the
// prefix is all 0xFF bytes).
func upperBound(prefix string) (string, bool) {
	b := []byte(prefix)
	for i := len(b) - 1; i >= 0; i-- {
		if b[i] != 0xFF {
			b[i]++
			return string(b[:i+1]), true
		}
	}
	return "", false
}

// TagOp pins the current head revision of each path under a symbolic
// tag (like `cvs tag`).
type TagOp struct {
	Tag   string
	Paths []string
}

// TagAnswer is the answer type of TagOp.
type TagAnswer struct {
	Tagged []FileStatus // the head revisions that were pinned
}

// Apply implements vdb.Op.
func (o *TagOp) Apply(tx *vdb.Tx) (any, error) {
	if o.Tag == "" || len(o.Paths) == 0 {
		return nil, fmt.Errorf("%w: tag needs a name and paths", vdb.ErrBadOp)
	}
	if err := ValidatePath(o.Tag); err != nil {
		return nil, fmt.Errorf("%w: bad tag name", vdb.ErrBadOp)
	}
	ans := TagAnswer{Tagged: make([]FileStatus, len(o.Paths))}
	for i, p := range o.Paths {
		if err := ValidatePath(p); err != nil {
			return nil, err
		}
		raw, found, err := tx.Get(HeadKey(p))
		if err != nil {
			return nil, err
		}
		if !found {
			ans.Tagged[i] = FileStatus{Path: p}
			continue
		}
		h, err := DecodeHead(raw)
		if err != nil {
			return nil, err
		}
		if err := tx.Put(TagKey(o.Tag, p), raw); err != nil {
			return nil, err
		}
		ans.Tagged[i] = FileStatus{Path: p, Found: true, Rev: h.Rev, Hash: h.Hash}
	}
	return ans, nil
}

func (o *TagOp) String() string { return fmt.Sprintf("tag(%s, %d paths)", o.Tag, len(o.Paths)) }
