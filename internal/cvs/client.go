package cvs

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"trustedcvs/internal/diff"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/rcs"
	"trustedcvs/internal/vdb"
)

// A Doer executes one authenticated operation against the untrusted
// server and fully verifies it before returning the (decoded) answer.
// The protocol user state machines (internal/core/proto*) bound to a
// transport implement Doer; so does the trusted-server baseline.
type Doer interface {
	Do(op vdb.Op) (any, error)
}

// A ContentTransfer moves revision content to and from the server's
// unauthenticated content store. Content is always re-verified against
// the authenticated hash on the way back, so this channel needs no
// protection of its own. Fetch carries the authenticated hash so the
// store can serve the right blob even when a malicious server keeps
// several diverged histories for the same (path, rev).
type ContentTransfer interface {
	Push(path string, rev uint64, content []byte) error
	Fetch(path string, rev uint64, hash digest.Digest) ([]byte, error)
}

// ErrContentTampered is returned when fetched content does not hash to
// the authenticated revision hash — a server integrity violation.
var ErrContentTampered = errors.New("cvs: fetched content does not match authenticated hash")

// ErrNoFile is returned when a checked-out path does not exist in the
// repository.
var ErrNoFile = errors.New("cvs: no such file")

// ErrConflict is returned when a commit's up-to-date check failed for
// at least one file.
var ErrConflict = errors.New("cvs: up-to-date check failed")

// Client is a verified CVS client: every repository operation goes
// through a Doer (which proves server honesty per operation) and every
// piece of content is re-hashed.
type Client struct {
	doer    Doer
	content ContentTransfer
	author  string
	now     func() time.Time
}

// NewClient builds a client for the given user name. now may be nil
// (wall clock); simulations pass a deterministic clock.
func NewClient(doer Doer, content ContentTransfer, author string, now func() time.Time) *Client {
	if now == nil {
		now = time.Now
	}
	return &Client{doer: doer, content: content, author: author, now: now}
}

// Commit commits the given files (path -> new content) in one atomic
// operation and uploads their content. baseRevs optionally carries the
// revision each edit was based on (CVS up-to-date check); paths absent
// from baseRevs are committed unconditionally.
func (c *Client) Commit(files map[string][]byte, logMsg string, baseRevs map[string]uint64) ([]CommitResult, error) {
	if len(files) == 0 {
		return nil, fmt.Errorf("%w: commit with no files", vdb.ErrBadOp)
	}
	paths := make([]string, 0, len(files))
	for p := range files {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	op := &CommitOp{Author: c.author, Log: logMsg, TimeUnix: c.now().Unix()}
	for _, p := range paths {
		op.Files = append(op.Files, CommitFile{
			Path:    p,
			Hash:    rcs.HashContent(files[p]),
			BaseRev: baseRevs[p],
		})
	}
	ans, err := c.doer.Do(op)
	if err != nil {
		return nil, err
	}
	ca, ok := ans.(CommitAnswer)
	if !ok {
		return nil, fmt.Errorf("cvs: commit returned %T", ans)
	}
	if len(ca.Results) != len(op.Files) {
		return nil, fmt.Errorf("cvs: commit answer has %d results for %d files", len(ca.Results), len(op.Files))
	}
	var conflict bool
	for _, r := range ca.Results {
		if r.Conflict {
			conflict = true
			continue
		}
		if err := c.content.Push(r.Path, r.Rev, files[r.Path]); err != nil {
			return ca.Results, fmt.Errorf("cvs: push content for %s@%d: %w", r.Path, r.Rev, err)
		}
	}
	if conflict {
		return ca.Results, ErrConflict
	}
	return ca.Results, nil
}

// Checkout fetches the head content of the given paths, verified
// end to end.
func (c *Client) Checkout(paths ...string) (map[string][]byte, error) {
	return c.checkout(&CheckoutOp{Paths: paths})
}

// CheckoutRev fetches the given revision of the given paths.
func (c *Client) CheckoutRev(rev uint64, paths ...string) (map[string][]byte, error) {
	return c.checkout(&CheckoutOp{Paths: paths, Rev: rev})
}

// CheckoutTag fetches the revisions pinned under tag.
func (c *Client) CheckoutTag(tag string, paths ...string) (map[string][]byte, error) {
	return c.checkout(&CheckoutOp{Paths: paths, Tag: tag})
}

func (c *Client) checkout(op *CheckoutOp) (map[string][]byte, error) {
	ans, err := c.doer.Do(op)
	if err != nil {
		return nil, err
	}
	ca, ok := ans.(CheckoutAnswer)
	if !ok {
		return nil, fmt.Errorf("cvs: checkout returned %T", ans)
	}
	out := make(map[string][]byte, len(ca.Files))
	for _, st := range ca.Files {
		if !st.Found {
			return nil, fmt.Errorf("%w: %s", ErrNoFile, st.Path)
		}
		if st.Dead && op.Rev == 0 && op.Tag == "" {
			return nil, fmt.Errorf("%w: %s (removed at revision %d)", ErrNoFile, st.Path, st.Rev)
		}
		content, err := c.content.Fetch(st.Path, st.Rev, st.Hash)
		if err != nil {
			return nil, fmt.Errorf("cvs: fetch %s@%d: %w", st.Path, st.Rev, err)
		}
		if err := rcs.CheckContent(content, st.Hash); err != nil {
			return nil, fmt.Errorf("%w: %s@%d", ErrContentTampered, st.Path, st.Rev)
		}
		out[st.Path] = content
	}
	return out, nil
}

// Status returns the authenticated head status of paths without
// fetching content.
func (c *Client) Status(paths ...string) ([]FileStatus, error) {
	ans, err := c.doer.Do(&CheckoutOp{Paths: paths})
	if err != nil {
		return nil, err
	}
	ca, ok := ans.(CheckoutAnswer)
	if !ok {
		return nil, fmt.Errorf("cvs: status returned %T", ans)
	}
	return ca.Files, nil
}

// Log returns the authenticated revision history of path, newest
// first (matching `cvs log`).
func (c *Client) Log(path string) ([]RevisionRecord, error) {
	ans, err := c.doer.Do(&LogOp{Path: path})
	if err != nil {
		return nil, err
	}
	la, ok := ans.(LogAnswer)
	if !ok {
		return nil, fmt.Errorf("cvs: log returned %T", ans)
	}
	out := make([]RevisionRecord, len(la.Revisions))
	for i, r := range la.Revisions {
		out[len(out)-1-i] = r
	}
	return out, nil
}

// List returns the authenticated head status of every file.
func (c *Client) List() ([]FileStatus, error) { return c.list("") }

// ListPrefix returns the authenticated head status of every file under
// the given path prefix (directory-style listing).
func (c *Client) ListPrefix(prefix string) ([]FileStatus, error) { return c.list(prefix) }

func (c *Client) list(prefix string) ([]FileStatus, error) {
	ans, err := c.doer.Do(&ListOp{Prefix: prefix})
	if err != nil {
		return nil, err
	}
	la, ok := ans.(ListAnswer)
	if !ok {
		return nil, fmt.Errorf("cvs: list returned %T", ans)
	}
	return la.Files, nil
}

// Remove removes files from the repository head (their history stays
// checkable and a later Commit resurrects them), in one atomic
// verified operation.
func (c *Client) Remove(logMsg string, paths ...string) ([]RemoveResult, error) {
	ans, err := c.doer.Do(&RemoveOp{Paths: paths, Author: c.author, Log: logMsg, TimeUnix: c.now().Unix()})
	if err != nil {
		return nil, err
	}
	ra, ok := ans.(RemoveAnswer)
	if !ok {
		return nil, fmt.Errorf("cvs: remove returned %T", ans)
	}
	return ra.Results, nil
}

// Diff returns the verified line diff of path between two revisions
// (revB == 0 means the head). Both sides are checked out with full
// verification before diffing locally.
func (c *Client) Diff(path string, revA, revB uint64) (*diff.Patch, error) {
	a, err := c.CheckoutRev(revA, path)
	if err != nil {
		return nil, fmt.Errorf("cvs: diff left side: %w", err)
	}
	var b map[string][]byte
	if revB == 0 {
		b, err = c.Checkout(path)
	} else {
		b, err = c.CheckoutRev(revB, path)
	}
	if err != nil {
		return nil, fmt.Errorf("cvs: diff right side: %w", err)
	}
	return diff.Strings(string(a[path]), string(b[path])), nil
}

// UpdateResult reports a CVS update (merge of the repository head
// into a locally edited file).
type UpdateResult struct {
	// Merged is the merge output; with conflicts it contains marker
	// lines that must be resolved before committing.
	Merged []byte
	// Conflicts is the number of conflict regions.
	Conflicts int
	// HeadRev is the repository head revision merged against; commit
	// the resolved result with BaseRev = HeadRev.
	HeadRev uint64
	// UpToDate is true when the local base already was the head (no
	// merge happened; Merged == local).
	UpToDate bool
}

// Update implements the `cvs update` workflow: the caller edited
// localContent starting from revision baseRev, someone else has
// committed since, and the repository head must be merged in (three-way
// merge, with conflict markers on overlap). Every revision involved is
// fetched with full verification.
func (c *Client) Update(path string, localContent []byte, baseRev uint64) (*UpdateResult, error) {
	if baseRev == 0 {
		return nil, fmt.Errorf("%w: update needs the base revision", vdb.ErrBadOp)
	}
	st, err := c.Status(path)
	if err != nil {
		return nil, err
	}
	if !st[0].Found || st[0].Dead {
		return nil, fmt.Errorf("%w: %s", ErrNoFile, path)
	}
	head := st[0].Rev
	if head == baseRev {
		return &UpdateResult{Merged: localContent, HeadRev: head, UpToDate: true}, nil
	}
	baseDoc, err := c.CheckoutRev(baseRev, path)
	if err != nil {
		return nil, fmt.Errorf("cvs: update base: %w", err)
	}
	headDoc, err := c.CheckoutRev(head, path)
	if err != nil {
		return nil, fmt.Errorf("cvs: update head: %w", err)
	}
	m := diff.Merge3(string(baseDoc[path]), string(localContent), string(headDoc[path]))
	return &UpdateResult{
		Merged:    []byte(m.Merged()),
		Conflicts: m.Conflicts,
		HeadRev:   head,
	}, nil
}

// Tag pins the current heads of paths under tag.
func (c *Client) Tag(tag string, paths ...string) ([]FileStatus, error) {
	ans, err := c.doer.Do(&TagOp{Tag: tag, Paths: paths})
	if err != nil {
		return nil, err
	}
	ta, ok := ans.(TagAnswer)
	if !ok {
		return nil, fmt.Errorf("cvs: tag returned %T", ans)
	}
	return ta.Tagged, nil
}
