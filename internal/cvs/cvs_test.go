package cvs

import (
	"errors"
	"testing"
	"time"

	"trustedcvs/internal/digest"
	"trustedcvs/internal/rcs"
	"trustedcvs/internal/vdb"
)

func fixedClock() func() time.Time {
	t := time.Date(2006, 4, 3, 12, 0, 0, 0, time.UTC)
	return func() time.Time { return t }
}

func newTestClient(t *testing.T, author string) (*Client, *vdb.DB, *Store) {
	t.Helper()
	db := vdb.New(0)
	store := NewStore()
	c := NewClient(vdb.NewSession(db), store, author, fixedClock())
	return c, db, store
}

// twoClients returns two clients sharing one server (db + store) and
// one verified session. A vdb.Session is single-user — it cannot track
// roots advanced by another session, which is exactly the gap the
// paper's protocols close (tested in internal/core/...). Sharing the
// session here isolates the CVS-semantics tests from that concern.
func twoClients(t *testing.T) (*Client, *Client) {
	t.Helper()
	db := vdb.New(0)
	store := NewStore()
	sess := vdb.NewSession(db)
	a := NewClient(sess, store, "alice", fixedClock())
	b := NewClient(sess, store, "bob", fixedClock())
	return a, b
}

func TestCommitCheckoutRoundTrip(t *testing.T) {
	c, _, _ := newTestClient(t, "alice")
	res, err := c.Commit(map[string][]byte{
		"src/main.go": []byte("package main\n"),
		"README":      []byte("hello\n"),
	}, "initial import", nil)
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if len(res) != 2 {
		t.Fatalf("results: %+v", res)
	}
	for _, r := range res {
		if r.Rev != 1 || r.Conflict {
			t.Fatalf("bad result: %+v", r)
		}
	}
	got, err := c.Checkout("src/main.go", "README")
	if err != nil {
		t.Fatalf("Checkout: %v", err)
	}
	if string(got["src/main.go"]) != "package main\n" || string(got["README"]) != "hello\n" {
		t.Fatalf("checkout contents: %q", got)
	}
}

func TestRevisionHistory(t *testing.T) {
	c, _, _ := newTestClient(t, "alice")
	for i, content := range []string{"v1\n", "v2\n", "v3\n"} {
		if _, err := c.Commit(map[string][]byte{"f": []byte(content)}, "rev", nil); err != nil {
			t.Fatalf("commit %d: %v", i+1, err)
		}
	}
	for rev, want := range map[uint64]string{1: "v1\n", 2: "v2\n", 3: "v3\n"} {
		got, err := c.CheckoutRev(rev, "f")
		if err != nil {
			t.Fatalf("CheckoutRev(%d): %v", rev, err)
		}
		if string(got["f"]) != want {
			t.Fatalf("rev %d = %q, want %q", rev, got["f"], want)
		}
	}
	log, err := c.Log("f")
	if err != nil {
		t.Fatalf("Log: %v", err)
	}
	if len(log) != 3 || log[0].Rev != 3 || log[2].Rev != 1 {
		t.Fatalf("log: %+v", log)
	}
	if log[0].Author != "alice" || log[0].Log != "rev" {
		t.Fatalf("log metadata: %+v", log[0])
	}
}

func TestMultiUserSharedRepo(t *testing.T) {
	a, b := twoClients(t)
	if _, err := a.Commit(map[string][]byte{"Common.h": []byte("#define X 1\n")}, "add header", nil); err != nil {
		t.Fatal(err)
	}
	got, err := b.Checkout("Common.h")
	if err != nil {
		t.Fatalf("bob checkout: %v", err)
	}
	if string(got["Common.h"]) != "#define X 1\n" {
		t.Fatalf("bob sees %q", got["Common.h"])
	}
	if _, err := b.Commit(map[string][]byte{"Common.h": []byte("#define X 2\n")}, "bump", nil); err != nil {
		t.Fatal(err)
	}
	got, err = a.Checkout("Common.h")
	if err != nil {
		t.Fatalf("alice checkout: %v", err)
	}
	if string(got["Common.h"]) != "#define X 2\n" {
		t.Fatalf("alice sees %q", got["Common.h"])
	}
}

func TestUpToDateCheck(t *testing.T) {
	a, b := twoClients(t)
	if _, err := a.Commit(map[string][]byte{"f": []byte("base\n")}, "r1", nil); err != nil {
		t.Fatal(err)
	}
	// Both base their edits on rev 1; alice lands first.
	if _, err := a.Commit(map[string][]byte{"f": []byte("alice\n")}, "r2", map[string]uint64{"f": 1}); err != nil {
		t.Fatal(err)
	}
	res, err := b.Commit(map[string][]byte{"f": []byte("bob\n")}, "r2b", map[string]uint64{"f": 1})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v (res %+v)", err, res)
	}
	if !res[0].Conflict {
		t.Fatalf("result should flag conflict: %+v", res)
	}
	// The repository still holds alice's revision.
	got, err := b.Checkout("f")
	if err != nil || string(got["f"]) != "alice\n" {
		t.Fatalf("head after conflict: %q %v", got["f"], err)
	}
}

func TestPartialConflictCommitsOtherFiles(t *testing.T) {
	a, b := twoClients(t)
	if _, err := a.Commit(map[string][]byte{"x": []byte("1\n"), "y": []byte("1\n")}, "base", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Commit(map[string][]byte{"x": []byte("2\n")}, "bump x", nil); err != nil {
		t.Fatal(err)
	}
	// Bob edits both based on rev 1: x conflicts, y commits.
	res, err := b.Commit(map[string][]byte{"x": []byte("bob\n"), "y": []byte("bob\n")},
		"both", map[string]uint64{"x": 1, "y": 1})
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("want ErrConflict, got %v", err)
	}
	byPath := map[string]CommitResult{}
	for _, r := range res {
		byPath[r.Path] = r
	}
	if !byPath["x"].Conflict || byPath["y"].Conflict {
		t.Fatalf("conflict flags: %+v", res)
	}
	got, err := a.Checkout("y")
	if err != nil || string(got["y"]) != "bob\n" {
		t.Fatalf("y after partial commit: %q %v", got["y"], err)
	}
}

func TestStatusAndList(t *testing.T) {
	c, _, _ := newTestClient(t, "alice")
	if _, err := c.Commit(map[string][]byte{"a": []byte("1\n"), "b": []byte("2\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	st, err := c.Status("a", "nope")
	if err != nil {
		t.Fatal(err)
	}
	if !st[0].Found || st[0].Rev != 1 {
		t.Fatalf("status a: %+v", st[0])
	}
	if st[1].Found {
		t.Fatalf("status nope: %+v", st[1])
	}
	files, err := c.List()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0].Path != "a" || files[1].Path != "b" {
		t.Fatalf("list: %+v", files)
	}
}

func TestListPrefix(t *testing.T) {
	c, _, _ := newTestClient(t, "alice")
	if _, err := c.Commit(map[string][]byte{
		"src/a.go":  []byte("a\n"),
		"src/b.go":  []byte("b\n"),
		"srcx.go":   []byte("x\n"),
		"docs/r.md": []byte("r\n"),
	}, "", nil); err != nil {
		t.Fatal(err)
	}
	files, err := c.ListPrefix("src/")
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 || files[0].Path != "src/a.go" || files[1].Path != "src/b.go" {
		t.Fatalf("prefix list: %+v", files)
	}
	// Prefix boundaries are exact: "src" (no slash) also matches
	// srcx.go.
	files, err = c.ListPrefix("src")
	if err != nil || len(files) != 3 {
		t.Fatalf("bare prefix: %+v %v", files, err)
	}
	// Unmatched prefix is empty, not an error.
	files, err = c.ListPrefix("nope/")
	if err != nil || len(files) != 0 {
		t.Fatalf("unmatched prefix: %+v %v", files, err)
	}
	// 0xFF edge: prefix whose upper bound rolls over.
	if _, err := c.Commit(map[string][]byte{"\xff\xff/end": []byte("e\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	files, err = c.ListPrefix("\xff\xff")
	if err != nil || len(files) != 1 || files[0].Path != "\xff\xff/end" {
		t.Fatalf("0xFF prefix: %+v %v", files, err)
	}
}

func TestTags(t *testing.T) {
	c, _, _ := newTestClient(t, "alice")
	if _, err := c.Commit(map[string][]byte{"f": []byte("v1\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Tag("RELEASE_1", "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Commit(map[string][]byte{"f": []byte("v2\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	got, err := c.CheckoutTag("RELEASE_1", "f")
	if err != nil {
		t.Fatalf("CheckoutTag: %v", err)
	}
	if string(got["f"]) != "v1\n" {
		t.Fatalf("tagged checkout = %q", got["f"])
	}
	head, err := c.Checkout("f")
	if err != nil || string(head["f"]) != "v2\n" {
		t.Fatalf("head = %q %v", head["f"], err)
	}
}

func TestCheckoutMissingFile(t *testing.T) {
	c, _, _ := newTestClient(t, "alice")
	if _, err := c.Checkout("ghost"); !errors.Is(err, ErrNoFile) {
		t.Fatalf("want ErrNoFile, got %v", err)
	}
}

func TestContentTamperDetected(t *testing.T) {
	// The store serves different bytes than the authenticated hash:
	// the client must refuse them.
	db := vdb.New(0)
	store := NewStore()
	evil := &tamperingStore{inner: store}
	c := NewClient(vdb.NewSession(db), evil, "alice", fixedClock())
	if _, err := c.Commit(map[string][]byte{"f": []byte("true\n")}, "", nil); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Checkout("f"); !errors.Is(err, ErrContentTampered) {
		t.Fatalf("want ErrContentTampered, got %v", err)
	}
}

type tamperingStore struct{ inner *Store }

func (s *tamperingStore) Push(path string, rev uint64, content []byte) error {
	return s.inner.Push(path, rev, content)
}

func (s *tamperingStore) Fetch(path string, rev uint64, hash digest.Digest) ([]byte, error) {
	b, err := s.inner.Fetch(path, rev, hash)
	if err != nil {
		return nil, err
	}
	b[0] ^= 0xFF
	return b, nil
}

func TestStorePushOrdering(t *testing.T) {
	s := NewStore()
	// Out-of-order pushes are retained (blob store) but do not extend
	// the RCS chain; the content stays fetchable by hash.
	if err := s.Push("f", 2, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if _, err := s.FetchRev("f", 2); err == nil {
		t.Fatal("archive must not contain an out-of-order revision")
	}
	got, err := s.Fetch("f", 2, rcs.HashContent([]byte("x")))
	if err != nil || string(got) != "x" {
		t.Fatalf("blob fetch after out-of-order push: %q %v", got, err)
	}
	// In-order pushes extend the archive.
	if err := s.Push("f", 1, []byte("first")); err != nil {
		t.Fatal(err)
	}
	if got, err := s.FetchRev("f", 1); err != nil || string(got) != "first" {
		t.Fatalf("archive fetch: %q %v", got, err)
	}
}

func TestStoreForkDiverges(t *testing.T) {
	s := NewStore()
	if err := s.Push("f", 1, []byte("shared")); err != nil {
		t.Fatal(err)
	}
	f := s.Fork()
	if err := f.Push("f", 2, []byte("forked")); err != nil {
		t.Fatal(err)
	}
	forkedHash := rcs.HashContent([]byte("forked"))
	if _, err := s.Fetch("f", 2, forkedHash); err == nil {
		t.Fatal("original store sees fork's push")
	}
	got, err := f.Fetch("f", 1, rcs.HashContent([]byte("shared")))
	if err != nil || string(got) != "shared" {
		t.Fatalf("fork lost shared content: %q %v", got, err)
	}
}

func TestRecordEncodings(t *testing.T) {
	h := HeadRecord{Rev: 42, Hash: rcs.HashContent([]byte("x"))}
	dec, err := DecodeHead(EncodeHead(h))
	if err != nil || dec != h {
		t.Fatalf("head round trip: %+v %v", dec, err)
	}
	if _, err := DecodeHead([]byte("short")); !errors.Is(err, ErrBadRecord) {
		t.Fatalf("short head: %v", err)
	}
	r := RevisionRecord{Rev: 7, Hash: rcs.HashContent([]byte("y")), Author: "alice", TimeUnix: 1144065600, Log: "fix\nnewline"}
	decR, err := DecodeRevision(EncodeRevision(r))
	if err != nil || decR != r {
		t.Fatalf("revision round trip: %+v %v", decR, err)
	}
	for _, bad := range [][]byte{nil, []byte("x"), EncodeRevision(r)[:20], append(EncodeRevision(r), 'x')} {
		if _, err := DecodeRevision(bad); !errors.Is(err, ErrBadRecord) {
			t.Fatalf("bad revision %q: %v", bad, err)
		}
	}
}

func TestValidatePath(t *testing.T) {
	if err := ValidatePath("src/a.go"); err != nil {
		t.Fatal(err)
	}
	if err := ValidatePath(""); !errors.Is(err, ErrBadPath) {
		t.Fatal("empty path must be rejected")
	}
	if err := ValidatePath("a\x00b"); !errors.Is(err, ErrBadPath) {
		t.Fatal("NUL path must be rejected")
	}
}

func TestBadOps(t *testing.T) {
	c, _, _ := newTestClient(t, "alice")
	if _, err := c.Commit(nil, "", nil); !errors.Is(err, vdb.ErrBadOp) {
		t.Fatalf("empty commit: %v", err)
	}
	db := vdb.New(0)
	for name, op := range map[string]vdb.Op{
		"no paths checkout": &CheckoutOp{},
		"rev+tag":           &CheckoutOp{Paths: []string{"f"}, Rev: 1, Tag: "T"},
		"empty tag":         &TagOp{Paths: []string{"f"}},
		"dup commit paths": &CommitOp{Files: []CommitFile{
			{Path: "f", Hash: rcs.HashContent(nil)},
			{Path: "f", Hash: rcs.HashContent(nil)},
		}},
		"zero hash commit": &CommitOp{Files: []CommitFile{{Path: "f"}}},
	} {
		if _, _, err := db.Apply(op); err == nil {
			t.Errorf("%s: want error", name)
		}
	}
}
