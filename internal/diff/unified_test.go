package diff

import (
	"fmt"
	"strings"
	"testing"
)

func TestUnifiedBasic(t *testing.T) {
	a := "one\ntwo\nthree\nfour\nfive\n"
	b := "one\nTWO\nthree\nfour\nfive\n"
	out := Strings(a, b).Unified("a.txt", "b.txt", 1)
	want := `--- a.txt
+++ b.txt
@@ -1,3 +1,3 @@
 one
-two
+TWO
 three
`
	if out != want {
		t.Fatalf("unified:\n%s\nwant:\n%s", out, want)
	}
}

func TestUnifiedTwoHunks(t *testing.T) {
	var sbA, sbB strings.Builder
	for i := 0; i < 20; i++ {
		fmt.Fprintf(&sbA, "line%02d\n", i)
		if i == 2 {
			sbB.WriteString("CHANGED-A\n")
		} else if i == 17 {
			sbB.WriteString("CHANGED-B\n")
		} else {
			fmt.Fprintf(&sbB, "line%02d\n", i)
		}
	}
	out := Strings(sbA.String(), sbB.String()).Unified("a", "b", 2)
	if got := strings.Count(out, "@@"); got != 4 { // 2 hunks × 2 markers
		t.Fatalf("want 2 hunks, markers=%d:\n%s", got, out)
	}
	for _, want := range []string{"-line02", "+CHANGED-A", "-line17", "+CHANGED-B", " line01", " line04"} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q:\n%s", want, out)
		}
	}
	// Far-apart context lines stay out of the hunks.
	if strings.Contains(out, " line09\n") {
		t.Fatalf("mid-file context leaked into a hunk:\n%s", out)
	}
}

func TestUnifiedMergesNearbyHunks(t *testing.T) {
	a := "a\nb\nc\nd\ne\n"
	b := "A\nb\nc\nd\nE\n"
	// With context 3 the two changes are close enough to share a hunk.
	out := Strings(a, b).Unified("x", "y", 3)
	if got := strings.Count(out, "@@"); got != 2 {
		t.Fatalf("want 1 merged hunk:\n%s", out)
	}
}

func TestUnifiedIdentity(t *testing.T) {
	out := Strings("same\n", "same\n").Unified("a", "b", 3)
	if strings.Contains(out, "@@") {
		t.Fatalf("identity diff has hunks:\n%s", out)
	}
}

func TestUnifiedHeaderCounts(t *testing.T) {
	// Pure insertion into an empty file.
	out := Strings("", "x\ny\n").Unified("a", "b", 3)
	if !strings.Contains(out, "@@ -1,0 +1,2 @@") {
		t.Fatalf("insertion header:\n%s", out)
	}
	// Pure deletion to empty.
	out = Strings("x\ny\n", "").Unified("a", "b", 3)
	if !strings.Contains(out, "@@ -1,2 +1,0 @@") {
		t.Fatalf("deletion header:\n%s", out)
	}
}
