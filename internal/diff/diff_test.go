package diff

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestSplitJoinRoundTrip(t *testing.T) {
	cases := []string{
		"",
		"\n",
		"a",
		"a\n",
		"a\nb",
		"a\nb\n",
		"\n\n\n",
		"line one\nline two\nno trailing",
	}
	for _, c := range cases {
		if got := JoinLines(SplitLines(c)); got != c {
			t.Errorf("round trip %q -> %q", c, got)
		}
	}
}

func TestSplitLinesShapes(t *testing.T) {
	if got := SplitLines(""); got != nil {
		t.Errorf("SplitLines(\"\") = %v", got)
	}
	if got := SplitLines("a\nb\n"); len(got) != 2 || got[0] != "a\n" || got[1] != "b\n" {
		t.Errorf("SplitLines = %q", got)
	}
	if got := SplitLines("a\nb"); len(got) != 2 || got[1] != "b" {
		t.Errorf("SplitLines without trailing newline = %q", got)
	}
}

func apply(t *testing.T, a, b string) {
	t.Helper()
	p := Strings(a, b)
	got, err := p.ApplyStrings(a)
	if err != nil {
		t.Fatalf("Apply(%q -> %q): %v", a, b, err)
	}
	if got != b {
		t.Fatalf("Apply(%q -> %q) = %q", a, b, got)
	}
	back, err := p.Invert().ApplyStrings(b)
	if err != nil {
		t.Fatalf("Invert().Apply(%q): %v", b, err)
	}
	if back != a {
		t.Fatalf("inverse patch: %q -> %q, want %q", b, back, a)
	}
}

func TestDiffApplyBasic(t *testing.T) {
	apply(t, "", "")
	apply(t, "", "a\nb\n")
	apply(t, "a\nb\n", "")
	apply(t, "a\nb\nc\n", "a\nx\nc\n")
	apply(t, "a\nb\nc\n", "a\nc\n")
	apply(t, "a\nc\n", "a\nb\nc\n")
	apply(t, "same\n", "same\n")
	apply(t, "x", "x\n") // trailing-newline change
	apply(t, "a\nb\nc\nd\ne\n", "e\nd\nc\nb\na\n")
}

func TestDiffMinimality(t *testing.T) {
	// Myers produces a minimal edit script; for these inputs the edit
	// distance is known.
	cases := []struct {
		a, b string
		want int // inserted + deleted lines
	}{
		{"a\nb\nc\n", "a\nb\nc\n", 0},
		{"a\nb\nc\n", "a\nx\nc\n", 2},
		{"a\nb\nc\n", "b\nc\n", 1},
		{"a\nb\nc\n", "a\nb\nc\nd\n", 1},
		{"a\nb\nc\nd\n", "b\nc\ne\n", 3},
	}
	for _, c := range cases {
		p := Strings(c.a, c.b)
		ins, del := p.Stats()
		if ins+del != c.want {
			t.Errorf("diff(%q,%q): %d edits, want %d\n%s", c.a, c.b, ins+del, c.want, p)
		}
	}
}

func TestIsIdentity(t *testing.T) {
	if !Strings("a\nb\n", "a\nb\n").IsIdentity() {
		t.Error("identical docs should give identity patch")
	}
	if Strings("a\n", "b\n").IsIdentity() {
		t.Error("different docs should not give identity patch")
	}
}

func TestApplyMismatch(t *testing.T) {
	p := Strings("a\nb\nc\n", "a\nx\nc\n")
	if _, err := p.ApplyStrings("a\nCHANGED\nc\n"); err == nil {
		t.Error("apply to mismatching base must fail")
	}
	if _, err := p.ApplyStrings("a\nb\nc\nextra\n"); err == nil {
		t.Error("apply with trailing unmatched lines must fail")
	}
	if _, err := p.ApplyStrings("a\nb\n"); err == nil {
		t.Error("apply to truncated base must fail")
	}
}

func TestPatchString(t *testing.T) {
	p := Strings("a\nb\n", "a\nc\n")
	s := p.String()
	for _, want := range []string{"=a", "-b", "+c"} {
		if !strings.Contains(s, want) {
			t.Errorf("patch rendering missing %q:\n%s", want, s)
		}
	}
}

func randomDoc(rng *rand.Rand, vocab int, maxLines int) string {
	n := rng.Intn(maxLines)
	var b strings.Builder
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "line-%d\n", rng.Intn(vocab))
	}
	return b.String()
}

func mutateDoc(rng *rand.Rand, doc string) string {
	lines := SplitLines(doc)
	for k := rng.Intn(5) + 1; k > 0; k-- {
		switch {
		case len(lines) == 0 || rng.Intn(3) == 0: // insert
			i := 0
			if len(lines) > 0 {
				i = rng.Intn(len(lines) + 1)
			}
			nl := append([]string(nil), lines[:i]...)
			nl = append(nl, fmt.Sprintf("new-%d\n", rng.Int()))
			lines = append(nl, lines[i:]...)
		case rng.Intn(2) == 0: // delete
			i := rng.Intn(len(lines))
			lines = append(lines[:i:i], lines[i+1:]...)
		default: // replace
			i := rng.Intn(len(lines))
			lines = append(append(append([]string(nil), lines[:i]...), fmt.Sprintf("rep-%d\n", rng.Int())), lines[i+1:]...)
		}
	}
	return JoinLines(lines)
}

// TestQuickDiffRoundTrip: for random document pairs, Apply(diff(a,b), a)
// == b and Invert round-trips — the exact contract rcs relies on.
func TestQuickDiffRoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomDoc(rng, 8, 60) // small vocabulary → many spurious matches
		var b string
		if rng.Intn(4) == 0 {
			b = randomDoc(rng, 8, 60)
		} else {
			b = mutateDoc(rng, a)
		}
		p := Lines(SplitLines(a), SplitLines(b))
		fwd, err := p.ApplyStrings(a)
		if err != nil || fwd != b {
			t.Logf("forward failed: %v", err)
			return false
		}
		back, err := p.Invert().ApplyStrings(b)
		if err != nil || back != a {
			t.Logf("reverse failed: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickDiffMinimalOnPrefixSuffix: diffs between documents sharing a
// long prefix and suffix must not touch the shared region.
func TestQuickDiffMinimalOnPrefixSuffix(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		shared := randomDoc(rng, 1000, 40)
		mid1 := randomDoc(rng, 1000, 5)
		mid2 := randomDoc(rng, 1000, 5)
		a := shared + mid1 + shared
		b := shared + mid2 + shared
		ins, del := Strings(a, b).Stats()
		return ins <= len(SplitLines(mid2)) && del <= len(SplitLines(mid1))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDiff100Lines(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	var doc strings.Builder
	for i := 0; i < 100; i++ {
		fmt.Fprintf(&doc, "line %d content %d\n", i, rng.Int())
	}
	a := doc.String()
	bDoc := mutateDoc(rng, a)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Strings(a, bDoc)
	}
}
