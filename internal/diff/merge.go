package diff

import (
	"strings"
)

// Merge performs a three-way line merge (diff3): base is the common
// ancestor, ours and theirs the two derived versions. Changes that
// touch disjoint regions of base combine cleanly; overlapping,
// non-identical changes produce conflict regions.
//
// This is the algorithm under the CVS `update` workflow: a committer
// whose up-to-date check failed merges the repository head (theirs)
// into its edit (ours) relative to the revision it started from
// (base).
type MergeResult struct {
	// Lines is the merged document. Conflicted regions appear between
	// marker lines (<<<<<<<, =======, >>>>>>>).
	Lines []string
	// Conflicts is the number of conflict regions.
	Conflicts int
}

// Merged returns the merged document as a string.
func (m *MergeResult) Merged() string { return JoinLines(m.Lines) }

// Clean reports whether the merge had no conflicts.
func (m *MergeResult) Clean() bool { return m.Conflicts == 0 }

// Conflict markers, one per line (newline included when rendered).
const (
	MarkerOurs   = "<<<<<<< ours"
	MarkerSep    = "======="
	MarkerTheirs = ">>>>>>> theirs"
)

// hunk is one contiguous change against the base: base lines
// [baseStart, baseEnd) are replaced by repl.
type hunk struct {
	baseStart, baseEnd int
	repl               []string
}

// hunks converts a base→derived patch into sorted hunks.
func hunks(p *Patch) []hunk {
	var out []hunk
	base := 0
	var cur *hunk
	flush := func() {
		if cur != nil {
			out = append(out, *cur)
			cur = nil
		}
	}
	for _, e := range p.Edits {
		switch e.Op {
		case Equal:
			flush()
			base += len(e.Lines)
		case Delete:
			if cur == nil {
				cur = &hunk{baseStart: base, baseEnd: base}
			}
			cur.baseEnd += len(e.Lines)
			base += len(e.Lines)
		case Insert:
			if cur == nil {
				cur = &hunk{baseStart: base, baseEnd: base}
			}
			cur.repl = append(cur.repl, e.Lines...)
		}
	}
	flush()
	return out
}

// regionLines materializes one side's content for base region [s, e):
// replacement lines of hunks inside the region plus untouched base
// lines between them. Hunks are guaranteed to lie within [s, e).
func regionLines(base []string, side []hunk, s, e int) []string {
	var out []string
	pos := s
	for _, h := range side {
		if h.baseEnd < s || h.baseStart > e {
			continue
		}
		out = append(out, base[pos:h.baseStart]...)
		out = append(out, h.repl...)
		pos = h.baseEnd
	}
	out = append(out, base[pos:e]...)
	return out
}

// MergeLines merges at the line level.
func MergeLines(base, ours, theirs []string) *MergeResult {
	ha := hunks(Lines(base, ours))
	hb := hunks(Lines(base, theirs))
	res := &MergeResult{}

	pos := 0 // current base line
	ia, ib := 0, 0
	for ia < len(ha) || ib < len(hb) {
		// Pick the next hunk start.
		nextA, nextB := 1<<62, 1<<62
		if ia < len(ha) {
			nextA = ha[ia].baseStart
		}
		if ib < len(hb) {
			nextB = hb[ib].baseStart
		}
		start := min(nextA, nextB)

		// Copy the stable prefix.
		res.Lines = append(res.Lines, base[pos:start]...)
		pos = start

		// Grow a merge region: union of all overlapping hunk chains
		// from both sides. Pure insertions (empty base range) at the
		// same point also group together.
		end := start
		var regA, regB []hunk
		for {
			grew := false
			for ia < len(ha) && overlaps(ha[ia], start, end) {
				regA = append(regA, ha[ia])
				end = max(end, ha[ia].baseEnd)
				ia++
				grew = true
			}
			for ib < len(hb) && overlaps(hb[ib], start, end) {
				regB = append(regB, hb[ib])
				end = max(end, hb[ib].baseEnd)
				ib++
				grew = true
			}
			if !grew {
				break
			}
		}

		oursLines := regionLines(base, regA, start, end)
		theirsLines := regionLines(base, regB, start, end)
		switch {
		case len(regB) == 0:
			res.Lines = append(res.Lines, oursLines...)
		case len(regA) == 0:
			res.Lines = append(res.Lines, theirsLines...)
		case sameLines(oursLines, theirsLines):
			res.Lines = append(res.Lines, oursLines...)
		default:
			res.Conflicts++
			res.Lines = append(res.Lines, MarkerOurs+"\n")
			res.Lines = append(res.Lines, oursLines...)
			res.Lines = append(res.Lines, MarkerSep+"\n")
			res.Lines = append(res.Lines, theirsLines...)
			res.Lines = append(res.Lines, MarkerTheirs+"\n")
		}
		pos = end
	}
	res.Lines = append(res.Lines, base[pos:]...)
	return res
}

// overlaps reports whether h intersects (or abuts, for insertions at
// the region edge) the region [s, e).
func overlaps(h hunk, s, e int) bool {
	if h.baseStart == h.baseEnd {
		// Pure insertion: groups with a region it touches.
		return h.baseStart >= s && h.baseStart <= e
	}
	return h.baseStart < e && h.baseEnd > s || (h.baseStart == s && e == s)
}

// Merge3 merges whole documents.
func Merge3(base, ours, theirs string) *MergeResult {
	return MergeLines(SplitLines(base), SplitLines(ours), SplitLines(theirs))
}

func sameLines(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// HasConflictMarkers reports whether a document still contains merge
// conflict markers (used to refuse committing unresolved merges).
func HasConflictMarkers(doc string) bool {
	for _, l := range SplitLines(doc) {
		t := strings.TrimSuffix(l, "\n")
		if t == MarkerOurs || t == MarkerSep || t == MarkerTheirs {
			return true
		}
	}
	return false
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
