package diff

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestMergeDisjointEdits(t *testing.T) {
	base := "a\nb\nc\nd\ne\n"
	ours := "A\nb\nc\nd\ne\n"   // edit line 1
	theirs := "a\nb\nc\nd\nE\n" // edit line 5
	m := Merge3(base, ours, theirs)
	if !m.Clean() {
		t.Fatalf("disjoint edits conflicted:\n%s", m.Merged())
	}
	if m.Merged() != "A\nb\nc\nd\nE\n" {
		t.Fatalf("merged: %q", m.Merged())
	}
}

func TestMergeOneSideOnly(t *testing.T) {
	base := "a\nb\nc\n"
	ours := "a\nX\nc\n"
	m := Merge3(base, ours, base)
	if !m.Clean() || m.Merged() != ours {
		t.Fatalf("ours-only merge: %q (%d conflicts)", m.Merged(), m.Conflicts)
	}
	m = Merge3(base, base, ours)
	if !m.Clean() || m.Merged() != ours {
		t.Fatalf("theirs-only merge: %q", m.Merged())
	}
	m = Merge3(base, base, base)
	if !m.Clean() || m.Merged() != base {
		t.Fatalf("no-op merge: %q", m.Merged())
	}
}

func TestMergeIdenticalChanges(t *testing.T) {
	base := "a\nb\nc\n"
	both := "a\nX\nc\n"
	m := Merge3(base, both, both)
	if !m.Clean() || m.Merged() != both {
		t.Fatalf("identical changes should merge cleanly: %q (%d)", m.Merged(), m.Conflicts)
	}
}

func TestMergeConflict(t *testing.T) {
	base := "a\nb\nc\n"
	ours := "a\nOURS\nc\n"
	theirs := "a\nTHEIRS\nc\n"
	m := Merge3(base, ours, theirs)
	if m.Clean() || m.Conflicts != 1 {
		t.Fatalf("want 1 conflict, got %d:\n%s", m.Conflicts, m.Merged())
	}
	doc := m.Merged()
	for _, want := range []string{MarkerOurs, "OURS", MarkerSep, "THEIRS", MarkerTheirs} {
		if !strings.Contains(doc, want) {
			t.Fatalf("missing %q in:\n%s", want, doc)
		}
	}
	if !HasConflictMarkers(doc) {
		t.Fatal("HasConflictMarkers should see the markers")
	}
	// First and last lines survive outside the conflict.
	if !strings.HasPrefix(doc, "a\n") || !strings.HasSuffix(doc, "c\n") {
		t.Fatalf("context lost:\n%s", doc)
	}
}

func TestMergeBothDelete(t *testing.T) {
	base := "a\nb\nc\n"
	edited := "a\nc\n"
	m := Merge3(base, edited, edited)
	if !m.Clean() || m.Merged() != edited {
		t.Fatalf("identical deletions: %q (%d)", m.Merged(), m.Conflicts)
	}
}

func TestMergeDeleteVsEdit(t *testing.T) {
	base := "a\nb\nc\n"
	ours := "a\nc\n"       // deleted b
	theirs := "a\nB!\nc\n" // edited b
	m := Merge3(base, ours, theirs)
	if m.Clean() {
		t.Fatalf("delete-vs-edit must conflict:\n%s", m.Merged())
	}
}

func TestMergeInsertionsAtSamePoint(t *testing.T) {
	base := "a\nz\n"
	ours := "a\nours\nz\n"
	theirs := "a\ntheirs\nz\n"
	m := Merge3(base, ours, theirs)
	if m.Clean() {
		t.Fatalf("same-point insertions must conflict:\n%s", m.Merged())
	}
}

func TestMergeAppendsBothEnds(t *testing.T) {
	base := "m\n"
	ours := "top\nm\n"
	theirs := "m\nbottom\n"
	m := Merge3(base, ours, theirs)
	if !m.Clean() || m.Merged() != "top\nm\nbottom\n" {
		t.Fatalf("merge: %q (%d)", m.Merged(), m.Conflicts)
	}
}

func TestMergeEmptyBase(t *testing.T) {
	m := Merge3("", "ours\n", "theirs\n")
	if m.Clean() {
		t.Fatalf("both creating different content must conflict:\n%s", m.Merged())
	}
	m = Merge3("", "same\n", "same\n")
	if !m.Clean() || m.Merged() != "same\n" {
		t.Fatalf("identical creations: %q", m.Merged())
	}
}

func TestHasConflictMarkersNegative(t *testing.T) {
	if HasConflictMarkers("normal\ntext\n") {
		t.Fatal("false positive")
	}
	// A line merely containing (not equal to) a marker is fine.
	if HasConflictMarkers("x " + MarkerSep + "\n") {
		t.Fatal("marker must match the whole line")
	}
}

// TestQuickMergeLaws pins diff3's algebraic laws on random documents:
// merge(b, x, b) == x, merge(b, b, x) == x, merge(b, x, x) == x, and
// clean merges of disjoint single-line edits contain both edits.
func TestQuickMergeLaws(t *testing.T) {
	gen := func(rng *rand.Rand, n int) string {
		var sb strings.Builder
		for i := 0; i < n; i++ {
			fmt.Fprintf(&sb, "line-%d-%d\n", i, rng.Intn(5))
		}
		return sb.String()
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		base := gen(rng, 2+rng.Intn(30))
		x := mutateDoc(rng, base)
		if m := Merge3(base, x, base); !m.Clean() || m.Merged() != x {
			t.Logf("merge(b,x,b) != x")
			return false
		}
		if m := Merge3(base, base, x); !m.Clean() || m.Merged() != x {
			t.Logf("merge(b,b,x) != x")
			return false
		}
		if m := Merge3(base, x, x); !m.Clean() || m.Merged() != x {
			t.Logf("merge(b,x,x) != x")
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickMergeDisjointRegions: edits confined to opposite halves of
// a sufficiently large base always merge cleanly with both edits
// present.
func TestQuickMergeDisjointRegions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var lines []string
		for i := 0; i < 40; i++ {
			lines = append(lines, fmt.Sprintf("l%02d\n", i))
		}
		base := strings.Join(lines, "")
		oursIdx := rng.Intn(15)        // edit in the top half
		theirsIdx := 25 + rng.Intn(15) // edit in the bottom half
		ours := strings.Replace(base, fmt.Sprintf("l%02d\n", oursIdx), "OURS\n", 1)
		theirs := strings.Replace(base, fmt.Sprintf("l%02d\n", theirsIdx), "THEIRS\n", 1)
		m := Merge3(base, ours, theirs)
		return m.Clean() &&
			strings.Contains(m.Merged(), "OURS\n") &&
			strings.Contains(m.Merged(), "THEIRS\n")
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
