package diff

import (
	"fmt"
	"strings"
)

// Unified renders the patch in unified diff format (like `diff -u` /
// `cvs diff -u`): file headers, @@ hunk headers, and up to context
// lines of surrounding equal text per hunk.
func (p *Patch) Unified(nameA, nameB string, context int) string {
	if context < 0 {
		context = 0
	}
	type line struct {
		op   Op
		text string
	}
	var lines []line
	for _, e := range p.Edits {
		for _, l := range e.Lines {
			lines = append(lines, line{e.Op, l})
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "--- %s\n+++ %s\n", nameA, nameB)

	aPos, bPos := 1, 1 // 1-based positions in each document
	i := 0
	for i < len(lines) {
		// Skip the equal run before the next change.
		start := i
		for i < len(lines) && lines[i].op == Equal {
			i++
		}
		if i == len(lines) {
			break
		}
		// Rewind to include leading context.
		lead := i - start
		if lead > context {
			lead = context
		}
		skipped := (i - start) - lead
		aPos += skipped
		bPos += skipped
		hunkStart := i - lead

		// Extend the hunk: changes plus equal runs shorter than
		// 2*context that would otherwise split hunks needlessly.
		j := i
		for j < len(lines) {
			for j < len(lines) && lines[j].op != Equal {
				j++
			}
			eq := j
			for eq < len(lines) && lines[eq].op == Equal {
				eq++
			}
			if eq == len(lines) || eq-j > 2*context {
				// Close with trailing context.
				trail := eq - j
				if trail > context {
					trail = context
				}
				j += trail
				break
			}
			j = eq
		}

		// Emit the hunk.
		aCount, bCount := 0, 0
		for _, l := range lines[hunkStart:j] {
			switch l.op {
			case Equal:
				aCount++
				bCount++
			case Delete:
				aCount++
			case Insert:
				bCount++
			}
		}
		fmt.Fprintf(&b, "@@ -%d,%d +%d,%d @@\n", aPos, aCount, bPos, bCount)
		for _, l := range lines[hunkStart:j] {
			switch l.op {
			case Equal:
				b.WriteByte(' ')
			case Delete:
				b.WriteByte('-')
			case Insert:
				b.WriteByte('+')
			}
			b.WriteString(strings.TrimSuffix(l.text, "\n"))
			b.WriteByte('\n')
		}
		aPos += aCount
		bPos += bCount
		i = j
	}
	return b.String()
}
