// Package diff implements a line-oriented diff (Myers' O(ND) greedy
// algorithm) and a patch representation with forward and reverse
// application. It is the delta engine under internal/rcs, which stores
// each file's head revision in full and earlier revisions as reverse
// deltas — the storage scheme of the CVS/RCS systems the paper models.
package diff

import (
	"errors"
	"fmt"
	"strings"
)

// Op is the kind of a hunk operation.
type Op byte

const (
	// Equal lines are present in both versions.
	Equal Op = '='
	// Delete lines are present only in the old version.
	Delete Op = '-'
	// Insert lines are present only in the new version.
	Insert Op = '+'
)

// Edit is one run of consecutive lines sharing an operation.
type Edit struct {
	Op    Op
	Lines []string
}

// Patch is an ordered list of edits transforming an old document into a
// new one.
type Patch struct {
	Edits []Edit
}

// ErrPatchMismatch is returned when a patch's context does not match
// the document it is applied to.
var ErrPatchMismatch = errors.New("diff: patch does not match document")

// SplitLines splits a document into lines, keeping a trailing final
// line even when the document does not end in a newline. The empty
// document has zero lines.
func SplitLines(s string) []string {
	if s == "" {
		return nil
	}
	lines := strings.Split(s, "\n")
	if lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
		for i := range lines {
			lines[i] += "\n"
		}
		return lines
	}
	for i := 0; i < len(lines)-1; i++ {
		lines[i] += "\n"
	}
	return lines
}

// JoinLines is the inverse of SplitLines.
func JoinLines(lines []string) string {
	return strings.Join(lines, "")
}

// Lines computes a minimal line diff from a to b using Myers'
// algorithm.
func Lines(a, b []string) *Patch {
	n, m := len(a), len(b)
	max := n + m
	if max == 0 {
		return &Patch{}
	}
	// v[k] = furthest x on diagonal k; offset by max.
	v := make([]int, 2*max+1)
	// trace keeps a copy of v per d for backtracking.
	var trace [][]int

	var dFound = -1
outer:
	for d := 0; d <= max; d++ {
		trace = append(trace, append([]int(nil), v...))
		for k := -d; k <= d; k += 2 {
			var x int
			if k == -d || (k != d && v[max+k-1] < v[max+k+1]) {
				x = v[max+k+1] // move down (insert from b)
			} else {
				x = v[max+k-1] + 1 // move right (delete from a)
			}
			y := x - k
			for x < n && y < m && a[x] == b[y] {
				x++
				y++
			}
			v[max+k] = x
			if x >= n && y >= m {
				dFound = d
				break outer
			}
		}
	}
	if dFound < 0 {
		// At d = n+m the trivial all-delete/all-insert path always
		// reaches (n, m), so the search cannot fail for any input.
		//lint:ignore panicfree unreachable algorithmic invariant: d = n+m always reaches the end
		panic("diff: Myers did not terminate")
	}

	// Backtrack from (n, m) to (0, 0).
	type step struct {
		op    Op
		aLine int // index into a for Equal/Delete
		bLine int // index into b for Insert
	}
	var steps []step
	x, y := n, m
	for d := dFound; d > 0; d-- {
		vPrev := trace[d]
		k := x - y
		var prevK int
		if k == -d || (k != d && vPrev[max+k-1] < vPrev[max+k+1]) {
			prevK = k + 1
		} else {
			prevK = k - 1
		}
		prevX := vPrev[max+prevK]
		prevY := prevX - prevK
		for x > prevX && y > prevY {
			x--
			y--
			steps = append(steps, step{Equal, x, y})
		}
		if prevK == k+1 {
			y--
			steps = append(steps, step{Insert, -1, y})
		} else {
			x--
			steps = append(steps, step{Delete, x, -1})
		}
	}
	for x > 0 && y > 0 {
		x--
		y--
		steps = append(steps, step{Equal, x, y})
	}

	// steps is reversed; fold into runs.
	p := &Patch{}
	for i := len(steps) - 1; i >= 0; i-- {
		s := steps[i]
		var line string
		switch s.op {
		case Insert:
			line = b[s.bLine]
		default:
			line = a[s.aLine]
		}
		if n := len(p.Edits); n > 0 && p.Edits[n-1].Op == s.op {
			p.Edits[n-1].Lines = append(p.Edits[n-1].Lines, line)
		} else {
			p.Edits = append(p.Edits, Edit{Op: s.op, Lines: []string{line}})
		}
	}
	return p
}

// Strings diffs two documents by line.
func Strings(a, b string) *Patch {
	return Lines(SplitLines(a), SplitLines(b))
}

// Apply transforms old (the "a" side) into the "b" side. It verifies
// Equal and Delete context against old and fails with ErrPatchMismatch
// on divergence.
func (p *Patch) Apply(old []string) ([]string, error) {
	var out []string
	i := 0
	for _, e := range p.Edits {
		switch e.Op {
		case Equal, Delete:
			for _, want := range e.Lines {
				if i >= len(old) || old[i] != want {
					return nil, fmt.Errorf("%w: at line %d", ErrPatchMismatch, i+1)
				}
				if e.Op == Equal {
					out = append(out, old[i])
				}
				i++
			}
		case Insert:
			out = append(out, e.Lines...)
		default:
			return nil, fmt.Errorf("diff: unknown op %q", e.Op)
		}
	}
	if i != len(old) {
		return nil, fmt.Errorf("%w: %d trailing unmatched lines", ErrPatchMismatch, len(old)-i)
	}
	return out, nil
}

// Invert returns the reverse patch: applying the result to the "b" side
// yields the "a" side. This is how rcs stores reverse deltas.
func (p *Patch) Invert() *Patch {
	inv := &Patch{Edits: make([]Edit, len(p.Edits))}
	for i, e := range p.Edits {
		ne := Edit{Op: e.Op, Lines: e.Lines}
		switch e.Op {
		case Delete:
			ne.Op = Insert
		case Insert:
			ne.Op = Delete
		}
		inv.Edits[i] = ne
	}
	return inv
}

// ApplyStrings is Apply for whole documents.
func (p *Patch) ApplyStrings(old string) (string, error) {
	lines, err := p.Apply(SplitLines(old))
	if err != nil {
		return "", err
	}
	return JoinLines(lines), nil
}

// Stats returns the number of inserted and deleted lines.
func (p *Patch) Stats() (inserted, deleted int) {
	for _, e := range p.Edits {
		switch e.Op {
		case Insert:
			inserted += len(e.Lines)
		case Delete:
			deleted += len(e.Lines)
		}
	}
	return inserted, deleted
}

// IsIdentity reports whether the patch makes no changes.
func (p *Patch) IsIdentity() bool {
	ins, del := p.Stats()
	return ins == 0 && del == 0
}

// String renders the patch in a unified-diff-like format (without
// hunk headers), for logs and the CLI.
func (p *Patch) String() string {
	var b strings.Builder
	for _, e := range p.Edits {
		for _, l := range e.Lines {
			b.WriteByte(byte(e.Op))
			b.WriteString(strings.TrimSuffix(l, "\n"))
			b.WriteByte('\n')
		}
	}
	return b.String()
}
