package diff

import "testing"

// FuzzDiffPatch checks the delta algebra the version store depends on,
// for arbitrary string pairs: applying diff(a,b) to a must reproduce b
// exactly, and the inverted patch must take b back to a — the reverse
// deltas stored per version are exactly these inverses.
func FuzzDiffPatch(f *testing.F) {
	f.Add("", "")
	f.Add("a\nb\nc\n", "a\nx\nc\n")
	f.Add("line1\nline2\n", "line1\nline2\nline3\n")
	f.Add("x", "x\ny")
	f.Add("shared prefix\nmid\nshared suffix", "shared prefix\nshared suffix")
	f.Fuzz(func(t *testing.T, a, b string) {
		p := Strings(a, b)
		got, err := p.ApplyStrings(a)
		if err != nil {
			t.Fatalf("diff(a,b) failed to apply to a: %v", err)
		}
		if got != b {
			t.Fatalf("apply(diff(a,b), a) = %q, want %q", got, b)
		}
		back, err := p.Invert().ApplyStrings(b)
		if err != nil {
			t.Fatalf("invert(diff(a,b)) failed to apply to b: %v", err)
		}
		if back != a {
			t.Fatalf("apply(invert(diff(a,b)), b) = %q, want %q", back, a)
		}
	})
}
