// Package workspace implements the verified working copy: a local
// directory bound to a Trusted CVS repository, with per-file base
// revisions tracked in a metadata file — the `cvs checkout` sandbox
// model. All repository interaction goes through the verified client,
// so everything on disk arrived with a proof; the workspace adds the
// bookkeeping that makes `status`, `update` (three-way merge) and
// `commit` (up-to-date checks, conflict-marker refusal) work like the
// real tool.
package workspace

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"trustedcvs/internal/cvs"
	"trustedcvs/internal/diff"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/rcs"
)

// MetaFile is the workspace metadata file, stored inside the
// workspace directory.
const MetaFile = ".tcvs-workspace"

// ErrUnsafePath is returned for repository paths that would escape the
// workspace directory.
var ErrUnsafePath = errors.New("workspace: unsafe path")

// ErrConflictMarkers is returned by Commit when a file still contains
// unresolved merge conflict markers.
var ErrConflictMarkers = errors.New("workspace: unresolved conflict markers")

// ErrNotTracked is returned when operating on a file the workspace
// does not track.
var ErrNotTracked = errors.New("workspace: file not tracked")

// entry is the tracked state of one file: the revision and content
// hash it was based on at checkout/update/commit time.
type entry struct {
	Rev  uint64
	Hash digest.Digest
}

// Workspace is a working copy rooted at a directory.
type Workspace struct {
	dir  string
	repo *cvs.Client
	meta map[string]entry
}

// Open binds dir (created if missing) to the repository client,
// loading existing metadata.
func Open(dir string, repo *cvs.Client) (*Workspace, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &Workspace{dir: dir, repo: repo, meta: map[string]entry{}}
	raw, err := os.ReadFile(filepath.Join(dir, MetaFile))
	if errors.Is(err, os.ErrNotExist) {
		return w, nil
	}
	if err != nil {
		return nil, err
	}
	if err := gob.NewDecoder(bytes.NewReader(raw)).Decode(&w.meta); err != nil {
		return nil, fmt.Errorf("workspace: corrupt metadata: %w", err)
	}
	return w, nil
}

// Dir returns the workspace root.
func (w *Workspace) Dir() string { return w.dir }

// Tracked returns the tracked repository paths, sorted.
func (w *Workspace) Tracked() []string {
	out := make([]string, 0, len(w.meta))
	for p := range w.meta {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

func (w *Workspace) save() error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(w.meta); err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(w.dir, MetaFile), buf.Bytes(), 0o644)
}

// fsPath maps a repository path onto the workspace, refusing escapes.
func (w *Workspace) fsPath(repoPath string) (string, error) {
	if repoPath == "" || strings.HasPrefix(repoPath, "/") {
		return "", fmt.Errorf("%w: %q", ErrUnsafePath, repoPath)
	}
	clean := filepath.Clean(filepath.FromSlash(repoPath))
	if clean == ".." || strings.HasPrefix(clean, ".."+string(filepath.Separator)) || filepath.IsAbs(clean) {
		return "", fmt.Errorf("%w: %q", ErrUnsafePath, repoPath)
	}
	if clean == MetaFile {
		return "", fmt.Errorf("%w: %q collides with workspace metadata", ErrUnsafePath, repoPath)
	}
	return filepath.Join(w.dir, clean), nil
}

func (w *Workspace) write(repoPath string, content []byte) error {
	fp, err := w.fsPath(repoPath)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(filepath.Dir(fp), 0o755); err != nil {
		return err
	}
	return os.WriteFile(fp, content, 0o644)
}

func (w *Workspace) read(repoPath string) ([]byte, error) {
	fp, err := w.fsPath(repoPath)
	if err != nil {
		return nil, err
	}
	return os.ReadFile(fp)
}

// Checkout fetches the given paths (verified) into the workspace and
// tracks them.
func (w *Workspace) Checkout(paths ...string) error {
	files, err := w.repo.Checkout(paths...)
	if err != nil {
		return err
	}
	st, err := w.repo.Status(paths...)
	if err != nil {
		return err
	}
	for _, s := range st {
		content := files[s.Path]
		if err := w.write(s.Path, content); err != nil {
			return err
		}
		w.meta[s.Path] = entry{Rev: s.Rev, Hash: s.Hash}
	}
	return w.save()
}

// CheckoutAll fetches every repository file under prefix ("" = all).
func (w *Workspace) CheckoutAll(prefix string) error {
	var files []cvs.FileStatus
	var err error
	if prefix == "" {
		files, err = w.repo.List()
	} else {
		files, err = w.repo.ListPrefix(prefix)
	}
	if err != nil {
		return err
	}
	var paths []string
	for _, f := range files {
		if !f.Dead {
			paths = append(paths, f.Path)
		}
	}
	if len(paths) == 0 {
		return nil
	}
	return w.Checkout(paths...)
}

// Add starts tracking a locally created file (to be committed as
// revision 1, or resurrected). The file must exist in the workspace.
func (w *Workspace) Add(repoPath string) error {
	if _, err := w.read(repoPath); err != nil {
		return err
	}
	if _, ok := w.meta[repoPath]; !ok {
		w.meta[repoPath] = entry{} // Rev 0: unconditional first commit
	}
	return w.save()
}

// FileState classifies one tracked file.
type FileState struct {
	Path string
	// Modified: local content differs from the base revision.
	Modified bool
	// OutOfDate: the repository head has moved past the base revision.
	OutOfDate bool
	// Missing: the file disappeared from the workspace.
	Missing bool
	// BaseRev / HeadRev are the tracked and repository revisions.
	BaseRev, HeadRev uint64
}

// Status reports the state of every tracked file (one verified
// repository round trip).
func (w *Workspace) Status() ([]FileState, error) {
	paths := w.Tracked()
	if len(paths) == 0 {
		return nil, nil
	}
	st, err := w.repo.Status(paths...)
	if err != nil {
		return nil, err
	}
	out := make([]FileState, 0, len(paths))
	for _, s := range st {
		e := w.meta[s.Path]
		fs := FileState{Path: s.Path, BaseRev: e.Rev}
		if s.Found && !s.Dead {
			fs.HeadRev = s.Rev
			fs.OutOfDate = s.Rev != e.Rev
		}
		content, err := w.read(s.Path)
		switch {
		case errors.Is(err, os.ErrNotExist):
			fs.Missing = true
		case err != nil:
			return nil, err
		default:
			fs.Modified = rcs.HashContent(content) != e.Hash
		}
		out = append(out, fs)
	}
	return out, nil
}

// UpdateReport summarizes one file's outcome from Update.
type UpdateReport struct {
	Path      string
	Action    string // "unchanged", "refreshed", "merged", "conflict"
	Conflicts int
	NewBase   uint64
}

// Update brings every tracked file up to the repository head: clean
// files are refreshed, locally modified files are three-way merged
// (conflict markers written on overlap). The new base revisions are
// recorded; conflicted files must be resolved before Commit.
func (w *Workspace) Update() ([]UpdateReport, error) {
	states, err := w.Status()
	if err != nil {
		return nil, err
	}
	var out []UpdateReport
	for _, fs := range states {
		rep := UpdateReport{Path: fs.Path, Action: "unchanged", NewBase: fs.BaseRev}
		switch {
		case fs.Missing || !fs.OutOfDate:
			// Nothing to pull (missing files are left to the caller).
		case !fs.Modified:
			// Fast-forward to the head.
			files, err := w.repo.Checkout(fs.Path)
			if err != nil {
				return nil, err
			}
			if err := w.write(fs.Path, files[fs.Path]); err != nil {
				return nil, err
			}
			w.meta[fs.Path] = entry{Rev: fs.HeadRev, Hash: rcs.HashContent(files[fs.Path])}
			rep.Action, rep.NewBase = "refreshed", fs.HeadRev
		default:
			local, err := w.read(fs.Path)
			if err != nil {
				return nil, err
			}
			up, err := w.repo.Update(fs.Path, local, fs.BaseRev)
			if err != nil {
				return nil, err
			}
			if err := w.write(fs.Path, up.Merged); err != nil {
				return nil, err
			}
			// The merged result is based on the head revision; its
			// recorded hash is the head's so the file shows as
			// Modified until committed.
			headStatus, err := w.repo.Status(fs.Path)
			if err != nil {
				return nil, err
			}
			w.meta[fs.Path] = entry{Rev: up.HeadRev, Hash: headStatus[0].Hash}
			rep.NewBase = up.HeadRev
			if up.Conflicts > 0 {
				rep.Action, rep.Conflicts = "conflict", up.Conflicts
			} else {
				rep.Action = "merged"
			}
		}
		out = append(out, rep)
	}
	return out, w.save()
}

// Remove deletes a tracked file from both the workspace and the
// repository head (Attic semantics: history remains checkable).
func (w *Workspace) Remove(logMsg, repoPath string) error {
	if _, ok := w.meta[repoPath]; !ok {
		return fmt.Errorf("%w: %s", ErrNotTracked, repoPath)
	}
	if _, err := w.repo.Remove(logMsg, repoPath); err != nil {
		return err
	}
	fp, err := w.fsPath(repoPath)
	if err != nil {
		return err
	}
	if err := os.Remove(fp); err != nil && !errors.Is(err, os.ErrNotExist) {
		return err
	}
	delete(w.meta, repoPath)
	return w.save()
}

// Commit commits every locally modified tracked file in one atomic
// verified operation, with up-to-date checks against the recorded base
// revisions. Files containing conflict markers are refused.
func (w *Workspace) Commit(logMsg string) ([]cvs.CommitResult, error) {
	states, err := w.Status()
	if err != nil {
		return nil, err
	}
	files := map[string][]byte{}
	baseRevs := map[string]uint64{}
	for _, fs := range states {
		if fs.Missing || !fs.Modified {
			continue
		}
		content, err := w.read(fs.Path)
		if err != nil {
			return nil, err
		}
		if diff.HasConflictMarkers(string(content)) {
			return nil, fmt.Errorf("%w: %s", ErrConflictMarkers, fs.Path)
		}
		files[fs.Path] = content
		if fs.BaseRev > 0 {
			baseRevs[fs.Path] = fs.BaseRev
		}
	}
	if len(files) == 0 {
		return nil, nil
	}
	results, err := w.repo.Commit(files, logMsg, baseRevs)
	if err != nil {
		return results, err
	}
	for _, r := range results {
		if !r.Conflict {
			w.meta[r.Path] = entry{Rev: r.Rev, Hash: rcs.HashContent(files[r.Path])}
		}
	}
	return results, w.save()
}
