package workspace

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"trustedcvs/internal/cvs"
	"trustedcvs/internal/vdb"
)

// fixture: one repository, a committing "other user" client, and a
// workspace for "me" in a temp dir.
type fixture struct {
	t     *testing.T
	other *cvs.Client
	ws    *Workspace
}

func newFixture(t *testing.T) *fixture {
	t.Helper()
	db := vdb.New(0)
	store := cvs.NewStore()
	sess := vdb.NewSession(db)
	clock := func() time.Time { return time.Unix(1144065600, 0) }
	me := cvs.NewClient(sess, store, "me", clock)
	other := cvs.NewClient(sess, store, "other", clock)
	ws, err := Open(t.TempDir(), me)
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{t: t, other: other, ws: ws}
}

func (f *fixture) commitOther(path, content string) {
	f.t.Helper()
	if _, err := f.other.Commit(map[string][]byte{path: []byte(content)}, "by other", nil); err != nil {
		f.t.Fatal(err)
	}
}

func (f *fixture) writeLocal(path, content string) {
	f.t.Helper()
	fp, err := f.ws.fsPath(path)
	if err != nil {
		f.t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(fp), 0o755); err != nil {
		f.t.Fatal(err)
	}
	if err := os.WriteFile(fp, []byte(content), 0o644); err != nil {
		f.t.Fatal(err)
	}
}

func (f *fixture) readLocal(path string) string {
	f.t.Helper()
	b, err := f.ws.read(path)
	if err != nil {
		f.t.Fatal(err)
	}
	return string(b)
}

func TestCheckoutStatusCommitCycle(t *testing.T) {
	f := newFixture(t)
	f.commitOther("src/main.c", "int main(){}\n")
	f.commitOther("README", "docs\n")

	if err := f.ws.CheckoutAll(""); err != nil {
		t.Fatal(err)
	}
	if got := f.readLocal("src/main.c"); got != "int main(){}\n" {
		t.Fatalf("checked-out content: %q", got)
	}
	// Everything clean.
	st, err := f.ws.Status()
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range st {
		if s.Modified || s.OutOfDate || s.Missing {
			t.Fatalf("fresh checkout not clean: %+v", s)
		}
	}
	// Edit locally, status flips, commit lands.
	f.writeLocal("src/main.c", "int main(){return 1;}\n")
	st, _ = f.ws.Status()
	var found bool
	for _, s := range st {
		if s.Path == "src/main.c" {
			found = true
			if !s.Modified || s.OutOfDate {
				t.Fatalf("status after edit: %+v", s)
			}
		}
	}
	if !found {
		t.Fatal("edited file not in status")
	}
	results, err := f.ws.Commit("tweak")
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 1 || results[0].Rev != 2 {
		t.Fatalf("commit results: %+v", results)
	}
	// Clean again, and the repo agrees.
	st, _ = f.ws.Status()
	for _, s := range st {
		if s.Modified || s.OutOfDate {
			t.Fatalf("post-commit status: %+v", s)
		}
	}
	got, err := f.other.Checkout("src/main.c")
	if err != nil || string(got["src/main.c"]) != "int main(){return 1;}\n" {
		t.Fatalf("other user sees: %q %v", got["src/main.c"], err)
	}
}

func TestCommitNothingModified(t *testing.T) {
	f := newFixture(t)
	f.commitOther("f", "x\n")
	if err := f.ws.Checkout("f"); err != nil {
		t.Fatal(err)
	}
	results, err := f.ws.Commit("noop")
	if err != nil || results != nil {
		t.Fatalf("empty commit: %+v %v", results, err)
	}
}

func TestUpdateRefreshAndMerge(t *testing.T) {
	f := newFixture(t)
	f.commitOther("clean.txt", "v1\n")
	f.commitOther("edited.txt", "top\nmiddle\nbottom\n")
	if err := f.ws.CheckoutAll(""); err != nil {
		t.Fatal(err)
	}
	// Local edit to edited.txt (bottom); upstream edits both files
	// (clean.txt wholly, edited.txt's top).
	f.writeLocal("edited.txt", "top\nmiddle\nBOTTOM-local\n")
	f.commitOther("clean.txt", "v2\n")
	f.commitOther("edited.txt", "TOP-upstream\nmiddle\nbottom\n")

	reports, err := f.ws.Update()
	if err != nil {
		t.Fatal(err)
	}
	byPath := map[string]UpdateReport{}
	for _, r := range reports {
		byPath[r.Path] = r
	}
	if byPath["clean.txt"].Action != "refreshed" {
		t.Fatalf("clean.txt: %+v", byPath["clean.txt"])
	}
	if f.readLocal("clean.txt") != "v2\n" {
		t.Fatalf("clean.txt content: %q", f.readLocal("clean.txt"))
	}
	if byPath["edited.txt"].Action != "merged" {
		t.Fatalf("edited.txt: %+v", byPath["edited.txt"])
	}
	if got := f.readLocal("edited.txt"); got != "TOP-upstream\nmiddle\nBOTTOM-local\n" {
		t.Fatalf("merged content: %q", got)
	}
	// The merged file commits cleanly against the new base.
	results, err := f.ws.Commit("merge result")
	if err != nil || len(results) != 1 || results[0].Conflict {
		t.Fatalf("commit after update: %+v %v", results, err)
	}
}

func TestUpdateConflictBlocksCommit(t *testing.T) {
	f := newFixture(t)
	f.commitOther("f", "line\n")
	if err := f.ws.Checkout("f"); err != nil {
		t.Fatal(err)
	}
	f.writeLocal("f", "local\n")
	f.commitOther("f", "upstream\n")

	reports, err := f.ws.Update()
	if err != nil {
		t.Fatal(err)
	}
	if reports[0].Action != "conflict" || reports[0].Conflicts != 1 {
		t.Fatalf("update: %+v", reports[0])
	}
	// Commit refuses the marker-laden file.
	if _, err := f.ws.Commit("oops"); !errors.Is(err, ErrConflictMarkers) {
		t.Fatalf("commit with markers: %v", err)
	}
	// Resolve, then commit succeeds.
	f.writeLocal("f", "resolved\n")
	results, err := f.ws.Commit("resolved")
	if err != nil || results[0].Rev != 3 {
		t.Fatalf("resolved commit: %+v %v", results, err)
	}
}

func TestAddNewFile(t *testing.T) {
	f := newFixture(t)
	f.writeLocal("new.txt", "brand new\n")
	if err := f.ws.Add("new.txt"); err != nil {
		t.Fatal(err)
	}
	results, err := f.ws.Commit("add file")
	if err != nil || len(results) != 1 || results[0].Rev != 1 {
		t.Fatalf("add commit: %+v %v", results, err)
	}
	got, err := f.other.Checkout("new.txt")
	if err != nil || string(got["new.txt"]) != "brand new\n" {
		t.Fatalf("other sees: %q %v", got["new.txt"], err)
	}
}

func TestAddMissingFile(t *testing.T) {
	f := newFixture(t)
	if err := f.ws.Add("ghost.txt"); err == nil {
		t.Fatal("Add of a missing local file must fail")
	}
}

func TestMetadataPersistsAcrossOpen(t *testing.T) {
	f := newFixture(t)
	f.commitOther("f", "v1\n")
	if err := f.ws.Checkout("f"); err != nil {
		t.Fatal(err)
	}
	// Reopen the same directory with the same repo client.
	ws2, err := Open(f.ws.Dir(), f.ws.repo)
	if err != nil {
		t.Fatal(err)
	}
	if got := ws2.Tracked(); len(got) != 1 || got[0] != "f" {
		t.Fatalf("tracked after reopen: %v", got)
	}
	st, err := ws2.Status()
	if err != nil || st[0].Modified || st[0].OutOfDate {
		t.Fatalf("status after reopen: %+v %v", st, err)
	}
}

func TestUnsafePathsRejected(t *testing.T) {
	f := newFixture(t)
	for _, p := range []string{"../escape", "/abs/path", "a/../../b", MetaFile} {
		if _, err := f.ws.fsPath(p); !errors.Is(err, ErrUnsafePath) {
			t.Errorf("path %q not rejected: %v", p, err)
		}
	}
	// Benign dot segments inside the tree are fine.
	if _, err := f.ws.fsPath("a/./b"); err != nil {
		t.Errorf("benign path rejected: %v", err)
	}
}

func TestWorkspaceRemove(t *testing.T) {
	f := newFixture(t)
	f.commitOther("f", "v1\n")
	if err := f.ws.Checkout("f"); err != nil {
		t.Fatal(err)
	}
	if err := f.ws.Remove("gone", "f"); err != nil {
		t.Fatal(err)
	}
	if len(f.ws.Tracked()) != 0 {
		t.Fatalf("still tracked: %v", f.ws.Tracked())
	}
	if fp, _ := f.ws.fsPath("f"); fp != "" {
		if _, err := os.Stat(fp); !errors.Is(err, os.ErrNotExist) {
			t.Fatal("file still on disk")
		}
	}
	// The repository shows the tombstone; history survives.
	st, err := f.other.Status("f")
	if err != nil || !st[0].Dead || st[0].Rev != 2 {
		t.Fatalf("repo after remove: %+v %v", st, err)
	}
	if err := f.ws.Remove("", "untracked"); !errors.Is(err, ErrNotTracked) {
		t.Fatalf("remove of untracked: %v", err)
	}
}

func TestMissingFileStatus(t *testing.T) {
	f := newFixture(t)
	f.commitOther("f", "v1\n")
	if err := f.ws.Checkout("f"); err != nil {
		t.Fatal(err)
	}
	fp, _ := f.ws.fsPath("f")
	if err := os.Remove(fp); err != nil {
		t.Fatal(err)
	}
	st, err := f.ws.Status()
	if err != nil || !st[0].Missing {
		t.Fatalf("missing not reported: %+v %v", st, err)
	}
	// Update leaves missing files alone.
	reports, err := f.ws.Update()
	if err != nil || reports[0].Action != "unchanged" {
		t.Fatalf("update with missing file: %+v %v", reports, err)
	}
}
