package workload

import (
	"testing"

	"trustedcvs/internal/sig"
)

func TestGenerateDeterministic(t *testing.T) {
	cfg := Config{Users: 4, Files: 20, Ops: 100, WriteRatio: 0.3, FilesPerOp: 3, Seed: 7}
	a, b := Generate(cfg), Generate(cfg)
	if len(a.Events) != len(b.Events) {
		t.Fatal("nondeterministic length")
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Round != eb.Round || ea.User != eb.User || ea.Kind != eb.Kind || len(ea.Files) != len(eb.Files) {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea, eb)
		}
	}
	cfg.Seed = 8
	c := Generate(cfg)
	same := true
	for i := range a.Events {
		if a.Events[i].User != c.Events[i].User || a.Events[i].Kind != c.Events[i].Kind {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical traces")
	}
}

func TestGenerateShape(t *testing.T) {
	tr := Generate(Config{Users: 3, Files: 10, Ops: 200, WriteRatio: 0.5, FilesPerOp: 2, Seed: 1})
	if len(tr.Events) != 200 {
		t.Fatalf("ops: %d", len(tr.Events))
	}
	st := tr.Stats()
	if st.Commits == 0 || st.Checkouts == 0 {
		t.Fatalf("mix: %+v", st)
	}
	prev := 0
	for i, e := range tr.Events {
		if e.Round < prev {
			t.Fatalf("rounds not monotone at %d", i)
		}
		prev = e.Round
		if int(e.User) >= 3 {
			t.Fatalf("user out of range: %v", e.User)
		}
		if len(e.Files) < 1 || len(e.Files) > 2 {
			t.Fatalf("files per op: %v", e.Files)
		}
		seen := map[string]bool{}
		for _, f := range e.Files {
			if seen[f] {
				t.Fatalf("duplicate file in op %d", i)
			}
			seen[f] = true
		}
	}
}

func TestZipfSkew(t *testing.T) {
	tr := Generate(Config{Users: 2, Files: 100, Ops: 2000, WriteRatio: 0.5, ZipfS: 1.5, Seed: 3})
	counts := map[string]int{}
	for _, e := range tr.Events {
		for _, f := range e.Files {
			counts[f]++
		}
	}
	// The most popular file should dominate under skew.
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	if max < 2000/10 {
		t.Fatalf("no skew: max file count %d of %d ops", max, 2000)
	}
}

func TestOfflineSpansStretchTrace(t *testing.T) {
	base := Generate(Config{Users: 2, Files: 5, Ops: 100, Seed: 5})
	off := Generate(Config{Users: 2, Files: 5, Ops: 100, OfflineSpan: 50, OfflineProb: 0.5, Seed: 5})
	if off.Stats().Rounds <= base.Stats().Rounds {
		t.Fatalf("offline spans should stretch rounds: %d vs %d", off.Stats().Rounds, base.Stats().Rounds)
	}
}

func TestPartitionable(t *testing.T) {
	tr, info := Partitionable(2, 2, 8, 1)
	if tr.Users != 4 {
		t.Fatalf("users: %d", tr.Users)
	}
	if len(info.GroupB) != 2 || !info.GroupB[2] || !info.GroupB[3] || info.GroupB[0] {
		t.Fatalf("group B: %v", info.GroupB)
	}
	// t1 is a group-A commit of Common.h.
	t1 := tr.Events[info.T1Op-1]
	if t1.Kind != Commit || t1.Files[0] != "Common.h" || info.GroupB[t1.User] {
		t.Fatalf("t1: %+v", t1)
	}
	// t2 (at T2Op) is a group-B read of Common.h — the causal
	// dependency.
	t2 := tr.Events[info.T2Op-1]
	if t2.Kind != Checkout || t2.Files[0] != "Common.h" || !info.GroupB[t2.User] {
		t.Fatalf("t2: %+v", t2)
	}
	// After the fork, group A is silent and one group-B user performs
	// k+1 ops.
	counts := map[sig.UserID]int{}
	for _, e := range tr.Events[info.T2Op:] {
		if !info.GroupB[e.User] {
			t.Fatalf("group-A op after fork: %+v", e)
		}
		counts[e.User]++
	}
	if counts[t2.User] != info.PostForkOpsByOneUser || info.PostForkOpsByOneUser != 9 {
		t.Fatalf("post-fork ops: %v (want %d)", counts, info.PostForkOpsByOneUser)
	}
}

func TestBackToBack(t *testing.T) {
	tr := BackToBack(5, 10)
	if len(tr.Events) != 20 {
		t.Fatalf("events: %d", len(tr.Events))
	}
	for _, e := range tr.Events {
		if e.User != 0 {
			t.Fatalf("only user 0 should act: %+v", e)
		}
	}
}

func TestEveryUserTwicePerEpoch(t *testing.T) {
	const users, epochs, epochLen = 3, 4, 20
	tr := EveryUserTwicePerEpoch(users, epochs, epochLen, 2)
	perEpoch := make([]map[sig.UserID]int, epochs)
	for i := range perEpoch {
		perEpoch[i] = map[sig.UserID]int{}
	}
	for _, e := range tr.Events {
		ep := (e.Round - 1) / epochLen
		if ep < 0 || ep >= epochs {
			t.Fatalf("event outside epochs: %+v", e)
		}
		perEpoch[ep][e.User]++
	}
	for ep, m := range perEpoch {
		for u := 0; u < users; u++ {
			if m[sig.UserID(u)] != 2 {
				t.Fatalf("epoch %d user %d: %d ops, want 2", ep, u, m[sig.UserID(u)])
			}
		}
	}
}

func TestEveryUserTwicePerEpochPanicsWhenTooShort(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("want panic")
		}
	}()
	EveryUserTwicePerEpoch(5, 1, 8, 1)
}
