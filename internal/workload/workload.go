// Package workload generates the operation traces the experiments
// replay: generic CVS-style workloads (Zipf-skewed file popularity,
// mixed checkouts and commits, users going offline) and the
// *partitionable* workload family of Section 3.1 — the US/China
// scenario of Figure 1 in which a causal dependency crosses two user
// groups that are never active at the same time.
package workload

import (
	"fmt"
	"math/rand"

	"trustedcvs/internal/sig"
)

// Kind is the CVS operation class of one trace event. The paper's
// model has exactly two: checkout (read) and commit (update).
type Kind int

const (
	// Checkout reads files.
	Checkout Kind = iota
	// Commit updates files.
	Commit
)

func (k Kind) String() string {
	if k == Commit {
		return "commit"
	}
	return "checkout"
}

// Event is one user operation in a trace.
type Event struct {
	// Round is the global-clock round at which the user issues the
	// operation. Rounds are non-decreasing across the trace.
	Round int
	User  sig.UserID
	Kind  Kind
	Files []string
}

// Trace is an ordered sequence of events over a fixed user population
// and file set.
type Trace struct {
	Users  int
	Files  []string
	Events []Event
}

// Config parameterizes the generic CVS workload generator.
type Config struct {
	Users int
	Files int
	Ops   int
	// WriteRatio is the fraction of commits (CVS workloads are
	// read-heavy; a typical value is 0.2-0.4).
	WriteRatio float64
	// FilesPerOp is the maximum number of files touched by one
	// operation (uniform in [1, FilesPerOp]).
	FilesPerOp int
	// ZipfS is the Zipf skew of file popularity (>1; 0 disables skew).
	ZipfS float64
	// IdleProb is the chance that a round passes with no operation
	// (stretches the trace in time).
	IdleProb float64
	// OfflineSpan, when positive, sends each user offline for spans of
	// this many rounds with probability OfflineProb after each of its
	// operations — the paper's "users sleep for arbitrarily long".
	OfflineSpan int
	OfflineProb float64
	Seed        int64
}

// Generate produces a CVS trace from cfg. Generation is fully
// deterministic in cfg.Seed.
func Generate(cfg Config) *Trace {
	if cfg.Users <= 0 || cfg.Files <= 0 || cfg.Ops < 0 {
		panic("workload: Users and Files must be positive")
	}
	if cfg.FilesPerOp <= 0 {
		cfg.FilesPerOp = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	files := make([]string, cfg.Files)
	for i := range files {
		files[i] = fmt.Sprintf("src/file%04d.c", i)
	}
	var zipf *rand.Zipf
	if cfg.ZipfS > 1 {
		zipf = rand.NewZipf(rng, cfg.ZipfS, 1, uint64(cfg.Files-1))
	}
	pickFile := func() string {
		if zipf != nil {
			return files[zipf.Uint64()]
		}
		return files[rng.Intn(cfg.Files)]
	}

	tr := &Trace{Users: cfg.Users, Files: files}
	offlineUntil := make([]int, cfg.Users)
	round := 0
	for len(tr.Events) < cfg.Ops {
		round++
		if rng.Float64() < cfg.IdleProb {
			continue
		}
		// Pick an online user.
		candidates := make([]int, 0, cfg.Users)
		for u := 0; u < cfg.Users; u++ {
			if offlineUntil[u] <= round {
				candidates = append(candidates, u)
			}
		}
		if len(candidates) == 0 {
			continue
		}
		u := candidates[rng.Intn(len(candidates))]

		kind := Checkout
		if rng.Float64() < cfg.WriteRatio {
			kind = Commit
		}
		n := 1 + rng.Intn(cfg.FilesPerOp)
		seen := make(map[string]bool, n)
		var fs []string
		for len(fs) < n {
			f := pickFile()
			if !seen[f] {
				seen[f] = true
				fs = append(fs, f)
			}
		}
		tr.Events = append(tr.Events, Event{Round: round, User: sig.UserID(u), Kind: kind, Files: fs})

		if cfg.OfflineSpan > 0 && rng.Float64() < cfg.OfflineProb {
			offlineUntil[u] = round + cfg.OfflineSpan
		}
	}
	return tr
}

// PartitionInfo describes the structure of a partitionable trace for
// the experiment harness.
type PartitionInfo struct {
	// GroupB is the user set the adversary serves from the fork.
	GroupB map[sig.UserID]bool
	// T1Op is the 1-based operation index of the group-A commit (t1)
	// that group B must never learn about. The adversary's fork
	// snapshot must be taken immediately before this operation
	// (adversary.Config.TriggerOp = T1Op).
	T1Op uint64
	// T2Op is the operation index of the causally dependent group-B
	// read (t2), the first operation served from the fork.
	T2Op uint64
	// PostForkOpsByOneUser is how many operations the busiest group-B
	// user performs after t1 (k+1 in the paper's definition).
	PostForkOpsByOneUser int
}

// Partitionable generates the Figure 1 workload: group A (the US
// programmer) commits Common.h (transaction t1) and goes offline;
// group B (the Chinese programmer) then issues a causally dependent
// commit t2 and k+1 further operations, with group A silent
// throughout. Under a partitioning server nothing group B sees ever
// reveals t1.
func Partitionable(usersA, usersB int, k int, seed int64) (*Trace, PartitionInfo) {
	if usersA <= 0 || usersB <= 0 || k < 0 {
		panic("workload: bad partitionable parameters")
	}
	rng := rand.New(rand.NewSource(seed))
	users := usersA + usersB
	files := []string{"Common.h", "us/main.c", "cn/driver.c", "cn/util.c"}
	tr := &Trace{Users: users, Files: files}
	info := PartitionInfo{GroupB: make(map[sig.UserID]bool)}
	for u := usersA; u < users; u++ {
		info.GroupB[sig.UserID(u)] = true
	}

	round := 0
	add := func(u int, kind Kind, fs ...string) {
		round++
		tr.Events = append(tr.Events, Event{Round: round, User: sig.UserID(u), Kind: kind, Files: fs})
	}

	// Warm-up: everyone touches the repository (common prefix).
	for u := 0; u < users; u++ {
		add(u, Commit, files[1+rng.Intn(len(files)-1)])
	}
	// t1: a group-A user commits Common.h, then group A goes offline.
	add(0, Commit, "Common.h")
	info.T1Op = uint64(len(tr.Events))

	// t2: a group-B user reads Common.h (causal dependency) — the
	// first operation the adversary serves from its pre-t1 fork.
	bUser := usersA
	add(bUser, Checkout, "Common.h")
	info.T2Op = uint64(len(tr.Events))

	// k+1 further operations by that same group-B user.
	for i := 0; i <= k; i++ {
		if rng.Intn(2) == 0 {
			add(bUser, Commit, "cn/driver.c")
		} else {
			add(bUser, Checkout, "cn/util.c")
		}
	}
	info.PostForkOpsByOneUser = k + 1
	return tr, info
}

// BackToBack generates the workload of Section 2.2.3's preservation
// argument: one user performs pairs of consecutive operations while
// the others are idle. Used to expose the token-passing baseline's
// forced waiting.
func BackToBack(users, pairs int) *Trace {
	tr := &Trace{Users: users, Files: []string{"hot.c"}}
	round := 0
	for i := 0; i < pairs; i++ {
		round++
		tr.Events = append(tr.Events, Event{Round: round, User: 0, Kind: Commit, Files: []string{"hot.c"}})
		round++
		tr.Events = append(tr.Events, Event{Round: round, User: 0, Kind: Checkout, Files: []string{"hot.c"}})
	}
	return tr
}

// EveryUserTwicePerEpoch generates the Protocol III workload: epochs
// of epochLen rounds, every user performing exactly two operations per
// epoch at randomized offsets — never requiring two users online
// simultaneously.
func EveryUserTwicePerEpoch(users, epochs, epochLen int, seed int64) *Trace {
	if epochLen < 2*users {
		panic("workload: epoch too short for two ops per user")
	}
	rng := rand.New(rand.NewSource(seed))
	tr := &Trace{Users: users, Files: []string{"shared.c", "local.c"}}
	for e := 0; e < epochs; e++ {
		base := e * epochLen
		// Two distinct sub-slots per user, serialized so no two users
		// overlap: shuffle (user, slot) pairs across the epoch.
		type slot struct{ u, j int }
		var slots []slot
		for u := 0; u < users; u++ {
			slots = append(slots, slot{u, 0}, slot{u, 1})
		}
		rng.Shuffle(len(slots), func(i, j int) { slots[i], slots[j] = slots[j], slots[i] })
		step := epochLen / len(slots)
		for i, s := range slots {
			kind := Checkout
			if rng.Intn(2) == 0 {
				kind = Commit
			}
			f := tr.Files[rng.Intn(len(tr.Files))]
			tr.Events = append(tr.Events, Event{
				Round: base + i*step + 1,
				User:  sig.UserID(s.u),
				Kind:  kind,
				Files: []string{f},
			})
		}
	}
	return tr
}

// Stats summarizes a trace for reports.
type Stats struct {
	Ops        int
	Commits    int
	Checkouts  int
	Rounds     int
	ActiveUser int // number of users with at least one op
}

// Stats computes summary statistics.
func (t *Trace) Stats() Stats {
	var s Stats
	s.Ops = len(t.Events)
	active := map[sig.UserID]bool{}
	for _, e := range t.Events {
		if e.Kind == Commit {
			s.Commits++
		} else {
			s.Checkouts++
		}
		active[e.User] = true
		if e.Round > s.Rounds {
			s.Rounds = e.Round
		}
	}
	s.ActiveUser = len(active)
	return s
}
