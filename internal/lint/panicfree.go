package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// passPanicFree proves (statically, over the module's static call
// graph) that no panic is reachable from the exported server and
// handler entry points — the surface a remote peer can drive. A panic
// there is a remote denial-of-service: one hostile request takes down
// the server for every honest user.
//
// Entry points are the exported functions and methods of
// internal/server, internal/driver, and internal/transport. Edges are
// static calls only: calls through interfaces and function values end
// a path (the wire layer already guarantees decoded requests are
// structurally validated before any dynamic dispatch). Vetted
// constructors — functions named New* or Must* — may panic on
// programmer error; their panics are exempt, but the walk continues
// through them.
var passPanicFree = &Pass{
	Name: namePanicFree,
	Doc:  "panics statically reachable from exported server/handler entry points",
	Run:  runPanicFree,
}

var panicEntryScope = []string{"internal/server", "internal/driver", "internal/transport"}

type pfNode struct {
	fn     *types.Func
	pkg    *Package
	panics []token.Pos
	calls  []*types.Func
}

func runPanicFree(m *Module) []Diag {
	nodes := make(map[*types.Func]*pfNode)
	var entries []*types.Func
	for _, pkg := range m.Pkgs {
		isEntryPkg := underAny(pkg.Rel, panicEntryScope...)
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &pfNode{fn: obj, pkg: pkg}
				ast.Inspect(fd.Body, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
						if _, isBuiltin := pkg.Info.Uses[id].(*types.Builtin); isBuiltin {
							node.panics = append(node.panics, call.Pos())
							return true
						}
					}
					if callee := calleeFunc(pkg.Info, call); callee != nil {
						node.calls = append(node.calls, callee)
					}
					return true
				})
				nodes[obj] = node
				if isEntryPkg && obj.Exported() {
					entries = append(entries, obj)
				}
			}
		}
	}
	sort.Slice(entries, func(i, j int) bool { return entries[i].FullName() < entries[j].FullName() })

	// BFS over static edges from all entries, remembering one shortest
	// path per function for the report.
	parent := make(map[*types.Func]*types.Func)
	visited := make(map[*types.Func]bool)
	var queue []*types.Func
	for _, e := range entries {
		if !visited[e] {
			visited[e] = true
			queue = append(queue, e)
		}
	}
	reported := make(map[token.Pos]bool)
	var out []Diag
	for len(queue) > 0 {
		fn := queue[0]
		queue = queue[1:]
		node := nodes[fn]
		if node == nil {
			continue // defined outside the loaded module (or no body)
		}
		if !vettedPanicker(fn.Name()) {
			for _, p := range node.panics {
				if reported[p] {
					continue
				}
				reported[p] = true
				out = append(out, m.diagf(namePanicFree, p,
					"panic reachable from exported entry point via %s: a hostile request must surface as an error, not a crash",
					callPath(parent, fn)))
			}
		}
		for _, callee := range node.calls {
			if nodes[callee] == nil || visited[callee] {
				continue
			}
			visited[callee] = true
			parent[callee] = fn
			queue = append(queue, callee)
		}
	}
	return out
}

// vettedPanicker reports whether a function is a vetted constructor
// whose argument-validation panics are programmer errors by contract.
func vettedPanicker(name string) bool {
	return strings.HasPrefix(name, "New") || strings.HasPrefix(name, "Must")
}

// callPath renders the entry→…→fn chain recorded by the BFS.
func callPath(parent map[*types.Func]*types.Func, fn *types.Func) string {
	var chain []string
	for f := fn; f != nil; f = parent[f] {
		chain = append(chain, funcLabel(f))
	}
	for i, j := 0, len(chain)-1; i < j; i, j = i+1, j-1 {
		chain[i], chain[j] = chain[j], chain[i]
	}
	return strings.Join(chain, " -> ")
}

// funcLabel is a compact pkg.Func / pkg.(Recv).Method label.
func funcLabel(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Name() + "."
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return fmt.Sprintf("%s(%s).%s", pkg, named.Obj().Name(), fn.Name())
		}
	}
	return pkg + fn.Name()
}
