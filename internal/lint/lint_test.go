package lint

import (
	"fmt"
	"testing"
)

// TestFixtureCorpus pins the analyzer's behavior on the golden fixture
// module: every planted violation must be reported with this exact
// pass, file, and line — and nothing else. The corpus also contains
// suppressed occurrences, correctly-narrowed variants, a privileged
// package (fixture digest), and a _test.go violation, all of which
// must stay silent.
func TestFixtureCorpus(t *testing.T) {
	m, err := LoadModule("testdata/src/fixture", []string{"./..."})
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	want := []struct {
		pass string
		file string
		line int
	}{
		{"lockscope", "internal/audit/queue.go", 25},           // ed25519.Verify in batch drain under Lock
		{"errdrop", "internal/codec/drop.go", 19},              // ExprStmt discard
		{"errdrop", "internal/codec/drop.go", 24},              // error assigned to _
		{"errdrop", "internal/codec/drop.go", 30},              // error lost in defer
		{"lockscope", "internal/core/sign.go", 20},             // ed25519.Sign under Lock
		{"hashdiscipline", "internal/cvs/rawgob.go", 13},       // raw gob on net.Conn
		{"randsource", "internal/merkle/clock.go", 7},          // time.Now in merkle
		{"hashdiscipline", "internal/merkle/hash.go", 6},       // sha256 outside digest
		{"panicfree", "internal/server/entry.go", 29},          // panic via HandleOp
		{"randsource", "internal/sig/rand.go", 5},              // math/rand in sig
		{"lockscope", "internal/transport/conn.go", 20},        // net.Conn.Write under Lock
		{"lockscope", "internal/transport/faulty.go", 23},      // fault.Injector.Next under Lock
		{"sleepretry", "internal/transport/retrysleep.go", 12}, // time.Sleep in retry loop
		{"lockscope", "internal/vdb/lock.go", 22},              // gob Encode under defer-Unlock
		{"lockscope", "internal/vdb/shard.go", 50},             // gob Encode under shard lock() wrapper
		{"lockscope", "internal/vdb/shard.go", 66},             // gob Encode under forest lockAll() wrapper
	}
	got := Run(m, Passes())
	for i := 0; i < len(got) || i < len(want); i++ {
		var g, w string
		if i < len(got) {
			g = fmt.Sprintf("%s:%d %s", got[i].File, got[i].Line, got[i].Pass)
		}
		if i < len(want) {
			w = fmt.Sprintf("%s:%d %s", want[i].file, want[i].line, want[i].pass)
		}
		if g != w {
			t.Errorf("finding %d:\n  got  %q\n  want %q", i, g, w)
		}
	}
	if t.Failed() {
		for _, d := range got {
			t.Logf("full: %s", d)
		}
	}
}

// TestFixtureSinglePass checks pass selection: running only
// hashdiscipline over the corpus must yield exactly its two findings.
func TestFixtureSinglePass(t *testing.T) {
	m, err := LoadModule("testdata/src/fixture", []string{"./..."})
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	p := PassByName("hashdiscipline")
	if p == nil {
		t.Fatal("PassByName(hashdiscipline) = nil")
	}
	got := Run(m, []*Pass{p})
	if len(got) != 2 {
		t.Fatalf("hashdiscipline findings = %d, want 2: %v", len(got), got)
	}
	for _, d := range got {
		if d.Pass != "hashdiscipline" {
			t.Errorf("unexpected pass %q in filtered run", d.Pass)
		}
	}
}

// TestRepoIsClean runs every pass over the real module: the tree this
// test ships with must carry zero unsuppressed findings, so check.sh's
// lint gate can never be red on a healthy checkout.
func TestRepoIsClean(t *testing.T) {
	m, err := LoadModule("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, d := range Run(m, Passes()) {
		t.Errorf("unexpected finding on clean tree: %s", d)
	}
}
