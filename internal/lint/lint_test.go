package lint

import (
	"fmt"
	"strings"
	"testing"
)

// TestFixtureCorpus pins the analyzer's behavior on the golden fixture
// module: every planted violation must be reported with this exact
// pass, file, and line — and nothing else. The corpus also contains
// suppressed occurrences, correctly-narrowed variants, a privileged
// package (fixture digest), and a _test.go violation, all of which
// must stay silent.
func TestFixtureCorpus(t *testing.T) {
	m, err := LoadModule("testdata/src/fixture", []string{"./..."})
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	want := []struct {
		pass string
		file string
		line int
	}{
		{"lockscope", "internal/audit/queue.go", 25},           // ed25519.Verify in batch drain under Lock
		{"errdrop", "internal/codec/drop.go", 19},              // ExprStmt discard
		{"errdrop", "internal/codec/drop.go", 24},              // error assigned to _
		{"errdrop", "internal/codec/drop.go", 30},              // error lost in defer
		{"errdrop", "internal/codec/drop.go", 38},              // error lost in parallel blank assignment
		{"errdrop", "internal/codec/drop.go", 47},              // error lost in defer of a bound method value
		{"deadignore", "internal/codec/drop.go", 60},           // stale //lint:ignore suppressing nothing
		{"lockscope", "internal/core/sign.go", 20},             // ed25519.Sign under Lock
		{"hashdiscipline", "internal/cvs/rawgob.go", 13},       // raw gob on net.Conn
		{"verifyflow", "internal/flow/flow.go", 21},            // decode→Put, no verification (direct)
		{"verifyflow", "internal/flow/flow.go", 42},            // decode→Put through helper result summary
		{"verifyflow", "internal/flow/flow.go", 58},            // decode→Delete through helper param-sink summary
		{"lockorder", "internal/locks/locks.go", 34},           // Index/Journal cycle closed via lock() wrapper
		{"lockorder", "internal/locks/locks.go", 55},           // acquisition under terminal fmu via helper summary
		{"randsource", "internal/merkle/clock.go", 7},          // time.Now in merkle
		{"hashdiscipline", "internal/merkle/hash.go", 6},       // sha256 outside digest
		{"panicfree", "internal/server/entry.go", 29},          // panic via HandleOp
		{"randsource", "internal/sig/rand.go", 5},              // math/rand in sig
		{"boundedqueue", "internal/transport/admitq.go", 19},   // chan capacity from a parameter
		{"boundedqueue", "internal/transport/admitq.go", 40},   // receiver-field append with no visible bound
		{"lockscope", "internal/transport/conn.go", 20},        // net.Conn.Write under Lock
		{"lockscope", "internal/transport/faulty.go", 23},      // fault.Injector.Next under Lock
		{"sleepretry", "internal/transport/retrysleep.go", 12}, // time.Sleep in retry loop
		{"lockscope", "internal/vdb/lock.go", 22},              // gob Encode under defer-Unlock
		{"lockscope", "internal/vdb/shard.go", 50},             // gob Encode under shard lock() wrapper
		{"lockscope", "internal/vdb/shard.go", 66},             // gob Encode under forest lockAll() wrapper
		{"syncdiscipline", "internal/wal/wal.go", 35},          // rename into place, no preceding fsync
		{"syncdiscipline", "internal/wal/wal.go", 87},          // segment created in place, predecessor unsealed
	}
	got := Run(m, Passes())
	for i := 0; i < len(got) || i < len(want); i++ {
		var g, w string
		if i < len(got) {
			g = fmt.Sprintf("%s:%d %s", got[i].File, got[i].Line, got[i].Pass)
		}
		if i < len(want) {
			w = fmt.Sprintf("%s:%d %s", want[i].file, want[i].line, want[i].pass)
		}
		if g != w {
			t.Errorf("finding %d:\n  got  %q\n  want %q", i, g, w)
		}
	}
	if t.Failed() {
		for _, d := range got {
			t.Logf("full: %s", d)
		}
	}
}

// TestFixtureSinglePass checks pass selection: running only
// hashdiscipline over the corpus must yield exactly its two findings.
func TestFixtureSinglePass(t *testing.T) {
	m, err := LoadModule("testdata/src/fixture", []string{"./..."})
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	p := PassByName("hashdiscipline")
	if p == nil {
		t.Fatal("PassByName(hashdiscipline) = nil")
	}
	got := Run(m, []*Pass{p})
	if len(got) != 2 {
		t.Fatalf("hashdiscipline findings = %d, want 2: %v", len(got), got)
	}
	for _, d := range got {
		if d.Pass != "hashdiscipline" {
			t.Errorf("unexpected pass %q in filtered run", d.Pass)
		}
	}
}

// TestDeadIgnoreDecidability pins the stale-suppression rules: a
// directive is judged only when every pass it names actually ran.
func TestDeadIgnoreDecidability(t *testing.T) {
	load := func() *Module {
		m, err := LoadModule("testdata/src/fixture", []string{"./..."})
		if err != nil {
			t.Fatalf("load fixture module: %v", err)
		}
		return m
	}
	// errdrop ran: the stale errdrop directive is decidable and stale.
	got := Run(load(), []*Pass{PassByName(nameErrDrop), PassByName(nameDeadIgnore)})
	found := false
	for _, d := range got {
		if d.Pass == nameDeadIgnore && d.File == "internal/codec/drop.go" && d.Line == 60 {
			found = true
		}
	}
	if !found {
		t.Errorf("deadignore did not flag the stale errdrop directive: %v", got)
	}
	// errdrop did not run: the same directive must not be judged.
	for _, d := range Run(load(), []*Pass{PassByName(nameLockScope), PassByName(nameDeadIgnore)}) {
		if d.Pass == nameDeadIgnore {
			t.Errorf("deadignore judged an undecidable directive: %s", d)
		}
	}
}

// TestGraphDOT smoke-tests the -graph triage dumps: both graphs must
// render and contain the fixture's planted interprocedural edges.
func TestGraphDOT(t *testing.T) {
	m, err := LoadModule("testdata/src/fixture", []string{"./..."})
	if err != nil {
		t.Fatalf("load fixture module: %v", err)
	}
	call := CallGraphDOT(m)
	if !strings.Contains(call, `"locks.(Folder).FoldThenIndex" -> "locks.(Folder).reindex"`) {
		t.Errorf("call graph DOT lacks the FoldThenIndex -> reindex edge:\n%s", call)
	}
	lock := LockGraphDOT(m)
	if !strings.Contains(lock, `"internal/locks.Index.mu" -> "internal/locks.Journal.mu"`) {
		t.Errorf("lock graph DOT lacks the Index -> Journal edge:\n%s", lock)
	}
	if !strings.Contains(lock, `"internal/locks.Folder.fmu" -> "internal/locks.Index.mu"`) {
		t.Errorf("lock graph DOT lacks the fmu -> Index edge:\n%s", lock)
	}
}

// TestRepoIsClean runs every pass over the real module: the tree this
// test ships with must carry zero unsuppressed findings, so check.sh's
// lint gate can never be red on a healthy checkout.
func TestRepoIsClean(t *testing.T) {
	m, err := LoadModule("../..", []string{"./..."})
	if err != nil {
		t.Fatalf("load module: %v", err)
	}
	for _, d := range Run(m, Passes()) {
		t.Errorf("unexpected finding on clean tree: %s", d)
	}
}
