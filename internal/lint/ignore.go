package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is one parsed //lint:ignore comment. It suppresses
// findings of the named passes on its own line and on the line
// directly below it (so it works both as a trailing comment and as a
// standalone line above the offending statement).
type ignoreDirective struct {
	passes []string
	line   int
	pos    token.Pos
	used   bool // suppressed at least one finding this run (see deadignore)
}

// collectIgnores indexes every //lint:ignore directive of the files.
// Malformed directives (no pass list or no reason) are ignored rather
// than honored: a suppression without a written justification does not
// suppress.
func (m *Module) collectIgnores(files []*ast.File) {
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 { // pass list + at least one reason word
					continue
				}
				pos := m.Fset.Position(c.Pos())
				rel := m.relFile(pos.Filename)
				m.ignores[rel] = append(m.ignores[rel], &ignoreDirective{
					passes: strings.Split(fields[0], ","),
					line:   pos.Line,
					pos:    c.Pos(),
				})
			}
		}
	}
}

// suppressed reports whether a finding is covered by an ignore
// directive, marking the directive as used (deadignore reports the
// ones that never are).
func (m *Module) suppressed(pass string, d Diag) bool {
	for _, ig := range m.ignores[d.File] {
		if d.Line != ig.line && d.Line != ig.line+1 {
			continue
		}
		for _, p := range ig.passes {
			if p == pass || p == "all" {
				ig.used = true
				return true
			}
		}
	}
	return false
}
