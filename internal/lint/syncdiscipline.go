package lint

import (
	"go/ast"
	"go/types"
)

// passSyncDiscipline enforces the crash-durability ordering convention
// on the repo's durability paths (internal/wal, internal/server,
// cmd/tcvs-server): publishing a durable artifact must be preceded by
// an fsync of the data it makes reachable. Concretely, two publishing
// sinks are checked:
//
//   - a Rename call (the tmp→rename-into-place pattern everywhere in
//     scope): the renamed bytes must have been synced first, or a crash
//     can land the new name on a file whose content is still in the
//     page cache — the checksummed-snapshot and cursor formats detect
//     the torn result, but the previous good generation is already
//     gone;
//   - a Create call in internal/wal inside a function that never
//     renames (publish-by-create — a fresh journal segment): the
//     predecessor segment must have been sealed (synced) first, or
//     replay can see the new segment while the old one's tail frames
//     are lost, a mid-journal gap the frame checksums cannot explain.
//
// The required sync (a callee named Sync or SyncDir, or a module
// function that provably reaches one — summaries propagate through the
// static call graph to a fixpoint) must appear lexically before the
// sink in the same function body. Lexical order over-approximates
// control flow: a sync in any earlier branch counts. Function literals
// are not walked for sinks and earn no sync credit — when a closure
// runs is unknowable statically. Deliberate exceptions (the journal's
// first segment has no predecessor) carry a //lint:ignore directive on
// the function declaration, where findings are anchored.
var passSyncDiscipline = &Pass{
	Name: nameSyncDiscipline,
	Doc:  "durable publish (rename-into-place, segment create) with no preceding fsync",
	Run:  runSyncDiscipline,
}

var syncDisciplineScope = []string{"internal/wal", "internal/server", "cmd/tcvs-server"}

func runSyncDiscipline(m *Module) []Diag {
	syncs := syncSummaries(m)
	var out []Diag
	for _, pkg := range m.Pkgs {
		if !underAny(pkg.Rel, syncDisciplineScope...) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, checkSyncDiscipline(m, pkg, fd, syncs)...)
			}
		}
	}
	return out
}

// checkSyncDiscipline walks one function body in source order tracking
// whether a sync has happened yet, and reports the first unsynced
// publishing sink. The finding is anchored at the function declaration:
// the discipline is a property of the function's whole ordering, and
// that is where exceptions are annotated.
func checkSyncDiscipline(m *Module, pkg *Package, fd *ast.FuncDecl, syncs map[*types.Func]bool) []Diag {
	renames := false
	callsInOrder(fd.Body, func(call *ast.CallExpr) {
		if fn := calleeFunc(pkg.Info, call); fn != nil && fn.Name() == "Rename" {
			renames = true
		}
	})
	synced := false
	var bad *ast.CallExpr
	var what string
	callsInOrder(fd.Body, func(call *ast.CallExpr) {
		fn := calleeFunc(pkg.Info, call)
		if fn == nil {
			return
		}
		switch fn.Name() {
		case "Sync", "SyncDir":
			synced = true
		case "Rename":
			if !synced && bad == nil {
				bad, what = call, "rename into place"
			}
		case "Create":
			// Publish-by-create is a journal-segment idiom; elsewhere a
			// Create is just a tmp file on its way to a synced rename.
			if underAny(pkg.Rel, "internal/wal") && !renames && !synced && bad == nil {
				bad, what = call, "segment create"
			}
		default:
			if syncs[fn] {
				synced = true
			}
		}
	})
	if bad == nil {
		return nil
	}
	return []Diag{m.diagf(nameSyncDiscipline, fd.Name.Pos(),
		"%s with no preceding fsync at line %d of %s: sync the predecessor data (File.Sync / FS.SyncDir, directly or via a callee) before publishing, or annotate the vetted exception",
		what, m.Fset.Position(bad.Pos()).Line, pkg.Rel)}
}

// syncSummaries computes, to a fixpoint over the static call graph,
// which module functions provably reach a Sync/SyncDir call — so a
// sync wrapped in a helper (sealing a segment, flushing a generation)
// still credits its caller.
func syncSummaries(m *Module) map[*types.Func]bool {
	g := m.callGraph()
	syncs := make(map[*types.Func]bool)
	for _, fn := range g.order {
		node := g.Nodes[fn]
		callsInOrder(node.Decl.Body, func(call *ast.CallExpr) {
			if c := calleeFunc(node.Pkg.Info, call); c != nil {
				if name := c.Name(); name == "Sync" || name == "SyncDir" {
					syncs[fn] = true
				}
			}
		})
	}
	for changed := true; changed; {
		changed = false
		for _, fn := range g.order {
			if syncs[fn] {
				continue
			}
			for _, e := range g.Nodes[fn].Edges {
				if e.Call == nil {
					continue // a bare reference is not a call on this path
				}
				for _, c := range e.Callees {
					if syncs[c] {
						syncs[fn] = true
						changed = true
						break
					}
				}
				if syncs[fn] {
					break
				}
			}
		}
	}
	return syncs
}

// callsInOrder visits every call expression under body in source
// order, without descending into function literals: when a closure
// runs is unknowable statically, so it neither credits a sync nor
// publishes on the enclosing function's behalf.
func callsInOrder(body *ast.BlockStmt, visit func(*ast.CallExpr)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			visit(call)
		}
		return true
	})
}
