package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module's static lock-acquisition graph for the
// lockorder pass. Nodes are lock *classes* — a mutex identified by the
// struct field (or package-level variable) that declares it, e.g.
// "internal/vdb.shard.mu" or "internal/vdb.Forest.fmu" — and an edge
// A -> B means some code path acquires B while holding A.
//
// Wrappers need no name matching here (unlike lockscope's lexical
// approximation): every function gets a summary of its *net* lock
// effect — the classes it leaves acquired (netAcq) or released
// (netRel) on return, plus every class it transitively acquires even
// transiently (acq) — computed to a fixpoint over the call graph. A
// shard.lock() method that does s.mu.Lock() therefore summarizes as
// netAcq={shard.mu}, and a caller holding another lock across it gets
// the edge automatically, whatever the wrapper is called.
//
// Same-class edges (shard.mu -> shard.mu) are excluded: acquiring two
// instances of one class is the forest's shard-ascending pattern, and
// its per-instance ordering (RouteKey order, vdb.lockOrdered) is not
// statically distinguishable — it is vetted by construction and by the
// -race stress tests. Cross-class cycles and acquisitions under a
// terminal class (the forest fold mutex fmu, documented as the last
// lock in the order) are what the pass reports.

// lockClass identifies one mutex by declaration site.
type lockClass string

// fieldName returns the final component of a class ("mu" of
// "internal/vdb.shard.mu").
func (c lockClass) fieldName() string {
	s := string(c)
	if i := strings.LastIndexByte(s, '.'); i >= 0 {
		return s[i+1:]
	}
	return s
}

// lockSummary is one function's interprocedural lock behavior.
type lockSummary struct {
	acq    map[lockClass]bool // transitively acquired, even transiently
	netAcq map[lockClass]bool // held on return
	netRel map[lockClass]bool // released on return without acquiring
}

func (s *lockSummary) equal(o *lockSummary) bool {
	return o != nil && setsEqual(s.acq, o.acq) && setsEqual(s.netAcq, o.netAcq) && setsEqual(s.netRel, o.netRel)
}

func setsEqual(a, b map[lockClass]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// LockEdge is one "acquire to while holding from" site.
type LockEdge struct {
	From, To lockClass
	Pos      token.Pos   // the acquisition site of To
	Fn       *types.Func // function containing the site
	Via      string      // callee chain when the acquisition is inside a callee
}

// LockGraph is the module's static lock-order graph.
type LockGraph struct {
	m     *Module
	sums  map[*types.Func]*lockSummary
	Edges []LockEdge

	edgeSeen map[string]bool
}

// Mutex acquisition calls including the Try variants (a TryLock still
// orders against held locks when it succeeds).
var lockAcqFuncs = map[string]bool{
	"(*sync.Mutex).Lock":       true,
	"(*sync.Mutex).TryLock":    true,
	"(*sync.RWMutex).Lock":     true,
	"(*sync.RWMutex).TryLock":  true,
	"(*sync.RWMutex).RLock":    true,
	"(*sync.RWMutex).TryRLock": true,
}

// lockGraph builds (and caches) the module's lock graph.
func (m *Module) lockGraph() *LockGraph {
	if m.lg != nil {
		return m.lg
	}
	g := &LockGraph{
		m:        m,
		sums:     make(map[*types.Func]*lockSummary),
		edgeSeen: make(map[string]bool),
	}
	cg := m.callGraph()
	for round := 0; round < 24; round++ {
		changed := false
		for _, fn := range cg.order {
			s := g.summarize(cg.Nodes[fn])
			if !s.equal(g.sums[fn]) {
				g.sums[fn] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	for _, fn := range cg.order {
		node := cg.Nodes[fn]
		sc := &lockWalker{g: g, node: node}
		sc.scan(node.Decl.Body.List, nil)
		// Function literals are their own roots: they run on their own
		// schedule (goroutines, callbacks, LockAll sections) with no
		// lock lexically held at their definition site.
		ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				sc.scan(lit.Body.List, nil)
			}
			return true
		})
	}
	m.lg = g
	return g
}

// summarize computes one function's direct+transitive lock effects
// (excluding function literals and go statements, which do not run
// synchronously as part of the call).
func (g *LockGraph) summarize(node *CGNode) *lockSummary {
	acqAll := make(map[lockClass]bool)
	relAll := make(map[lockClass]bool)
	trans := make(map[lockClass]bool)
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(x ast.Node) bool {
			switch v := x.(type) {
			case *ast.FuncLit, *ast.GoStmt:
				_ = v
				return false
			case *ast.CallExpr:
				if cls, kind, ok := g.directOp(node, v); ok {
					if kind == opLock {
						acqAll[cls] = true
						trans[cls] = true
					} else {
						relAll[cls] = true
					}
					return true
				}
				for _, callee := range g.callees(node, v) {
					if sum := g.sums[callee]; sum != nil {
						for cls := range sum.acq {
							trans[cls] = true
						}
						for cls := range sum.netAcq {
							acqAll[cls] = true
						}
						for cls := range sum.netRel {
							relAll[cls] = true
						}
					}
				}
			}
			return true
		})
	}
	walk(node.Decl.Body)
	s := &lockSummary{acq: trans, netAcq: make(map[lockClass]bool), netRel: make(map[lockClass]bool)}
	for cls := range acqAll {
		if !relAll[cls] {
			s.netAcq[cls] = true
		}
	}
	for cls := range relAll {
		if !acqAll[cls] {
			s.netRel[cls] = true
		}
	}
	return s
}

// directOp classifies a call as a direct sync.Mutex/RWMutex
// acquire/release and returns the lock class of its receiver.
func (g *LockGraph) directOp(node *CGNode, call *ast.CallExpr) (lockClass, lockOpKind, bool) {
	fn := calleeFunc(node.Pkg.Info, call)
	if fn == nil {
		return "", opNone, false
	}
	full := fn.FullName()
	var kind lockOpKind
	switch {
	case lockAcqFuncs[full]:
		kind = opLock
	case unlockFuncs[full]:
		kind = opUnlock
	default:
		return "", opNone, false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone, false
	}
	return g.classOf(node, sel.X), kind, true
}

// classOf names the lock class of a mutex expression: the declaring
// struct field for x.f-shaped receivers, the package-level variable or
// enclosing function's local otherwise.
func (g *LockGraph) classOf(node *CGNode, mutex ast.Expr) lockClass {
	info := node.Pkg.Info
	switch x := ast.Unparen(mutex).(type) {
	case *ast.SelectorExpr:
		base := info.TypeOf(x.X)
		if base != nil {
			if p, ok := base.(*types.Pointer); ok {
				base = p.Elem()
			}
			if named, ok := base.(*types.Named); ok && named.Obj().Pkg() != nil {
				return lockClass(g.m.pkgRel(named.Obj().Pkg()) + "." + named.Obj().Name() + "." + x.Sel.Name)
			}
		}
		return lockClass(node.Pkg.Rel + "." + types.ExprString(x))
	case *ast.Ident:
		if obj := info.Uses[x]; obj != nil && obj.Pkg() != nil {
			if obj.Parent() == obj.Pkg().Scope() { // package-level mutex
				return lockClass(g.m.pkgRel(obj.Pkg()) + "." + x.Name)
			}
		}
		return lockClass(node.Pkg.Rel + "." + node.Fn.Name() + "." + x.Name)
	}
	return lockClass(node.Pkg.Rel + "." + types.ExprString(mutex))
}

// pkgRel renders a package path relative to the module root.
func (m *Module) pkgRel(p *types.Package) string {
	path := p.Path()
	if path == m.Path {
		return "."
	}
	return strings.TrimPrefix(path, m.Path+"/")
}

// callees resolves a call to its module-local callees (fanning out
// over interface dispatch), or nil.
func (g *LockGraph) callees(node *CGNode, call *ast.CallExpr) []*types.Func {
	fn := calleeFunc(node.Pkg.Info, call)
	if fn == nil {
		return nil
	}
	if iface := ifaceRecv(fn); iface != nil {
		return g.m.callGraph().implementers(fn, iface)
	}
	return []*types.Func{fn}
}

// heldEntry is one lock class lexically held during the edge scan.
type heldEntry struct {
	cls lockClass
	pos token.Pos
}

// lockWalker performs the lexical held-set scan that records edges.
// The recursion mirrors lockscope's scanner: nested blocks see a copy
// of the held set, defer mu.Unlock() keeps the section open to the end
// of the function, go statements run on their own schedule.
type lockWalker struct {
	g    *LockGraph
	node *CGNode
}

func (w *lockWalker) scan(stmts []ast.Stmt, held []heldEntry) {
	held = append([]heldEntry(nil), held...)
	for _, stmt := range stmts {
		for {
			ls, ok := stmt.(*ast.LabeledStmt)
			if !ok {
				break
			}
			stmt = ls.Stmt
		}
		switch st := stmt.(type) {
		case *ast.ExprStmt:
			held = w.call(st.X, held, true)
		case *ast.DeferStmt:
			// A deferred release keeps the section open (summaries
			// already balance it); a deferred call that acquires runs
			// with whatever is held at return — record edges only.
			if _, kind, ok := w.g.directOp(w.node, st.Call); ok && kind == opUnlock {
				continue
			}
			w.nested(st, held)
		case *ast.GoStmt:
			// Runs on its own schedule; its body is scanned as a root.
		case *ast.BlockStmt:
			w.scan(st.List, held)
		case *ast.IfStmt:
			w.nestedParts(held, st.Init, wrapExpr(st.Cond))
			w.scan(st.Body.List, held)
			if st.Else != nil {
				w.scan([]ast.Stmt{st.Else}, held)
			}
		case *ast.ForStmt:
			w.nestedParts(held, st.Init, wrapExpr(st.Cond), st.Post)
			w.scan(st.Body.List, held)
		case *ast.RangeStmt:
			w.nestedParts(held, wrapExpr(st.X))
			w.scan(st.Body.List, held)
		case *ast.SwitchStmt:
			w.nestedParts(held, st.Init, wrapExpr(st.Tag))
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.scan(cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			w.nestedParts(held, st.Init, st.Assign)
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.scan(cc.Body, held)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					w.nestedParts(held, cc.Comm)
					w.scan(cc.Body, held)
				}
			}
		default:
			w.nested(stmt, held)
		}
	}
}

// call processes one statement-level call expression, mutating the
// held set when mutate is true.
func (w *lockWalker) call(e ast.Expr, held []heldEntry, mutate bool) []heldEntry {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		w.nested(&ast.ExprStmt{X: e}, held)
		return held
	}
	for _, arg := range call.Args {
		w.nested(&ast.ExprStmt{X: arg}, held)
	}
	if cls, kind, ok := w.g.directOp(w.node, call); ok {
		if kind == opLock {
			w.addEdges(held, cls, call.Pos(), "")
			if mutate {
				held = append(held, heldEntry{cls: cls, pos: call.Pos()})
			}
		} else if mutate {
			held = removeHeld(held, cls)
		}
		return held
	}
	for _, callee := range w.g.callees(w.node, call) {
		sum := w.g.sums[callee]
		if sum == nil {
			continue
		}
		for _, cls := range sortedClasses(sum.acq) {
			w.addEdges(held, cls, call.Pos(), funcLabel(callee))
		}
		if mutate {
			for _, cls := range sortedClasses(sum.netAcq) {
				held = append(held, heldEntry{cls: cls, pos: call.Pos()})
			}
			for _, cls := range sortedClasses(sum.netRel) {
				held = removeHeld(held, cls)
			}
		}
	}
	return held
}

// nested records edges for acquisitions inside a non-statement-level
// node (conditions, assignments, arguments) without mutating held.
func (w *lockWalker) nested(node ast.Node, held []heldEntry) {
	ast.Inspect(node, func(n ast.Node) bool {
		switch v := n.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			_ = v
			return false
		case *ast.CallExpr:
			if cls, kind, ok := w.g.directOp(w.node, v); ok {
				if kind == opLock {
					w.addEdges(held, cls, v.Pos(), "")
				}
				return true
			}
			for _, callee := range w.g.callees(w.node, v) {
				if sum := w.g.sums[callee]; sum != nil {
					for _, cls := range sortedClasses(sum.acq) {
						w.addEdges(held, cls, v.Pos(), funcLabel(callee))
					}
				}
			}
		}
		return true
	})
}

func (w *lockWalker) nestedParts(held []heldEntry, parts ...ast.Stmt) {
	for _, p := range parts {
		if p != nil {
			w.nested(p, held)
		}
	}
}

// addEdges records held -> to edges, skipping same-class edges (the
// shard-ascending pattern) and duplicates per (from, to, site).
func (w *lockWalker) addEdges(held []heldEntry, to lockClass, pos token.Pos, via string) {
	for _, h := range held {
		if h.cls == to {
			continue
		}
		key := fmt.Sprintf("%s|%s|%d", h.cls, to, pos)
		if w.g.edgeSeen[key] {
			continue
		}
		w.g.edgeSeen[key] = true
		w.g.Edges = append(w.g.Edges, LockEdge{From: h.cls, To: to, Pos: pos, Fn: w.node.Fn, Via: via})
	}
}

func removeHeld(held []heldEntry, cls lockClass) []heldEntry {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].cls == cls {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}

func sortedClasses(set map[lockClass]bool) []lockClass {
	out := make([]lockClass, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LockGraphDOT renders the lock-order graph in Graphviz DOT form for
// triage (`tcvs-lint -graph lock`).
func LockGraphDOT(m *Module) string {
	g := m.lockGraph()
	var b strings.Builder
	b.WriteString("digraph lockorder {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n")
	seen := make(map[string]bool)
	for _, e := range g.Edges {
		p := m.Fset.Position(e.Pos)
		label := fmt.Sprintf("%s:%d", m.relFile(p.Filename), p.Line)
		if e.Via != "" {
			label += " via " + e.Via
		}
		line := fmt.Sprintf("  %q -> %q [label=%q];\n", e.From, e.To, label)
		if !seen[line] {
			seen[line] = true
			b.WriteString(line)
		}
	}
	b.WriteString("}\n")
	return b.String()
}
