package lint

import (
	"go/ast"
)

// passSleepRetry bans bare time.Sleep retry loops. A `for { ...;
// time.Sleep(d) }` loop hard-codes its cadence: it cannot jitter, so
// a fleet of clients recovering from the same outage reconnects in
// lockstep (thundering herd), and it cannot back off, so a dead
// endpoint is hammered at full rate forever. Every waiting loop must
// go through internal/backoff — Policy-driven exponential backoff with
// seeded jitter for retries, or backoff.Poll for fixed-interval polls
// (which documents at the call site that a constant cadence is the
// intent, not an accident). internal/fault and internal/backoff are
// exempt: the injector sleeps to SIMULATE latency, and the backoff
// package is where the one legitimate time.Sleep lives.
var passSleepRetry = &Pass{
	Name: nameSleepRetry,
	Doc:  "bare time.Sleep inside a loop body (use internal/backoff)",
	Run:  runSleepRetry,
}

var sleepAllowScope = []string{"internal/fault", "internal/backoff"}

func runSleepRetry(m *Module) []Diag {
	var out []Diag
	for _, pkg := range m.Pkgs {
		if underAny(pkg.Rel, sleepAllowScope...) {
			continue
		}
		for _, f := range pkg.Files {
			// Lexical loop depth, with a save/restore around function
			// literals: a sleep inside `go func(){...}()` launched from
			// a loop runs once per goroutine, not once per iteration.
			depth := 0
			var saved []int
			var stack []ast.Node
			ast.Inspect(f, func(n ast.Node) bool {
				if n == nil {
					top := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					switch top.(type) {
					case *ast.ForStmt, *ast.RangeStmt:
						depth--
					case *ast.FuncLit:
						depth, saved = saved[len(saved)-1], saved[:len(saved)-1]
					}
					return true
				}
				stack = append(stack, n)
				switch n.(type) {
				case *ast.ForStmt, *ast.RangeStmt:
					depth++
				case *ast.FuncLit:
					saved = append(saved, depth)
					depth = 0
				}
				if call, ok := n.(*ast.CallExpr); ok && depth > 0 {
					if fn := calleeFunc(pkg.Info, call); fn != nil && fn.FullName() == "time.Sleep" {
						out = append(out, m.diagf(nameSleepRetry, call.Pos(),
							"time.Sleep in a loop in %s: retry/poll cadence must come from internal/backoff (jitter + cap), not a hard-coded sleep", pkg.Rel))
					}
				}
				return true
			})
		}
	}
	return out
}
