package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file builds the module's type-resolved static call graph — the
// shared substrate under the interprocedural passes (verifyflow,
// lockorder, and panicfree's successor analyses). Nodes are the
// declared functions and methods of the module; edges are
//
//   - direct static calls (pkg.F(), recv.Method()),
//   - method values and function values referenced without being
//     called (f := enc.Encode; later f(v)) — recorded as "ref" edges,
//     since the reference may be invoked anywhere, and
//   - interface dispatch, resolved by method-set matching: a call
//     through an interface method fans out to every module-local
//     concrete type whose method set satisfies the interface.
//
// Calls through bare function-typed variables and parameters are the
// one dynamic feature with no static callee at all; passes that need
// the untrusted transport boundary model it declaratively instead
// (see verifyflow's entry-point table).

// CGEdge is one call site (or function-value reference) with its
// statically resolved callee set.
type CGEdge struct {
	Pos     token.Pos
	Call    *ast.CallExpr // nil for a bare function/method-value reference
	Callees []*types.Func // 1 for static calls, N for interface dispatch
	Dynamic bool          // resolved by interface method-set matching
}

// CGNode is one declared function or method of the module.
type CGNode struct {
	Fn    *types.Func
	Pkg   *Package
	Decl  *ast.FuncDecl
	Edges []CGEdge
}

// CallGraph is the module's static call graph.
type CallGraph struct {
	m     *Module
	Nodes map[*types.Func]*CGNode

	order []*types.Func // deterministic iteration order (by FullName)

	named     []*types.Named                // module-local concrete named types
	implCache map[*types.Func][]*types.Func // interface method -> implementations
}

// callGraph builds (and caches) the module's call graph.
func (m *Module) callGraph() *CallGraph {
	if m.cg != nil {
		return m.cg
	}
	g := &CallGraph{
		m:         m,
		Nodes:     make(map[*types.Func]*CGNode),
		implCache: make(map[*types.Func][]*types.Func),
	}
	pkgs := m.modulePackages()
	g.collectNamed(pkgs)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				obj, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				node := &CGNode{Fn: obj, Pkg: pkg, Decl: fd}
				g.collectEdges(node, pkg, fd.Body)
				g.Nodes[obj] = node
			}
		}
	}
	for fn := range g.Nodes {
		g.order = append(g.order, fn)
	}
	sort.Slice(g.order, func(i, j int) bool { return g.order[i].FullName() < g.order[j].FullName() })
	m.cg = g
	return g
}

// modulePackages returns every loaded module-internal package in
// deterministic order. load() only caches module packages, so the map
// is exactly the module's transitive closure of the load patterns.
func (m *Module) modulePackages() []*Package {
	var out []*Package
	for _, p := range m.pkgs {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ImportPath < out[j].ImportPath })
	return out
}

// collectNamed indexes the module's concrete named types for
// interface method-set matching.
func (g *CallGraph) collectNamed(pkgs []*Package) {
	for _, pkg := range pkgs {
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok || types.IsInterface(named) {
				continue
			}
			g.named = append(g.named, named)
		}
	}
	sort.Slice(g.named, func(i, j int) bool {
		return g.named[i].Obj().Pkg().Path()+"."+g.named[i].Obj().Name() <
			g.named[j].Obj().Pkg().Path()+"."+g.named[j].Obj().Name()
	})
}

// collectEdges walks one function body recording call and reference
// edges.
func (g *CallGraph) collectEdges(node *CGNode, pkg *Package, body *ast.BlockStmt) {
	// Idents that are the operator of a call — excluded from the
	// function-value reference sweep below.
	calleeIdent := make(map[*ast.Ident]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			calleeIdent[fun] = true
		case *ast.SelectorExpr:
			calleeIdent[fun.Sel] = true
		}
		fn := calleeFunc(pkg.Info, call)
		if fn == nil {
			return true
		}
		if iface := ifaceRecv(fn); iface != nil {
			impls := g.implementers(fn, iface)
			if len(impls) > 0 {
				node.Edges = append(node.Edges, CGEdge{Pos: call.Pos(), Call: call, Callees: impls, Dynamic: true})
			}
			return true
		}
		node.Edges = append(node.Edges, CGEdge{Pos: call.Pos(), Call: call, Callees: []*types.Func{fn}})
		return true
	})
	// Function and method values referenced without being called: the
	// reference can be invoked from anywhere, so it is an edge.
	ast.Inspect(body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || calleeIdent[id] {
			return true
		}
		fn, ok := pkg.Info.Uses[id].(*types.Func)
		if !ok {
			return true
		}
		node.Edges = append(node.Edges, CGEdge{Pos: id.Pos(), Callees: []*types.Func{fn}})
		return true
	})
}

// ifaceRecv returns the receiver interface of an interface method, or
// nil for concrete functions and methods.
func ifaceRecv(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// implementers resolves an interface method to the concrete
// module-local methods that satisfy it (method-set matching over both
// T and *T).
//
// Fan-out is restricted to interfaces the module itself declares:
// those are intentional dispatch boundaries (server.Server,
// transport.Caller, broadcast.Channel) with a handful of deliberate
// implementations. Structural stdlib interfaces — io.Closer,
// fmt.Stringer, error — match half the module by accident and would
// drown the analyses in phantom edges (every Close() method reachable
// from every io.Closer call site). Calls through stdlib interfaces
// are instead modeled declaratively (verifyflow's source table keys
// on the interface method itself) or conservatively (unknown callee).
func (g *CallGraph) implementers(method *types.Func, iface *types.Interface) []*types.Func {
	if pkg := method.Pkg(); pkg == nil || !g.m.inModule(pkg.Path()) {
		return nil
	}
	if impls, ok := g.implCache[method]; ok {
		return impls
	}
	var impls []*types.Func
	for _, named := range g.named {
		ptr := types.NewPointer(named)
		if !types.Implements(named, iface) && !types.Implements(ptr, iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(ptr, true, method.Pkg(), method.Name())
		if impl, ok := obj.(*types.Func); ok {
			impls = append(impls, impl)
		}
	}
	g.implCache[method] = impls
	return impls
}

// inModule reports whether an import path lies inside this module.
func (m *Module) inModule(path string) bool {
	return path == m.Path || strings.HasPrefix(path, m.Path+"/")
}

// node returns the graph node for fn (nil if fn has no body in the
// module — stdlib, interface methods, bodyless decls).
func (g *CallGraph) node(fn *types.Func) *CGNode { return g.Nodes[fn] }

// CallGraphDOT renders the module call graph in Graphviz DOT form for
// triage (`tcvs-lint -graph call`). Nodes outside the module (stdlib
// callees) are elided; dynamic (interface-dispatched) edges are
// dashed.
func CallGraphDOT(m *Module) string {
	g := m.callGraph()
	var b strings.Builder
	b.WriteString("digraph callgraph {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n")
	for _, fn := range g.order {
		node := g.Nodes[fn]
		seen := make(map[string]bool)
		for _, e := range node.Edges {
			for _, callee := range e.Callees {
				if g.Nodes[callee] == nil {
					continue // outside the module
				}
				attr := ""
				if e.Dynamic {
					attr = " [style=dashed]"
				}
				line := fmt.Sprintf("  %q -> %q%s;\n", funcLabel(fn), funcLabel(callee), attr)
				if !seen[line] {
					seen[line] = true
					b.WriteString(line)
				}
			}
		}
	}
	b.WriteString("}\n")
	return b.String()
}
