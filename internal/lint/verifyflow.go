package lint

import (
	"fmt"
	"strings"
)

// passVerifyFlow machine-checks the paper's core security argument as
// a dataflow property: bytes that arrive from an untrusted party (the
// server's wire replies, raw network reads, snapshot files, hub
// messages, inbound RPC parameters) must pass through VO or signature
// verification before they can influence trusted client state (pinned
// register digests, the authenticated DB, witness commitment logs,
// audit reports) or be delivered as an answer. The lexical passes
// police conventions; this one follows the data through calls — a
// decode helper three frames away from the unverified store is still a
// finding.
//
// The one deliberate relaxation is the admission gate: a function that
// blocks on audit.WaitAdmissible has discharged its obligation for
// optimistically delivered results (the E17 design: answers may be
// used before verification only because the gate bounds how far an
// unverified epoch can run). See taint.go for the engine semantics.
var passVerifyFlow = &Pass{
	Name: nameVerifyFlow,
	Doc:  "untrusted input reaching trusted state or answer delivery without VO/signature verification on the path",
	Run:  runVerifyFlow,
}

// verifyflowExcluded lists module subtrees that sit outside the trust
// boundary: test harnesses, adversaries and fault injectors exist to
// *produce* unverified flows, and the lint package itself analyzes
// untrusted source text by design.
var verifyflowExcluded = []string{
	"internal/adversary", "internal/baseline", "internal/bench",
	"internal/fault", "internal/lint", "internal/sim", "internal/workload",
}

func verifyflowSpec(modPath string) *flowSpec {
	q := func(format string) string { return fmt.Sprintf(format, modPath) }
	return &flowSpec{
		pass: nameVerifyFlow,
		sources: map[string]sourceSpec{
			// Wire decodes: everything a Decoder yields came from the peer.
			q("(*%s/internal/wire.Decoder).Decode"):  {srcResults, "a wire decode"},
			q("%s/internal/wire.Read"):               {srcResults, "a legacy wire read"},
			q("(*%s/internal/wire.Conn).Call"):       {srcResults, "a wire RPC reply"},
			q("(*%s/internal/wire.LegacyConn).Call"): {srcResults, "a wire RPC reply"},
			// Transport replies: the server's answer before verification.
			q("(%s/internal/transport.Caller).Call"):           {srcResults, "a transport RPC reply"},
			q("(*%s/internal/transport.ResilientClient).Call"): {srcResults, "a transport RPC reply"},
			q("(*%s/internal/transport.Inproc).Call"):          {srcResults, "a transport RPC reply"},
			// Snapshot loads: file contents are untrusted until their
			// restored head is checked against a pinned commitment
			// (the envelope checksum only proves storage integrity).
			q("%s/internal/server.LoadP2"):     {srcResults, "a snapshot load"},
			q("%s/internal/server.LoadP3"):     {srcResults, "a snapshot load"},
			q("%s/internal/server.LoadP2Auto"): {srcResults, "a snapshot load"},
			// Raw network reads fill their buffer argument.
			"(net.Conn).Read":                   {srcArg0, "a raw network read"},
			"(*net.TCPConn).Read":               {srcArg0, "a raw network read"},
			q("(*%s/internal/fault.Conn).Read"): {srcArg0, "a raw network read"},
			// Hub messages: peer-relayed broadcasts. The interface key
			// covers calls through broadcast.Channel; the concrete keys
			// cover direct use of an implementation.
			q("(%s/internal/broadcast.Channel).Recv"):        {srcChanRecv, "a broadcast hub message"},
			q("(*%s/internal/broadcast.hubChannel).Recv"):    {srcChanRecv, "a broadcast hub message"},
			q("(*%s/internal/broadcast.tcpChannel).Recv"):    {srcChanRecv, "a broadcast hub message"},
			q("(*%s/internal/broadcast.resumeChannel).Recv"): {srcChanRecv, "a broadcast hub message"},
		},
		entries: map[string]string{
			// The transport handler is a bare func type, so the
			// decode→dispatch hop has no static callee; the trust
			// boundary is modeled at the handler implementations
			// instead. Interface keys fan out to every implementation
			// by method-set matching.
			q("(%s/internal/server.Server).HandleOp"):         "an inbound client request",
			q("(%s/internal/server.Server).HandleAck"):        "an inbound client request",
			q("(%s/internal/server.Server).HandleGetBackups"): "an inbound client request",
			q("(*%s/internal/witness.Node).handleSubmit"):     "an inbound witness submission",
			q("(*%s/internal/witness.Node).handleSnapshot"):   "an inbound witness snapshot",
			q("(*%s/internal/witness.Node).handleLatest"):     "an inbound witness query",
			q("(*%s/internal/witness.Node).handleGossip"):     "an inbound witness gossip",
		},
		sinks: map[string]string{
			q("(*%s/internal/vdb.Tx).Put"):                 "the authenticated DB (vdb.Tx.Put)",
			q("(*%s/internal/vdb.Tx).Delete"):              "the authenticated DB (vdb.Tx.Delete)",
			q("(*%s/internal/core.Registers).Absorb"):      "the pinned register digests (Registers.Absorb)",
			q("(*%s/internal/witness.Check).Observe"):      "the pinned witness roots (Check.Observe)",
			q("(*%s/internal/witness.Check).ObserveBatch"): "the pinned witness roots (Check.ObserveBatch)",
			q("(*%s/internal/witness.Log).Append"):         "the witness commitment log (Log.Append)",
			q("(*%s/internal/audit.Auditor).SubmitReport"): "the audit report ledger (Auditor.SubmitReport)",
		},
		deliveries: map[string]string{
			q("(*%s/internal/driver.Client).Do"):    "answer delivery (driver.Client.Do)",
			q("(*%s/internal/driver.Client).Fetch"): "answer delivery (driver.Client.Fetch)",
		},
		sanitizers: map[string]bool{
			q("%s/internal/vdb.Verify"):                     true,
			q("%s/internal/vdb.VerifyDerive"):               true,
			q("%s/internal/vdb.VerifyDeriveTree"):           true,
			q("%s/internal/vdb.ReplayOn"):                   true,
			"crypto/ed25519.Verify":                         true,
			q("(*%s/internal/sig.Ring).Verify"):             true,
			q("(*%s/internal/core.EpochBackup).Verify"):     true,
			q("(*%s/internal/forensics.Commitment).Verify"): true,
			q("(*%s/internal/forensics.Evidence).Verify"):   true,
			q("%s/internal/server.readChecksummed"):         true,
			// The Protocol II user-side verifiers ARE the paper's VO
			// check: every response leg is verified against the pinned
			// registers before its answer is surfaced.
			q("(*%s/internal/core/proto2.User).VerifyResponse"):       true,
			q("(*%s/internal/core/proto2.User).VerifyResponseForest"): true,
			// Content-hash check for fetched RCS blobs.
			q("%s/internal/rcs.CheckContent"): true,
		},
		gates: map[string]bool{
			q("(*%s/internal/audit.Auditor).WaitAdmissible"): true,
		},
		reportIn: func(rel string) bool {
			if strings.HasPrefix(rel, "cmd") || strings.HasPrefix(rel, "examples") {
				return false
			}
			return !underAny(rel, verifyflowExcluded...)
		},
	}
}

func runVerifyFlow(m *Module) []Diag {
	return runTaint(m, verifyflowSpec(m.Path))
}
