package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// passLockScope guards PR 1's "narrow serial section" win: inside
// internal/vdb, internal/core/..., and internal/transport, no call
// from the configured slow-call set (gob encode/decode, Ed25519
// sign/verify, net.Conn reads/writes, os.File I/O, and the module's
// own wrappers around them) may appear lexically between a mutex Lock
// and its Unlock. One blocking call re-inserted under the vdb.DB or a
// protocol mutex reverts the E13 concurrency win without failing any
// test — exactly the regression a compiler cannot see.
//
// The analysis is lexical, per statement list: a `defer mu.Unlock()`
// keeps the section open to the end of the enclosing function, an
// explicit `mu.Unlock()` closes it. Function literals are skipped
// (goroutines and callbacks run on their own schedule), and calls made
// *indirectly* under the lock (via a helper) are only caught if the
// helper itself is in the slow-call set — the set therefore includes
// the module's own codec/signing wrappers.
var passLockScope = &Pass{
	Name: nameLockScope,
	Doc:  "slow calls (codec, crypto, network, disk) inside mutex critical sections of the hot-path packages",
	Run:  runLockScope,
}

// internal/audit is in scope because the async auditor's whole value
// is that verification (hashing, VO replay, signature checks) happens
// off the hot path: one slow call slipped under the queue mutex makes
// Submit block behind the drain and silently reverts E17's win.
var lockscopeScope = []string{"internal/vdb", "internal/core", "internal/transport", "internal/audit"}

// Mutex acquire/release method sets, by FullName.
var (
	lockFuncs = map[string]bool{
		"(*sync.Mutex).Lock":    true,
		"(*sync.RWMutex).Lock":  true,
		"(*sync.RWMutex).RLock": true,
	}
	unlockFuncs = map[string]bool{
		"(*sync.Mutex).Unlock":    true,
		"(*sync.RWMutex).Unlock":  true,
		"(*sync.RWMutex).RUnlock": true,
	}
)

func runLockScope(m *Module) []Diag {
	var out []Diag
	for _, pkg := range m.Pkgs {
		if !underAny(pkg.Rel, lockscopeScope...) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				s := &lockScanner{m: m, pkg: pkg, out: &out}
				s.scan(fd.Body.List, nil)
			}
		}
	}
	return out
}

// heldLock is one lexically held mutex.
type heldLock struct {
	recv string // rendered receiver expression, e.g. "db.mu"
	line int
}

type lockScanner struct {
	m   *Module
	pkg *Package
	out *[]Diag
}

// scan walks one statement list tracking which mutexes are lexically
// held. Nested blocks are scanned with a copy of the held set; lock
// state changes inside them do not leak out (a lexical approximation
// that matches every locking pattern in this codebase).
func (s *lockScanner) scan(stmts []ast.Stmt, held []heldLock) {
	held = append([]heldLock(nil), held...)
	for _, stmt := range stmts {
		for {
			ls, ok := stmt.(*ast.LabeledStmt)
			if !ok {
				break
			}
			stmt = ls.Stmt
		}
		switch st := stmt.(type) {
		case *ast.ExprStmt:
			if recv, kind := s.lockOp(st.X); kind == opLock {
				held = append(held, heldLock{recv: recv, line: s.m.Fset.Position(st.Pos()).Line})
				continue
			} else if kind == opUnlock {
				held = removeLock(held, recv)
				continue
			}
			s.inspect(st, held)
		case *ast.DeferStmt:
			// defer mu.Unlock() keeps the section open to the end of
			// the function, so it does not alter the held set; any
			// other deferred call runs while the lock is still held.
			if _, kind := s.lockOp(st.Call); kind == opNone {
				s.inspect(st, held)
			}
		case *ast.GoStmt:
			// The goroutine body runs on its own schedule, not under
			// this critical section.
		case *ast.BlockStmt:
			s.scan(st.List, held)
		case *ast.IfStmt:
			s.inspectParts(held, st.Init, wrapExpr(st.Cond))
			s.scan(st.Body.List, held)
			if st.Else != nil {
				s.scan([]ast.Stmt{st.Else}, held)
			}
		case *ast.ForStmt:
			s.inspectParts(held, st.Init, wrapExpr(st.Cond), st.Post)
			s.scan(st.Body.List, held)
		case *ast.RangeStmt:
			s.inspectParts(held, wrapExpr(st.X))
			s.scan(st.Body.List, held)
		case *ast.SwitchStmt:
			s.inspectParts(held, st.Init, wrapExpr(st.Tag))
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					s.scan(cc.Body, held)
				}
			}
		case *ast.TypeSwitchStmt:
			s.inspectParts(held, st.Init, st.Assign)
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					s.scan(cc.Body, held)
				}
			}
		case *ast.SelectStmt:
			for _, c := range st.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					s.inspectParts(held, cc.Comm)
					s.scan(cc.Body, held)
				}
			}
		default:
			s.inspect(stmt, held)
		}
	}
}

func wrapExpr(e ast.Expr) ast.Stmt {
	if e == nil {
		return nil
	}
	return &ast.ExprStmt{X: e}
}

func (s *lockScanner) inspectParts(held []heldLock, parts ...ast.Stmt) {
	for _, p := range parts {
		if p != nil {
			s.inspect(p, held)
		}
	}
}

// inspect flags slow calls inside node while any lock is held,
// skipping function literals.
func (s *lockScanner) inspect(node ast.Node, held []heldLock) {
	if len(held) == 0 {
		return
	}
	ast.Inspect(node, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(s.pkg.Info, call)
		if fn == nil {
			return true
		}
		if full := fn.FullName(); s.m.SlowCalls[full] {
			lk := held[len(held)-1]
			*s.out = append(*s.out, s.m.diagf(nameLockScope, call.Pos(),
				"slow call %s inside the critical section of %s.Lock() (line %d): keep the serial section narrow — move it after Unlock or into a Finish-style stage",
				full, lk.recv, lk.line))
		}
		return true
	})
}

type lockOpKind int

const (
	opNone lockOpKind = iota
	opLock
	opUnlock
)

// lockOp classifies an expression as a mutex Lock/Unlock call and
// returns the rendered receiver ("db.mu").
func (s *lockScanner) lockOp(e ast.Expr) (string, lockOpKind) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return "", opNone
	}
	fn := calleeFunc(s.pkg.Info, call)
	if fn == nil {
		return "", opNone
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", opNone
	}
	full := fn.FullName()
	switch {
	case lockFuncs[full]:
		return types.ExprString(sel.X), opLock
	case unlockFuncs[full]:
		return types.ExprString(sel.X), opUnlock
	}
	// Module-local lock wrappers: the forest's per-shard ordered
	// sections are entered through instrumented shard.lock()/unlock()
	// methods — not bare sync.Mutex calls — and forest-wide cuts
	// through lockOrdered/unlockOrdered-style helpers. A method of this
	// module whose name is "lock"/"unlock" exactly, or that prefix at a
	// camel boundary ("lockOrdered", "unlockAll"), acquires/releases
	// its receiver's section; without this, wrapping a mutex once would
	// blind the pass to every forest critical section.
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil &&
		fn.Pkg() != nil && strings.HasPrefix(fn.Pkg().Path(), s.m.Path) {
		if k := wrapperLockKind(fn.Name()); k != opNone {
			return types.ExprString(sel.X), k
		}
	}
	return "", opNone
}

// wrapperLockKind classifies a module-local method name as a lock or
// unlock wrapper. "unlock" is matched first: it would otherwise never
// match, since every "unlock…" name fails the "lock…" prefix test
// anyway — the order just makes the intent explicit.
func wrapperLockKind(name string) lockOpKind {
	if rest, ok := strings.CutPrefix(name, "unlock"); ok && camelBoundary(rest) {
		return opUnlock
	}
	if rest, ok := strings.CutPrefix(name, "lock"); ok && camelBoundary(rest) {
		return opLock
	}
	return opNone
}

// camelBoundary reports whether a wrapper prefix ends the method name
// or is followed by an uppercase camel segment — so "lock" and
// "lockOrdered" count while "locked" and "lockstep" do not.
func camelBoundary(rest string) bool {
	return rest == "" || (rest[0] >= 'A' && rest[0] <= 'Z')
}

func removeLock(held []heldLock, recv string) []heldLock {
	for i := len(held) - 1; i >= 0; i-- {
		if held[i].recv == recv {
			return append(held[:i:i], held[i+1:]...)
		}
	}
	return held
}
