// Package lint implements tcvs-lint, the repo's stdlib-only invariant
// analyzer. The protocols' security argument rests on conventions the
// compiler cannot enforce — every hash goes through internal/digest's
// domain-separated helpers, the pipelined servers' serial sections stay
// narrow, network-facing gob decoding stays behind internal/wire's
// MaxMessage budget, verification paths stay deterministic, and
// error-carrying verification results are never dropped. This package
// machine-checks those conventions on every commit (scripts/check.sh
// runs `tcvs-lint ./...` as a hard gate).
//
// The analyzer is deliberately built on nothing but the standard
// library (go/parser, go/ast, go/types, go/importer): it must run in
// the same sandboxed environments as the tests, with no module
// downloads.
//
// # Suppressions
//
// A finding is suppressed by a comment on the same line or the line
// directly above it:
//
//	//lint:ignore <pass>[,<pass>...] <reason>
//
// The reason is mandatory; a directive without one is ignored. The
// pass name "all" suppresses every pass.
package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"sort"
	"time"
)

// A Diag is one finding: a violated invariant at a source position.
type Diag struct {
	Pass string `json:"pass"`
	File string `json:"file"` // slash-separated, relative to the module root
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Msg  string `json:"msg"`
}

// String renders the finding in the conventional file:line:col form.
func (d Diag) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Pass, d.Msg)
}

// A Pass is one invariant checker run over a loaded module.
type Pass struct {
	Name string
	Doc  string
	Run  func(m *Module) []Diag
}

// Pass names (referenced by run functions; keeping them as constants
// avoids initialization cycles through the Pass variables).
const (
	nameHashDiscipline = "hashdiscipline"
	nameLockScope      = "lockscope"
	nameRandSource     = "randsource"
	nameErrDrop        = "errdrop"
	namePanicFree      = "panicfree"
	nameSleepRetry     = "sleepretry"
	nameVerifyFlow     = "verifyflow"
	nameLockOrder      = "lockorder"
	nameSyncDiscipline = "syncdiscipline"
	nameBoundedQueue   = "boundedqueue"
	nameDeadIgnore     = "deadignore"
)

// Passes returns all registered passes in their canonical order.
// deadignore is last by construction: it audits the suppression
// directives the other passes consumed, so they must run first (Run
// reorders it to the end regardless of the list it is given).
func Passes() []*Pass {
	return []*Pass{
		passHashDiscipline,
		passLockScope,
		passRandSource,
		passErrDrop,
		passPanicFree,
		passSleepRetry,
		passVerifyFlow,
		passLockOrder,
		passSyncDiscipline,
		passBoundedQueue,
		passDeadIgnore,
	}
}

// knownPassNames mirrors Passes() as plain constants so deadignore can
// consult it without an initialization cycle through the Pass vars.
var knownPassNames = map[string]bool{
	nameHashDiscipline: true,
	nameLockScope:      true,
	nameRandSource:     true,
	nameErrDrop:        true,
	namePanicFree:      true,
	nameSleepRetry:     true,
	nameVerifyFlow:     true,
	nameLockOrder:      true,
	nameSyncDiscipline: true,
	nameBoundedQueue:   true,
	nameDeadIgnore:     true,
}

// PassByName resolves a comma-separable pass name; nil if unknown.
func PassByName(name string) *Pass {
	for _, p := range Passes() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Run executes the passes over the module, filters suppressed findings,
// and returns the rest sorted by position.
func Run(m *Module, passes []*Pass) []Diag {
	out, _ := RunTimed(m, passes)
	return out
}

// PassTiming is one pass's wall-clock cost for a RunTimed invocation.
type PassTiming struct {
	Name    string
	Elapsed time.Duration
}

// RunTimed is Run plus per-pass wall-clock timings (scripts/check.sh
// prints them so a pass that regresses into pathological cost is
// visible in CI output, not just felt).
func RunTimed(m *Module, passes []*Pass) ([]Diag, []PassTiming) {
	// deadignore always runs last: it reports directives that
	// suppressed nothing, which is only known after the other
	// requested passes have run and consumed their suppressions.
	ordered := make([]*Pass, 0, len(passes))
	var dead *Pass
	for _, p := range passes {
		if p.Name == nameDeadIgnore {
			dead = p
			continue
		}
		ordered = append(ordered, p)
	}
	if dead != nil {
		ordered = append(ordered, dead)
	}
	if m.ranPasses == nil {
		m.ranPasses = make(map[string]bool)
	}
	for _, p := range ordered {
		m.ranPasses[p.Name] = true
	}

	var out []Diag
	var timings []PassTiming
	for _, p := range ordered {
		start := time.Now()
		for _, d := range p.Run(m) {
			if !m.suppressed(p.Name, d) {
				out = append(out, d)
			}
		}
		timings = append(timings, PassTiming{Name: p.Name, Elapsed: time.Since(start)})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Pass != b.Pass {
			return a.Pass < b.Pass
		}
		return a.Msg < b.Msg
	})
	return out, timings
}

// calleeFunc resolves the function or method a call statically invokes.
// Calls through function-typed variables, interface values with no
// static callee, or type conversions return nil.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// underAny reports whether a module-relative package path equals one of
// the given roots or sits beneath one of them.
func underAny(rel string, roots ...string) bool {
	for _, r := range roots {
		if rel == r || (len(rel) > len(r) && rel[:len(r)] == r && rel[len(r)] == '/') {
			return true
		}
	}
	return false
}
