package lint

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
)

// passBoundedQueue enforces the overload-protection discipline on the
// server-side hot paths (internal/transport, internal/server,
// internal/audit, internal/broadcast): every queue must carry a
// visible bound. Unbounded queues are how graceful degradation fails
// in practice — under overload they convert excess load into latency
// and memory growth instead of typed refusals, defeating admission
// control wholesale. Two shapes are flagged:
//
//   - make(chan T, n) where n is not a compile-time constant: a
//     request- or config-scaled buffer is an unbounded queue from the
//     analyzer's point of view; if the scaling is genuinely bounded,
//     say where, in a //lint:ignore boundedqueue reason.
//   - self-appends that grow long-lived state (x.f = append(x.f, ...)
//     on a struct field, or p = append(p, ...) on a package-level
//     variable) with no visible bound in the same function — no
//     len/cap comparison of the queue and no reslice of it. Local
//     slices are builders, not queues, and stay exempt.
var passBoundedQueue = &Pass{
	Name: nameBoundedQueue,
	Doc:  "unbounded buffered channels and append-grown queues on server/transport/audit paths",
	Run:  runBoundedQueue,
}

var boundedQueueScope = []string{
	"internal/transport",
	"internal/server",
	"internal/audit",
	"internal/broadcast",
}

func runBoundedQueue(m *Module) []Diag {
	var out []Diag
	for _, pkg := range m.Pkgs {
		if !underAny(pkg.Rel, boundedQueueScope...) {
			continue
		}
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok || fd.Body == nil {
					continue
				}
				out = append(out, boundedQueueFunc(m, pkg, fd)...)
			}
		}
	}
	return out
}

func boundedQueueFunc(m *Module, pkg *Package, fd *ast.FuncDecl) []Diag {
	var out []Diag
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if d, ok := flagChanMake(m, pkg, n); ok {
				out = append(out, d)
			}
		case *ast.AssignStmt:
			if d, ok := flagQueueAppend(m, pkg, fd, n); ok {
				out = append(out, d)
			}
		}
		return true
	})
	return out
}

// flagChanMake reports make(chan T, n) with a non-constant capacity.
func flagChanMake(m *Module, pkg *Package, call *ast.CallExpr) (Diag, bool) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "make" || len(call.Args) < 2 {
		return Diag{}, false
	}
	if _, ok := pkg.Info.Uses[id].(*types.Builtin); !ok {
		return Diag{}, false
	}
	if _, ok := ast.Unparen(call.Args[0]).(*ast.ChanType); !ok {
		return Diag{}, false
	}
	capArg := call.Args[1]
	if tv, ok := pkg.Info.Types[capArg]; ok && tv.Value != nil {
		return Diag{}, false // compile-time constant: bounded by construction
	}
	return m.diagf(nameBoundedQueue, call.Pos(),
		"buffered channel capacity %s is not a compile-time constant: a scaled buffer is an unbounded queue under overload — bound it, or annotate where the bound lives", exprString(capArg)), true
}

// flagQueueAppend reports x = append(x, ...) growing a struct field or
// package-level variable when the enclosing function shows no bound on
// x (no len/cap comparison, no reslice).
func flagQueueAppend(m *Module, pkg *Package, fd *ast.FuncDecl, as *ast.AssignStmt) (Diag, bool) {
	if as.Tok != token.ASSIGN || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
		return Diag{}, false
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return Diag{}, false
	}
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
		return Diag{}, false
	}
	lhs := exprString(as.Lhs[0])
	if lhs == "" || lhs != exprString(call.Args[0]) {
		return Diag{}, false // not a self-append; reslices and rebuilds are bounds, not growth
	}
	if !longLivedTarget(pkg, fd, as.Lhs[0]) {
		return Diag{}, false
	}
	if functionBoundsQueue(fd, lhs) {
		return Diag{}, false
	}
	return m.diagf(nameBoundedQueue, as.Pos(),
		"%s grows without a visible bound in %s: long-lived queues on this path must be bounded (or annotate where the bound lives)", lhs, fd.Name.Name), true
}

// longLivedTarget reports whether the assignment target outlives the
// call: a field of the method receiver, or a package-level variable
// (bare or package-qualified). Fields of locals are builders —
// snapshot assembly, response marshalling — not queues.
func longLivedTarget(pkg *Package, fd *ast.FuncDecl, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SelectorExpr:
		base, ok := ast.Unparen(e.X).(*ast.Ident)
		if !ok {
			return true // chained selector (x.a.b): deep state, assume long-lived
		}
		obj := pkg.Info.Uses[base]
		if obj == nil {
			return false
		}
		if obj.Parent() == pkg.Types.Scope() {
			return true // package-level struct var
		}
		if _, ok := obj.(*types.PkgName); ok {
			return true // other package's variable
		}
		return identIsReceiver(pkg, fd, base)
	case *ast.Ident:
		obj := pkg.Info.Uses[e]
		if obj == nil {
			obj = pkg.Info.Defs[e]
		}
		return obj != nil && obj.Parent() == pkg.Types.Scope()
	}
	return false
}

// identIsReceiver reports whether id resolves to fd's method receiver.
func identIsReceiver(pkg *Package, fd *ast.FuncDecl, id *ast.Ident) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return false
	}
	recv := pkg.Info.Defs[fd.Recv.List[0].Names[0]]
	return recv != nil && pkg.Info.Uses[id] == recv
}

// functionBoundsQueue reports whether fd's body contains a visible
// bound on the queue expression: a len()/cap() of it inside any
// comparison, or a reslice assigned back to it.
func functionBoundsQueue(fd *ast.FuncDecl, queue string) bool {
	bounded := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if bounded {
			return false
		}
		switch n := n.(type) {
		case *ast.BinaryExpr:
			switch n.Op {
			case token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
				if lenCapOf(n.X) == queue || lenCapOf(n.Y) == queue {
					bounded = true
				}
			}
		case *ast.AssignStmt:
			if len(n.Lhs) == 1 && len(n.Rhs) == 1 && exprString(n.Lhs[0]) == queue {
				if sl, ok := ast.Unparen(n.Rhs[0]).(*ast.SliceExpr); ok && exprString(sl.X) == queue {
					bounded = true
				}
			}
		}
		return true
	})
	return bounded
}

// lenCapOf returns the printed argument of a len(x) or cap(x) call,
// "" otherwise.
func lenCapOf(e ast.Expr) string {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok || len(call.Args) != 1 {
		return ""
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || (id.Name != "len" && id.Name != "cap") {
		return ""
	}
	return exprString(call.Args[0])
}

// exprString prints an expression in source form for syntactic
// equality checks ("c.pending", "h.log").
func exprString(e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, token.NewFileSet(), e); err != nil {
		return ""
	}
	return buf.String()
}
