package lint

import (
	"fmt"
	"sort"
	"strings"
)

// passLockOrder reports potential deadlocks from the static lock-order
// graph (see lockgraph.go): any cross-class cycle in "acquires while
// holding" edges, and any acquisition performed while holding a
// terminal lock class. The forest's documented order is shard locks
// ascending, then the fold mutex fmu — fmu is terminal, so an edge out
// of any class whose field is named fmu is a violation even before it
// closes a cycle.
var passLockOrder = &Pass{
	Name: nameLockOrder,
	Doc:  "lock-order cycles and acquisitions under the terminal fold mutex (documented order: shards ascending, then fmu)",
	Run:  runLockOrder,
}

// terminalLockClass reports whether a class must be the last lock
// acquired on any path (currently: every fold mutex named fmu).
func terminalLockClass(c lockClass) bool { return c.fieldName() == "fmu" }

func runLockOrder(m *Module) []Diag {
	g := m.lockGraph()
	var out []Diag

	// Rule 1: nothing is acquired while a terminal class is held.
	for _, e := range g.Edges {
		if !terminalLockClass(e.From) {
			continue
		}
		via := ""
		if e.Via != "" {
			via = " (inside " + e.Via + ")"
		}
		out = append(out, m.diagf(nameLockOrder, e.Pos,
			"%s acquired while holding %s%s: the fold mutex is terminal in the documented lock order (shard locks ascending, then fmu)",
			e.To, e.From, via))
	}

	// Rule 2: the cross-class graph must be acyclic. One diagnostic per
	// strongly connected component, anchored at the first edge of a
	// shortest cycle through its smallest class.
	adj := make(map[lockClass]map[lockClass]LockEdge)
	for _, e := range g.Edges {
		if adj[e.From] == nil {
			adj[e.From] = make(map[lockClass]LockEdge)
		}
		if _, ok := adj[e.From][e.To]; !ok {
			adj[e.From][e.To] = e
		}
	}
	for _, scc := range lockSCCs(adj) {
		if len(scc) < 2 {
			continue
		}
		sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
		cycle := shortestCycle(adj, scc)
		if len(cycle) == 0 {
			continue
		}
		var b strings.Builder
		b.WriteString(string(cycle[0].From))
		for _, e := range cycle {
			p := m.Fset.Position(e.Pos)
			fmt.Fprintf(&b, " -> %s (%s:%d, in %s)", e.To, m.relFile(p.Filename), p.Line, funcLabel(e.Fn))
		}
		out = append(out, m.diagf(nameLockOrder, cycle[0].Pos,
			"lock-order cycle: %s; the lock hierarchy must be acyclic or these paths can deadlock", b.String()))
	}
	return out
}

// lockSCCs computes strongly connected components of the lock graph
// (iterative Tarjan; deterministic because roots are visited in sorted
// order).
func lockSCCs(adj map[lockClass]map[lockClass]LockEdge) [][]lockClass {
	nodes := make(map[lockClass]bool)
	for from, tos := range adj {
		nodes[from] = true
		for to := range tos {
			nodes[to] = true
		}
	}
	order := make([]lockClass, 0, len(nodes))
	for n := range nodes {
		order = append(order, n)
	}
	sort.Slice(order, func(i, j int) bool { return order[i] < order[j] })

	index := make(map[lockClass]int)
	low := make(map[lockClass]int)
	onStack := make(map[lockClass]bool)
	var stack []lockClass
	var sccs [][]lockClass
	next := 0

	var strongconnect func(v lockClass)
	strongconnect = func(v lockClass) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range sortedNeighbors(adj[v]) {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []lockClass
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sccs = append(sccs, scc)
		}
	}
	for _, v := range order {
		if _, seen := index[v]; !seen {
			strongconnect(v)
		}
	}
	return sccs
}

func sortedNeighbors(tos map[lockClass]LockEdge) []lockClass {
	out := make([]lockClass, 0, len(tos))
	for t := range tos {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// shortestCycle finds a shortest edge path from scc[0] back to itself
// staying inside the component (BFS; deterministic via sorted
// neighbor order).
func shortestCycle(adj map[lockClass]map[lockClass]LockEdge, scc []lockClass) []LockEdge {
	in := make(map[lockClass]bool, len(scc))
	for _, c := range scc {
		in[c] = true
	}
	start := scc[0]
	type step struct {
		node lockClass
		path []LockEdge
	}
	queue := []step{{node: start}}
	visited := map[lockClass]bool{}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, next := range sortedNeighbors(adj[cur.node]) {
			if !in[next] {
				continue
			}
			e := adj[cur.node][next]
			path := append(append([]LockEdge(nil), cur.path...), e)
			if next == start {
				return path
			}
			if !visited[next] {
				visited[next] = true
				queue = append(queue, step{node: next, path: path})
			}
		}
	}
	return nil
}
