package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Module is a loaded, type-checked view of one Go module. Test files
// (_test.go) are excluded: the invariants guard production code, and
// tests legitimately use math/rand, raw frames, and friends.
type Module struct {
	Root string // absolute path of the module root (directory of go.mod)
	Path string // module path from go.mod
	Fset *token.FileSet
	Pkgs []*Package // the packages named by the load patterns, sorted by path

	// SlowCalls is the lockscope pass's slow-call set, keyed by
	// (*types.Func).FullName. LoadModule seeds it with the defaults for
	// the module's own path; callers may add entries.
	SlowCalls map[string]bool

	pkgs      map[string]*Package // every loaded package, including dependencies
	loading   map[string]bool     // cycle guard
	stdGC     types.Importer      // gc export-data importer for the standard library
	stdSrc    types.Importer      // source-importer fallback
	ignores   map[string][]*ignoreDirective
	ranPasses map[string]bool // passes executed by Run (read by deadignore)
	cg        *CallGraph      // lazily built by callGraph()
	lg        *LockGraph      // lazily built by lockGraph()
}

// Package is one type-checked package of the module.
type Package struct {
	ImportPath string
	Rel        string // module-relative path ("" for the root package)
	Dir        string
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// LoadModule locates the module containing dir, then parses and
// type-checks the packages matched by patterns (each pattern is a
// directory relative to dir, optionally ending in "/..."; "./..."
// loads the whole module). Dependencies inside the module are loaded
// transitively; the standard library is imported from export data.
func LoadModule(dir string, patterns []string) (*Module, error) {
	absDir, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, path, err := findModule(absDir)
	if err != nil {
		return nil, err
	}
	m := &Module{
		Root:      root,
		Path:      path,
		Fset:      token.NewFileSet(),
		SlowCalls: defaultSlowCalls(path),
		pkgs:      make(map[string]*Package),
		loading:   make(map[string]bool),
		ignores:   make(map[string][]*ignoreDirective),
	}
	dirs, err := m.expand(absDir, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("lint: no Go packages matched %v", patterns)
	}
	for _, d := range dirs {
		ip, err := m.importPathFor(d)
		if err != nil {
			return nil, err
		}
		pkg, err := m.load(ip)
		if err != nil {
			return nil, err
		}
		m.Pkgs = append(m.Pkgs, pkg)
	}
	sort.Slice(m.Pkgs, func(i, j int) bool { return m.Pkgs[i].ImportPath < m.Pkgs[j].ImportPath })
	return m, nil
}

// findModule walks upward from dir to the enclosing go.mod.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, rerr := os.ReadFile(filepath.Join(d, "go.mod"))
		if rerr == nil {
			p := modFilePath(data)
			if p == "" {
				return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
			}
			return d, p, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

func modFilePath(data []byte) string {
	for _, line := range strings.Split(string(data), "\n") {
		f := strings.Fields(strings.TrimSpace(line))
		if len(f) >= 2 && f[0] == "module" {
			return strings.Trim(f[1], `"`)
		}
	}
	return ""
}

// expand resolves load patterns into package directories.
func (m *Module) expand(start string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(d string) {
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "..." || pat == "./...":
			walked, err := walkPackageDirs(m.Root)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			base := filepath.Join(start, filepath.FromSlash(strings.TrimSuffix(pat, "/...")))
			walked, err := walkPackageDirs(base)
			if err != nil {
				return nil, err
			}
			for _, d := range walked {
				add(d)
			}
		default:
			d := filepath.Join(start, filepath.FromSlash(pat))
			names, err := goFilesIn(d)
			if err != nil {
				return nil, err
			}
			if len(names) == 0 {
				return nil, fmt.Errorf("lint: no Go files in %s", d)
			}
			add(d)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// walkPackageDirs finds every directory under base holding at least one
// non-test Go file, skipping testdata, vendor, hidden and underscore
// directories (the same dirs the go tool skips for "./...").
func walkPackageDirs(base string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if p != base && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		names, err := goFilesIn(p)
		if err != nil {
			return err
		}
		if len(names) > 0 {
			dirs = append(dirs, p)
		}
		return nil
	})
	return dirs, err
}

// goFilesIn lists the non-test Go files of one directory.
func goFilesIn(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)
	return names, nil
}

// importPathFor maps a directory inside the module to its import path.
func (m *Module) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(m.Root, dir)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, m.Root)
	}
	if rel == "." {
		return m.Path, nil
	}
	return m.Path + "/" + filepath.ToSlash(rel), nil
}

// load parses and type-checks one module package (cached).
func (m *Module) load(importPath string) (*Package, error) {
	if p, ok := m.pkgs[importPath]; ok {
		return p, nil
	}
	if m.loading[importPath] {
		return nil, fmt.Errorf("lint: import cycle through %s", importPath)
	}
	m.loading[importPath] = true
	defer delete(m.loading, importPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(importPath, m.Path), "/")
	dir := filepath.Join(m.Root, filepath.FromSlash(rel))
	names, err := goFilesIn(dir)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(m.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	m.collectIgnores(files)

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	var terrs []error
	conf := types.Config{
		Importer: moduleImporter{m},
		Error:    func(err error) { terrs = append(terrs, err) },
	}
	tpkg, _ := conf.Check(importPath, m.Fset, files, info)
	if len(terrs) > 0 {
		if len(terrs) > 3 {
			terrs = terrs[:3]
		}
		return nil, fmt.Errorf("lint: type-checking %s: %v", importPath, terrs)
	}
	pkg := &Package{
		ImportPath: importPath,
		Rel:        rel,
		Dir:        dir,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}
	m.pkgs[importPath] = pkg
	return pkg, nil
}

// moduleImporter routes module-internal imports back through the
// loader and everything else to the standard-library importers.
type moduleImporter struct{ m *Module }

func (mi moduleImporter) Import(path string) (*types.Package, error) {
	return mi.m.importPkg(path)
}

func (m *Module) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == m.Path || strings.HasPrefix(path, m.Path+"/") {
		p, err := m.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	if m.stdGC == nil {
		m.stdGC = importer.Default()
	}
	if p, err := m.stdGC.Import(path); err == nil {
		return p, nil
	}
	// Fallback: type-check the dependency from source (works in
	// environments without export data for some packages).
	if m.stdSrc == nil {
		m.stdSrc = importer.ForCompiler(m.Fset, "source", nil)
	}
	return m.stdSrc.Import(path)
}

// netConn returns the net.Conn interface type for implements-checks,
// or nil if the net package cannot be loaded.
func (m *Module) netConn() *types.Interface {
	p, err := m.importPkg("net")
	if err != nil {
		return nil
	}
	obj := p.Scope().Lookup("Conn")
	if obj == nil {
		return nil
	}
	iface, _ := obj.Type().Underlying().(*types.Interface)
	return iface
}

// diagf builds a Diag at a position.
func (m *Module) diagf(pass string, pos token.Pos, format string, args ...any) Diag {
	p := m.Fset.Position(pos)
	return Diag{
		Pass: pass,
		File: m.relFile(p.Filename),
		Line: p.Line,
		Col:  p.Column,
		Msg:  fmt.Sprintf(format, args...),
	}
}

func (m *Module) relFile(abs string) string {
	if r, err := filepath.Rel(m.Root, abs); err == nil && !strings.HasPrefix(r, "..") {
		return filepath.ToSlash(r)
	}
	return filepath.ToSlash(abs)
}

// defaultSlowCalls is the seed slow-call set for lockscope: work that
// must never run inside a protocol or database critical section. Keys
// are (*types.Func).FullName strings; module-local wrappers around the
// same work are included so one level of indirection cannot hide a
// blocking call.
func defaultSlowCalls(modPath string) map[string]bool {
	set := map[string]bool{
		"crypto/ed25519.Sign":            true,
		"crypto/ed25519.Verify":          true,
		"(*encoding/gob.Encoder).Encode": true,
		"(*encoding/gob.Decoder).Decode": true,
		"(net.Conn).Read":                true,
		"(net.Conn).Write":               true,
		"(*net.TCPConn).Read":            true,
		"(*net.TCPConn).Write":           true,
		"(*os.File).Read":                true,
		"(*os.File).ReadAt":              true,
		"(*os.File).Write":               true,
		"(*os.File).WriteAt":             true,
		"(*os.File).Sync":                true,
		"os.ReadFile":                    true,
		"os.WriteFile":                   true,
	}
	for _, f := range []string{
		"%s/internal/vdb.EncodeAnswer",
		"%s/internal/vdb.DecodeAnswer",
		"%s/internal/wire.Write",
		"%s/internal/wire.Read",
		"(*%s/internal/wire.Encoder).Encode",
		"(*%s/internal/wire.Encoder).EncodeBudget",
		"(*%s/internal/wire.Decoder).Decode",
		"(*%s/internal/wire.Conn).Call",
		"(*%s/internal/wire.Conn).CallBudget",
		"(*%s/internal/wire.LegacyConn).Call",
		"(*%s/internal/sig.Signer).Sign",
		"(*%s/internal/sig.Ring).Verify",
		// Fault-injection hooks delay, drop, or kill: consulting one
		// inside a critical section stalls every waiter behind a
		// deliberately induced fault.
		"(*%s/internal/fault.Conn).Read",
		"(*%s/internal/fault.Conn).Write",
		"(*%s/internal/fault.Injector).Next",
	} {
		set[fmt.Sprintf(f, modPath)] = true
	}
	return set
}
