package lint

import (
	"sort"
	"strings"
)

// passDeadIgnore keeps the annotation debt honest: a //lint:ignore
// directive that suppresses nothing is itself a finding. As passes get
// smarter (or the annotated code gets fixed), stale suppressions
// otherwise accumulate and quietly widen the blind spot around the
// line they sit on.
//
// A directive is only judged when the question is decidable this run:
// every pass it names must actually have executed (running `-passes
// errdrop` must not condemn a lockscope annotation). Directives naming
// "all" or "deadignore" are exempt — a blanket directive is used by
// definition of its breadth, and a self-referential one would suppress
// its own staleness report. A directive naming an unknown pass is
// always stale: it can never suppress anything.
var passDeadIgnore = &Pass{
	Name: nameDeadIgnore,
	Doc:  "stale //lint:ignore directives that suppress no current finding",
	Run:  runDeadIgnore,
}

func runDeadIgnore(m *Module) []Diag {
	// Only audit files of the packages the user asked to lint.
	inScope := make(map[string]bool)
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			inScope[m.relFile(m.Fset.Position(f.Pos()).Filename)] = true
		}
	}
	files := make([]string, 0, len(m.ignores))
	for rel := range m.ignores {
		if inScope[rel] {
			files = append(files, rel)
		}
	}
	sort.Strings(files)

	var out []Diag
	for _, rel := range files {
		for _, ig := range m.ignores[rel] {
			if ig.used || !m.deadIgnoreCheckable(ig) {
				continue
			}
			out = append(out, m.diagf(nameDeadIgnore, ig.pos,
				"stale suppression: //lint:ignore %s matches no current finding — delete it or fix the pass list",
				strings.Join(ig.passes, ",")))
		}
	}
	return out
}

// deadIgnoreCheckable reports whether this run can decide the
// directive's staleness.
func (m *Module) deadIgnoreCheckable(ig *ignoreDirective) bool {
	for _, p := range ig.passes {
		if p == "all" || p == nameDeadIgnore {
			return false
		}
		if !knownPassNames[p] {
			continue // unknown pass: stale by construction, always decidable
		}
		if !m.ranPasses[p] {
			return false
		}
	}
	return true
}
