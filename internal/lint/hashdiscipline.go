package lint

import (
	"go/ast"
	"go/types"
	"strconv"
)

// passHashDiscipline enforces the hashing and framing discipline the
// verification-object algebra depends on:
//
//   - crypto/sha256 and crypto/sha512 may be imported only by
//     internal/digest. A raw sha256.Sum256 elsewhere bypasses domain
//     separation and silently breaks the VO algebra Protocols II/III
//     build their XOR registers on.
//   - encoding/gob encoders/decoders may not be constructed directly on
//     a net.Conn outside internal/wire. The wire package's framed codec
//     is the only place the MaxMessage decode budget is enforced; a raw
//     gob.NewDecoder(conn) hands a hostile peer an unbounded allocation.
var passHashDiscipline = &Pass{
	Name: nameHashDiscipline,
	Doc:  "raw hash imports outside internal/digest; raw gob codecs on net.Conn outside internal/wire",
	Run:  runHashDiscipline,
}

func runHashDiscipline(m *Module) []Diag {
	var out []Diag
	conn := m.netConn()
	for _, pkg := range m.Pkgs {
		if pkg.Rel != "internal/digest" {
			for _, f := range pkg.Files {
				for _, imp := range f.Imports {
					p, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if p == "crypto/sha256" || p == "crypto/sha512" {
						out = append(out, m.diagf(nameHashDiscipline, imp.Pos(),
							"import of %s outside internal/digest: all hashing must go through digest's domain-separated helpers", p))
					}
				}
			}
		}
		if pkg.Rel == "internal/wire" || conn == nil {
			continue
		}
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				fn := calleeFunc(pkg.Info, call)
				if fn == nil || len(call.Args) != 1 {
					return true
				}
				full := fn.FullName()
				if full != "encoding/gob.NewDecoder" && full != "encoding/gob.NewEncoder" {
					return true
				}
				t := pkg.Info.TypeOf(call.Args[0])
				if t == nil {
					return true
				}
				if types.Implements(t, conn) || types.Implements(types.NewPointer(t), conn) {
					out = append(out, m.diagf(nameHashDiscipline, call.Pos(),
						"%s directly on a net.Conn outside internal/wire: use the framed wire codec so the MaxMessage decode budget applies", full))
				}
				return true
			})
		}
	}
	return out
}
