// Test files are excluded from analysis: this math/rand import must
// not be reported.
package sig

import "math/rand"

// TestOnly proves _test.go files never reach the passes.
func TestOnly() int64 { return rand.Int63() }
