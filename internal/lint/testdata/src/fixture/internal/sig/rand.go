// Package sig exercises randsource: a deterministic PRNG import in the
// signature package.
package sig

import "math/rand"

// Weak is what key generation must never look like.
func Weak() int64 { return rand.Int63() }
