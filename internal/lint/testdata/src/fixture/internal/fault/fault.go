// Package fault is a miniature of the real fault-injection hooks:
// the slow-call set lists them so a probe cannot be re-inserted into
// a hot-path critical section.
package fault

import "time"

// Decision mirrors the real injector's verdict for one operation.
type Decision int

// Injector decides the fate of each I/O operation.
type Injector struct{ ops uint64 }

// Next consumes one decision (serialized internally, like the real one).
func (i *Injector) Next() Decision {
	i.ops++
	return Decision(i.ops % 2)
}

// Conn wraps a connection with injected faults.
type Conn struct{ inj *Injector }

// Read consults the injector before touching the socket.
func (c *Conn) Read(p []byte) (int, error) {
	c.inj.Next()
	return len(p), nil
}

// Write consults the injector before touching the socket.
func (c *Conn) Write(p []byte) (int, error) {
	c.inj.Next()
	return len(p), nil
}

// SimulateFlaky sleeps in a loop INSIDE the fault package: the
// injector's whole job is to simulate latency, so the sleepretry pass
// exempts it and this stays silent.
func SimulateFlaky(rounds int, d func() Decision) {
	for i := 0; i < rounds; i++ {
		if d() == 0 {
			time.Sleep(time.Millisecond)
		}
	}
}
