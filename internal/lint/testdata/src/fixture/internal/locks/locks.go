// Package locks exercises lockorder: a cross-class cycle closed
// interprocedurally through a wrapper method's summary, an
// acquisition under the terminal fold mutex reached through a helper,
// and the same-class ascending pattern that must stay silent.
package locks

import "sync"

// Journal and Index are two lock classes with no documented order
// between them.
type Journal struct{ mu sync.Mutex }

// Index is the second class of the cycle.
type Index struct{ mu sync.Mutex }

func (j *Journal) lock()   { j.mu.Lock() }
func (j *Journal) unlock() { j.mu.Unlock() }

// AppendBoth holds the journal while updating the index:
// Journal.mu -> Index.mu.
func AppendBoth(j *Journal, ix *Index) {
	j.mu.Lock()
	defer j.mu.Unlock()
	ix.mu.Lock()
	ix.mu.Unlock()
}

// ReindexBoth closes the cycle the other way, reaching the journal
// lock through its wrapper: Index.mu -> Journal.mu via the lock()
// summary.
func ReindexBoth(j *Journal, ix *Index) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	j.lock()
	j.unlock()
}

// Folder mirrors the forest fold mutex: fmu is terminal in the
// documented lock order.
type Folder struct {
	fmu sync.Mutex
	ix  Index
}

func (f *Folder) reindex() {
	f.ix.mu.Lock()
	f.ix.mu.Unlock()
}

// FoldThenIndex acquires the index inside the fold section through a
// helper: the terminal-order violation, found via reindex's summary.
func (f *Folder) FoldThenIndex() {
	f.fmu.Lock()
	defer f.fmu.Unlock()
	f.reindex()
}

// Shard is one class with many instances.
type Shard struct{ mu sync.Mutex }

// LockAscending acquires two instances of one class in address order —
// the forest's shard-ascending pattern; same-class edges are exempt.
func LockAscending(a, b *Shard) {
	a.mu.Lock()
	b.mu.Lock()
	b.mu.Unlock()
	a.mu.Unlock()
}
