// Package codec exercises errdrop: discarded errors from the
// Sign/Verify/Finish/Checkpoint/Encode/Decode surface.
package codec

import (
	"bytes"
	"encoding/gob"
)

// Checkpointer is a stand-in for the persistence layer.
type Checkpointer struct{}

// Checkpoint flushes state and can fail.
func (c *Checkpointer) Checkpoint() error { return nil }

// DropEncode throws the codec error away entirely.
func DropEncode(v int) {
	var buf bytes.Buffer
	gob.NewEncoder(&buf).Encode(v)
}

// BlankCheckpoint assigns the error to the blank identifier.
func BlankCheckpoint(c *Checkpointer) {
	_ = c.Checkpoint()
}

// DeferDecode loses the error in a defer.
func DeferDecode(buf *bytes.Buffer, v *int) {
	dec := gob.NewDecoder(buf)
	defer dec.Decode(v)
}

// ParallelBlank drops the encode error in a parallel assignment: the
// blank slot lines up with a single-result error call.
func ParallelBlank(v int) int {
	var buf bytes.Buffer
	var n int
	_, n = gob.NewEncoder(&buf).Encode(v), v
	return n
}

// DeferBound loses the error of a method value bound to a variable
// and then deferred.
func DeferBound(buf *bytes.Buffer, v *int) {
	dec := gob.NewDecoder(buf)
	f := dec.Decode
	defer f(v)
}

// Checked handles the error and must not be reported.
func Checked(v int) error {
	var buf bytes.Buffer
	return gob.NewEncoder(&buf).Encode(v)
}

// Handled also checks its error; the directive above it therefore
// suppresses nothing and is deadignore's pinned stale case.
func Handled(v int) error {
	var buf bytes.Buffer
	//lint:ignore errdrop fixture: stale — the error below is handled, not dropped
	return gob.NewEncoder(&buf).Encode(v)
}
