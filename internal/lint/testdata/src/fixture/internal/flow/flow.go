// Package flow exercises verifyflow end to end: unsanitized
// decode→state paths (direct, through a helper's result summary, and
// through a helper's param-sink summary), a sanitized path, a gated
// path, and a suppressed path. Only the three unsanitized paths may be
// reported.
package flow

import (
	"fixture.example/internal/audit"
	"fixture.example/internal/vdb"
	"fixture.example/internal/wire"
)

// StoreRaw commits a decoded value with no verification: the direct
// source→sink finding.
func StoreRaw(dec *wire.Decoder, tx *vdb.Tx, k []byte) error {
	v, err := dec.Decode()
	if err != nil {
		return err
	}
	return tx.Put(k, v.([]byte))
}

// readPayload decodes one frame; its result carries the peer's bytes
// out through the function summary.
func readPayload(dec *wire.Decoder) ([]byte, error) {
	v, err := dec.Decode()
	if err != nil {
		return nil, err
	}
	b, _ := v.([]byte)
	return b, nil
}

// StoreDecoded commits through the helper: the taint crosses the call
// via readPayload's summary (interprocedural result flow).
func StoreDecoded(dec *wire.Decoder, tx *vdb.Tx, k []byte) error {
	b, err := readPayload(dec)
	if err != nil {
		return err
	}
	return tx.Put(k, b)
}

// scrub removes one key; the sink is a frame below its caller, so a
// caller handing it untrusted bytes is reported at the hand-off.
func scrub(tx *vdb.Tx, k []byte) error {
	return tx.Delete(k)
}

// DeleteDecoded hands untrusted bytes to a helper whose summary says
// they reach a sink (interprocedural param-sink flow).
func DeleteDecoded(dec *wire.Decoder, tx *vdb.Tx) error {
	v, err := dec.Decode()
	if err != nil {
		return err
	}
	return scrub(tx, v.([]byte))
}

// StoreVerified runs the decoded value through the VO check first and
// must stay silent.
func StoreVerified(dec *wire.Decoder, tx *vdb.Tx, k []byte) error {
	v, err := dec.Decode()
	if err != nil {
		return err
	}
	if err := vdb.Verify(v); err != nil {
		return err
	}
	return tx.Put(k, v.([]byte))
}

// StoreGated blocks on the admission gate before committing: the
// optimistic-delivery obligation is discharged, so it stays silent.
func StoreGated(a *audit.Auditor, dec *wire.Decoder, tx *vdb.Tx, k []byte) error {
	v, err := dec.Decode()
	if err != nil {
		return err
	}
	a.WaitAdmissible()
	return tx.Put(k, v.([]byte))
}

// StoreSuppressed carries a reasoned directive: suppressed, and the
// directive counts as used so deadignore stays quiet about it.
func StoreSuppressed(dec *wire.Decoder, tx *vdb.Tx, k []byte) error {
	v, err := dec.Decode()
	if err != nil {
		return err
	}
	//lint:ignore verifyflow fixture: the downstream consumer re-verifies this value
	return tx.Put(k, v.([]byte))
}
