// Package core exercises lockscope's crypto rule: an Ed25519 signature
// inside an explicit Lock/Unlock window.
package core

import (
	"crypto/ed25519"
	"sync"
)

// Signer holds a key behind a mutex.
type Signer struct {
	mu   sync.Mutex
	priv ed25519.PrivateKey
	last []byte
}

// SignUnderLock performs the signature inside the critical section.
func (s *Signer) SignUnderLock(msg []byte) []byte {
	s.mu.Lock()
	sig := ed25519.Sign(s.priv, msg)
	s.last = sig
	s.mu.Unlock()
	return sig
}

// SignOutsideLock signs first and only stores under the lock.
func (s *Signer) SignOutsideLock(msg []byte) []byte {
	sig := ed25519.Sign(s.priv, msg)
	s.mu.Lock()
	s.last = sig
	s.mu.Unlock()
	return sig
}
