// Package vdb exercises lockscope: gob work between Lock and a
// deferred Unlock is flagged; the narrowed variant is not.
package vdb

import (
	"bytes"
	"encoding/gob"
	"sync"
)

// DB is a miniature of the real vdb.DB locking shape.
type DB struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

// EncodeUnderLock re-creates the regression the pass guards against:
// the codec runs inside the serial section.
func (db *DB) EncodeUnderLock(v any) error {
	db.mu.Lock()
	defer db.mu.Unlock()
	return gob.NewEncoder(&db.buf).Encode(v)
}

// EncodeOutsideLock narrows the critical section correctly.
func (db *DB) EncodeOutsideLock(v any) error {
	db.mu.Lock()
	db.buf.Reset()
	db.mu.Unlock()
	return gob.NewEncoder(&db.buf).Encode(v)
}
