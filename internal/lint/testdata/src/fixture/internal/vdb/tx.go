// tx.go gives verifyflow its fixture trusted-state surface: Tx.Put
// and Tx.Delete are the sinks, Verify is the VO-check sanitizer.
package vdb

import "errors"

// Tx is a write transaction on the authenticated store.
type Tx struct{ kv map[string][]byte }

// Put writes one key into the authenticated store.
func (t *Tx) Put(k, v []byte) error {
	if t.kv == nil {
		t.kv = make(map[string][]byte)
	}
	t.kv[string(k)] = v
	return nil
}

// Delete removes one key from the authenticated store.
func (t *Tx) Delete(k []byte) error {
	delete(t.kv, string(k))
	return nil
}

// Verify checks a decoded value against the verification object.
func Verify(v any) error {
	if v == nil {
		return errors.New("vdb: nothing to verify")
	}
	return nil
}
