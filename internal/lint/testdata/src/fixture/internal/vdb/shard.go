// shard.go exercises lockscope's wrapper recognition: the forest's
// critical sections are entered through lock()/unlock() methods and
// lockAll/unlockAll-style helpers rather than bare sync.Mutex calls,
// and slow calls inside them must still be flagged. Non-boundary
// names like locked() must stay invisible to the pass.
package vdb

import (
	"bytes"
	"encoding/gob"
	"sync"
)

// Shard is a miniature of the real vdb shard: an instrumented mutex
// hidden behind lock/unlock wrapper methods.
type Shard struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *Shard) lock()   { s.mu.Lock() }
func (s *Shard) unlock() { s.mu.Unlock() }

// locked is a predicate, not an acquisition: "locked" does not end
// the "lock" prefix at a camel boundary.
func (s *Shard) locked() bool { return true }

// Forest mirrors the forest-wide ordered cut.
type Forest struct {
	shards []Shard
}

func (f *Forest) lockAll() {
	for i := range f.shards {
		f.shards[i].lock()
	}
}

func (f *Forest) unlockAll() {
	for i := len(f.shards) - 1; i >= 0; i-- {
		f.shards[i].unlock()
	}
}

// EncodeUnderShardLock re-creates the regression behind a wrapper:
// the codec runs inside the shard's serial section.
func (s *Shard) EncodeUnderShardLock(v any) error {
	s.lock()
	defer s.unlock()
	return gob.NewEncoder(&s.buf).Encode(v)
}

// EncodeOutsideShardLock narrows the section correctly.
func (s *Shard) EncodeOutsideShardLock(v any) error {
	s.lock()
	s.buf.Reset()
	s.unlock()
	return gob.NewEncoder(&s.buf).Encode(v)
}

// EncodeUnderForestLock runs the codec inside a forest-wide cut taken
// through the lockAll wrapper.
func (f *Forest) EncodeUnderForestLock(v any) error {
	f.lockAll()
	defer f.unlockAll()
	return gob.NewEncoder(&f.shards[0].buf).Encode(v)
}

// EncodeAfterLocked calls a lock-prefixed predicate that is not an
// acquisition; the following codec call must stay silent.
func (s *Shard) EncodeAfterLocked(v any) error {
	if s.locked() {
		s.buf.Reset()
	}
	return gob.NewEncoder(&s.buf).Encode(v)
}
