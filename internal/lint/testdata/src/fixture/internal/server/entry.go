// Package server exercises panicfree: a panic reachable from an
// exported handler is flagged; vetted-constructor panics are exempt;
// a panic under an ignore directive is suppressed.
package server

// Server handles remote requests.
type Server struct {
	limit int
}

// NewServer may panic on programmer error — vetted constructor, exempt.
func NewServer(limit int) *Server {
	if limit <= 0 {
		panic("server: limit must be positive")
	}
	return &Server{limit: limit}
}

// HandleOp is a remote-driveable entry point.
func (s *Server) HandleOp(n int) int {
	s.checkBudget(n)
	return n
}

// checkBudget panics on a hostile request — the remote DoS the pass
// exists to catch.
func (s *Server) checkBudget(n int) {
	if n > s.limit {
		panic("budget exceeded")
	}
}

// HandleQuiet reaches a panic whose site carries an ignore directive.
func (s *Server) HandleQuiet() {
	s.exhaust()
}

func (s *Server) exhaust() {
	//lint:ignore panicfree fixture: documented unreachable invariant
	panic("unreachable")
}
