// Package cvs exercises the raw-gob-on-net.Conn half of
// hashdiscipline, including a suppressed occurrence.
package cvs

import (
	"encoding/gob"
	"net"
)

// Recv decodes straight off the connection with no frame budget.
func Recv(c net.Conn) (string, error) {
	var s string
	err := gob.NewDecoder(c).Decode(&s)
	return s, err
}

// RecvQuiet is the same violation under an ignore directive.
func RecvQuiet(c net.Conn) (string, error) {
	var s string
	//lint:ignore hashdiscipline fixture: suppression on the line above the call must hold
	err := gob.NewDecoder(c).Decode(&s)
	return s, err
}
