package merkle

import "time"

// Stamp reads the wall clock inside a package whose computations must
// replay identically on the verifier.
func Stamp() int64 { return time.Now().UnixNano() }
