// Package merkle violates hashdiscipline (raw sha256 import bypassing
// domain separation) and randsource (clock read in a verification-path
// package).
package merkle

import "crypto/sha256"

// Root bypasses the domain-separated helpers — the exact bug
// hashdiscipline exists to catch.
func Root(b []byte) [32]byte { return sha256.Sum256(b) }
