// Fault-injection probes are slow calls too: lockscope must flag an
// injector consulted inside a critical section, and stay silent when
// the probe is hoisted out.
package transport

import (
	"sync"

	"fixture.example/internal/fault"
)

// FaultyMux gates a fault-wrapped connection behind a mutex.
type FaultyMux struct {
	mu  sync.Mutex
	inj *fault.Injector
}

// Probe consults the injector inside the serial section — the
// regression the fault entries in the slow-call set guard against.
func (m *FaultyMux) Probe() fault.Decision {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.inj.Next()
}

// ProbeNarrowed snapshots under the lock and decides outside it.
func (m *FaultyMux) ProbeNarrowed() fault.Decision {
	m.mu.Lock()
	inj := m.inj
	m.mu.Unlock()
	return inj.Next()
}
