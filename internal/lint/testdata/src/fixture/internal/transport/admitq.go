// admitq plants the boundedqueue corpus: queues on the transport path
// that grow without a visible bound (flagged), next to their bounded,
// suppressed, and builder-shaped twins (silent).
package transport

// queueSize is a compile-time constant: channels sized by it are
// bounded by construction.
const queueSize = 64

// Admitter is a miniature of an admission queue's state.
type Admitter struct {
	waiters []int
	scratch []int
}

// NewScaled sizes the buffer from a parameter — not a compile-time
// constant, so the analyzer must flag it.
func NewScaled(n int) chan int {
	return make(chan int, n) // want boundedqueue
}

// NewConst sizes the buffer from a constant: silent.
func NewConst() chan int {
	return make(chan int, queueSize)
}

// NewUnbuffered has no capacity to judge: silent.
func NewUnbuffered() chan int {
	return make(chan int)
}

// NewAnnotated carries the suppression with a reason: silent.
func NewAnnotated(n int) chan int {
	//lint:ignore boundedqueue n is clamped by the caller to queueSize
	return make(chan int, n)
}

// Enqueue grows receiver state with no bound in sight: flagged.
func (a *Admitter) Enqueue(v int) {
	a.waiters = append(a.waiters, v)
}

// EnqueueBounded checks the queue's length before growing: silent.
func (a *Admitter) EnqueueBounded(v int) bool {
	if len(a.waiters) >= queueSize {
		return false
	}
	a.waiters = append(a.waiters, v)
	return true
}

// EnqueueResliced trims the queue in the same function: silent.
func (a *Admitter) EnqueueResliced(v int) {
	a.waiters = append(a.waiters, v)
	if len(a.waiters) > queueSize {
		a.waiters = a.waiters[1:]
	}
}

// Collect appends into a local builder, not a long-lived queue:
// silent.
func (a *Admitter) Collect(vs []int) []int {
	out := make([]int, 0, len(vs))
	for _, v := range vs {
		out = append(out, v)
	}
	return out
}

// Snapshot grows a field of a *local* struct — snapshot assembly, not
// a queue: silent.
func (a *Admitter) Snapshot() []int {
	type view struct{ items []int }
	var v view
	for _, w := range a.waiters {
		v.items = append(v.items, w)
	}
	return v.items
}
