// Package transport exercises lockscope's network rule plus its
// suppression syntax.
package transport

import (
	"net"
	"sync"
)

// Mux serializes writers onto one connection.
type Mux struct {
	mu sync.Mutex
	c  net.Conn
}

// Send writes to the socket while holding the mutex.
func (m *Mux) Send(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	_, err := m.c.Write(b)
	return err
}

// SendSuppressed is the same shape with a documented justification.
func (m *Mux) SendSuppressed(b []byte) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	//lint:ignore lockscope fixture: per-connection write serialization is the point of this mutex
	_, err := m.c.Write(b)
	return err
}
