package transport

import "time"

// redialForever is the banned shape: a retry loop whose cadence is a
// hard-coded sleep — no jitter, no backoff.
func redialForever(dial func() error) {
	for {
		if dial() == nil {
			return
		}
		time.Sleep(100 * time.Millisecond) // want sleepretry
	}
}

// redialSuppressed carries a justification, so the finding is silent.
func redialSuppressed(dial func() error) {
	for {
		if dial() == nil {
			return
		}
		//lint:ignore sleepretry fixture: documents the suppression syntax
		time.Sleep(100 * time.Millisecond)
	}
}

// settleOnce sleeps outside any loop: a one-shot delay is not a retry
// cadence and stays legal.
func settleOnce() {
	time.Sleep(time.Millisecond)
}

// workers launches goroutines from a loop; each body's sleep runs once
// per goroutine, not once per iteration, so it must stay silent.
func workers(n int, done chan<- struct{}) {
	for i := 0; i < n; i++ {
		go func() {
			time.Sleep(time.Millisecond)
			done <- struct{}{}
		}()
	}
}
