// Package digest mirrors the real digest package's privilege: it is
// the only fixture package allowed to import crypto/sha256, so no
// finding may be reported here.
package digest

import "crypto/sha256"

// Of hashes one byte string.
func Of(b []byte) [32]byte { return sha256.Sum256(b) }
