// Package wire mirrors the real codec boundary for verifyflow:
// everything a Decoder yields arrived from the peer and is untrusted
// until verified.
package wire

import (
	"encoding/gob"
	"io"
)

// Decoder decodes peer messages from a stream.
type Decoder struct{ dec *gob.Decoder }

// NewDecoder wraps a stream with the message codec.
func NewDecoder(r io.Reader) *Decoder { return &Decoder{dec: gob.NewDecoder(r)} }

// Decode reads the next message from the peer.
func (d *Decoder) Decode() (any, error) {
	var v any
	if err := d.dec.Decode(&v); err != nil {
		return nil, err
	}
	return v, nil
}
