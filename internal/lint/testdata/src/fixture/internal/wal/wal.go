// Package wal exercises syncdiscipline: publishing a durable artifact
// — renaming a file into place, or creating a journal segment in place
// — without a preceding fsync is flagged; a sync in a summarized
// callee credits its caller; closures are neither flagged nor
// credited; a vetted exception under an ignore directive is silent.
package wal

// File is a miniature of the real fault.File surface.
type File struct{}

// Write buffers p.
func (f *File) Write(p []byte) (int, error) { return len(p), nil }

// Sync flushes buffered writes to stable storage.
func (f *File) Sync() error { return nil }

// Close releases the handle.
func (f *File) Close() error { return nil }

// FS is a miniature of the real fault.FS surface.
type FS struct{}

// Create makes a new file.
func (FS) Create(name string) (*File, error) { return &File{}, nil }

// Rename atomically replaces newname with oldname.
func (FS) Rename(oldname, newname string) error { return nil }

// SyncDir flushes a directory's entry table.
func (FS) SyncDir(dir string) error { return nil }

// PublishUnsynced renames freshly written bytes into place without
// syncing them first: a crash can land the new name on a file whose
// content never left the page cache. FLAGGED (at this declaration).
func PublishUnsynced(fs FS, tmp, path string) error {
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return fs.Rename(tmp, path)
}

// PublishSynced is the correct tmp → sync → rename → syncdir dance.
// SILENT.
func PublishSynced(fs FS, tmp, path string) error {
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	return fs.SyncDir(".")
}

// sealActive syncs the active file — the summarized callee.
func sealActive(f *File) error { return f.Sync() }

// RotateViaHelper publishes only after sealing through the helper: the
// sync summary travels the call graph. SILENT.
func RotateViaHelper(fs FS, active *File, tmp, path string) error {
	if err := sealActive(active); err != nil {
		return err
	}
	return fs.Rename(tmp, path)
}

// OpenSegmentUnsynced creates a fresh segment in place (no rename)
// without sealing its predecessor: replay can see the new segment
// while the old one's tail frames are lost. FLAGGED (at this
// declaration).
func OpenSegmentUnsynced(fs FS, name string) (*File, error) {
	return fs.Create(name)
}

// OpenFirstSegment creates the journal's very first segment: there is
// no predecessor to seal, so the occurrence is vetted and suppressed
// (and the directive is consumed, keeping deadignore quiet).
//
//lint:ignore syncdiscipline the first segment has no predecessor to sync
func OpenFirstSegment(fs FS, name string) (*File, error) {
	return fs.Create(name)
}

// PublishAsync renames inside a goroutine closure: when the closure
// runs is unknowable statically, so the pass neither flags nor credits
// it. SILENT.
func PublishAsync(fs FS, tmp, path string, report func(error)) {
	go func() {
		report(fs.Rename(tmp, path))
	}()
}
