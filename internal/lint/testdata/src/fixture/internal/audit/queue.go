// Package audit exercises lockscope over the async auditor's queue
// shape: batch verification belongs outside the queue mutex — one
// slow call under it makes submitters block behind the drain.
package audit

import (
	"crypto/ed25519"
	"sync"
)

// Queue is a miniature of the real audit queue's locking shape.
type Queue struct {
	mu    sync.Mutex
	batch [][]byte
	pub   ed25519.PublicKey
	bad   int
}

// DrainUnderLock verifies the batch inside the critical section — the
// regression the pass guards against.
func (q *Queue) DrainUnderLock(sig []byte) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for _, m := range q.batch {
		if !ed25519.Verify(q.pub, m, sig) {
			q.bad++
		}
	}
	q.batch = nil
}

// DrainOutsideLock snapshots the batch under the lock and verifies
// after releasing it.
func (q *Queue) DrainOutsideLock(sig []byte) {
	q.mu.Lock()
	batch := q.batch
	q.batch = nil
	q.mu.Unlock()
	bad := 0
	for _, m := range batch {
		if !ed25519.Verify(q.pub, m, sig) {
			bad++
		}
	}
	q.mu.Lock()
	q.bad += bad
	q.mu.Unlock()
}
