// auditor.go gives verifyflow its fixture admission gate: a function
// that blocks on WaitAdmissible has discharged the optimistic-delivery
// obligation (the E17 epoch-audit bound).
package audit

// Auditor is the epoch-audit stand-in.
type Auditor struct{}

// WaitAdmissible blocks until optimistically delivered results may be
// used.
func (a *Auditor) WaitAdmissible() {}
