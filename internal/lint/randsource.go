package lint

import (
	"go/ast"
	"strconv"
)

// passRandSource keeps the security-critical packages deterministic
// and properly seeded:
//
//   - math/rand (and math/rand/v2) are banned from internal/sig,
//     internal/core/..., and internal/wire. Key material and protocol
//     nonces must come from crypto/rand; a PRNG that slips into these
//     packages is a silent key-compromise bug.
//   - time.Now is banned from internal/merkle and internal/vdb. Ops
//     replayed by verifiers must be deterministic — the paper's v(Q,D)
//     check replays the exact server computation, and a clock read in
//     a verification path would diverge between server and client.
var passRandSource = &Pass{
	Name: nameRandSource,
	Doc:  "math/rand in signature/protocol/wire packages; clock reads in verification paths",
	Run:  runRandSource,
}

var (
	randBanScope = []string{"internal/sig", "internal/core", "internal/wire"}
	timeBanScope = []string{"internal/merkle", "internal/vdb"}
)

func runRandSource(m *Module) []Diag {
	var out []Diag
	for _, pkg := range m.Pkgs {
		if underAny(pkg.Rel, randBanScope...) {
			for _, f := range pkg.Files {
				for _, imp := range f.Imports {
					p, err := strconv.Unquote(imp.Path.Value)
					if err != nil {
						continue
					}
					if p == "math/rand" || p == "math/rand/v2" {
						out = append(out, m.diagf(nameRandSource, imp.Pos(),
							"import of %s in %s: deterministic PRNGs must not feed signatures or protocol state (use crypto/rand)", p, pkg.Rel))
					}
				}
			}
		}
		if underAny(pkg.Rel, timeBanScope...) {
			for _, f := range pkg.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn := calleeFunc(pkg.Info, call); fn != nil && fn.FullName() == "time.Now" {
						out = append(out, m.diagf(nameRandSource, call.Pos(),
							"time.Now in %s: verification paths replay deterministically on the client; clock reads diverge", pkg.Rel))
					}
					return true
				})
			}
		}
	}
	return out
}
