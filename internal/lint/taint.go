package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file implements the forward interprocedural taint engine under
// the verifyflow pass. The analysis is deliberately simple enough to
// be auditable — the lint that guards the trust boundary must itself
// be reviewable:
//
//   - Object-level and flow-insensitive within a function: taint
//     attaches to the root object of an expression (resp.Answer
//     taints/clears resp), and a sanitizer applied to an object wins
//     over any taint of the same object ("some verification on the
//     path" — matching the property the paper needs: bytes must pass
//     through VO/signature verification before influencing trusted
//     state, wherever on the path that check runs).
//   - Interprocedural via per-function summaries (which params flow
//     to which results, which params a function sanitizes, which
//     params reach sinks inside, which results a function taints from
//     a source of its own), computed to a global fixpoint over the
//     type-resolved call graph, joining over interface dispatch.
//   - Calls with no static callee and no summary conservatively merge
//     input taint into results and pointer-shaped arguments (so
//     decode-into helpers propagate), but never clear anything.
//   - Function literals are analyzed as part of their enclosing
//     function (they share its objects); go statements and channel
//     sends drop taint except for the spec's designated
//     channel-receive sources (hub messages).
//
// Gates (audit.WaitAdmissible) are function-scoped: a function that
// blocks on the admission gate is considered to have discharged its
// optimistic-delivery obligation — the bound the epoch-audit design
// proves — so both its sinks and its summary results are treated as
// sanitized.

// sourceKind says where a source call puts its untrusted bytes.
type sourceKind int

const (
	srcResults  sourceKind = iota // call results are untrusted
	srcArg0                       // call decodes into its first argument
	srcChanRecv                   // call returns a channel of untrusted values
)

// flowSpec is one taint policy: the source/sink/sanitizer tables a
// flow pass runs the engine with. All maps are keyed by
// (*types.Func).FullName.
type flowSpec struct {
	pass       string
	sources    map[string]sourceSpec
	entries    map[string]string // functions (or interface methods) whose params are untrusted
	sinks      map[string]string
	sanitizers map[string]bool
	gates      map[string]bool
	deliveries map[string]string // functions whose tainted non-error results are findings
	reportIn   func(rel string) bool
}

type sourceSpec struct {
	kind sourceKind
	desc string
}

// taintOrigin names one concrete source occurrence.
type taintOrigin struct {
	pos  token.Pos
	desc string
}

// taintVal is the abstract value of one expression: the source that
// tainted it (if any), the function parameters that flow into it, and
// — for channel values — the source whose messages the channel
// carries.
type taintVal struct {
	src    *taintOrigin
	params uint64
	chans  *taintOrigin
}

func (t taintVal) merge(o taintVal) taintVal {
	if t.src == nil {
		t.src = o.src
	}
	if t.chans == nil {
		t.chans = o.chans
	}
	t.params |= o.params
	return t
}

func (t taintVal) live() bool { return t.src != nil || t.params != 0 }

// paramSink records that a tainted argument in the given parameter
// position reaches a sink somewhere inside the function (possibly
// through further calls).
type paramSink struct {
	param int
	sink  string
	via   string
}

// taintSummary is one function's interprocedural behavior.
type taintSummary struct {
	nresults     int
	resultSrc    []*taintOrigin // per result: a source inside taints it
	resultParams []uint64       // per result: contributing parameter bits
	paramSinks   []paramSink
	sanitizes    uint64 // parameter bits passed through a sanitizer
}

func (s *taintSummary) equal(o *taintSummary) bool {
	if o == nil || s.nresults != o.nresults || s.sanitizes != o.sanitizes ||
		len(s.paramSinks) != len(o.paramSinks) {
		return false
	}
	for i := range s.resultSrc {
		if (s.resultSrc[i] == nil) != (o.resultSrc[i] == nil) || s.resultParams[i] != o.resultParams[i] {
			return false
		}
	}
	for i := range s.paramSinks {
		if s.paramSinks[i] != o.paramSinks[i] {
			return false
		}
	}
	return true
}

// taintEngine runs one flowSpec over the module.
type taintEngine struct {
	m    *Module
	g    *CallGraph
	spec *flowSpec
	sums map[*types.Func]*taintSummary

	diags    []Diag
	reported map[string]bool

	ifaceEntries map[string]*types.Func // lazily built in ifaceEntry
}

func runTaint(m *Module, spec *flowSpec) []Diag {
	e := &taintEngine{
		m:        m,
		g:        m.callGraph(),
		spec:     spec,
		sums:     make(map[*types.Func]*taintSummary),
		reported: make(map[string]bool),
	}
	// Global fixpoint over summaries. Summaries grow monotonically in
	// practice; the round cap is a safety net against pathological
	// oscillation, not a correctness lever.
	for round := 0; round < 24; round++ {
		changed := false
		for _, fn := range e.g.order {
			s := e.analyze(fn, false)
			if s != nil && !s.equal(e.sums[fn]) {
				e.sums[fn] = s
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	// Reporting pass with stable summaries.
	for _, fn := range e.g.order {
		e.analyze(fn, true)
	}
	return e.diags
}

// fnTaint is the per-function analysis state.
type fnTaint struct {
	e      *taintEngine
	node   *CGNode
	report bool

	params    []*types.Var
	paramIdx  map[*types.Var]int
	tainted   map[types.Object]taintVal
	sanitized map[types.Object]bool
	calls     map[*ast.CallExpr][]taintVal
	gated     bool

	sum     *taintSummary
	changed bool
}

// analyze runs the intraprocedural pass for one function and returns
// its (possibly improved) summary.
func (e *taintEngine) analyze(fn *types.Func, report bool) *taintSummary {
	node := e.g.node(fn)
	if node == nil {
		return nil
	}
	sig := fn.Type().(*types.Signature)
	a := &fnTaint{
		e:         e,
		node:      node,
		report:    report,
		paramIdx:  make(map[*types.Var]int),
		tainted:   make(map[types.Object]taintVal),
		sanitized: make(map[types.Object]bool),
		sum: &taintSummary{
			nresults:     sig.Results().Len(),
			resultSrc:    make([]*taintOrigin, sig.Results().Len()),
			resultParams: make([]uint64, sig.Results().Len()),
		},
	}
	if recv := sig.Recv(); recv != nil {
		a.params = append(a.params, recv)
	}
	for i := 0; i < sig.Params().Len(); i++ {
		a.params = append(a.params, sig.Params().At(i))
	}
	for i, p := range a.params {
		if i < 64 {
			a.paramIdx[p] = i
			a.tainted[p] = taintVal{params: 1 << i}
		}
	}
	if desc, ok := e.entryDesc(fn); ok {
		for _, p := range a.params {
			t := a.tainted[p]
			t.src = &taintOrigin{pos: p.Pos(), desc: desc}
			a.tainted[p] = t
		}
	}
	// Intra-function fixpoint: flow-insensitive, so iterate the body
	// until the taint state stops changing.
	for iter := 0; iter < 10; iter++ {
		a.changed = false
		a.calls = make(map[*ast.CallExpr][]taintVal)
		a.walkBody()
		if !a.changed {
			break
		}
	}
	return a.sum
}

// entryDesc reports whether fn's parameters are untrusted at entry:
// its own FullName is listed, or it implements a listed interface
// method.
func (e *taintEngine) entryDesc(fn *types.Func) (string, bool) {
	if d, ok := e.spec.entries[fn.FullName()]; ok {
		return d, true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false
	}
	for name, d := range e.spec.entries {
		im := e.ifaceEntry(name)
		if im == nil || im.Name() != fn.Name() {
			continue
		}
		iface := ifaceRecv(im)
		if iface == nil {
			continue
		}
		rt := sig.Recv().Type()
		if types.Implements(rt, iface) {
			return d, true
		}
		if p, ok := rt.(*types.Pointer); ok && types.Implements(p, iface) {
			return d, true
		}
	}
	return "", false
}

// ifaceEntry resolves an entries key to an interface method declared
// somewhere in the loaded module, nil if it names a concrete function.
func (e *taintEngine) ifaceEntry(full string) *types.Func {
	if e.ifaceEntries == nil {
		e.ifaceEntries = make(map[string]*types.Func)
		for _, pkg := range e.m.modulePackages() {
			scope := pkg.Types.Scope()
			for _, name := range scope.Names() {
				tn, ok := scope.Lookup(name).(*types.TypeName)
				if !ok {
					continue
				}
				iface, ok := tn.Type().Underlying().(*types.Interface)
				if !ok {
					continue
				}
				for i := 0; i < iface.NumExplicitMethods(); i++ {
					mobj := iface.ExplicitMethod(i)
					e.ifaceEntries[mobj.FullName()] = mobj
				}
			}
		}
	}
	return e.ifaceEntries[full]
}

// walkBody processes every statement of the function (including
// function-literal bodies, which share its objects).
func (a *fnTaint) walkBody() {
	ast.Inspect(a.node.Decl.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			a.assign(st.Lhs, st.Rhs)
		case *ast.ValueSpec:
			if len(st.Values) > 0 {
				lhs := make([]ast.Expr, len(st.Names))
				for i, id := range st.Names {
					lhs[i] = id
				}
				a.assign(lhs, st.Values)
			}
		case *ast.RangeStmt:
			t := a.val(st.X)
			var elem taintVal
			if t.chans != nil {
				elem = taintVal{src: t.chans}
			} else {
				elem = taintVal{src: t.src, params: t.params}
			}
			if st.Key != nil {
				a.taintExpr(st.Key, elem)
			}
			if st.Value != nil {
				a.taintExpr(st.Value, elem)
			}
		case *ast.TypeSwitchStmt:
			a.typeSwitch(st)
		case *ast.ReturnStmt:
			a.returnStmt(st)
		case *ast.CallExpr:
			a.callTaints(st)
		case *ast.GoStmt:
			// The goroutine body is still walked (shared objects); the
			// spawned call itself is processed like any call.
		}
		return true
	})
}

// typeSwitch propagates taint into the per-case implicit objects of a
// `switch m := x.(type)` statement. Each case clause binds its own
// implicit *types.Var (info.Implicits[clause]), distinct from any
// object the Assign identifier resolves to — without this, taint on x
// vanishes at the dispatch every message loop is built around.
func (a *fnTaint) typeSwitch(st *ast.TypeSwitchStmt) {
	var x ast.Expr
	switch as := st.Assign.(type) {
	case *ast.AssignStmt:
		if len(as.Rhs) == 1 {
			if ta, ok := ast.Unparen(as.Rhs[0]).(*ast.TypeAssertExpr); ok {
				x = ta.X
			}
		}
	case *ast.ExprStmt:
		if ta, ok := ast.Unparen(as.X).(*ast.TypeAssertExpr); ok {
			x = ta.X
		}
	}
	if x == nil {
		return
	}
	t := a.val(x)
	if !t.live() {
		return
	}
	for _, c := range st.Body.List {
		cc, ok := c.(*ast.CaseClause)
		if !ok {
			continue
		}
		obj := a.node.Pkg.Info.Implicits[cc]
		if obj == nil {
			continue
		}
		old := a.tainted[obj]
		if merged := old.merge(t); merged != old {
			a.tainted[obj] = merged
			a.changed = true
		}
	}
}

// assign merges RHS taint into the LHS root objects (tuple-aware).
func (a *fnTaint) assign(lhs, rhs []ast.Expr) {
	switch {
	case len(lhs) == len(rhs):
		for i := range lhs {
			a.taintExpr(lhs[i], a.val(rhs[i]))
		}
	case len(rhs) == 1:
		// x, y := f()  /  v, ok := m[k]  /  v, ok := x.(T)
		var vals []taintVal
		if call, ok := ast.Unparen(rhs[0]).(*ast.CallExpr); ok {
			vals = a.callTaints(call)
		} else {
			t := a.val(rhs[0])
			vals = []taintVal{t, t}
		}
		for i := range lhs {
			if i < len(vals) {
				a.taintExpr(lhs[i], vals[i])
			}
		}
	}
}

// taintExpr merges t into the root object of an assignable expression.
func (a *fnTaint) taintExpr(lhs ast.Expr, t taintVal) {
	if !t.live() && t.chans == nil {
		return
	}
	obj := a.rootObj(lhs)
	if obj == nil {
		return
	}
	old := a.tainted[obj]
	merged := old.merge(t)
	if merged != old {
		a.tainted[obj] = merged
		a.changed = true
	}
}

// rootObj resolves an expression to the object taint attaches to:
// strip selectors, indexes, stars and parens down to the base
// identifier.
func (a *fnTaint) rootObj(e ast.Expr) types.Object {
	info := a.node.Pkg.Info
	for {
		switch x := e.(type) {
		case *ast.Ident:
			if x.Name == "_" {
				return nil
			}
			obj := info.Uses[x]
			if obj == nil {
				obj = info.Defs[x]
			}
			if _, ok := obj.(*types.Var); ok {
				return obj
			}
			return nil
		case *ast.SelectorExpr:
			if id, ok := x.X.(*ast.Ident); ok {
				if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
					e = x.Sel
					continue
				}
			}
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		case *ast.TypeAssertExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.CompositeLit:
			return nil
		default:
			return nil
		}
	}
}

// val computes the abstract value of an expression (pure read — call
// side effects are applied once per iteration via the memoized
// callTaints).
func (a *fnTaint) val(e ast.Expr) taintVal {
	switch x := e.(type) {
	case *ast.Ident:
		obj := a.rootObj(x)
		if obj == nil || a.sanitized[obj] {
			return taintVal{}
		}
		return a.tainted[obj]
	case *ast.SelectorExpr:
		obj := a.rootObj(x)
		if obj == nil || a.sanitized[obj] {
			return taintVal{}
		}
		return a.tainted[obj]
	case *ast.ParenExpr:
		return a.val(x.X)
	case *ast.StarExpr:
		return a.val(x.X)
	case *ast.TypeAssertExpr:
		return a.val(x.X)
	case *ast.IndexExpr:
		return a.val(x.X)
	case *ast.SliceExpr:
		return a.val(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW { // channel receive
			t := a.val(x.X)
			if t.chans != nil {
				return taintVal{src: t.chans}
			}
			return t
		}
		return a.val(x.X)
	case *ast.BinaryExpr:
		return a.val(x.X).merge(a.val(x.Y))
	case *ast.CompositeLit:
		var t taintVal
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				t = t.merge(a.val(kv.Value))
			} else {
				t = t.merge(a.val(el))
			}
		}
		return t
	case *ast.CallExpr:
		vals := a.callTaints(x)
		var t taintVal
		for _, v := range vals {
			t = t.merge(v)
		}
		return t
	}
	return taintVal{}
}

// argExprs returns the call's inputs in parameter order: receiver
// first for methods, then the arguments.
func argExprs(call *ast.CallExpr, callee *types.Func) []ast.Expr {
	var out []ast.Expr
	if callee != nil {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
				out = append(out, sel.X)
			}
		}
	}
	return append(out, call.Args...)
}

// callTaints applies a call's side effects (sources, sanitizers, sink
// checks, summary application) once per iteration and returns the
// per-result taint.
func (a *fnTaint) callTaints(call *ast.CallExpr) []taintVal {
	if vals, ok := a.calls[call]; ok {
		return vals
	}
	a.calls[call] = nil // cycle guard for pathological nesting
	vals := a.callTaintsUncached(call)
	a.calls[call] = vals
	return vals
}

func (a *fnTaint) callTaintsUncached(call *ast.CallExpr) []taintVal {
	e := a.e
	info := a.node.Pkg.Info
	fn := calleeFunc(info, call)
	nres := callResults(info, call)

	if fn != nil {
		full := fn.FullName()
		if src, ok := e.spec.sources[full]; ok {
			switch src.kind {
			case srcResults:
				origin := &taintOrigin{pos: call.Pos(), desc: src.desc}
				vals := make([]taintVal, nres)
				for i := range vals {
					vals[i] = taintVal{src: origin}
				}
				return vals
			case srcArg0:
				if len(call.Args) > 0 {
					a.taintExpr(call.Args[0], taintVal{src: &taintOrigin{pos: call.Pos(), desc: src.desc}})
				}
				return make([]taintVal, nres)
			case srcChanRecv:
				vals := make([]taintVal, nres)
				if nres > 0 {
					vals[0] = taintVal{chans: &taintOrigin{pos: call.Pos(), desc: src.desc}}
				}
				return vals
			}
		}
		if e.spec.sanitizers[full] {
			for _, arg := range argExprs(call, fn) {
				if obj := a.rootObj(arg); obj != nil {
					if !a.sanitized[obj] {
						a.sanitized[obj] = true
						a.changed = true
					}
				}
			}
			return make([]taintVal, nres)
		}
		if e.spec.gates[full] {
			if !a.gated {
				a.gated = true
				a.changed = true
			}
			return make([]taintVal, nres)
		}
		if desc, ok := e.spec.sinks[full]; ok {
			for _, arg := range call.Args {
				t := a.val(arg)
				if !t.live() || a.gated {
					continue
				}
				if t.src != nil {
					a.finding(call.Pos(), t.src, desc, "")
				}
				a.recordParamSinks(t.params, desc, "")
			}
			return make([]taintVal, nres)
		}
		// Interprocedural: join callee summaries (fanning out over
		// interface dispatch).
		callees := []*types.Func{fn}
		if iface := ifaceRecv(fn); iface != nil {
			callees = e.g.implementers(fn, iface)
		}
		var summarized bool
		vals := make([]taintVal, nres)
		args := argExprs(call, fn)
		argVals := make([]taintVal, len(args))
		for i, arg := range args {
			argVals[i] = a.val(arg)
		}
		for _, callee := range callees {
			sum := e.sums[callee]
			if sum == nil {
				continue
			}
			summarized = true
			for j := 0; j < sum.nresults && j < nres; j++ {
				if sum.resultSrc[j] != nil {
					vals[j] = vals[j].merge(taintVal{src: sum.resultSrc[j]})
				}
				for p := 0; p < len(args) && p < 64; p++ {
					if sum.resultParams[j]&(1<<p) != 0 {
						vals[j] = vals[j].merge(argVals[p])
					}
				}
			}
			for _, ps := range sum.paramSinks {
				if ps.param >= len(args) {
					continue
				}
				t := argVals[ps.param]
				if !t.live() || a.gated {
					continue
				}
				via := funcLabel(callee)
				if ps.via != "" {
					via += " -> " + ps.via
				}
				if t.src != nil {
					a.finding(call.Pos(), t.src, ps.sink, via)
				}
				a.recordParamSinks(t.params, ps.sink, via)
			}
			for p := 0; p < len(args) && p < 64; p++ {
				if sum.sanitizes&(1<<p) != 0 {
					if obj := a.rootObj(args[p]); obj != nil && !a.sanitized[obj] {
						a.sanitized[obj] = true
						a.changed = true
					}
				}
			}
		}
		if summarized {
			return vals
		}
	}
	// Unknown callee (stdlib, function value, builtin): inputs merge
	// into results, and — for decode-into shapes — into pointer-shaped
	// arguments. Nothing is cleared.
	var merged taintVal
	args := argExprs(call, fn)
	for _, arg := range args {
		merged = merged.merge(a.val(arg))
	}
	if merged.live() {
		for _, arg := range call.Args {
			if pointerShaped(info, arg) {
				a.taintExpr(arg, taintVal{src: merged.src, params: merged.params})
			}
		}
	}
	vals := make([]taintVal, nres)
	for i := range vals {
		vals[i] = taintVal{src: merged.src, params: merged.params, chans: merged.chans}
	}
	return vals
}

// pointerShaped reports whether an argument can carry data out of a
// call (&x, or a pointer/slice/map-typed expression).
func pointerShaped(info *types.Info, arg ast.Expr) bool {
	if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return true
	}
	t := info.TypeOf(arg)
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Pointer, *types.Slice, *types.Map:
		return true
	}
	return false
}

// callResults counts a call expression's results (a no-result call
// types as an empty tuple; a single result as its own type).
func callResults(info *types.Info, call *ast.CallExpr) int {
	t := info.TypeOf(call)
	if t == nil || t == types.Typ[types.Invalid] {
		return 0
	}
	if tuple, ok := t.(*types.Tuple); ok {
		return tuple.Len()
	}
	return 1
}

// recordParamSinks folds "parameter p reaches this sink" facts into
// the summary. Facts are deduplicated by (param, sink) only — the via
// chain is a display aid, and keying on it would let mutually
// recursive wrappers (the adversary proxies re-dispatching through
// server.Server) mint an unbounded family of ever-longer chains for
// the same underlying fact, destabilizing the fixpoint.
func (a *fnTaint) recordParamSinks(params uint64, sink, via string) {
	for p := 0; p < 64 && params>>p != 0; p++ {
		if params&(1<<p) == 0 {
			continue
		}
		found := false
		for _, ps := range a.sum.paramSinks {
			if ps.param == p && ps.sink == sink {
				found = true
				break
			}
		}
		if !found && len(a.sum.paramSinks) < 64 {
			a.sum.paramSinks = append(a.sum.paramSinks, paramSink{param: p, sink: sink, via: via})
			sort.Slice(a.sum.paramSinks, func(i, j int) bool {
				x, y := a.sum.paramSinks[i], a.sum.paramSinks[j]
				if x.param != y.param {
					return x.param < y.param
				}
				return x.sink < y.sink
			})
			a.changed = true
		}
	}
}

// returnStmt folds returned taint into the summary and checks
// delivery sinks.
func (a *fnTaint) returnStmt(ret *ast.ReturnStmt) {
	sig := a.node.Fn.Type().(*types.Signature)
	var vals []taintVal
	switch {
	case len(ret.Results) == a.sum.nresults:
		for _, r := range ret.Results {
			vals = append(vals, a.val(r))
		}
	case len(ret.Results) == 1 && a.sum.nresults > 1:
		if call, ok := ast.Unparen(ret.Results[0]).(*ast.CallExpr); ok {
			vals = a.callTaints(call)
		}
	case len(ret.Results) == 0:
		// Naked return: taint of the named result variables.
		for i := 0; i < sig.Results().Len(); i++ {
			obj := sig.Results().At(i)
			if a.sanitized[obj] {
				vals = append(vals, taintVal{})
			} else {
				vals = append(vals, a.tainted[obj])
			}
		}
	}
	deliver, isDelivery := a.e.spec.deliveries[a.node.Fn.FullName()]
	for j := 0; j < len(vals) && j < a.sum.nresults; j++ {
		t := vals[j]
		if a.gated || !t.live() {
			continue
		}
		if t.src != nil && a.sum.resultSrc[j] == nil {
			a.sum.resultSrc[j] = t.src
			a.changed = true
		}
		if a.sum.resultParams[j]|t.params != a.sum.resultParams[j] {
			a.sum.resultParams[j] |= t.params
			a.changed = true
		}
		if isDelivery && a.report && t.src != nil && !isErrorType(sig.Results().At(j).Type()) {
			a.finding(ret.Pos(), t.src, deliver, "")
		}
	}
	// Summary param-sinks for deliveries: a caller handing this
	// function untrusted data that it would deliver is equivalent to a
	// sink hit inside.
	if isDelivery && !a.gated {
		for j := 0; j < len(vals) && j < a.sum.nresults; j++ {
			if !isErrorType(sig.Results().At(j).Type()) {
				a.recordParamSinks(vals[j].params, deliver, "")
			}
		}
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// truncateVia caps a displayed callee chain at four hops — past that
// the chain names implementation detail, not the defect.
func truncateVia(via string) string {
	const sep, max = " -> ", 4
	parts := strings.Split(via, sep)
	if len(parts) <= max {
		return via
	}
	return strings.Join(parts[:max], sep) + " -> …"
}

// finding emits one verified-flow diagnostic (deduplicated, scoped to
// the report packages).
func (a *fnTaint) finding(pos token.Pos, src *taintOrigin, sink, via string) {
	if !a.report {
		return
	}
	e := a.e
	if e.spec.reportIn != nil && !e.spec.reportIn(a.node.Pkg.Rel) {
		return
	}
	srcPos := e.m.Fset.Position(src.pos)
	// One finding per (site, source, sink): alternative call chains to
	// the same sink are the same defect.
	key := fmt.Sprintf("%d|%s|%s", pos, src.desc, sink)
	if e.reported[key] {
		return
	}
	e.reported[key] = true
	msg := fmt.Sprintf("untrusted input reaches %s with no verification on the path: source is %s at %s:%d",
		sink, src.desc, e.m.relFile(srcPos.Filename), srcPos.Line)
	if via = truncateVia(via); via != "" {
		msg += " (via " + via + ")"
	}
	msg += "; route the value through VO/signature verification or add a reasoned //lint:ignore " + e.spec.pass
	e.diags = append(e.diags, e.m.diagf(e.spec.pass, pos, "%s", msg))
}
