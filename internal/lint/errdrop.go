package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// passErrDrop flags discarded error results from the verification and
// codec surface: functions and methods named Sign, Verify, Finish,
// Checkpoint, Encode, or Decode whose last result is an error. In this
// system a dropped error from one of these is not sloppiness but a
// protocol hole — an unchecked Verify is precisely the deviation the
// paper's detection guarantee forbids, and an unchecked codec error
// desynchronizes a gob stream.
var passErrDrop = &Pass{
	Name: nameErrDrop,
	Doc:  "discarded errors from Sign/Verify/Finish/Checkpoint/Encode/Decode",
	Run:  runErrDrop,
}

var errDropNames = map[string]bool{
	"Sign":       true,
	"Verify":     true,
	"Finish":     true,
	"Checkpoint": true,
	"Encode":     true,
	"Decode":     true,
}

func runErrDrop(m *Module) []Diag {
	var out []Diag
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if fn, ok := droppable(pkg.Info, st.X); ok {
						out = append(out, dropDiag(m, st.Pos(), fn, "result discarded"))
					}
				case *ast.GoStmt:
					if fn, ok := droppable(pkg.Info, st.Call); ok {
						out = append(out, dropDiag(m, st.Pos(), fn, "error lost in go statement"))
					}
				case *ast.DeferStmt:
					if fn, ok := droppable(pkg.Info, st.Call); ok {
						out = append(out, dropDiag(m, st.Pos(), fn, "error lost in defer"))
					}
				case *ast.AssignStmt:
					if len(st.Rhs) != 1 {
						return true
					}
					fn, ok := droppable(pkg.Info, st.Rhs[0])
					if !ok {
						return true
					}
					// The error is the last result; flag it when that
					// position is assigned to the blank identifier.
					if len(st.Lhs) == results(fn) && isBlank(st.Lhs[len(st.Lhs)-1]) {
						out = append(out, dropDiag(m, st.Pos(), fn, "error assigned to _"))
					}
				}
				return true
			})
		}
	}
	return out
}

func dropDiag(m *Module, pos token.Pos, fn *types.Func, how string) Diag {
	return m.diagf(nameErrDrop, pos,
		"%s: %s returns an error that must be checked (verification and codec failures are protocol events, not noise)", how, fn.FullName())
}

// droppable reports whether e is a call to a function in the errdrop
// name set whose final result is an error.
func droppable(info *types.Info, e ast.Expr) (*types.Func, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fn := calleeFunc(info, call)
	if fn == nil || !errDropNames[fn.Name()] {
		return nil, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return nil, false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !types.Identical(last, types.Universe.Lookup("error").Type()) {
		return nil, false
	}
	return fn, true
}

func results(fn *types.Func) int {
	return fn.Type().(*types.Signature).Results().Len()
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
