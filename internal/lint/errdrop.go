package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// passErrDrop flags discarded error results from the verification and
// codec surface: functions and methods named Sign, Verify, Finish,
// Checkpoint, Encode, or Decode whose last result is an error. In this
// system a dropped error from one of these is not sloppiness but a
// protocol hole — an unchecked Verify is precisely the deviation the
// paper's detection guarantee forbids, and an unchecked codec error
// desynchronizes a gob stream.
var passErrDrop = &Pass{
	Name: nameErrDrop,
	Doc:  "discarded errors from Sign/Verify/Finish/Checkpoint/Encode/Decode",
	Run:  runErrDrop,
}

var errDropNames = map[string]bool{
	"Sign":       true,
	"Verify":     true,
	"Finish":     true,
	"Checkpoint": true,
	"Encode":     true,
	"Decode":     true,
}

func runErrDrop(m *Module) []Diag {
	var out []Diag
	for _, pkg := range m.Pkgs {
		for _, f := range pkg.Files {
			// Method values bound to variables (f := enc.Encode) carry
			// the error obligation with them: a later defer f() or go
			// f() drops the same error the direct call would.
			bound := collectBoundMethods(pkg.Info, f)
			droppableHere := func(e ast.Expr) (*types.Func, bool) {
				return droppableOrBound(pkg.Info, bound, e)
			}
			ast.Inspect(f, func(n ast.Node) bool {
				switch st := n.(type) {
				case *ast.ExprStmt:
					if fn, ok := droppableHere(st.X); ok {
						out = append(out, dropDiag(m, st.Pos(), fn, "result discarded"))
					}
				case *ast.GoStmt:
					if fn, ok := droppableHere(st.Call); ok {
						out = append(out, dropDiag(m, st.Pos(), fn, "error lost in go statement"))
					}
				case *ast.DeferStmt:
					if fn, ok := droppableHere(st.Call); ok {
						out = append(out, dropDiag(m, st.Pos(), fn, "error lost in defer"))
					}
				case *ast.AssignStmt:
					if len(st.Rhs) == 1 {
						fn, ok := droppableHere(st.Rhs[0])
						if !ok {
							return true
						}
						// The error is the last result; flag it when that
						// position is assigned to the blank identifier.
						if len(st.Lhs) == results(fn) && isBlank(st.Lhs[len(st.Lhs)-1]) {
							out = append(out, dropDiag(m, st.Pos(), fn, "error assigned to _"))
						}
						return true
					}
					// Parallel assignment (_, _ = enc.Encode(x), y): each
					// RHS pairs with one LHS, so a single-result call
					// whose slot is blank is a dropped error.
					if len(st.Lhs) == len(st.Rhs) {
						for i, rhs := range st.Rhs {
							fn, ok := droppableHere(rhs)
							if !ok || results(fn) != 1 || !isBlank(st.Lhs[i]) {
								continue
							}
							out = append(out, dropDiag(m, st.Pos(), fn, "error assigned to _"))
						}
					}
				}
				return true
			})
		}
	}
	return out
}

// collectBoundMethods indexes variables bound to a droppable function
// or method value within one file (f := enc.Encode; v := wire.Read).
func collectBoundMethods(info *types.Info, f *ast.File) map[types.Object]*types.Func {
	bound := make(map[types.Object]*types.Func)
	record := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		fn := funcValue(info, rhs)
		if fn == nil || !droppableFunc(fn) {
			return
		}
		obj := info.Defs[id]
		if obj == nil {
			obj = info.Uses[id]
		}
		if obj != nil {
			bound[obj] = fn
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			if len(st.Lhs) == len(st.Rhs) {
				for i := range st.Lhs {
					record(st.Lhs[i], st.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(st.Names) == len(st.Values) {
				for i := range st.Names {
					record(st.Names[i], st.Values[i])
				}
			}
		}
		return true
	})
	return bound
}

// funcValue resolves an expression that references (without calling) a
// function or method.
func funcValue(info *types.Info, e ast.Expr) *types.Func {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[x].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[x.Sel].(*types.Func)
		return fn
	}
	return nil
}

func dropDiag(m *Module, pos token.Pos, fn *types.Func, how string) Diag {
	return m.diagf(nameErrDrop, pos,
		"%s: %s returns an error that must be checked (verification and codec failures are protocol events, not noise)", how, fn.FullName())
}

// droppableOrBound reports whether e is a call to a droppable function
// — directly, or through a variable the file bound to one.
func droppableOrBound(info *types.Info, bound map[types.Object]*types.Func, e ast.Expr) (*types.Func, bool) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	fn := calleeFunc(info, call)
	if fn == nil {
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			fn = bound[info.Uses[id]]
		}
	}
	if fn == nil || !droppableFunc(fn) {
		return nil, false
	}
	return fn, true
}

// droppableFunc reports whether fn is in the errdrop name set with a
// final error result.
func droppableFunc(fn *types.Func) bool {
	if !errDropNames[fn.Name()] {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return false
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	return types.Identical(last, types.Universe.Lookup("error").Type())
}

func results(fn *types.Func) int {
	return fn.Type().(*types.Signature).Results().Len()
}

func isBlank(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "_"
}
