package bench

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"trustedcvs/internal/backoff"
	"trustedcvs/internal/core"
	"trustedcvs/internal/core/proto1"
	"trustedcvs/internal/core/proto2"
	"trustedcvs/internal/core/proto3"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/transport"
	"trustedcvs/internal/vdb"
)

// E13 measures the serial-section work of the pipelined server hot
// path: real TCP clients (each a full protocol user state machine that
// verifies every response) hammer one server concurrently, and we
// report throughput and latency percentiles per client count.
//
// The "P2-seed" scheme is the control: the same Protocol II server
// behind the seed transport — one global handler lock and the seed's
// self-contained per-message codec (fresh gob streams, double-write
// framing). The pipelined/streaming rows beat it because the ordered
// section no longer contains VO construction or codec work, and
// because gob type descriptors cross each connection once instead of
// once per message.

// E13Config parameterizes RunE13.
type E13Config struct {
	// DBSize is the number of preloaded keys.
	DBSize int
	// OpsPerPoint is the total operation count per (scheme, clients)
	// measurement, split evenly across the clients.
	OpsPerPoint int
	// ClientCounts are the concurrency levels to measure.
	ClientCounts []int
}

// DefaultE13Config is what E13() and cmd/tcvs-bench run.
func DefaultE13Config() E13Config {
	return E13Config{DBSize: 1000, OpsPerPoint: 1920, ClientCounts: []int{1, 4, 16, 64}}
}

// E13Point is one measured (scheme, client count) cell.
type E13Point struct {
	Scheme    string  `json:"scheme"`
	Clients   int     `json:"clients"`
	Ops       int     `json:"ops"`
	OpsPerSec float64 `json:"ops_per_sec"`
	P50Micros float64 `json:"p50_us"`
	P99Micros float64 `json:"p99_us"`
}

// E13Data is the full experiment result, serialized to BENCH_E13.json
// by cmd/tcvs-bench.
type E13Data struct {
	DBSize      int        `json:"db_size"`
	OpsPerPoint int        `json:"ops_per_point"`
	Points      []E13Point `json:"points"`
	// SpeedupAt16 is pipelined Protocol II throughput over the seed
	// baseline at 16 concurrent clients — the PR's acceptance number.
	SpeedupAt16 float64 `json:"p2_speedup_vs_seed_at_16_clients"`
}

// WriteJSON writes the result in the checked-in BENCH_E13.json format.
func (d *E13Data) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(d)
}

// e13Client performs one verified operation over a connection and
// reports the operation counter the server presented.
type e13Client interface {
	do(c transport.Caller, op vdb.Op) (ctr uint64, err error)
}

// e13Scheme wires up one measured configuration: a fresh server
// handler, a per-client user factory, and the matching dialer.
type e13Scheme struct {
	name  string
	opts  transport.Options
	dial  func(addr string) (transport.Caller, error)
	setup func(size, nClients int) (transport.Handler, func(id int) e13Client)
}

func opHandler[R any](handleOp func(*core.OpRequest) (R, error)) transport.Handler {
	return func(req any) (any, error) {
		r, ok := req.(*core.OpRequest)
		if !ok {
			return nil, fmt.Errorf("bench: unexpected request %T", req)
		}
		return handleOp(r)
	}
}

// --- trusted floor: plain apply, no proofs, no verification ---

type trustedClient struct{}

func (trustedClient) do(c transport.Caller, op vdb.Op) (uint64, error) {
	resp, err := c.Call(&core.OpRequest{Op: op})
	if err != nil {
		return 0, err
	}
	r, ok := resp.(*core.OpResponseII)
	if !ok {
		return 0, fmt.Errorf("bench: unexpected response %T", resp)
	}
	return r.Ctr, nil
}

func trustedSetup(size, _ int) (transport.Handler, func(int) e13Client) {
	db := seedDB(size)
	handler := func(req any) (any, error) {
		r, ok := req.(*core.OpRequest)
		if !ok {
			return nil, fmt.Errorf("bench: unexpected request %T", req)
		}
		ans, err := db.ApplyPlain(r.Op)
		if err != nil {
			return nil, err
		}
		return &core.OpResponseII{Answer: ans}, nil
	}
	return handler, func(int) e13Client { return trustedClient{} }
}

// --- Protocol I ---

type p1Client struct{ u *proto1.User }

func (cl *p1Client) do(c transport.Caller, op vdb.Op) (uint64, error) {
	req := cl.u.Request(op)
	// Protocol I admits one operation globally between acks; competing
	// clients see ErrAckPending (as a wire error string) and retry
	// with a small backoff. This contention is the protocol's blocking
	// third message showing up in the numbers, not a harness artifact.
	bo := backoff.New(backoff.Policy{Min: 50 * time.Microsecond, Max: time.Millisecond, Jitter: -1}, nil)
	var resp any
	var err error
	for {
		resp, err = c.Call(req)
		if err == nil {
			break
		}
		if strings.Contains(err.Error(), "ack is still pending") {
			bo.Sleep()
			continue
		}
		return 0, err
	}
	r, ok := resp.(*core.OpResponseI)
	if !ok {
		return 0, fmt.Errorf("bench: unexpected response %T", resp)
	}
	ack, _, err := cl.u.HandleResponse(op, r)
	if err != nil {
		return 0, err
	}
	if _, err := c.Call(ack); err != nil {
		return 0, err
	}
	return r.Ctr, nil
}

func p1Setup(size, nClients int) (transport.Handler, func(int) e13Client) {
	db := seedDB(size)
	signers, ring, err := sig.DeterministicSigners(nClients, 13)
	if err != nil {
		panic(err)
	}
	srv := proto1.NewServer(db, proto1.Initialize(signers[0], db.Root()))
	handler := func(req any) (any, error) {
		switch r := req.(type) {
		case *core.OpRequest:
			return srv.HandleOp(r)
		case *core.AckRequest:
			if err := srv.HandleAck(r); err != nil {
				return nil, err
			}
			return &core.OKResponse{}, nil
		}
		return nil, fmt.Errorf("bench: unexpected request %T", req)
	}
	return handler, func(id int) e13Client {
		return &p1Client{u: proto1.NewUser(signers[id], ring, 1<<62)}
	}
}

// --- Protocol II (pipelined and seed-baseline variants) ---

type p2Client struct{ u *proto2.User }

func (cl *p2Client) do(c transport.Caller, op vdb.Op) (uint64, error) {
	resp, err := c.Call(cl.u.Request(op))
	if err != nil {
		return 0, err
	}
	r, ok := resp.(*core.OpResponseII)
	if !ok {
		return 0, fmt.Errorf("bench: unexpected response %T", resp)
	}
	if _, err := cl.u.HandleResponse(op, r); err != nil {
		return 0, err
	}
	return r.Ctr, nil
}

func p2Setup(size, _ int) (transport.Handler, func(int) e13Client) {
	db := seedDB(size)
	srv := proto2.NewServer(db)
	root := db.Root()
	return opHandler(srv.HandleOp), func(id int) e13Client {
		return &p2Client{u: proto2.NewUser(sig.UserID(id), root, 1<<62)}
	}
}

// --- Protocol III ---

type p3Client struct{ u *proto3.User }

func (cl *p3Client) do(c transport.Caller, op vdb.Op) (uint64, error) {
	resp, err := c.Call(cl.u.Request(op))
	if err != nil {
		return 0, err
	}
	r, ok := resp.(*core.OpResponseII)
	if !ok {
		return 0, fmt.Errorf("bench: unexpected response %T", resp)
	}
	// No epochs advance during the measurement, so the outcome never
	// carries checker duty.
	if _, err := cl.u.HandleResponse(op, r); err != nil {
		return 0, err
	}
	return r.Ctr, nil
}

func p3Setup(size, nClients int) (transport.Handler, func(int) e13Client) {
	db := seedDB(size)
	signers, ring, err := sig.DeterministicSigners(nClients, 17)
	if err != nil {
		panic(err)
	}
	srv := proto3.NewServer(db)
	root := db.Root()
	handler := func(req any) (any, error) {
		switch r := req.(type) {
		case *core.OpRequest:
			return srv.HandleOp(r)
		case *core.GetBackupsRequest:
			return srv.HandleGetBackups(r), nil
		}
		return nil, fmt.Errorf("bench: unexpected request %T", req)
	}
	return handler, func(id int) e13Client {
		return &p3Client{u: proto3.NewUser(signers[id], ring, root)}
	}
}

func e13Schemes() []e13Scheme {
	return []e13Scheme{
		{name: "trusted", dial: transport.Dial, setup: trustedSetup},
		{name: "P1", dial: transport.Dial, setup: p1Setup},
		{name: "P2", dial: transport.Dial, setup: p2Setup},
		{name: "P2-seed", dial: transport.DialCompat, setup: p2Setup,
			opts: transport.Options{Serial: true, CompatCodec: true}},
		{name: "P3", dial: transport.Dial, setup: p3Setup},
	}
}

// e13ClientResult is one client goroutine's record of a measurement.
type e13ClientResult struct {
	lats []time.Duration
	ctrs []uint64
	err  error
}

// e13Run measures one (scheme, clients) point and returns the per-op
// latencies plus every operation counter the server presented (the
// stress test asserts these form a gap-free permutation).
func e13Run(s e13Scheme, size, nClients, totalOps int) ([]e13ClientResult, time.Duration, error) {
	handler, newClient := s.setup(size, nClients)
	srv, err := transport.ListenOpts("127.0.0.1:0", handler, s.opts)
	if err != nil {
		return nil, 0, err
	}
	defer srv.Close()

	perClient := totalOps / nClients
	results := make([]e13ClientResult, nClients)
	callers := make([]transport.Caller, nClients)
	clients := make([]e13Client, nClients)
	for i := 0; i < nClients; i++ {
		c, err := s.dial(srv.Addr())
		if err != nil {
			return nil, 0, err
		}
		defer c.Close()
		callers[i] = c
		clients[i] = newClient(i)
	}

	runOps := func(from, to int, timed bool) error {
		var wg sync.WaitGroup
		for i := 0; i < nClients; i++ {
			wg.Add(1)
			go func(id int) {
				defer wg.Done()
				res := &results[id]
				for j := from; j < to; j++ {
					// Spread writes so clients touch distinct keys most
					// of the time, like independent CVS users would.
					op := benchOp(id*100003+j, size)
					t0 := time.Now()
					ctr, err := clients[id].do(callers[id], op)
					if err != nil {
						res.err = fmt.Errorf("client %d op %d: %w", id, j, err)
						return
					}
					if timed {
						res.lats = append(res.lats, time.Since(t0))
					}
					res.ctrs = append(res.ctrs, ctr)
				}
			}(i)
		}
		wg.Wait()
		for i := range results {
			if results[i].err != nil {
				return results[i].err
			}
		}
		return nil
	}

	for i := range results {
		results[i].lats = make([]time.Duration, 0, perClient)
		results[i].ctrs = make([]uint64, 0, perClient+e13Warmup)
	}
	// Warm-up: a few untimed ops per client bring every connection to
	// steady state (TCP, gob engines, buffer pools) so the timed window
	// measures operation throughput rather than connection setup. The
	// counters are still recorded: the stress test checks the gap-free
	// permutation over every op the server admitted, warm-up included.
	if err := runOps(0, e13Warmup, false); err != nil {
		return nil, 0, err
	}
	start := time.Now()
	if err := runOps(e13Warmup, e13Warmup+perClient, true); err != nil {
		return nil, 0, err
	}
	elapsed := time.Since(start)
	return results, elapsed, nil
}

// e13Warmup is the number of untimed warm-up ops each client runs
// before its measured window.
const e13Warmup = 8

func e13Point(s e13Scheme, cfg E13Config, nClients int) (E13Point, error) {
	results, elapsed, err := e13Run(s, cfg.DBSize, nClients, cfg.OpsPerPoint)
	if err != nil {
		return E13Point{}, err
	}
	var lats []time.Duration
	for _, r := range results {
		lats = append(lats, r.lats...)
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pct := func(p float64) float64 {
		idx := int(p * float64(len(lats)-1))
		return float64(lats[idx].Nanoseconds()) / 1e3
	}
	ops := len(lats)
	return E13Point{
		Scheme:    s.name,
		Clients:   nClients,
		Ops:       ops,
		OpsPerSec: float64(ops) / elapsed.Seconds(),
		P50Micros: pct(0.50),
		P99Micros: pct(0.99),
	}, nil
}

// RunE13 runs the full experiment.
func RunE13(cfg E13Config) (*E13Data, error) {
	d := &E13Data{DBSize: cfg.DBSize, OpsPerPoint: cfg.OpsPerPoint}
	throughput := map[string]float64{} // "scheme/clients" -> ops/s
	for _, s := range e13Schemes() {
		for _, n := range cfg.ClientCounts {
			p, err := e13Point(s, cfg, n)
			if err != nil {
				return nil, fmt.Errorf("E13 %s/%d: %w", s.name, n, err)
			}
			d.Points = append(d.Points, p)
			throughput[fmt.Sprintf("%s/%d", s.name, n)] = p.OpsPerSec
		}
	}
	if seed, ok := throughput["P2-seed/16"]; ok && seed > 0 {
		d.SpeedupAt16 = throughput["P2/16"] / seed
	}
	return d, nil
}

// E13 runs the experiment with the default configuration and renders
// it as a table.
func E13() *Table {
	d, err := RunE13(DefaultE13Config())
	if err != nil {
		panic(err)
	}
	return d.Table()
}

// Table renders the data as the E13 exhibit.
func (d *E13Data) Table() *Table {
	t := &Table{
		ID:       "E13",
		Title:    "Concurrency: TCP throughput and latency vs client count, pipelined vs seed transport",
		PaperRef: "Desideratum 3 (workload preservation) under concurrent clients; DESIGN.md \"Concurrency model\"",
		Columns:  []string{"scheme", "clients", "ops/s", "p50-us", "p99-us"},
	}
	for _, p := range d.Points {
		t.AddRow(p.Scheme, p.Clients, int(p.OpsPerSec), fmt.Sprintf("%.0f", p.P50Micros), fmt.Sprintf("%.0f", p.P99Micros))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("P2 pipelined vs seed transport at 16 clients: %.2fx throughput (db %d keys, %d ops/point)",
			d.SpeedupAt16, d.DBSize, d.OpsPerPoint),
		"P2-seed is the same Protocol II server behind the seed transport: one global handler lock, self-contained per-message gob frames, double-write framing",
		"Protocol I's admission gate (one un-acked op globally) caps its concurrency benefit — the blocking third message the paper removes in Protocol II")
	return t
}
