package bench

import "testing"

func TestRunE15Small(t *testing.T) {
	cfg := DefaultE15Config()
	cfg.DBSize = 100
	cfg.Users = 3
	cfg.OpsPerUser = 40
	cfg.CommitEvery = 2
	d, err := RunE15(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.FalseAlarms != 0 {
		t.Errorf("benign failover raised %d false alarms", d.FalseAlarms)
	}
	if !d.CtrMatchesOps {
		t.Errorf("exactly-once violated: final ctr %d, want %d", d.FinalCtr, d.TotalOps)
	}
	if !d.PromotedRootMatches {
		t.Error("promoted root does not match the checkpoint cut")
	}
	if d.Failovers == 0 {
		t.Error("no client failed over to the promoted witness")
	}
	if !d.ForkDetected || d.ForkDetectGossipRounds != 1 {
		t.Errorf("fork detected=%v in %d gossip rounds, want detection in 1",
			d.ForkDetected, d.ForkDetectGossipRounds)
	}
	if !d.EvidenceVerifiesOffline {
		t.Error("evidence bundle failed offline verification")
	}
	if d.BenignGossipEvidence != 0 {
		t.Errorf("benign gossip minted %d evidence bundles", d.BenignGossipEvidence)
	}
}
