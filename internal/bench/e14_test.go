package bench

import (
	"testing"
	"time"
)

// TestE14KillRestartUnderFaults is the PR's acceptance scenario at
// test scale: a live Protocol II server is killed and restarted
// mid-workload while every client connection (server and hub) runs
// through fault injection. Every client must complete its workload
// with zero false deviation alarms, the final state must account for
// every operation exactly once, and a tampering server through the
// same faulty network must still be detected.
func TestE14KillRestartUnderFaults(t *testing.T) {
	if testing.Short() {
		t.Skip("E14 runs a multi-second fault workload")
	}
	cfg := E14Config{
		DBSize: 200, Users: 3, OpsPerUser: 60, K: 8,
		Outage: 100 * time.Millisecond, Seed: 7,
		ResetProb: 0.02, TruncateProb: 0.01,
	}
	d, err := RunE14(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if d.FalseAlarms != 0 {
		t.Fatalf("false deviation alarms under benign faults: %d", d.FalseAlarms)
	}
	if !d.CtrMatchesOps {
		t.Fatalf("exactly-once violated: server ctr %d, clients performed %d", d.FinalCtr, d.TotalOps)
	}
	if !d.RootContinuity {
		t.Fatal("restored root digest does not match the checkpoint cut")
	}
	if d.FaultsInjected == 0 {
		t.Fatal("no faults injected; the run proved nothing")
	}
	if d.TransportReconnects == 0 {
		t.Fatal("no transport reconnects; the kill/restart did not exercise recovery")
	}
	if !d.AdversaryDetected {
		t.Fatal("tampering server was not detected through the faulty network")
	}
	if d.RecoveryMillis <= 0 {
		t.Fatal("recovery latency was not measured")
	}
	t.Logf("E14: %d faults, %d transport + %d hub reconnects, recovery %.1fms, detection %s",
		d.FaultsInjected, d.TransportReconnects, d.HubReconnects, d.RecoveryMillis, d.DetectionClass)
}
