package bench

import (
	"strings"
	"testing"
)

// The experiment runners are exercised end to end; the assertions pin
// the *shapes* the paper predicts (see DESIGN.md §2), so a regression
// in any protocol shows up here as a wrong table, not just a crash.

func cell(t *testing.T, tab *Table, row, col int) string {
	t.Helper()
	if row >= len(tab.Rows) || col >= len(tab.Columns) {
		t.Fatalf("%s: no cell (%d,%d); table %dx%d", tab.ID, row, col, len(tab.Rows), len(tab.Columns))
	}
	return tab.Rows[row][col]
}

func TestE1Shape(t *testing.T) {
	tab := E1()
	if len(tab.Rows) != 12 { // 3 k-values x 2 protocols x {sync, no-sync}
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		syncOn := row[1] == "every k ops"
		detected := row[3] == "yes"
		if syncOn && !detected {
			t.Errorf("row %d: sync enabled but not detected: %v", i, row)
		}
		if !syncOn && detected {
			t.Errorf("row %d: detected without external communication: %v", i, row)
		}
		if syncOn && row[6] != "yes" {
			t.Errorf("row %d: k-bound violated: %v", i, row)
		}
	}
}

func TestE2Shape(t *testing.T) {
	tab := E2()
	if len(tab.Rows) != 4 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Digest counts must grow far slower than n (logarithmically).
	first := atoiCell(t, cell(t, tab, 0, 2))
	last := atoiCell(t, cell(t, tab, 3, 2))
	if last > first*12 {
		t.Errorf("digest growth not logarithmic: %d -> %d over 1000x n", first, last)
	}
	if last == 0 {
		t.Error("VO has no digests")
	}
}

func TestE3Shape(t *testing.T) {
	tab := E3()
	if cell(t, tab, 0, 2) != "yes" {
		t.Error("untagged strawman should (wrongly) pass the Figure 3 check")
	}
	if cell(t, tab, 1, 2) != "no" {
		t.Error("tagged states must fail the Figure 3 check")
	}
	for i := 2; i < len(tab.Rows); i++ {
		if cell(t, tab, i, 3) != "yes" {
			t.Errorf("full-stack replay row %d not caught: %v", i, tab.Rows[i])
		}
	}
}

func TestE4Shape(t *testing.T) {
	tab := E4()
	for i, row := range tab.Rows {
		if row[3] != "yes" {
			t.Errorf("row %d: P3 did not detect: %v", i, row)
		}
		if row[5] != "yes" {
			t.Errorf("row %d: detection beyond two epochs: %v", i, row)
		}
	}
}

func TestE5Shape(t *testing.T) {
	tab := E5()
	for i, row := range tab.Rows {
		if row[6] != "yes" {
			t.Errorf("row %d: k-bound failed: %v", i, row)
		}
	}
}

func TestE6Shape(t *testing.T) {
	tab := E6()
	for i := 0; i < len(tab.Rows); i += 4 {
		token, p1, p2 := tab.Rows[i+1], tab.Rows[i+2], tab.Rows[i+3]
		if token[4] == "0" {
			t.Errorf("token baseline should force waiting: %v", token)
		}
		if p1[2] != "3.00" {
			t.Errorf("Protocol I should use 3 msgs/op: %v", p1)
		}
		if p2[2] != "2.00" {
			t.Errorf("Protocol II should use 2 msgs/op: %v", p2)
		}
		if p1[4] != "0" || p2[4] != "0" {
			t.Errorf("protocols must not force back-to-back waiting")
		}
		// Protocol I ships strictly more bytes per op (the extra
		// signed message).
		if atoiCell(t, p1[3]) <= atoiCell(t, p2[3]) {
			t.Errorf("P-I should cost more wire bytes than P-II: %v vs %v", p1[3], p2[3])
		}
	}
}

func TestE7Shape(t *testing.T) {
	tab := E7()
	for i, row := range tab.Rows {
		trusted := atoiCell(t, row[1])
		p1 := atoiCell(t, row[2])
		p2 := atoiCell(t, row[3])
		if trusted <= 0 || p1 <= 0 || p2 <= 0 {
			t.Fatalf("row %d: nonpositive throughput: %v", i, row)
		}
		if p1 > trusted*2 {
			t.Errorf("row %d: P1 faster than trusted floor?! %v", i, row)
		}
		// The paper's claim is a constant-factor overhead; allow a
		// generous envelope to keep the test robust on slow machines.
		if trusted > p2*200 {
			t.Errorf("row %d: P2 overhead looks unbounded: %v", i, row)
		}
	}
}

func TestE8Shape(t *testing.T) {
	tab := E8()
	prevSync := 0
	for i, row := range tab.Rows {
		syncBytes := atoiCell(t, row[2])
		if syncBytes <= prevSync {
			t.Errorf("row %d: sync bytes should grow with n: %v", i, row)
		}
		prevSync = syncBytes
		if row[4] != cell(t, tab, 0, 4) {
			t.Errorf("row %d: user state must be constant: %v", i, row)
		}
	}
}

func TestRenderAndRegistry(t *testing.T) {
	tab := E3()
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"E3", "Figure 3", "scheme"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	for _, id := range []string{"E1", "E2", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13"} {
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%s) missing", id)
		}
	}
	if _, ok := ByID("E99"); ok {
		t.Error("ByID should reject unknown ids")
	}
}

func atoiCell(t *testing.T, s string) int {
	t.Helper()
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			t.Fatalf("cell %q is not an integer", s)
		}
		n = n*10 + int(r-'0')
	}
	return n
}
