package bench

import (
	"strings"
	"testing"
)

func TestE9Shape(t *testing.T) {
	tab := E9()
	if len(tab.Rows) != 6 {
		t.Fatalf("rows: %d", len(tab.Rows))
	}
	// Height must fall (weakly) as order grows; VO digests at order 64
	// must exceed those at order 4 (wider nodes, more sibling hashes
	// per level won't compensate the... they grow), and wire bytes at
	// the extremes must exceed the moderate-order minimum.
	prevHeight := 1 << 30
	var minBytes, bytes3, bytes64 int
	for i, row := range tab.Rows {
		h := atoiCell(t, row[1])
		if h > prevHeight {
			t.Fatalf("height increased with order at row %d: %v", i, row)
		}
		prevHeight = h
		b := atoiCell(t, row[3])
		if minBytes == 0 || b < minBytes {
			minBytes = b
		}
		if row[0] == "3" {
			bytes3 = b
		}
		if row[0] == "64" {
			bytes64 = b
		}
	}
	if bytes64 <= minBytes {
		t.Fatalf("order 64 should not be the byte minimum (%d vs min %d)", bytes64, minBytes)
	}
	_ = bytes3
}

func TestE10Shape(t *testing.T) {
	tab := E10()
	prevTraffic := 1e18
	for i, row := range tab.Rows {
		if row[5] != "yes" {
			t.Fatalf("row %d: k-bound failed: %v", i, row)
		}
		traffic := parseFloat(t, row[1])
		if traffic > prevTraffic {
			t.Fatalf("row %d: broadcast traffic should fall with k: %v", i, row)
		}
		prevTraffic = traffic
	}
	// Worst delay at the largest k must exceed worst at k=1.
	if atoiCell(t, tab.Rows[len(tab.Rows)-1][4]) <= atoiCell(t, tab.Rows[0][4]) {
		t.Fatal("detection delay should grow with k")
	}
}

func TestE11Shape(t *testing.T) {
	tab := E11()
	prevPerFile := 1 << 62
	for i, row := range tab.Rows {
		perFile := atoiCell(t, row[2])
		if perFile > prevPerFile {
			t.Fatalf("row %d: bytes/file should fall with batch size: %v", i, row)
		}
		prevPerFile = perFile
	}
}

func TestE12Shape(t *testing.T) {
	tab := E12()
	for i, row := range tab.Rows {
		if !strings.HasSuffix(row[2], "/10") || row[2][0] != '1' {
			t.Fatalf("row %d: detection must be 10/10: %v", i, row)
		}
		if row[0] == "0" {
			if row[3] != "0/10" {
				t.Fatalf("cap 0 cannot localize: %v", row)
			}
			continue
		}
		if row[3] != "10/10" || row[4] != "10/10" {
			t.Fatalf("row %d: journals should localize exactly: %v", i, row)
		}
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	var f float64
	var frac float64 = 1
	inFrac := false
	for _, r := range s {
		switch {
		case r == '.':
			inFrac = true
		case r >= '0' && r <= '9':
			if inFrac {
				frac /= 10
				f += float64(r-'0') * frac
			} else {
				f = f*10 + float64(r-'0')
			}
		default:
			t.Fatalf("cell %q is not a number", s)
		}
	}
	return f
}
