package bench

import (
	"fmt"
	"time"

	"trustedcvs/internal/adversary"
	"trustedcvs/internal/core"
	"trustedcvs/internal/digest"
	"trustedcvs/internal/merkle"
	"trustedcvs/internal/server"
	"trustedcvs/internal/sig"
	"trustedcvs/internal/sim"
	"trustedcvs/internal/wire"
	"trustedcvs/internal/workload"
)

// E1 reproduces Figure 1 / Theorem 3.1: the partition attack defeats
// any configuration without external communication, while Protocols I
// and II detect it at the first synchronization, within the k-bound.
func E1() *Table {
	t := &Table{
		ID:       "E1",
		Title:    "Partition attack (US/China scenario): detection with and without external communication",
		PaperRef: "Figure 1, Theorem 3.1, Theorems 4.1/4.2",
		Columns:  []string{"protocol", "sync", "k", "detected", "class", "max-user-ops-after-dev", "within-k"},
	}
	for _, k := range []uint64{4, 16, 64} {
		trace, info := workload.Partitionable(2, 2, int(k), int64(k))
		adv := &adversary.Config{Kind: adversary.Fork, TriggerOp: info.T1Op, GroupB: info.GroupB}
		for _, p := range []server.Protocol{server.P1, server.P2} {
			// With synchronization.
			res := sim.Run(sim.Config{Protocol: p, Users: 4, K: k, Trace: trace, Adversary: adv})
			t.AddRow(p, "every k ops", k, boolMark(res.Detected), className(res),
				res.MaxUserOpsAfterDeviation, boolMark(res.Detected && res.MaxUserOpsAfterDeviation <= int(k)))
			// Without (Theorem 3.1: no external communication).
			res = sim.Run(sim.Config{Protocol: p, Users: 4, K: 0, Trace: trace, Adversary: adv})
			t.AddRow(p, "disabled", k, boolMark(res.Detected), className(res),
				res.MaxUserOpsAfterDeviation, "n/a")
		}
	}
	t.Notes = append(t.Notes,
		"with sync disabled the busiest user performs k+1 ops after the fork and nothing fires — the impossibility of Theorem 3.1",
		"with sync every k ops, detection always lands within k ops of the deviation (Theorems 4.1/4.2)")
	return t
}

func className(res *sim.Result) string {
	if res.Detection == nil {
		return "-"
	}
	return res.Detection.Class.String()
}

// E2 reproduces Figure 2 / Section 4.1: a single-update verification
// object carries O(log n) digests, and verification time follows.
func E2() *Table {
	t := &Table{
		ID:       "E2",
		Title:    "Merkle B+-tree verification object size and cost vs database size",
		PaperRef: "Figure 2, Section 4.1 (O(log n) digests per update)",
		Columns:  []string{"n", "height", "vo-digests", "vo-nodes", "vo-wire-bytes", "verify-us"},
	}
	for _, n := range []int{100, 1_000, 10_000, 100_000} {
		tr := merkle.New(0)
		for i := 0; i < n; i++ {
			tr = tr.Put(fmt.Sprintf("key-%07d", i), []byte(fmt.Sprintf("value-%d", i)))
		}
		oldRoot := tr.RootDigest()
		key := fmt.Sprintf("key-%07d", n/2)

		rec := tr.Record()
		if err := rec.Put(key, []byte("updated")); err != nil {
			panic(err)
		}
		vo := rec.VO()
		stats := vo.Stats()
		bytes, err := wire.Size(vo)
		if err != nil {
			panic(err)
		}

		const iters = 200
		start := time.Now()
		for i := 0; i < iters; i++ {
			if _, err := vo.Replay(oldRoot, func(pt *merkle.Tree) (*merkle.Tree, error) {
				return pt.PutErr(key, []byte("updated"))
			}); err != nil {
				panic(err)
			}
		}
		verifyUS := float64(time.Since(start).Microseconds()) / iters

		t.AddRow(n, tr.Height(), stats.PrunedDigests, stats.ExpandedNodes, bytes, verifyUS)
	}
	t.Notes = append(t.Notes,
		"digest count and wire bytes grow with tree height (log n), not with n — the paper's efficiency claim for Merkle trees")
	return t
}

// E3 reproduces Figure 3 / Section 4.3: the untagged-XOR "first
// attempt" accepts the replay scenario; Protocol II's user-tagged
// states reject it. Both the abstract register scenario and the full
// protocol stack are exercised.
func E3() *Table {
	t := &Table{
		ID:       "E3",
		Title:    "State replay (Figure 3): untagged XOR vs user-tagged states",
		PaperRef: "Figure 3, Lemma 4.1 property P2",
		Columns:  []string{"scheme", "scenario", "check-passes", "attack-caught"},
	}

	// Abstract register level: the exact Figure 3 graph.
	untaggedPass, taggedPass := figure3Registers()
	t.AddRow("untagged XOR (strawman)", "Figure 3 graph", boolMark(untaggedPass), boolMark(!untaggedPass))
	t.AddRow("tagged states (Protocol II)", "Figure 3 graph", boolMark(taggedPass), boolMark(!taggedPass))

	// Full protocol: stale replay and counter replay under Protocol II.
	for _, kind := range []adversary.Kind{adversary.ReplayStale, adversary.CounterReplay} {
		trace := workload.Generate(workload.Config{Users: 3, Files: 8, Ops: 80, WriteRatio: 0.5, FilesPerOp: 1, Seed: 11})
		res := sim.Run(sim.Config{
			Protocol: server.P2, Users: 3, K: 8, Trace: trace,
			Adversary: &adversary.Config{Kind: kind, TriggerOp: 20, Target: 1},
		})
		t.AddRow("Protocol II (full stack)", kind.String(), boolMark(!res.Detected), boolMark(res.Detected))
	}
	t.Notes = append(t.Notes,
		"the strawman cancels even-degree states and accepts the replay — exactly the failure Figure 3 illustrates",
		"tagging states with the transition's user forces in-degree 1 (Lemma 4.1 P2) and the replay is caught")
	return t
}

// figure3Registers runs the Figure 3 graph through the register
// algebra twice: with untagged and with tagged state hashes. Returns
// whether each check passes.
func figure3Registers() (untaggedPass, taggedPass bool) {
	d := func(s string) digest.Digest { return digest.OfBytes(digest.DomainState, []byte(s)) }
	run := func(tagState bool) bool {
		state := func(name string, u sig.UserID) digest.Digest {
			if !tagState {
				return d(name)
			}
			return digest.NewHasher(digest.DomainTaggedState).Digest(d(name)).Uint64(uint64(u)).Sum()
		}
		initial := d("D0-0")
		regs := make([]core.Registers, 5)
		for i := range regs {
			regs[i].Last = initial
		}
		d1 := state("D1", 1)
		d2, d2p, d2pp := state("D2", 2), state("D2'", 3), state("D2''", 4)
		d3a, d3b, d3c := state("D3", 2), state("D3", 3), state("D3", 4)
		d4 := state("D4", 1)
		regs[1].Absorb(initial, d1, 1)
		regs[2].Absorb(d1, d2, 2)
		regs[3].Absorb(d1, d2p, 2) // replay of (D1,1)
		regs[4].Absorb(d1, d2pp, 2)
		regs[2].Absorb(d2, d3a, 3) // reconvergence into (D3,3)
		regs[3].Absorb(d2p, d3b, 3)
		regs[4].Absorb(d2pp, d3c, 3)
		regs[1].Absorb(d3a, d4, 4)
		reports := make([]core.SyncReportII, len(regs))
		for i, r := range regs {
			reports[i] = core.SyncReportII{User: sig.UserID(i), Sigma: r.Sigma, Last: r.Last}
		}
		return core.CheckSyncII(initial, reports) >= 0
	}
	return run(false), run(true)
}

// E4 reproduces Figure 4 / Theorem 4.3: Protocol III detects within
// two epochs, across population sizes and fault epochs.
func E4() *Table {
	t := &Table{
		ID:       "E4",
		Title:    "Protocol III: detection latency in epochs (fault injected in epoch f)",
		PaperRef: "Figure 4, Theorem 4.3",
		Columns:  []string{"users", "fault-epoch", "attack", "detected", "detection-epoch", "within-2-epochs"},
	}
	for _, n := range []int{2, 4, 8, 16} {
		epochLen := 4 * n
		for _, faultEpoch := range []int{1, 3} {
			trace := workload.EveryUserTwicePerEpoch(n, faultEpoch+5, epochLen, int64(n*10+faultEpoch))
			groupB := map[sig.UserID]bool{}
			for u := n / 2; u < n; u++ {
				groupB[sig.UserID(u)] = true
			}
			// Trigger a couple of ops into the fault epoch.
			trigger := uint64(2*n*faultEpoch + 2)
			res := sim.Run(sim.Config{
				Protocol: server.P3, Users: n, EpochLen: epochLen, LocalClocks: true,
				Trace:     trace,
				Adversary: &adversary.Config{Kind: adversary.Fork, TriggerOp: trigger, GroupB: groupB},
			})
			detEpoch := "-"
			within := false
			if res.Detected {
				e := (res.Rounds - 1) / epochLen
				detEpoch = fmt.Sprint(e)
				within = e <= faultEpoch+2
			}
			t.AddRow(n, faultEpoch, "fork", boolMark(res.Detected), detEpoch, boolMark(within))
		}
	}
	t.Notes = append(t.Notes,
		"every user performs two ops per epoch (the Protocol III workload assumption); the designated checker rotates per epoch",
		"detection-epoch <= fault-epoch + 2 in every configuration (Theorem 4.3)")
	return t
}

// E5 validates k-bounded deviation detection (Theorems 4.1/4.2) across
// a sweep of k and random fault points: the busiest user never
// completes more than k operations after the deviation.
func E5() *Table {
	t := &Table{
		ID:       "E5",
		Title:    "k-bounded deviation detection: delay vs sync period k",
		PaperRef: "Theorems 4.1 and 4.2 (Section 2.2.1 definition)",
		Columns:  []string{"protocol", "k", "trials", "detected", "mean-max-user-delay", "worst", "bound-holds"},
	}
	for _, p := range []server.Protocol{server.P1, server.P2} {
		for _, k := range []uint64{1, 4, 16, 64, 256} {
			const trials = 10
			detected, sum, worst := 0, 0, 0
			for trial := 0; trial < trials; trial++ {
				seed := int64(trial*31 + int(k))
				trace := workload.Generate(workload.Config{
					Users: 4, Files: 12, Ops: int(k)*6 + 60, WriteRatio: 0.5, FilesPerOp: 1, Seed: seed,
				})
				trigger := uint64(10 + trial*3)
				res := sim.Run(sim.Config{
					Protocol: p, Users: 4, K: k, Trace: trace,
					Adversary: &adversary.Config{Kind: adversary.DropUpdate, TriggerOp: trigger},
				})
				if res.Err != nil {
					panic(res.Err)
				}
				if res.Detected {
					detected++
					sum += res.MaxUserOpsAfterDeviation
					if res.MaxUserOpsAfterDeviation > worst {
						worst = res.MaxUserOpsAfterDeviation
					}
				}
			}
			mean := 0.0
			if detected > 0 {
				mean = float64(sum) / float64(detected)
			}
			t.AddRow(p, k, trials, fmt.Sprintf("%d/%d", detected, trials), mean, worst,
				boolMark(detected == trials && worst <= int(k)))
		}
	}
	t.Notes = append(t.Notes,
		"the deviation is a dropped update at a random point; detection fires at the next sync",
		"worst-case per-user delay never exceeds k — the definition of k-bounded deviation detection")
	return t
}
